file(REMOVE_RECURSE
  "libfabsim_mpi.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fabsim_mpi.dir/ch_mx.cpp.o"
  "CMakeFiles/fabsim_mpi.dir/ch_mx.cpp.o.d"
  "CMakeFiles/fabsim_mpi.dir/ch_verbs.cpp.o"
  "CMakeFiles/fabsim_mpi.dir/ch_verbs.cpp.o.d"
  "CMakeFiles/fabsim_mpi.dir/rank.cpp.o"
  "CMakeFiles/fabsim_mpi.dir/rank.cpp.o.d"
  "libfabsim_mpi.a"
  "libfabsim_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabsim_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fabsim_mpi.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fabsim_iwarp.dir/rnic.cpp.o"
  "CMakeFiles/fabsim_iwarp.dir/rnic.cpp.o.d"
  "libfabsim_iwarp.a"
  "libfabsim_iwarp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabsim_iwarp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fabsim_iwarp.
# This may be replaced when dependencies are built.

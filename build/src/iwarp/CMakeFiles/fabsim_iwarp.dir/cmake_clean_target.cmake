file(REMOVE_RECURSE
  "libfabsim_iwarp.a"
)

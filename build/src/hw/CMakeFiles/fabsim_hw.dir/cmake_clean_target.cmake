file(REMOVE_RECURSE
  "libfabsim_hw.a"
)

# Empty dependencies file for fabsim_hw.
# This may be replaced when dependencies are built.

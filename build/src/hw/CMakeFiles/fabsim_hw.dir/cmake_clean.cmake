file(REMOVE_RECURSE
  "CMakeFiles/fabsim_hw.dir/memory.cpp.o"
  "CMakeFiles/fabsim_hw.dir/memory.cpp.o.d"
  "libfabsim_hw.a"
  "libfabsim_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabsim_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libfabsim_sockets.a"
)

# Empty dependencies file for fabsim_sockets.
# This may be replaced when dependencies are built.

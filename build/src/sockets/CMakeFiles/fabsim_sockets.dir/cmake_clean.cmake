file(REMOVE_RECURSE
  "CMakeFiles/fabsim_sockets.dir/host_tcp.cpp.o"
  "CMakeFiles/fabsim_sockets.dir/host_tcp.cpp.o.d"
  "libfabsim_sockets.a"
  "libfabsim_sockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabsim_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

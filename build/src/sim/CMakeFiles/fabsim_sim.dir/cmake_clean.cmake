file(REMOVE_RECURSE
  "CMakeFiles/fabsim_sim.dir/engine.cpp.o"
  "CMakeFiles/fabsim_sim.dir/engine.cpp.o.d"
  "libfabsim_sim.a"
  "libfabsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

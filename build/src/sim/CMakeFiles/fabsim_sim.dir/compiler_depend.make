# Empty compiler generated dependencies file for fabsim_sim.
# This may be replaced when dependencies are built.

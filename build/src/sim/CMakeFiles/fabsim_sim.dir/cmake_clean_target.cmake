file(REMOVE_RECURSE
  "libfabsim_sim.a"
)

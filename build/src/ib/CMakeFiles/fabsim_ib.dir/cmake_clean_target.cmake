file(REMOVE_RECURSE
  "libfabsim_ib.a"
)

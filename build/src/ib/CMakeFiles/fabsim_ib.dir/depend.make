# Empty dependencies file for fabsim_ib.
# This may be replaced when dependencies are built.

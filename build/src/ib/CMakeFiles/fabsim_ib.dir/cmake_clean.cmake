file(REMOVE_RECURSE
  "CMakeFiles/fabsim_ib.dir/hca.cpp.o"
  "CMakeFiles/fabsim_ib.dir/hca.cpp.o.d"
  "libfabsim_ib.a"
  "libfabsim_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabsim_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

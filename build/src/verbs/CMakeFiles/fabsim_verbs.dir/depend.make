# Empty dependencies file for fabsim_verbs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libfabsim_verbs.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fabsim_verbs.dir/verbs.cpp.o"
  "CMakeFiles/fabsim_verbs.dir/verbs.cpp.o.d"
  "libfabsim_verbs.a"
  "libfabsim_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabsim_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fabsim_udapl.dir/udapl.cpp.o"
  "CMakeFiles/fabsim_udapl.dir/udapl.cpp.o.d"
  "libfabsim_udapl.a"
  "libfabsim_udapl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabsim_udapl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

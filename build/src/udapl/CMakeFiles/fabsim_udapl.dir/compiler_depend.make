# Empty compiler generated dependencies file for fabsim_udapl.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libfabsim_udapl.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fabsim_core.dir/cluster.cpp.o"
  "CMakeFiles/fabsim_core.dir/cluster.cpp.o.d"
  "CMakeFiles/fabsim_core.dir/runners_mpi.cpp.o"
  "CMakeFiles/fabsim_core.dir/runners_mpi.cpp.o.d"
  "CMakeFiles/fabsim_core.dir/runners_user.cpp.o"
  "CMakeFiles/fabsim_core.dir/runners_user.cpp.o.d"
  "libfabsim_core.a"
  "libfabsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

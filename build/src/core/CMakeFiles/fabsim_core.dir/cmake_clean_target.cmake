file(REMOVE_RECURSE
  "libfabsim_core.a"
)

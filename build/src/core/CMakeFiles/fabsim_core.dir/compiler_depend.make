# Empty compiler generated dependencies file for fabsim_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libfabsim_mx.a"
)

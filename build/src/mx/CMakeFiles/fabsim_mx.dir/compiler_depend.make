# Empty compiler generated dependencies file for fabsim_mx.
# This may be replaced when dependencies are built.

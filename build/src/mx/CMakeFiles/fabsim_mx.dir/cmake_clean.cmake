file(REMOVE_RECURSE
  "CMakeFiles/fabsim_mx.dir/endpoint.cpp.o"
  "CMakeFiles/fabsim_mx.dir/endpoint.cpp.o.d"
  "libfabsim_mx.a"
  "libfabsim_mx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabsim_mx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ext_congestion.dir/ext_congestion.cpp.o"
  "CMakeFiles/ext_congestion.dir/ext_congestion.cpp.o.d"
  "ext_congestion"
  "ext_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

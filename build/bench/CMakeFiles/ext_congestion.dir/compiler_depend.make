# Empty compiler generated dependencies file for ext_congestion.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7_unexpected_queue.dir/fig7_unexpected_queue.cpp.o"
  "CMakeFiles/fig7_unexpected_queue.dir/fig7_unexpected_queue.cpp.o.d"
  "fig7_unexpected_queue"
  "fig7_unexpected_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_unexpected_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig7_unexpected_queue.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_logp.dir/fig5_logp.cpp.o"
  "CMakeFiles/fig5_logp.dir/fig5_logp.cpp.o.d"
  "fig5_logp"
  "fig5_logp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_logp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

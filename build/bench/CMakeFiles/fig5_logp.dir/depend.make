# Empty dependencies file for fig5_logp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_udapl.dir/ext_udapl.cpp.o"
  "CMakeFiles/ext_udapl.dir/ext_udapl.cpp.o.d"
  "ext_udapl"
  "ext_udapl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_udapl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ext_udapl.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_mpi_bandwidth.dir/fig4_mpi_bandwidth.cpp.o"
  "CMakeFiles/fig4_mpi_bandwidth.dir/fig4_mpi_bandwidth.cpp.o.d"
  "fig4_mpi_bandwidth"
  "fig4_mpi_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mpi_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

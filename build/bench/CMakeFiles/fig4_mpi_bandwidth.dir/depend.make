# Empty dependencies file for fig4_mpi_bandwidth.
# This may be replaced when dependencies are built.

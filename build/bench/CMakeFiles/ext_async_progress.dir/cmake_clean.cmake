file(REMOVE_RECURSE
  "CMakeFiles/ext_async_progress.dir/ext_async_progress.cpp.o"
  "CMakeFiles/ext_async_progress.dir/ext_async_progress.cpp.o.d"
  "ext_async_progress"
  "ext_async_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_async_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ext_async_progress.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig1_userlevel.
# This may be replaced when dependencies are built.

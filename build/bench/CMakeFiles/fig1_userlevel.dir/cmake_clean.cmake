file(REMOVE_RECURSE
  "CMakeFiles/fig1_userlevel.dir/fig1_userlevel.cpp.o"
  "CMakeFiles/fig1_userlevel.dir/fig1_userlevel.cpp.o.d"
  "fig1_userlevel"
  "fig1_userlevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_userlevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

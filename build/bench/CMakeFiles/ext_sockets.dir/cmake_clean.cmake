file(REMOVE_RECURSE
  "CMakeFiles/ext_sockets.dir/ext_sockets.cpp.o"
  "CMakeFiles/ext_sockets.dir/ext_sockets.cpp.o.d"
  "ext_sockets"
  "ext_sockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ext_sockets.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig2_multiconn.
# This may be replaced when dependencies are built.

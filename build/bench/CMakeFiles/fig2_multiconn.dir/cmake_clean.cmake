file(REMOVE_RECURSE
  "CMakeFiles/fig2_multiconn.dir/fig2_multiconn.cpp.o"
  "CMakeFiles/fig2_multiconn.dir/fig2_multiconn.cpp.o.d"
  "fig2_multiconn"
  "fig2_multiconn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_multiconn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ext_ablation_regcache.
# This may be replaced when dependencies are built.

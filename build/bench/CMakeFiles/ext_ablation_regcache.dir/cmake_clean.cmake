file(REMOVE_RECURSE
  "CMakeFiles/ext_ablation_regcache.dir/ext_ablation_regcache.cpp.o"
  "CMakeFiles/ext_ablation_regcache.dir/ext_ablation_regcache.cpp.o.d"
  "ext_ablation_regcache"
  "ext_ablation_regcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ablation_regcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig6_buffer_reuse.
# This may be replaced when dependencies are built.

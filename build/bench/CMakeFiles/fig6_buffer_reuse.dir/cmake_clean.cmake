file(REMOVE_RECURSE
  "CMakeFiles/fig6_buffer_reuse.dir/fig6_buffer_reuse.cpp.o"
  "CMakeFiles/fig6_buffer_reuse.dir/fig6_buffer_reuse.cpp.o.d"
  "fig6_buffer_reuse"
  "fig6_buffer_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_buffer_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

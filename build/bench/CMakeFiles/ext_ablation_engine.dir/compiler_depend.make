# Empty compiler generated dependencies file for ext_ablation_engine.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_ablation_engine.dir/ext_ablation_engine.cpp.o"
  "CMakeFiles/ext_ablation_engine.dir/ext_ablation_engine.cpp.o.d"
  "ext_ablation_engine"
  "ext_ablation_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ablation_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

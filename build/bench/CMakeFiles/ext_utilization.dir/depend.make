# Empty dependencies file for ext_utilization.
# This may be replaced when dependencies are built.

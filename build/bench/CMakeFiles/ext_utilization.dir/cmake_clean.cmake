file(REMOVE_RECURSE
  "CMakeFiles/ext_utilization.dir/ext_utilization.cpp.o"
  "CMakeFiles/ext_utilization.dir/ext_utilization.cpp.o.d"
  "ext_utilization"
  "ext_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig8_receive_queue.
# This may be replaced when dependencies are built.

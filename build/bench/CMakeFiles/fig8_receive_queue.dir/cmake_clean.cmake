file(REMOVE_RECURSE
  "CMakeFiles/fig8_receive_queue.dir/fig8_receive_queue.cpp.o"
  "CMakeFiles/fig8_receive_queue.dir/fig8_receive_queue.cpp.o.d"
  "fig8_receive_queue"
  "fig8_receive_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_receive_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

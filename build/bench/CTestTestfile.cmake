# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig2_multiconn "/root/repo/build/bench/fig2_multiconn" "quick")
set_tests_properties(bench_smoke_fig2_multiconn PROPERTIES  LABELS "smoke" TIMEOUT "900" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig4_mpi_bandwidth "/root/repo/build/bench/fig4_mpi_bandwidth" "quick")
set_tests_properties(bench_smoke_fig4_mpi_bandwidth PROPERTIES  LABELS "smoke" TIMEOUT "900" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig5_logp "/root/repo/build/bench/fig5_logp" "quick")
set_tests_properties(bench_smoke_fig5_logp PROPERTIES  LABELS "smoke" TIMEOUT "900" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig6_buffer_reuse "/root/repo/build/bench/fig6_buffer_reuse" "quick")
set_tests_properties(bench_smoke_fig6_buffer_reuse PROPERTIES  LABELS "smoke" TIMEOUT "900" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig7_unexpected_queue "/root/repo/build/bench/fig7_unexpected_queue" "quick")
set_tests_properties(bench_smoke_fig7_unexpected_queue PROPERTIES  LABELS "smoke" TIMEOUT "900" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig8_receive_queue "/root/repo/build/bench/fig8_receive_queue" "quick")
set_tests_properties(bench_smoke_fig8_receive_queue PROPERTIES  LABELS "smoke" TIMEOUT "900" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tab_headline "/root/repo/build/bench/tab_headline")
set_tests_properties(bench_smoke_tab_headline PROPERTIES  LABELS "smoke" TIMEOUT "900" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")

# Empty dependencies file for udapl_test.
# This may be replaced when dependencies are built.

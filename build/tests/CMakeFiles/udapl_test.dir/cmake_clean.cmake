file(REMOVE_RECURSE
  "CMakeFiles/udapl_test.dir/udapl_test.cpp.o"
  "CMakeFiles/udapl_test.dir/udapl_test.cpp.o.d"
  "udapl_test"
  "udapl_test.pdb"
  "udapl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udapl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

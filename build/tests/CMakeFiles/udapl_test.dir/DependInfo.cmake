
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/udapl_test.cpp" "tests/CMakeFiles/udapl_test.dir/udapl_test.cpp.o" "gcc" "tests/CMakeFiles/udapl_test.dir/udapl_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/udapl/CMakeFiles/fabsim_udapl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fabsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/fabsim_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/iwarp/CMakeFiles/fabsim_iwarp.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/fabsim_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/mx/CMakeFiles/fabsim_mx.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/fabsim_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/sockets/CMakeFiles/fabsim_sockets.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/fabsim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fabsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for sockets_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sockets_test.dir/sockets_test.cpp.o"
  "CMakeFiles/sockets_test.dir/sockets_test.cpp.o.d"
  "sockets_test"
  "sockets_test.pdb"
  "sockets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sockets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/mpi_api_test.dir/mpi_api_test.cpp.o"
  "CMakeFiles/mpi_api_test.dir/mpi_api_test.cpp.o.d"
  "mpi_api_test"
  "mpi_api_test.pdb"
  "mpi_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

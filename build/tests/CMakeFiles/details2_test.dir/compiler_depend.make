# Empty compiler generated dependencies file for details2_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/details2_test.dir/details2_test.cpp.o"
  "CMakeFiles/details2_test.dir/details2_test.cpp.o.d"
  "details2_test"
  "details2_test.pdb"
  "details2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/details2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

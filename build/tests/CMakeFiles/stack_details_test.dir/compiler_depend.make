# Empty compiler generated dependencies file for stack_details_test.
# This may be replaced when dependencies are built.

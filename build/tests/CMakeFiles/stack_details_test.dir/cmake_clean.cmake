file(REMOVE_RECURSE
  "CMakeFiles/stack_details_test.dir/stack_details_test.cpp.o"
  "CMakeFiles/stack_details_test.dir/stack_details_test.cpp.o.d"
  "stack_details_test"
  "stack_details_test.pdb"
  "stack_details_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_details_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/iwarp_test.dir/iwarp_test.cpp.o"
  "CMakeFiles/iwarp_test.dir/iwarp_test.cpp.o.d"
  "iwarp_test"
  "iwarp_test.pdb"
  "iwarp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iwarp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

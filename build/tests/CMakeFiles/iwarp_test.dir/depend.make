# Empty dependencies file for iwarp_test.
# This may be replaced when dependencies are built.

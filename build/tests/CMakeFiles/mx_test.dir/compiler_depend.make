# Empty compiler generated dependencies file for mx_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mx_test.dir/mx_test.cpp.o"
  "CMakeFiles/mx_test.dir/mx_test.cpp.o.d"
  "mx_test"
  "mx_test.pdb"
  "mx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

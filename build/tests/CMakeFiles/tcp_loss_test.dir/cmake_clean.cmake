file(REMOVE_RECURSE
  "CMakeFiles/tcp_loss_test.dir/tcp_loss_test.cpp.o"
  "CMakeFiles/tcp_loss_test.dir/tcp_loss_test.cpp.o.d"
  "tcp_loss_test"
  "tcp_loss_test.pdb"
  "tcp_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

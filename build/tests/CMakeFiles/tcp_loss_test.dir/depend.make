# Empty dependencies file for tcp_loss_test.
# This may be replaced when dependencies are built.

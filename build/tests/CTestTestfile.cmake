# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/iwarp_test[1]_include.cmake")
include("/root/repo/build/tests/ib_test[1]_include.cmake")
include("/root/repo/build/tests/mx_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/sockets_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_loss_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/udapl_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_api_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/congestion_test[1]_include.cmake")
include("/root/repo/build/tests/sim_edge_test[1]_include.cmake")
include("/root/repo/build/tests/stack_details_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/verbs_test[1]_include.cmake")
include("/root/repo/build/tests/details2_test[1]_include.cmake")

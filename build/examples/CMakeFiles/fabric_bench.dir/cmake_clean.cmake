file(REMOVE_RECURSE
  "CMakeFiles/fabric_bench.dir/fabric_bench.cpp.o"
  "CMakeFiles/fabric_bench.dir/fabric_bench.cpp.o.d"
  "fabric_bench"
  "fabric_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

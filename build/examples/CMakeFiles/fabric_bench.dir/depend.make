# Empty dependencies file for fabric_bench.
# This may be replaced when dependencies are built.

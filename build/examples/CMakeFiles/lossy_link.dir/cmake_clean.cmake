file(REMOVE_RECURSE
  "CMakeFiles/lossy_link.dir/lossy_link.cpp.o"
  "CMakeFiles/lossy_link.dir/lossy_link.cpp.o.d"
  "lossy_link"
  "lossy_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossy_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

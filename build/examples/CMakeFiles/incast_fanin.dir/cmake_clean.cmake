file(REMOVE_RECURSE
  "CMakeFiles/incast_fanin.dir/incast_fanin.cpp.o"
  "CMakeFiles/incast_fanin.dir/incast_fanin.cpp.o.d"
  "incast_fanin"
  "incast_fanin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incast_fanin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

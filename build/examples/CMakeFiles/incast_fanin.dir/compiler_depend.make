# Empty compiler generated dependencies file for incast_fanin.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_heat_ring "/root/repo/build/examples/heat_ring")
set_tests_properties(example_heat_ring PROPERTIES  LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_transpose "/root/repo/build/examples/transpose")
set_tests_properties(example_transpose PROPERTIES  LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lossy_link "/root/repo/build/examples/lossy_link")
set_tests_properties(example_lossy_link PROPERTIES  LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mpi_pingpong "/root/repo/build/examples/mpi_pingpong")
set_tests_properties(example_mpi_pingpong PROPERTIES  LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")

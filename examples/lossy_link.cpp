// Failure injection demo: the iWARP stack carries a real TCP below DDP,
// so it survives frame loss via go-back-N retransmission. This example
// sweeps loss rates and shows the throughput collapse and retransmit
// counts — something no other stack in this repository needs to handle
// (IB and Myrinet fabrics are lossless by design).
#include <cstdio>

#include "core/cluster.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

void run(double loss_rate) {
  NetworkProfile p = iwarp_profile();
  p.rnic.loss_rate = loss_rate;
  p.rnic.rto = us(300);
  Cluster cluster(2, p);

  verbs::CompletionQueue cq0(cluster.engine()), cq1(cluster.engine());
  auto qp0 = cluster.device(0).create_qp(cq0, cq0);
  auto qp1 = cluster.device(1).create_qp(cq1, cq1);
  cluster.device(0).establish(*qp0, *qp1);

  const std::uint32_t len = 2 << 20;
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);
  const auto lkey = cluster.device(0).registry().register_region(src.addr(), len);
  const auto rkey = cluster.device(1).registry().register_region(dst.addr(), len);

  Time elapsed = 0;
  cluster.engine().spawn([](Cluster& c, verbs::QueuePair& qp, std::uint64_t s, std::uint64_t d,
                            verbs::MrKey lk, verbs::MrKey rk, std::uint32_t n,
                            Time* out) -> Task<> {
    auto placed = c.device(1).watch_placement(d, n);
    const Time start = c.engine().now();
    co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                        .opcode = verbs::Opcode::kRdmaWrite,
                                        .sge = {s, n, lk},
                                        .remote_addr = d,
                                        .rkey = rk});
    co_await placed->wait();
    *out = c.engine().now() - start;
  }(cluster, *qp0, src.addr(), dst.addr(), lkey, rkey, len, &elapsed));
  cluster.engine().run();

  const double mbps = static_cast<double>(len) / to_us(elapsed);
  std::printf("  loss %5.2f%%: %8.1f MB/s, %5llu retransmitted segments\n", loss_rate * 100,
              mbps, static_cast<unsigned long long>(cluster.rnic(0).retransmits()));
}

}  // namespace

int main() {
  std::printf("2 MB RDMA Write over iWARP/TCP with injected frame loss:\n");
  for (double loss : {0.0, 0.001, 0.005, 0.02, 0.05}) run(loss);
  std::printf("(go-back-N recovers the byte stream; throughput pays for it)\n");
  return 0;
}

// Protocol timeline: turn on the tracer and watch one rendezvous MPI
// message cross the iWARP stack — RTS, pin-down cache, CTS, the TCP
// segments of the RDMA Write, placement, FIN. Then the same message with
// 2% frame loss, showing go-back-N at work.
#include <cstdio>

#include "core/cluster.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

void run(double loss_rate) {
  NetworkProfile p = iwarp_profile();
  p.rnic.loss_rate = loss_rate;
  p.rnic.rto = us(300);
  Cluster cluster(2, p);
  Tracer tracer;
  cluster.engine().set_tracer(&tracer);

  const std::uint32_t len = 24 * 1024;  // rendezvous-sized
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);

  // Run MPI setup (ring preposting is noisy) before arming the trace.
  cluster.engine().spawn([](Cluster& c) -> Task<> { co_await c.setup_mpi(); }(cluster));
  cluster.engine().run();
  tracer.clear();

  cluster.engine().spawn([](Cluster& c, std::uint64_t s, std::uint32_t n) -> Task<> {
    co_await c.mpi_rank(0).send(1, 1, s, n);
  }(cluster, src.addr(), len));
  cluster.engine().spawn([](Cluster& c, std::uint64_t d, std::uint32_t n) -> Task<> {
    co_await c.mpi_rank(1).recv(0, 1, d, n);
  }(cluster, dst.addr(), len));
  cluster.engine().run();

  std::printf("--- 24 KB rendezvous send over iWARP, loss=%.1f%% ---\n", loss_rate * 100);
  std::size_t shown = 0;
  int data_seen = 0;
  for (const auto& entry : tracer.entries()) {
    // The bulk data segments are repetitive; elide the middle ones.
    const bool is_data = entry.label.find("TCP segment tagged-write") == 0;
    if (is_data) {
      ++data_seen;
      if (data_seen > 3 && entry.label.find("[last]") == std::string::npos) continue;
    }
    std::printf("%11.3f us  [node %d] %-5s  %s\n", to_us(entry.at), entry.node,
                trace_category_name(entry.category), entry.label.c_str());
    ++shown;
    if (shown > 40) {
      std::printf("  (... truncated)\n");
      break;
    }
  }
  std::printf("(%s)\n\n", tracer.summary().c_str());
}

}  // namespace

int main() {
  run(0.0);
  run(0.02);
  return 0;
}

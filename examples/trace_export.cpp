// Chrome-trace export: run one rendezvous MPI message over iWARP with
// the tracer and metric registry armed, then write a Trace Event Format
// JSON file. Open it at ui.perfetto.dev (or chrome://tracing) to see the
// two nodes as processes, host/NIC/wire/proto as rows, the switch queue
// depth as a counter track, and — courtesy of an attached FabricProf
// profiler — a "host (profiler)" process whose lanes show where the
// *wall-clock* dispatch time went while the simulated lanes above show
// where the *simulated* time went.
//
//   ./trace_export [output.json]      (default: trace_export.json)
#include <cstdio>

#include "core/cluster.hpp"
#include "sim/prof.hpp"
#include "sim/trace_export.hpp"

using namespace fabsim;
using namespace fabsim::core;

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "trace_export.json";

  Cluster cluster(2, Network::kIwarp);
  Tracer tracer;
  MetricRegistry metrics;
  Profiler profiler(Profiler::Config{.sample_stride = 1});  // every dispatch: short run
  cluster.engine().set_tracer(&tracer);
  cluster.engine().set_metrics(&metrics);
  cluster.attach_profiler(profiler);

  const std::uint32_t len = 24 * 1024;  // rendezvous-sized
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);

  // Run MPI setup (ring preposting is noisy) before arming the trace.
  cluster.engine().spawn([](Cluster& c) -> Task<> { co_await c.setup_mpi(); }(cluster));
  cluster.engine().run();
  tracer.clear();
  profiler.reset();

  cluster.engine().spawn([](Cluster& c, std::uint64_t s, std::uint32_t n) -> Task<> {
    co_await c.mpi_rank(0).send(1, 1, s, n);
  }(cluster, src.addr(), len));
  cluster.engine().spawn([](Cluster& c, std::uint64_t d, std::uint32_t n) -> Task<> {
    co_await c.mpi_rank(1).recv(0, 1, d, n);
  }(cluster, dst.addr(), len));
  cluster.engine().run();

  if (!write_chrome_trace(path, tracer, &metrics, &profiler)) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  std::printf("wrote %s (%s)\n", path, tracer.summary().c_str());
  std::printf("open it at https://ui.perfetto.dev or chrome://tracing\n");
  return 0;
}

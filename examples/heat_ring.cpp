// A small but real MPI application: 1-D heat diffusion with halo
// exchange on a ring of 4 ranks, the workload class the paper's
// introduction motivates. Demonstrates non-blocking halo exchange,
// collectives (allreduce for the global residual), and how interconnect
// choice shows up in application time.
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/cluster.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

constexpr int kRanks = 4;
constexpr int kCellsPerRank = 4096;
constexpr int kSteps = 50;

struct RankBuffers {
  hw::Buffer* field;    ///< kCellsPerRank + 2 halo doubles
  hw::Buffer* scratch;  ///< halo staging + allreduce scratch
};

Task<> worker(Cluster& cluster, int me, RankBuffers bufs, double* final_residual) {
  co_await cluster.setup_mpi();
  auto& rank = cluster.mpi_rank(me);
  auto& mem = cluster.node(me).mem();
  const int left = (me - 1 + kRanks) % kRanks;
  const int right = (me + 1) % kRanks;
  constexpr std::uint32_t kD = sizeof(double);

  // Initialize: a hot spike on rank 0, cold elsewhere.
  auto field = mem.window(bufs.field->addr(), (kCellsPerRank + 2) * kD);
  std::vector<double> u(kCellsPerRank + 2, 0.0);
  if (me == 0) {
    for (int i = 1; i <= 64; ++i) u[static_cast<std::size_t>(i)] = 100.0;
  }

  const double t0 = rank.wtime();
  double residual = 0.0;
  for (int step = 0; step < kSteps; ++step) {
    // Publish boundary cells, exchange halos with both neighbours.
    std::memcpy(field.data(), u.data(), (kCellsPerRank + 2) * kD);
    const std::uint64_t send_left = bufs.field->addr() + 1 * kD;
    const std::uint64_t send_right = bufs.field->addr() + kCellsPerRank * kD;
    const std::uint64_t halo_left = bufs.field->addr();
    const std::uint64_t halo_right = bufs.field->addr() + (kCellsPerRank + 1) * kD;

    auto rx_left = co_await rank.irecv(left, 10, halo_left, kD);
    auto rx_right = co_await rank.irecv(right, 11, halo_right, kD);
    auto tx_left = co_await rank.isend(left, 11, send_left, kD);
    auto tx_right = co_await rank.isend(right, 10, send_right, kD);
    co_await rank.wait(rx_left);
    co_await rank.wait(rx_right);
    co_await rank.wait(tx_left);
    co_await rank.wait(tx_right);

    // Read back halos and take a Jacobi step (charged as compute time).
    std::memcpy(u.data(), field.data(), (kCellsPerRank + 2) * kD);
    double local_residual = 0.0;
    std::vector<double> next(u);
    for (int i = 1; i <= kCellsPerRank; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      next[idx] = 0.5 * u[idx] + 0.25 * (u[idx - 1] + u[idx + 1]);
      local_residual += (next[idx] - u[idx]) * (next[idx] - u[idx]);
    }
    u.swap(next);
    co_await cluster.node(me).cpu().compute(ns(2.0) * kCellsPerRank);

    // Global residual via allreduce every 10 steps.
    if (step % 10 == 9) {
      auto res_window = mem.window(bufs.scratch->addr(), kD);
      std::memcpy(res_window.data(), &local_residual, kD);
      co_await rank.allreduce_sum(bufs.scratch->addr(), bufs.scratch->addr() + 64, 1);
      std::memcpy(&residual, res_window.data(), kD);
    }
  }
  co_await rank.barrier();

  if (me == 0) {
    std::printf("  %d steps, %d cells/rank: %.1f us simulated, residual %.4f\n", kSteps,
                kCellsPerRank, (rank.wtime() - t0) * 1e6, residual);
    *final_residual = residual;
  }
}

double run(Network network) {
  Cluster cluster(kRanks, network);
  std::vector<RankBuffers> bufs;
  for (int r = 0; r < kRanks; ++r) {
    bufs.push_back(RankBuffers{
        &cluster.node(r).mem().alloc((kCellsPerRank + 2) * sizeof(double)),
        &cluster.node(r).mem().alloc(256),
    });
  }
  double residual = 0.0;
  for (int r = 0; r < kRanks; ++r) {
    cluster.engine().spawn(worker(cluster, r, bufs[static_cast<std::size_t>(r)], &residual));
  }
  cluster.engine().run();
  return residual;
}

}  // namespace

int main() {
  std::printf("1-D heat diffusion, %d ranks, halo exchange + allreduce:\n", kRanks);
  double reference = -1.0;
  for (Network n : {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom}) {
    std::printf("%s:\n", network_name(n));
    const double residual = run(n);
    if (reference < 0) {
      reference = residual;
    } else if (residual != reference) {
      std::printf("  WARNING: numeric result differs across interconnects!\n");
      return 1;
    }
  }
  std::printf("numeric results identical on all four interconnects.\n");
  return 0;
}

// MiniMPI ping-pong across all four simulated interconnects — the
// portable way to use FabricSim. One process per rank, exactly like an
// MPI job; simulated MPI_Wtime gives the latency.
#include <cstdio>

#include "core/cluster.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

double pingpong_us(Network network, std::uint32_t msg) {
  Cluster cluster(2, network);
  auto& buf0 = cluster.node(0).mem().alloc(msg ? msg : 1, false);
  auto& buf1 = cluster.node(1).mem().alloc(msg ? msg : 1, false);
  const int iters = 40;
  double result = 0;

  cluster.engine().spawn([](Cluster& c, hw::Buffer& b, std::uint32_t m, int n,
                            double* out) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(0);
    const double t0 = rank.wtime();
    for (int i = 0; i < n; ++i) {
      co_await rank.send(1, 0, b.addr(), m);
      co_await rank.recv(1, 0, b.addr(), m);
    }
    *out = (rank.wtime() - t0) / n / 2.0 * 1e6;
  }(cluster, buf0, msg, iters, &result));

  cluster.engine().spawn([](Cluster& c, hw::Buffer& b, std::uint32_t m, int n) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(1);
    for (int i = 0; i < n; ++i) {
      co_await rank.recv(0, 0, b.addr(), m);
      co_await rank.send(0, 0, b.addr(), m);
    }
  }(cluster, buf1, msg, iters));

  cluster.engine().run();
  return result;
}

}  // namespace

int main() {
  std::printf("%-10s", "msg");
  for (Network n : {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom}) {
    std::printf(" %10s", network_name(n));
  }
  std::printf("   (us, half round trip)\n");
  for (std::uint32_t msg : {4u, 64u, 1024u, 16384u, 262144u}) {
    std::printf("%-10u", msg);
    for (Network n : {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom}) {
      std::printf(" %10.2f", pingpong_us(n, msg));
    }
    std::printf("\n");
  }
  return 0;
}

// Data-center-style incast: three clients stream RDMA Writes into one
// server simultaneously. Shows output-port contention at the switch
// (everyone shares the server's link) and how per-NIC engine models keep
// or lose fairness. A miniature of the paper's future-work question:
// "how does multi-connection performance affect real applications?"
#include <cstdio>
#include <vector>

#include "core/cluster.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

struct Flow {
  Time first_byte = 0;
  Time last_byte = 0;
  std::uint64_t bytes = 0;
};

void run(Network network) {
  constexpr int kClients = 3;
  constexpr std::uint32_t kChunk = 256 * 1024;
  constexpr int kChunks = 16;

  Cluster cluster(kClients + 1, network);  // node 0 is the server
  verbs::CompletionQueue server_cq(cluster.engine());
  std::vector<std::unique_ptr<verbs::CompletionQueue>> client_cqs;
  std::vector<std::unique_ptr<verbs::QueuePair>> server_qps, client_qps;
  std::vector<hw::Buffer*> server_bufs, client_bufs;
  std::vector<verbs::MrKey> server_keys, client_keys;

  for (int c = 0; c < kClients; ++c) {
    client_cqs.push_back(std::make_unique<verbs::CompletionQueue>(cluster.engine()));
    server_qps.push_back(cluster.device(0).create_qp(server_cq, server_cq));
    client_qps.push_back(cluster.device(c + 1).create_qp(*client_cqs.back(), *client_cqs.back()));
    cluster.device(0).establish(*server_qps.back(), *client_qps.back());
    server_bufs.push_back(&cluster.node(0).mem().alloc(kChunk, false));
    client_bufs.push_back(&cluster.node(c + 1).mem().alloc(kChunk, false));
    server_keys.push_back(cluster.device(0).registry().register_region(
        server_bufs.back()->addr(), kChunk));
    client_keys.push_back(cluster.device(c + 1).registry().register_region(
        client_bufs.back()->addr(), kChunk));
  }

  std::vector<Flow> flows(kClients);
  for (int c = 0; c < kClients; ++c) {
    // Client: stream chunks, paced by local send completions.
    cluster.engine().spawn([](Cluster& cl, verbs::QueuePair& qp, verbs::CompletionQueue& cq,
                              std::uint64_t src, verbs::MrKey lkey, std::uint64_t dst,
                              verbs::MrKey rkey, int client) -> Task<> {
      for (int i = 0; i < kChunks; ++i) {
        co_await qp.post_send(verbs::SendWr{.wr_id = static_cast<std::uint64_t>(i),
                                            .opcode = verbs::Opcode::kRdmaWrite,
                                            .sge = {src, kChunk, lkey},
                                            .remote_addr = dst,
                                            .rkey = rkey});
        co_await verbs::next_completion(cq, cl.node(client + 1).cpu(), ns(200));
      }
    }(cluster, *client_qps[static_cast<std::size_t>(c)],
      *client_cqs[static_cast<std::size_t>(c)], client_bufs[static_cast<std::size_t>(c)]->addr(),
      client_keys[static_cast<std::size_t>(c)], server_bufs[static_cast<std::size_t>(c)]->addr(),
      server_keys[static_cast<std::size_t>(c)], c));
    // Server: observe each chunk actually landing in memory — goodput is
    // measured where it matters, behind the contended switch port.
    cluster.engine().spawn([](Cluster& cl, std::uint64_t dst, Flow* flow) -> Task<> {
      flow->first_byte = cl.engine().now();
      for (int i = 0; i < kChunks; ++i) {
        auto placed = cl.device(0).watch_placement(dst, kChunk);
        co_await placed->wait();
        flow->bytes += kChunk;
      }
      flow->last_byte = cl.engine().now();
    }(cluster, server_bufs[static_cast<std::size_t>(c)]->addr(),
      &flows[static_cast<std::size_t>(c)]));
  }
  cluster.engine().run();

  double total_mb = 0;
  Time end = 0;
  std::printf("%s incast, %d clients x %d x %u KB:\n", network_name(network), kClients, kChunks,
              kChunk / 1024);
  for (int c = 0; c < kClients; ++c) {
    const Flow& flow = flows[static_cast<std::size_t>(c)];
    const double mbps =
        static_cast<double>(flow.bytes) / to_us(flow.last_byte - flow.first_byte);
    std::printf("  client %d: %7.1f MB/s\n", c, mbps);
    total_mb += static_cast<double>(flow.bytes) / 1e6;
    end = std::max(end, flow.last_byte);
  }
  std::printf("  aggregate at server: %7.1f MB/s (server link is the bottleneck)\n\n",
              total_mb * 1e6 / to_us(end));
}

}  // namespace

int main() {
  // The fan-in comparison is a verbs-level study (iWARP vs IB), like the
  // paper's multi-connection experiment.
  run(Network::kIwarp);
  run(Network::kIb);
  return 0;
}

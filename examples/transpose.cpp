// Distributed matrix transpose via MPI_Alltoall — the classic
// communication-bound kernel (FFTs, tensor reshuffles). Each of the 4
// ranks owns a block-row of an N x N matrix of doubles; one alltoall
// plus local re-staggering transposes it. Verifies numerically, then
// reports the communication time per interconnect.
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/cluster.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

constexpr int kRanks = 4;
constexpr int kN = 256;  // matrix is kN x kN doubles
constexpr int kRows = kN / kRanks;
constexpr std::uint32_t kBlockBytes = kRows * kRows * sizeof(double);

double element(int row, int col) { return row * 1000.0 + col; }

Task<> worker(Cluster& cluster, int me, hw::Buffer* send, hw::Buffer* recv, bool* ok,
              double* comm_us) {
  co_await cluster.setup_mpi();
  auto& rank = cluster.mpi_rank(me);
  auto& mem = cluster.node(me).mem();

  // Pack: block d holds my rows restricted to columns [d*kRows, ...),
  // already transposed locally so the alltoall finishes the job.
  for (int d = 0; d < kRanks; ++d) {
    auto w = mem.window(send->addr() + static_cast<std::uint64_t>(d) * kBlockBytes,
                        kBlockBytes);
    for (int r = 0; r < kRows; ++r) {
      for (int c = 0; c < kRows; ++c) {
        const double v = element(me * kRows + r, d * kRows + c);
        std::memcpy(w.data() + (c * kRows + r) * sizeof(double), &v, sizeof(double));
      }
    }
  }

  // Warmup exchange: pays the one-time registrations (pin-down caches
  // warm up), so the timed pass reflects steady state.
  co_await rank.alltoall(send->addr(), kBlockBytes, recv->addr());
  co_await rank.barrier();
  const double t0 = rank.wtime();
  co_await rank.alltoall(send->addr(), kBlockBytes, recv->addr());
  const double t1 = rank.wtime();

  // Verify: after the exchange, block d holds transpose rows from rank d.
  bool good = true;
  for (int d = 0; d < kRanks; ++d) {
    auto w = mem.window(recv->addr() + static_cast<std::uint64_t>(d) * kBlockBytes,
                        kBlockBytes);
    for (int r = 0; r < kRows && good; ++r) {
      for (int c = 0; c < kRows && good; ++c) {
        double got = 0;
        std::memcpy(&got, w.data() + (r * kRows + c) * sizeof(double), sizeof(double));
        // Transposed element: T[me*kRows+r][d*kRows+c] = A[d*kRows+c][me*kRows+r].
        if (got != element(d * kRows + c, me * kRows + r)) good = false;
      }
    }
  }
  if (!good) *ok = false;
  if (me == 0) *comm_us = (t1 - t0) * 1e6;
}

double run(Network network, bool* ok) {
  Cluster cluster(kRanks, network);
  std::vector<hw::Buffer*> send, recv;
  for (int r = 0; r < kRanks; ++r) {
    send.push_back(&cluster.node(r).mem().alloc(kBlockBytes * kRanks));
    recv.push_back(&cluster.node(r).mem().alloc(kBlockBytes * kRanks));
  }
  double comm_us = 0;
  for (int r = 0; r < kRanks; ++r) {
    cluster.engine().spawn(worker(cluster, r, send[static_cast<std::size_t>(r)],
                                  recv[static_cast<std::size_t>(r)], ok, &comm_us));
  }
  cluster.engine().run();
  return comm_us;
}

}  // namespace

int main() {
  std::printf("%dx%d double matrix transpose on %d ranks (alltoall of %u KB blocks):\n", kN,
              kN, kRanks, kBlockBytes / 1024);
  bool ok = true;
  for (Network n : {Network::kIwarp, Network::kIb, Network::kMxoe, Network::kMxom}) {
    const double us_taken = run(n, &ok);
    std::printf("  %-6s  %8.1f us\n", network_name(n), us_taken);
  }
  if (!ok) {
    std::printf("TRANSPOSE VERIFICATION FAILED\n");
    return 1;
  }
  std::printf("transpose verified element-exact on all interconnects.\n");
  return 0;
}

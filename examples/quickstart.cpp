// Quickstart: the smallest complete FabricSim program.
//
// Builds a two-node iWARP cluster, registers memory on both sides, and
// performs one RDMA Write from node 0 into node 1's buffer, timing it
// with simulated time. Run it, then try changing Network::kIwarp to kIb,
// kMxoe is MPI/MX-only — see mpi_pingpong.cpp for the portable layer.
#include <cstdio>
#include <cstring>

#include "core/cluster.hpp"

using namespace fabsim;
using namespace fabsim::core;

int main() {
  // A two-node testbed with the calibrated NetEffect-iWARP profile:
  // nodes, PCIe buses, the 10GbE switch, and one RNIC each.
  Cluster cluster(2, Network::kIwarp);

  // Allocate real (data-carrying) buffers in each node's memory.
  hw::Buffer& src = cluster.node(0).mem().alloc(4096);
  hw::Buffer& dst = cluster.node(1).mem().alloc(4096);
  std::memcpy(cluster.node(0).mem().window(src.addr(), 13).data(), "hello, iWARP!", 13);

  // Verbs objects: completion queues and a connected queue pair.
  verbs::CompletionQueue cq0(cluster.engine()), cq1(cluster.engine());
  auto qp0 = cluster.device(0).create_qp(cq0, cq0);
  auto qp1 = cluster.device(1).create_qp(cq1, cq1);
  cluster.device(0).establish(*qp0, *qp1);

  // The simulation runs coroutine processes; spawn one driver.
  cluster.engine().spawn([](Cluster& c, verbs::QueuePair& qp, hw::Buffer& s,
                            hw::Buffer& d) -> Task<> {
    // Register memory (this charges the host CPU with the pinning cost).
    verbs::MrKey lkey = co_await c.device(0).reg_mr(s.addr(), s.size());
    verbs::MrKey rkey = co_await c.device(1).reg_mr(d.addr(), d.size());

    // Watch for the data landing on the remote side (the paper's
    // "poll the target buffer" completion check).
    auto placed = c.device(1).watch_placement(d.addr(), 13);

    const Time start = c.engine().now();
    co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                        .opcode = verbs::Opcode::kRdmaWrite,
                                        .sge = {s.addr(), 13, lkey},
                                        .remote_addr = d.addr(),
                                        .rkey = rkey});
    co_await placed->wait();
    std::printf("RDMA Write delivered in %.2f us of simulated time\n",
                to_us(c.engine().now() - start));
  }(cluster, *qp0, src, dst));

  cluster.engine().run();

  // The bytes really moved: read them back out of node 1's memory.
  char text[14] = {};
  auto view = cluster.node(1).mem().window(dst.addr(), 13);
  std::memcpy(text, view.data(), 13);
  std::printf("node 1 buffer now contains: \"%s\"\n", text);
  return 0;
}

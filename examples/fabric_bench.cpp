// fabric_bench — an OSU-microbenchmark-style command-line tool.
//
//   fabric_bench <network> <test> [min_size] [max_size]
//
//   network: iwarp | ib | mxoe | mxom
//   test:    latency | bw | bibw | mpi_latency | mpi_bw
//
// Runs the chosen microbenchmark on a fresh two-node simulated testbed
// and prints the usual size/latency or size/bandwidth columns.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/runners.hpp"

using namespace fabsim;
using namespace fabsim::core;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: fabric_bench <iwarp|ib|mxoe|mxom> "
               "<latency|bw|bibw|mpi_latency|mpi_bw> [min_size] [max_size]\n");
  return 2;
}

bool parse_network(const char* name, Network* out) {
  if (std::strcmp(name, "iwarp") == 0) *out = Network::kIwarp;
  else if (std::strcmp(name, "ib") == 0) *out = Network::kIb;
  else if (std::strcmp(name, "mxoe") == 0) *out = Network::kMxoe;
  else if (std::strcmp(name, "mxom") == 0) *out = Network::kMxom;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  Network network;
  if (!parse_network(argv[1], &network)) return usage();
  const std::string test = argv[2];
  std::uint32_t min_size = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 4;
  std::uint32_t max_size =
      argc > 4 ? static_cast<std::uint32_t>(std::atoi(argv[4])) : (1u << 22);
  if (min_size == 0) min_size = 1;

  const NetworkProfile p = profile(network);
  std::printf("# fabric_bench: %s on %s (simulated)\n", test.c_str(), network_name(network));

  if (test == "latency" || test == "mpi_latency") {
    std::printf("%-12s %14s\n", "size", "latency_us");
    for (std::uint32_t s = min_size; s <= max_size; s *= 2) {
      const double v = test == "latency" ? userlevel_pingpong_latency_us(p, s)
                                         : mpi_pingpong_latency_us(p, s);
      std::printf("%-12u %14.2f\n", s, v);
    }
  } else if (test == "bw" || test == "mpi_bw") {
    std::printf("%-12s %14s\n", "size", "bandwidth_MBps");
    for (std::uint32_t s = std::max(min_size, 1024u); s <= max_size; s *= 2) {
      const double v = test == "bw" ? userlevel_bandwidth_mbps(p, s, 6)
                                    : mpi_unidir_bw_mbps(p, s, 16, 4);
      std::printf("%-12u %14.1f\n", s, v);
    }
  } else if (test == "bibw") {
    std::printf("%-12s %14s\n", "size", "bidir_MBps");
    for (std::uint32_t s = std::max(min_size, 1024u); s <= max_size; s *= 2) {
      std::printf("%-12u %14.1f\n", s, mpi_bidir_bw_mbps(p, s, 10));
    }
  } else {
    return usage();
  }
  return 0;
}

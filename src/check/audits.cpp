#include "check/audits.hpp"

namespace fabsim::check {

namespace {

std::string u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

Verdict audit_switch_occupancy(double backlog_bytes, std::uint32_t frame_bytes,
                               std::uint64_t max_queue_bytes) {
  if (max_queue_bytes == 0) return Verdict::pass();  // unbounded buffer
  if (backlog_bytes + frame_bytes <= static_cast<double>(max_queue_bytes)) {
    return Verdict::pass();
  }
  return Verdict::fail("queue_overflow",
                       "admitted frame of " + u64(frame_bytes) + "B onto a backlog of " +
                           std::to_string(backlog_bytes) + "B, exceeding the " +
                           u64(max_queue_bytes) + "B port buffer");
}

Verdict audit_switch_conservation(std::uint64_t ingressed, std::uint64_t forwarded,
                                  std::uint64_t fault_drops, std::uint64_t tail_drops,
                                  std::uint64_t down_drops, std::uint64_t unroutable_drops) {
  if (ingressed == forwarded + fault_drops + tail_drops + down_drops + unroutable_drops) {
    return Verdict::pass();
  }
  return Verdict::fail("frame_conservation",
                       "ingressed " + u64(ingressed) + " != forwarded " + u64(forwarded) +
                           " + fault_drops " + u64(fault_drops) + " + tail_drops " +
                           u64(tail_drops) + " + down_drops " + u64(down_drops) +
                           " + unroutable_drops " + u64(unroutable_drops));
}

Verdict audit_credit_nonnegative(std::int64_t occupancy_bytes) {
  if (occupancy_bytes >= 0) return Verdict::pass();
  return Verdict::fail("credit_negative",
                       "output-queue occupancy went negative (" +
                           std::to_string(occupancy_bytes) +
                           "B): a credit was returned twice");
}

Verdict audit_switch_queue_drained(int port, std::size_t queued_frames,
                                   std::int64_t occupancy_bytes, bool transmitting) {
  if (queued_frames == 0 && occupancy_bytes == 0 && !transmitting) return Verdict::pass();
  return Verdict::fail("queue_not_drained",
                       "port " + std::to_string(port) + " at quiescence: " +
                           u64(queued_frames) + " frame(s) still queued, " +
                           std::to_string(occupancy_bytes) + "B occupancy outstanding" +
                           (transmitting ? ", transmission in flight" : ""));
}

Verdict audit_ib_inflight_psns(const std::deque<std::uint64_t>& inflight_psns,
                               std::uint64_t snd_psn) {
  for (std::size_t i = 1; i < inflight_psns.size(); ++i) {
    if (inflight_psns[i] != inflight_psns[i - 1] + 1) {
      return Verdict::fail("psn_gap_in_inflight",
                           "inflight[" + u64(i) + "] psn " + u64(inflight_psns[i]) +
                               " does not follow " + u64(inflight_psns[i - 1]));
    }
  }
  if (!inflight_psns.empty() && inflight_psns.back() + 1 != snd_psn) {
    return Verdict::fail("psn_tail_mismatch", "inflight tail psn " + u64(inflight_psns.back()) +
                                                  " + 1 != snd_psn " + u64(snd_psn));
  }
  return Verdict::pass();
}

Verdict audit_ib_ack_window(std::uint64_t ack_psn, std::uint64_t snd_psn) {
  if (ack_psn <= snd_psn) return Verdict::pass();
  return Verdict::fail("ack_beyond_window",
                       "cumulative ack psn " + u64(ack_psn) + " acks packets never sent (snd_psn " +
                           u64(snd_psn) + ")");
}

Verdict audit_ib_retry_exhausted(int retry_count, int retry_limit) {
  if (retry_count > retry_limit) return Verdict::pass();
  return Verdict::fail("premature_error",
                       "QP entered error state at retry " + std::to_string(retry_count) +
                           " of limit " + std::to_string(retry_limit));
}

Verdict audit_iwarp_window(std::uint64_t snd_nxt, std::uint64_t snd_una, std::uint32_t chunk,
                           std::uint32_t window) {
  if (snd_nxt - snd_una + chunk <= window) return Verdict::pass();
  return Verdict::fail("window_overrun",
                       "emitting " + u64(chunk) + "B with " + u64(snd_nxt - snd_una) +
                           "B already outstanding exceeds the " + u64(window) + "B window");
}

Verdict audit_iwarp_ack_window(std::uint64_t ack, std::uint64_t snd_una, std::uint64_t snd_nxt) {
  if (ack <= snd_nxt) return Verdict::pass();
  return Verdict::fail("ack_beyond_window", "cumulative ack " + u64(ack) +
                                                " beyond snd_nxt " + u64(snd_nxt) +
                                                " (snd_una " + u64(snd_una) + ")");
}

Verdict audit_iwarp_untagged_inorder(std::uint32_t msg_offset, std::uint32_t placed,
                                     std::uint64_t msg_id) {
  if (msg_offset == placed) return Verdict::pass();
  return Verdict::fail("untagged_out_of_order",
                       "msg " + u64(msg_id) + ": segment at offset " + u64(msg_offset) +
                           " delivered with only " + u64(placed) +
                           "B placed (DDP untagged delivery must be in-order)");
}

Verdict audit_mx_resend_queue(const std::deque<std::uint64_t>& unacked_seqs,
                              std::uint64_t next_seq) {
  for (std::size_t i = 1; i < unacked_seqs.size(); ++i) {
    if (unacked_seqs[i] != unacked_seqs[i - 1] + 1) {
      return Verdict::fail("resend_queue_gap",
                           "unacked[" + u64(i) + "] seq " + u64(unacked_seqs[i]) +
                               " does not follow " + u64(unacked_seqs[i - 1]));
    }
  }
  if (!unacked_seqs.empty() && unacked_seqs.back() + 1 != next_seq) {
    return Verdict::fail("resend_tail_mismatch", "unacked tail seq " + u64(unacked_seqs.back()) +
                                                     " + 1 != next_seq " + u64(next_seq));
  }
  return Verdict::pass();
}

Verdict audit_mx_ack_window(std::uint64_t ack, std::uint64_t next_seq) {
  if (ack <= next_seq) return Verdict::pass();
  return Verdict::fail("ack_beyond_window", "flow ack " + u64(ack) +
                                                " acks frames never sent (next_seq " +
                                                u64(next_seq) + ")");
}

Verdict audit_mpi_queue_disjoint(int posted_src, int posted_tag, int msg_src, int msg_tag) {
  constexpr int kAnySource = -1;  // mirrors mpi::kAnySource / kAnyTag
  constexpr int kAnyTag = -1;
  const bool src_match = posted_src == kAnySource || posted_src == msg_src;
  const bool tag_match = posted_tag == kAnyTag || posted_tag == msg_tag;
  if (!(src_match && tag_match)) return Verdict::pass();
  return Verdict::fail("queue_overlap",
                       "unexpected message (src " + std::to_string(msg_src) + ", tag " +
                           std::to_string(msg_tag) + ") matches posted receive (src " +
                           std::to_string(posted_src) + ", tag " + std::to_string(posted_tag) +
                           ") — matching failed to pair them");
}

}  // namespace fabsim::check

// FabricCheck: runtime protocol-invariant auditor.
//
// An InvariantMonitor is attached to an Engine the same way the Tracer,
// the MetricRegistry and the FaultInjector are: caller-owned, optional,
// and every emission site guards on the pointer so a disabled monitor
// costs one branch. Each protocol layer reports violations of its own
// invariants (PSN monotonicity, DDP ordering, queue bounds, request
// lifecycle, ...) through this one funnel, which makes the failure
// contract uniform: a typed InvariantViolation record carrying sim-time,
// layer, node and rule name.
//
// Two reporting modes:
//   * fatal (the default, used by tests): the first violation throws
//     InvariantViolationError out of Engine::run();
//   * counting (used by FABSIM_CHECK bench runs): violations accumulate
//     in the monitor and surface as `check.<layer>.<rule>` counters via
//     an optional MetricRegistry, so a sweep completes and reports.
//
// The monitor never posts events and never advances time: attaching one
// must leave the simulated timeline byte-identical (the zero-overhead
// test in tests/check_test.cpp pins this).
//
// Everything here is header-only on purpose: sim::Engine invokes the
// monitor from its run loop, and fabsim_check links against fabsim_sim —
// inline definitions break what would otherwise be a library cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/time.hpp"

namespace fabsim::check {

/// Which protocol layer reported the violation.
enum class Layer : std::uint8_t { kSim, kHw, kIb, kIwarp, kMx, kMpi };

inline const char* layer_name(Layer layer) {
  switch (layer) {
    case Layer::kSim: return "sim";
    case Layer::kHw: return "hw";
    case Layer::kIb: return "ib";
    case Layer::kIwarp: return "iwarp";
    case Layer::kMx: return "mx";
    case Layer::kMpi: return "mpi";
  }
  return "?";
}

/// One broken invariant, with enough context to debug it post-mortem.
struct InvariantViolation {
  Time at = 0;        ///< simulated time of the report
  Layer layer = Layer::kSim;
  int node = -1;      ///< node / rank / port; -1 when not applicable
  std::string rule;   ///< stable rule id, e.g. "psn_gap_in_inflight"
  std::string detail; ///< human-readable specifics

  std::string to_string() const {
    return std::string(layer_name(layer)) + "." + rule + " @" + std::to_string(to_us(at)) +
           "us node=" + std::to_string(node) + ": " + detail;
  }
};

/// Thrown by a fatal monitor on the first violation.
class InvariantViolationError : public std::runtime_error {
 public:
  explicit InvariantViolationError(InvariantViolation violation)
      : std::runtime_error("invariant violated: " + violation.to_string()),
        violation_(std::move(violation)) {}

  const InvariantViolation& violation() const { return violation_; }

 private:
  InvariantViolation violation_;
};

class InvariantMonitor {
 public:
  /// `fatal` = throw on the first violation (test mode); otherwise count.
  explicit InvariantMonitor(bool fatal = true) : fatal_(fatal) {}

  bool fatal() const { return fatal_; }

  /// Optional registry for `check.*` counters in counting mode.
  void set_metrics(MetricRegistry* metrics) { metrics_ = metrics; }

  /// Record a violation. Fatal monitors throw; counting monitors keep
  /// the record (bounded) and bump `check.violations` +
  /// `check.<layer>.<rule>`.
  void report(Time at, Layer layer, int node, std::string rule, std::string detail) {
    InvariantViolation violation{at, layer, node, std::move(rule), std::move(detail)};
    // HOT-OK(fatal-mode audit stop; never taken on a clean steady-state run)
    if (fatal_) throw InvariantViolationError(std::move(violation));
    ++violation_count_;
    if (metrics_ != nullptr) {
      metrics_->counter("check.violations").add();
      metrics_->counter(std::string("check.") + layer_name(layer) + "." + violation.rule).add();
    }
    // HOT-OK(violation recording, capped at kMaxKept; clean runs never reach it)
    if (violations_.size() < kMaxKept) violations_.push_back(std::move(violation));
  }

  /// Audit helper: the detail string is only built on failure, so hot
  /// paths pay one predicate evaluation and one branch.
  template <typename DetailFn>
  void expect(bool ok, Time at, Layer layer, int node, const char* rule, DetailFn&& detail) {
    if (!ok) report(at, layer, node, rule, std::forward<DetailFn>(detail)());
  }

  std::uint64_t violation_count() const { return violation_count_; }
  const std::vector<InvariantViolation>& violations() const { return violations_; }
  bool clean() const { return violations_.empty() && violation_count_ == 0; }

  /// Final checks run when the engine's event queue drains (end of every
  /// Engine::run()). Components register whole-state audits here —
  /// conservation laws, queue disjointness — things only checkable at a
  /// quiescent point. Checks must be idempotent: staged benches drain
  /// more than once.
  void add_final_check(std::function<void(InvariantMonitor&)> fn) {
    final_checks_.push_back(std::move(fn));
  }

  void run_final_checks() {
    for (auto& fn : final_checks_) fn(*this);
  }

 private:
  // Cap the retained records so a hot-loop violation in counting mode
  // cannot grow without bound; the count keeps the true total.
  static constexpr std::size_t kMaxKept = 256;

  bool fatal_;
  MetricRegistry* metrics_ = nullptr;
  std::uint64_t violation_count_ = 0;
  std::vector<InvariantViolation> violations_;
  std::vector<std::function<void(InvariantMonitor&)>> final_checks_;
};

}  // namespace fabsim::check

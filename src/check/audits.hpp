// FabricCheck per-layer audit predicates.
//
// Each protocol invariant is a free function over the minimal slice of
// component state it constrains, returning a Verdict: ok, or a failure
// with the rule id and a detail string. The stacks call these with live
// state (reporting failures through the engine's InvariantMonitor); the
// negative tests in tests/check_test.cpp call the same functions with
// deliberately corrupted inputs to prove every checker actually fires.
// Keeping the predicate separate from the reporting is what makes the
// checkers testable without building corruption seams into the NICs.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "check/invariant.hpp"

namespace fabsim::check {

/// Outcome of one audit predicate.
struct Verdict {
  bool ok = true;
  const char* rule = "";
  std::string detail;

  static Verdict pass() { return Verdict{}; }
  static Verdict fail(const char* rule, std::string detail) {
    return Verdict{false, rule, std::move(detail)};
  }

  /// Report through `monitor` (if attached) when the audit failed.
  void report(InvariantMonitor* monitor, Time at, Layer layer, int node) const {
    if (!ok && monitor != nullptr) monitor->report(at, layer, node, rule, detail);
  }
};

// ---------------------------------------------------------------------------
// sim: engine quiescence
// ---------------------------------------------------------------------------

/// Quiescence/deadlock oracle: once the event queue drains, every
/// non-daemon process must have run to completion. A process still
/// suspended at that point lost a wakeup (event trigger, completion
/// push, ack) — the Engine reports it at drain, and FabricExplore uses
/// the same predicate to classify a schedule as deadlocking. Inline on
/// purpose: sim::Engine calls it from its drain hook, and fabsim_check
/// links against fabsim_sim, so an out-of-line definition would close a
/// library cycle (same reason invariant.hpp is header-only).
inline Verdict audit_quiescence(std::size_t live_processes, std::size_t live_daemons) {
  const std::size_t stuck = live_processes - live_daemons;
  if (stuck == 0) return Verdict::pass();
  return Verdict::fail("lost_wakeup",
                       std::to_string(stuck) +
                           " process(es) still suspended with an empty event queue — a wakeup "
                           "(event trigger, completion push, ack) was lost");
}

// ---------------------------------------------------------------------------
// hw: switch fabric
// ---------------------------------------------------------------------------

/// Bounded-buffer admission: once a frame is accepted, the output-port
/// backlog (including the new frame) must fit the configured buffer.
Verdict audit_switch_occupancy(double backlog_bytes, std::uint32_t frame_bytes,
                               std::uint64_t max_queue_bytes);

/// Frame conservation at a quiescent point: every frame handed to
/// ingress() was either forwarded, dropped by the fault injector,
/// tail-dropped, lost to a failed link/switch (down_drops), or
/// unroutable after a failure partitioned the fabric — nothing
/// vanishes, nothing is duplicated. In routed (multi-stage) fabrics the
/// same identity holds per hop: link arrivals count as ingress,
/// transmissions to the next switch as forwarding.
Verdict audit_switch_conservation(std::uint64_t ingressed, std::uint64_t forwarded,
                                  std::uint64_t fault_drops, std::uint64_t tail_drops,
                                  std::uint64_t down_drops = 0,
                                  std::uint64_t unroutable_drops = 0);

/// Credit non-negativity: an output queue's committed occupancy (queued
/// bytes plus credit-reserved bytes in flight toward it) can never go
/// below zero — a negative value means a credit was returned twice.
Verdict audit_credit_nonnegative(std::int64_t occupancy_bytes);

/// Routed-fabric quiescence: when the event queue drains, every output
/// port must have transmitted everything (no stranded frames) and every
/// consumed credit must have been returned (occupancy back to zero) —
/// the credit-conservation half of the flow-control contract.
Verdict audit_switch_queue_drained(int port, std::size_t queued_frames,
                                   std::int64_t occupancy_bytes, bool transmitting);

// ---------------------------------------------------------------------------
// ib: RC transport
// ---------------------------------------------------------------------------

/// Requester inflight queue: PSNs are contiguous and the next stamp
/// (snd_psn) continues the tail — go-back-N replay depends on it.
Verdict audit_ib_inflight_psns(const std::deque<std::uint64_t>& inflight_psns,
                               std::uint64_t snd_psn);

/// Cumulative ack legality: the responder can only ack PSNs the
/// requester has actually sent (ack_psn <= snd_psn), and acks never
/// regress below already-acked state (head of inflight).
Verdict audit_ib_ack_window(std::uint64_t ack_psn, std::uint64_t snd_psn);

/// RTO/error legality: a QP may enter the error state only after the
/// retry counter actually exceeded the limit.
Verdict audit_ib_retry_exhausted(int retry_count, int retry_limit);

// ---------------------------------------------------------------------------
// iwarp: MPA/DDP over TCP
// ---------------------------------------------------------------------------

/// TCP sender window: a segment may only be emitted while it fits the
/// advertised window ((snd_nxt - snd_una) + chunk <= window).
Verdict audit_iwarp_window(std::uint64_t snd_nxt, std::uint64_t snd_una, std::uint32_t chunk,
                           std::uint32_t window);

/// Byte-stream conservation on ack: cumulative acks must lie within
/// [snd_una, snd_nxt] — acking bytes never sent breaks go-back-N.
Verdict audit_iwarp_ack_window(std::uint64_t ack, std::uint64_t snd_una, std::uint64_t snd_nxt);

/// DDP untagged delivery is in-order per message: segment msg_offset
/// must equal the bytes already placed for that message.
Verdict audit_iwarp_untagged_inorder(std::uint32_t msg_offset, std::uint32_t placed,
                                     std::uint64_t msg_id);

// ---------------------------------------------------------------------------
// mx: firmware reliability + matching
// ---------------------------------------------------------------------------

/// Per-flow resend queue: unacked sequence numbers are contiguous and
/// end right below the next stamp.
Verdict audit_mx_resend_queue(const std::deque<std::uint64_t>& unacked_seqs,
                              std::uint64_t next_seq);

/// Flow-ack legality: cumulative ack never exceeds what was sent.
Verdict audit_mx_ack_window(std::uint64_t ack, std::uint64_t next_seq);

// ---------------------------------------------------------------------------
// mpi: matching queues
// ---------------------------------------------------------------------------

/// Posted/unexpected disjointness: an unexpected message that matches a
/// posted receive means the matching logic failed to pair them; the two
/// queues must never hold a matching pair at a quiescent point.
/// Wildcards follow MPI semantics (src = kAnySource, tag = kAnyTag).
Verdict audit_mpi_queue_disjoint(int posted_src, int posted_tag, int msg_src, int msg_tag);

}  // namespace fabsim::check

#include "fault/plan.hpp"

namespace fabsim::fault {

FaultDecision FaultPlan::count(FaultDecision decision) {
  switch (decision.action) {
    case FaultAction::kDrop: ++frames_dropped_; break;
    case FaultAction::kCorrupt: ++frames_corrupted_; break;
    case FaultAction::kDelay: ++frames_delayed_; break;
    case FaultAction::kDeliver: break;
  }
  return decision;
}

FaultPlan& FaultPlan::seeded_link_flaps(std::uint64_t seed, const std::vector<Link>& links,
                                        int count, Time start, Time horizon, Time min_down,
                                        Time max_down) {
  // Private PRNG: the schedule depends only on (seed, links, params),
  // never on how many per-frame draws the plan has already consumed.
  Xoshiro256 rng(seed);
  for (int i = 0; i < count && !links.empty(); ++i) {
    const Link& link = links[rng.uniform_below(links.size())];
    const Time begin = start + rng.uniform_below(horizon > 0 ? horizon : 1);
    const Time span = max_down > min_down
                          ? min_down + rng.uniform_below(max_down - min_down)
                          : min_down;
    link_down(link.sw, link.port, begin, begin + span);
  }
  return *this;
}

FaultDecision FaultPlan::on_frame(const FaultSite& site) {
  ++frames_seen_;

  // Explicit schedule first: one-shot entries are the precision tools
  // tests use to kill exactly one frame, so they must not be preempted
  // by a probabilistic draw.
  for (Nth& entry : nth_) {
    if (!entry.applied && frames_seen_ == entry.n) {
      entry.applied = true;
      return count(FaultDecision{entry.action, entry.delay});
    }
  }
  for (Scheduled& entry : scheduled_) {
    if (!entry.applied && site.now >= entry.at && touches(entry.node, site)) {
      entry.applied = true;
      return count(FaultDecision{entry.action, entry.delay});
    }
  }

  // Windows. Fabric-addressed ones first: they are the more specific
  // match (one directed link or one switch vs. "anything touching a
  // node").
  for (const LinkWindow& window : link_windows_) {
    if (crosses(window.sw, window.port, site) && site.now >= window.start &&
        site.now < window.end) {
      return count(FaultDecision{FaultAction::kDrop, 0});
    }
  }
  for (const Window& flap : flaps_) {
    if (touches(flap.node, site) && site.now >= flap.start && site.now < flap.end) {
      return count(FaultDecision{FaultAction::kDrop, 0});
    }
  }
  for (const Window& stall : stalls_) {
    if (touches(stall.node, site) && site.now >= stall.start && site.now < stall.end) {
      return count(FaultDecision{FaultAction::kDelay, stall.end - site.now});
    }
  }

  // Probabilistic faults. Each armed probability consumes exactly one
  // draw per frame, so the decision stream for a seed is independent of
  // which *other* probabilities are armed on a different plan. Per-link
  // probabilities draw only on frames that cross their link — still
  // deterministic, because the engine presents frames in event order.
  for (const LinkProb& link : link_probs_) {
    if (!crosses(link.sw, link.port, site)) continue;
    if (link.drop_p > 0.0 && rng_.bernoulli(link.drop_p)) {
      return count(FaultDecision{FaultAction::kDrop, 0});
    }
    if (link.corrupt_p > 0.0 && rng_.bernoulli(link.corrupt_p)) {
      return count(FaultDecision{FaultAction::kCorrupt, 0});
    }
    if (link.delay_p > 0.0 && rng_.bernoulli(link.delay_p)) {
      return count(FaultDecision{FaultAction::kDelay, link.delay});
    }
  }
  if (drop_prob_ > 0.0 && rng_.bernoulli(drop_prob_)) {
    return count(FaultDecision{FaultAction::kDrop, 0});
  }
  if (corrupt_prob_ > 0.0 && rng_.bernoulli(corrupt_prob_)) {
    return count(FaultDecision{FaultAction::kCorrupt, 0});
  }
  if (delay_prob_ > 0.0 && rng_.bernoulli(delay_prob_)) {
    return count(FaultDecision{FaultAction::kDelay, delay_time_});
  }
  return FaultDecision{};
}

}  // namespace fabsim::fault

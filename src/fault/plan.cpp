#include "fault/plan.hpp"

namespace fabsim::fault {

FaultDecision FaultPlan::count(FaultDecision decision) {
  switch (decision.action) {
    case FaultAction::kDrop: ++frames_dropped_; break;
    case FaultAction::kCorrupt: ++frames_corrupted_; break;
    case FaultAction::kDelay: ++frames_delayed_; break;
    case FaultAction::kDeliver: break;
  }
  return decision;
}

FaultDecision FaultPlan::on_frame(const FaultSite& site) {
  ++frames_seen_;

  // Explicit schedule first: one-shot entries are the precision tools
  // tests use to kill exactly one frame, so they must not be preempted
  // by a probabilistic draw.
  for (Nth& entry : nth_) {
    if (!entry.applied && frames_seen_ == entry.n) {
      entry.applied = true;
      return count(FaultDecision{entry.action, entry.delay});
    }
  }
  for (Scheduled& entry : scheduled_) {
    if (!entry.applied && site.now >= entry.at && touches(entry.node, site)) {
      entry.applied = true;
      return count(FaultDecision{entry.action, entry.delay});
    }
  }

  // Windows.
  for (const Window& flap : flaps_) {
    if (touches(flap.node, site) && site.now >= flap.start && site.now < flap.end) {
      return count(FaultDecision{FaultAction::kDrop, 0});
    }
  }
  for (const Window& stall : stalls_) {
    if (touches(stall.node, site) && site.now >= stall.start && site.now < stall.end) {
      return count(FaultDecision{FaultAction::kDelay, stall.end - site.now});
    }
  }

  // Probabilistic faults. Each armed probability consumes exactly one
  // draw per frame, so the decision stream for a seed is independent of
  // which *other* probabilities are armed on a different plan.
  if (drop_prob_ > 0.0 && rng_.bernoulli(drop_prob_)) {
    return count(FaultDecision{FaultAction::kDrop, 0});
  }
  if (corrupt_prob_ > 0.0 && rng_.bernoulli(corrupt_prob_)) {
    return count(FaultDecision{FaultAction::kCorrupt, 0});
  }
  if (delay_prob_ > 0.0 && rng_.bernoulli(delay_prob_)) {
    return count(FaultDecision{FaultAction::kDelay, delay_time_});
  }
  return FaultDecision{};
}

}  // namespace fabsim::fault

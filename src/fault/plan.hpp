// FaultPlan: the deterministic, seedable FaultInjector implementation.
//
// A plan composes four kinds of faults, all reproducible from the seed:
//   * probabilistic drop / corrupt / delay (one Bernoulli draw per armed
//     probability per frame, consumed in simulation-event order),
//   * an explicit one-shot schedule: "the first frame at/after time T
//     touching node N", or "the Nth frame observed overall",
//   * link flap windows: every frame touching a node inside [start, end)
//     is dropped (both directions — the cable is out),
//   * NIC stall windows: frames touching a node inside [start, end) are
//     held until the window closes (the adapter stopped responding, then
//     resumed).
//
// Determinism guarantee: the same seed and the same plan produce the same
// decision for the Kth frame presented to the plan, for every K. Because
// the Engine's event queue is itself deterministic, a whole run (drop
// schedule, retry counts, final timings) replays exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/injector.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace fabsim::fault {

class FaultPlan final : public FaultInjector {
 public:
  explicit FaultPlan(std::uint64_t seed = 1) : rng_(seed) {}

  // --- Probabilistic faults (per frame) ---
  FaultPlan& drop_probability(double p) {
    drop_prob_ = p;
    return *this;
  }
  FaultPlan& corrupt_probability(double p) {
    corrupt_prob_ = p;
    return *this;
  }
  FaultPlan& delay_probability(double p, Time delay) {
    delay_prob_ = p;
    delay_time_ = delay;
    return *this;
  }

  // --- Explicit schedule (one-shot entries) ---
  /// Apply `action` to the first frame at or after `at` whose source or
  /// destination is `node` (node < 0 matches any frame).
  FaultPlan& at(Time when, int node, FaultAction action, Time delay = 0) {
    scheduled_.push_back(Scheduled{when, node, action, delay, false});
    return *this;
  }
  /// Apply `action` to the Nth frame observed by this plan (1-based).
  FaultPlan& nth_frame(std::uint64_t n, FaultAction action, Time delay = 0) {
    nth_.push_back(Nth{n, action, delay, false});
    return *this;
  }

  // --- Windows ---
  /// Link flap: every frame touching `node` inside [start, end) is lost.
  FaultPlan& link_flap(int node, Time start, Time end) {
    flaps_.push_back(Window{node, start, end});
    return *this;
  }
  /// NIC stall: frames touching `node` inside [start, end) are delayed
  /// until the window closes.
  FaultPlan& nic_stall(int node, Time start, Time end) {
    stalls_.push_back(Window{node, start, end});
    return *this;
  }

  // --- FaultInjector ---
  FaultDecision on_frame(const FaultSite& site) override;
  bool active() const override {
    return drop_prob_ > 0.0 || corrupt_prob_ > 0.0 || delay_prob_ > 0.0 ||
           !scheduled_.empty() || !nth_.empty() || !flaps_.empty() || !stalls_.empty();
  }

  // --- Statistics ---
  std::uint64_t frames_seen() const { return frames_seen_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }
  std::uint64_t frames_delayed() const { return frames_delayed_; }

 private:
  struct Scheduled {
    Time at;
    int node;  ///< matches src or dst; < 0 matches any
    FaultAction action;
    Time delay;
    bool applied;
  };
  struct Nth {
    std::uint64_t n;  ///< 1-based frame ordinal
    FaultAction action;
    Time delay;
    bool applied;
  };
  struct Window {
    int node;
    Time start;
    Time end;  ///< exclusive
  };

  static bool touches(int node, const FaultSite& site) {
    return node < 0 || site.src_node == node || site.dst_node == node;
  }

  FaultDecision count(FaultDecision decision);

  Xoshiro256 rng_;
  double drop_prob_ = 0.0;
  double corrupt_prob_ = 0.0;
  double delay_prob_ = 0.0;
  Time delay_time_ = 0;
  std::vector<Scheduled> scheduled_;
  std::vector<Nth> nth_;
  std::vector<Window> flaps_;
  std::vector<Window> stalls_;

  std::uint64_t frames_seen_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t frames_delayed_ = 0;
};

}  // namespace fabsim::fault

// FaultPlan: the deterministic, seedable FaultInjector implementation.
//
// A plan composes five kinds of faults, all reproducible from the seed:
//   * probabilistic drop / corrupt / delay (one Bernoulli draw per armed
//     probability per frame, consumed in simulation-event order),
//   * an explicit one-shot schedule: "the first frame at/after time T
//     touching node N", or "the Nth frame observed overall",
//   * link flap windows: every frame touching a node inside [start, end)
//     is dropped (both directions — the cable is out),
//   * NIC stall windows: frames touching a node inside [start, end) are
//     held until the window closes (the adapter stopped responding, then
//     resumed),
//   * fabric-addressed faults (routed topologies, where hw::Switch
//     consults the injector at every hop with a (switch, out port)
//     address): link_down / switch_down windows that kill every frame
//     crossing one directed link or one switch, and per-link
//     probabilistic drop / corrupt / delay. seeded_link_flaps() turns a
//     seed plus a link list into a reproducible randomized flap schedule
//     — the chaos-soak harness's noise source.
//
// Determinism guarantee: the same seed and the same plan produce the same
// decision for the Kth frame presented to the plan, for every K. Because
// the Engine's event queue is itself deterministic, a whole run (drop
// schedule, retry counts, final timings) replays exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/injector.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace fabsim::fault {

class FaultPlan final : public FaultInjector {
 public:
  explicit FaultPlan(std::uint64_t seed = 1) : rng_(seed) {}

  // --- Probabilistic faults (per frame) ---
  FaultPlan& drop_probability(double p) {
    drop_prob_ = p;
    return *this;
  }
  FaultPlan& corrupt_probability(double p) {
    corrupt_prob_ = p;
    return *this;
  }
  FaultPlan& delay_probability(double p, Time delay) {
    delay_prob_ = p;
    delay_time_ = delay;
    return *this;
  }

  // --- Explicit schedule (one-shot entries) ---
  /// Apply `action` to the first frame at or after `at` whose source or
  /// destination is `node` (node < 0 matches any frame).
  FaultPlan& at(Time when, int node, FaultAction action, Time delay = 0) {
    scheduled_.push_back(Scheduled{when, node, action, delay, false});
    return *this;
  }
  /// Apply `action` to the Nth frame observed by this plan (1-based).
  FaultPlan& nth_frame(std::uint64_t n, FaultAction action, Time delay = 0) {
    nth_.push_back(Nth{n, action, delay, false});
    return *this;
  }

  // --- Windows ---
  /// Link flap: every frame touching `node` inside [start, end) is lost.
  FaultPlan& link_flap(int node, Time start, Time end) {
    flaps_.push_back(Window{node, start, end});
    return *this;
  }
  /// NIC stall: frames touching `node` inside [start, end) are delayed
  /// until the window closes.
  FaultPlan& nic_stall(int node, Time start, Time end) {
    stalls_.push_back(Window{node, start, end});
    return *this;
  }

  // --- Fabric-addressed faults (routed topologies) ---

  /// One directed link on a routed fabric: the output `port` of switch
  /// `sw` (as reported in FaultSite::switch_id / out_port).
  struct Link {
    int sw = -1;
    int port = -1;
  };

  /// Link down: every frame routed out (sw, port) inside [start, end)
  /// is lost — a silent cable failure the routing layer does not see
  /// (pair with topo::Topology::schedule_link_down for a detected
  /// failure that reroutes).
  FaultPlan& link_down(int sw, int port, Time start, Time end) {
    link_windows_.push_back(LinkWindow{sw, port, start, end});
    return *this;
  }
  /// Switch down: every frame consulting switch `sw` inside [start, end)
  /// is lost, whatever port it was routed to.
  FaultPlan& switch_down(int sw, Time start, Time end) {
    link_windows_.push_back(LinkWindow{sw, -1, start, end});
    return *this;
  }

  /// Per-link probabilistic faults: one Bernoulli draw per armed
  /// probability per frame crossing (sw, port), consumed in
  /// simulation-event order like the global probabilities.
  FaultPlan& link_drop_probability(int sw, int port, double p) {
    link_probs_.push_back(LinkProb{sw, port, p, 0.0, 0.0, 0});
    return *this;
  }
  FaultPlan& link_corrupt_probability(int sw, int port, double p) {
    link_probs_.push_back(LinkProb{sw, port, 0.0, p, 0.0, 0});
    return *this;
  }
  FaultPlan& link_delay_probability(int sw, int port, double p, Time delay) {
    link_probs_.push_back(LinkProb{sw, port, 0.0, 0.0, p, delay});
    return *this;
  }

  /// Seeded randomized flap schedule: `count` link-down windows drawn
  /// from `links` with start times in [start, start + horizon) and
  /// durations in [min_down, max_down). Uses a private PRNG seeded from
  /// `seed`, so the schedule is independent of (and does not perturb)
  /// the per-frame probabilistic draw stream.
  FaultPlan& seeded_link_flaps(std::uint64_t seed, const std::vector<Link>& links, int count,
                               Time start, Time horizon, Time min_down, Time max_down);

  // --- FaultInjector ---
  FaultDecision on_frame(const FaultSite& site) override;
  bool active() const override {
    return drop_prob_ > 0.0 || corrupt_prob_ > 0.0 || delay_prob_ > 0.0 ||
           !scheduled_.empty() || !nth_.empty() || !flaps_.empty() || !stalls_.empty() ||
           !link_windows_.empty() || !link_probs_.empty();
  }

  // --- Statistics ---
  std::uint64_t frames_seen() const { return frames_seen_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }
  std::uint64_t frames_delayed() const { return frames_delayed_; }

 private:
  struct Scheduled {
    Time at;
    int node;  ///< matches src or dst; < 0 matches any
    FaultAction action;
    Time delay;
    bool applied;
  };
  struct Nth {
    std::uint64_t n;  ///< 1-based frame ordinal
    FaultAction action;
    Time delay;
    bool applied;
  };
  struct Window {
    int node;
    Time start;
    Time end;  ///< exclusive
  };
  struct LinkWindow {
    int sw;
    int port;  ///< -1 matches every port of `sw` (whole-switch failure)
    Time start;
    Time end;  ///< exclusive
  };
  struct LinkProb {
    int sw;
    int port;
    double drop_p;
    double corrupt_p;
    double delay_p;
    Time delay;
  };

  static bool touches(int node, const FaultSite& site) {
    return node < 0 || site.src_node == node || site.dst_node == node;
  }
  static bool crosses(int sw, int port, const FaultSite& site) {
    return site.switch_id == sw && (port < 0 || site.out_port == port);
  }

  FaultDecision count(FaultDecision decision);

  Xoshiro256 rng_;
  double drop_prob_ = 0.0;
  double corrupt_prob_ = 0.0;
  double delay_prob_ = 0.0;
  Time delay_time_ = 0;
  std::vector<Scheduled> scheduled_;
  std::vector<Nth> nth_;
  std::vector<Window> flaps_;
  std::vector<Window> stalls_;
  std::vector<LinkWindow> link_windows_;
  std::vector<LinkProb> link_probs_;

  std::uint64_t frames_seen_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t frames_delayed_ = 0;
};

}  // namespace fabsim::fault

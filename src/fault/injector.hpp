// Fault-injection surface shared by every fabric.
//
// A FaultInjector is attached to the Engine (like the Tracer) and is
// consulted once per frame at each injection point: hw::Switch fault
// seams (once per frame on the seed's direct crossbar; once per *hop* on
// routed multi-stage fabrics, so a FaultPlan can address an individual
// link by (switch, output port)), and NIC transmit paths that model
// adapter-local loss (the iWARP RNIC's `loss_rate`). The injector
// decides the frame's fate — deliver, drop, corrupt (delivered but
// discarded by the receiver's CRC check), or delay — and the recovery
// machinery in each stack (iWARP go-back-N, IB RC retransmission, MX
// resend queue) earns its keep against those decisions.
//
// Stacks arm their recovery machinery only when `faults_armed()` is true,
// so an absent or inert injector leaves every lossless run byte-identical
// in timing to the unhooked simulator.
#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace fabsim::fault {

/// One frame crossing an injection point. On routed fabrics the site
/// also names the hop: the switch consulting the injector and the output
/// port the frame was routed to — together they address one directed
/// link, so plans can fail individual cables and whole switches. The
/// seed's direct crossbar and NIC-local injection leave them at -1.
struct FaultSite {
  Time now = 0;
  int src_node = -1;
  int dst_node = -1;
  std::uint32_t wire_bytes = 0;
  int switch_id = -1;  ///< switch consulting the injector (routed fabrics)
  int out_port = -1;   ///< output port the frame was routed to
};

enum class FaultAction : std::uint8_t {
  kDeliver,  ///< pass through untouched
  kDrop,     ///< frame vanishes on the wire
  kCorrupt,  ///< delivered, but the receiver's CRC check discards it
  kDelay,    ///< delivered late by `FaultDecision::delay`
};

struct FaultDecision {
  FaultAction action = FaultAction::kDeliver;
  Time delay = 0;  ///< extra latency when action == kDelay
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Decide the fate of one frame. Called in simulation-event order, so
  /// any internal PRNG consumption is deterministic for a given seed.
  virtual FaultDecision on_frame(const FaultSite& site) = 0;

  /// True when this injector could ever perturb a frame. Stacks use it
  /// to decide whether to arm acks/timers/retransmit state; an inert
  /// (zero-fault) plan must leave timing untouched.
  virtual bool active() const = 0;
};

/// True when the engine carries an injector that can actually perturb
/// frames — the stacks' cue to arm their recovery machinery.
inline bool faults_armed(Engine& engine) {
  FaultInjector* injector = engine.fault_injector();
  return injector != nullptr && injector->active();
}

}  // namespace fabsim::fault

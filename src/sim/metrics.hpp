// FabricScope metric registry: named counters, gauges, and per-phase
// time attribution.
//
// A MetricRegistry is attached to the Engine exactly like the Tracer:
// caller-owned, null when disabled, every emission site guards on the
// pointer so the cost is one branch when observability is off. Names
// are hierarchical dotted strings ("ib.node0.retransmits",
// "switch.port2.tail_drops", "mpi.rank1.unexpected_max_depth") so a
// dump sorts into a readable taxonomy and downstream tools can split on
// '.' to group by component.
//
// Two populations coexist:
//   * pull — components keep their own cheap integer counters (they
//     already do: retransmits_, reg_hits_, busy_time()); at end of run
//     Cluster::collect_metrics() snapshots them into the registry.
//   * push — events that must be attributed as they happen: phase time
//     (host/NIC/wire, the Fig. 5 decomposition) and timestamped counter
//     samples for the Chrome-trace counter tracks.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace fabsim {

/// Where a slice of simulated time was spent, LogP-style. kHost is CPU
/// time in the library/application, kNic is DMA + NIC engine occupancy,
/// kWire is serialization + propagation through the fabric.
enum class Phase : std::uint8_t { kHost, kNic, kWire };

inline const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kHost: return "host";
    case Phase::kNic: return "nic";
    case Phase::kWire: return "wire";
  }
  return "?";
}

/// Monotone event count (retransmits, acks, cache hits).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  void set(std::uint64_t v) { value_ = v; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous level (queue depth, utilization). Remembers its
/// high-water mark, which is usually the number the paper wants.
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  double value() const { return value_; }
  double max() const { return max_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
};

class MetricRegistry {
 public:
  /// Find-or-create by hierarchical name. References stay valid for the
  /// registry's lifetime (std::map nodes are stable).
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }

  bool has_counter(const std::string& name) const { return counters_.count(name) != 0; }
  std::uint64_t counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }
  double gauge_max(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second.max();
  }

  // --- per-phase time attribution -----------------------------------
  // charge_phase() is the hot push-path hook: hardware models call it
  // (through Engine::charge_phase, guarded on null) whenever they book
  // busy time on a serial/pipelined resource. Accumulated per phase and
  // per (phase, node) so benches can print both the global LogP split
  // and a per-endpoint breakdown.

  void charge_phase(Phase phase, int node, Time duration) {
    phase_total_[static_cast<std::size_t>(phase)] += duration;
    phase_by_node_[{static_cast<std::uint8_t>(phase), node}] += duration;
  }

  Time phase_time(Phase phase) const { return phase_total_[static_cast<std::size_t>(phase)]; }
  Time phase_time(Phase phase, int node) const {
    auto it = phase_by_node_.find({static_cast<std::uint8_t>(phase), node});
    return it == phase_by_node_.end() ? 0 : it->second;
  }
  void reset_phases() {
    phase_total_[0] = phase_total_[1] = phase_total_[2] = 0;
    phase_by_node_.clear();
  }

  // --- timestamped counter-track samples ----------------------------
  // Sparse (time, value) series for Chrome-trace "C" events: queue
  // depths, link utilization over time. Push-path, guarded like
  // charge_phase.

  struct Sample {
    Time at;
    std::string track;
    double value;
  };

  void sample(Time at, const std::string& track, double value) {
    samples_.push_back(Sample{at, track, value});
  }
  const std::vector<Sample>& samples() const { return samples_; }

  // --- dump / iteration ---------------------------------------------

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }

  /// Flat sorted (name, value) view of everything — counters, gauge
  /// high-water marks, and phase totals in microseconds — for reports.
  std::vector<std::pair<std::string, double>> snapshot() const;

  /// Human-readable dump, one "name value" line per metric.
  void dump(std::FILE* out) const;

  void clear() {
    counters_.clear();
    gauges_.clear();
    samples_.clear();
    reset_phases();
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  Time phase_total_[3] = {0, 0, 0};
  std::map<std::pair<std::uint8_t, int>, Time> phase_by_node_;
  std::vector<Sample> samples_;
};

}  // namespace fabsim

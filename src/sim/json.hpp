// Minimal JSON parser for round-trip validation of exported artifacts.
//
// This is deliberately a validator-grade parser, not a general JSON
// library: enough of RFC 8259 (objects, arrays, strings with escapes,
// numbers, true/false/null) for tests to confirm that the Chrome-trace
// and report writers emit well-formed JSON and to inspect a handful of
// fields. Throws std::runtime_error with a byte offset on malformed
// input. No external dependencies, header-only.
#pragma once

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace fabsim::minijson {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::make_shared<Array>(std::move(a))) {}
  Value(Object o) : data_(std::make_shared<Object>(std::move(o))) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<std::shared_ptr<Array>>(data_); }
  bool is_object() const { return std::holds_alternative<std::shared_ptr<Object>>(data_); }

  bool as_bool() const { return std::get<bool>(data_); }
  double as_number() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const Array& as_array() const { return *std::get<std::shared_ptr<Array>>(data_); }
  const Object& as_object() const { return *std::get<std::shared_ptr<Object>>(data_); }

  /// Object member access; throws if not an object or key missing.
  const Value& at(const std::string& key) const {
    const Object& obj = as_object();
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("minijson: missing key '" + key + "'");
    return it->second;
  }
  bool has(const std::string& key) const {
    return is_object() && as_object().count(key) != 0;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, std::shared_ptr<Array>,
               std::shared_ptr<Object>>
      data_;
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("minijson: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value{parse_string()};
      case 't': parse_literal("true"); return Value{true};
      case 'f': parse_literal("false"); return Value{false};
      case 'n': parse_literal("null"); return Value{nullptr};
      default: return parse_number();
    }
  }

  void parse_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail(std::string("bad literal ") + lit);
      ++pos_;
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value{std::move(obj)};
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value{std::move(obj)};
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value{std::move(arr)};
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value{std::move(arr)};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Validator-grade: encode BMP code points as UTF-8, no
          // surrogate-pair recombination (the exporters never emit them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("bad number");
    try {
      return Value{std::stod(text_.substr(start, pos_ - start))};
    } catch (const std::exception&) {
      fail("unparseable number");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parse a complete JSON document; throws std::runtime_error on error.
inline Value parse(const std::string& text) { return detail::Parser(text).parse(); }

/// Escape a string for embedding in JSON output (shared by writers).
inline std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace fabsim::minijson

// Coroutine synchronization primitives.
//
// All wake-ups are routed through the Engine's event queue (never resumed
// inline), so the relative order of same-time resumptions is the order the
// wake-ups were issued — deterministic across runs.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/engine.hpp"

namespace fabsim {

/// One-shot event: wait() suspends until trigger(); afterwards wait() is
/// a no-op. Multiple waiters allowed.
class Event {
 public:
  explicit Event(Engine& engine) : engine_(&engine) {}

  bool triggered() const { return triggered_; }

  void trigger() {
    if (triggered_) return;
    triggered_ = true;
    for (std::coroutine_handle<> h : waiters_) engine_->post_resume(engine_->now(), h);
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const noexcept { return event->triggered_; }
      void await_suspend(std::coroutine_handle<> h) { event->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Engine* engine_;
  bool triggered_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Repeating notification: every notify_all() wakes all current waiters.
class Notifier {
 public:
  explicit Notifier(Engine& engine) : engine_(&engine) {}

  void notify_all() {
    for (std::coroutine_handle<> h : waiters_) engine_->post_resume(engine_->now(), h);
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Notifier* notifier;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { notifier->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Engine* engine_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO wake order.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::int64_t initial) : engine_(&engine), count_(initial) {}

  std::int64_t count() const { return count_; }

  auto acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept {
        if (sem->count_ > 0 && sem->waiters_.empty()) {
          --sem->count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { sem->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void release() {
    if (!waiters_.empty()) {
      // Ownership transfers directly to the first waiter.
      std::coroutine_handle<> h = waiters_.front();
      waiters_.pop_front();
      engine_->post_resume(engine_->now(), h);
    } else {
      ++count_;
    }
  }

 private:
  Engine* engine_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO channel with direct value handoff to waiting receivers.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine) : engine_(&engine) {}

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  void send(T value) {
    if (!waiters_.empty()) {
      Waiter* waiter = waiters_.front();
      waiters_.pop_front();
      waiter->value = std::move(value);
      engine_->post_resume(engine_->now(), waiter->handle);
    } else {
      items_.push_back(std::move(value));
    }
  }

  auto recv() {
    struct Awaiter : Waiter {
      Mailbox* box;
      explicit Awaiter(Mailbox* b) : box(b) {}
      bool await_ready() noexcept {
        if (!box->items_.empty()) {
          this->value = std::move(box->items_.front());
          box->items_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        this->handle = h;
        box->waiters_.push_back(this);
      }
      T await_resume() { return std::move(*this->value); }
    };
    return Awaiter{this};
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T> value;
  };

  Engine* engine_;
  std::deque<T> items_;
  std::deque<Waiter*> waiters_;
};

}  // namespace fabsim

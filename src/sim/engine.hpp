// Discrete-event simulation engine.
//
// The Engine owns a monotone event queue keyed by (time, sequence number),
// which makes every run fully deterministic: ties are broken by insertion
// order. Coroutine processes (Task<void>) are spawned as top-level
// "drivers"; all suspension points (sleep, Event, Semaphore, resources)
// resume through the queue, never inline, so no process can starve another
// at the same timestamp.
//
// The Engine must outlive every process spawned on it. Destroying an Engine
// with live processes destroys their coroutine frames (stack unwinding via
// RAII still runs inside each frame).
#pragma once

#include <algorithm>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "sim/hot.hpp"
#include "sim/inplace_fn.hpp"
#include "sim/metrics.hpp"
#include "sim/prof.hpp"
#include "sim/schedule.hpp"
#include "sim/scope.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace fabsim {

class Engine;

namespace fault {
class FaultInjector;
}

namespace check {
class InvariantMonitor;
}

namespace detail {

/// Shared completion state for a spawned process.
struct ProcessState {
  bool done = false;
  std::vector<std::coroutine_handle<>> joiners;
};

/// Self-destroying top-level coroutine that drives a Task to completion.
struct Driver {
  struct promise_type {
    Engine* engine = nullptr;

    Driver get_return_object() {
      return Driver{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) const noexcept;
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    // drive() catches everything itself; anything reaching here is fatal.
    void unhandled_exception() noexcept { std::terminate(); }
  };

  std::coroutine_handle<promise_type> handle;
};

}  // namespace detail

/// Handle to a spawned process; join() suspends until it completes.
class Process {
 public:
  Process() = default;
  explicit Process(std::shared_ptr<detail::ProcessState> state) : state_(std::move(state)) {}

  bool done() const { return !state_ || state_->done; }

  auto join() const {
    struct Awaiter {
      std::shared_ptr<detail::ProcessState> state;
      bool await_ready() const noexcept { return !state || state->done; }
      void await_suspend(std::coroutine_handle<> h) const { state->joiners.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{state_};
  }

 private:
  std::shared_ptr<detail::ProcessState> state_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedule a callback at absolute time `at` (must be >= now()).
  /// The payload is a sim::EventFn — fixed inline storage, no heap: a
  /// capture that outgrows sim::kEventFnCapacity is a compile error at
  /// the post site, never a silent allocation on the dispatch path.
  void post(Time at, sim::EventFn fn) { post(at, /*scope=*/-1, std::move(fn)); }

  /// Schedule a callback whose effects are confined to one node. The
  /// scope label feeds the SchedulePolicy's commutativity metadata (two
  /// co-enabled events on different nodes commute); it has no effect on
  /// the default schedule. Pass -1 when the event touches shared state.
  ///
  /// Defined inline: post is the write half of the hot path, and keeping
  /// it visible to every caller lets the compiler collapse the
  /// construct-then-move chain of the by-value sim::EventFn instead of
  /// relocating it across a translation-unit boundary.
  FABSIM_HOT void post(Time at, int scope, sim::EventFn fn) {
    assert(at >= now_ && "cannot schedule into the past");
    if (monitor_ != nullptr && at < now_) report_past_post(at);
    // Amortized backing-store growth is the one allocation class the
    // zero-alloc dispatch contract permits: push() reports how many
    // tracked allocations it performed (key heap, payload slab, free-list
    // reserve — 0 in steady state), so the hot auditor's per-event budget
    // and the profiler's allocs_per_event exclude exactly those.
    const int growths = queue_.push(at, next_seq_++, scope, std::move(fn));
    if (growths > 0) {
      if (profiler_ != nullptr) profiler_->on_queue_growth(static_cast<std::uint64_t>(growths));
      if (hot_auditor_ != nullptr) hot_auditor_->excuse_growth(static_cast<std::uint64_t>(growths));
    }
    if (profiler_ != nullptr) profiler_->on_post(queue_.size());
  }

  /// Schedule a coroutine resumption at absolute time `at`.
  void post_resume(Time at, std::coroutine_handle<> h);

  /// Awaitable: suspend for duration `d`.
  auto sleep(Time d) { return SleepAwaiter{this, now_ + d}; }

  /// Awaitable: suspend until absolute time `t` (no-op if in the past).
  auto sleep_until(Time t) { return SleepAwaiter{this, t < now_ ? now_ : t}; }

  /// Awaitable: re-queue at the current time, letting same-time events run.
  auto yield() { return SleepAwaiter{this, now_}; }

  /// Start a coroutine as a top-level process. Runs until its first
  /// suspension point immediately.
  Process spawn(Task<> task);

  /// Spawn a background service process (e.g. an async-progress loop)
  /// that legitimately outlives the workload: it is excluded from the
  /// no-lost-wakeup audit at queue drain.
  Process spawn_daemon(Task<> task);

  /// Run until the event queue drains. Rethrows the first exception that
  /// escaped any process.
  void run();

  /// Run events with timestamp <= t, then set now() = t.
  void run_until(Time t);

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t live_processes() const { return drivers_.size(); }
  std::size_t live_daemons() const { return daemons_.size(); }

  /// FNV-1a digest folded over the (time, sequence) pair of every event
  /// processed so far. Two runs of the same workload must produce the
  /// same digest — this is the determinism verifier's fingerprint
  /// (scripts/check_determinism.sh diffs it across repeated runs).
  std::uint64_t run_digest() const { return digest_; }

  /// Fold extra material (e.g. a final-metrics hash) into the digest.
  void digest_mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      digest_ ^= (value >> (8 * i)) & 0xff;
      digest_ *= 0x100000001b3ULL;
    }
  }

  /// Optional structured tracer (null when disabled). Emission sites
  /// guard on this pointer, so tracing costs one branch when off.
  Tracer* tracer() { return tracer_; }
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Convenience: emit at the current time if tracing is enabled.
  void trace(TraceCategory category, int node, std::string label) {
    if (tracer_ != nullptr) tracer_->emit(now_, category, node, std::move(label));
  }

  /// Optional metric registry (null when disabled). Caller-owned, like
  /// the tracer; emission sites guard on this pointer so FabricScope
  /// costs one branch when off.
  MetricRegistry* metrics() { return metrics_; }
  void set_metrics(MetricRegistry* metrics) { metrics_ = metrics; }

  /// Convenience: attribute `duration` of simulated time at `node` to a
  /// LogP-style phase (host CPU / NIC / wire) if metrics are enabled.
  void charge_phase(Phase phase, int node, Time duration) {
    if (metrics_ != nullptr) metrics_->charge_phase(phase, node, duration);
  }

  /// Convenience: record a timestamped counter-track sample (for
  /// Chrome-trace counter tracks) if metrics are enabled.
  void metric_sample(const std::string& track, double value) {
    if (metrics_ != nullptr) metrics_->sample(now_, track, value);
  }

  /// Optional fault injector (null when the fabric is perfect). Owned by
  /// the caller, like the tracer; the Switch and the NIC frame paths
  /// consult it per frame. Attach before traffic starts — stacks sample
  /// it to decide whether to arm their recovery machinery.
  fault::FaultInjector* fault_injector() { return fault_injector_; }
  void set_fault_injector(fault::FaultInjector* injector) { fault_injector_ = injector; }

  /// Optional FabricCheck invariant monitor (null when auditing is off).
  /// Caller-owned, like the tracer. The engine itself reports event-time
  /// monotonicity and no-lost-wakeup violations; every stack reports its
  /// own protocol invariants through the same monitor.
  check::InvariantMonitor* monitor() { return monitor_; }
  void set_monitor(check::InvariantMonitor* monitor) { monitor_ = monitor; }

  /// Optional FabricProf host-time profiler (null when profiling is
  /// off). Caller-owned, like the tracer; the dispatch loop and post()
  /// guard on this pointer, so a detached profiler costs one branch per
  /// event and the simulated timeline stays byte-identical (pinned by
  /// tests). Attaching enables the counting-allocator seam; detaching
  /// (or destroying the engine) disables it.
  Profiler* profiler() { return profiler_; }
  void set_profiler(Profiler* profiler);

  /// Optional FabricScope-Check runtime auditor (null when auditing is
  /// off). Caller-owned, like the tracer. The dispatch loop brackets
  /// every event with the scope label it was posted under; annotated
  /// state entry points (FABSIM_AUDIT_OWNED / FABSIM_AUDIT_SHARED) trap
  /// accesses whose ownership contradicts that label. Never posts or
  /// reorders events, so an attached auditor leaves run_digest()
  /// byte-identical (pinned by tests/scope_test.cpp).
  scope::ScopeAuditor* scope_auditor() { return scope_auditor_; }
  void set_scope_auditor(scope::ScopeAuditor* auditor) { scope_auditor_ = auditor; }

  /// Optional FabricHot-Check runtime auditor (null when auditing is
  /// off). Caller-owned, like the tracer. The dispatch loop brackets
  /// every event; the auditor charges tracked allocations during the
  /// callback against a per-event budget (default 0), with the queue's
  /// own amortized growth excused. Attaching arms the refcounted
  /// counting-allocator seam; never posts or reorders events, so an
  /// attached auditor leaves run_digest() byte-identical (pinned by
  /// tests/hotpath_test.cpp).
  hot::HotpathAuditor* hotpath_auditor() { return hot_auditor_; }
  void set_hotpath_auditor(hot::HotpathAuditor* auditor);

  /// Test-only: arm the FABSIM_MUTATION_HOTALLOC seam so the dispatch
  /// path performs one deliberate tracked allocation per event — the
  /// hot-path gate's runtime self-test (the static half is
  /// `hotpath_check.py --mutation`).
  void set_mutation_hotalloc(bool armed) { mutation_hotalloc_ = armed; }

  /// Optional pluggable tie-break for co-enabled events (FabricExplore).
  /// Caller-owned, like the tracer. With no policy (the default) the
  /// dispatch loop pops straight off the priority queue — the insertion-
  /// order schedule — without materializing ready sets.
  SchedulePolicy* schedule_policy() { return policy_; }
  void set_schedule_policy(SchedulePolicy* policy) { policy_ = policy; }

  struct SleepAwaiter {
    Engine* engine;
    Time at;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const { engine->post_resume(at, h); }
    void await_resume() const noexcept {}
  };

 private:
  friend struct detail::Driver::promise_type::FinalAwaiter;

  struct Item {
    Time at;
    std::uint64_t seq;
    int scope;  ///< node confinement label for SchedulePolicy; -1 = unknown
    sim::EventFn fn;
  };

  /// Binary min-heap over (at, seq), replacing std::priority_queue so the
  /// Engine can (a) count an imminent capacity growth *as it happens* —
  /// the one allocation the zero-alloc dispatch contract excuses — and
  /// (b) move items out of the heap without the const_cast the adapter's
  /// const-only top() used to force. Pop order is identical: (at, seq)
  /// keys are unique, so the heap's tie-handling never matters.
  ///
  /// The heap holds 24-byte Keys; the sim::EventFn payloads live in a
  /// side slab indexed by Key::slot and recycled through a free list.
  /// Keeping the payload out of the heap matters: every sift-up/down
  /// swap moves a trivially-copyable Key instead of a kEventFnCapacity-
  /// byte inline buffer plus a relocate call through the vtable — with
  /// the payload inline, reheapification cost scales with capture size
  /// and halves BM_EventQueueThroughput.
  ///
  /// The slab itself is chunked (fixed-size payload blocks, each
  /// reserved once and never reallocated), so a payload's address is
  /// stable for its whole queued life: slab growth mints a fresh block
  /// instead of relocating every parked continuation, and the Engine
  /// dispatches straight out of the slot by reference — one payload
  /// move in (post), zero moves out — before release() destroys the
  /// capture and recycles the slot.
  class EventQueue {
   public:
    struct Key {
      Time at;
      std::uint64_t seq;
      int scope;
      std::uint32_t slot;  ///< payload index into the slab
      bool operator>(const Key& other) const {
        if (at != other.at) return at > other.at;
        return seq > other.seq;
      }
    };

    bool empty() const { return keys_.empty(); }
    std::size_t size() const { return keys_.size(); }
    const Key& top() const { return keys_.front(); }

    /// Returns the number of tracked backing-store allocations the push
    /// performed (0 in steady state) so the caller can excuse them with
    /// the observers: the key heap's amortized doubling, plus — when a
    /// fresh payload block is minted — the block's one-shot reserve, the
    /// block directory's occasional doubling, and the free list's
    /// matching reserve.
    FABSIM_HOT int push(Time at, std::uint64_t seq, int scope, sim::EventFn&& fn) {
      int growths = 0;
      if (keys_.size() == keys_.capacity()) ++growths;
      std::uint32_t slot;
      if (free_.empty()) {
        if (chunks_.empty() || chunks_.back().size() == kChunkSize) {
          if (chunks_.size() == chunks_.capacity()) ++growths;
          ++growths;  // the new block's payload buffer, reserved once below
          // HOT-OK(payload-block mint, amortized over kChunkSize posts; counted in the return value and excused with the observers)
          chunks_.emplace_back();
          // HOT-OK(one-shot block reserve; counted in the return value and excused with the observers)
          chunks_.back().reserve(kChunkSize);
          const std::size_t cap = chunks_.size() * kChunkSize;
          if (cap > free_.capacity()) {
            ++growths;
            // HOT-OK(free-list capacity tracks the slab so release()'s push_back never reallocates)
            free_.reserve(cap);
          }
        }
        Chunk& chunk = chunks_.back();
        slot = static_cast<std::uint32_t>(((chunks_.size() - 1) << kChunkShift) + chunk.size());
        // HOT-OK(block was reserved to kChunkSize at mint; within capacity, never reallocates)
        chunk.push_back(std::move(fn));
      } else {
        slot = free_.back();
        free_.pop_back();
        payload(slot) = std::move(fn);
      }
      // HOT-OK(key-heap growth, amortized; counted in the return value and excused with the observers)
      keys_.push_back(Key{at, seq, scope, slot});
      std::push_heap(keys_.begin(), keys_.end(), std::greater<>{});
      return growths;
    }

    /// Pop the (at, seq) minimum's key. The payload slot stays live —
    /// pinned for in-place dispatch — until release(slot).
    FABSIM_HOT Key pop_key() {
      std::pop_heap(keys_.begin(), keys_.end(), std::greater<>{});
      const Key key = keys_.back();
      keys_.pop_back();
      return key;
    }

    /// The parked continuation for a popped key. The reference stays
    /// valid across posts made while it runs: blocks never reallocate,
    /// and the slot cannot be recycled before release().
    FABSIM_HOT sim::EventFn& payload(std::uint32_t slot) {
      return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
    }

    /// Destroy a dispatched payload (captured frames and completion
    /// state die here, exactly where the pre-slab queue destroyed its
    /// popped item) and recycle the slot.
    FABSIM_HOT void release(std::uint32_t slot) {
      payload(slot) = sim::EventFn();
      // HOT-OK(free_ was reserved to the slab's capacity in push(); this never reallocates)
      free_.push_back(slot);
    }

    /// Pop with the payload moved out — the SchedulePolicy
    /// materialization path, which parks candidates in Engine::ready_.
    Item pop_top() {
      const Key key = pop_key();
      Item item{key.at, key.seq, key.scope, std::move(payload(key.slot))};
      // The move above disengaged the slot; just recycle it.
      // HOT-OK(free_ was reserved to the slab's capacity in push(); this never reallocates)
      free_.push_back(key.slot);
      return item;
    }

   private:
    /// Payloads per block: big enough to amortize block mints, small
    /// enough that an idle queue is not sitting on megabytes.
    static constexpr std::size_t kChunkShift = 8;
    static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

    // The backing stores allocate through the FabricProf counting
    // allocator (a no-op branch unless the seam is armed), so event-
    // posting heap traffic is a measured number, not folklore.
    using Chunk = std::vector<sim::EventFn, prof::CountingAllocator<sim::EventFn>>;
    std::vector<Key, prof::CountingAllocator<Key>> keys_;
    std::vector<Chunk, prof::CountingAllocator<Chunk>> chunks_;
    std::vector<std::uint32_t, prof::CountingAllocator<std::uint32_t>> free_;
  };

  static detail::Driver drive(Engine* engine, Task<> task,
                              std::shared_ptr<detail::ProcessState> state);

  void note_exception(std::exception_ptr e) {
    if (!pending_exception_) pending_exception_ = std::move(e);
  }
  void check_exception();

  Process spawn_impl(Task<> task, bool daemon);
  /// Dequeue the next event to dispatch. With a SchedulePolicy attached,
  /// materializes the co-enabled set at the head timestamp and lets the
  /// policy pick; otherwise pops the (time, seq) minimum directly.
  Item pop_next();
  /// One run-loop iteration: pop, account, dispatch (in place from the
  /// slab without a SchedulePolicy; via a materialized Item with one),
  /// then surface any deferred exception.
  void step();
  /// Run one event's callback, wrapped in the profiler's sampled
  /// host-time measurement and the hot/scope auditors' event brackets
  /// when they are attached. This is the hot-path root: everything it
  /// reaches is subject to the FabricHot-Check purity rules
  /// (scripts/hotpath_check.py walks the call graph from here).
  FABSIM_HOT void dispatch(int scope, sim::EventFn& fn) {
    if (scope_auditor_ != nullptr) scope_auditor_->begin_event(now_, scope);
    if (hot_auditor_ != nullptr) hot_auditor_->begin_event(now_);
    if (profiler_ != nullptr) profiler_->begin_event_allocs();
    FABSIM_MUTATION_HOTALLOC(mutation_hotalloc_);
    if (profiler_ != nullptr && profiler_->begin_dispatch(now_, scope)) {
      fn();
      profiler_->end_dispatch();
    } else {
      fn();
    }
    if (profiler_ != nullptr) profiler_->end_event_allocs();
    if (hot_auditor_ != nullptr) hot_auditor_->end_event();
    if (scope_auditor_ != nullptr) scope_auditor_->end_event();
  }
  /// Digest + monotonicity + bookkeeping for one popped event.
  void account_event(Time at, std::uint64_t seq);
  /// Misuse diagnostic for a post() into the past — out of line so the
  /// inline post() stays free of string building.
  FABSIM_COLD void report_past_post(Time at);
  /// Monitor hooks at queue drain: lost-wakeup audit + final checks.
  void on_drain();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  ///< FNV-1a offset basis
  EventQueue queue_;
  // Scratch for the SchedulePolicy path of pop_next(): members so their
  // capacity is reused across materializations instead of reallocated
  // per co-enabled set.
  std::vector<Item> ready_;
  std::vector<ReadyEvent> view_;
  std::unordered_set<void*> drivers_;
  std::unordered_set<void*> daemons_;
  std::exception_ptr pending_exception_;
  Tracer* tracer_ = nullptr;
  MetricRegistry* metrics_ = nullptr;
  fault::FaultInjector* fault_injector_ = nullptr;
  check::InvariantMonitor* monitor_ = nullptr;
  Profiler* profiler_ = nullptr;
  scope::ScopeAuditor* scope_auditor_ = nullptr;
  hot::HotpathAuditor* hot_auditor_ = nullptr;
  SchedulePolicy* policy_ = nullptr;
  bool mutation_hotalloc_ = false;
};

}  // namespace fabsim

// Discrete-event simulation engine.
//
// The Engine owns a monotone event queue keyed by (time, sequence number),
// which makes every run fully deterministic: ties are broken by insertion
// order. Coroutine processes (Task<void>) are spawned as top-level
// "drivers"; all suspension points (sleep, Event, Semaphore, resources)
// resume through the queue, never inline, so no process can starve another
// at the same timestamp.
//
// The Engine must outlive every process spawned on it. Destroying an Engine
// with live processes destroys their coroutine frames (stack unwinding via
// RAII still runs inside each frame).
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/prof.hpp"
#include "sim/schedule.hpp"
#include "sim/scope.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace fabsim {

class Engine;

namespace fault {
class FaultInjector;
}

namespace check {
class InvariantMonitor;
}

namespace detail {

/// Shared completion state for a spawned process.
struct ProcessState {
  bool done = false;
  std::vector<std::coroutine_handle<>> joiners;
};

/// Self-destroying top-level coroutine that drives a Task to completion.
struct Driver {
  struct promise_type {
    Engine* engine = nullptr;

    Driver get_return_object() {
      return Driver{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) const noexcept;
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    // drive() catches everything itself; anything reaching here is fatal.
    void unhandled_exception() noexcept { std::terminate(); }
  };

  std::coroutine_handle<promise_type> handle;
};

}  // namespace detail

/// Handle to a spawned process; join() suspends until it completes.
class Process {
 public:
  Process() = default;
  explicit Process(std::shared_ptr<detail::ProcessState> state) : state_(std::move(state)) {}

  bool done() const { return !state_ || state_->done; }

  auto join() const {
    struct Awaiter {
      std::shared_ptr<detail::ProcessState> state;
      bool await_ready() const noexcept { return !state || state->done; }
      void await_suspend(std::coroutine_handle<> h) const { state->joiners.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{state_};
  }

 private:
  std::shared_ptr<detail::ProcessState> state_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedule a callback at absolute time `at` (must be >= now()).
  void post(Time at, std::function<void()> fn) { post(at, /*scope=*/-1, std::move(fn)); }

  /// Schedule a callback whose effects are confined to one node. The
  /// scope label feeds the SchedulePolicy's commutativity metadata (two
  /// co-enabled events on different nodes commute); it has no effect on
  /// the default schedule. Pass -1 when the event touches shared state.
  void post(Time at, int scope, std::function<void()> fn);

  /// Schedule a coroutine resumption at absolute time `at`.
  void post_resume(Time at, std::coroutine_handle<> h);

  /// Awaitable: suspend for duration `d`.
  auto sleep(Time d) { return SleepAwaiter{this, now_ + d}; }

  /// Awaitable: suspend until absolute time `t` (no-op if in the past).
  auto sleep_until(Time t) { return SleepAwaiter{this, t < now_ ? now_ : t}; }

  /// Awaitable: re-queue at the current time, letting same-time events run.
  auto yield() { return SleepAwaiter{this, now_}; }

  /// Start a coroutine as a top-level process. Runs until its first
  /// suspension point immediately.
  Process spawn(Task<> task);

  /// Spawn a background service process (e.g. an async-progress loop)
  /// that legitimately outlives the workload: it is excluded from the
  /// no-lost-wakeup audit at queue drain.
  Process spawn_daemon(Task<> task);

  /// Run until the event queue drains. Rethrows the first exception that
  /// escaped any process.
  void run();

  /// Run events with timestamp <= t, then set now() = t.
  void run_until(Time t);

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t live_processes() const { return drivers_.size(); }
  std::size_t live_daemons() const { return daemons_.size(); }

  /// FNV-1a digest folded over the (time, sequence) pair of every event
  /// processed so far. Two runs of the same workload must produce the
  /// same digest — this is the determinism verifier's fingerprint
  /// (scripts/check_determinism.sh diffs it across repeated runs).
  std::uint64_t run_digest() const { return digest_; }

  /// Fold extra material (e.g. a final-metrics hash) into the digest.
  void digest_mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      digest_ ^= (value >> (8 * i)) & 0xff;
      digest_ *= 0x100000001b3ULL;
    }
  }

  /// Optional structured tracer (null when disabled). Emission sites
  /// guard on this pointer, so tracing costs one branch when off.
  Tracer* tracer() { return tracer_; }
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Convenience: emit at the current time if tracing is enabled.
  void trace(TraceCategory category, int node, std::string label) {
    if (tracer_ != nullptr) tracer_->emit(now_, category, node, std::move(label));
  }

  /// Optional metric registry (null when disabled). Caller-owned, like
  /// the tracer; emission sites guard on this pointer so FabricScope
  /// costs one branch when off.
  MetricRegistry* metrics() { return metrics_; }
  void set_metrics(MetricRegistry* metrics) { metrics_ = metrics; }

  /// Convenience: attribute `duration` of simulated time at `node` to a
  /// LogP-style phase (host CPU / NIC / wire) if metrics are enabled.
  void charge_phase(Phase phase, int node, Time duration) {
    if (metrics_ != nullptr) metrics_->charge_phase(phase, node, duration);
  }

  /// Convenience: record a timestamped counter-track sample (for
  /// Chrome-trace counter tracks) if metrics are enabled.
  void metric_sample(const std::string& track, double value) {
    if (metrics_ != nullptr) metrics_->sample(now_, track, value);
  }

  /// Optional fault injector (null when the fabric is perfect). Owned by
  /// the caller, like the tracer; the Switch and the NIC frame paths
  /// consult it per frame. Attach before traffic starts — stacks sample
  /// it to decide whether to arm their recovery machinery.
  fault::FaultInjector* fault_injector() { return fault_injector_; }
  void set_fault_injector(fault::FaultInjector* injector) { fault_injector_ = injector; }

  /// Optional FabricCheck invariant monitor (null when auditing is off).
  /// Caller-owned, like the tracer. The engine itself reports event-time
  /// monotonicity and no-lost-wakeup violations; every stack reports its
  /// own protocol invariants through the same monitor.
  check::InvariantMonitor* monitor() { return monitor_; }
  void set_monitor(check::InvariantMonitor* monitor) { monitor_ = monitor; }

  /// Optional FabricProf host-time profiler (null when profiling is
  /// off). Caller-owned, like the tracer; the dispatch loop and post()
  /// guard on this pointer, so a detached profiler costs one branch per
  /// event and the simulated timeline stays byte-identical (pinned by
  /// tests). Attaching enables the counting-allocator seam; detaching
  /// (or destroying the engine) disables it.
  Profiler* profiler() { return profiler_; }
  void set_profiler(Profiler* profiler);

  /// Optional FabricScope-Check runtime auditor (null when auditing is
  /// off). Caller-owned, like the tracer. The dispatch loop brackets
  /// every event with the scope label it was posted under; annotated
  /// state entry points (FABSIM_AUDIT_OWNED / FABSIM_AUDIT_SHARED) trap
  /// accesses whose ownership contradicts that label. Never posts or
  /// reorders events, so an attached auditor leaves run_digest()
  /// byte-identical (pinned by tests/scope_test.cpp).
  scope::ScopeAuditor* scope_auditor() { return scope_auditor_; }
  void set_scope_auditor(scope::ScopeAuditor* auditor) { scope_auditor_ = auditor; }

  /// Optional pluggable tie-break for co-enabled events (FabricExplore).
  /// Caller-owned, like the tracer. With no policy (the default) the
  /// dispatch loop pops straight off the priority queue — the insertion-
  /// order schedule — without materializing ready sets.
  SchedulePolicy* schedule_policy() { return policy_; }
  void set_schedule_policy(SchedulePolicy* policy) { policy_ = policy; }

  struct SleepAwaiter {
    Engine* engine;
    Time at;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const { engine->post_resume(at, h); }
    void await_resume() const noexcept {}
  };

 private:
  friend struct detail::Driver::promise_type::FinalAwaiter;

  struct Item {
    Time at;
    std::uint64_t seq;
    int scope;  ///< node confinement label for SchedulePolicy; -1 = unknown
    std::function<void()> fn;
    bool operator>(const Item& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  static detail::Driver drive(Engine* engine, Task<> task,
                              std::shared_ptr<detail::ProcessState> state);

  void note_exception(std::exception_ptr e) {
    if (!pending_exception_) pending_exception_ = std::move(e);
  }
  void check_exception();

  Process spawn_impl(Task<> task, bool daemon);
  /// Dequeue the next event to dispatch. With a SchedulePolicy attached,
  /// materializes the co-enabled set at the head timestamp and lets the
  /// policy pick; otherwise pops the (time, seq) minimum directly.
  Item pop_next();
  /// Run one event's callback, wrapped in the profiler's sampled
  /// host-time measurement when a Profiler is attached.
  void dispatch(const Item& item) {
    if (scope_auditor_ != nullptr) scope_auditor_->begin_event(now_, item.scope);
    if (profiler_ != nullptr && profiler_->begin_dispatch(now_, item.scope)) {
      item.fn();
      profiler_->end_dispatch();
    } else {
      item.fn();
    }
    if (scope_auditor_ != nullptr) scope_auditor_->end_event();
  }
  /// Digest + monotonicity + bookkeeping for one popped event.
  void account_event(const Item& item);
  /// Monitor hooks at queue drain: lost-wakeup audit + final checks.
  void on_drain();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  ///< FNV-1a offset basis
  // The queue's backing store allocates through the FabricProf counting
  // allocator (a no-op branch unless a Profiler is attached), so event-
  // posting heap traffic is a measured number, not folklore.
  std::priority_queue<Item, std::vector<Item, prof::CountingAllocator<Item>>, std::greater<>>
      queue_;
  std::unordered_set<void*> drivers_;
  std::unordered_set<void*> daemons_;
  std::exception_ptr pending_exception_;
  Tracer* tracer_ = nullptr;
  MetricRegistry* metrics_ = nullptr;
  fault::FaultInjector* fault_injector_ = nullptr;
  check::InvariantMonitor* monitor_ = nullptr;
  Profiler* profiler_ = nullptr;
  scope::ScopeAuditor* scope_auditor_ = nullptr;
  SchedulePolicy* policy_ = nullptr;
};

}  // namespace fabsim

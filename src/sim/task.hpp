// Lazily-started coroutine task with symmetric-transfer continuation.
//
// Task<T> is the unit of concurrency in the simulator. A task does not run
// until it is either co_awaited by another task or spawned on an Engine as a
// top-level process. Completion resumes the awaiting coroutine directly
// (symmetric transfer), so a chain of awaits costs no event-queue traffic.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace fabsim {

template <typename T>
class Task;

namespace detail {

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) const noexcept {
      auto& promise = h.promise();
      if (promise.continuation) return promise.continuation;
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct TaskPromise final : TaskPromiseBase {
  std::optional<T> value;  // optional: T need not be default-constructible

  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct TaskPromise<void> final : TaskPromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace detail

/// A lazily-started coroutine. Move-only; owns its frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  /// Release ownership of the coroutine frame (used by Engine::spawn).
  Handle release() { return std::exchange(handle_, {}); }

  /// Awaiting a Task starts it; the awaiter resumes when it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // symmetric transfer: start the child now
      }
      T await_resume() {
        auto& promise = handle.promise();
        if (promise.exception) std::rethrow_exception(promise.exception);
        if constexpr (!std::is_void_v<T>) return std::move(*promise.value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_{};
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>{std::coroutine_handle<TaskPromise<T>>::from_promise(*this)};
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>{std::coroutine_handle<TaskPromise<void>>::from_promise(*this)};
}

}  // namespace detail

}  // namespace fabsim

// Simulated time: 64-bit unsigned picoseconds.
//
// Picosecond resolution lets us express multi-GB/s link rates exactly
// (1 byte at 10 Gb/s = 800 ps) while still covering ~213 days of simulated
// time, far beyond any experiment in this repository.
#pragma once

#include <cstdint>

namespace fabsim {

/// Simulated time / duration, in picoseconds.
using Time = std::uint64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1'000;
inline constexpr Time kMicrosecond = 1'000'000;
inline constexpr Time kMillisecond = 1'000'000'000;
inline constexpr Time kSecond = 1'000'000'000'000ULL;

/// Construct a duration from nanoseconds (fractional allowed).
constexpr Time ns(double v) { return static_cast<Time>(v * static_cast<double>(kNanosecond)); }
/// Construct a duration from microseconds (fractional allowed).
constexpr Time us(double v) { return static_cast<Time>(v * static_cast<double>(kMicrosecond)); }
/// Construct a duration from milliseconds (fractional allowed).
constexpr Time ms(double v) { return static_cast<Time>(v * static_cast<double>(kMillisecond)); }
/// Construct a duration from seconds (fractional allowed).
constexpr Time sec(double v) { return static_cast<Time>(v * static_cast<double>(kSecond)); }

/// Convert a duration to microseconds as a double (for reporting).
constexpr double to_us(Time t) { return static_cast<double>(t) / static_cast<double>(kMicrosecond); }
/// Convert a duration to seconds as a double (for reporting).
constexpr double to_sec(Time t) { return static_cast<double>(t) / static_cast<double>(kSecond); }

/// A transfer rate. Stored as picoseconds-per-byte to make the common
/// operation (bytes -> duration) a single multiply.
class Rate {
 public:
  constexpr Rate() = default;

  /// Rate from megabytes (1e6 bytes) per second.
  static constexpr Rate mb_per_sec(double mbps) {
    return Rate{static_cast<double>(kSecond) / (mbps * 1e6)};
  }
  /// Rate from gigabits per second (1e9 bits).
  static constexpr Rate gbit_per_sec(double gbps) {
    return Rate{static_cast<double>(kSecond) / (gbps * 1e9 / 8.0)};
  }
  /// Rate from bytes per second.
  static constexpr Rate bytes_per_sec(double bps) {
    return Rate{static_cast<double>(kSecond) / bps};
  }

  /// Serialization time for `bytes` at this rate.
  constexpr Time bytes_time(std::uint64_t bytes) const {
    return static_cast<Time>(ps_per_byte_ * static_cast<double>(bytes));
  }

  constexpr double ps_per_byte() const { return ps_per_byte_; }
  constexpr double mb_per_sec_value() const {
    return static_cast<double>(kSecond) / ps_per_byte_ / 1e6;
  }

  constexpr bool is_zero() const { return ps_per_byte_ == 0.0; }

 private:
  explicit constexpr Rate(double ps_per_byte) : ps_per_byte_(ps_per_byte) {}
  double ps_per_byte_ = 0.0;  // 0 == infinitely fast
};

}  // namespace fabsim

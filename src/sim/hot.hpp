// FabricHot-Check: hot-path purity annotations + the runtime allocation
// budget auditor.
//
// The engine speed campaign (ROADMAP item 1) is judged in events/sec,
// and that number is only trustworthy if the dispatch path stays *pure*:
// no heap allocation, no wall-clock or syscall/IO, no throw on the
// steady-state path every event funnels through. Convention cannot hold
// that line — one `std::function` capture or one `push_back` into an
// unbounded vector silently re-introduces a malloc per event. This
// header provides both halves of the gate that makes purity a checked
// contract, in the same playbook as FabricScope-Check (scope.hpp):
//
//  1. *Static annotations* — `FABSIM_HOT` and `FABSIM_COLD` mark function
//     definitions (place before the return type, e.g.
//     `FABSIM_HOT void Rnic::pump_tx()`). They expand to nothing;
//     `scripts/hotpath_check.py` parses them and computes call-graph
//     reachability from `Engine::dispatch` through every `post()`
//     continuation body:
//       FABSIM_HOT   this function is on the per-event dispatch path and
//                    must satisfy the purity rules (also scanned even if
//                    the call-graph walk cannot reach it).
//       FABSIM_COLD  this function is reachable from hot code but runs
//                    only on exceptional paths (error handling, teardown,
//                    retry exhaustion); traversal stops here and its body
//                    is exempt from the purity rules.
//     A hot-reachable impurity the analyzer cannot prove harmless needs
//     an inline `// HOT-OK(rationale)` waiver — allowed, but only with a
//     written rationale, recorded in results/hotpath_report.json.
//
//  2. *Dynamic corroboration* — a HotpathAuditor attached to the Engine
//     like the Tracer / InvariantMonitor / Profiler (caller-owned
//     pointer, one guarded branch when detached). The dispatch loop
//     brackets every event with begin_event/end_event; the auditor
//     snapshots the prof::CountingAllocator global tally at entry and
//     charges any tracked allocation during the callback against a
//     per-event budget (default 0). The Engine excuses the amortized
//     growth of its own event-queue storage (a doubling reallocation is
//     the one allocation the zero-alloc contract permits) via
//     excuse_growth(); everything else over budget is reported through
//     the InvariantMonitor as a `hot_alloc_budget` violation, so every
//     FABSIM_CHECK bench cross-checks the static verdicts on real
//     traffic. Attaching the auditor never posts events or advances
//     time: run digests stay byte-identical (pinned by
//     tests/hotpath_test.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "check/invariant.hpp"
#include "sim/prof.hpp"
#include "sim/time.hpp"

// --- Static annotation markers (parsed by scripts/hotpath_check.py) --------
//
// Placed before a function definition's return type. They compile to
// nothing — the analyzer reads the source text.
#define FABSIM_HOT
#define FABSIM_COLD

// Mutation seam for the gate's self-test: when the (runtime) `armed`
// expression is true, performs one deliberate tracked allocation on the
// dispatch path. scripts/hotpath_check.py ignores the dormant seam but
// flags it as a hot allocation under --mutation, and the HotpathAuditor
// traps it dynamically when armed (tests/hotpath_test.cpp) — proving the
// gate can actually fail, both statically and at runtime.
#define FABSIM_MUTATION_HOTALLOC(armed)                                     \
  do {                                                                      \
    if (armed) {                                                            \
      ::fabsim::prof::CountingAllocator<char> fabsim_hotalloc_allocator_;   \
      char* fabsim_hotalloc_block_ = fabsim_hotalloc_allocator_.allocate(1); \
      fabsim_hotalloc_allocator_.deallocate(fabsim_hotalloc_block_, 1);     \
    }                                                                       \
  } while (0)

namespace fabsim::hot {

/// Runtime per-dispatch allocation budget auditor. Attach with
/// Engine::set_hotpath_auditor(); violations are funnelled through an
/// InvariantMonitor when one is set (counting-mode FABSIM_CHECK runs
/// surface them as check.sim.hot_alloc_budget counters, gated by
/// scripts/assert_clean.py); without a monitor the auditor throws
/// check::InvariantViolationError directly.
class HotpathAuditor {
 public:
  explicit HotpathAuditor(check::InvariantMonitor* monitor = nullptr,
                          std::uint64_t allocs_per_event_budget = 0)
      : monitor_(monitor), budget_(allocs_per_event_budget) {}

  void set_monitor(check::InvariantMonitor* monitor) { monitor_ = monitor; }

  /// Engine attach/detach hooks: the allocation tally behind
  /// prof::CountingAllocator is armed only while someone watches it
  /// (refcounted, so the auditor and a Profiler can co-exist).
  void on_attach() {
    if (attached_) return;
    attached_ = true;
    prof::acquire_alloc_tracking();
  }
  void on_detach() {
    if (!attached_) return;
    attached_ = false;
    prof::release_alloc_tracking();
    active_ = false;
  }

  // Engine dispatch hooks.
  void begin_event(Time at) {
    at_ = at;
    allocs_at_begin_ = prof::alloc_stats().allocs;
    excused_ = 0;
    active_ = true;
  }
  /// The Engine's event-queue storage is about to grow (amortized
  /// doubling): excuse that many tracked allocations from this event's
  /// budget — the one heap touch the zero-alloc contract permits.
  void excuse_growth(std::uint64_t allocs) {
    if (active_) excused_ += allocs;
  }
  void end_event() {
    if (!active_) return;
    active_ = false;
    ++checks_;
    const std::uint64_t delta = prof::alloc_stats().allocs - allocs_at_begin_;
    if (delta > excused_ + budget_) {
      violation(delta - excused_);
    }
  }

  bool active() const { return active_; }
  std::uint64_t budget() const { return budget_; }
  std::uint64_t checks() const { return checks_; }
  std::uint64_t violations() const { return violations_; }

 private:
  void violation(std::uint64_t unexcused) {
    ++violations_;
    std::string detail = "event dispatched " + std::to_string(unexcused) +
                         " tracked allocation(s); the hot-path budget is " +
                         std::to_string(budget_) +
                         " (amortized queue growth is excused separately)";
    if (monitor_ != nullptr) {
      monitor_->report(at_, check::Layer::kSim, -1, "hot_alloc_budget", std::move(detail));
      return;
    }
    throw check::InvariantViolationError(
        check::InvariantViolation{at_, check::Layer::kSim, -1, "hot_alloc_budget",
                                  std::move(detail)});
  }

  check::InvariantMonitor* monitor_ = nullptr;
  std::uint64_t budget_ = 0;
  bool attached_ = false;
  bool active_ = false;
  Time at_ = 0;
  std::uint64_t allocs_at_begin_ = 0;
  std::uint64_t excused_ = 0;
  std::uint64_t checks_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace fabsim::hot

#include "sim/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace fabsim {

std::vector<std::pair<std::string, double>> MetricRegistry::snapshot() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters_.size() + gauges_.size() + 3);
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, static_cast<double>(counter.value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name + ".max", gauge.max());
  }
  const Phase phases[3] = {Phase::kHost, Phase::kNic, Phase::kWire};
  for (Phase phase : phases) {
    const Time t = phase_time(phase);
    if (t > 0) out.emplace_back(std::string("phase.") + phase_name(phase) + ".us", to_us(t));
  }
  // Counters/gauges are already sorted within their maps; merge-sort the
  // combined view so the dump reads as one taxonomy.
  std::sort(out.begin(), out.end());
  return out;
}

void MetricRegistry::dump(std::FILE* out) const {
  for (const auto& [name, value] : snapshot()) {
    std::fprintf(out, "%-44s %.3f\n", name.c_str(), value);
  }
}

}  // namespace fabsim

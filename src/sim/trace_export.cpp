#include "sim/trace_export.hpp"

#include <cstdio>
#include <set>

#include "sim/json.hpp"

namespace fabsim {

namespace {

void append_event(std::string& out, bool& first, const std::string& event) {
  if (!first) out += ",\n";
  first = false;
  out += "  ";
  out += event;
}

std::string format_ts(Time at) {
  // Trace Event ts is in microseconds; keep picosecond resolution as a
  // fraction so same-tick events stay distinguishable.
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", to_us(at));
  return buf;
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer, const MetricRegistry* metrics,
                              const Profiler* profiler) {
  std::string out = "{\n\"traceEvents\": [\n";
  bool first = true;

  // Name each node's process row once. tid mirrors the category so the
  // four categories render as four stable threads per node.
  std::set<int> nodes;
  for (const Tracer::Entry& entry : tracer.entries()) nodes.insert(entry.node);
  for (int node : nodes) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": 0, "
                  "\"args\": {\"name\": \"node %d\"}}",
                  node, node);
    append_event(out, first, buf);
  }

  for (const Tracer::Entry& entry : tracer.ordered()) {
    const char* cat = trace_category_name(entry.category);
    char buf[96];
    std::string event = "{\"name\": \"" + minijson::escape(entry.label) + "\", \"cat\": \"";
    event += cat;
    std::snprintf(buf, sizeof(buf), "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": %d, \"tid\": %d, ",
                  entry.node, static_cast<int>(entry.category));
    event += buf;
    event += "\"ts\": " + format_ts(entry.at) + "}";
    append_event(out, first, event);
  }

  if (metrics != nullptr) {
    for (const MetricRegistry::Sample& sample : metrics->samples()) {
      char buf[64];
      std::string event = "{\"name\": \"" + minijson::escape(sample.track) +
                          "\", \"ph\": \"C\", \"pid\": 0, \"ts\": " + format_ts(sample.at) +
                          ", \"args\": {\"value\": ";
      std::snprintf(buf, sizeof(buf), "%.6f}}", sample.value);
      event += buf;
      append_event(out, first, event);
    }
  }

  if (profiler != nullptr && !profiler->slices().empty()) {
    // Host-time lanes: one process row for the profiler, one thread per
    // scope label (tid 0 = shared/-1, tid k+1 = scope k) so per-node
    // dispatch cost renders side by side with the shared dispatch work.
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": 0, "
                  "\"args\": {\"name\": \"host (profiler)\"}}",
                  kHostProfilePid);
    append_event(out, first, buf);
    std::set<int> scopes;
    for (const Profiler::Slice& slice : profiler->slices()) scopes.insert(slice.scope);
    for (int scope : scopes) {
      const int tid = scope < 0 ? 0 : scope + 1;
      const std::string name = scope < 0 ? "shared" : "scope " + std::to_string(scope);
      std::snprintf(buf, sizeof(buf),
                    "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": %d, "
                    "\"args\": {\"name\": \"%s\"}}",
                    kHostProfilePid, tid, name.c_str());
      append_event(out, first, buf);
    }
    for (const Profiler::Slice& slice : profiler->slices()) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\": \"dispatch\", \"cat\": \"prof\", \"ph\": \"X\", \"pid\": %d, "
                    "\"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, \"args\": {\"sim_us\": %.6f, "
                    "\"scope\": %d}}",
                    kHostProfilePid, slice.scope < 0 ? 0 : slice.scope + 1, slice.host_us_start,
                    slice.host_us_dur, to_us(slice.sim_at), slice.scope);
      append_event(out, first, buf);
    }
  }

  out += "\n],\n\"displayTimeUnit\": \"ns\"\n}\n";
  return out;
}

bool write_chrome_trace(const std::string& path, const Tracer& tracer,
                        const MetricRegistry* metrics, const Profiler* profiler) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = chrome_trace_json(tracer, metrics, profiler);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace fabsim

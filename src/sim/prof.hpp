// FabricProf: host-side engine profiler.
//
// Everything else in this tree observes *simulated* time; the Profiler
// is the one component that is allowed to look at the host clock. It is
// attached to the Engine exactly like the Tracer / InvariantMonitor:
// caller-owned, null when disabled, every hook on the dispatch path
// guards on the pointer so the detached cost is one predictable branch —
// pinned by a byte-identical run_digest() test and by the events/sec
// trajectory in BENCH_engine.json.
//
// What it measures, and how the cost is bounded:
//   * dispatch host time — wall-clock nanoseconds spent inside event
//     callbacks, attributed per scope label (the node-confinement label
//     Engine::post() already carries for FabricExplore). The clock is
//     only read for 1-in-N dispatches (Config::sample_stride), and the
//     sampling decision is a counter test, never a clock read, so the
//     *simulated* results are invariant under any stride (pinned by
//     tests).
//   * event-queue churn — posts, heap pops, policy requeues, the peak
//     queue depth, and an accumulated "heapify cost" (sum of
//     bit_width(depth) over every heap operation — the O(log n) work a
//     binary heap does per push/pop). This is the number the ROADMAP's
//     calendar-queue replacement must drive toward O(1) per event.
//   * allocation churn — a counting-allocator seam (prof::
//     CountingAllocator) that the Engine's event-queue storage runs on.
//     Tracking is off unless a Profiler is attached; the delta since
//     attach is published, so per-post heap traffic becomes a visible,
//     regressable number.
//   * host-time trace lanes — the sampled dispatch slices are retained
//     (up to Config::max_slices) and exported by the Chrome-trace
//     writer as duration events on a dedicated "host (profiler)"
//     process, next to the simulated-time lanes.
//
// Results surface through publish() as a `prof.*` taxonomy in the
// MetricRegistry (counters plus a prof.host.events_per_sec gauge) and
// through accessors for benches that want the numbers directly.
//
// Not thread-safe: like the Engine itself, one Profiler serves one
// single-threaded simulation at a time.
#pragma once

#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace fabsim {

class MetricRegistry;

namespace prof {

/// Global allocation tally behind the counting-allocator seam. The
/// Profiler snapshots it at attach and publishes the delta.
struct AllocStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes_allocated = 0;
  std::uint64_t bytes_freed = 0;
};

namespace detail {
// NOLINT(global-state): operator new/delete have no object to hang state
// off — the counting-allocator seam is necessarily process-global. It is
// host-side observability only (like the wall clock, rule 10): nothing
// simulated reads it, so it can't couple event scopes or feed the digest.
inline AllocStats alloc_stats_storage;   // NOLINT(global-state): see above
inline int alloc_tracking_refs = 0;      // NOLINT(global-state): see above
}  // namespace detail

inline AllocStats& alloc_stats() { return detail::alloc_stats_storage; }
inline bool alloc_tracking_enabled() { return detail::alloc_tracking_refs > 0; }

/// The tracking seam is refcounted: a Profiler and a hot::HotpathAuditor
/// each hold one reference while attached, so either can arm it without
/// the other's detach disarming it underneath them.
inline void acquire_alloc_tracking() { ++detail::alloc_tracking_refs; }
inline void release_alloc_tracking() {
  if (detail::alloc_tracking_refs > 0) --detail::alloc_tracking_refs;
}

/// std::allocator with accounting: containers on the event/continuation
/// posting path (the Engine's queue storage) allocate through this, so
/// heap traffic per posted event is measurable instead of folklore.
/// Costs one branch per (rare, amortized) container growth when
/// tracking is off.
template <typename T>
struct CountingAllocator {
  using value_type = T;

  CountingAllocator() noexcept = default;
  template <typename U>
  CountingAllocator(const CountingAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    if (alloc_tracking_enabled()) {
      AllocStats& stats = alloc_stats();
      ++stats.allocs;
      stats.bytes_allocated += n * sizeof(T);
    }
    return std::allocator<T>{}.allocate(n);
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (alloc_tracking_enabled()) {
      AllocStats& stats = alloc_stats();
      ++stats.frees;
      stats.bytes_freed += n * sizeof(T);
    }
    std::allocator<T>{}.deallocate(p, n);
  }

  template <typename U>
  bool operator==(const CountingAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace prof

class Profiler {
 public:
  struct Config {
    /// Read the host clock for 1 in this many dispatches. 1 = every
    /// event (max detail, max overhead); larger strides bound the
    /// profiler's own cost on hot runs. Never affects simulated results.
    std::uint32_t sample_stride = 16;
    /// Retained sampled slices for the Chrome-trace host lanes; further
    /// samples still feed the aggregates but drop their slice record.
    std::size_t max_slices = 65'536;
  };

  /// One sampled dispatch, in host time relative to attach.
  struct Slice {
    double host_us_start;
    double host_us_dur;
    Time sim_at;  ///< simulated clock when the event ran
    int scope;    ///< Engine::post scope label; -1 = shared
  };

  Profiler() { sanitize(); }
  explicit Profiler(Config config) : config_(config) { sanitize(); }

  // --- Engine hooks (hot path) --------------------------------------
  // The Engine calls these through a null-guarded pointer; everything
  // here is O(1) and clock-free except the 1-in-stride sampled pair
  // begin_dispatch(true) / end_dispatch().

  void on_attach();  ///< host epoch + allocation baseline; enables alloc tracking
  void on_detach();  ///< disables alloc tracking

  /// A new event entered the queue (depth after the push).
  void on_post(std::size_t depth_after) {
    ++posts_;
    note_heap_op(depth_after);
  }
  /// An event left the queue (depth before the pop).
  void on_dequeue(std::size_t depth_before) {
    ++pops_;
    heapify_cost_ += std::bit_width(depth_before);
  }
  /// A SchedulePolicy materialization pushed a not-chosen event back.
  void on_requeue(std::size_t depth_after) {
    ++requeues_;
    note_heap_op(depth_after);
  }
  /// The Engine's event queue grew a backing store (amortized doubling
  /// of the key heap, the payload slab, or the slab's free list);
  /// `allocs` is how many tracked allocations that one growth step
  /// performed. Growth allocations that land inside a dispatch bracket
  /// are attributed separately so allocs_per_event() reflects only the
  /// steady-state per-event cost.
  void on_queue_growth(std::uint64_t allocs = 1) {
    ++queue_growths_;
    if (in_event_) dispatch_growth_allocs_ += allocs;
  }

  /// Bracket one event callback for the per-dispatch allocation tally.
  /// Unlike the strided host-clock sampling, this runs for every event:
  /// it reads the global counter, never the clock.
  void begin_event_allocs() {
    event_allocs_at_begin_ = prof::alloc_stats().allocs;
    in_event_ = true;
  }
  void end_event_allocs() {
    if (!in_event_) return;
    in_event_ = false;
    ++alloc_events_;
    dispatch_allocs_ += prof::alloc_stats().allocs - event_allocs_at_begin_;
  }

  /// Decide whether to sample this dispatch; true means the caller must
  /// pair it with end_dispatch() around the callback.
  bool begin_dispatch(Time sim_now, int scope) {
    if (dispatch_tick_++ % config_.sample_stride != 0) return false;
    begin_sampled(sim_now, scope);
    return true;
  }
  void end_dispatch();

  /// Bracket a dispatch loop (Engine::run / run_until): accumulates the
  /// wall time and event count the events/sec figure is computed from.
  void on_run_begin(std::uint64_t events_processed);
  void on_run_end(std::uint64_t events_processed);

  // --- results ------------------------------------------------------

  std::uint64_t posts() const { return posts_; }
  std::uint64_t pops() const { return pops_; }
  std::uint64_t requeues() const { return requeues_; }
  std::size_t peak_depth() const { return peak_depth_; }
  std::uint64_t heapify_cost() const { return heapify_cost_; }
  std::uint64_t sampled_dispatches() const { return sampled_; }
  std::uint64_t sampled_dispatch_ns() const { return sampled_ns_; }
  std::uint64_t run_host_ns() const { return run_ns_; }
  std::uint64_t events_dispatched() const { return dispatched_; }

  /// Events dispatched per host second across all run windows so far.
  double events_per_sec() const {
    return run_ns_ > 0 ? static_cast<double>(dispatched_) * 1e9 / static_cast<double>(run_ns_)
                       : 0.0;
  }

  /// (samples, host ns) per scope label, ordered: -1 (shared) first.
  const std::map<int, std::pair<std::uint64_t, std::uint64_t>>& by_scope() const {
    return by_scope_;
  }

  const std::vector<Slice>& slices() const { return slices_; }
  std::uint64_t slices_dropped() const { return slices_dropped_; }

  /// Allocation tally across every attach window so far (tracked
  /// containers only; the global seam is off while detached).
  prof::AllocStats alloc_delta() const;

  std::uint64_t queue_growths() const { return queue_growths_; }
  std::uint64_t dispatch_allocs() const { return dispatch_allocs_; }
  std::uint64_t dispatch_growth_allocs() const { return dispatch_growth_allocs_; }
  std::uint64_t alloc_events() const { return alloc_events_; }

  /// Tracked allocations per dispatched event in steady state (amortized
  /// event-queue growth excluded). ROADMAP item 1's zero-allocation
  /// acceptance number: 0.0 after the InplaceFn payload swap.
  double allocs_per_event() const {
    return alloc_events_ > 0 ? static_cast<double>(dispatch_allocs_ - dispatch_growth_allocs_) /
                                   static_cast<double>(alloc_events_)
                             : 0.0;
  }

  /// Export everything under `prefix` ("prof." by default): counters
  /// for the queue/dispatch/alloc tallies plus a <prefix>host.
  /// events_per_sec gauge. Per-scope detail lands under
  /// <prefix>dispatch.node<k>.* so Report::aggregate_key trims it.
  void publish(MetricRegistry& registry, const std::string& prefix = "prof.") const;

  void reset();

 private:
  void sanitize() {
    if (config_.sample_stride == 0) config_.sample_stride = 1;
  }
  void note_heap_op(std::size_t depth) {
    if (depth > peak_depth_) peak_depth_ = depth;
    heapify_cost_ += std::bit_width(depth);
  }
  void begin_sampled(Time sim_now, int scope);

  Config config_{};
  std::uint64_t posts_ = 0;
  std::uint64_t pops_ = 0;
  std::uint64_t requeues_ = 0;
  std::size_t peak_depth_ = 0;
  std::uint64_t heapify_cost_ = 0;

  std::uint64_t dispatch_tick_ = 0;
  std::uint64_t sampled_ = 0;
  std::uint64_t sampled_ns_ = 0;
  std::map<int, std::pair<std::uint64_t, std::uint64_t>> by_scope_;

  std::uint64_t run_ns_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t run_begin_events_ = 0;
  std::int64_t run_begin_ns_ = 0;
  bool in_run_ = false;

  std::int64_t epoch_ns_ = 0;
  std::int64_t sample_begin_ns_ = 0;
  Time sample_sim_at_ = 0;
  int sample_scope_ = -1;
  bool in_sample_ = false;

  std::uint64_t queue_growths_ = 0;
  std::uint64_t dispatch_allocs_ = 0;
  std::uint64_t dispatch_growth_allocs_ = 0;
  std::uint64_t alloc_events_ = 0;
  std::uint64_t event_allocs_at_begin_ = 0;
  bool in_event_ = false;

  std::vector<Slice> slices_;
  std::uint64_t slices_dropped_ = 0;

  prof::AllocStats alloc_baseline_{};  ///< global tally at last attach
  prof::AllocStats alloc_accum_{};     ///< closed attach windows' delta
  bool attached_ = false;
};

}  // namespace fabsim

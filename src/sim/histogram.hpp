// Latency histogram: exact percentiles plus log-binned buckets.
//
// Benchmarks record one sample per message (microseconds, bytes, queue
// depth — any non-negative double). Samples are kept verbatim so
// percentiles are exact nearest-rank quantiles, not bucket
// interpolations; the log2 buckets exist for compact display and JSON
// export. Simulation scale (10^3..10^6 samples per figure) makes the
// exact store affordable, and exactness matters: the whole point of
// reporting p99/p999 is to see tail movement that bucket midpoints blur.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace fabsim {

class Histogram {
 public:
  void add(double x) {
    stats_.add(x);
    samples_.push_back(x);
    sorted_ = false;
  }

  std::uint64_t count() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }
  double stddev() const { return stats_.stddev(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  const Accumulator& stats() const { return stats_; }

  /// Exact nearest-rank percentile, p in [0, 100]. p=50 is the median,
  /// p=99.9 the p999. Returns 0 when empty.
  double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    sort_samples();
    const double clamped = std::min(std::max(p, 0.0), 100.0);
    // Nearest-rank: smallest index i with (i+1)/n >= p/100.
    auto rank = static_cast<std::size_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(samples_.size())));
    if (rank > 0) --rank;
    return samples_[rank];
  }

  double p50() const { return percentile(50.0); }
  double p90() const { return percentile(90.0); }
  double p99() const { return percentile(99.0); }
  double p999() const { return percentile(99.9); }

  void clear() {
    stats_ = Accumulator{};
    samples_.clear();
    sorted_ = false;
  }

  /// One log2 display bucket: [lo, hi) with its sample count. Samples in
  /// [0, 1) share the first bucket; above that, bucket k covers
  /// [2^k, 2^(k+1)).
  struct Bucket {
    double lo;
    double hi;
    std::uint64_t count;
  };

  /// Non-empty log2 buckets in ascending order (for display / JSON).
  std::vector<Bucket> buckets() const {
    std::vector<Bucket> out;
    if (samples_.empty()) return out;
    sort_samples();
    std::size_t i = 0;
    while (i < samples_.size()) {
      const double lo = bucket_lo(samples_[i]);
      const double hi = (lo == 0.0) ? 1.0 : lo * 2.0;
      std::uint64_t n = 0;
      while (i < samples_.size() && samples_[i] >= lo && samples_[i] < hi) {
        ++n;
        ++i;
      }
      if (n == 0) {  // negative or non-finite sample: count it and move on
        ++n;
        ++i;
      }
      out.push_back(Bucket{lo, hi, n});
    }
    return out;
  }

  /// "n=1000 mean=12.3 p50=11.8 p90=14.0 p99=19.6 p999=25.1 max=25.9"
  std::string summary() const {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "n=%llu mean=%.3f p50=%.3f p90=%.3f p99=%.3f p999=%.3f max=%.3f",
                  static_cast<unsigned long long>(count()), mean(), p50(), p90(), p99(), p999(),
                  max());
    return buf;
  }

 private:
  static double bucket_lo(double x) {
    if (!(x >= 1.0)) return 0.0;  // [0,1) and any negative/NaN stragglers
    return std::exp2(std::floor(std::log2(x)));
  }

  void sort_samples() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  Accumulator stats_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace fabsim

#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "check/audits.hpp"
#include "check/invariant.hpp"

namespace fabsim {

namespace detail {

void Driver::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) const noexcept {
  Engine* engine = h.promise().engine;
  engine->drivers_.erase(h.address());
  engine->daemons_.erase(h.address());
  h.destroy();
}

}  // namespace detail

Engine::~Engine() {
  // Destroy any still-suspended processes. Driver frames own their Task
  // parameter, whose destructor recursively destroys child frames.
  // Hash order is fine here: this runs after the event loop, so nothing
  // it does can reach the run digest or any simulated state.
  for (void* address : drivers_) {  // NOLINT(unordered-iteration)
    std::coroutine_handle<>::from_address(address).destroy();
  }
  // Dying with a profiler or hot auditor attached must not leave the
  // global allocation seam armed for whatever engine comes next.
  if (profiler_ != nullptr) profiler_->on_detach();
  if (hot_auditor_ != nullptr) hot_auditor_->on_detach();
}

void Engine::set_profiler(Profiler* profiler) {
  if (profiler_ != nullptr) profiler_->on_detach();
  profiler_ = profiler;
  if (profiler_ != nullptr) profiler_->on_attach();
}

void Engine::set_hotpath_auditor(hot::HotpathAuditor* auditor) {
  if (hot_auditor_ != nullptr) hot_auditor_->on_detach();
  hot_auditor_ = auditor;
  if (hot_auditor_ != nullptr) hot_auditor_->on_attach();
}

FABSIM_COLD void Engine::report_past_post(Time at) {
  monitor_->report(now_, check::Layer::kSim, -1, "time_monotone",
                   "event posted into the past: at " + std::to_string(to_us(at)) +
                       "us < now " + std::to_string(to_us(now_)) + "us");
}

void Engine::post_resume(Time at, std::coroutine_handle<> h) {
  post(at, [h] { h.resume(); });
}

detail::Driver Engine::drive(Engine* engine, Task<> task,
                             std::shared_ptr<detail::ProcessState> state) {
  try {
    co_await std::move(task);
  } catch (...) {
    engine->note_exception(std::current_exception());
  }
  state->done = true;
  for (std::coroutine_handle<> joiner : state->joiners) {
    engine->post_resume(engine->now(), joiner);
  }
  state->joiners.clear();
}

Process Engine::spawn_impl(Task<> task, bool daemon) {
  auto state = std::make_shared<detail::ProcessState>();
  detail::Driver driver = drive(this, std::move(task), state);
  driver.handle.promise().engine = this;
  drivers_.insert(driver.handle.address());
  if (daemon) daemons_.insert(driver.handle.address());
  driver.handle.resume();  // run to first suspension point
  check_exception();
  return Process{std::move(state)};
}

Process Engine::spawn(Task<> task) { return spawn_impl(std::move(task), /*daemon=*/false); }

Process Engine::spawn_daemon(Task<> task) { return spawn_impl(std::move(task), /*daemon=*/true); }

void Engine::check_exception() {
  if (pending_exception_) {
    std::exception_ptr e = std::exchange(pending_exception_, nullptr);
    std::rethrow_exception(e);
  }
}

void Engine::account_event(Time at, std::uint64_t seq) {
  assert(at >= now_);
  if (monitor_ != nullptr && at < now_) {
    monitor_->report(now_, check::Layer::kSim, -1, "time_monotone",
                     "event dequeued behind the clock: at " + std::to_string(to_us(at)) +
                         "us < now " + std::to_string(to_us(now_)) + "us");
  }
  now_ = at;
  ++events_processed_;
  // FNV-1a over (at, seq): a cheap, order-sensitive fingerprint of the
  // full event schedule. Any nondeterminism — iteration over pointer-
  // keyed containers, uninitialized padding, wall-clock leakage — shows
  // up as a digest mismatch between repeated runs.
  digest_mix(static_cast<std::uint64_t>(at));
  digest_mix(seq);
}

void Engine::on_drain() {
  if (monitor_ == nullptr) return;
  check::audit_quiescence(drivers_.size(), daemons_.size())
      .report(monitor_, now_, check::Layer::kSim, -1);
  monitor_->run_final_checks();
}

FABSIM_HOT Engine::Item Engine::pop_next() {
  // Materialize the co-enabled set: every queued event sharing the head
  // timestamp. The heap yields them in ascending seq order, so index 0
  // is the default insertion-order pick. ready_/view_ are members whose
  // capacity persists across calls.
  const Time head = queue_.top().at;
  ready_.clear();
  while (!queue_.empty() && queue_.top().at == head) {
    if (profiler_ != nullptr) profiler_->on_dequeue(queue_.size());
    // HOT-OK(policy materialization scratch; member capacity reused across calls)
    ready_.push_back(queue_.pop_top());
  }
  std::size_t pick = 0;
  if (ready_.size() > 1) {
    view_.clear();
    // HOT-OK(policy materialization scratch; member capacity reused across calls)
    view_.reserve(ready_.size());
    // HOT-OK(policy materialization scratch; member capacity reused across calls)
    for (const Item& item : ready_) view_.push_back(ReadyEvent{item.at, item.seq, item.scope});
    pick = policy_->choose(view_);
    if (pick >= ready_.size()) pick = 0;  // defensive: contract says < size
  }
  Item chosen = std::move(ready_[pick]);
  for (std::size_t i = 0; i < ready_.size(); ++i) {
    if (i != pick) {
      const int growths =
          queue_.push(ready_[i].at, ready_[i].seq, ready_[i].scope, std::move(ready_[i].fn));
      // Outside the dispatch bracket, so growth here is counted but
      // never charged against (nor excused from) the per-event budget.
      if (growths > 0 && profiler_ != nullptr)
        profiler_->on_queue_growth(static_cast<std::uint64_t>(growths));
      if (profiler_ != nullptr) profiler_->on_requeue(queue_.size());
    }
  }
  ready_.clear();
  return chosen;
}

// One loop iteration. Without a SchedulePolicy the callback runs
// in place from its slab slot — the slot is address-stable across any
// posts the callback makes and is only destroyed + recycled afterwards
// — so the pop side of dispatch moves zero payload bytes. The policy
// path still materializes owned Items (it must park candidates in
// ready_), which is fine: schedule exploration is not a perf path.
void Engine::step() {
  if (policy_ == nullptr) {
    if (profiler_ != nullptr) profiler_->on_dequeue(queue_.size());
    const EventQueue::Key key = queue_.pop_key();
    account_event(key.at, key.seq);
    dispatch(key.scope, queue_.payload(key.slot));
    queue_.release(key.slot);
  } else {
    Item item = pop_next();
    account_event(item.at, item.seq);
    dispatch(item.scope, item.fn);
  }
  check_exception();
}

void Engine::run() {
  if (profiler_ != nullptr) profiler_->on_run_begin(events_processed_);
  while (!queue_.empty()) step();
  if (profiler_ != nullptr) profiler_->on_run_end(events_processed_);
  on_drain();
}

void Engine::run_until(Time t) {
  if (profiler_ != nullptr) profiler_->on_run_begin(events_processed_);
  while (!queue_.empty() && queue_.top().at <= t) step();
  if (profiler_ != nullptr) profiler_->on_run_end(events_processed_);
  if (t > now_) now_ = t;
}

}  // namespace fabsim

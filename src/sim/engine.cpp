#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "check/audits.hpp"
#include "check/invariant.hpp"

namespace fabsim {

namespace detail {

void Driver::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) const noexcept {
  Engine* engine = h.promise().engine;
  engine->drivers_.erase(h.address());
  engine->daemons_.erase(h.address());
  h.destroy();
}

}  // namespace detail

Engine::~Engine() {
  // Destroy any still-suspended processes. Driver frames own their Task
  // parameter, whose destructor recursively destroys child frames.
  // Hash order is fine here: this runs after the event loop, so nothing
  // it does can reach the run digest or any simulated state.
  for (void* address : drivers_) {  // NOLINT(unordered-iteration)
    std::coroutine_handle<>::from_address(address).destroy();
  }
  // Dying with a profiler attached must not leave the global allocation
  // seam armed for whatever engine comes next.
  if (profiler_ != nullptr) profiler_->on_detach();
}

void Engine::set_profiler(Profiler* profiler) {
  if (profiler_ != nullptr) profiler_->on_detach();
  profiler_ = profiler;
  if (profiler_ != nullptr) profiler_->on_attach();
}

void Engine::post(Time at, int scope, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  if (monitor_ != nullptr && at < now_) {
    monitor_->report(now_, check::Layer::kSim, -1, "time_monotone",
                     "event posted into the past: at " + std::to_string(to_us(at)) +
                         "us < now " + std::to_string(to_us(now_)) + "us");
  }
  queue_.push(Item{at, next_seq_++, scope, std::move(fn)});
  if (profiler_ != nullptr) profiler_->on_post(queue_.size());
}

void Engine::post_resume(Time at, std::coroutine_handle<> h) {
  post(at, [h] { h.resume(); });
}

detail::Driver Engine::drive(Engine* engine, Task<> task,
                             std::shared_ptr<detail::ProcessState> state) {
  try {
    co_await std::move(task);
  } catch (...) {
    engine->note_exception(std::current_exception());
  }
  state->done = true;
  for (std::coroutine_handle<> joiner : state->joiners) {
    engine->post_resume(engine->now(), joiner);
  }
  state->joiners.clear();
}

Process Engine::spawn_impl(Task<> task, bool daemon) {
  auto state = std::make_shared<detail::ProcessState>();
  detail::Driver driver = drive(this, std::move(task), state);
  driver.handle.promise().engine = this;
  drivers_.insert(driver.handle.address());
  if (daemon) daemons_.insert(driver.handle.address());
  driver.handle.resume();  // run to first suspension point
  check_exception();
  return Process{std::move(state)};
}

Process Engine::spawn(Task<> task) { return spawn_impl(std::move(task), /*daemon=*/false); }

Process Engine::spawn_daemon(Task<> task) { return spawn_impl(std::move(task), /*daemon=*/true); }

void Engine::check_exception() {
  if (pending_exception_) {
    std::exception_ptr e = std::exchange(pending_exception_, nullptr);
    std::rethrow_exception(e);
  }
}

void Engine::account_event(const Item& item) {
  assert(item.at >= now_);
  if (monitor_ != nullptr && item.at < now_) {
    monitor_->report(now_, check::Layer::kSim, -1, "time_monotone",
                     "event dequeued behind the clock: at " + std::to_string(to_us(item.at)) +
                         "us < now " + std::to_string(to_us(now_)) + "us");
  }
  now_ = item.at;
  ++events_processed_;
  // FNV-1a over (at, seq): a cheap, order-sensitive fingerprint of the
  // full event schedule. Any nondeterminism — iteration over pointer-
  // keyed containers, uninitialized padding, wall-clock leakage — shows
  // up as a digest mismatch between repeated runs.
  digest_mix(static_cast<std::uint64_t>(item.at));
  digest_mix(item.seq);
}

void Engine::on_drain() {
  if (monitor_ == nullptr) return;
  check::audit_quiescence(drivers_.size(), daemons_.size())
      .report(monitor_, now_, check::Layer::kSim, -1);
  monitor_->run_final_checks();
}

Engine::Item Engine::pop_next() {
  // Item::fn may schedule more events; copy out before popping.
  if (policy_ == nullptr) {
    if (profiler_ != nullptr) profiler_->on_dequeue(queue_.size());
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    return item;
  }

  // Materialize the co-enabled set: every queued event sharing the head
  // timestamp. The priority queue yields them in ascending seq order, so
  // index 0 is the default insertion-order pick.
  const Time head = queue_.top().at;
  std::vector<Item> ready;
  while (!queue_.empty() && queue_.top().at == head) {
    if (profiler_ != nullptr) profiler_->on_dequeue(queue_.size());
    ready.push_back(std::move(const_cast<Item&>(queue_.top())));
    queue_.pop();
  }
  std::size_t pick = 0;
  if (ready.size() > 1) {
    std::vector<ReadyEvent> view;
    view.reserve(ready.size());
    for (const Item& item : ready) view.push_back(ReadyEvent{item.at, item.seq, item.scope});
    pick = policy_->choose(view);
    if (pick >= ready.size()) pick = 0;  // defensive: contract says < size
  }
  Item chosen = std::move(ready[pick]);
  for (std::size_t i = 0; i < ready.size(); ++i) {
    if (i != pick) {
      queue_.push(std::move(ready[i]));
      if (profiler_ != nullptr) profiler_->on_requeue(queue_.size());
    }
  }
  return chosen;
}

void Engine::run() {
  if (profiler_ != nullptr) profiler_->on_run_begin(events_processed_);
  while (!queue_.empty()) {
    Item item = pop_next();
    account_event(item);
    dispatch(item);
    check_exception();
  }
  if (profiler_ != nullptr) profiler_->on_run_end(events_processed_);
  on_drain();
}

void Engine::run_until(Time t) {
  if (profiler_ != nullptr) profiler_->on_run_begin(events_processed_);
  while (!queue_.empty() && queue_.top().at <= t) {
    Item item = pop_next();
    account_event(item);
    dispatch(item);
    check_exception();
  }
  if (profiler_ != nullptr) profiler_->on_run_end(events_processed_);
  if (t > now_) now_ = t;
}

}  // namespace fabsim

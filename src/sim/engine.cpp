#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>

namespace fabsim {

namespace detail {

void Driver::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) const noexcept {
  Engine* engine = h.promise().engine;
  engine->drivers_.erase(h.address());
  h.destroy();
}

}  // namespace detail

Engine::~Engine() {
  // Destroy any still-suspended processes. Driver frames own their Task
  // parameter, whose destructor recursively destroys child frames.
  for (void* address : drivers_) {
    std::coroutine_handle<>::from_address(address).destroy();
  }
}

void Engine::post(Time at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  queue_.push(Item{at, next_seq_++, std::move(fn)});
}

void Engine::post_resume(Time at, std::coroutine_handle<> h) {
  post(at, [h] { h.resume(); });
}

detail::Driver Engine::drive(Engine* engine, Task<> task,
                             std::shared_ptr<detail::ProcessState> state) {
  try {
    co_await std::move(task);
  } catch (...) {
    engine->note_exception(std::current_exception());
  }
  state->done = true;
  for (std::coroutine_handle<> joiner : state->joiners) {
    engine->post_resume(engine->now(), joiner);
  }
  state->joiners.clear();
}

Process Engine::spawn(Task<> task) {
  auto state = std::make_shared<detail::ProcessState>();
  detail::Driver driver = drive(this, std::move(task), state);
  driver.handle.promise().engine = this;
  drivers_.insert(driver.handle.address());
  driver.handle.resume();  // run to first suspension point
  check_exception();
  return Process{std::move(state)};
}

void Engine::check_exception() {
  if (pending_exception_) {
    std::exception_ptr e = std::exchange(pending_exception_, nullptr);
    std::rethrow_exception(e);
  }
}

void Engine::run() {
  while (!queue_.empty()) {
    // Item::fn may schedule more events; copy out before popping.
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    assert(item.at >= now_);
    now_ = item.at;
    ++events_processed_;
    item.fn();
    check_exception();
  }
}

void Engine::run_until(Time t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    now_ = item.at;
    ++events_processed_;
    item.fn();
    check_exception();
  }
  if (t > now_) now_ = t;
}

}  // namespace fabsim

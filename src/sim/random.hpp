// Deterministic, seedable PRNG (xoshiro256**) for loss injection and
// workload generation. Not for cryptography.
#pragma once

#include <array>
#include <cstdint>

namespace fabsim {

/// SplitMix64 — used to seed Xoshiro from a single 64-bit value.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound) (bound > 0). Small modulo bias is
  /// acceptable for simulation workloads.
  std::uint64_t uniform_below(std::uint64_t bound) { return next() % bound; }

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace fabsim

// Structured event tracing.
//
// A Tracer attached to the Engine records timestamped, categorized
// events emitted by the stacks (segment transmissions, protocol
// handshakes, MPI matching decisions, retransmissions). Off by default —
// emission sites guard on `engine.tracer()` so the cost is one branch
// when disabled. Used by the protocol_trace example and by tests that
// assert on event sequences.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace fabsim {

enum class TraceCategory : std::uint8_t {
  kHost,   ///< syscalls, MPI library work, copies
  kNic,    ///< NIC engine / DMA activity
  kWire,   ///< frames entering / leaving the fabric
  kProto,  ///< protocol state transitions (RTS/CTS/FIN, acks, retransmits)
};

inline const char* trace_category_name(TraceCategory category) {
  switch (category) {
    case TraceCategory::kHost: return "host";
    case TraceCategory::kNic: return "nic";
    case TraceCategory::kWire: return "wire";
    case TraceCategory::kProto: return "proto";
  }
  return "?";
}

class Tracer {
 public:
  struct Entry {
    Time at;
    TraceCategory category;
    int node;
    std::string label;
  };

  void emit(Time at, TraceCategory category, int node, std::string label) {
    if (entries_.size() < max_entries_) {
      entries_.push_back(Entry{at, category, node, std::move(label)});
    } else {
      ++dropped_;
    }
  }

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t dropped() const { return dropped_; }
  void clear() {
    entries_.clear();
    dropped_ = 0;
  }
  void set_capacity(std::size_t max_entries) { max_entries_ = max_entries; }

  /// One-line accounting of what the tracer holds — and, crucially, what
  /// it silently lost to the capacity bound. Shown at the end of every
  /// dump so a truncated trace is never mistaken for a complete one.
  std::string summary() const {
    std::size_t per_category[4] = {0, 0, 0, 0};
    for (const Entry& entry : entries_) {
      ++per_category[static_cast<std::size_t>(entry.category)];
    }
    std::string line = std::to_string(entries_.size()) + " events (host=" +
                       std::to_string(per_category[0]) + " nic=" +
                       std::to_string(per_category[1]) + " wire=" +
                       std::to_string(per_category[2]) + " proto=" +
                       std::to_string(per_category[3]) + "), " + std::to_string(dropped_) +
                       " dropped";
    if (dropped_ > 0) {
      line += " — trace is INCOMPLETE, raise set_capacity() past " +
              std::to_string(max_entries_ + dropped_);
    }
    return line;
  }

  /// Human-readable timeline, one line per event, closed by summary().
  void dump(std::FILE* out = stdout) const {
    for (const Entry& entry : entries_) {
      std::fprintf(out, "%11.3f us  [node %d] %-5s  %s\n", to_us(entry.at), entry.node,
                   trace_category_name(entry.category), entry.label.c_str());
    }
    std::fprintf(out, "(%s)\n", summary().c_str());
  }

  /// Count of entries whose label contains `needle` (for tests).
  std::size_t count_containing(const std::string& needle) const {
    std::size_t n = 0;
    for (const Entry& entry : entries_) {
      if (entry.label.find(needle) != std::string::npos) ++n;
    }
    return n;
  }

 private:
  std::vector<Entry> entries_;
  std::size_t max_entries_ = 100'000;
  std::size_t dropped_ = 0;
};

}  // namespace fabsim

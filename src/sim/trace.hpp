// Structured event tracing.
//
// A Tracer attached to the Engine records timestamped, categorized
// events emitted by the stacks (segment transmissions, protocol
// handshakes, MPI matching decisions, retransmissions). Off by default —
// emission sites guard on `engine.tracer()` so the cost is one branch
// when disabled. Used by the protocol_trace example and by tests that
// assert on event sequences.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace fabsim {

enum class TraceCategory : std::uint8_t {
  kHost,   ///< syscalls, MPI library work, copies
  kNic,    ///< NIC engine / DMA activity
  kWire,   ///< frames entering / leaving the fabric
  kProto,  ///< protocol state transitions (RTS/CTS/FIN, acks, retransmits)
};

inline const char* trace_category_name(TraceCategory category) {
  switch (category) {
    case TraceCategory::kHost: return "host";
    case TraceCategory::kNic: return "nic";
    case TraceCategory::kWire: return "wire";
    case TraceCategory::kProto: return "proto";
  }
  return "?";
}

class Tracer {
 public:
  struct Entry {
    Time at;
    TraceCategory category;
    int node;
    std::string label;
  };

  /// What happens when the capacity bound is hit. kKeepFirst preserves
  /// the head of the run (startup, handshakes); kKeepLatest overwrites
  /// the oldest entries ring-buffer style so long runs keep the
  /// interesting tail (the retransmit storm, the last iteration).
  enum class OverflowMode : std::uint8_t { kKeepFirst, kKeepLatest };

  void emit(Time at, TraceCategory category, int node, std::string label) {
    if (entries_.size() < max_entries_) {
      entries_.push_back(Entry{at, category, node, std::move(label)});
      return;
    }
    ++dropped_;
    if (overflow_mode_ == OverflowMode::kKeepLatest && max_entries_ > 0) {
      entries_[write_pos_] = Entry{at, category, node, std::move(label)};
      write_pos_ = (write_pos_ + 1) % max_entries_;
    }
  }

  /// Raw storage order. In kKeepLatest mode after overflow this is a
  /// rotated ring — use ordered() for chronological iteration.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Entries in chronological order regardless of overflow mode.
  std::vector<Entry> ordered() const {
    std::vector<Entry> out;
    if (entries_.empty()) return out;
    out.reserve(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out.push_back(entries_[(write_pos_ + i) % entries_.size()]);
    }
    return out;
  }

  std::size_t dropped() const { return dropped_; }
  void clear() {
    entries_.clear();
    dropped_ = 0;
    write_pos_ = 0;
  }
  void set_capacity(std::size_t max_entries) { max_entries_ = max_entries; }
  void set_overflow_mode(OverflowMode mode) { overflow_mode_ = mode; }
  OverflowMode overflow_mode() const { return overflow_mode_; }

  /// One-line accounting of what the tracer holds — and, crucially, what
  /// it silently lost to the capacity bound. Shown at the end of every
  /// dump so a truncated trace is never mistaken for a complete one.
  std::string summary() const {
    std::size_t per_category[4] = {0, 0, 0, 0};
    for (const Entry& entry : entries_) {
      ++per_category[static_cast<std::size_t>(entry.category)];
    }
    std::string line = std::to_string(entries_.size()) + " events (host=" +
                       std::to_string(per_category[0]) + " nic=" +
                       std::to_string(per_category[1]) + " wire=" +
                       std::to_string(per_category[2]) + " proto=" +
                       std::to_string(per_category[3]) + "), " + std::to_string(dropped_) +
                       " dropped";
    if (dropped_ > 0) {
      if (overflow_mode_ == OverflowMode::kKeepLatest) {
        line += " — oldest events overwritten (keep-latest); raise set_capacity() past " +
                std::to_string(max_entries_ + dropped_) + " for the full run";
      } else {
        line += " — trace is INCOMPLETE, raise set_capacity() past " +
                std::to_string(max_entries_ + dropped_);
      }
    }
    return line;
  }

  /// Selects which entries a filtered dump() prints. Default-constructed
  /// matches everything; set `category` and/or `node` to narrow.
  struct Filter {
    std::optional<TraceCategory> category;
    std::optional<int> node;
    bool matches(const Entry& entry) const {
      if (category && entry.category != *category) return false;
      if (node && entry.node != *node) return false;
      return true;
    }
  };

  /// Human-readable timeline, one line per event, closed by summary().
  /// Entries print in chronological order even after ring overflow.
  void dump(std::FILE* out = stdout, const Filter& filter = Filter{}) const {
    std::size_t shown = 0;
    for (const Entry& entry : ordered()) {
      if (!filter.matches(entry)) continue;
      ++shown;
      std::fprintf(out, "%11.3f us  [node %d] %-5s  %s\n", to_us(entry.at), entry.node,
                   trace_category_name(entry.category), entry.label.c_str());
    }
    if (filter.category || filter.node) {
      std::fprintf(out, "(%zu of %s)\n", shown, summary().c_str());
    } else {
      std::fprintf(out, "(%s)\n", summary().c_str());
    }
  }

  /// Count of entries whose label contains `needle` (for tests).
  std::size_t count_containing(const std::string& needle) const {
    std::size_t n = 0;
    for (const Entry& entry : entries_) {
      if (entry.label.find(needle) != std::string::npos) ++n;
    }
    return n;
  }

 private:
  std::vector<Entry> entries_;
  std::size_t max_entries_ = 100'000;
  std::size_t dropped_ = 0;
  std::size_t write_pos_ = 0;  ///< oldest entry once the ring has wrapped
  OverflowMode overflow_mode_ = OverflowMode::kKeepFirst;
};

}  // namespace fabsim

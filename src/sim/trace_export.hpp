// Chrome-trace-event exporter (chrome://tracing / Perfetto).
//
// Serializes a Tracer's event timeline — and, when a MetricRegistry is
// supplied, its timestamped counter-track samples — into the Trace
// Event Format JSON understood by chrome://tracing and ui.perfetto.dev.
// Mapping:
//   * each simulated node  -> one "process" (pid = node id, named via a
//     process_name metadata event)
//   * each trace category  -> the event's "cat" and its "tid" within
//     the node, so host/NIC/wire/proto land on separate rows
//   * each Tracer entry    -> an instant event (ph "i", scope "t"),
//     ts in microseconds (the format's native unit)
//   * each registry sample -> a counter event (ph "C") on a track named
//     by the sample, rendered by the UI as a stacked area chart
//   * each FabricProf slice -> a duration event (ph "X", cat "prof") on
//     the dedicated kHostProfilePid process ("host (profiler)"), with ts
//     in *host* microseconds since profiler attach and the simulated
//     clock carried in args.sim_us — the sim-time lanes above and the
//     host-time lanes below share one document but not one clock
#pragma once

#include <string>

#include "sim/metrics.hpp"
#include "sim/prof.hpp"
#include "sim/trace.hpp"

namespace fabsim {

/// The pid the host-time profiler lanes render under. Far outside any
/// plausible simulated node id so the two families can never collide.
inline constexpr int kHostProfilePid = 1'000'000;

/// Render the trace (and optional counter samples / host-time profiler
/// slices) as a complete Chrome-trace JSON document.
std::string chrome_trace_json(const Tracer& tracer, const MetricRegistry* metrics = nullptr,
                              const Profiler* profiler = nullptr);

/// Write chrome_trace_json() to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path, const Tracer& tracer,
                        const MetricRegistry* metrics = nullptr,
                        const Profiler* profiler = nullptr);

}  // namespace fabsim

#include "sim/prof.hpp"

#include <chrono>

#include "sim/metrics.hpp"

namespace fabsim {

namespace {

// The single sanctioned host-clock read in this tree (conventions_lint
// rule 10): host-side profiling is meaningless in simulated time.
std::int64_t host_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             // HOT-OK(the one sanctioned host-clock read (conventions_lint rule 10); profiler-only)
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

namespace {

prof::AllocStats stats_since(const prof::AllocStats& baseline) {
  const prof::AllocStats& now = prof::alloc_stats();
  prof::AllocStats delta;
  delta.allocs = now.allocs - baseline.allocs;
  delta.frees = now.frees - baseline.frees;
  delta.bytes_allocated = now.bytes_allocated - baseline.bytes_allocated;
  delta.bytes_freed = now.bytes_freed - baseline.bytes_freed;
  return delta;
}

void fold(prof::AllocStats& into, const prof::AllocStats& delta) {
  into.allocs += delta.allocs;
  into.frees += delta.frees;
  into.bytes_allocated += delta.bytes_allocated;
  into.bytes_freed += delta.bytes_freed;
}

}  // namespace

void Profiler::on_attach() {
  if (attached_) return;
  attached_ = true;
  if (epoch_ns_ == 0) epoch_ns_ = host_now_ns();  // slices stay on one axis across re-attaches
  alloc_baseline_ = prof::alloc_stats();
  prof::acquire_alloc_tracking();
}

void Profiler::on_detach() {
  if (!attached_) return;
  fold(alloc_accum_, stats_since(alloc_baseline_));
  prof::release_alloc_tracking();
  attached_ = false;
  in_sample_ = false;
  in_run_ = false;
}

void Profiler::begin_sampled(Time sim_now, int scope) {
  // A callback that threw mid-sample leaves in_sample_ set; starting the
  // next sample simply abandons the torn one.
  in_sample_ = true;
  sample_sim_at_ = sim_now;
  sample_scope_ = scope;
  sample_begin_ns_ = host_now_ns();
}

void Profiler::end_dispatch() {
  if (!in_sample_) return;
  in_sample_ = false;
  const std::int64_t end_ns = host_now_ns();
  const std::uint64_t dur =
      end_ns > sample_begin_ns_ ? static_cast<std::uint64_t>(end_ns - sample_begin_ns_) : 0;
  ++sampled_;
  sampled_ns_ += dur;
  auto& [samples, ns_total] = by_scope_[sample_scope_];
  ++samples;
  ns_total += dur;
  if (slices_.size() < config_.max_slices) {
    // HOT-OK(sampled slice retention, capped at Config::max_slices; profiler-only observability)
    slices_.push_back(Slice{static_cast<double>(sample_begin_ns_ - epoch_ns_) / 1e3,
                            static_cast<double>(dur) / 1e3, sample_sim_at_, sample_scope_});
  } else {
    ++slices_dropped_;
  }
}

void Profiler::on_run_begin(std::uint64_t events_processed) {
  if (in_run_) return;  // defensive: nested run() is not a thing today
  in_run_ = true;
  run_begin_events_ = events_processed;
  run_begin_ns_ = host_now_ns();
}

void Profiler::on_run_end(std::uint64_t events_processed) {
  if (!in_run_) return;
  in_run_ = false;
  const std::int64_t end_ns = host_now_ns();
  if (end_ns > run_begin_ns_) run_ns_ += static_cast<std::uint64_t>(end_ns - run_begin_ns_);
  dispatched_ += events_processed - run_begin_events_;
}

prof::AllocStats Profiler::alloc_delta() const {
  prof::AllocStats total = alloc_accum_;
  if (attached_) fold(total, stats_since(alloc_baseline_));
  return total;
}

void Profiler::publish(MetricRegistry& registry, const std::string& prefix) const {
  registry.counter(prefix + "queue.posts").set(posts_);
  registry.counter(prefix + "queue.pops").set(pops_);
  registry.counter(prefix + "queue.requeues").set(requeues_);
  registry.counter(prefix + "queue.peak_depth").set(peak_depth_);
  registry.counter(prefix + "queue.heapify_cost").set(heapify_cost_);

  registry.counter(prefix + "dispatch.stride").set(config_.sample_stride);
  registry.counter(prefix + "dispatch.sampled").set(sampled_);
  registry.counter(prefix + "dispatch.sampled_ns").set(sampled_ns_);
  if (sampled_ > 0) {
    registry.gauge(prefix + "dispatch.est_ns_per_event")
        .set(static_cast<double>(sampled_ns_) / static_cast<double>(sampled_));
  }
  for (const auto& [scope, tally] : by_scope_) {
    const std::string where = scope < 0 ? "shared" : "node" + std::to_string(scope);
    registry.counter(prefix + "dispatch." + where + ".samples").set(tally.first);
    registry.counter(prefix + "dispatch." + where + ".ns").set(tally.second);
  }

  const prof::AllocStats delta = alloc_delta();
  registry.counter(prefix + "alloc.allocs").set(delta.allocs);
  registry.counter(prefix + "alloc.frees").set(delta.frees);
  registry.counter(prefix + "alloc.bytes_allocated").set(delta.bytes_allocated);
  registry.counter(prefix + "alloc.bytes_freed").set(delta.bytes_freed);
  registry.counter(prefix + "alloc.queue_growths").set(queue_growths_);
  registry.counter(prefix + "alloc.dispatch_allocs").set(dispatch_allocs_);
  registry.counter(prefix + "alloc.dispatch_growth_allocs").set(dispatch_growth_allocs_);
  registry.gauge(prefix + "alloc.allocs_per_event").set(allocs_per_event());

  registry.counter(prefix + "host.run_ns").set(run_ns_);
  registry.counter(prefix + "host.events").set(dispatched_);
  registry.gauge(prefix + "host.events_per_sec").set(events_per_sec());

  registry.counter(prefix + "trace.slices").set(slices_.size());
  registry.counter(prefix + "trace.slices_dropped").set(slices_dropped_);
}

void Profiler::reset() {
  const bool was_attached = attached_;
  posts_ = pops_ = requeues_ = 0;
  peak_depth_ = 0;
  heapify_cost_ = 0;
  dispatch_tick_ = sampled_ = sampled_ns_ = 0;
  by_scope_.clear();
  run_ns_ = dispatched_ = run_begin_events_ = 0;
  in_run_ = in_sample_ = false;
  slices_.clear();
  slices_dropped_ = 0;
  queue_growths_ = dispatch_allocs_ = dispatch_growth_allocs_ = alloc_events_ = 0;
  event_allocs_at_begin_ = 0;
  in_event_ = false;
  alloc_accum_ = prof::AllocStats{};
  epoch_ns_ = host_now_ns();
  if (was_attached) alloc_baseline_ = prof::alloc_stats();
}

}  // namespace fabsim

// FabricScope-Check: scope/ownership annotations + the runtime ScopeAuditor.
//
// The Engine's `post(at, scope, fn)` scope labels are the foundation the
// parallel engine (ROADMAP item 3) will stand on: `ready_events_commute`
// treats two co-enabled events with different non-negative scopes as
// commuting, and a cross-shard barrier will one day trust the same labels
// to decide which continuations may run on which worker. A mislabeled
// capture therefore silently breaks DPOR soundness today and digest
// deterministic parallelism tomorrow. This header provides both halves of
// the gate that keeps the labels honest:
//
//  1. *Static annotations* — `FABSIM_OWNED_BY(node)`, `FABSIM_SHARED` and
//     `FABSIM_ENGINE_LOCAL` are section markers placed among the member
//     declarations of every class whose state posted continuations touch
//     (NIC/HCA/endpoint/QP/Conn/Switch/Topology...). They expand to
//     nothing at compile time; `scripts/scope_check.py` parses them and
//     proves, per `Engine::post` call site, that the scope label's
//     confinement claim is supported by the lambda's explicit captures
//     (rule 6 of conventions_lint bans `[&]`, so captures are enumerable).
//
//     Vocabulary (see docs/static_analysis.md for the full contract):
//       FABSIM_OWNED_BY(expr)  following members are mutable state of the
//                              node identified by `expr` (e.g. `port_`);
//                              only events labelled with that scope — or
//                              scope -1 — may touch them.
//       FABSIM_SHARED          following members are mutable cross-node
//                              state (switch queues, LFTs, failover
//                              bookkeeping); touching them requires
//                              scope -1 ("conflicts with everything").
//       FABSIM_ENGINE_LOCAL    following members are engine plumbing or
//                              run-constant wiring (Engine*/Tracer*
//                              pointers, configs, peer tables fixed at
//                              build time); safe to read from any scope.
//
//  2. *Dynamic corroboration* — a ScopeAuditor attached to the Engine the
//     same way the Tracer / InvariantMonitor / Profiler are (caller-owned
//     pointer, one guarded branch when detached). The dispatch loop tells
//     it the scope label of the event being dispatched; annotated state
//     entry points call the FABSIM_AUDIT_OWNED / FABSIM_AUDIT_SHARED trap
//     macros, and an access whose owner does not match the dispatching
//     event's claimed scope is reported as a FabricCheck violation
//     (`sim.scope_confinement` / `sim.scope_shared_state` family rules).
//     Every FABSIM_CHECK bench and the chaos soak thereby cross-check the
//     static verdicts on real traffic.
//
// The auditor never posts events and never advances time: attaching one
// leaves the simulated timeline byte-identical (pinned by
// tests/scope_test.cpp), exactly like the InvariantMonitor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "sim/time.hpp"

// --- Static annotation markers (parsed by scripts/scope_check.py) ----------
//
// Section markers: place among member declarations like an access
// specifier; every member that follows (until the next marker) is in the
// declared ownership class. They compile to nothing — the analyzer reads
// the source text.
#define FABSIM_OWNED_BY(owner_expr) static_assert(true, "scope-check section marker")
#define FABSIM_SHARED static_assert(true, "scope-check section marker")
#define FABSIM_ENGINE_LOCAL static_assert(true, "scope-check section marker")

// Mutation seam for the gate's self-test: expands to `clean` unless the
// (runtime) `armed` expression is true. scripts/scope_check.py reads the
// first argument by default and the second under --mutation, so CI can
// prove the static gate actually fails on a mislabeled scope while the
// shipped schedule stays untouched.
#define FABSIM_MUTATION_SCOPE(clean, mutated, armed) ((armed) ? (mutated) : (clean))

namespace fabsim::scope {

/// Runtime scope auditor. Attach with Engine::set_scope_auditor(); the
/// dispatch loop brackets every event with begin_event/end_event, and the
/// FABSIM_AUDIT_* traps below consult current_scope(). Violations are
/// funnelled through an InvariantMonitor when one is set (so counting-mode
/// FABSIM_CHECK runs surface them as check.sim.scope_* counters and the
/// assert_clean.py gate catches them); without a monitor the auditor is
/// fatal and throws check::InvariantViolationError directly.
class ScopeAuditor {
 public:
  explicit ScopeAuditor(check::InvariantMonitor* monitor = nullptr) : monitor_(monitor) {}

  void set_monitor(check::InvariantMonitor* monitor) { monitor_ = monitor; }

  /// True while an event is being dispatched (traps are no-ops outside
  /// dispatch: spawn()'s run-to-first-suspension happens in caller
  /// context, where no scope label exists to check against).
  bool active() const { return active_; }

  /// Scope label of the currently-dispatching event (-1 = unconfined).
  int current_scope() const { return current_scope_; }

  // Engine dispatch hooks.
  void begin_event(Time at, int event_scope) {
    at_ = at;
    current_scope_ = event_scope;
    active_ = true;
  }
  void end_event() {
    active_ = false;
    current_scope_ = -1;
  }

  /// Trap: state owned by `owner_node` is being touched. Legal from an
  /// event labelled with that node's scope or with -1 (no claim).
  void owned_access(check::Layer layer, int owner_node, const char* what) {
    if (!active_) return;
    ++checks_;
    if (current_scope_ >= 0 && owner_node >= 0 && current_scope_ != owner_node) {
      violation(layer, owner_node, "scope_confinement",
                std::string(what) + ": state owned by node " + std::to_string(owner_node) +
                    " touched by an event labelled scope " + std::to_string(current_scope_));
    }
  }

  /// Trap: cross-node shared state is being touched. Legal only from an
  /// event labelled -1 — a confined label claims the event cannot reach
  /// shared state, which is exactly what DPOR reduction relies on.
  void shared_access(check::Layer layer, int node, const char* what) {
    if (!active_) return;
    ++checks_;
    if (current_scope_ >= 0) {
      violation(layer, node, "scope_shared_state",
                std::string(what) + ": shared state touched by an event labelled scope " +
                    std::to_string(current_scope_) + " (shared state requires scope -1)");
    }
  }

  std::uint64_t checks() const { return checks_; }
  std::uint64_t violations() const { return violations_; }

 private:
  void violation(check::Layer layer, int node, const char* rule, std::string detail) {
    ++violations_;
    if (monitor_ != nullptr) {
      monitor_->report(at_, layer, node, rule, std::move(detail));
      return;
    }
    throw check::InvariantViolationError(
        check::InvariantViolation{at_, layer, node, rule, std::move(detail)});
  }

  check::InvariantMonitor* monitor_ = nullptr;
  bool active_ = false;
  int current_scope_ = -1;
  Time at_ = 0;
  std::uint64_t checks_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace fabsim::scope

// --- Dynamic access traps ---------------------------------------------------
//
// Placed at the entry points posted continuations funnel through (deliver,
// pump, timeout handlers, switch admission, failover). One guarded branch
// when no auditor is attached, like every other FabricCheck hook. `eng`
// must be an Engine (lvalue); evaluated once per macro argument use.
#define FABSIM_AUDIT_OWNED(eng, layer, owner_node, what)                            \
  do {                                                                              \
    if (::fabsim::scope::ScopeAuditor* fabsim_scope_auditor_ = (eng).scope_auditor()) { \
      fabsim_scope_auditor_->owned_access((layer), (owner_node), (what));           \
    }                                                                               \
  } while (0)

#define FABSIM_AUDIT_SHARED(eng, layer, node, what)                                 \
  do {                                                                              \
    if (::fabsim::scope::ScopeAuditor* fabsim_scope_auditor_ = (eng).scope_auditor()) { \
      fabsim_scope_auditor_->shared_access((layer), (node), (what));                \
    }                                                                               \
  } while (0)

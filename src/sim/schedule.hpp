// Pluggable ready-set dispatch for the Engine (FabricExplore seam).
//
// The Engine's event queue is keyed by (time, sequence number). All events
// sharing the head timestamp are *co-enabled*: the simulation semantics
// fix their causal past but not their relative order, and the insertion-
// order tie-break the Engine uses by default is one legal schedule among
// many. A SchedulePolicy makes that tie-break pluggable: at every dispatch
// where more than one event is co-enabled, the Engine materializes the
// ready set (sorted by sequence number) and asks the policy which event to
// run next.
//
// Contract:
//   * choose() is only called with ready.size() >= 2; it must return an
//     index < ready.size(). The Engine clamps out-of-range picks to 0.
//   * ready is sorted by ascending seq, so index 0 reproduces the default
//     insertion-order schedule. InsertionOrderPolicy therefore yields a
//     run digest byte-identical to running with no policy at all (pinned
//     by tests/explore_test.cpp).
//   * A policy never sees events with distinct timestamps together; time
//     ordering is not negotiable, only same-time interleaving is.
//
// The `scope` field carries coarse commutativity metadata: posts labelled
// with a node id (see Engine::post(at, scope, fn)) touch only that node's
// state, so two co-enabled events with different non-negative scopes
// commute and exploring both orders is redundant. Scope -1 means
// "unknown — assume it conflicts with everything".
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace fabsim {

/// One co-enabled event as shown to a SchedulePolicy.
struct ReadyEvent {
  Time at = 0;
  std::uint64_t seq = 0;  ///< insertion order; globally unique
  int scope = -1;         ///< node id the event is confined to; -1 = unknown
};

/// Two co-enabled events commute when both are confined to (different)
/// single nodes. Shared with the explorer's partial-order reduction.
inline bool ready_events_commute(const ReadyEvent& a, const ReadyEvent& b) {
  return a.scope >= 0 && b.scope >= 0 && a.scope != b.scope;
}

class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;

  /// Pick the next event to dispatch from a co-enabled set (size >= 2,
  /// sorted by ascending seq). Returning 0 reproduces the default
  /// insertion-order schedule.
  virtual std::size_t choose(const std::vector<ReadyEvent>& ready) = 0;
};

/// The default tie-break, reified: always dispatch the event inserted
/// first. Attaching this policy is behaviourally identical (byte-identical
/// run digest) to attaching no policy — the null fast path exists only to
/// skip materializing ready sets on hot runs.
class InsertionOrderPolicy final : public SchedulePolicy {
 public:
  std::size_t choose(const std::vector<ReadyEvent>&) override { return 0; }
};

}  // namespace fabsim

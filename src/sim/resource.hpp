// Timed service resources.
//
// Because all users of a resource book service in call order and nothing
// preempts, FIFO resources reduce to arithmetic on a "busy until" horizon:
// no waiter queues are needed. A process books its completion time and
// sleeps until it.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace fabsim {

/// Serial FIFO server: one job at a time, back-to-back.
/// Models half-duplex buses, single-ported DMA engines, link directions.
class SerialServer {
 public:
  /// Book `duration` of service starting no earlier than `now`.
  /// Returns the completion time.
  Time book(Time now, Time duration) {
    const Time start = std::max(now, busy_until_);
    busy_until_ = start + duration;
    busy_time_ += duration;
    ++jobs_;
    return busy_until_;
  }

  /// Time at which the server next becomes free.
  Time busy_until() const { return busy_until_; }
  /// Total service time booked (for utilization reporting).
  Time busy_time() const { return busy_time_; }
  std::uint64_t jobs() const { return jobs_; }

 private:
  Time busy_until_ = 0;
  Time busy_time_ = 0;
  std::uint64_t jobs_ = 0;
};

/// Pipelined server: a new job may start every `occupancy` (the initiation
/// interval) but each job takes `latency` end-to-end (latency >= occupancy).
/// Models pipelined NIC protocol engines: throughput 1/occupancy, with
/// multiple jobs in flight. A processor-based (serial) engine is the special
/// case occupancy == latency.
class PipelinedServer {
 public:
  /// Book a job arriving at `now`; returns its completion time.
  Time book(Time now, Time occupancy, Time latency) {
    const Time start = std::max(now, next_start_);
    next_start_ = start + occupancy;
    busy_time_ += occupancy;
    ++jobs_;
    return start + latency;
  }

  Time next_start() const { return next_start_; }
  Time busy_time() const { return busy_time_; }
  std::uint64_t jobs() const { return jobs_; }

 private:
  Time next_start_ = 0;
  Time busy_time_ = 0;
  std::uint64_t jobs_ = 0;
};

/// Awaitable helper: book on a SerialServer and suspend until completion.
inline Engine::SleepAwaiter serve(Engine& engine, SerialServer& server, Time duration) {
  return engine.sleep_until(server.book(engine.now(), duration));
}

/// Awaitable helper: book on a PipelinedServer and suspend until completion.
inline Engine::SleepAwaiter serve(Engine& engine, PipelinedServer& server, Time occupancy,
                                  Time latency) {
  return engine.sleep_until(server.book(engine.now(), occupancy, latency));
}

}  // namespace fabsim

// sim::InplaceFn — the Engine's zero-allocation event payload.
//
// std::function heap-allocates any callable larger than its small-buffer
// optimization (16 bytes on libstdc++), which made nearly every posted
// wire continuation — a Segment/Packet moved into the lambda plus a few
// pointers — a malloc/free pair on the dispatch path. FabricHot-Check
// (scripts/hotpath_check.py) flagged that as the headline hot-path
// impurity; InplaceFn is the fix: a move-only callable wrapper whose
// storage is entirely inline, sized at compile time for the largest
// continuation in the tree.
//
// Contract:
//   * No heap, ever. A callable that does not fit the inline capacity is
//     rejected at compile time (deleted constructor), never spilled to
//     the heap — growing a capture is a conscious decision about every
//     event's footprint, not a silent allocation. tests/hotpath_test.cpp
//     probes the over-size rejection via std::is_constructible.
//   * Move-only, destructive. Moving transfers the callable (the
//     per-type operations table moves only sizeof(F) bytes, not the full
//     capacity) and empties the source. No copies: posted continuations
//     own moved-in frames and completion state.
//   * Deterministic. Construction, move and destruction touch nothing
//     global — no allocator, no registry — so swapping std::function for
//     InplaceFn leaves every run digest byte-identical (pinned by
//     scripts/check_determinism.sh across the swap).
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace fabsim::sim {

/// Inline storage for one posted continuation. Sized for the largest
/// wire-handoff lambda in the tree (an iwarp::Rnic Segment or ib::Hca
/// Packet moved into the capture plus a handful of pointers) while
/// keeping the whole wrapper — ops pointer + storage — at exactly three
/// cache lines; the compile-time fit check below turns a capture that
/// outgrows this into a build error naming the offending post site.
inline constexpr std::size_t kEventFnCapacity = 176;

/// Move-only callable with fixed inline storage and no heap fallback.
template <std::size_t Capacity = kEventFnCapacity>
class InplaceFn {
  template <typename F>
  static constexpr bool fits = sizeof(F) <= Capacity &&
                               alignof(F) <= alignof(std::max_align_t) &&
                               std::is_move_constructible_v<F>;

 public:
  InplaceFn() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InplaceFn> &&
             fits<std::remove_cvref_t<F>>)
  InplaceFn(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::remove_cvref_t<F>;
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));  // NOLINT: placement new, no allocation
    ops_ = &ops_for<Fn>;
  }

  /// A callable that exceeds the inline capacity is a compile error, not
  /// a heap allocation: grow kEventFnCapacity deliberately or shrink the
  /// capture. (std::is_constructible_v stays false — probed by tests.)
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InplaceFn> &&
             !fits<std::remove_cvref_t<F>>)
  InplaceFn(F&& fn) = delete;  // NOLINT(google-explicit-constructor)

  InplaceFn(InplaceFn&& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      relocate_from(other);
      other.ops_ = nullptr;
    }
  }

  InplaceFn& operator=(InplaceFn&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        ops_ = other.ops_;
        relocate_from(other);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InplaceFn(const InplaceFn&) = delete;
  InplaceFn& operator=(const InplaceFn&) = delete;

  ~InplaceFn() { reset(); }

  /// True when a callable is held (moved-from InplaceFns are empty).
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into dst from src, then destroy src (a destructive
    /// move: touches only sizeof(F) bytes of the capacity). Null when the
    /// callable is trivially relocatable — a memcpy of trivial_size bytes
    /// replaces the indirect call, which matters on the post path where
    /// the compiler cannot see through a function pointer.
    void (*relocate)(void* dst, void* src);
    /// Null when destruction is a no-op (trivially destructible capture).
    void (*destroy)(void*);
    std::size_t trivial_size;  ///< memcpy length when relocate is null
  };

  template <typename Fn>
  static constexpr bool trivially_relocatable =
      std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;

  template <typename Fn>
  static constexpr Ops ops_for{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      trivially_relocatable<Fn>
          ? nullptr
          : +[](void* dst, void* src) {
              ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));  // NOLINT: placement new, no allocation
              static_cast<Fn*>(src)->~Fn();
            },
      std::is_trivially_destructible_v<Fn> ? nullptr
                                           : +[](void* p) { static_cast<Fn*>(p)->~Fn(); },
      trivially_relocatable<Fn> ? sizeof(Fn) : 0,
  };

  /// Precondition: other.ops_ != nullptr and ops_ == other.ops_.
  void relocate_from(InplaceFn& other) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(storage_, other.storage_);
    } else {
      std::memcpy(storage_, other.storage_, ops_->trivial_size);
    }
  }

  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  // ops_ deliberately precedes the storage: together with the first
  // bytes of a small capture it shares one cache line, so parking and
  // dispatching a typical continuation touches a single line of the
  // Engine's payload slab instead of two.
  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[Capacity];
};

/// The Engine's event-payload type: every posted continuation must fit.
using EventFn = InplaceFn<>;

}  // namespace fabsim::sim

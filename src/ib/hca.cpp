#include "ib/hca.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/audits.hpp"

namespace fabsim::ib {

namespace {
constexpr std::uint32_t kReadRequestBytes = 28;
}

// ---------------------------------------------------------------------------
// Qp
// ---------------------------------------------------------------------------

Task<> Qp::post_send(verbs::SendWr wr) { return nic_->post_send_impl(*this, wr); }

Task<> Qp::post_recv(verbs::RecvWr wr) { return nic_->post_recv_impl(*this, wr); }

// ---------------------------------------------------------------------------
// Hca: construction / verbs surface
// ---------------------------------------------------------------------------

Hca::Hca(hw::Node& node, hw::Switch& fabric, HcaConfig config)
    : node_(&node),
      fabric_(&fabric),
      config_(config),
      port_(fabric.attach(*this)),
      registry_(config.reg) {}

Task<verbs::MrKey> Hca::reg_mr(std::uint64_t addr, std::uint64_t len) {
  co_await node_->cpu().compute(registry_.register_cost(len));
  co_return registry_.register_region(addr, len);
}

Task<> Hca::dereg_mr(verbs::MrKey key) {
  const auto* region = registry_.lookup(key);
  if (region == nullptr) throw std::invalid_argument("ib: dereg_mr of unknown key");
  const Time cost = registry_.deregister_cost(region->len);
  registry_.deregister(key);
  co_await node_->cpu().compute(cost);
}

std::unique_ptr<verbs::QueuePair> Hca::create_qp(verbs::CompletionQueue& send_cq,
                                                 verbs::CompletionQueue& recv_cq) {
  return std::unique_ptr<Qp>(new Qp(*this, next_qp_num_++, send_cq, recv_cq));
}

std::shared_ptr<Event> Hca::watch_placement(std::uint64_t addr, std::uint64_t len) {
  auto event = std::make_shared<Event>(engine());
  watches_.push_back(Watch{addr, len, event});
  return event;
}

void Hca::connect(verbs::QueuePair& a, verbs::QueuePair& b) {
  auto& qa = dynamic_cast<Qp&>(a);
  auto& qb = dynamic_cast<Qp&>(b);
  if (qa.connected() || qb.connected()) throw std::logic_error("ib: QP already connected");
  const int ca = qa.nic_->new_conn(qa);
  const int cb = qb.nic_->new_conn(qb);
  Conn& conn_a = *qa.nic_->conns_[static_cast<std::size_t>(ca)];
  Conn& conn_b = *qb.nic_->conns_[static_cast<std::size_t>(cb)];
  conn_a.peer = qb.nic_;
  conn_a.peer_conn_id = cb;
  conn_b.peer = qa.nic_;
  conn_b.peer_conn_id = ca;
  qa.conn_id_ = ca;
  qb.conn_id_ = cb;
}

int Hca::new_conn(Qp& qp) {
  conns_.push_back(std::make_unique<Conn>());
  conns_.back()->qp = &qp;
  conns_.back()->id = static_cast<int>(conns_.size()) - 1;
  return conns_.back()->id;
}

std::shared_ptr<std::vector<std::byte>> Hca::snapshot(hw::AddressSpace& mem, std::uint64_t addr,
                                                      std::uint32_t len) {
  hw::Buffer* buffer = mem.find(addr);
  if (buffer == nullptr || addr + len > buffer->addr() + buffer->size()) {
    // HOT-OK(protocol-violation guard; unreachable in a conforming run)
    throw std::out_of_range("ib: source outside any buffer");
  }
  if (!buffer->has_data()) return nullptr;
  auto view = mem.window(addr, len);
  // HOT-OK(per-message wire payload snapshot; stack-level state outside the engine's tracked zero-alloc contract)
  return std::make_shared<std::vector<std::byte>>(view.begin(), view.end());
}

// ---------------------------------------------------------------------------
// Host-facing post paths
// ---------------------------------------------------------------------------

Task<> Hca::post_send_impl(Qp& qp, verbs::SendWr wr) {
  if (!qp.connected()) throw std::logic_error("ib: post_send on unconnected QP");
  if (qp.in_error_) throw std::runtime_error("ib: post_send on QP in error state");
  if (wr.sge.length == 0) throw std::invalid_argument("ib: zero-length work request");
  if (!registry_.covers(wr.sge.lkey, wr.sge.addr, wr.sge.length)) {
    throw std::invalid_argument("ib: sge not covered by lkey");
  }
  co_await node_->cpu().compute(config_.post_send_cpu);

  OutMsg msg{};
  msg.wr_id = wr.wr_id;
  msg.signaled = wr.signaled;
  switch (wr.opcode) {
    case verbs::Opcode::kSend:
      msg.kind = MsgKind::kUntagged;
      msg.len = wr.sge.length;
      break;
    case verbs::Opcode::kRdmaWrite:
      msg.kind = MsgKind::kTaggedWrite;
      msg.len = wr.sge.length;
      msg.remote_addr = wr.remote_addr;
      msg.rkey = wr.rkey;
      break;
    case verbs::Opcode::kRdmaRead:
      msg.kind = MsgKind::kReadRequest;
      msg.len = kReadRequestBytes;
      msg.remote_addr = wr.remote_addr;
      msg.rkey = wr.rkey;
      msg.read_sink_addr = wr.sge.addr;
      msg.read_sink_key = wr.sge.lkey;
      msg.read_len = wr.sge.length;
      break;
  }
  if (wr.opcode != verbs::Opcode::kRdmaRead) {
    msg.data = snapshot(node_->mem(), wr.sge.addr, wr.sge.length);
  }

  const int conn_id = qp.conn_id_;
  // Scope labels on HCA-internal continuations (doorbell, timers, ack and
  // placement processing) mark them as confined to this node for schedule
  // exploration; wire handoffs stay unscoped (-1) because they mutate
  // shared switch state.
  engine().post(engine().now() + config_.doorbell, /*scope=*/port_,
                [this, conn_id, msg = std::move(msg)]() mutable {
                  send_message(*conns_[static_cast<std::size_t>(conn_id)], std::move(msg));
                });
}

Task<> Hca::post_recv_impl(Qp& qp, verbs::RecvWr wr) {
  if (!qp.connected()) throw std::logic_error("ib: post_recv on unconnected QP");
  if (qp.in_error_) throw std::runtime_error("ib: post_recv on QP in error state");
  if (!registry_.covers(wr.sge.lkey, wr.sge.addr, wr.sge.length)) {
    throw std::invalid_argument("ib: recv sge not covered by lkey");
  }
  co_await node_->cpu().compute(config_.post_recv_cpu);
  conns_[static_cast<std::size_t>(qp.conn_id_)]->recv_queue.push_back(wr);
}

// ---------------------------------------------------------------------------
// Transmit path
// ---------------------------------------------------------------------------

Time Hca::context_access(int conn_id) {
  auto it = std::find(context_lru_.begin(), context_lru_.end(), conn_id);
  if (it != context_lru_.end()) {
    context_lru_.erase(it);
    // HOT-OK(context-cache LRU node, bounded by the cache capacity)
    context_lru_.push_front(conn_id);
    ++context_hits_;
    return 0;
  }
  // HOT-OK(context-cache LRU node, bounded by the cache capacity)
  context_lru_.push_front(conn_id);
  if (static_cast<int>(context_lru_.size()) > config_.context_cache_entries) {
    context_lru_.pop_back();
  }
  ++context_misses_;
  return config_.context_miss_penalty;
}

Time Hca::engine_process(Time ready, const Packet& packet, bool transmit_side,
                         int local_conn_id) {
  Time occupancy = (transmit_side ? config_.tx_packet_proc : config_.rx_packet_proc) +
                   config_.engine_byte_rate.bytes_time(packet.payload_len);
  if (packet.first_of_message) {
    occupancy += transmit_side ? config_.tx_message_proc : config_.rx_message_proc;
    occupancy += context_access(local_conn_id);
  }
  engine().charge_phase(Phase::kNic, node_->id(), occupancy);
  return proc_.book(ready, occupancy) + config_.engine_latency_pad;
}

void Hca::send_message(Conn& conn, OutMsg msg) {
  // Scope trap: all transmit-side HCA state is FABSIM_OWNED_BY(port_).
  FABSIM_AUDIT_OWNED(engine(), check::Layer::kIb, port_, "Hca::send_message");
  if (msg.kind == MsgKind::kReadRequest) {
    // Track the read until its response completes it: the request packet
    // is acked (and leaves inflight) long before the response arrives,
    // and enter_error must be able to flush the stranded completion.
    // HOT-OK(pending-read list bounded by outstanding RDMA reads)
    conn.pending_reads.push_back(Conn::PendingRead{msg.wr_id, msg.read_len, msg.signaled});
  }
  const std::uint64_t msg_id = conn.next_msg_id++;
  std::uint32_t offset = 0;
  while (offset < msg.len) {
    const std::uint32_t chunk = std::min(config_.mtu, msg.len - offset);

    Packet packet{};
    packet.dst_conn_id = conn.peer_conn_id;
    packet.kind = msg.kind;
    packet.msg_id = msg_id;
    packet.msg_len = msg.len;
    packet.msg_offset = offset;
    packet.payload_len = chunk;
    packet.rkey = msg.rkey;
    packet.wr_id = msg.wr_id;
    packet.signaled = msg.signaled;
    packet.first_of_message = (offset == 0);
    packet.read_sink_addr = msg.read_sink_addr;
    packet.read_sink_key = msg.read_sink_key;
    packet.read_len = msg.read_len;
    if (msg.kind == MsgKind::kTaggedWrite || msg.kind == MsgKind::kReadResponse) {
      packet.place_addr = msg.remote_addr + offset;
    } else if (msg.kind == MsgKind::kReadRequest) {
      packet.place_addr = msg.remote_addr;
    }
    if (msg.data != nullptr) {
      // HOT-OK(per-message wire payload buffer; stack-level state outside the engine's tracked zero-alloc contract)
      packet.data = std::make_shared<std::vector<std::byte>>(
          msg.data->begin() + offset, msg.data->begin() + offset + chunk);
    }
    offset += chunk;
    packet.last_of_message = (offset == msg.len);

    transmit_packet(conn, std::move(packet), /*retransmit=*/false);
  }
}

FABSIM_HOT void Hca::transmit_packet(Conn& conn, Packet packet, bool retransmit) {
  const bool rel = reliable();
  if (rel && !retransmit) {
    // Requester side: stamp the PSN, keep a copy for retransmission, and
    // make sure a retry timer covers the (possibly new) head of line.
    packet.psn = conn.snd_psn++;
    // HOT-OK(inflight window bounded by the send window; capacity reused after warm-up)
    conn.inflight.push_back(packet);
    if (check::InvariantMonitor* monitor = engine().monitor()) {
      // Incremental contiguity: the appended PSN must extend the tail by
      // exactly one (O(1) per packet; the whole-queue form of this audit
      // is check::audit_ib_inflight_psns).
      const std::size_t n = conn.inflight.size();
      monitor->expect(conn.inflight.back().psn + 1 == conn.snd_psn &&
                          (n < 2 || conn.inflight[n - 2].psn + 1 == conn.inflight[n - 1].psn),
                      engine().now(), check::Layer::kIb, node_->id(), "psn_gap_in_inflight",
                      [&] {
                        return "appended psn " + std::to_string(conn.inflight.back().psn) +
                               " breaks inflight contiguity (snd_psn " +
                               std::to_string(conn.snd_psn) + ")";
                      });
    }
    arm_timer(conn);
  }
  if (retransmit) {
    ++retransmits_;
    retransmitted_bytes_ += packet.payload_len;
  }
  ++packets_sent_;

  // Fetch payload from host memory through the NIC DMA engine (retransmits
  // re-fetch: the card does not buffer payloads past the wire handoff).
  const bool carries_data = packet.kind != MsgKind::kReadRequest;
  Time ready = engine().now();
  if (carries_data) {
    const Time dma_cost =
        config_.dma_transaction + config_.dma_rate.bytes_time(packet.payload_len + 64);
    engine().charge_phase(Phase::kNic, node_->id(), dma_cost);
    ready = dma_.book(ready, dma_cost);
  }
  const Time processed = engine_process(ready, packet, /*transmit_side=*/true, conn.id);
  const Time serialization =
      fabric_->config().link_rate.bytes_time(packet.payload_len + config_.packet_overhead);
  engine().charge_phase(Phase::kWire, node_->id(), serialization);
  const Time sent = tx_link_.book(processed, serialization);

  // On the lossless fabric the send completion can be pushed at wire
  // handoff; with reliability armed it is deferred until the ack frees the
  // packet from the inflight queue (handle_ack_packet).
  const bool completes =
      !rel && packet.last_of_message && packet.signaled &&
      (packet.kind == MsgKind::kUntagged || packet.kind == MsgKind::kTaggedWrite);
  Qp* qp = conn.qp;
  Hca* peer = conn.peer;
  const int src = port_;
  engine().post(sent, [this, packet = std::move(packet), completes, qp, peer, src]() mutable {
    if (completes) {
      const auto type = packet.kind == MsgKind::kUntagged
                            ? verbs::Completion::Type::kSend
                            : verbs::Completion::Type::kRdmaWrite;
      qp->send_cq_->push(verbs::Completion{packet.wr_id, type, packet.msg_len, qp->qp_num()});
    }
    fabric_->ingress(hw::Frame{src, peer->port_,
                               packet.payload_len + config_.packet_overhead,
                               std::move(packet)});
  });
}

// ---------------------------------------------------------------------------
// RC end-to-end reliability (armed only under a fault injector)
// ---------------------------------------------------------------------------

void Hca::send_ack(Conn& conn, bool nak) {
  Packet ack{};
  ack.dst_conn_id = conn.peer_conn_id;
  ack.is_ack = !nak;
  ack.is_nak = nak;
  ack.ack_psn = conn.exp_psn;
  conn.pkts_since_ack = 0;
  ++acks_sent_;
  if (nak) {
    ++naks_sent_;
    engine().trace(TraceCategory::kProto, node_->id(),
                   "IB RC NAK: expected psn " + std::to_string(conn.exp_psn));
  }

  // Acks share the protocol engine and the tx link with data, and ride the
  // fabric like any other frame — so they too can be dropped or delayed.
  engine().charge_phase(Phase::kNic, node_->id(), config_.ack_proc);
  const Time processed = proc_.book(engine().now(), config_.ack_proc);
  const Time ack_serialization = fabric_->config().link_rate.bytes_time(config_.ack_wire_bytes);
  engine().charge_phase(Phase::kWire, node_->id(), ack_serialization);
  const Time sent = tx_link_.book(processed, ack_serialization);
  Hca* peer = conn.peer;
  const int src = port_;
  const std::uint32_t wire = config_.ack_wire_bytes;
  engine().post(sent, [this, ack, peer, src, wire]() mutable {
    fabric_->ingress(hw::Frame{src, peer->port_, wire, std::move(ack)});
  });
}

void Hca::handle_ack_packet(Conn& conn, const Packet& ack) {
  if (conn.qp->in_error_) return;
  if (check::InvariantMonitor* monitor = engine().monitor()) {
    check::audit_ib_ack_window(ack.ack_psn, conn.snd_psn)
        .report(monitor, engine().now(), check::Layer::kIb, node_->id());
  }
  bool advanced = false;
  while (!conn.inflight.empty() && conn.inflight.front().psn < ack.ack_psn) {
    const Packet done = std::move(conn.inflight.front());
    conn.inflight.pop_front();
    advanced = true;
    const bool completes = done.last_of_message && done.signaled &&
                           (done.kind == MsgKind::kUntagged || done.kind == MsgKind::kTaggedWrite);
    if (completes) {
      const auto type = done.kind == MsgKind::kUntagged ? verbs::Completion::Type::kSend
                                                        : verbs::Completion::Type::kRdmaWrite;
      conn.qp->send_cq_->push(verbs::Completion{done.wr_id, type, done.msg_len,
                                                conn.qp->qp_num()});
    }
  }
  if (advanced) conn.retry_count = 0;
  // Any timer now covers the wrong head of line; cancel it (generation
  // bump) and re-arm if packets remain outstanding.
  conn.timer_armed = false;
  ++conn.timer_gen;
  if (ack.is_nak) {
    retransmit_inflight(conn);  // go-back-N from the requested PSN
  } else if (!conn.inflight.empty()) {
    arm_timer(conn);
  }
}

void Hca::retransmit_inflight(Conn& conn) {
  if (conn.qp->in_error_) return;
  // Go-back-N: resend everything outstanding, oldest first, preserving the
  // original PSNs so the responder sees an in-order stream again.
  const std::size_t outstanding = conn.inflight.size();
  engine().trace(TraceCategory::kProto, node_->id(),
                 "IB RC retransmit from psn " + std::to_string(conn.inflight.front().psn) + ": " +
                     std::to_string(outstanding) + " packets");
  for (std::size_t i = 0; i < outstanding; ++i) {
    transmit_packet(conn, conn.inflight[i], /*retransmit=*/true);
  }
  arm_timer(conn);
}

void Hca::arm_timer(Conn& conn) {
  if (conn.timer_armed) return;
  conn.timer_armed = true;
  const std::uint64_t gen = ++conn.timer_gen;
  const Time timeout = config_.rto * (1ULL << std::min(conn.retry_count, 6));
  const int conn_id = conn.id;
  engine().post(engine().now() + timeout, /*scope=*/port_,
                [this, conn_id, gen] { on_timeout(conn_id, gen); });
}

void Hca::on_timeout(int conn_id, std::uint64_t gen) {
  FABSIM_AUDIT_OWNED(engine(), check::Layer::kIb, port_, "Hca::on_timeout");
  Conn& conn = *conns_[static_cast<std::size_t>(conn_id)];
  if (!conn.timer_armed || gen != conn.timer_gen) return;  // superseded
  conn.timer_armed = false;
  if (conn.inflight.empty()) return;
  ++conn.retry_count;
  ++rto_fires_;
  engine().trace(TraceCategory::kProto, node_->id(),
                 "IB RC RTO fired: retry " + std::to_string(conn.retry_count) + "/" +
                     std::to_string(config_.retry_limit));
  if (conn.retry_count > config_.retry_limit) {
    if (check::InvariantMonitor* monitor = engine().monitor()) {
      // RTO legality: the error transition is only legal once the retry
      // counter has actually exceeded the configured limit.
      check::audit_ib_retry_exhausted(conn.retry_count, config_.retry_limit)
          .report(monitor, engine().now(), check::Layer::kIb, node_->id());
    }
    enter_error(conn);
    return;
  }
  retransmit_inflight(conn);
}

void Hca::enter_error(Conn& conn) {
  conn.qp->in_error_ = true;
  conn.timer_armed = false;
  ++conn.timer_gen;
  engine().trace(TraceCategory::kProto, node_->id(),
                 "IB RC retry limit exhausted: QP " + std::to_string(conn.qp->qp_num()) +
                     " -> error state");
  // Flush outstanding signaled work requests with an error completion —
  // the RC contract when the transport retry counter is exhausted.
  for (const Packet& packet : conn.inflight) {
    if (packet.kind == MsgKind::kReadResponse) {
      // Responder-generated; no local work request to flush. The peer
      // notification below errors the stranded requester out.
      continue;
    }
    if (packet.kind == MsgKind::kReadRequest) {
      // The pending-read flush below owns read completions (the request
      // may or may not still be inflight; the list covers both).
      continue;
    }
    if (!packet.last_of_message || !packet.signaled) continue;
    verbs::Completion completion{};
    completion.wr_id = packet.wr_id;
    completion.byte_len = packet.msg_len;
    completion.qp_num = conn.qp->qp_num();
    completion.status = verbs::Completion::Status::kRetryExceeded;
    completion.type = packet.kind == MsgKind::kUntagged ? verbs::Completion::Type::kSend
                                                        : verbs::Completion::Type::kRdmaWrite;
    conn.qp->send_cq_->push(completion);
    ++retry_exceeded_completions_;
  }
  conn.inflight.clear();

  // Reads whose request was already acked (and so left the inflight
  // queue) but whose response never arrived used to vanish here without
  // a completion, silently under-counting kRetryExceeded. Flush them all
  // and report the previously-silent ones through the monitor.
  if (!conn.pending_reads.empty() && !config_.mutation_strand_pending_reads) {
    if (check::InvariantMonitor* monitor = engine().monitor()) {
      monitor->report(engine().now(), check::Layer::kIb, node_->id(), "error_pending_completion",
                      "QP " + std::to_string(conn.qp->qp_num()) + " entered error with " +
                          std::to_string(conn.pending_reads.size()) +
                          " RDMA read(s) still pending; flushing with kRetryExceeded");
    }
    for (const Conn::PendingRead& read : conn.pending_reads) {
      if (!read.signaled) continue;
      verbs::Completion completion{};
      completion.wr_id = read.wr_id;
      completion.byte_len = read.len;
      completion.qp_num = conn.qp->qp_num();
      completion.status = verbs::Completion::Status::kRetryExceeded;
      completion.type = verbs::Completion::Type::kRdmaRead;
      conn.qp->send_cq_->push(completion);
      ++retry_exceeded_completions_;
    }
    conn.pending_reads.clear();
  }

  // The RQ drains with flush errors when a QP enters the error state —
  // a receiver blocked on its recv CQ surfaces the failure instead of
  // hanging on data that will never arrive.
  for (const verbs::RecvWr& wr : conn.recv_queue) {
    verbs::Completion completion{};
    completion.wr_id = wr.wr_id;
    completion.qp_num = conn.qp->qp_num();
    completion.status = verbs::Completion::Status::kRetryExceeded;
    completion.type = verbs::Completion::Type::kRecv;
    conn.qp->recv_cq_->push(completion);
    ++retry_exceeded_completions_;
  }
  conn.recv_queue.clear();

  if (conn.peer != nullptr && !config_.mutation_strand_pending_reads) {
    // Out-of-band, like connect(): stands in for the peer-side teardown
    // (its own timeout exhaustion, or the CM disconnect event) that this
    // model elides. Without it a receiver whose sender died — or a read
    // requester whose responder died — waits forever.
    conn.peer->peer_conn_error(conn.peer_conn_id);
  }
}

void Hca::peer_conn_error(int conn_id) {
  Conn& conn = *conns_.at(static_cast<std::size_t>(conn_id));
  if (conn.qp->in_error_) return;
  engine().trace(TraceCategory::kProto, node_->id(),
                 "IB RC peer failure: QP " + std::to_string(conn.qp->qp_num()) +
                     " -> error state (responder died mid-response)");
  enter_error(conn);
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void Hca::deliver(hw::Frame frame) {
  // Scope trap: delivery mutates this HCA's receive state, so the
  // carrying event must be labelled with this node's scope (or -1).
  FABSIM_AUDIT_OWNED(engine(), check::Layer::kIb, port_, "Hca::deliver");
  if (frame.corrupted) {
    // Failed ICRC/VCRC: the packet is silently discarded and recovered (if
    // at all) by the requester's retry timer, exactly like a drop.
    ++corrupt_discards_;
    return;
  }
  Packet packet = std::any_cast<Packet>(std::move(frame.payload));
  Conn& conn = *conns_.at(static_cast<std::size_t>(packet.dst_conn_id));

  if (packet.is_ack || packet.is_nak) {
    engine().charge_phase(Phase::kNic, node_->id(), config_.ack_proc);
    const Time done = proc_.book(engine().now(), config_.ack_proc);
    const int conn_id = packet.dst_conn_id;
    engine().post(done, /*scope=*/port_, [this, conn_id, packet] {
      handle_ack_packet(*conns_[static_cast<std::size_t>(conn_id)], packet);
    });
    return;
  }

  if (reliable()) {
    if (packet.psn != conn.exp_psn) {
      if (packet.psn < conn.exp_psn) {
        // Duplicate (our ack was lost or a retransmit raced it): discard
        // and re-assert the cumulative ack so the requester can advance.
        if (!(config_.mutation_drop_final_ack && packet.last_of_message)) {
          send_ack(conn, /*nak=*/false);
        }
      } else if (!conn.nak_outstanding) {
        // Sequence gap: NAK once per gap; the go-back-N retransmission
        // restarts the stream at exp_psn.
        conn.nak_outstanding = true;
        send_ack(conn, /*nak=*/true);
      }
      return;
    }
    conn.exp_psn = packet.psn + 1;
    conn.nak_outstanding = false;
    ++conn.pkts_since_ack;
    if (packet.last_of_message || conn.pkts_since_ack >= config_.ack_every) {
      if (!(config_.mutation_drop_final_ack && packet.last_of_message &&
            conn.pkts_since_ack < config_.ack_every)) {
        send_ack(conn, /*nak=*/false);
      }
    }
  }

  // On the receive side the packet's destination connection id is local.
  const Time processed =
      engine_process(engine().now(), packet, /*transmit_side=*/false, packet.dst_conn_id);

  if (packet.kind == MsgKind::kReadRequest) {
    // Read-after-write ordering: the responder must observe all earlier
    // placements from this stream before snapshotting the source, so the
    // request rides through the same FIFO DMA stage the data uses.
    engine().charge_phase(Phase::kNic, node_->id(), config_.dma_transaction);
    const Time ordered = dma_.book(processed, config_.dma_transaction);
    const int conn_id = packet.dst_conn_id;
    engine().post(ordered, /*scope=*/port_, [this, conn_id, packet = std::move(packet)] {
      handle_read_request(*conns_[static_cast<std::size_t>(conn_id)], packet);
    });
    return;
  }

  const Time place_cost =
      config_.dma_transaction + config_.dma_rate.bytes_time(packet.payload_len + 64);
  engine().charge_phase(Phase::kNic, node_->id(), place_cost);
  const Time placed = dma_.book(processed, place_cost);
  const int conn_id = packet.dst_conn_id;
  engine().post(placed, /*scope=*/port_, [this, conn_id, packet = std::move(packet)]() mutable {
    complete_placement(*conns_[static_cast<std::size_t>(conn_id)], packet);
  });
}

void Hca::handle_read_request(Conn& conn, const Packet& request) {
  if (!registry_.covers(request.rkey, request.place_addr, request.read_len)) {
    // HOT-OK(protocol-violation guard; unreachable in a conforming run)
    throw std::invalid_argument("ib: RDMA read source not covered by rkey");
  }
  OutMsg response{};
  response.kind = MsgKind::kReadResponse;
  response.wr_id = request.wr_id;
  response.signaled = true;
  response.len = request.read_len;
  response.remote_addr = request.read_sink_addr;
  response.rkey = request.read_sink_key;
  response.data = snapshot(node_->mem(), request.place_addr, request.read_len);
  send_message(conn, std::move(response));
}

void Hca::complete_placement(Conn& conn, const Packet& packet) {
  RxMsg& rx = conn.rx_msgs[packet.msg_id];

  std::uint64_t addr = 0;
  if (packet.kind == MsgKind::kUntagged) {
    if (packet.msg_offset == 0) {
      if (conn.recv_queue.empty()) {
        // HOT-OK(protocol-violation guard; unreachable in a conforming run)
        throw std::logic_error("ib: untagged message with no posted receive (RNR)");
      }
      const verbs::RecvWr wr = conn.recv_queue.front();
      conn.recv_queue.pop_front();
      if (wr.sge.length < packet.msg_len) {
        // HOT-OK(protocol-violation guard; unreachable in a conforming run)
        throw std::length_error("ib: posted receive buffer too small");
      }
      rx.target_addr = wr.sge.addr;
      rx.recv_wr_id = wr.wr_id;
    }
    addr = rx.target_addr + packet.msg_offset;
  } else {
    if (!registry_.covers(packet.rkey, packet.place_addr, packet.payload_len)) {
      // HOT-OK(protocol-violation guard; unreachable in a conforming run)
      throw std::invalid_argument("ib: tagged placement not covered by rkey");
    }
    addr = packet.place_addr;
    if (packet.msg_offset == 0) rx.target_addr = packet.place_addr;
  }

  if (packet.data != nullptr) {
    node_->mem().write(addr, *packet.data);
  } else if (hw::Buffer* buffer = node_->mem().find(addr);
             buffer == nullptr || addr + packet.payload_len > buffer->addr() + buffer->size()) {
    // HOT-OK(protocol-violation guard; unreachable in a conforming run)
    throw std::out_of_range("ib: placement outside any buffer");
  }

  rx.placed += packet.payload_len;
  if (rx.placed < packet.msg_len) return;

  const std::uint64_t base = rx.target_addr;
  const std::uint64_t recv_wr_id = rx.recv_wr_id;
  conn.rx_msgs.erase(packet.msg_id);
  switch (packet.kind) {
    case MsgKind::kUntagged:
      conn.qp->recv_cq_->push(verbs::Completion{recv_wr_id, verbs::Completion::Type::kRecv,
                                                packet.msg_len, conn.qp->qp_num()});
      break;
    case MsgKind::kReadResponse:
      // The read is complete; it no longer needs error-flush coverage.
      for (auto it = conn.pending_reads.begin(); it != conn.pending_reads.end(); ++it) {
        if (it->wr_id == packet.wr_id) {
          conn.pending_reads.erase(it);
          break;
        }
      }
      conn.qp->send_cq_->push(verbs::Completion{packet.wr_id, verbs::Completion::Type::kRdmaRead,
                                                packet.msg_len, conn.qp->qp_num()});
      check_watches(base, packet.msg_len);
      break;
    case MsgKind::kTaggedWrite:
      check_watches(base, packet.msg_len);
      break;
    case MsgKind::kReadRequest:
      break;
  }
}

void Hca::check_watches(std::uint64_t addr, std::uint32_t len) {
  for (auto it = watches_.begin(); it != watches_.end();) {
    if (it->addr >= addr && it->addr + it->len <= addr + len) {
      it->event->trigger();
      it = watches_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace fabsim::ib

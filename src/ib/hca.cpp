#include "ib/hca.hpp"

#include <algorithm>
#include <stdexcept>

namespace fabsim::ib {

namespace {
constexpr std::uint32_t kReadRequestBytes = 28;
}

// ---------------------------------------------------------------------------
// Qp
// ---------------------------------------------------------------------------

Task<> Qp::post_send(verbs::SendWr wr) { return nic_->post_send_impl(*this, wr); }

Task<> Qp::post_recv(verbs::RecvWr wr) { return nic_->post_recv_impl(*this, wr); }

// ---------------------------------------------------------------------------
// Hca: construction / verbs surface
// ---------------------------------------------------------------------------

Hca::Hca(hw::Node& node, hw::Switch& fabric, HcaConfig config)
    : node_(&node),
      fabric_(&fabric),
      config_(config),
      port_(fabric.attach(*this)),
      registry_(config.reg) {}

Task<verbs::MrKey> Hca::reg_mr(std::uint64_t addr, std::uint64_t len) {
  co_await node_->cpu().compute(registry_.register_cost(len));
  co_return registry_.register_region(addr, len);
}

Task<> Hca::dereg_mr(verbs::MrKey key) {
  const auto* region = registry_.lookup(key);
  if (region == nullptr) throw std::invalid_argument("ib: dereg_mr of unknown key");
  const Time cost = registry_.deregister_cost(region->len);
  registry_.deregister(key);
  co_await node_->cpu().compute(cost);
}

std::unique_ptr<verbs::QueuePair> Hca::create_qp(verbs::CompletionQueue& send_cq,
                                                 verbs::CompletionQueue& recv_cq) {
  return std::unique_ptr<Qp>(new Qp(*this, next_qp_num_++, send_cq, recv_cq));
}

std::shared_ptr<Event> Hca::watch_placement(std::uint64_t addr, std::uint64_t len) {
  auto event = std::make_shared<Event>(engine());
  watches_.push_back(Watch{addr, len, event});
  return event;
}

void Hca::connect(verbs::QueuePair& a, verbs::QueuePair& b) {
  auto& qa = dynamic_cast<Qp&>(a);
  auto& qb = dynamic_cast<Qp&>(b);
  if (qa.connected() || qb.connected()) throw std::logic_error("ib: QP already connected");
  const int ca = qa.nic_->new_conn(qa);
  const int cb = qb.nic_->new_conn(qb);
  Conn& conn_a = *qa.nic_->conns_[static_cast<std::size_t>(ca)];
  Conn& conn_b = *qb.nic_->conns_[static_cast<std::size_t>(cb)];
  conn_a.peer = qb.nic_;
  conn_a.peer_conn_id = cb;
  conn_b.peer = qa.nic_;
  conn_b.peer_conn_id = ca;
  qa.conn_id_ = ca;
  qb.conn_id_ = cb;
}

int Hca::new_conn(Qp& qp) {
  conns_.push_back(std::make_unique<Conn>());
  conns_.back()->qp = &qp;
  return static_cast<int>(conns_.size()) - 1;
}

std::shared_ptr<std::vector<std::byte>> Hca::snapshot(hw::AddressSpace& mem, std::uint64_t addr,
                                                      std::uint32_t len) {
  hw::Buffer* buffer = mem.find(addr);
  if (buffer == nullptr || addr + len > buffer->addr() + buffer->size()) {
    throw std::out_of_range("ib: source outside any buffer");
  }
  if (!buffer->has_data()) return nullptr;
  auto view = mem.window(addr, len);
  return std::make_shared<std::vector<std::byte>>(view.begin(), view.end());
}

// ---------------------------------------------------------------------------
// Host-facing post paths
// ---------------------------------------------------------------------------

Task<> Hca::post_send_impl(Qp& qp, verbs::SendWr wr) {
  if (!qp.connected()) throw std::logic_error("ib: post_send on unconnected QP");
  if (wr.sge.length == 0) throw std::invalid_argument("ib: zero-length work request");
  if (!registry_.covers(wr.sge.lkey, wr.sge.addr, wr.sge.length)) {
    throw std::invalid_argument("ib: sge not covered by lkey");
  }
  co_await node_->cpu().compute(config_.post_send_cpu);

  OutMsg msg{};
  msg.wr_id = wr.wr_id;
  msg.signaled = wr.signaled;
  switch (wr.opcode) {
    case verbs::Opcode::kSend:
      msg.kind = MsgKind::kUntagged;
      msg.len = wr.sge.length;
      break;
    case verbs::Opcode::kRdmaWrite:
      msg.kind = MsgKind::kTaggedWrite;
      msg.len = wr.sge.length;
      msg.remote_addr = wr.remote_addr;
      msg.rkey = wr.rkey;
      break;
    case verbs::Opcode::kRdmaRead:
      msg.kind = MsgKind::kReadRequest;
      msg.len = kReadRequestBytes;
      msg.remote_addr = wr.remote_addr;
      msg.rkey = wr.rkey;
      msg.read_sink_addr = wr.sge.addr;
      msg.read_sink_key = wr.sge.lkey;
      msg.read_len = wr.sge.length;
      break;
  }
  if (wr.opcode != verbs::Opcode::kRdmaRead) {
    msg.data = snapshot(node_->mem(), wr.sge.addr, wr.sge.length);
  }

  const int conn_id = qp.conn_id_;
  engine().post(engine().now() + config_.doorbell, [this, conn_id, msg = std::move(msg)]() mutable {
    send_message(*conns_[static_cast<std::size_t>(conn_id)], std::move(msg));
  });
}

Task<> Hca::post_recv_impl(Qp& qp, verbs::RecvWr wr) {
  if (!qp.connected()) throw std::logic_error("ib: post_recv on unconnected QP");
  if (!registry_.covers(wr.sge.lkey, wr.sge.addr, wr.sge.length)) {
    throw std::invalid_argument("ib: recv sge not covered by lkey");
  }
  co_await node_->cpu().compute(config_.post_recv_cpu);
  conns_[static_cast<std::size_t>(qp.conn_id_)]->recv_queue.push_back(wr);
}

// ---------------------------------------------------------------------------
// Transmit path
// ---------------------------------------------------------------------------

Time Hca::context_access(int conn_id) {
  auto it = std::find(context_lru_.begin(), context_lru_.end(), conn_id);
  if (it != context_lru_.end()) {
    context_lru_.erase(it);
    context_lru_.push_front(conn_id);
    ++context_hits_;
    return 0;
  }
  context_lru_.push_front(conn_id);
  if (static_cast<int>(context_lru_.size()) > config_.context_cache_entries) {
    context_lru_.pop_back();
  }
  ++context_misses_;
  return config_.context_miss_penalty;
}

Time Hca::engine_process(Time ready, const Packet& packet, bool transmit_side,
                         int local_conn_id) {
  Time occupancy = (transmit_side ? config_.tx_packet_proc : config_.rx_packet_proc) +
                   config_.engine_byte_rate.bytes_time(packet.payload_len);
  if (packet.first_of_message) {
    occupancy += transmit_side ? config_.tx_message_proc : config_.rx_message_proc;
    occupancy += context_access(local_conn_id);
  }
  return proc_.book(ready, occupancy) + config_.engine_latency_pad;
}

void Hca::send_message(Conn& conn, OutMsg msg) {
  const std::uint64_t msg_id = conn.next_msg_id++;
  std::uint32_t offset = 0;
  while (offset < msg.len) {
    const std::uint32_t chunk = std::min(config_.mtu, msg.len - offset);

    Packet packet{};
    packet.dst_conn_id = conn.peer_conn_id;
    packet.kind = msg.kind;
    packet.msg_id = msg_id;
    packet.msg_len = msg.len;
    packet.msg_offset = offset;
    packet.payload_len = chunk;
    packet.rkey = msg.rkey;
    packet.wr_id = msg.wr_id;
    packet.signaled = msg.signaled;
    packet.first_of_message = (offset == 0);
    packet.read_sink_addr = msg.read_sink_addr;
    packet.read_sink_key = msg.read_sink_key;
    packet.read_len = msg.read_len;
    if (msg.kind == MsgKind::kTaggedWrite || msg.kind == MsgKind::kReadResponse) {
      packet.place_addr = msg.remote_addr + offset;
    } else if (msg.kind == MsgKind::kReadRequest) {
      packet.place_addr = msg.remote_addr;
    }
    if (msg.data != nullptr) {
      packet.data = std::make_shared<std::vector<std::byte>>(
          msg.data->begin() + offset, msg.data->begin() + offset + chunk);
    }
    offset += chunk;
    packet.last_of_message = (offset == msg.len);

    ++packets_sent_;
    // Fetch payload from host memory through the NIC DMA engine.
    const bool carries_data = msg.kind != MsgKind::kReadRequest;
    Time ready = engine().now();
    if (carries_data) {
      ready = dma_.book(ready, config_.dma_transaction +
                                   config_.dma_rate.bytes_time(packet.payload_len + 64));
    }
    const Time processed =
        engine_process(ready, packet, /*transmit_side=*/true, conn.qp->conn_id_);
    const Time sent = tx_link_.book(
        processed,
        fabric_->config().link_rate.bytes_time(packet.payload_len + config_.packet_overhead));

    const bool completes =
        packet.last_of_message && packet.signaled &&
        (msg.kind == MsgKind::kUntagged || msg.kind == MsgKind::kTaggedWrite);
    Qp* qp = conn.qp;
    Hca* peer = conn.peer;
    const int src = port_;
    engine().post(sent, [this, packet = std::move(packet), completes, qp, peer, src]() mutable {
      if (completes) {
        const auto type = packet.kind == MsgKind::kUntagged
                              ? verbs::Completion::Type::kSend
                              : verbs::Completion::Type::kRdmaWrite;
        qp->send_cq_->push(verbs::Completion{packet.wr_id, type, packet.msg_len, qp->qp_num()});
      }
      fabric_->ingress(hw::Frame{src, peer->port_,
                                 packet.payload_len + config_.packet_overhead,
                                 std::move(packet)});
    });
  }
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void Hca::deliver(hw::Frame frame) {
  Packet packet = std::any_cast<Packet>(std::move(frame.payload));
  conns_.at(static_cast<std::size_t>(packet.dst_conn_id));  // validate conn id

  // On the receive side the packet's destination connection id is local.
  const Time processed =
      engine_process(engine().now(), packet, /*transmit_side=*/false, packet.dst_conn_id);

  if (packet.kind == MsgKind::kReadRequest) {
    // Read-after-write ordering: the responder must observe all earlier
    // placements from this stream before snapshotting the source, so the
    // request rides through the same FIFO DMA stage the data uses.
    const Time ordered = dma_.book(processed, config_.dma_transaction);
    const int conn_id = packet.dst_conn_id;
    engine().post(ordered, [this, conn_id, packet = std::move(packet)] {
      handle_read_request(*conns_[static_cast<std::size_t>(conn_id)], packet);
    });
    return;
  }

  const Time placed = dma_.book(
      processed, config_.dma_transaction + config_.dma_rate.bytes_time(packet.payload_len + 64));
  const int conn_id = packet.dst_conn_id;
  engine().post(placed, [this, conn_id, packet = std::move(packet)]() mutable {
    complete_placement(*conns_[static_cast<std::size_t>(conn_id)], packet);
  });
}

void Hca::handle_read_request(Conn& conn, const Packet& request) {
  if (!registry_.covers(request.rkey, request.place_addr, request.read_len)) {
    throw std::invalid_argument("ib: RDMA read source not covered by rkey");
  }
  OutMsg response{};
  response.kind = MsgKind::kReadResponse;
  response.wr_id = request.wr_id;
  response.signaled = true;
  response.len = request.read_len;
  response.remote_addr = request.read_sink_addr;
  response.rkey = request.read_sink_key;
  response.data = snapshot(node_->mem(), request.place_addr, request.read_len);
  send_message(conn, std::move(response));
}

void Hca::complete_placement(Conn& conn, const Packet& packet) {
  RxMsg& rx = conn.rx_msgs[packet.msg_id];

  std::uint64_t addr = 0;
  if (packet.kind == MsgKind::kUntagged) {
    if (packet.msg_offset == 0) {
      if (conn.recv_queue.empty()) {
        throw std::logic_error("ib: untagged message with no posted receive (RNR)");
      }
      const verbs::RecvWr wr = conn.recv_queue.front();
      conn.recv_queue.pop_front();
      if (wr.sge.length < packet.msg_len) {
        throw std::length_error("ib: posted receive buffer too small");
      }
      rx.target_addr = wr.sge.addr;
      rx.recv_wr_id = wr.wr_id;
    }
    addr = rx.target_addr + packet.msg_offset;
  } else {
    if (!registry_.covers(packet.rkey, packet.place_addr, packet.payload_len)) {
      throw std::invalid_argument("ib: tagged placement not covered by rkey");
    }
    addr = packet.place_addr;
    if (packet.msg_offset == 0) rx.target_addr = packet.place_addr;
  }

  if (packet.data != nullptr) {
    node_->mem().write(addr, *packet.data);
  } else if (hw::Buffer* buffer = node_->mem().find(addr);
             buffer == nullptr || addr + packet.payload_len > buffer->addr() + buffer->size()) {
    throw std::out_of_range("ib: placement outside any buffer");
  }

  rx.placed += packet.payload_len;
  if (rx.placed < packet.msg_len) return;

  const std::uint64_t base = rx.target_addr;
  const std::uint64_t recv_wr_id = rx.recv_wr_id;
  conn.rx_msgs.erase(packet.msg_id);
  switch (packet.kind) {
    case MsgKind::kUntagged:
      conn.qp->recv_cq_->push(verbs::Completion{recv_wr_id, verbs::Completion::Type::kRecv,
                                                packet.msg_len, conn.qp->qp_num()});
      break;
    case MsgKind::kReadResponse:
      conn.qp->send_cq_->push(verbs::Completion{packet.wr_id, verbs::Completion::Type::kRdmaRead,
                                                packet.msg_len, conn.qp->qp_num()});
      check_watches(base, packet.msg_len);
      break;
    case MsgKind::kTaggedWrite:
      check_watches(base, packet.msg_len);
      break;
    case MsgKind::kReadRequest:
      break;
  }
}

void Hca::check_watches(std::uint64_t addr, std::uint32_t len) {
  for (auto it = watches_.begin(); it != watches_.end();) {
    if (it->addr >= addr && it->addr + it->len <= addr + len) {
      it->event->trigger();
      it = watches_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace fabsim::ib

// Mellanox MHEA28-XT-class InfiniBand HCA parameters.
//
// Defaults are placeholders; the calibrated set lives in
// core/calibration.hpp. The two architectural choices that distinguish
// this HCA from the iWARP RNIC (DESIGN.md §1):
//   * processor-based engine: WQE/packet processing is serialized
//     (occupancy == the whole processing time, no pipelining across
//     connections), and
//   * MemFree card: QP contexts live in host memory behind a small
//     on-chip cache; a miss costs a PCIe round trip.
#pragma once

#include <cstdint>

#include "hw/memory.hpp"
#include "sim/time.hpp"

namespace fabsim::ib {

struct HcaConfig {
  // --- Processing engine (shared by both directions) ---
  Time tx_packet_proc = ns(350);  ///< per outbound packet
  Time rx_packet_proc = ns(350);  ///< per inbound packet
  Time tx_message_proc = ns(500); ///< extra, first packet of a message (WQE)
  Time rx_message_proc = ns(300); ///< extra, first packet of a message
  Time engine_latency_pad = ns(300);  ///< fixed pipeline fill per packet
  /// Per-byte engine throughput (header/CRC processing paths).
  Rate engine_byte_rate = Rate::mb_per_sec(4000.0);

  // --- QP context cache (MemFree card) ---
  int context_cache_entries = 8;
  Time context_miss_penalty = us(1.3);  ///< PCIe fetch of the QP context

  // --- Host interface ---
  Time post_send_cpu = ns(300);
  Time post_recv_cpu = ns(250);
  Time poll_cpu = ns(200);
  Time doorbell = ns(200);
  /// NIC-side DMA engine: serializes all host-memory traffic (both
  /// directions). This is what caps both-way MPI bandwidth at ~89% of
  /// 2 GB/s in the paper.
  Rate dma_rate = Rate::mb_per_sec(1780.0);
  Time dma_transaction = ns(150);

  // --- Link / transport ---
  std::uint32_t mtu = 2048;
  std::uint32_t packet_overhead = 30;  ///< LRH+BTH+ICRC+VCRC bytes

  // --- RC end-to-end reliability ---
  // Armed only when a fault injector is active on the engine; on a
  // lossless fabric the credit-based link-level flow control makes the
  // machinery unreachable and it costs nothing (matching the paper's
  // testbed). Timeout backs off as rto << min(retry, 6).
  Time rto = us(100);             ///< base transport retry timeout
  int retry_limit = 7;            ///< RTO rounds before the QP errors out
  std::uint32_t ack_every = 4;    ///< coalesced ack: one per this many packets
  Time ack_proc = ns(80);         ///< engine time to emit/absorb an ACK/NAK
  std::uint32_t ack_wire_bytes = 34;  ///< LRH+BTH+AETH+CRCs on the wire

  hw::RegistrationConfig reg{us(2.0), us(13.0), us(1.0), us(1.0), 4096};

  // --- Mutation self-test seams (FabricExplore) ---
  // Test-only flags, never set by calibration profiles. Each one
  // re-introduces a historical bug (or a near-miss variant) so the
  // schedule explorer can demonstrate it rediscovers the failure from a
  // clean spec: see docs/model_checking.md and bench/ext_explore.cpp.
  /// Revert the stranded-RDMA-read fix: on retry exhaustion, pending
  /// reads vanish without a flush and the peer is never told — the
  /// requester's poll blocks forever (detected as a lost_wakeup
  /// deadlock at queue drain).
  bool mutation_strand_pending_reads = false;
  /// Responder swallows the ack for the final packet of every message
  /// (fresh and duplicate paths alike) — the requester retries a
  /// delivered message into retry exhaustion.
  bool mutation_drop_final_ack = false;
};

}  // namespace fabsim::ib

// InfiniBand Host Channel Adapter (HCA), Reliable Connection transport.
//
// Verbs work requests become messages segmented into MTU packets on a 4X
// SDR link (1 GB/s data rate per direction). The fabric is lossless
// (credit-based link-level flow control), so there is no retransmission
// machinery; per-QP packet order is preserved end to end.
//
// The processing engine is processor-based: one packet at a time,
// occupancy == full processing time (contrast with the iWARP RNIC's
// pipeline). QP contexts live in host memory (MemFree) behind a small
// LRU cache; the miss penalty is what serializes multi-connection
// traffic past 8 connections in the paper's Figure 2.
//
// When a fault injector is armed on the engine, the RC transport's
// end-to-end reliability becomes reachable and is modelled: packets carry
// PSNs, the responder acks cumulatively (coalesced, NAK on a sequence
// gap), and the requester keeps a retransmit queue with a backed-off
// retry timer. Exhausting the retry counter moves the QP to the error
// state and surfaces error completions — the real RC failure contract.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "fault/injector.hpp"
#include "hw/fabric.hpp"
#include "hw/node.hpp"
#include "ib/config.hpp"
#include "sim/scope.hpp"
#include "verbs/verbs.hpp"

namespace fabsim::ib {

class Hca;

class Qp final : public verbs::QueuePair {
 public:
  Task<> post_send(verbs::SendWr wr) override;
  Task<> post_recv(verbs::RecvWr wr) override;
  int qp_num() const override { return qp_num_; }
  bool connected() const override { return conn_id_ >= 0; }
  bool in_error() const override { return in_error_; }

 private:
  friend class Hca;
  Qp(Hca& nic, int qp_num, verbs::CompletionQueue& send_cq, verbs::CompletionQueue& recv_cq)
      : nic_(&nic), qp_num_(qp_num), send_cq_(&send_cq), recv_cq_(&recv_cq) {}

  FABSIM_ENGINE_LOCAL;  // wiring fixed at create_qp/connect time
  Hca* nic_;
  int qp_num_;
  FABSIM_OWNED_BY(nic_->fabric_port());  // QP state advances only inside
                                         // the owning HCA's events
  int conn_id_ = -1;
  bool in_error_ = false;
  verbs::CompletionQueue* send_cq_;
  verbs::CompletionQueue* recv_cq_;
};

class Hca final : public verbs::Device, public hw::FrameSink {
 public:
  Hca(hw::Node& node, hw::Switch& fabric, HcaConfig config);

  // --- verbs::Device ---
  Task<verbs::MrKey> reg_mr(std::uint64_t addr, std::uint64_t len) override;
  Task<> dereg_mr(verbs::MrKey key) override;
  std::unique_ptr<verbs::QueuePair> create_qp(verbs::CompletionQueue& send_cq,
                                              verbs::CompletionQueue& recv_cq) override;
  std::shared_ptr<Event> watch_placement(std::uint64_t addr, std::uint64_t len) override;
  hw::MemoryRegistry& registry() override { return registry_; }
  void establish(verbs::QueuePair& local, verbs::QueuePair& remote) override {
    connect(local, remote);
  }

  // --- hw::FrameSink ---
  void deliver(hw::Frame frame) override;

  /// Out-of-band RC connection establishment.
  static void connect(verbs::QueuePair& a, verbs::QueuePair& b);

  hw::Node& node() { return *node_; }
  const HcaConfig& config() const { return config_; }
  int fabric_port() const { return port_; }

  // Statistics for tests and utilization studies.
  Time proc_busy_time() const { return proc_.busy_time(); }
  Time dma_busy_time() const { return dma_.busy_time(); }
  Time tx_link_busy_time() const { return tx_link_.busy_time(); }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t context_misses() const { return context_misses_; }
  std::uint64_t context_hits() const { return context_hits_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t naks_sent() const { return naks_sent_; }
  std::uint64_t rto_fires() const { return rto_fires_; }
  std::uint64_t retransmitted_bytes() const { return retransmitted_bytes_; }
  std::uint64_t corrupt_discards() const { return corrupt_discards_; }
  /// Error completions flushed with kRetryExceeded (inflight + pending
  /// reads) when a QP entered the error state.
  std::uint64_t retry_exceeded_completions() const { return retry_exceeded_completions_; }

 private:
  friend class Qp;

  enum class MsgKind : std::uint8_t { kUntagged, kTaggedWrite, kReadRequest, kReadResponse };

  struct Packet {
    int dst_conn_id = -1;
    MsgKind kind = MsgKind::kUntagged;
    // Reliability header (meaningful only while faults are armed).
    std::uint64_t psn = 0;
    bool is_ack = false;       ///< pure acknowledgement packet
    bool is_nak = false;       ///< sequence-gap NAK (ack_psn = expected)
    std::uint64_t ack_psn = 0; ///< cumulative: all PSNs below are acked
    std::uint64_t msg_id = 0;
    std::uint32_t msg_len = 0;
    std::uint32_t msg_offset = 0;
    std::uint32_t payload_len = 0;
    std::uint64_t place_addr = 0;  ///< tagged target / read source
    verbs::MrKey rkey = 0;
    std::uint64_t wr_id = 0;
    bool signaled = true;
    bool first_of_message = false;
    bool last_of_message = false;
    std::uint64_t read_sink_addr = 0;
    verbs::MrKey read_sink_key = 0;
    std::uint32_t read_len = 0;
    std::shared_ptr<std::vector<std::byte>> data;
  };

  struct OutMsg {
    MsgKind kind = MsgKind::kUntagged;
    std::uint64_t wr_id = 0;
    bool signaled = true;
    std::uint32_t len = 0;
    std::uint64_t remote_addr = 0;
    verbs::MrKey rkey = 0;
    std::uint64_t read_sink_addr = 0;
    verbs::MrKey read_sink_key = 0;
    std::uint32_t read_len = 0;
    std::shared_ptr<std::vector<std::byte>> data;
  };

  struct RxMsg {
    std::uint32_t placed = 0;
    std::uint64_t target_addr = 0;
    std::uint64_t recv_wr_id = 0;
  };

  struct Conn {
    FABSIM_ENGINE_LOCAL;  // wiring fixed at connect() time
    Qp* qp = nullptr;
    Hca* peer = nullptr;
    int id = -1;  ///< own index in conns_
    int peer_conn_id = -1;
    FABSIM_OWNED_BY(qp->nic_->fabric_port());  // RC machine state: advances
                                               // only inside the owning
                                               // HCA's events
    std::uint64_t next_msg_id = 1;
    std::map<std::uint64_t, RxMsg> rx_msgs;
    std::deque<verbs::RecvWr> recv_queue;

    // RC reliability (active only while a fault injector is armed).
    std::uint64_t snd_psn = 0;        ///< next PSN to assign (requester)
    std::uint64_t exp_psn = 0;        ///< next PSN expected (responder)
    std::deque<Packet> inflight;      ///< unacked packets, for retransmit
    std::uint64_t timer_gen = 0;
    bool timer_armed = false;
    int retry_count = 0;              ///< consecutive RTO rounds
    std::uint32_t pkts_since_ack = 0; ///< responder-side ack coalescing
    bool nak_outstanding = false;     ///< one NAK per gap, not per packet

    /// RDMA Reads posted but not yet completed by a read response. The
    /// request packet leaves `inflight` as soon as the responder acks
    /// it, so without this list a QP entering the error state with the
    /// response still missing would silently strand the read's
    /// completion (and under-count kRetryExceeded).
    struct PendingRead {
      std::uint64_t wr_id = 0;
      std::uint32_t len = 0;
      bool signaled = true;
    };
    std::deque<PendingRead> pending_reads;
  };

  struct Watch {
    std::uint64_t addr;
    std::uint64_t len;
    std::shared_ptr<Event> event;
  };

  Task<> post_send_impl(Qp& qp, verbs::SendWr wr);
  Task<> post_recv_impl(Qp& qp, verbs::RecvWr wr);
  static std::shared_ptr<std::vector<std::byte>> snapshot(hw::AddressSpace& mem,
                                                          std::uint64_t addr, std::uint32_t len);

  int new_conn(Qp& qp);
  void send_message(Conn& conn, OutMsg msg);
  /// Push one packet through DMA -> engine -> link and onto the fabric.
  void transmit_packet(Conn& conn, Packet packet, bool retransmit);
  void send_ack(Conn& conn, bool nak);
  void handle_ack_packet(Conn& conn, const Packet& ack);
  void retransmit_inflight(Conn& conn);
  void arm_timer(Conn& conn);
  void on_timeout(int conn_id, std::uint64_t gen);
  void enter_error(Conn& conn);
  /// Out-of-band error propagation from the peer HCA: stands in for the
  /// requester-side response timeout the model elides (a real requester
  /// retries the read and exhausts its own counter when the responder
  /// dies mid-response).
  void peer_conn_error(int conn_id);
  /// RC reliability is armed only when frames can actually be perturbed.
  bool reliable() { return fault::faults_armed(engine()); }
  /// Charge engine time for one packet; returns its completion time.
  /// Accesses the QP context cache for first-of-message packets.
  Time engine_process(Time ready, const Packet& packet, bool transmit_side, int local_conn_id);
  Time context_access(int conn_id);
  void handle_read_request(Conn& conn, const Packet& request);
  void complete_placement(Conn& conn, const Packet& packet);
  void check_watches(std::uint64_t addr, std::uint32_t len);

  Engine& engine() { return node_->engine(); }

  // Scope/ownership annotations (scripts/scope_check.py, src/sim/scope.hpp).
  FABSIM_ENGINE_LOCAL;  // engine plumbing + run-constant wiring
  hw::Node* node_;
  hw::Switch* fabric_;
  HcaConfig config_;
  int port_;
  FABSIM_OWNED_BY(port_);  // mutable HCA/protocol state: confined to this
                           // node's events (or scope -1 wire handoffs)
  hw::MemoryRegistry registry_;
  SerialServer dma_;     ///< NIC DMA engine, shared by both directions
  SerialServer proc_;    ///< processor-based protocol engine, shared
  SerialServer tx_link_;
  std::list<int> context_lru_;  ///< most-recent at front; values are conn ids
  int next_qp_num_ = 1;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<Watch> watches_;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t context_misses_ = 0;
  std::uint64_t context_hits_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t naks_sent_ = 0;
  std::uint64_t rto_fires_ = 0;
  std::uint64_t retransmitted_bytes_ = 0;
  std::uint64_t corrupt_discards_ = 0;
  std::uint64_t retry_exceeded_completions_ = 0;
};

}  // namespace fabsim::ib

// Common verbs abstraction: queue pairs, completion queues, memory
// regions, and work requests.
//
// Both the iWARP RNIC and the InfiniBand HCA implement this interface —
// it plays the role of the OpenFabrics/Gen2 verbs the paper uses for its
// head-to-head multi-connection comparison (§5.1). The semantics follow
// the two standards' shared core: QP-based, connection-oriented, RDMA
// Write/Read plus two-sided Send/Receive, explicit memory registration.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "hw/cpu.hpp"
#include "hw/memory.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace fabsim::verbs {

using MrKey = hw::MemoryRegistry::Key;

enum class Opcode : std::uint8_t { kSend, kRdmaWrite, kRdmaRead };

/// Scatter/gather element (single-element lists are enough for every
/// benchmark in the paper).
struct Sge {
  std::uint64_t addr = 0;
  std::uint32_t length = 0;
  MrKey lkey = 0;
};

struct SendWr {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  Sge sge;
  std::uint64_t remote_addr = 0;  ///< RDMA only
  MrKey rkey = 0;                 ///< RDMA only
  bool signaled = true;
};

struct RecvWr {
  std::uint64_t wr_id = 0;
  Sge sge;
};

struct Completion {
  enum class Type : std::uint8_t { kSend, kRecv, kRdmaWrite, kRdmaRead };
  enum class Status : std::uint8_t {
    kSuccess = 0,
    kRetryExceeded,  ///< transport retry counter exhausted; QP is in error
  };
  std::uint64_t wr_id = 0;
  Type type = Type::kSend;
  std::uint32_t byte_len = 0;
  int qp_num = -1;
  Status status = Status::kSuccess;
};

/// Completion queue: providers push, hosts poll (or block on next()).
class CompletionQueue {
 public:
  explicit CompletionQueue(Engine& engine) : notifier_(engine) {}

  std::optional<Completion> poll() {
    if (entries_.empty()) return std::nullopt;
    Completion completion = entries_.front();
    entries_.pop_front();
    return completion;
  }

  std::size_t depth() const { return entries_.size(); }

  /// Provider side: enqueue a completion and wake blocked pollers.
  void push(Completion completion) {
    entries_.push_back(completion);
    notifier_.notify_all();
  }

  Notifier& notifier() { return notifier_; }

 private:
  std::deque<Completion> entries_;
  Notifier notifier_;
};

/// Block until a completion is available; charges `poll_cost` to the CPU
/// for the successful poll (the spin iterations while waiting overlap the
/// NIC's work and are not charged, matching the paper's polling loops).
Task<Completion> next_completion(CompletionQueue& cq, hw::HostCpu& cpu, Time poll_cost);

class QueuePair {
 public:
  virtual ~QueuePair() = default;

  /// Post a send-side work request. Charges host CPU; returns once the
  /// request is handed to the NIC (completion arrives on the send CQ).
  virtual Task<> post_send(SendWr wr) = 0;

  /// Post a receive buffer for incoming Send messages.
  virtual Task<> post_recv(RecvWr wr) = 0;

  virtual int qp_num() const = 0;
  virtual bool connected() const = 0;

  /// True once the transport has moved this QP to the error state (e.g.
  /// IB RC retry exhaustion). Further posts are rejected.
  virtual bool in_error() const { return false; }
};

/// A verbs-capable device (RNIC or HCA).
class Device {
 public:
  virtual ~Device() = default;

  /// Register [addr, addr+len) for device access. Charges the host CPU
  /// with the (expensive) pinning cost.
  virtual Task<MrKey> reg_mr(std::uint64_t addr, std::uint64_t len) = 0;
  virtual Task<> dereg_mr(MrKey key) = 0;

  virtual std::unique_ptr<QueuePair> create_qp(CompletionQueue& send_cq,
                                               CompletionQueue& recv_cq) = 0;

  /// Out-of-band connection establishment between a local QP and a QP of
  /// a peer device of the same technology.
  virtual void establish(QueuePair& local, QueuePair& remote) = 0;

  /// One-shot event triggered when an inbound RDMA Write covering
  /// [addr, addr+len) has been fully placed. This is how benchmarks
  /// emulate the paper's "poll the target buffer" completion check.
  virtual std::shared_ptr<Event> watch_placement(std::uint64_t addr, std::uint64_t len) = 0;

  virtual hw::MemoryRegistry& registry() = 0;
};

}  // namespace fabsim::verbs

#include "verbs/verbs.hpp"

namespace fabsim::verbs {

Task<Completion> next_completion(CompletionQueue& cq, hw::HostCpu& cpu, Time poll_cost) {
  for (;;) {
    if (auto completion = cq.poll()) {
      co_await cpu.compute(poll_cost);
      co_return *completion;
    }
    co_await cq.notifier().wait();
  }
}

}  // namespace fabsim::verbs

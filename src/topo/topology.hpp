// FabricTopo: multi-stage switch topologies over the generalized
// hw::Switch.
//
// A Topology owns the switches of one fabric, the endpoint placement
// (which edge switch each NIC plugs into), and the build-time LFT
// computation that makes routing deterministic and digest-stable:
//
//  * single()     — the seed's one-crossbar fabric (direct-mode Switch);
//  * clos()       — parameterized 2-level (leaf/spine) or 3-level
//                   (pods + core) folded Clos from (radix, levels,
//                   oversubscription), à la ib_flit_sim's LFT fabrics;
//  * Builder      — explicit adjacency for irregular fabrics.
//
// LFTs are computed at build time with per-destination up*/down*
// (down-preferred) routing over the switch graph: a switch that can
// still descend toward the destination routes down the shortest
// descending path, and only switches with no descending path climb.
// Among equal-cost candidate ports the destination id picks one
// (dst % candidates), which spreads flows across the fabric the way
// destination-mod-k LFT assignment does on real IB subnets while
// staying fully reproducible. On a healthy Clos this is exactly
// shortest-path routing; its value shows after failures (below). All
// Switch construction in the tree lives here (conventions_lint bans it
// elsewhere outside tests).
//
// Failure awareness (FabricFail): the Topology retains the adjacency it
// was built from, so links and switches can fail and recover at runtime
// (fail_link / fail_switch, or the schedule_* helpers for deterministic
// down/up windows). Each transition recomputes every LFT with the same
// up*/down* rule over the *surviving* graph — same dst % candidates
// tie-break, so the post-failure routing is as reproducible as the
// original — bumps lft_epoch(), and drains the affected queues per
// flow-control mode (credit: requeue onto the new routes, returning
// every commitment; lossy: drop and count). Down-preference is what
// keeps the repaired routes deadlock-free on the lossless fabrics: a
// naive shortest-path repair can route down-then-up ("valley" paths),
// and a valley can close a cyclic credit dependency that wedges every
// output queue on the cycle. Destinations severed from the fabric (or
// cut off from every up*/down* path) get -1 LFT entries; the data path
// counts such frames unroutable and the per-stack timeout machinery
// (IB kRetryExceeded, iWARP/MX equivalents) surfaces the error instead
// of hanging.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "check/invariant.hpp"
#include "hw/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/scope.hpp"
#include "topo/spec.hpp"

namespace fabsim::topo {

class Topology {
 public:
  /// One full-duplex inter-switch link: switch `a` port `port_a` wired
  /// to switch `b` port `port_b`. Link ids are assigned in
  /// Builder::link() order and are the addresses fail_link() takes.
  struct LinkRec {
    int a;
    int port_a;
    int b;
    int port_b;
    bool up = true;
  };

  /// Explicit-adjacency builder for irregular fabrics. Switch ids are
  /// assigned in add_switch() order; endpoints must be placed in
  /// increasing node-id order (the order Cluster constructs NICs in).
  class Builder {
   public:
    Builder(Engine& engine, int num_endpoints);
    /// Add a switch; returns its index. config.id is overwritten with it.
    int add_switch(hw::SwitchConfig config);
    /// Full-duplex link between switches `a` and `b`.
    void link(int a, int b);
    /// Place global endpoint `node` on switch `sw`.
    void place(int node, int sw);
    /// Compute every switch's LFT and finish the fabric.
    Topology build();

   private:
    Engine* engine_;
    int num_endpoints_;
    int next_node_ = 0;
    std::vector<std::unique_ptr<hw::Switch>> switches_;
    /// adjacency[s] = (local port, peer switch index), in port order.
    std::vector<std::vector<std::pair<int, int>>> adjacency_;
    std::vector<LinkRec> links_;
    std::vector<int> edge_of_;
  };

  /// The seed fabric: one direct-mode crossbar, port == node address.
  static Topology single(Engine& engine, hw::SwitchConfig config, int endpoints);

  /// Folded Clos from (radix, levels, oversubscription); see spec.hpp.
  static Topology clos(Engine& engine, hw::SwitchConfig config, const FabricSpec& spec,
                       int endpoints);

  /// Dispatch on spec.levels (1 -> single, 2/3 -> clos).
  static Topology build(Engine& engine, const FabricSpec& spec, hw::SwitchConfig config,
                        int endpoints);

  /// Edge switch endpoint `node` plugs into (pass to the NIC ctor; its
  /// attach() hands back the reserved global address).
  hw::Switch& edge_for(int node) {
    return *switches_.at(static_cast<std::size_t>(edge_of_.at(static_cast<std::size_t>(node))));
  }
  int edge_index_of(int node) const {
    return edge_of_.at(static_cast<std::size_t>(node));
  }

  hw::Switch& sw(int i) { return *switches_.at(static_cast<std::size_t>(i)); }
  const hw::Switch& sw(int i) const { return *switches_.at(static_cast<std::size_t>(i)); }
  std::size_t num_switches() const { return switches_.size(); }
  int num_endpoints() const { return static_cast<int>(edge_of_.size()); }
  /// True for the seed's single direct-mode crossbar.
  bool single_crossbar() const { return switches_.size() == 1 && !switches_[0]->routed(); }

  // --- Failure injection (FabricFail) ---------------------------------

  /// Inter-switch links in Builder::link() order (empty for a single
  /// crossbar). The index is the link id fail_link() addresses.
  const std::vector<LinkRec>& links() const { return links_; }

  /// Routing-epoch counter: bumped by every recompute_lfts(), so tests
  /// and benches can assert a failure actually rerouted.
  int lft_epoch() const { return lft_epoch_; }

  /// Take link `link` down now: both ports stop admitting/transmitting,
  /// every LFT is recomputed around it, and the stranded queues are
  /// drained per flow-control mode (credit requeues onto the new
  /// routes, lossy drops and counts). No-op if already down.
  void fail_link(int link);
  /// Bring link `link` back: recompute LFTs to reclaim the shorter
  /// paths, then restart both transmit pumps.
  void restore_link(int link);

  /// Whole-switch failure: the switch blackholes (counting) everything,
  /// all its links go down, LFTs route around it, its queues drop, and
  /// neighbour queues requeue per flow-control mode.
  void fail_switch(int sw);
  void restore_switch(int sw);
  bool switch_up(int sw) const { return !switches_.at(static_cast<std::size_t>(sw))->switch_down(); }

  /// Deterministic down/up window: fail at `start`, restore at `end`
  /// (absolute simulated times, posted on the shared scope).
  void schedule_link_down(int link, Time start, Time end);
  void schedule_switch_down(int sw, Time start, Time end);

  /// Recompute every LFT over the surviving graph (same BFS and
  /// dst % candidates tie-break as build time) and bump lft_epoch().
  /// fail_/restore_ call this; exposed for tests.
  void recompute_lfts();

  /// FNV-1a digest over every switch's LFT — two builds of the same
  /// config must agree byte for byte (tests/topo_test.cpp locks this).
  std::uint64_t lft_digest() const;

  /// Switch hops on the src -> dst path the LFTs encode (1 for a single
  /// crossbar); throws if the walk loops — a routing bug.
  int path_hops(int src, int dst) const;

  /// FabricScope export. Single-crossbar fabrics keep the seed's flat
  /// switch.portN.* names; routed fabrics qualify per switch
  /// (switch.sK.portN.*) and add queue/pause/credit-stall counters.
  void collect_metrics(MetricRegistry& registry, Time elapsed) const;

  /// FabricCheck quiescent-state audits: per-hop frame conservation on
  /// every switch, plus queue-drained / credit-conservation in routed
  /// mode.
  void audit_final(check::InvariantMonitor& monitor, Time now) const;

  // Fabric-wide totals (sums over switches).
  std::uint64_t fault_drops_total() const;
  std::uint64_t fault_corruptions_total() const;
  std::uint64_t fault_delays_total() const;
  std::uint64_t tail_drops_total() const;
  std::uint64_t credit_stalls_total() const;
  std::uint64_t down_drops_total() const;
  std::uint64_t unroutable_drops_total() const;

 private:
  Topology() = default;

  int index_of(const hw::Switch* sw) const;
  /// Tier levels (0 = edge), from a multi-source BFS over the full
  /// adjacency; computed once, stable across failures.
  void compute_levels();
  /// The routing computation itself (shared by build() and
  /// recompute_lfts()); preserves host-facing LFT entries, rewrites
  /// every inter-switch entry with up*/down* (down-preferred) routes.
  void compute_lfts();

  // Scope/ownership annotations (scripts/scope_check.py, src/sim/scope.hpp).
  FABSIM_ENGINE_LOCAL;  // engine plumbing
  Engine* engine_ = nullptr;
  FABSIM_SHARED;  // fabric graph + failover state: reroutes touch every
                  // switch's LFT, so only scope -1 events may drive them
  std::vector<std::unique_ptr<hw::Switch>> switches_;
  /// adjacency[s] = (local port, peer switch index), in port order.
  std::vector<std::vector<std::pair<int, int>>> adjacency_;
  std::vector<LinkRec> links_;
  std::vector<int> edge_of_;  // node -> switch index
  std::vector<int> level_;    // switch tier (0 = edge), see compute_levels()
  int lft_epoch_ = 0;
};

}  // namespace fabsim::topo

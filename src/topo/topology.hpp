// FabricTopo: multi-stage switch topologies over the generalized
// hw::Switch.
//
// A Topology owns the switches of one fabric, the endpoint placement
// (which edge switch each NIC plugs into), and the build-time LFT
// computation that makes routing deterministic and digest-stable:
//
//  * single()     — the seed's one-crossbar fabric (direct-mode Switch);
//  * clos()       — parameterized 2-level (leaf/spine) or 3-level
//                   (pods + core) folded Clos from (radix, levels,
//                   oversubscription), à la ib_flit_sim's LFT fabrics;
//  * Builder      — explicit adjacency for irregular fabrics.
//
// LFTs are computed once at build time with a per-destination BFS over
// the switch graph; among equal-cost candidate ports the destination id
// picks one (dst % candidates), which spreads flows across the fabric
// the way destination-mod-k LFT assignment does on real IB subnets while
// staying fully reproducible. All Switch construction in the tree lives
// here (conventions_lint bans it elsewhere outside tests).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "check/invariant.hpp"
#include "hw/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "topo/spec.hpp"

namespace fabsim::topo {

class Topology {
 public:
  /// Explicit-adjacency builder for irregular fabrics. Switch ids are
  /// assigned in add_switch() order; endpoints must be placed in
  /// increasing node-id order (the order Cluster constructs NICs in).
  class Builder {
   public:
    Builder(Engine& engine, int num_endpoints);
    /// Add a switch; returns its index. config.id is overwritten with it.
    int add_switch(hw::SwitchConfig config);
    /// Full-duplex link between switches `a` and `b`.
    void link(int a, int b);
    /// Place global endpoint `node` on switch `sw`.
    void place(int node, int sw);
    /// Compute every switch's LFT and finish the fabric.
    Topology build();

   private:
    Engine* engine_;
    int num_endpoints_;
    int next_node_ = 0;
    std::vector<std::unique_ptr<hw::Switch>> switches_;
    /// adjacency[s] = (local port, peer switch index), in port order.
    std::vector<std::vector<std::pair<int, int>>> adjacency_;
    std::vector<int> edge_of_;
  };

  /// The seed fabric: one direct-mode crossbar, port == node address.
  static Topology single(Engine& engine, hw::SwitchConfig config, int endpoints);

  /// Folded Clos from (radix, levels, oversubscription); see spec.hpp.
  static Topology clos(Engine& engine, hw::SwitchConfig config, const FabricSpec& spec,
                       int endpoints);

  /// Dispatch on spec.levels (1 -> single, 2/3 -> clos).
  static Topology build(Engine& engine, const FabricSpec& spec, hw::SwitchConfig config,
                        int endpoints);

  /// Edge switch endpoint `node` plugs into (pass to the NIC ctor; its
  /// attach() hands back the reserved global address).
  hw::Switch& edge_for(int node) {
    return *switches_.at(static_cast<std::size_t>(edge_of_.at(static_cast<std::size_t>(node))));
  }
  int edge_index_of(int node) const {
    return edge_of_.at(static_cast<std::size_t>(node));
  }

  hw::Switch& sw(int i) { return *switches_.at(static_cast<std::size_t>(i)); }
  const hw::Switch& sw(int i) const { return *switches_.at(static_cast<std::size_t>(i)); }
  std::size_t num_switches() const { return switches_.size(); }
  int num_endpoints() const { return static_cast<int>(edge_of_.size()); }
  /// True for the seed's single direct-mode crossbar.
  bool single_crossbar() const { return switches_.size() == 1 && !switches_[0]->routed(); }

  /// FNV-1a digest over every switch's LFT — two builds of the same
  /// config must agree byte for byte (tests/topo_test.cpp locks this).
  std::uint64_t lft_digest() const;

  /// Switch hops on the src -> dst path the LFTs encode (1 for a single
  /// crossbar); throws if the walk loops — a routing bug.
  int path_hops(int src, int dst) const;

  /// FabricScope export. Single-crossbar fabrics keep the seed's flat
  /// switch.portN.* names; routed fabrics qualify per switch
  /// (switch.sK.portN.*) and add queue/pause/credit-stall counters.
  void collect_metrics(MetricRegistry& registry, Time elapsed) const;

  /// FabricCheck quiescent-state audits: per-hop frame conservation on
  /// every switch, plus queue-drained / credit-conservation in routed
  /// mode.
  void audit_final(check::InvariantMonitor& monitor, Time now) const;

  // Fabric-wide totals (sums over switches).
  std::uint64_t fault_drops_total() const;
  std::uint64_t fault_corruptions_total() const;
  std::uint64_t fault_delays_total() const;
  std::uint64_t tail_drops_total() const;
  std::uint64_t credit_stalls_total() const;

 private:
  Topology() = default;

  int index_of(const hw::Switch* sw) const;

  std::vector<std::unique_ptr<hw::Switch>> switches_;
  std::vector<int> edge_of_;  // node -> switch index
};

}  // namespace fabsim::topo

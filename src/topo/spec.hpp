// Fabric-shape parameters carried by core::NetworkProfile.
//
// The spec is deliberately a plain aggregate (no behaviour) so the
// calibration layer can embed it without depending on the Topology
// machinery: levels == 1 reproduces the seed's single crossbar
// (direct-mode hw::Switch); levels 2 and 3 build folded Clos / fat-tree
// fabrics through topo::Topology with the chosen link-level flow control.
#pragma once

#include "hw/fabric.hpp"

namespace fabsim::topo {

struct FabricSpec {
  /// 1 = single crossbar (seed model); 2 = leaf/spine Clos; 3 = folded
  /// three-level Clos (pods of edge+aggregation switches under a core).
  int levels = 1;
  /// Ports per switch for the Clos builders.
  int radix = 8;
  /// Edge downlink:uplink capacity ratio (1.0 = non-blocking, 2.0 = 2:1
  /// oversubscribed, ...). Shifts the port split at every tier.
  double oversubscription = 1.0;
  /// Link-level flow control on every switch of the fabric: kLossy
  /// tail-drops under congestion (Ethernet/iWARP), kCredit backpressures
  /// hop by hop without loss (IB-style).
  hw::FlowControl flow = hw::FlowControl::kLossy;
};

}  // namespace fabsim::topo

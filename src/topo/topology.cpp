#include "topo/topology.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace fabsim::topo {

namespace {

/// Port split at a switch tier: `down` host/child-facing ports vs `up`
/// uplinks, with down:up ≈ the requested oversubscription ratio.
struct Split {
  int down;
  int up;
};

Split tier_split(int radix, double oversubscription) {
  if (radix < 2) throw std::invalid_argument("FabricSpec: radix must be >= 2");
  if (oversubscription <= 0.0) {
    throw std::invalid_argument("FabricSpec: oversubscription must be > 0");
  }
  int down = static_cast<int>(
      std::lround(radix * oversubscription / (1.0 + oversubscription)));
  down = std::clamp(down, 1, radix - 1);
  return Split{down, radix - down};
}

int ceil_div(int a, int b) { return (a + b - 1) / b; }

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

Topology::Builder::Builder(Engine& engine, int num_endpoints)
    : engine_(&engine), num_endpoints_(num_endpoints) {
  if (num_endpoints < 1) throw std::invalid_argument("Topology: need at least one endpoint");
  edge_of_.assign(static_cast<std::size_t>(num_endpoints), -1);
}

int Topology::Builder::add_switch(hw::SwitchConfig config) {
  const int index = static_cast<int>(switches_.size());
  config.id = index;
  switches_.push_back(std::make_unique<hw::Switch>(*engine_, config));
  switches_.back()->enable_routing(num_endpoints_);
  adjacency_.emplace_back();
  return index;
}

void Topology::Builder::link(int a, int b) {
  hw::Switch& sa = *switches_.at(static_cast<std::size_t>(a));
  hw::Switch& sb = *switches_.at(static_cast<std::size_t>(b));
  const int port_a = sa.connect_to(sb);
  const int port_b = sb.connect_to(sa);
  adjacency_.at(static_cast<std::size_t>(a)).emplace_back(port_a, b);
  adjacency_.at(static_cast<std::size_t>(b)).emplace_back(port_b, a);
  links_.push_back(LinkRec{a, port_a, b, port_b, true});
}

void Topology::Builder::place(int node, int sw) {
  if (node != next_node_) {
    throw std::logic_error("Topology::Builder::place: endpoints must be placed in "
                           "increasing node order (got " + std::to_string(node) +
                           ", expected " + std::to_string(next_node_) + ")");
  }
  edge_of_.at(static_cast<std::size_t>(node)) = sw;
  switches_.at(static_cast<std::size_t>(sw))->expect_endpoint(node);
  ++next_node_;
}

Topology Topology::Builder::build() {
  if (next_node_ != num_endpoints_) {
    throw std::logic_error("Topology::Builder::build: only " + std::to_string(next_node_) +
                           " of " + std::to_string(num_endpoints_) + " endpoints placed");
  }
  Topology topo;
  topo.engine_ = engine_;
  topo.switches_ = std::move(switches_);
  topo.adjacency_ = std::move(adjacency_);
  topo.links_ = std::move(links_);
  topo.edge_of_ = std::move(edge_of_);
  topo.compute_lfts();
  return topo;
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

Topology Topology::single(Engine& engine, hw::SwitchConfig config, int endpoints) {
  config.id = 0;
  Topology topo;
  topo.engine_ = &engine;
  topo.switches_.push_back(std::make_unique<hw::Switch>(engine, config));
  topo.adjacency_.emplace_back();
  topo.edge_of_.assign(static_cast<std::size_t>(endpoints), 0);
  return topo;
}

Topology Topology::clos(Engine& engine, hw::SwitchConfig config, const FabricSpec& spec,
                        int endpoints) {
  config.flow = spec.flow;
  const Split split = tier_split(spec.radix, spec.oversubscription);
  const int d = split.down;  // hosts per edge switch
  const int u = split.up;    // uplinks per edge switch

  if (spec.levels == 2) {
    // Leaf/spine: every leaf has one uplink to each of the u spines.
    const int leaves = ceil_div(endpoints, d);
    if (leaves > spec.radix) {
      throw std::invalid_argument(
          "clos2: " + std::to_string(endpoints) + " endpoints need " + std::to_string(leaves) +
          " leaves but a radix-" + std::to_string(spec.radix) +
          " spine has too few ports — raise radix or use levels=3");
    }
    Builder builder(engine, endpoints);
    for (int l = 0; l < leaves; ++l) builder.add_switch(config);
    for (int s = 0; s < u; ++s) builder.add_switch(config);
    for (int l = 0; l < leaves; ++l) {
      for (int s = 0; s < u; ++s) builder.link(l, leaves + s);
    }
    for (int n = 0; n < endpoints; ++n) builder.place(n, n / d);
    return builder.build();
  }

  if (spec.levels == 3) {
    // Folded three-level Clos: pods of d edge + u aggregation switches
    // (full bipartite inside the pod), u*u cores above; aggregation
    // switch a of every pod uplinks to cores [a*u, (a+1)*u), so each
    // core has exactly one port per pod.
    const int edges_per_pod = d;
    const int hosts_per_pod = d * edges_per_pod;
    const int pods = ceil_div(endpoints, hosts_per_pod);
    if (pods > spec.radix) {
      throw std::invalid_argument(
          "clos3: " + std::to_string(endpoints) + " endpoints need " + std::to_string(pods) +
          " pods but a radix-" + std::to_string(spec.radix) +
          " core has one port per pod — raise radix");
    }
    Builder builder(engine, endpoints);
    const int edge_base = 0;
    const int agg_base = pods * edges_per_pod;
    const int core_base = agg_base + pods * u;
    for (int i = 0; i < pods * edges_per_pod; ++i) builder.add_switch(config);
    for (int i = 0; i < pods * u; ++i) builder.add_switch(config);
    for (int i = 0; i < u * u; ++i) builder.add_switch(config);
    for (int p = 0; p < pods; ++p) {
      for (int e = 0; e < edges_per_pod; ++e) {
        for (int a = 0; a < u; ++a) {
          builder.link(edge_base + p * edges_per_pod + e, agg_base + p * u + a);
        }
      }
      for (int a = 0; a < u; ++a) {
        for (int c = 0; c < u; ++c) {
          builder.link(agg_base + p * u + a, core_base + a * u + c);
        }
      }
    }
    for (int n = 0; n < endpoints; ++n) {
      const int pod = n / hosts_per_pod;
      const int edge = (n % hosts_per_pod) / d;
      builder.place(n, edge_base + pod * edges_per_pod + edge);
    }
    return builder.build();
  }

  throw std::invalid_argument("FabricSpec: clos levels must be 2 or 3 (got " +
                              std::to_string(spec.levels) + ")");
}

Topology Topology::build(Engine& engine, const FabricSpec& spec, hw::SwitchConfig config,
                         int endpoints) {
  if (spec.levels <= 1) return single(engine, config, endpoints);
  return clos(engine, config, spec, endpoints);
}

// ---------------------------------------------------------------------------
// LFT computation (build time and post-failure recompute)
// ---------------------------------------------------------------------------

// Reroute path: runs at fabric build and on failure recovery, never
// per steady-state event — exempt from the hot-path purity rules.
FABSIM_COLD void Topology::compute_levels() {
  // Tier position of every switch: multi-source BFS from the edge
  // switches (level 0) over the FULL adjacency — a switch's physical
  // tier does not move when links fail, so levels are computed once and
  // stay stable across every recompute (and across failures, which
  // keeps the up/down classification of each link deterministic).
  const int num_switches = static_cast<int>(switches_.size());
  level_.assign(static_cast<std::size_t>(num_switches), -1);
  std::vector<int> frontier;
  for (int s : edge_of_) {
    if (level_.at(static_cast<std::size_t>(s)) != 0) {
      level_[static_cast<std::size_t>(s)] = 0;
      frontier.push_back(s);
    }
  }
  std::vector<int> next;
  int depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (int s : frontier) {
      for (const auto& [port, peer] : adjacency_.at(static_cast<std::size_t>(s))) {
        (void)port;
        int& l = level_.at(static_cast<std::size_t>(peer));
        if (l < 0) {
          l = depth;
          next.push_back(peer);
        }
      }
    }
    frontier.swap(next);
  }
}

// Reroute path: runs at fabric build and on failure recovery, never
// per steady-state event — exempt from the hot-path purity rules.
FABSIM_COLD void Topology::compute_lfts() {
  if (single_crossbar()) return;
  // Per-destination LFTs with up*/down* (down-preferred) routing: a
  // switch that can still DESCEND to the destination's edge switch
  // always routes down the shortest descending path; only switches with
  // no surviving descending path climb, toward the up-neighbour with
  // the cheapest onward route. Every resulting path climbs some tiers
  // and then only descends — never down-then-up — which is what keeps
  // the credit/PAUSE fabrics deadlock-free: a "valley" route created by
  // naive shortest-path repair can close a cyclic buffer dependency
  // between output queues, and a full credit cycle wedges every queue
  // on it with the event queue drained (the chaos soak's lossless
  // fabrics found exactly that). On a healthy Clos the down-preferred
  // candidates coincide with the shortest-path candidates, so build-time
  // LFTs (and every digest derived from them) are unchanged.
  //
  // Among equal-cost candidate ports the destination id picks one
  // (dst % candidates) — deterministic, and it spreads destinations
  // across the uplinks like dst-mod-k LFT assignment on real subnets.
  // Host-facing entries (edge switch of the destination itself) are
  // preserved: Switch::attach() installs them when the NICs plug in and
  // failures never move a NIC. Destinations whose edge switch is down,
  // or that failures cut off from every up*/down* path, keep -1
  // entries — the data path counts those frames unroutable and the
  // per-stack retry machinery surfaces the loss. (Same-tier links are
  // never routed over: the Clos builders do not create them, and they
  // have no up/down class.)
  constexpr int kUnreached = std::numeric_limits<int>::max();
  const int num_switches = static_cast<int>(switches_.size());
  const int num_nodes = static_cast<int>(edge_of_.size());
  if (level_.size() != switches_.size()) compute_levels();
  // Sweep orders: ascending tier for the descend pass (a switch's
  // down-neighbours are finished first), descending tier for the climb
  // pass. Index order within a tier keeps both sweeps deterministic.
  std::vector<int> by_level_up(static_cast<std::size_t>(num_switches));
  for (int s = 0; s < num_switches; ++s) by_level_up[static_cast<std::size_t>(s)] = s;
  std::sort(by_level_up.begin(), by_level_up.end(), [this](int a, int b) {
    const int la = level_.at(static_cast<std::size_t>(a));
    const int lb = level_.at(static_cast<std::size_t>(b));
    return la != lb ? la < lb : a < b;
  });
  std::vector<int> cost_down(static_cast<std::size_t>(num_switches));
  std::vector<int> total(static_cast<std::size_t>(num_switches));
  // Liveness is the Topology's administrative view (LinkRec::up, switch
  // down flags), not the ports' own flags: fail_/restore_ update the
  // records before recomputing, so a just-restored link is routable in
  // the same recompute even though its transmit pump restarts after.
  std::vector<std::vector<char>> port_ok(static_cast<std::size_t>(num_switches));
  for (int s = 0; s < num_switches; ++s) {
    port_ok[static_cast<std::size_t>(s)].assign(switches_[static_cast<std::size_t>(s)]->num_ports(),
                                                1);
  }
  for (const LinkRec& l : links_) {
    if (l.up) continue;
    port_ok[static_cast<std::size_t>(l.a)][static_cast<std::size_t>(l.port_a)] = 0;
    port_ok[static_cast<std::size_t>(l.b)][static_cast<std::size_t>(l.port_b)] = 0;
  }
  auto usable = [this, &port_ok](int s, int port, int peer) {
    return port_ok[static_cast<std::size_t>(s)][static_cast<std::size_t>(port)] != 0 &&
           !switches_[static_cast<std::size_t>(peer)]->switch_down();
  };
  for (int node = 0; node < num_nodes; ++node) {
    const int root = edge_of_.at(static_cast<std::size_t>(node));
    for (int s = 0; s < num_switches; ++s) {
      if (s != root) switches_[static_cast<std::size_t>(s)]->set_route(node, -1);
    }
    if (switches_[static_cast<std::size_t>(root)]->switch_down()) continue;
    // Descend pass: cost_down[s] = shortest path to root that only ever
    // steps to a lower tier. Ascending-tier sweep order makes each
    // switch's down-neighbours final before it is visited.
    std::fill(cost_down.begin(), cost_down.end(), kUnreached);
    cost_down.at(static_cast<std::size_t>(root)) = 0;
    for (int s : by_level_up) {
      if (s == root) continue;
      const int lvl = level_.at(static_cast<std::size_t>(s));
      int& best = cost_down.at(static_cast<std::size_t>(s));
      for (const auto& [port, peer] : adjacency_.at(static_cast<std::size_t>(s))) {
        if (level_.at(static_cast<std::size_t>(peer)) != lvl - 1) continue;
        if (!usable(s, port, peer)) continue;
        const int via = cost_down.at(static_cast<std::size_t>(peer));
        if (via != kUnreached && via + 1 < best) best = via + 1;
      }
    }
    // Climb pass: a switch with no descending path routes up; its cost
    // is 1 + the cheapest up-neighbour. Descending-tier sweep order
    // makes each switch's up-neighbours final before it is visited.
    total = cost_down;
    for (auto it = by_level_up.rbegin(); it != by_level_up.rend(); ++it) {
      const int s = *it;
      if (total.at(static_cast<std::size_t>(s)) != kUnreached) continue;
      const int lvl = level_.at(static_cast<std::size_t>(s));
      int& best = total.at(static_cast<std::size_t>(s));
      for (const auto& [port, peer] : adjacency_.at(static_cast<std::size_t>(s))) {
        if (level_.at(static_cast<std::size_t>(peer)) != lvl + 1) continue;
        if (!usable(s, port, peer)) continue;
        const int via = total.at(static_cast<std::size_t>(peer));
        if (via != kUnreached && via + 1 < best) best = via + 1;
      }
    }
    for (int s = 0; s < num_switches; ++s) {
      if (s == root || total.at(static_cast<std::size_t>(s)) == kUnreached) continue;
      const int lvl = level_.at(static_cast<std::size_t>(s));
      const bool descend = cost_down.at(static_cast<std::size_t>(s)) != kUnreached;
      const int peer_level = descend ? lvl - 1 : lvl + 1;
      const int want = total.at(static_cast<std::size_t>(s)) - 1;
      auto is_candidate = [&](int port, int peer) {
        if (level_.at(static_cast<std::size_t>(peer)) != peer_level) return false;
        if (!usable(s, port, peer)) return false;
        const auto& costs = descend ? cost_down : total;
        return costs.at(static_cast<std::size_t>(peer)) == want;
      };
      int candidates = 0;
      for (const auto& [port, peer] : adjacency_.at(static_cast<std::size_t>(s))) {
        if (is_candidate(port, peer)) ++candidates;
      }
      int pick = node % candidates;
      for (const auto& [port, peer] : adjacency_.at(static_cast<std::size_t>(s))) {
        if (!is_candidate(port, peer)) continue;
        if (pick-- == 0) {
          switches_.at(static_cast<std::size_t>(s))->set_route(node, port);
          break;
        }
      }
    }
  }
}

void Topology::recompute_lfts() {
  compute_lfts();
  ++lft_epoch_;
}

// ---------------------------------------------------------------------------
// Failure injection (FabricFail)
// ---------------------------------------------------------------------------

void Topology::fail_link(int link) {
  // Scope trap: failover rewrites LFTs fabric-wide (FABSIM_SHARED).
  FABSIM_AUDIT_SHARED(*engine_, check::Layer::kHw, -1, "Topology::fail_link");
  LinkRec& l = links_.at(static_cast<std::size_t>(link));
  if (!l.up) return;
  l.up = false;
  hw::Switch& sa = *switches_.at(static_cast<std::size_t>(l.a));
  hw::Switch& sb = *switches_.at(static_cast<std::size_t>(l.b));
  sa.set_port_down(l.port_a);
  sb.set_port_down(l.port_b);
  // Reroute first, then drain: the requeue path re-admits stranded
  // frames through the *new* LFTs, so anything with a surviving path
  // recovers in place (credit mode) instead of dropping.
  recompute_lfts();
  sa.requeue_down_port(l.port_a);
  sb.requeue_down_port(l.port_b);
}

void Topology::restore_link(int link) {
  FABSIM_AUDIT_SHARED(*engine_, check::Layer::kHw, -1, "Topology::restore_link");
  LinkRec& l = links_.at(static_cast<std::size_t>(link));
  if (l.up) return;
  l.up = true;
  // Recompute before restarting the pumps so the first transmit after
  // recovery already follows the reclaimed shortest paths.
  recompute_lfts();
  switches_.at(static_cast<std::size_t>(l.a))->set_port_up(l.port_a);
  switches_.at(static_cast<std::size_t>(l.b))->set_port_up(l.port_b);
}

void Topology::fail_switch(int sw) {
  FABSIM_AUDIT_SHARED(*engine_, check::Layer::kHw, -1, "Topology::fail_switch");
  hw::Switch& dead = *switches_.at(static_cast<std::size_t>(sw));
  if (dead.switch_down()) return;
  dead.set_switch_down(true);
  // Every link touching the dead switch is effectively down: mark both
  // ends so neighbours stop transmitting into the blackhole (frames
  // already in flight are counted + credit-released on arrival).
  for (const LinkRec& l : links_) {
    if (!l.up || (l.a != sw && l.b != sw)) continue;
    switches_.at(static_cast<std::size_t>(l.a))->set_port_down(l.port_a);
    switches_.at(static_cast<std::size_t>(l.b))->set_port_down(l.port_b);
  }
  recompute_lfts();
  // The dead switch lost its buffers outright; neighbours requeue onto
  // the rerouted LFTs per flow-control mode.
  dead.drain_all_drop();
  for (const LinkRec& l : links_) {
    if (!l.up || (l.a != sw && l.b != sw)) continue;
    const int neighbour = l.a == sw ? l.b : l.a;
    const int nport = l.a == sw ? l.port_b : l.port_a;
    switches_.at(static_cast<std::size_t>(neighbour))->requeue_down_port(nport);
  }
}

void Topology::restore_switch(int sw) {
  FABSIM_AUDIT_SHARED(*engine_, check::Layer::kHw, -1, "Topology::restore_switch");
  hw::Switch& back = *switches_.at(static_cast<std::size_t>(sw));
  if (!back.switch_down()) return;
  back.set_switch_down(false);
  recompute_lfts();
  // Restart links whose far end is also alive and that were not failed
  // independently of this switch.
  for (const LinkRec& l : links_) {
    if (!l.up || (l.a != sw && l.b != sw)) continue;
    const int other = l.a == sw ? l.b : l.a;
    if (switches_.at(static_cast<std::size_t>(other))->switch_down()) continue;
    switches_.at(static_cast<std::size_t>(l.a))->set_port_up(l.port_a);
    switches_.at(static_cast<std::size_t>(l.b))->set_port_up(l.port_b);
  }
}

void Topology::schedule_link_down(int link, Time start, Time end) {
  engine_->post(start, /*scope=*/-1, [this, link] { fail_link(link); });
  engine_->post(end, /*scope=*/-1, [this, link] { restore_link(link); });
}

void Topology::schedule_switch_down(int sw, Time start, Time end) {
  engine_->post(start, /*scope=*/-1, [this, sw] { fail_switch(sw); });
  engine_->post(end, /*scope=*/-1, [this, sw] { restore_switch(sw); });
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

int Topology::index_of(const hw::Switch* sw) const {
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (switches_[i].get() == sw) return static_cast<int>(i);
  }
  throw std::logic_error("Topology::index_of: switch not part of this fabric");
}

std::uint64_t Topology::lft_digest() const {
  std::uint64_t digest = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto mix = [&digest](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      digest ^= (value >> (8 * i)) & 0xff;
      digest *= 0x100000001b3ULL;
    }
  };
  mix(switches_.size());
  for (const auto& sw : switches_) {
    for (int entry : sw->lft()) mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(entry)));
  }
  return digest;
}

int Topology::path_hops(int src, int dst) const {
  int s = edge_of_.at(static_cast<std::size_t>(src));
  int hops = 1;
  const int limit = static_cast<int>(switches_.size()) + 1;
  while (true) {
    const hw::Switch& here = *switches_.at(static_cast<std::size_t>(s));
    const int port = here.route(dst);
    const hw::Switch* peer = here.port_peer(port);
    if (peer == nullptr) return hops;  // NIC-facing: arrived
    if (++hops > limit) {
      throw std::logic_error("Topology::path_hops: routing loop from " + std::to_string(src) +
                             " to " + std::to_string(dst));
    }
    s = index_of(peer);
  }
}

// ---------------------------------------------------------------------------
// FabricScope / FabricCheck
// ---------------------------------------------------------------------------

void Topology::collect_metrics(MetricRegistry& registry, Time elapsed) const {
  for (const auto& sw_ptr : switches_) {
    const hw::Switch& sw = *sw_ptr;
    const bool routed = sw.routed();
    const std::string sw_prefix =
        routed ? "switch.s" + std::to_string(sw.config().id) + "." : "switch.";
    for (int p = 0; p < static_cast<int>(sw.num_ports()); ++p) {
      const std::string prefix = sw_prefix + "port" + std::to_string(p) + ".";
      registry.counter(prefix + "tail_drops").set(sw.output_drops(p));
      registry.counter(prefix + "fault_drops").set(sw.output_fault_drops(p));
      registry.gauge(prefix + "queue_bytes").set(sw.output_queue_hwm_bytes(p));
      registry.counter(prefix + "busy_us")
          .set(static_cast<std::uint64_t>(to_us(sw.output_busy_time(p))));
      if (elapsed > 0) {
        registry.gauge(prefix + "utilization")
            .set(static_cast<double>(sw.output_busy_time(p)) / static_cast<double>(elapsed));
      }
      if (routed) {
        registry.gauge(prefix + "queue_frames").set(static_cast<double>(sw.output_queue_hwm_frames(p)));
        registry.counter(prefix + "credit_stalls").set(sw.output_credit_stalls(p));
        registry.counter(prefix + "pause_us")
            .set(static_cast<std::uint64_t>(to_us(sw.output_pause_time(p))));
      }
    }
  }
  registry.counter("switch.fault_drops").set(fault_drops_total());
  registry.counter("switch.fault_corruptions").set(fault_corruptions_total());
  registry.counter("switch.fault_delays").set(fault_delays_total());
  if (!single_crossbar()) {
    registry.counter("switch.tail_drops").set(tail_drops_total());
    registry.counter("switch.credit_stalls").set(credit_stalls_total());
    registry.gauge("switch.count").set(static_cast<double>(switches_.size()));
    // FabricFail: losses attributable to failed elements, and the number
    // of reroute epochs the fabric went through.
    registry.counter("switch.down_drops").set(down_drops_total());
    registry.counter("switch.unroutable_drops").set(unroutable_drops_total());
    registry.counter("topo.lft_epochs").set(static_cast<std::uint64_t>(lft_epoch_));
  }
}

void Topology::audit_final(check::InvariantMonitor& monitor, Time now) const {
  for (const auto& sw : switches_) {
    sw->audit_conservation().report(&monitor, now, check::Layer::kHw, sw->config().id);
    if (sw->routed()) sw->audit_quiescence(monitor, now);
  }
}

std::uint64_t Topology::fault_drops_total() const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_) total += sw->fault_drops();
  return total;
}

std::uint64_t Topology::fault_corruptions_total() const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_) total += sw->fault_corruptions();
  return total;
}

std::uint64_t Topology::fault_delays_total() const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_) total += sw->fault_delays();
  return total;
}

std::uint64_t Topology::tail_drops_total() const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_) total += sw->tail_drops_total();
  return total;
}

std::uint64_t Topology::down_drops_total() const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_) total += sw->down_drops();
  return total;
}

std::uint64_t Topology::unroutable_drops_total() const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_) total += sw->unroutable_drops();
  return total;
}

std::uint64_t Topology::credit_stalls_total() const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_) {
    for (int p = 0; p < static_cast<int>(sw->num_ports()); ++p) {
      total += sw->output_credit_stalls(p);
    }
  }
  return total;
}

}  // namespace fabsim::topo

#include "topo/topology.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace fabsim::topo {

namespace {

/// Port split at a switch tier: `down` host/child-facing ports vs `up`
/// uplinks, with down:up ≈ the requested oversubscription ratio.
struct Split {
  int down;
  int up;
};

Split tier_split(int radix, double oversubscription) {
  if (radix < 2) throw std::invalid_argument("FabricSpec: radix must be >= 2");
  if (oversubscription <= 0.0) {
    throw std::invalid_argument("FabricSpec: oversubscription must be > 0");
  }
  int down = static_cast<int>(
      std::lround(radix * oversubscription / (1.0 + oversubscription)));
  down = std::clamp(down, 1, radix - 1);
  return Split{down, radix - down};
}

int ceil_div(int a, int b) { return (a + b - 1) / b; }

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

Topology::Builder::Builder(Engine& engine, int num_endpoints)
    : engine_(&engine), num_endpoints_(num_endpoints) {
  if (num_endpoints < 1) throw std::invalid_argument("Topology: need at least one endpoint");
  edge_of_.assign(static_cast<std::size_t>(num_endpoints), -1);
}

int Topology::Builder::add_switch(hw::SwitchConfig config) {
  const int index = static_cast<int>(switches_.size());
  config.id = index;
  switches_.push_back(std::make_unique<hw::Switch>(*engine_, config));
  switches_.back()->enable_routing(num_endpoints_);
  adjacency_.emplace_back();
  return index;
}

void Topology::Builder::link(int a, int b) {
  hw::Switch& sa = *switches_.at(static_cast<std::size_t>(a));
  hw::Switch& sb = *switches_.at(static_cast<std::size_t>(b));
  const int port_a = sa.connect_to(sb);
  const int port_b = sb.connect_to(sa);
  adjacency_.at(static_cast<std::size_t>(a)).emplace_back(port_a, b);
  adjacency_.at(static_cast<std::size_t>(b)).emplace_back(port_b, a);
}

void Topology::Builder::place(int node, int sw) {
  if (node != next_node_) {
    throw std::logic_error("Topology::Builder::place: endpoints must be placed in "
                           "increasing node order (got " + std::to_string(node) +
                           ", expected " + std::to_string(next_node_) + ")");
  }
  edge_of_.at(static_cast<std::size_t>(node)) = sw;
  switches_.at(static_cast<std::size_t>(sw))->expect_endpoint(node);
  ++next_node_;
}

Topology Topology::Builder::build() {
  if (next_node_ != num_endpoints_) {
    throw std::logic_error("Topology::Builder::build: only " + std::to_string(next_node_) +
                           " of " + std::to_string(num_endpoints_) + " endpoints placed");
  }
  // Per-destination LFTs: BFS from the destination's edge switch gives
  // shortest-path distances; every other switch forwards through an
  // equal-cost port picked by dst % |candidates| — deterministic, and it
  // spreads destinations across the uplinks like dst-mod-k LFT
  // assignment on real subnets. Host-facing entries are installed by
  // Switch::attach() when the NICs plug in.
  constexpr int kUnreached = std::numeric_limits<int>::max();
  const int num_switches = static_cast<int>(switches_.size());
  std::vector<int> dist(static_cast<std::size_t>(num_switches));
  std::vector<int> frontier;
  std::vector<int> next;
  for (int node = 0; node < num_endpoints_; ++node) {
    const int root = edge_of_.at(static_cast<std::size_t>(node));
    std::fill(dist.begin(), dist.end(), kUnreached);
    dist.at(static_cast<std::size_t>(root)) = 0;
    frontier.assign(1, root);
    int depth = 0;
    while (!frontier.empty()) {
      ++depth;
      next.clear();
      for (int s : frontier) {
        for (const auto& [port, peer] : adjacency_.at(static_cast<std::size_t>(s))) {
          (void)port;
          int& d = dist.at(static_cast<std::size_t>(peer));
          if (d == kUnreached) {
            d = depth;
            next.push_back(peer);
          }
        }
      }
      frontier.swap(next);
    }
    for (int s = 0; s < num_switches; ++s) {
      if (s == root || dist.at(static_cast<std::size_t>(s)) == kUnreached) continue;
      const int want = dist.at(static_cast<std::size_t>(s)) - 1;
      int candidates = 0;
      for (const auto& [port, peer] : adjacency_.at(static_cast<std::size_t>(s))) {
        (void)port;
        if (dist.at(static_cast<std::size_t>(peer)) == want) ++candidates;
      }
      int pick = node % candidates;
      for (const auto& [port, peer] : adjacency_.at(static_cast<std::size_t>(s))) {
        if (dist.at(static_cast<std::size_t>(peer)) != want) continue;
        if (pick-- == 0) {
          switches_.at(static_cast<std::size_t>(s))->set_route(node, port);
          break;
        }
      }
    }
  }
  Topology topo;
  topo.switches_ = std::move(switches_);
  topo.edge_of_ = std::move(edge_of_);
  return topo;
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

Topology Topology::single(Engine& engine, hw::SwitchConfig config, int endpoints) {
  config.id = 0;
  Topology topo;
  topo.switches_.push_back(std::make_unique<hw::Switch>(engine, config));
  topo.edge_of_.assign(static_cast<std::size_t>(endpoints), 0);
  return topo;
}

Topology Topology::clos(Engine& engine, hw::SwitchConfig config, const FabricSpec& spec,
                        int endpoints) {
  config.flow = spec.flow;
  const Split split = tier_split(spec.radix, spec.oversubscription);
  const int d = split.down;  // hosts per edge switch
  const int u = split.up;    // uplinks per edge switch

  if (spec.levels == 2) {
    // Leaf/spine: every leaf has one uplink to each of the u spines.
    const int leaves = ceil_div(endpoints, d);
    if (leaves > spec.radix) {
      throw std::invalid_argument(
          "clos2: " + std::to_string(endpoints) + " endpoints need " + std::to_string(leaves) +
          " leaves but a radix-" + std::to_string(spec.radix) +
          " spine has too few ports — raise radix or use levels=3");
    }
    Builder builder(engine, endpoints);
    for (int l = 0; l < leaves; ++l) builder.add_switch(config);
    for (int s = 0; s < u; ++s) builder.add_switch(config);
    for (int l = 0; l < leaves; ++l) {
      for (int s = 0; s < u; ++s) builder.link(l, leaves + s);
    }
    for (int n = 0; n < endpoints; ++n) builder.place(n, n / d);
    return builder.build();
  }

  if (spec.levels == 3) {
    // Folded three-level Clos: pods of d edge + u aggregation switches
    // (full bipartite inside the pod), u*u cores above; aggregation
    // switch a of every pod uplinks to cores [a*u, (a+1)*u), so each
    // core has exactly one port per pod.
    const int edges_per_pod = d;
    const int hosts_per_pod = d * edges_per_pod;
    const int pods = ceil_div(endpoints, hosts_per_pod);
    if (pods > spec.radix) {
      throw std::invalid_argument(
          "clos3: " + std::to_string(endpoints) + " endpoints need " + std::to_string(pods) +
          " pods but a radix-" + std::to_string(spec.radix) +
          " core has one port per pod — raise radix");
    }
    Builder builder(engine, endpoints);
    const int edge_base = 0;
    const int agg_base = pods * edges_per_pod;
    const int core_base = agg_base + pods * u;
    for (int i = 0; i < pods * edges_per_pod; ++i) builder.add_switch(config);
    for (int i = 0; i < pods * u; ++i) builder.add_switch(config);
    for (int i = 0; i < u * u; ++i) builder.add_switch(config);
    for (int p = 0; p < pods; ++p) {
      for (int e = 0; e < edges_per_pod; ++e) {
        for (int a = 0; a < u; ++a) {
          builder.link(edge_base + p * edges_per_pod + e, agg_base + p * u + a);
        }
      }
      for (int a = 0; a < u; ++a) {
        for (int c = 0; c < u; ++c) {
          builder.link(agg_base + p * u + a, core_base + a * u + c);
        }
      }
    }
    for (int n = 0; n < endpoints; ++n) {
      const int pod = n / hosts_per_pod;
      const int edge = (n % hosts_per_pod) / d;
      builder.place(n, edge_base + pod * edges_per_pod + edge);
    }
    return builder.build();
  }

  throw std::invalid_argument("FabricSpec: clos levels must be 2 or 3 (got " +
                              std::to_string(spec.levels) + ")");
}

Topology Topology::build(Engine& engine, const FabricSpec& spec, hw::SwitchConfig config,
                         int endpoints) {
  if (spec.levels <= 1) return single(engine, config, endpoints);
  return clos(engine, config, spec, endpoints);
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

int Topology::index_of(const hw::Switch* sw) const {
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (switches_[i].get() == sw) return static_cast<int>(i);
  }
  throw std::logic_error("Topology::index_of: switch not part of this fabric");
}

std::uint64_t Topology::lft_digest() const {
  std::uint64_t digest = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto mix = [&digest](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      digest ^= (value >> (8 * i)) & 0xff;
      digest *= 0x100000001b3ULL;
    }
  };
  mix(switches_.size());
  for (const auto& sw : switches_) {
    for (int entry : sw->lft()) mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(entry)));
  }
  return digest;
}

int Topology::path_hops(int src, int dst) const {
  int s = edge_of_.at(static_cast<std::size_t>(src));
  int hops = 1;
  const int limit = static_cast<int>(switches_.size()) + 1;
  while (true) {
    const hw::Switch& here = *switches_.at(static_cast<std::size_t>(s));
    const int port = here.route(dst);
    const hw::Switch* peer = here.port_peer(port);
    if (peer == nullptr) return hops;  // NIC-facing: arrived
    if (++hops > limit) {
      throw std::logic_error("Topology::path_hops: routing loop from " + std::to_string(src) +
                             " to " + std::to_string(dst));
    }
    s = index_of(peer);
  }
}

// ---------------------------------------------------------------------------
// FabricScope / FabricCheck
// ---------------------------------------------------------------------------

void Topology::collect_metrics(MetricRegistry& registry, Time elapsed) const {
  for (const auto& sw_ptr : switches_) {
    const hw::Switch& sw = *sw_ptr;
    const bool routed = sw.routed();
    const std::string sw_prefix =
        routed ? "switch.s" + std::to_string(sw.config().id) + "." : "switch.";
    for (int p = 0; p < static_cast<int>(sw.num_ports()); ++p) {
      const std::string prefix = sw_prefix + "port" + std::to_string(p) + ".";
      registry.counter(prefix + "tail_drops").set(sw.output_drops(p));
      registry.counter(prefix + "fault_drops").set(sw.output_fault_drops(p));
      registry.gauge(prefix + "queue_bytes").set(sw.output_queue_hwm_bytes(p));
      registry.counter(prefix + "busy_us")
          .set(static_cast<std::uint64_t>(to_us(sw.output_busy_time(p))));
      if (elapsed > 0) {
        registry.gauge(prefix + "utilization")
            .set(static_cast<double>(sw.output_busy_time(p)) / static_cast<double>(elapsed));
      }
      if (routed) {
        registry.gauge(prefix + "queue_frames").set(static_cast<double>(sw.output_queue_hwm_frames(p)));
        registry.counter(prefix + "credit_stalls").set(sw.output_credit_stalls(p));
        registry.counter(prefix + "pause_us")
            .set(static_cast<std::uint64_t>(to_us(sw.output_pause_time(p))));
      }
    }
  }
  registry.counter("switch.fault_drops").set(fault_drops_total());
  registry.counter("switch.fault_corruptions").set(fault_corruptions_total());
  registry.counter("switch.fault_delays").set(fault_delays_total());
  if (!single_crossbar()) {
    registry.counter("switch.tail_drops").set(tail_drops_total());
    registry.counter("switch.credit_stalls").set(credit_stalls_total());
    registry.gauge("switch.count").set(static_cast<double>(switches_.size()));
  }
}

void Topology::audit_final(check::InvariantMonitor& monitor, Time now) const {
  for (const auto& sw : switches_) {
    sw->audit_conservation().report(&monitor, now, check::Layer::kHw, sw->config().id);
    if (sw->routed()) sw->audit_quiescence(monitor, now);
  }
}

std::uint64_t Topology::fault_drops_total() const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_) total += sw->fault_drops();
  return total;
}

std::uint64_t Topology::fault_corruptions_total() const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_) total += sw->fault_corruptions();
  return total;
}

std::uint64_t Topology::fault_delays_total() const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_) total += sw->fault_delays();
  return total;
}

std::uint64_t Topology::tail_drops_total() const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_) total += sw->tail_drops_total();
  return total;
}

std::uint64_t Topology::credit_stalls_total() const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_) {
    for (int p = 0; p < static_cast<int>(sw->num_ports()); ++p) {
      total += sw->output_credit_stalls(p);
    }
  }
  return total;
}

}  // namespace fabsim::topo

// MiniMPI per-transport configuration.
//
// These parameters describe the MPI *library* running over a transport —
// protocol thresholds, queue-traversal costs, pin-down cache bounds —
// matching what the paper observes about MPICH-1.2.7 derivatives
// ( over NetEffect verbs, -0.9.5 over VAPI, MPICH-MX).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace fabsim::mpi {

struct MpiConfig {
  /// Messages strictly larger than this use the rendezvous protocol
  /// (ch_verbs only; MX switches internally inside the MX library).
  std::uint32_t eager_threshold = 8 * 1024;

  // --- Host costs of the MPI software layer ---
  Time send_call_cpu = ns(150);   ///< envelope build + bookkeeping
  Time recv_call_cpu = ns(150);
  Time wait_poll_cpu = ns(120);   ///< per successful CQ poll in wait loops
  Time handler_cpu = ns(100);     ///< fixed cost per progressed message

  /// Cost per queue item traversed without matching. Charged to the host
  /// CPU (MX instead pays its NIC-side costs inside the MX library).
  Time posted_item_cost = ns(90);
  Time unexpected_item_cost = ns(110);

  // --- Eager channel (ch_verbs) ---
  /// Maximum eager sends in flight before the sender stalls on its own
  /// send completions (0 = unlimited). MVAPICH-class RDMA-write eager
  /// channels throttle hard here — the source of IB's large LogP gap.
  int max_outstanding_eager = 0;
  std::size_t eager_buffers = 1024;  ///< pre-posted ring slots per peer
  std::size_t control_slots = 16;    ///< reserved staging slots for control
  std::uint32_t credit_batch = 64;   ///< return credits after this many frees

  /// Asynchronous progress (the paper's future-work "enhance the
  /// NetEffect MPI implementation"): a background progress engine drains
  /// completions even while the application computes, restoring
  /// rendezvous overlap at the cost of host CPU cycles. Off by default —
  /// the MPICH derivatives under study progress synchronously.
  bool async_progress = false;

  // --- Pin-down cache (ch_verbs rendezvous) ---
  bool pin_cache_enabled = true;
  std::size_t pin_cache_entries = 1024;
  std::uint64_t pin_cache_bytes = 1ull << 20;
};

}  // namespace fabsim::mpi

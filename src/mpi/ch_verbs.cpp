#include "mpi/ch_verbs.hpp"

#include <cstring>
#include <stdexcept>

#include "check/audits.hpp"

namespace fabsim::mpi {

namespace {
constexpr std::uint64_t kSlotAlign = 64;
}

ChVerbs::ChVerbs(int rank, int world_size, verbs::Device& device, hw::Node& node, Engine& engine,
                 MpiConfig config)
    : rank_(rank),
      world_size_(world_size),
      device_(&device),
      node_(&node),
      engine_(&engine),
      config_(config),
      cq_(engine),
      peers_(static_cast<std::size_t>(world_size)),
      pin_cache_(config.pin_cache_entries, config.pin_cache_bytes) {}

// ---------------------------------------------------------------------------
// Wiring
// ---------------------------------------------------------------------------

Task<> ChVerbs::connect_mesh(std::span<ChVerbs* const> ranks) {
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    for (std::size_t j = i + 1; j < ranks.size(); ++j) {
      ChVerbs& a = *ranks[i];
      ChVerbs& b = *ranks[j];
      a.peers_[j].qp = a.device_->create_qp(a.cq_, a.cq_);
      b.peers_[i].qp = b.device_->create_qp(b.cq_, b.cq_);
      a.device_->establish(*a.peers_[j].qp, *b.peers_[i].qp);
      co_await a.setup_peer(static_cast<int>(j));
      co_await b.setup_peer(static_cast<int>(i));
    }
  }
}

Task<> ChVerbs::setup_peer(int peer_rank) {
  Peer& peer = peers_[static_cast<std::size_t>(peer_rank)];
  const std::uint64_t slot = slot_size();
  const std::uint64_t data_slots = config_.eager_buffers;
  const std::uint64_t ctrl_slots = config_.control_slots;
  const std::uint64_t send_total = (data_slots + ctrl_slots) * slot;
  const std::uint64_t recv_total = (data_slots + 2 * ctrl_slots) * slot;

  peer.send_arena = &node_->mem().alloc(((send_total + kSlotAlign - 1) / kSlotAlign) * kSlotAlign);
  peer.recv_arena = &node_->mem().alloc(((recv_total + kSlotAlign - 1) / kSlotAlign) * kSlotAlign);
  // Startup registration: done once, outside any measurement; bypass the
  // per-call CPU charge (real MPIs register rings in MPI_Init).
  peer.send_key = device_->registry().register_region(peer.send_arena->addr(), send_total);
  peer.recv_key = device_->registry().register_region(peer.recv_arena->addr(), recv_total);

  for (std::uint32_t i = 0; i < data_slots; ++i) peer.free_data_slots.push_back(i);
  for (std::uint32_t i = 0; i < ctrl_slots; ++i) {
    peer.free_ctrl_slots.push_back(static_cast<std::uint32_t>(data_slots) + i);
  }
  peer.credits = static_cast<std::int64_t>(data_slots);

  const std::uint32_t recv_slots = static_cast<std::uint32_t>(data_slots + 2 * ctrl_slots);
  for (std::uint32_t i = 0; i < recv_slots; ++i) {
    co_await peer.qp->post_recv(verbs::RecvWr{
        encode_wr(WrType::kRecvSlot, peer_rank, i),
        {slot_addr(*peer.recv_arena, i), static_cast<std::uint32_t>(slot), peer.recv_key}});
  }
}

// ---------------------------------------------------------------------------
// Envelope / slot helpers
// ---------------------------------------------------------------------------

std::uint64_t ChVerbs::encode_wr(WrType type, int peer, std::uint64_t low) {
  return (static_cast<std::uint64_t>(type) << 56) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer)) << 32) |
         (low & 0xffffffffull);
}
ChVerbs::WrType ChVerbs::wr_type(std::uint64_t wr_id) {
  return static_cast<WrType>(wr_id >> 56);
}
int ChVerbs::wr_peer(std::uint64_t wr_id) {
  return static_cast<int>((wr_id >> 32) & 0xffffff);
}
std::uint64_t ChVerbs::wr_low(std::uint64_t wr_id) { return wr_id & 0xffffffffull; }

void ChVerbs::write_envelope(hw::Buffer& arena, std::uint32_t slot, const Envelope& env) {
  auto view = arena.bytes().subspan(static_cast<std::size_t>(slot) * slot_size(), kEnvBytes);
  static_assert(sizeof(Envelope) <= kEnvBytes);
  std::memcpy(view.data(), &env, sizeof(Envelope));
}

ChVerbs::Envelope ChVerbs::read_envelope(const hw::Buffer& arena, std::uint32_t slot) const {
  Envelope env;
  auto view = arena.bytes().subspan(static_cast<std::size_t>(slot) * slot_size(), kEnvBytes);
  std::memcpy(&env, view.data(), sizeof(Envelope));
  return env;
}

void ChVerbs::copy_payload_in(Peer& peer, std::uint32_t slot, std::uint64_t src_addr,
                              std::uint32_t len) {
  hw::Buffer* src = node_->mem().find(src_addr);
  if (src == nullptr || src_addr + len > src->addr() + src->size()) {
    throw std::out_of_range("mpi: send buffer outside any allocation");
  }
  if (!src->has_data() || len == 0) return;
  auto from = node_->mem().window(src_addr, len);
  auto to = peer.send_arena->bytes().subspan(
      static_cast<std::size_t>(slot) * slot_size() + kEnvBytes, len);
  std::memcpy(to.data(), from.data(), len);
}

void ChVerbs::copy_payload_out(const Peer& peer, std::uint32_t slot, std::uint64_t dst_addr,
                               std::uint32_t len) {
  hw::Buffer* dst = node_->mem().find(dst_addr);
  if (dst == nullptr || dst_addr + len > dst->addr() + dst->size()) {
    throw std::out_of_range("mpi: receive buffer outside any allocation");
  }
  if (!dst->has_data() || len == 0) return;
  auto from = peer.recv_arena->bytes().subspan(
      static_cast<std::size_t>(slot) * slot_size() + kEnvBytes, len);
  node_->mem().write(dst_addr, from);
}

// ---------------------------------------------------------------------------
// Send paths
// ---------------------------------------------------------------------------

Task<RequestPtr> ChVerbs::isend(int dst, int tag, std::uint64_t addr, std::uint32_t len,
                                bool synchronous) {
  if (dst < 0 || dst >= world_size_ || dst == rank_) {
    throw std::invalid_argument("mpi: bad destination rank");
  }
  co_await cpu().compute(config_.send_call_cpu);
  co_await drain();

  auto request = std::make_shared<Request>(*engine_);
  if (len <= config_.eager_threshold) {
    ++eager_send_count_;
    const std::uint64_t id = next_req_id_++;
    co_await eager_send(dst, synchronous ? Kind::kEagerSync : Kind::kEager, tag, addr, len, id);
    if (synchronous) {
      pending_acks_[id] = request;
    } else {
      request->complete(Status{rank_, tag, len});
    }
  } else {
    ++rndv_send_count_;
    const std::uint64_t id = next_req_id_++;
    const verbs::MrKey lkey = co_await pin(addr, len);
    rndv_sends_[id] = RndvSend{request, addr, len, lkey, dst, tag};
    node_->engine().trace(TraceCategory::kProto, rank_,
                          "MPI rendezvous RTS -> rank " + std::to_string(dst) + " tag=" +
                              std::to_string(tag) + " len=" + std::to_string(len));
    Envelope rts;
    rts.kind = Kind::kRts;
    rts.src_rank = rank_;
    rts.tag = tag;
    rts.len = len;
    rts.req_id = id;
    co_await send_control(dst, rts);
  }
  co_return request;
}

Task<std::uint32_t> ChVerbs::take_data_slot(int dst) {
  Peer& peer = peers_[static_cast<std::size_t>(dst)];
  // Credit + slot acquisition with inline progress (MPICH spins its
  // progress engine while blocking; so do we). Channels with a hard
  // outstanding-send limit additionally stall on their own completions.
  while (peer.credits <= 0 || peer.free_data_slots.empty() ||
         (config_.max_outstanding_eager > 0 &&
          outstanding_eager_ >= config_.max_outstanding_eager)) {
    co_await progress_blocking();
  }
  ++outstanding_eager_;
  --peer.credits;
  const std::uint32_t slot = peer.free_data_slots.front();
  peer.free_data_slots.pop_front();
  co_return slot;
}

Task<std::uint32_t> ChVerbs::take_ctrl_slot(int dst) {
  Peer& peer = peers_[static_cast<std::size_t>(dst)];
  while (peer.free_ctrl_slots.empty()) {
    co_await progress_blocking();
  }
  const std::uint32_t slot = peer.free_ctrl_slots.front();
  peer.free_ctrl_slots.pop_front();
  co_return slot;
}

Task<> ChVerbs::eager_send(int dst, Kind kind, int tag, std::uint64_t addr, std::uint32_t len,
                           std::uint64_t req_id) {
  Peer& peer = peers_[static_cast<std::size_t>(dst)];
  const std::uint32_t slot = co_await take_data_slot(dst);
  // One send-side copy: user buffer -> registered staging slot.
  co_await cpu().copy(addr, len);
  Envelope env;
  env.kind = kind;
  env.src_rank = rank_;
  env.tag = tag;
  env.len = len;
  env.req_id = req_id;
  write_envelope(*peer.send_arena, slot, env);
  copy_payload_in(peer, slot, addr, len);
  co_await peer.qp->post_send(verbs::SendWr{
      .wr_id = encode_wr(WrType::kSendData, dst, slot),
      .opcode = verbs::Opcode::kSend,
      .sge = {slot_addr(*peer.send_arena, slot), kEnvBytes + len, peer.send_key}});
}

Task<> ChVerbs::send_control(int dst, Envelope env) {
  Peer& peer = peers_[static_cast<std::size_t>(dst)];
  const std::uint32_t slot = co_await take_ctrl_slot(dst);
  write_envelope(*peer.send_arena, slot, env);
  co_await peer.qp->post_send(verbs::SendWr{
      .wr_id = encode_wr(WrType::kSendCtrl, dst, slot),
      .opcode = verbs::Opcode::kSend,
      .sge = {slot_addr(*peer.send_arena, slot), kEnvBytes, peer.send_key}});
}

Task<verbs::MrKey> ChVerbs::pin(std::uint64_t addr, std::uint32_t len) {
  if (!config_.pin_cache_enabled) {
    ++pin_misses_;
    const verbs::MrKey key = co_await device_->reg_mr(addr, len);
    // Without a cache the region is dropped after the transfer; charge
    // the deregistration here (the CPU work is the same).
    co_await cpu().compute(device_->registry().deregister_cost(len));
    co_return key;
  }
  auto result = pin_cache_.lookup(addr, len);
  if (result.hit) {
    ++pin_hits_;
    node_->engine().trace(TraceCategory::kHost, rank_, "pin-down cache hit");
    co_return static_cast<verbs::MrKey>(result.user);
  }
  ++pin_misses_;
  node_->engine().trace(TraceCategory::kHost, rank_,
                        "pin-down cache miss: registering " + std::to_string(len) + "B");
  const verbs::MrKey key = co_await device_->reg_mr(addr, len);
  pin_cache_.set_front_user(key);
  for (const auto& evicted : result.evicted) {
    co_await device_->dereg_mr(static_cast<verbs::MrKey>(evicted.user));
  }
  co_return key;
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

Task<RequestPtr> ChVerbs::irecv(int src, int tag, std::uint64_t addr, std::uint32_t capacity) {
  co_await cpu().compute(config_.recv_call_cpu);
  co_await drain();

  auto request = std::make_shared<Request>(*engine_);

  // Walk the unexpected-message queue (Fig 7's cost), FIFO.
  std::size_t scanned = 0;
  auto it = unexpected_.begin();
  for (; it != unexpected_.end(); ++it) {
    ++scanned;
    if ((src == kAnySource || it->env.src_rank == src) &&
        (tag == kAnyTag || it->env.tag == tag)) {
      break;
    }
  }
  if (it == unexpected_.end()) {
    if (scanned > 0) co_await cpu().compute(config_.unexpected_item_cost * scanned);
    posted_.push_back(PostedRecv{src, tag, addr, capacity, request});
    if (posted_.size() > posted_hwm_) posted_hwm_ = posted_.size();
    co_return request;
  }

  // Take the entry out of the queue *before* charging the traversal cost:
  // another progress context (async progress, nested handlers) must never
  // match the same message while this coroutine is suspended.
  const UnexpectedMsg msg = *it;
  unexpected_.erase(it);
  if (scanned > 0) co_await cpu().compute(config_.unexpected_item_cost * scanned);
  if (msg.env.kind == Kind::kRts) {
    co_await accept_rndv(msg.env, msg.peer, addr, request);
  } else {
    co_await deliver_eager_from_unexpected(msg, addr, capacity, request);
  }
  co_return request;
}

Task<> ChVerbs::deliver_eager_from_slot(const Envelope& env, int peer_rank, std::uint32_t slot,
                                        std::uint64_t addr, std::uint32_t capacity,
                                        RequestPtr request) {
  if (capacity < env.len) throw std::length_error("mpi: receive buffer too small");
  Peer& peer = peers_[static_cast<std::size_t>(peer_rank)];
  // One receive-side copy: ring slot -> user buffer.
  co_await cpu().copy(addr, env.len);
  copy_payload_out(peer, slot, addr, env.len);
  co_await release_recv_slot(peer_rank, slot, /*count_credit=*/true);
  co_await maybe_ack(env, peer_rank);
  request->complete(Status{env.src_rank, env.tag, env.len});
}

Task<> ChVerbs::deliver_eager_from_unexpected(const UnexpectedMsg& msg, std::uint64_t addr,
                                              std::uint32_t capacity, RequestPtr request) {
  const Envelope& env = msg.env;
  if (capacity < env.len) throw std::length_error("mpi: receive buffer too small");
  // Copy from the host-side unexpected buffer into the user buffer.
  co_await cpu().copy(addr, env.len);
  if (msg.data != nullptr) {
    hw::Buffer* dst = node_->mem().find(addr);
    if (dst != nullptr && dst->has_data()) node_->mem().write(addr, *msg.data);
  }
  co_await maybe_ack(env, msg.peer);
  request->complete(Status{env.src_rank, env.tag, env.len});
}

Task<> ChVerbs::maybe_ack(const Envelope& env, int peer_rank) {
  if (env.kind != Kind::kEagerSync) co_return;
  Envelope ack;
  ack.kind = Kind::kAck;
  ack.src_rank = rank_;
  ack.tag = env.tag;
  ack.req_id = env.req_id;
  co_await send_control(peer_rank, ack);
}

Task<> ChVerbs::accept_rndv(const Envelope& env, int peer_rank, std::uint64_t addr,
                            RequestPtr request) {
  node_->engine().trace(TraceCategory::kProto, rank_,
                        "MPI rendezvous CTS -> rank " + std::to_string(peer_rank) +
                            " (target pinned)");
  const verbs::MrKey rkey = co_await pin(addr, env.len);
  rndv_recvs_[{peer_rank, env.req_id}] = request;
  Envelope cts;
  cts.kind = Kind::kCts;
  cts.src_rank = rank_;
  cts.tag = env.tag;
  cts.len = env.len;
  cts.req_id = env.req_id;
  cts.target_addr = addr;
  cts.rkey = rkey;
  co_await send_control(peer_rank, cts);
}

Task<> ChVerbs::release_recv_slot(int peer_rank, std::uint32_t slot, bool count_credit) {
  Peer& peer = peers_[static_cast<std::size_t>(peer_rank)];
  co_await peer.qp->post_recv(verbs::RecvWr{
      encode_wr(WrType::kRecvSlot, peer_rank, slot),
      {slot_addr(*peer.recv_arena, slot), slot_size(), peer.recv_key}});
  // Only slots consumed by credit-paying (eager) messages earn credits
  // back; control traffic uses the reserved headroom.
  if (count_credit && ++peer.freed_since_credit >= config_.credit_batch) {
    Envelope credit;
    credit.kind = Kind::kCredit;
    credit.src_rank = rank_;
    credit.credits = peer.freed_since_credit;
    peer.freed_since_credit = 0;
    co_await send_control(peer_rank, credit);
  }
}

// ---------------------------------------------------------------------------
// Progress engine
// ---------------------------------------------------------------------------

void ChVerbs::start_async_progress() {
  // A daemon: the loop never terminates by design, so it must not count
  // as a stuck process in the engine's no-lost-wakeup audit.
  engine_->spawn_daemon([](ChVerbs* self) -> Task<> {
    for (;;) {
      co_await self->progress_blocking();
    }
  }(this));
}

Task<> ChVerbs::wait(RequestPtr request) {
  // With async progress enabled this wait and the background engine both
  // drive progress_blocking(); each completion is handled exactly once
  // (next_completion re-polls after every wakeup).
  while (!request->done()) co_await progress_blocking();
}

Task<bool> ChVerbs::test(RequestPtr request) {
  co_await cpu().compute(config_.wait_poll_cpu);
  co_await drain();
  co_return request->done();
}

Task<Status> ChVerbs::probe(int src, int tag) {
  co_await cpu().compute(config_.recv_call_cpu);
  for (;;) {
    co_await drain();
    std::size_t scanned = 0;
    for (const UnexpectedMsg& msg : unexpected_) {
      ++scanned;
      if ((src == kAnySource || msg.env.src_rank == src) &&
          (tag == kAnyTag || msg.env.tag == tag)) {
        co_await cpu().compute(config_.unexpected_item_cost * scanned);
        co_return Status{msg.env.src_rank, msg.env.tag, msg.env.len};
      }
    }
    if (scanned > 0) co_await cpu().compute(config_.unexpected_item_cost * scanned);
    co_await progress_blocking();
  }
}

Task<> ChVerbs::drain() {
  while (auto completion = cq_.poll()) {
    co_await handle(*completion);
  }
}

Task<> ChVerbs::progress_blocking() {
  const verbs::Completion completion =
      co_await verbs::next_completion(cq_, cpu(), config_.wait_poll_cpu);
  co_await handle(completion);
}

Task<> ChVerbs::handle(verbs::Completion completion) {
  const std::uint64_t wr = completion.wr_id;
  switch (wr_type(wr)) {
    case WrType::kRecvSlot:
      co_await cpu().compute(config_.handler_cpu);
      co_await handle_inbound(wr_peer(wr), static_cast<std::uint32_t>(wr_low(wr)));
      break;
    case WrType::kSendData: {
      Peer& peer = peers_[static_cast<std::size_t>(wr_peer(wr))];
      peer.free_data_slots.push_back(static_cast<std::uint32_t>(wr_low(wr)));
      --outstanding_eager_;
      break;
    }
    case WrType::kSendCtrl: {
      Peer& peer = peers_[static_cast<std::size_t>(wr_peer(wr))];
      peer.free_ctrl_slots.push_back(static_cast<std::uint32_t>(wr_low(wr)));
      break;
    }
    case WrType::kRndvWrite: {
      auto it = rndv_sends_.find(wr_low(wr));
      if (it == rndv_sends_.end()) throw std::logic_error("mpi: rndv write without state");
      it->second.request->complete(Status{rank_, it->second.tag, it->second.len});
      rndv_sends_.erase(it);
      break;
    }
  }
}

Task<> ChVerbs::handle_inbound(int peer_rank, std::uint32_t slot) {
  Peer& peer = peers_[static_cast<std::size_t>(peer_rank)];
  const Envelope env = read_envelope(*peer.recv_arena, slot);

  switch (env.kind) {
    case Kind::kEager:
    case Kind::kEagerSync:
    case Kind::kRts: {
      // Walk the posted-receive queue (Fig 8's cost), FIFO.
      std::size_t scanned = 0;
      auto it = posted_.begin();
      for (; it != posted_.end(); ++it) {
        ++scanned;
        if ((it->src == kAnySource || it->src == env.src_rank) &&
            (it->tag == kAnyTag || it->tag == env.tag)) {
          break;
        }
      }
      if (it != posted_.end()) {
        // Same re-entrancy rule: claim the receive before suspending.
        const PostedRecv posted = *it;
        posted_.erase(it);
        co_await cpu().compute(config_.posted_item_cost * scanned);
        if (env.kind == Kind::kRts) {
          co_await release_recv_slot(peer_rank, slot, false);
          co_await accept_rndv(env, peer_rank, posted.addr, posted.request);
        } else {
          co_await deliver_eager_from_slot(env, peer_rank, slot, posted.addr, posted.capacity,
                                           posted.request);
        }
        break;
      }
      if (scanned > 0) co_await cpu().compute(config_.posted_item_cost * scanned);

      if (it == posted_.end()) {
        node_->engine().trace(TraceCategory::kHost, rank_,
                              "MPI unexpected message from rank " +
                                  std::to_string(env.src_rank) + " tag=" +
                                  std::to_string(env.tag));
        UnexpectedMsg msg{env, peer_rank, nullptr};
        if (env.kind != Kind::kRts) {
          // Copy the payload out of the ring into host memory and return
          // the slot immediately (MPICH keeps its ring shallow this way).
          co_await cpu().copy(slot_addr(*peer.recv_arena, slot) + kEnvBytes, env.len);
          if (env.len > 0) {
            auto view = peer.recv_arena->bytes().subspan(
                static_cast<std::size_t>(slot) * slot_size() + kEnvBytes, env.len);
            msg.data = std::make_shared<std::vector<std::byte>>(view.begin(), view.end());
          }
          co_await release_recv_slot(peer_rank, slot, /*count_credit=*/true);
        } else {
          co_await release_recv_slot(peer_rank, slot, false);
        }
        unexpected_.push_back(std::move(msg));
        if (unexpected_.size() > unexpected_hwm_) unexpected_hwm_ = unexpected_.size();
        co_return;
      }
      break;
    }
    case Kind::kCts: {
      auto it = rndv_sends_.find(env.req_id);
      if (it == rndv_sends_.end()) throw std::logic_error("mpi: CTS without rndv state");
      const RndvSend& rs = it->second;
      // Zero-copy payload: RDMA Write straight from the user buffer, then
      // FIN on the same QP (ordering guarantees FIN trails the data).
      co_await peer.qp->post_send(verbs::SendWr{
          .wr_id = encode_wr(WrType::kRndvWrite, peer_rank, env.req_id),
          .opcode = verbs::Opcode::kRdmaWrite,
          .sge = {rs.addr, rs.len, rs.lkey},
          .remote_addr = env.target_addr,
          .rkey = env.rkey});
      Envelope fin;
      fin.kind = Kind::kFin;
      fin.src_rank = rank_;
      fin.tag = env.tag;
      fin.len = env.len;
      fin.req_id = env.req_id;
      co_await release_recv_slot(peer_rank, slot, false);
      co_await send_control(peer_rank, fin);
      break;
    }
    case Kind::kFin: {
      auto it = rndv_recvs_.find({peer_rank, env.req_id});
      if (it == rndv_recvs_.end()) throw std::logic_error("mpi: FIN without rndv state");
      it->second->complete(Status{env.src_rank, env.tag, env.len});
      rndv_recvs_.erase(it);
      co_await release_recv_slot(peer_rank, slot, false);
      break;
    }
    case Kind::kAck: {
      auto it = pending_acks_.find(env.req_id);
      if (it == pending_acks_.end()) throw std::logic_error("mpi: ACK without ssend state");
      it->second->complete(Status{rank_, env.tag, 0});
      pending_acks_.erase(it);
      co_await release_recv_slot(peer_rank, slot, false);
      break;
    }
    case Kind::kCredit: {
      peer.credits += env.credits;
      co_await release_recv_slot(peer_rank, slot, false);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// FabricCheck audits
// ---------------------------------------------------------------------------

void ChVerbs::audit_queues(check::InvariantMonitor& monitor) {
  for (const PostedRecv& recv : posted_) {
    for (const UnexpectedMsg& msg : unexpected_) {
      check::audit_mpi_queue_disjoint(recv.src, recv.tag, msg.env.src_rank, msg.env.tag)
          .report(&monitor, engine_->now(), check::Layer::kMpi, rank_);
    }
  }
}

}  // namespace fabsim::mpi

// MiniMPI public per-rank API: point-to-point convenience wrappers,
// collective operations built on them, and communicators.
//
// A Rank is "this process's view of one communicator": the world Rank is
// built over a Channel; Rank::split (MPI_Comm_split) derives
// sub-communicators whose messages are isolated from the parent's by a
// context id embedded in the high bits of the wire tag. ANY_TAG is only
// supported on the world communicator (sub-communicator wildcard-tag
// matching would need mask-based matching in the channels).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mpi/channel.hpp"
#include "mpi/request.hpp"
#include "sim/scope.hpp"

namespace fabsim::mpi {

class Rank {
 public:
  explicit Rank(Channel& channel);

  /// Communicator-local rank / size.
  int rank() const { return my_index_; }
  int size() const { return static_cast<int>(members_.size()); }
  int context() const { return context_; }
  /// World rank of communicator-local rank r.
  int world_rank(int r) const { return members_.at(static_cast<std::size_t>(r)); }

  /// MPI_Comm_split: collective over this communicator. Members with the
  /// same color form a new communicator ordered by (key, world rank).
  /// `scratch` must provide 64 + 16*size() bytes of workspace.
  Task<std::unique_ptr<Rank>> split(int color, int key, std::uint64_t scratch);
  Channel& channel() { return *channel_; }
  hw::Node& node() { return channel_->node(); }
  Engine& engine() { return channel_->node().engine(); }

  /// Wall clock in seconds of simulated time (MPI_Wtime).
  double wtime() const { return to_sec(channel_->node().engine().now()); }

  // --- Point-to-point (ranks and tags are communicator-local) ---
  Task<RequestPtr> isend(int dst, int tag, std::uint64_t addr, std::uint32_t len) {
    return channel_->isend(to_world(dst), wire_tag(tag), addr, len, /*synchronous=*/false);
  }
  Task<RequestPtr> issend(int dst, int tag, std::uint64_t addr, std::uint32_t len) {
    return channel_->isend(to_world(dst), wire_tag(tag), addr, len, /*synchronous=*/true);
  }
  Task<RequestPtr> irecv(int src, int tag, std::uint64_t addr, std::uint32_t capacity) {
    return channel_->irecv(src == kAnySource ? kAnySource : to_world(src), wire_tag(tag), addr,
                           capacity);
  }
  Task<> wait(RequestPtr request) { return channel_->wait(std::move(request)); }
  Task<bool> test(RequestPtr request) { return channel_->test(std::move(request)); }
  Task<> waitall(std::vector<RequestPtr> requests);
  /// MPI_Waitany: block until one request completes; returns its index.
  Task<std::size_t> waitany(std::vector<RequestPtr>& requests);
  /// MPI_Testall: true iff every request has completed (drives progress).
  Task<bool> testall(std::vector<RequestPtr>& requests);

  Task<> send(int dst, int tag, std::uint64_t addr, std::uint32_t len);
  Task<> ssend(int dst, int tag, std::uint64_t addr, std::uint32_t len);
  Task<Status> recv(int src, int tag, std::uint64_t addr, std::uint32_t capacity);
  /// MPI_Probe: block until a matching message is available.
  Task<Status> probe(int src, int tag);
  /// MPI_Sendrecv: simultaneous send and receive (deadlock-free).
  Task<Status> sendrecv(int dst, int send_tag, std::uint64_t send_addr, std::uint32_t send_len,
                        int src, int recv_tag, std::uint64_t recv_addr,
                        std::uint32_t capacity);

  // --- Collectives (tags above kCollectiveTagBase are reserved) ---
  static constexpr int kCollectiveTagBase = 0x1000000;
  /// User + collective tags live below this; contexts above.
  static constexpr int kContextStride = 1 << 26;

  /// Dissemination barrier.
  Task<> barrier();
  /// Binomial-tree broadcast of [addr, addr+len).
  Task<> bcast(int root, std::uint64_t addr, std::uint32_t len);
  /// Allreduce (sum) over `count` doubles at `addr`: recursive doubling
  /// with MPICH-style fold-in for non-power-of-two worlds; `scratch`
  /// must hold `count` doubles for incoming contributions.
  Task<> allreduce_sum(std::uint64_t addr, std::uint64_t scratch, std::uint32_t count);
  /// Ring allgather: each rank contributes [send_addr, +len); results land
  /// at recv_addr + r*len for every rank r.
  Task<> allgather(std::uint64_t send_addr, std::uint32_t len, std::uint64_t recv_addr);
  /// Pairwise-exchange alltoall: block r of [send_addr] goes to rank r;
  /// block r of [recv_addr] arrives from rank r. Both sized len * size().
  Task<> alltoall(std::uint64_t send_addr, std::uint32_t len, std::uint64_t recv_addr);
  /// Reduce (sum of doubles) to `root`: binomial tree; `scratch` holds one
  /// incoming contribution.
  Task<> reduce_sum(int root, std::uint64_t addr, std::uint64_t scratch, std::uint32_t count);
  /// Gather fixed-size blocks to `root` (recv_addr used by root only,
  /// sized len * size()).
  Task<> gather(int root, std::uint64_t send_addr, std::uint32_t len, std::uint64_t recv_addr);
  /// Scatter fixed-size blocks from `root` (send_addr used by root only,
  /// sized len * size()); everyone receives into recv_addr.
  Task<> scatter(int root, std::uint64_t send_addr, std::uint32_t len, std::uint64_t recv_addr);

 private:
  Rank(Channel& channel, std::vector<int> members, int my_index, int context);

  void reduce_into(std::uint64_t dst_addr, std::uint64_t src_addr, std::uint32_t count);
  int wire_tag(int tag) const;
  int to_world(int comm_rank) const;
  int from_world(int world_rank) const;
  Status translate(Status status) const;

  // Scope/ownership annotations (scripts/scope_check.py, src/sim/scope.hpp).
  FABSIM_ENGINE_LOCAL;  // communicator shape, fixed at construction
  Channel* channel_;
  std::vector<int> members_;  ///< world rank of each communicator rank
  int my_index_;
  int context_;
  FABSIM_OWNED_BY(channel_->rank());  // collective progress state: advances
                                      // only in this rank's coroutines
  std::uint64_t barrier_scratch_;  ///< small buffers for zero-payload sync
  int barrier_epoch_ = 0;
};

}  // namespace fabsim::mpi

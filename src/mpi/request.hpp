// MPI request objects and status.
#pragma once

#include <cstdint>
#include <memory>

#include "check/invariant.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace fabsim::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Status {
  int source = -1;
  int tag = -1;
  std::uint32_t length = 0;
};

class Request {
 public:
  explicit Request(Engine& engine) : engine_(&engine), done_event_(engine) {}
  virtual ~Request() = default;

  bool done() const { return done_; }
  const Status& status() const { return status_; }
  Event& done_event() { return done_event_; }

  void complete(Status status) {
    if (done_) {
      // Lifecycle FSM: pending -> done, exactly once. A second completion
      // means two protocol paths claimed the same request (e.g. an eager
      // delivery and a rendezvous FIN) — report it instead of silently
      // swallowing the duplicate.
      if (check::InvariantMonitor* monitor = engine_->monitor()) {
        monitor->report(engine_->now(), check::Layer::kMpi, status.source, "double_complete",
                        "request completed twice (second source " +
                            std::to_string(status.source) + ", tag " +
                            std::to_string(status.tag) + ")");
      }
      return;
    }
    done_ = true;
    status_ = status;
    done_event_.trigger();
  }

 private:
  Engine* engine_;
  bool done_ = false;
  Status status_;
  Event done_event_;
};

using RequestPtr = std::shared_ptr<Request>;

}  // namespace fabsim::mpi

// MPI request objects and status.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/sync.hpp"

namespace fabsim::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Status {
  int source = -1;
  int tag = -1;
  std::uint32_t length = 0;
};

class Request {
 public:
  explicit Request(Engine& engine) : done_event_(engine) {}
  virtual ~Request() = default;

  bool done() const { return done_; }
  const Status& status() const { return status_; }
  Event& done_event() { return done_event_; }

  void complete(Status status) {
    if (done_) return;
    done_ = true;
    status_ = status;
    done_event_.trigger();
  }

 private:
  bool done_ = false;
  Status status_;
  Event done_event_;
};

using RequestPtr = std::shared_ptr<Request>;

}  // namespace fabsim::mpi

// MiniMPI channel over MX (MPICH-MX style).
//
// MX's matched non-blocking send/receive maps almost one-to-one onto MPI
// point-to-point semantics — the reason the paper finds MPICH-MX has the
// lowest MPI-over-user-level overhead (§6.1). Matching, unexpected
// buffering, and the eager/rendezvous switch all live in the MX library
// (and are charged to the NIC there); this shim only encodes MPI
// (source, tag) into MX match bits:
//
//   bit 63        synchronous-send flag (receiver must ack)
//   bit 62        ack message
//   bits 61..32   source rank
//   bits 31..0    tag
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/channel.hpp"
#include "mpi/config.hpp"
#include "mx/endpoint.hpp"
#include "sim/scope.hpp"

namespace fabsim::mpi {

class ChMx final : public Channel {
 public:
  /// `rank_ports[r]` is the fabric port of rank r's MX endpoint.
  ChMx(int rank, int world_size, mx::Endpoint& endpoint, MpiConfig config,
       std::vector<int> rank_ports);

  Task<RequestPtr> isend(int dst, int tag, std::uint64_t addr, std::uint32_t len,
                         bool synchronous) override;
  Task<RequestPtr> irecv(int src, int tag, std::uint64_t addr, std::uint32_t capacity) override;
  Task<> wait(RequestPtr request) override;
  Task<bool> test(RequestPtr request) override;
  Task<Status> probe(int src, int tag) override;

  int rank() const override { return rank_; }
  int size() const override { return world_size_; }
  hw::Node& node() override { return endpoint_->node(); }
  std::size_t unexpected_queue_depth() const override { return endpoint_->unexpected_depth(); }
  std::size_t posted_queue_depth() const override { return endpoint_->posted_depth(); }

 private:
  static constexpr std::uint64_t kSyncBit = 1ull << 63;
  static constexpr std::uint64_t kAckBit = 1ull << 62;
  static constexpr std::uint64_t kRankShift = 32;
  static constexpr std::uint64_t kRankMask = 0x3fffffffull << kRankShift;
  static constexpr std::uint64_t kTagMask = 0xffffffffull;

  struct MxRequest final : Request {
    using Request::Request;
    mx::RequestPtr inner;
    mx::RequestPtr ack;   ///< sender side: pending ack receive (ssend)
    bool is_recv = false;
    bool ack_sent = false;
    int tag = 0;
  };

  static std::uint64_t bits_for(int src_rank, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_rank)) << kRankShift) |
           (static_cast<std::uint32_t>(tag) & kTagMask);
  }

  /// Resolve the matched message, sending the ssend-ack if required.
  Task<> finalize(MxRequest& request);

  // Scope/ownership annotations (scripts/scope_check.py, src/sim/scope.hpp).
  FABSIM_ENGINE_LOCAL;  // wiring fixed at construction
  int rank_;
  int world_size_;
  mx::Endpoint* endpoint_;
  MpiConfig config_;
  std::vector<int> rank_ports_;
  FABSIM_OWNED_BY(rank_);  // scratch registrations: used only from this
                           // rank's coroutines (scope -1 resumes)
  std::uint64_t ack_scratch_send_ = 0;  ///< 8-byte buffers for ack traffic
  std::uint64_t ack_scratch_recv_ = 0;
};

}  // namespace fabsim::mpi

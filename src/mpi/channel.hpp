// Transport channel interface of MiniMPI.
//
// Two implementations: ChVerbs (iWARP and InfiniBand, eager ring +
// RDMA-write rendezvous, host-side matching) and ChMx (MPICH-MX-style
// thin shim, matching delegated to the MX NIC).
#pragma once

#include <cstdint>

#include "hw/node.hpp"
#include "mpi/request.hpp"
#include "sim/task.hpp"

namespace fabsim::mpi {

class Channel {
 public:
  virtual ~Channel() = default;

  virtual Task<RequestPtr> isend(int dst, int tag, std::uint64_t addr, std::uint32_t len,
                                 bool synchronous) = 0;
  virtual Task<RequestPtr> irecv(int src, int tag, std::uint64_t addr,
                                 std::uint32_t capacity) = 0;
  /// Block until the request completes, driving progress.
  virtual Task<> wait(RequestPtr request) = 0;
  /// Probe for completion, driving progress without blocking.
  virtual Task<bool> test(RequestPtr request) = 0;

  /// Blocking MPI_Probe: wait until a message matching (src, tag) is
  /// available (without consuming it) and return its envelope.
  virtual Task<Status> probe(int src, int tag) = 0;

  virtual int rank() const = 0;
  virtual int size() const = 0;
  virtual hw::Node& node() = 0;

  /// Introspection for the queue-usage experiments (Figs 7, 8).
  virtual std::size_t unexpected_queue_depth() const = 0;
  virtual std::size_t posted_queue_depth() const = 0;

  /// Communicator-context allocation. Processes that perform the same
  /// sequence of collective split operations (an MPI requirement) draw
  /// the same ids.
  int allocate_contexts(int n) {
    const int base = next_context_id_;
    next_context_id_ += n;
    return base;
  }

 private:
  int next_context_id_ = 1;
};

}  // namespace fabsim::mpi

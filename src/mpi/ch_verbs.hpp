// MiniMPI channel over verbs (iWARP RNIC or InfiniBand HCA).
//
// Protocols match the MPICH derivatives the paper measures:
//   * eager: the payload travels with its envelope through a pre-posted
//     ring of registered staging buffers (one copy on each side), with
//     credit-based flow control;
//   * rendezvous (> eager_threshold): RTS -> CTS(rkey) -> RDMA Write ->
//     FIN, with real memory registration on both sides through an LRU
//     pin-down cache.
// Matching (posted-receive and unexpected-message queues) runs on the
// host; traversal costs are charged per item inspected — these queues are
// the subject of the paper's §6.5.
//
// Progress is synchronous, MPICH-style: the library only advances inside
// MPI calls. That is what makes the rendezvous receiver overhead jump in
// the LogP experiment (Fig 5) — there is no asynchronous progress thread.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "hw/reg_cache.hpp"
#include "mpi/channel.hpp"
#include "mpi/config.hpp"
#include "sim/scope.hpp"
#include "verbs/verbs.hpp"

namespace fabsim::check {
class InvariantMonitor;
}

namespace fabsim::mpi {

class ChVerbs final : public Channel {
 public:
  ChVerbs(int rank, int world_size, verbs::Device& device, hw::Node& node, Engine& engine,
          MpiConfig config);

  /// Wire a full mesh of QPs and pre-post all eager rings. Must be
  /// awaited (once) before any communication.
  static Task<> connect_mesh(std::span<ChVerbs* const> ranks);

  /// Spawn the background progress engine (config.async_progress). The
  /// loop idles on the CQ notifier, so it never keeps the event queue
  /// alive, but it does keep the process count non-zero.
  void start_async_progress();

  Task<RequestPtr> isend(int dst, int tag, std::uint64_t addr, std::uint32_t len,
                         bool synchronous) override;
  Task<RequestPtr> irecv(int src, int tag, std::uint64_t addr, std::uint32_t capacity) override;
  Task<> wait(RequestPtr request) override;
  Task<bool> test(RequestPtr request) override;
  Task<Status> probe(int src, int tag) override;

  int rank() const override { return rank_; }
  int size() const override { return world_size_; }
  hw::Node& node() override { return *node_; }
  std::size_t unexpected_queue_depth() const override { return unexpected_.size(); }
  std::size_t posted_queue_depth() const override { return posted_.size(); }

  /// Pin-down cache statistics (Fig 6 analysis).
  std::uint64_t pin_hits() const { return pin_hits_; }
  std::uint64_t pin_misses() const { return pin_misses_; }
  std::uint64_t eager_send_count() const { return eager_send_count_; }
  std::uint64_t rndv_send_count() const { return rndv_send_count_; }
  std::size_t unexpected_max_depth() const { return unexpected_hwm_; }
  std::size_t posted_max_depth() const { return posted_hwm_; }
  const hw::RegCache& pin_cache() const { return pin_cache_; }

  /// FabricCheck final audit (quiescent state only): the posted and
  /// unexpected queues must be disjoint — an unexpected message that
  /// matches a posted receive means MPI matching failed to pair them.
  void audit_queues(check::InvariantMonitor& monitor);

 private:
  enum class Kind : std::uint8_t { kEager, kEagerSync, kRts, kCts, kFin, kAck, kCredit };

  /// On-the-wire MPI envelope, serialized at the front of every message.
  struct Envelope {
    Kind kind = Kind::kEager;
    std::int32_t src_rank = -1;
    std::int32_t tag = 0;
    std::uint32_t len = 0;
    std::uint64_t req_id = 0;       ///< sender request id (sync/rndv handshakes)
    std::uint64_t target_addr = 0;  ///< CTS: receiver buffer
    std::uint32_t rkey = 0;         ///< CTS: receiver rkey
    std::uint32_t credits = 0;      ///< kCredit: slots returned
  };
  static constexpr std::uint32_t kEnvBytes = 48;

  enum class WrType : std::uint8_t { kRecvSlot, kSendData, kSendCtrl, kRndvWrite };

  struct Peer {
    std::unique_ptr<verbs::QueuePair> qp;
    hw::Buffer* send_arena = nullptr;
    hw::Buffer* recv_arena = nullptr;
    verbs::MrKey send_key = 0;
    verbs::MrKey recv_key = 0;
    std::deque<std::uint32_t> free_data_slots;
    std::deque<std::uint32_t> free_ctrl_slots;
    std::int64_t credits = 0;  ///< remote ring slots we may consume
    std::uint32_t freed_since_credit = 0;
  };

  struct PostedRecv {
    int src;
    int tag;
    std::uint64_t addr;
    std::uint32_t capacity;
    RequestPtr request;
  };

  struct UnexpectedMsg {
    Envelope env;
    int peer;
    /// Eager payloads are copied out of the ring into host memory when
    /// they are found unexpected (MPICH behaviour), so no slot is held.
    std::shared_ptr<std::vector<std::byte>> data;
  };

  struct RndvSend {
    RequestPtr request;
    std::uint64_t addr;
    std::uint32_t len;
    verbs::MrKey lkey;
    int dst;
    int tag;
  };

  static std::uint64_t encode_wr(WrType type, int peer, std::uint64_t low);
  static WrType wr_type(std::uint64_t wr_id);
  static int wr_peer(std::uint64_t wr_id);
  static std::uint64_t wr_low(std::uint64_t wr_id);

  std::uint32_t slot_size() const { return kEnvBytes + config_.eager_threshold; }
  std::uint64_t slot_addr(const hw::Buffer& arena, std::uint32_t slot) const {
    return arena.addr() + static_cast<std::uint64_t>(slot) * slot_size();
  }

  void write_envelope(hw::Buffer& arena, std::uint32_t slot, const Envelope& env);
  Envelope read_envelope(const hw::Buffer& arena, std::uint32_t slot) const;
  void copy_payload_in(Peer& peer, std::uint32_t slot, std::uint64_t src_addr,
                       std::uint32_t len);
  void copy_payload_out(const Peer& peer, std::uint32_t slot, std::uint64_t dst_addr,
                        std::uint32_t len);

  Task<> setup_peer(int peer_rank);
  Task<> eager_send(int dst, Kind kind, int tag, std::uint64_t addr, std::uint32_t len,
                    std::uint64_t req_id);
  Task<> send_control(int dst, Envelope env);
  Task<std::uint32_t> take_data_slot(int dst);
  Task<std::uint32_t> take_ctrl_slot(int dst);
  Task<verbs::MrKey> pin(std::uint64_t addr, std::uint32_t len);
  Task<> release_recv_slot(int peer, std::uint32_t slot, bool count_credit);
  Task<> accept_rndv(const Envelope& env, int peer, std::uint64_t addr, RequestPtr request);
  Task<> deliver_eager_from_slot(const Envelope& env, int peer, std::uint32_t slot,
                                 std::uint64_t addr, std::uint32_t capacity, RequestPtr request);
  Task<> deliver_eager_from_unexpected(const UnexpectedMsg& msg, std::uint64_t addr,
                                       std::uint32_t capacity, RequestPtr request);
  Task<> maybe_ack(const Envelope& env, int peer_rank);
  /// Drain every completion currently in the CQ (non-blocking progress).
  Task<> drain();
  /// Block for one completion, then handle it.
  Task<> progress_blocking();
  Task<> handle(verbs::Completion completion);
  Task<> handle_inbound(int peer, std::uint32_t slot);

  hw::HostCpu& cpu() { return node_->cpu(); }

  // Scope/ownership annotations (scripts/scope_check.py, src/sim/scope.hpp).
  FABSIM_ENGINE_LOCAL;  // wiring fixed at construction
  int rank_;
  int world_size_;
  verbs::Device* device_;
  hw::Node* node_;
  Engine* engine_;
  MpiConfig config_;
  FABSIM_OWNED_BY(rank_);  // host-side MPI progress state: advances only
                           // in this rank's coroutines (scope -1 resumes)
  verbs::CompletionQueue cq_;
  std::vector<Peer> peers_;  ///< indexed by peer rank (self unused)
  std::deque<PostedRecv> posted_;
  std::deque<UnexpectedMsg> unexpected_;
  std::map<std::uint64_t, RequestPtr> pending_acks_;
  std::map<std::uint64_t, RndvSend> rndv_sends_;
  std::map<std::pair<int, std::uint64_t>, RequestPtr> rndv_recvs_;
  hw::RegCache pin_cache_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, verbs::MrKey> pinned_keys_;
  std::uint64_t next_req_id_ = 1;
  std::uint64_t eager_send_count_ = 0;
  std::uint64_t rndv_send_count_ = 0;
  std::size_t unexpected_hwm_ = 0;
  std::size_t posted_hwm_ = 0;
  int outstanding_eager_ = 0;
  std::uint64_t pin_hits_ = 0;
  std::uint64_t pin_misses_ = 0;
};

}  // namespace fabsim::mpi

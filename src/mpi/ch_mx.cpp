#include "mpi/ch_mx.hpp"

#include <stdexcept>

namespace fabsim::mpi {

ChMx::ChMx(int rank, int world_size, mx::Endpoint& endpoint, MpiConfig config,
           std::vector<int> rank_ports)
    : rank_(rank),
      world_size_(world_size),
      endpoint_(&endpoint),
      config_(config),
      rank_ports_(std::move(rank_ports)) {
  ack_scratch_send_ = endpoint_->node().mem().alloc(64).addr();
  ack_scratch_recv_ = endpoint_->node().mem().alloc(64).addr();
}

Task<RequestPtr> ChMx::isend(int dst, int tag, std::uint64_t addr, std::uint32_t len,
                             bool synchronous) {
  if (dst < 0 || dst >= world_size_ || dst == rank_) {
    throw std::invalid_argument("mpi: bad destination rank");
  }
  co_await endpoint_->node().cpu().compute(config_.send_call_cpu);

  auto request = std::make_shared<MxRequest>(endpoint_->node().engine());
  request->tag = tag;
  std::uint64_t bits = bits_for(rank_, tag);
  if (synchronous) {
    bits |= kSyncBit;
    // Expect the ack: exact-match receive keyed on the peer's rank + tag.
    request->ack = co_await endpoint_->irecv(ack_scratch_recv_, 64,
                                             kAckBit | bits_for(dst, tag), ~kSyncBit);
  }
  request->inner = co_await endpoint_->isend(addr, len, rank_ports_[static_cast<std::size_t>(dst)],
                                             bits);
  co_return request;
}

Task<RequestPtr> ChMx::irecv(int src, int tag, std::uint64_t addr, std::uint32_t capacity) {
  co_await endpoint_->node().cpu().compute(config_.recv_call_cpu);

  auto request = std::make_shared<MxRequest>(endpoint_->node().engine());
  request->is_recv = true;
  request->tag = tag;
  // Receives must see sync-flagged messages (mask out bit 63) but never
  // ack messages (keep bit 62 in the mask; our bits have 0 there).
  std::uint64_t bits = 0;
  std::uint64_t mask = kAckBit;
  if (src != kAnySource) {
    bits |= bits_for(src, 0);
    mask |= kRankMask;
  }
  if (tag != kAnyTag) {
    bits |= static_cast<std::uint32_t>(tag) & kTagMask;
    mask |= kTagMask;
  }
  request->inner = co_await endpoint_->irecv(addr, capacity, bits, mask);
  co_return request;
}

Task<> ChMx::finalize(MxRequest& request) {
  if (request.done()) co_return;
  const std::uint64_t bits = request.inner->match_bits();
  if (request.is_recv) {
    if ((bits & kSyncBit) != 0 && !request.ack_sent) {
      request.ack_sent = true;
      const int src = static_cast<int>((bits & kRankMask) >> kRankShift);
      const int tag = static_cast<int>(bits & kTagMask);
      // Fire-and-forget 8-byte ack; completion is the sender's concern.
      co_await endpoint_->isend(ack_scratch_send_, 8,
                                rank_ports_[static_cast<std::size_t>(src)],
                                kAckBit | bits_for(rank_, tag));
    }
    const int src = static_cast<int>((bits & kRankMask) >> kRankShift);
    request.complete(Status{src, static_cast<int>(bits & kTagMask), request.inner->length()});
  } else {
    request.complete(Status{rank_, request.tag, request.inner->length()});
  }
}

Task<> ChMx::wait(RequestPtr request) {
  auto& mx_request = dynamic_cast<MxRequest&>(*request);
  co_await endpoint_->node().cpu().compute(config_.wait_poll_cpu);
  co_await endpoint_->wait(mx_request.inner);
  if (mx_request.ack != nullptr) co_await endpoint_->wait(mx_request.ack);
  co_await finalize(mx_request);
}

Task<Status> ChMx::probe(int src, int tag) {
  std::uint64_t bits = 0;
  std::uint64_t mask = kAckBit;
  if (src != kAnySource) {
    bits |= bits_for(src, 0);
    mask |= kRankMask;
  }
  if (tag != kAnyTag) {
    bits |= static_cast<std::uint32_t>(tag) & kTagMask;
    mask |= kTagMask;
  }
  for (;;) {
    const auto result = co_await endpoint_->iprobe(bits, mask);
    if (result.found) {
      const int from = static_cast<int>((result.match_bits & kRankMask) >> kRankShift);
      co_return Status{from, static_cast<int>(result.match_bits & kTagMask), result.length};
    }
    // Block until a new unexpected message arrives, then re-probe. (A
    // polling loop would keep the event queue alive forever when nothing
    // is coming; waiting on the notifier lets the simulation drain.)
    co_await endpoint_->unexpected_activity().wait();
  }
}

Task<bool> ChMx::test(RequestPtr request) {
  auto& mx_request = dynamic_cast<MxRequest&>(*request);
  const bool inner_done = co_await endpoint_->test(mx_request.inner);
  if (!inner_done) co_return false;
  if (mx_request.ack != nullptr && !mx_request.ack->done()) co_return false;
  co_await finalize(mx_request);
  co_return true;
}

}  // namespace fabsim::mpi

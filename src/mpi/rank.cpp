#include "mpi/rank.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace fabsim::mpi {

Rank::Rank(Channel& channel) : channel_(&channel), my_index_(channel.rank()), context_(0) {
  members_.reserve(static_cast<std::size_t>(channel.size()));
  for (int r = 0; r < channel.size(); ++r) members_.push_back(r);
  barrier_scratch_ = channel_->node().mem().alloc(256).addr();
}

Rank::Rank(Channel& channel, std::vector<int> members, int my_index, int context)
    : channel_(&channel), members_(std::move(members)), my_index_(my_index), context_(context) {
  barrier_scratch_ = channel_->node().mem().alloc(256).addr();
}

int Rank::wire_tag(int tag) const {
  if (tag == kAnyTag) {
    if (context_ != 0) {
      throw std::invalid_argument("MPI_ANY_TAG is only supported on the world communicator");
    }
    return kAnyTag;
  }
  if (tag < 0 || tag >= kContextStride) throw std::invalid_argument("tag out of range");
  return context_ * kContextStride + tag;
}

int Rank::to_world(int comm_rank) const {
  return members_.at(static_cast<std::size_t>(comm_rank));
}

int Rank::from_world(int world_rank) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == world_rank) return static_cast<int>(i);
  }
  return -1;
}

Status Rank::translate(Status status) const {
  status.source = from_world(status.source);
  if (status.tag >= 0) status.tag -= context_ * kContextStride;
  return status;
}

Task<Status> Rank::probe(int src, int tag) {
  const Status status =
      co_await channel_->probe(src == kAnySource ? kAnySource : to_world(src), wire_tag(tag));
  co_return translate(status);
}

Task<std::unique_ptr<Rank>> Rank::split(int color, int key, std::uint64_t scratch) {
  const int n = size();
  // Exchange (color, key, world_rank) triples: allgather over this comm.
  // Workspace layout: [0, 16) my triple+pad, [64, 64 + 16*n) gathered.
  auto& mem = channel_->node().mem();
  {
    hw::Buffer* buffer = mem.find(scratch);
    if (buffer == nullptr || scratch + 64 + 16ull * static_cast<std::uint32_t>(n) >
                                 buffer->addr() + buffer->size()) {
      throw std::invalid_argument("split: scratch too small");
    }
    if (buffer->has_data()) {
      auto w = mem.window(scratch, 16);
      std::int32_t triple[4] = {color, key, to_world(rank()), 0};
      std::memcpy(w.data(), triple, 16);
    }
  }
  co_await allgather(scratch, 16, scratch + 64);

  struct Entry {
    std::int32_t color, key, world;
  };
  std::vector<Entry> entries;
  {
    hw::Buffer* buffer = mem.find(scratch);
    if (!buffer->has_data()) {
      throw std::invalid_argument("split: scratch must be a data-carrying buffer");
    }
    auto w = mem.window(scratch + 64, 16ull * static_cast<std::uint32_t>(n));
    for (int i = 0; i < n; ++i) {
      std::int32_t triple[4];
      std::memcpy(triple, w.data() + 16 * i, 16);
      entries.push_back(Entry{triple[0], triple[1], triple[2]});
    }
  }

  // Deterministic grouping: colors in ascending order; within a color,
  // order by (key, world rank).
  std::vector<std::int32_t> colors;
  for (const Entry& e : entries) {
    if (std::find(colors.begin(), colors.end(), e.color) == colors.end()) {
      colors.push_back(e.color);
    }
  }
  std::sort(colors.begin(), colors.end());

  const int base = channel_->allocate_contexts(static_cast<int>(colors.size()));
  const auto my_color_index = static_cast<int>(
      std::find(colors.begin(), colors.end(), color) - colors.begin());
  const int new_context = base + my_color_index;
  if (new_context > 31) throw std::runtime_error("split: context ids exhausted");

  std::vector<Entry> mine;
  for (const Entry& e : entries) {
    if (e.color == color) mine.push_back(e);
  }
  std::sort(mine.begin(), mine.end(), [](const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.world < b.world;
  });

  std::vector<int> members;
  int my_index = -1;
  const int me_world = to_world(rank());
  for (const Entry& e : mine) {
    if (e.world == me_world) my_index = static_cast<int>(members.size());
    members.push_back(e.world);
  }
  co_return std::unique_ptr<Rank>(new Rank(*channel_, std::move(members), my_index,
                                           new_context));
}

Task<> Rank::waitall(std::vector<RequestPtr> requests) {
  for (RequestPtr& request : requests) co_await channel_->wait(request);
}

Task<std::size_t> Rank::waitany(std::vector<RequestPtr>& requests) {
  if (requests.empty()) throw std::invalid_argument("waitany: empty request list");
  // Spin on test() like MPICH's MPI_Waitany: each sweep drives the
  // progress engine; the short sleep models one spin-loop iteration.
  for (;;) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (requests[i]->done() || co_await channel_->test(requests[i])) co_return i;
    }
    co_await channel_->node().engine().sleep(us(0.2));
  }
}

Task<bool> Rank::testall(std::vector<RequestPtr>& requests) {
  bool all = true;
  for (RequestPtr& request : requests) {
    if (!co_await channel_->test(request)) all = false;
  }
  co_return all;
}

Task<> Rank::send(int dst, int tag, std::uint64_t addr, std::uint32_t len) {
  RequestPtr request = co_await isend(dst, tag, addr, len);
  co_await wait(std::move(request));
}

Task<> Rank::ssend(int dst, int tag, std::uint64_t addr, std::uint32_t len) {
  RequestPtr request = co_await issend(dst, tag, addr, len);
  co_await wait(std::move(request));
}

Task<Status> Rank::recv(int src, int tag, std::uint64_t addr, std::uint32_t capacity) {
  RequestPtr request = co_await irecv(src, tag, addr, capacity);
  co_await wait(request);
  co_return translate(request->status());
}

Task<Status> Rank::sendrecv(int dst, int send_tag, std::uint64_t send_addr,
                            std::uint32_t send_len, int src, int recv_tag,
                            std::uint64_t recv_addr, std::uint32_t capacity) {
  RequestPtr rx = co_await irecv(src, recv_tag, recv_addr, capacity);
  RequestPtr tx = co_await isend(dst, send_tag, send_addr, send_len);
  co_await wait(rx);
  co_await wait(std::move(tx));
  co_return translate(rx->status());
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

Task<> Rank::barrier() {
  const int n = size();
  const int me = rank();
  const int tag = kCollectiveTagBase + 16 * barrier_epoch_++;
  for (int round = 0, hop = 1; hop < n; ++round, hop <<= 1) {
    const int to = (me + hop) % n;
    const int from = (me - hop % n + n) % n;
    RequestPtr rx = co_await irecv(from, tag + round, barrier_scratch_, 8);
    RequestPtr tx = co_await isend(to, tag + round, barrier_scratch_ + 8, 8);
    co_await wait(std::move(rx));
    co_await wait(std::move(tx));
  }
}

Task<> Rank::bcast(int root, std::uint64_t addr, std::uint32_t len) {
  const int n = size();
  const int me = (rank() - root + n) % n;  // virtual rank, root = 0
  const int tag = kCollectiveTagBase + 1;
  // Binomial tree on virtual ranks.
  int mask = 1;
  while (mask < n) {
    if (me < mask) {
      const int child = me + mask;
      if (child < n) co_await send((child + root) % n, tag, addr, len);
    } else if (me < 2 * mask) {
      const int parent = me - mask;
      co_await recv((parent + root) % n, tag, addr, len);
    }
    mask <<= 1;
  }
}

void Rank::reduce_into(std::uint64_t dst_addr, std::uint64_t src_addr, std::uint32_t count) {
  auto& mem = channel_->node().mem();
  hw::Buffer* dst = mem.find(dst_addr);
  hw::Buffer* src = mem.find(src_addr);
  if (dst == nullptr || src == nullptr) throw std::out_of_range("allreduce: bad buffer");
  if (!dst->has_data() || !src->has_data()) return;  // timing-only buffers
  auto d = mem.window(dst_addr, count * sizeof(double));
  auto s = mem.window(src_addr, count * sizeof(double));
  for (std::uint32_t i = 0; i < count; ++i) {
    double a = 0, b = 0;
    std::memcpy(&a, d.data() + i * sizeof(double), sizeof(double));
    std::memcpy(&b, s.data() + i * sizeof(double), sizeof(double));
    a += b;
    std::memcpy(d.data() + i * sizeof(double), &a, sizeof(double));
  }
}

Task<> Rank::allreduce_sum(std::uint64_t addr, std::uint64_t scratch, std::uint32_t count) {
  const int n = size();
  const int me = rank();
  const std::uint32_t bytes = count * static_cast<std::uint32_t>(sizeof(double));
  const int tag = kCollectiveTagBase + 2;

  // MPICH-style handling of non-power-of-two worlds: the first `rem`
  // even ranks fold their contribution into their odd neighbour, a
  // power-of-two core runs recursive doubling, and the folded ranks get
  // the result back at the end.
  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  const int rem = n - pof2;

  int virtual_rank;
  if (me < 2 * rem && me % 2 == 0) {
    co_await send(me + 1, tag, addr, bytes);
    virtual_rank = -1;  // parked until the result comes back
  } else if (me < 2 * rem) {
    co_await recv(me - 1, tag, scratch, bytes);
    co_await channel_->node().cpu().compute(ns(1.2) * count);
    reduce_into(addr, scratch, count);
    virtual_rank = me / 2;
  } else {
    virtual_rank = me - rem;
  }

  if (virtual_rank >= 0) {
    for (int hop = 1; hop < pof2; hop <<= 1) {
      const int peer_virtual = virtual_rank ^ hop;
      const int peer = peer_virtual < rem ? peer_virtual * 2 + 1 : peer_virtual + rem;
      RequestPtr rx = co_await irecv(peer, tag + hop, scratch, bytes);
      RequestPtr tx = co_await isend(peer, tag + hop, addr, bytes);
      co_await wait(std::move(rx));
      co_await wait(std::move(tx));
      // The reduction arithmetic itself: ~1 ns/double class on this CPU.
      co_await channel_->node().cpu().compute(ns(1.2) * count);
      reduce_into(addr, scratch, count);
    }
  }

  if (me < 2 * rem && me % 2 == 1) {
    co_await send(me - 1, tag + 1, addr, bytes);
  } else if (me < 2 * rem) {
    co_await recv(me + 1, tag + 1, addr, bytes);
  }
}

Task<> Rank::alltoall(std::uint64_t send_addr, std::uint32_t len, std::uint64_t recv_addr) {
  const int n = size();
  const int me = rank();
  const int tag = kCollectiveTagBase + 7;
  auto& mem = channel_->node().mem();
  // Local block.
  hw::Buffer* own = mem.find(send_addr);
  if (own != nullptr && own->has_data()) {
    mem.write(recv_addr + static_cast<std::uint64_t>(me) * len,
              mem.window(send_addr + static_cast<std::uint64_t>(me) * len, len));
  }
  co_await channel_->node().cpu().copy(recv_addr, len);
  // Pairwise exchange: in step s, trade with rank me ^ s (power-of-two
  // worlds) or (me + s) mod n otherwise.
  const bool pow2 = (n & (n - 1)) == 0;
  for (int step = 1; step < n; ++step) {
    const int peer = pow2 ? (me ^ step) : (me + step) % n;
    const int from = pow2 ? peer : (me - step + n) % n;
    RequestPtr rx = co_await irecv(from, tag + step,
                                   recv_addr + static_cast<std::uint64_t>(from) * len, len);
    RequestPtr tx = co_await isend(peer, tag + step,
                                   send_addr + static_cast<std::uint64_t>(peer) * len, len);
    co_await wait(std::move(rx));
    co_await wait(std::move(tx));
  }
}

Task<> Rank::reduce_sum(int root, std::uint64_t addr, std::uint64_t scratch,
                        std::uint32_t count) {
  const int n = size();
  const int me = (rank() - root + n) % n;  // virtual rank, root = 0
  const std::uint32_t bytes = count * static_cast<std::uint32_t>(sizeof(double));
  const int tag = kCollectiveTagBase + 4;
  // Binomial tree on virtual ranks: children push partial sums upward.
  for (int mask = 1; mask < n; mask <<= 1) {
    if ((me & mask) != 0) {
      const int parent = ((me & ~mask) + root) % n;
      co_await send(parent, tag, addr, bytes);
      co_return;
    }
    const int child = me | mask;
    if (child < n) {
      co_await recv((child + root) % n, tag, scratch, bytes);
      co_await channel_->node().cpu().compute(ns(1.2) * count);
      reduce_into(addr, scratch, count);
    }
  }
}

Task<> Rank::gather(int root, std::uint64_t send_addr, std::uint32_t len,
                    std::uint64_t recv_addr) {
  const int n = size();
  const int me = rank();
  const int tag = kCollectiveTagBase + 5;
  if (me != root) {
    co_await send(root, tag, send_addr, len);
    co_return;
  }
  auto& mem = channel_->node().mem();
  hw::Buffer* own = mem.find(send_addr);
  if (own != nullptr && own->has_data()) {
    mem.write(recv_addr + static_cast<std::uint64_t>(me) * len, mem.window(send_addr, len));
  }
  co_await channel_->node().cpu().copy(recv_addr, len);
  std::vector<RequestPtr> reqs;
  for (int r = 0; r < n; ++r) {
    if (r == me) continue;
    reqs.push_back(
        co_await irecv(r, tag, recv_addr + static_cast<std::uint64_t>(r) * len, len));
  }
  co_await waitall(std::move(reqs));
}

Task<> Rank::scatter(int root, std::uint64_t send_addr, std::uint32_t len,
                     std::uint64_t recv_addr) {
  const int n = size();
  const int me = rank();
  const int tag = kCollectiveTagBase + 6;
  if (me != root) {
    co_await recv(root, tag, recv_addr, len);
    co_return;
  }
  auto& mem = channel_->node().mem();
  hw::Buffer* own = mem.find(send_addr);
  if (own != nullptr && own->has_data()) {
    mem.write(recv_addr, mem.window(send_addr + static_cast<std::uint64_t>(me) * len, len));
  }
  co_await channel_->node().cpu().copy(recv_addr, len);
  std::vector<RequestPtr> reqs;
  for (int r = 0; r < n; ++r) {
    if (r == me) continue;
    reqs.push_back(
        co_await isend(r, tag, send_addr + static_cast<std::uint64_t>(r) * len, len));
  }
  co_await waitall(std::move(reqs));
}

Task<> Rank::allgather(std::uint64_t send_addr, std::uint32_t len, std::uint64_t recv_addr) {
  const int n = size();
  const int me = rank();
  const int tag = kCollectiveTagBase + 3;
  auto& mem = channel_->node().mem();
  // Place own contribution.
  hw::Buffer* own = mem.find(send_addr);
  if (own != nullptr && own->has_data()) {
    mem.write(recv_addr + static_cast<std::uint64_t>(me) * len, mem.window(send_addr, len));
  }
  co_await channel_->node().cpu().copy(recv_addr, len);
  // Ring: in step s, forward the block originally owned by (me - s).
  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  for (int step = 0; step < n - 1; ++step) {
    const int send_block = (me - step + n) % n;
    const int recv_block = (me - step - 1 + n) % n;
    RequestPtr rx = co_await irecv(
        left, tag + step, recv_addr + static_cast<std::uint64_t>(recv_block) * len, len);
    RequestPtr tx = co_await isend(
        right, tag + step, recv_addr + static_cast<std::uint64_t>(send_block) * len, len);
    co_await wait(std::move(rx));
    co_await wait(std::move(tx));
  }
}

}  // namespace fabsim::mpi

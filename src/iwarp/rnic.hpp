// iWARP RDMA-enabled NIC (RNIC).
//
// Implements the iWARP protocol suite the way the NetEffect NE010e does in
// hardware: verbs work requests are turned into RDMAP messages, cut into
// MPA-aligned DDP segments, carried over a reliable TCP byte stream per
// connection, and framed onto Ethernet. The receive side places tagged
// segments directly into registered user memory (DDP) — no intermediate
// copies. A pipelined protocol engine (initiation interval << latency)
// processes segments from all connections, which is the architectural
// source of the card's multi-connection scalability. All data to and from
// host memory crosses the card's internal half-duplex PCI-X bus — the
// bandwidth bottleneck the paper reports.
//
// The stack is event-driven (no coroutines inside the NIC); only the
// host-facing verbs calls are awaitable. Optional frame-loss injection
// exercises the go-back-N recovery path.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "fault/plan.hpp"
#include "hw/fabric.hpp"
#include "hw/node.hpp"
#include "iwarp/config.hpp"
#include "sim/scope.hpp"
#include "verbs/verbs.hpp"

namespace fabsim::iwarp {

class Rnic;

/// iWARP queue pair: one QP <-> one TCP connection.
class Qp final : public verbs::QueuePair {
 public:
  Task<> post_send(verbs::SendWr wr) override;
  Task<> post_recv(verbs::RecvWr wr) override;
  int qp_num() const override { return qp_num_; }
  bool connected() const override { return conn_id_ >= 0; }
  bool in_error() const override { return in_error_; }

 private:
  friend class Rnic;
  Qp(Rnic& nic, int qp_num, verbs::CompletionQueue& send_cq, verbs::CompletionQueue& recv_cq)
      : nic_(&nic), qp_num_(qp_num), send_cq_(&send_cq), recv_cq_(&recv_cq) {}

  FABSIM_ENGINE_LOCAL;  // wiring fixed at create_qp/connect time
  Rnic* nic_;
  int qp_num_;
  FABSIM_OWNED_BY(nic_->fabric_port());  // QP state advances only inside
                                         // the owning NIC's events
  int conn_id_ = -1;
  bool in_error_ = false;
  verbs::CompletionQueue* send_cq_;
  verbs::CompletionQueue* recv_cq_;
};

class Rnic final : public verbs::Device, public hw::FrameSink {
 public:
  Rnic(hw::Node& node, hw::Switch& fabric, RnicConfig config);

  // --- verbs::Device ---
  Task<verbs::MrKey> reg_mr(std::uint64_t addr, std::uint64_t len) override;
  Task<> dereg_mr(verbs::MrKey key) override;
  std::unique_ptr<verbs::QueuePair> create_qp(verbs::CompletionQueue& send_cq,
                                              verbs::CompletionQueue& recv_cq) override;
  std::shared_ptr<Event> watch_placement(std::uint64_t addr, std::uint64_t len) override;
  hw::MemoryRegistry& registry() override { return registry_; }
  void establish(verbs::QueuePair& local, verbs::QueuePair& remote) override {
    connect(local, remote);
  }

  // --- hw::FrameSink ---
  void deliver(hw::Frame frame) override;

  /// Establish the TCP connection backing two QPs (out-of-band, instant —
  /// the paper pre-establishes all connections before timing).
  static void connect(verbs::QueuePair& a, verbs::QueuePair& b);

  hw::Node& node() { return *node_; }
  const RnicConfig& config() const { return config_; }
  int fabric_port() const { return port_; }

  // Statistics for tests and utilization studies.
  Time pcix_busy_time() const { return pcix_.busy_time(); }
  std::uint64_t pcix_bytes() const { return pcix_.bytes_transferred(); }
  Time tx_engine_busy_time() const { return tx_engine_.busy_time(); }
  Time rx_engine_busy_time() const { return rx_engine_.busy_time(); }
  Time tx_link_busy_time() const { return tx_link_.busy_time(); }
  std::uint64_t segments_sent() const { return segments_sent_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t rto_fires() const { return rto_fires_; }
  std::uint64_t retransmitted_bytes() const { return retransmitted_bytes_; }
  std::uint64_t corrupt_discards() const { return corrupt_discards_; }
  std::uint64_t retry_exceeded_completions() const { return retry_exceeded_completions_; }
  std::uint64_t conn_errors() const { return conn_errors_; }

 private:
  friend class Qp;

  enum class MsgKind : std::uint8_t { kUntagged, kTaggedWrite, kReadRequest, kReadResponse };

  /// An RDMAP message queued for transmission.
  struct OutMsg {
    MsgKind kind = MsgKind::kUntagged;
    std::uint64_t msg_id = 0;
    std::uint64_t wr_id = 0;
    bool signaled = true;
    std::uint32_t len = 0;          ///< payload length in the stream
    std::uint32_t offset = 0;       ///< next byte to segment
    std::uint64_t remote_addr = 0;  ///< tagged placement target / read source
    verbs::MrKey rkey = 0;
    std::uint64_t read_sink_addr = 0;  ///< requester-side sink (read only)
    verbs::MrKey read_sink_key = 0;
    std::uint32_t read_len = 0;
    std::shared_ptr<std::vector<std::byte>> data;  ///< source snapshot, optional
    bool first_segment_pending = true;
  };

  /// One TCP segment on the wire (MPA keeps DDP headers aligned, so
  /// segments never span RDMAP messages — mirrored here).
  struct Segment {
    int dst_conn_id = -1;
    std::uint64_t seq = 0;  ///< stream offset of payload[0]
    std::uint32_t payload_len = 0;
    std::uint64_t ack = 0;  ///< piggybacked cumulative ack
    MsgKind kind = MsgKind::kUntagged;
    std::uint64_t msg_id = 0;
    std::uint32_t msg_len = 0;
    std::uint32_t msg_offset = 0;
    std::uint64_t place_addr = 0;  ///< tagged target of this segment
    verbs::MrKey rkey = 0;
    std::uint64_t wr_id = 0;
    bool signaled = true;
    bool first_of_message = false;
    bool last_of_message = false;
    std::uint64_t read_sink_addr = 0;
    verbs::MrKey read_sink_key = 0;
    std::uint32_t read_len = 0;
    std::shared_ptr<std::vector<std::byte>> data;  ///< payload slice, optional

    /// For a read request, `place_addr` is unused and the remote source
    /// travels in the tagged-address slot.
    std::uint64_t remote_source_addr() const { return place_addr; }
  };

  /// Progress of one inbound message.
  struct RxMsg {
    std::uint32_t placed = 0;
    std::uint64_t target_addr = 0;
    std::uint64_t recv_wr_id = 0;  ///< untagged only
  };

  /// An RDMA read posted locally whose response has not yet been fully
  /// placed; tracked so retry exhaustion can flush it with an error
  /// completion instead of letting the requester hang.
  struct PendingRead {
    std::uint64_t wr_id = 0;
    std::uint32_t len = 0;
    bool signaled = true;
  };

  /// Per-connection state (this side).
  struct Conn {
    FABSIM_ENGINE_LOCAL;  // wiring fixed at connect() time
    Qp* qp = nullptr;
    Rnic* peer = nullptr;
    int peer_conn_id = -1;

    FABSIM_OWNED_BY(qp->nic_->fabric_port());  // TCP/RDMAP machine state:
                                               // advances only inside the
                                               // owning NIC's events
    // Transmit.
    std::deque<OutMsg> sendq;
    std::uint64_t next_msg_id = 1;
    std::uint64_t snd_nxt = 0;  ///< next stream byte to send
    std::uint64_t snd_una = 0;  ///< oldest unacknowledged byte
    std::deque<Segment> inflight;  ///< copies for go-back-N retransmit
    std::uint64_t timer_gen = 0;
    bool timer_armed = false;
    int retry_count = 0;  ///< consecutive RTO fires without ack progress
    std::vector<PendingRead> pending_reads;

    // Receive.
    std::uint64_t rcv_nxt = 0;
    int segs_since_ack = 0;
    bool delack_armed = false;
    std::map<std::uint64_t, RxMsg> rx_msgs;
    std::deque<verbs::RecvWr> recv_queue;
  };

  struct Watch {
    std::uint64_t addr;
    std::uint64_t len;
    std::shared_ptr<Event> event;
  };

  Task<> post_send_impl(Qp& qp, verbs::SendWr wr);
  Task<> post_recv_impl(Qp& qp, verbs::RecvWr wr);
  static std::shared_ptr<std::vector<std::byte>> snapshot(hw::AddressSpace& mem,
                                                          std::uint64_t addr, std::uint32_t len);

  int new_conn(Qp& qp);
  int conn_index(const Conn& conn) const;
  void pump(Conn& conn);
  void emit_segment(Conn& conn, OutMsg& msg, std::uint32_t chunk);
  void transmit(Conn& conn, Segment segment, bool retransmit);
  void send_pure_ack(Conn& conn);
  void handle_ack(Conn& conn, std::uint64_t ack);
  void arm_timer(Conn& conn);
  void on_timeout(int conn_id, std::uint64_t gen);
  /// Retry exhaustion (TCP gives up): flush every outstanding signaled
  /// WR — un-completed sends/writes still in the sendq, pending reads,
  /// posted receives — with kRetryExceeded, then notify the peer
  /// out-of-band (the RST analog) so its side errors out too.
  void enter_error(Conn& conn);
  void peer_conn_error(int conn_id);
  /// Error completion for a message that will never finish transmitting.
  void flush_outmsg(Conn& conn, const OutMsg& msg);
  void handle_read_request(Conn& conn, const Segment& request);
  void complete_placement(Conn& conn, const Segment& segment);
  void check_watches(std::uint64_t addr, std::uint32_t len);

  Engine& engine() { return node_->engine(); }

  // Scope/ownership annotations (scripts/scope_check.py, src/sim/scope.hpp).
  FABSIM_ENGINE_LOCAL;  // engine plumbing + run-constant wiring
  hw::Node* node_;
  hw::Switch* fabric_;
  RnicConfig config_;
  int port_;
  FABSIM_OWNED_BY(port_);  // mutable NIC/protocol state: confined to this
                           // node's events (or scope -1 wire handoffs)
  hw::MemoryRegistry registry_;
  hw::PcixBus pcix_;
  PipelinedServer tx_engine_;
  PipelinedServer rx_engine_;
  SerialServer tx_link_;
  /// Adapter-local loss (`config.loss_rate`) expressed as a private
  /// FaultPlan, so the legacy knob and engine-level injectors share one
  /// decision surface (and one seeded draw sequence).
  fault::FaultPlan loss_plan_;
  int next_qp_num_ = 1;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<Watch> watches_;
  std::uint64_t segments_sent_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t rto_fires_ = 0;
  std::uint64_t retransmitted_bytes_ = 0;
  std::uint64_t corrupt_discards_ = 0;
  std::uint64_t retry_exceeded_completions_ = 0;
  std::uint64_t conn_errors_ = 0;
};

}  // namespace fabsim::iwarp

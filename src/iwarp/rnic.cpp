#include "iwarp/rnic.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "check/audits.hpp"

namespace fabsim::iwarp {

namespace {
/// Stream bytes consumed by an RDMA Read Request control message.
constexpr std::uint32_t kReadRequestBytes = 28;
}  // namespace

// ---------------------------------------------------------------------------
// Qp
// ---------------------------------------------------------------------------

Task<> Qp::post_send(verbs::SendWr wr) { return nic_->post_send_impl(*this, wr); }

Task<> Qp::post_recv(verbs::RecvWr wr) { return nic_->post_recv_impl(*this, wr); }

// ---------------------------------------------------------------------------
// Rnic: construction / verbs surface
// ---------------------------------------------------------------------------

Rnic::Rnic(hw::Node& node, hw::Switch& fabric, RnicConfig config)
    : node_(&node),
      fabric_(&fabric),
      config_(config),
      port_(fabric.attach(*this)),
      registry_(config.reg),
      pcix_(config.pcix),
      loss_plan_(config.rng_seed) {
  if (config_.loss_rate > 0.0) loss_plan_.drop_probability(config_.loss_rate);
  pcix_.set_owner(&node.engine(), node.id());
}

Task<verbs::MrKey> Rnic::reg_mr(std::uint64_t addr, std::uint64_t len) {
  co_await node_->cpu().compute(registry_.register_cost(len));
  co_return registry_.register_region(addr, len);
}

Task<> Rnic::dereg_mr(verbs::MrKey key) {
  const auto* region = registry_.lookup(key);
  if (region == nullptr) throw std::invalid_argument("iwarp: dereg_mr of unknown key");
  const Time cost = registry_.deregister_cost(region->len);
  registry_.deregister(key);
  co_await node_->cpu().compute(cost);
}

std::unique_ptr<verbs::QueuePair> Rnic::create_qp(verbs::CompletionQueue& send_cq,
                                                  verbs::CompletionQueue& recv_cq) {
  return std::unique_ptr<Qp>(new Qp(*this, next_qp_num_++, send_cq, recv_cq));
}

std::shared_ptr<Event> Rnic::watch_placement(std::uint64_t addr, std::uint64_t len) {
  auto event = std::make_shared<Event>(engine());
  watches_.push_back(Watch{addr, len, event});
  return event;
}

void Rnic::connect(verbs::QueuePair& a, verbs::QueuePair& b) {
  auto& qa = dynamic_cast<Qp&>(a);
  auto& qb = dynamic_cast<Qp&>(b);
  if (qa.connected() || qb.connected()) throw std::logic_error("iwarp: QP already connected");
  const int ca = qa.nic_->new_conn(qa);
  const int cb = qb.nic_->new_conn(qb);
  Conn& conn_a = *qa.nic_->conns_[static_cast<std::size_t>(ca)];
  Conn& conn_b = *qb.nic_->conns_[static_cast<std::size_t>(cb)];
  conn_a.peer = qb.nic_;
  conn_a.peer_conn_id = cb;
  conn_b.peer = qa.nic_;
  conn_b.peer_conn_id = ca;
  qa.conn_id_ = ca;
  qb.conn_id_ = cb;
}

int Rnic::new_conn(Qp& qp) {
  conns_.push_back(std::make_unique<Conn>());
  conns_.back()->qp = &qp;
  return static_cast<int>(conns_.size()) - 1;
}

// ---------------------------------------------------------------------------
// Host-facing post paths
// ---------------------------------------------------------------------------

Task<> Rnic::post_send_impl(Qp& qp, verbs::SendWr wr) {
  if (!qp.connected()) throw std::logic_error("iwarp: post_send on unconnected QP");
  if (qp.in_error_) throw std::runtime_error("iwarp: post_send on QP in error state");
  if (wr.sge.length == 0) throw std::invalid_argument("iwarp: zero-length work request");
  if (!registry_.covers(wr.sge.lkey, wr.sge.addr, wr.sge.length)) {
    throw std::invalid_argument("iwarp: sge not covered by lkey");
  }
  co_await node_->cpu().compute(config_.post_send_cpu);

  OutMsg msg{};
  msg.wr_id = wr.wr_id;
  msg.signaled = wr.signaled;
  switch (wr.opcode) {
    case verbs::Opcode::kSend:
      msg.kind = MsgKind::kUntagged;
      msg.len = wr.sge.length;
      break;
    case verbs::Opcode::kRdmaWrite:
      msg.kind = MsgKind::kTaggedWrite;
      msg.len = wr.sge.length;
      msg.remote_addr = wr.remote_addr;
      msg.rkey = wr.rkey;
      break;
    case verbs::Opcode::kRdmaRead:
      msg.kind = MsgKind::kReadRequest;
      msg.len = kReadRequestBytes;
      msg.remote_addr = wr.remote_addr;  // remote source
      msg.rkey = wr.rkey;
      msg.read_sink_addr = wr.sge.addr;  // local sink
      msg.read_sink_key = wr.sge.lkey;
      msg.read_len = wr.sge.length;
      break;
  }
  if (wr.opcode != verbs::Opcode::kRdmaRead) {
    msg.data = snapshot(node_->mem(), wr.sge.addr, wr.sge.length);
  }

  const int conn_id = qp.conn_id_;
  // Doorbell: the NIC picks the WQE up `doorbell` later; the host call
  // returns immediately after ringing it.
  // Scope label: node-confined continuation (see sim/schedule.hpp); the
  // wire handoffs below stay unscoped because they touch the switch.
  engine().post(engine().now() + config_.doorbell, /*scope=*/port_,
                [this, conn_id, msg = std::move(msg)]() mutable {
                  Conn& conn = *conns_[static_cast<std::size_t>(conn_id)];
                  if (conn.qp->in_error_) {
                    // Raced the error transition: flush instead of queueing.
                    flush_outmsg(conn, msg);
                    return;
                  }
                  msg.msg_id = conn.next_msg_id++;
                  if (msg.kind == MsgKind::kReadRequest) {
                    // HOT-OK(pending-read list bounded by outstanding RDMA reads)
                    conn.pending_reads.push_back(
                        PendingRead{msg.wr_id, msg.read_len, msg.signaled});
                  }
                  // HOT-OK(send queue bounded by posted WRs; capacity reused after warm-up)
                  conn.sendq.push_back(std::move(msg));
                  pump(conn);
                });
}

Task<> Rnic::post_recv_impl(Qp& qp, verbs::RecvWr wr) {
  if (!qp.connected()) throw std::logic_error("iwarp: post_recv on unconnected QP");
  if (qp.in_error_) throw std::runtime_error("iwarp: post_recv on QP in error state");
  if (!registry_.covers(wr.sge.lkey, wr.sge.addr, wr.sge.length)) {
    throw std::invalid_argument("iwarp: recv sge not covered by lkey");
  }
  co_await node_->cpu().compute(config_.post_recv_cpu);
  conns_[static_cast<std::size_t>(qp.conn_id_)]->recv_queue.push_back(wr);
}

std::shared_ptr<std::vector<std::byte>> Rnic::snapshot(hw::AddressSpace& mem, std::uint64_t addr,
                                                       std::uint32_t len) {
  hw::Buffer* buffer = mem.find(addr);
  if (buffer == nullptr || addr + len > buffer->addr() + buffer->size()) {
    // HOT-OK(protocol-violation guard; unreachable in a conforming run)
    throw std::out_of_range("iwarp: source outside any buffer");
  }
  if (!buffer->has_data()) return nullptr;
  auto view = mem.window(addr, len);
  // HOT-OK(per-message wire payload snapshot; stack-level state outside the engine's tracked zero-alloc contract)
  return std::make_shared<std::vector<std::byte>>(view.begin(), view.end());
}

// ---------------------------------------------------------------------------
// Transmit path
// ---------------------------------------------------------------------------

void Rnic::pump(Conn& conn) {
  // Scope trap: all transmit-side NIC state is FABSIM_OWNED_BY(port_).
  FABSIM_AUDIT_OWNED(engine(), check::Layer::kIwarp, port_, "Rnic::pump");
  if (conn.qp->in_error_) return;
  while (!conn.sendq.empty()) {
    OutMsg& msg = conn.sendq.front();
    while (msg.offset < msg.len) {
      const std::uint32_t chunk = std::min<std::uint32_t>(config_.mss, msg.len - msg.offset);
      if (conn.snd_nxt - conn.snd_una + chunk > config_.window) return;  // window closed
      emit_segment(conn, msg, chunk);
    }
    conn.sendq.pop_front();
  }
}

FABSIM_HOT void Rnic::emit_segment(Conn& conn, OutMsg& msg, std::uint32_t chunk) {
  Segment segment{};
  segment.dst_conn_id = conn.peer_conn_id;
  segment.seq = conn.snd_nxt;
  segment.payload_len = chunk;
  segment.ack = conn.rcv_nxt;  // piggybacked cumulative ack
  segment.kind = msg.kind;
  segment.msg_id = msg.msg_id;
  segment.msg_len = msg.len;
  segment.msg_offset = msg.offset;
  segment.rkey = msg.rkey;
  segment.wr_id = msg.wr_id;
  segment.signaled = msg.signaled;
  segment.read_sink_addr = msg.read_sink_addr;
  segment.read_sink_key = msg.read_sink_key;
  segment.read_len = msg.read_len;
  segment.first_of_message = msg.first_segment_pending;
  if (msg.kind == MsgKind::kTaggedWrite || msg.kind == MsgKind::kReadResponse) {
    segment.place_addr = msg.remote_addr + msg.offset;
  } else if (msg.kind == MsgKind::kReadRequest) {
    segment.place_addr = msg.remote_addr;  // remote source (see remote_source_addr())
  }
  if (msg.data != nullptr) {
    // HOT-OK(per-segment wire payload buffer; stack-level state outside the engine's tracked zero-alloc contract)
    segment.data = std::make_shared<std::vector<std::byte>>(
        msg.data->begin() + msg.offset, msg.data->begin() + msg.offset + chunk);
  }
  if (check::InvariantMonitor* monitor = engine().monitor()) {
    // TCP window legality: pump() already refused segments that do not
    // fit, so an overrun here means the sliding-window bookkeeping broke.
    check::audit_iwarp_window(conn.snd_nxt, conn.snd_una, chunk, config_.window)
        .report(monitor, engine().now(), check::Layer::kIwarp, node_->id());
  }
  msg.offset += chunk;
  msg.first_segment_pending = false;
  segment.last_of_message = (msg.offset == msg.len);
  conn.snd_nxt += chunk;
  // HOT-OK(inflight window bounded by the send window; capacity reused after warm-up)
  conn.inflight.push_back(segment);
  transmit(conn, std::move(segment), /*retransmit=*/false);
  arm_timer(conn);
}

namespace {
const char* kind_name(int k) {
  switch (k) {
    case 0: return "untagged";
    case 1: return "tagged-write";
    case 2: return "read-req";
    case 3: return "read-resp";
  }
  return "?";
}
}  // namespace

void Rnic::transmit(Conn& conn, Segment segment, bool retransmit) {
  ++segments_sent_;
  if (retransmit) {
    ++retransmits_;
    retransmitted_bytes_ += segment.payload_len;
  }
  if (engine().tracer() != nullptr) {
    engine().trace(TraceCategory::kProto, node_->id(),
                   std::string(retransmit ? "TCP retransmit " : "TCP segment ") +
                       kind_name(static_cast<int>(segment.kind)) + " seq=" +
                       std::to_string(segment.seq) + " len=" +
                       std::to_string(segment.payload_len) +
                       (segment.last_of_message ? " [last]" : ""));
  }

  const bool carries_data =
      segment.kind == MsgKind::kUntagged || segment.kind == MsgKind::kTaggedWrite ||
      segment.kind == MsgKind::kReadResponse;

  // Stage 1: fetch payload (and descriptor, for the first segment of a
  // message) from host memory across PCIe and the internal PCI-X bus.
  // Read responses are fetched by the NIC autonomously — same path.
  Time ready = engine().now();
  if (segment.first_of_message && !retransmit) ready += config_.wqe_fetch;
  if (carries_data) {
    const Time pcie_done = node_->pcie().dma_read(ready, segment.payload_len + 64);
    ready = pcix_.transfer(pcie_done, segment.payload_len + 32);
  }

  // Stage 2: protocol engine (TCP/IP + MPA + DDP + RDMAP processing).
  const Time occupancy = config_.tx_occupancy +
                         config_.engine_byte_rate.bytes_time(segment.payload_len) +
                         (segment.first_of_message ? config_.per_message_overhead : 0);
  engine().charge_phase(Phase::kNic, node_->id(), occupancy);
  const Time engine_done = tx_engine_.book(ready, occupancy, config_.tx_latency);

  // Stage 3: Ethernet serialization onto the NIC->switch link.
  const std::uint32_t wire_bytes = segment.payload_len + config_.seg_overhead;
  const Time serialization = fabric_->config().link_rate.bytes_time(wire_bytes);
  engine().charge_phase(Phase::kWire, node_->id(), serialization);
  const Time sent = tx_link_.book(engine_done, serialization);

  bool drop = false;
  if (config_.loss_rate > 0.0) {
    const fault::FaultSite site{engine().now(), port_, conn.peer->port_, wire_bytes};
    drop = loss_plan_.on_frame(site).action == fault::FaultAction::kDrop;
  }
  const bool completes = segment.last_of_message && segment.signaled &&
                         (segment.kind == MsgKind::kUntagged ||
                          segment.kind == MsgKind::kTaggedWrite) &&
                         !retransmit;
  Qp* qp = conn.qp;
  Rnic* peer = conn.peer;
  const int src = port_;
  const int dst = peer->port_;
  engine().post(sent, [this, segment = std::move(segment), drop, completes, qp, peer, src,
                       dst]() mutable {
    if (completes) {
      const auto type = segment.kind == MsgKind::kUntagged ? verbs::Completion::Type::kSend
                                                           : verbs::Completion::Type::kRdmaWrite;
      qp->send_cq_->push(verbs::Completion{segment.wr_id, type, segment.msg_len, qp->qp_num()});
    }
    if (!drop) {
      fabric_->ingress(hw::Frame{src, dst, segment.payload_len + config_.seg_overhead,
                                 std::move(segment)});
    }
  });
}

void Rnic::send_pure_ack(Conn& conn) {
  ++acks_sent_;
  conn.segs_since_ack = 0;
  Segment ack{};
  ack.dst_conn_id = conn.peer_conn_id;
  ack.payload_len = 0;
  ack.ack = conn.rcv_nxt;
  const Time ack_serialization = fabric_->config().link_rate.bytes_time(config_.ack_wire_bytes);
  engine().charge_phase(Phase::kWire, node_->id(), ack_serialization);
  const Time sent = tx_link_.book(engine().now(), ack_serialization);
  bool drop = false;
  if (config_.loss_rate > 0.0) {
    const fault::FaultSite site{engine().now(), port_, conn.peer->port_, config_.ack_wire_bytes};
    drop = loss_plan_.on_frame(site).action == fault::FaultAction::kDrop;
  }
  Rnic* peer = conn.peer;
  const int src = port_;
  engine().post(sent, [this, ack = std::move(ack), drop, peer, src]() mutable {
    if (!drop) {
      fabric_->ingress(hw::Frame{src, peer->port_, config_.ack_wire_bytes, std::move(ack)});
    }
  });
}

// ---------------------------------------------------------------------------
// Reliability: cumulative acks + go-back-N
// ---------------------------------------------------------------------------

void Rnic::handle_ack(Conn& conn, std::uint64_t ack) {
  if (check::InvariantMonitor* monitor = engine().monitor()) {
    // Byte-stream conservation: a cumulative ack beyond snd_nxt would
    // acknowledge bytes that were never put on the stream.
    check::audit_iwarp_ack_window(ack, conn.snd_una, conn.snd_nxt)
        .report(monitor, engine().now(), check::Layer::kIwarp, node_->id());
  }
  if (ack <= conn.snd_una) return;
  conn.snd_una = ack;
  conn.retry_count = 0;  // forward progress: the stream is alive
  while (!conn.inflight.empty() &&
         conn.inflight.front().seq + conn.inflight.front().payload_len <= conn.snd_una) {
    conn.inflight.pop_front();
  }
  ++conn.timer_gen;  // invalidate the running timer
  conn.timer_armed = false;
  if (conn.snd_una < conn.snd_nxt) arm_timer(conn);
  pump(conn);  // window may have opened
}

void Rnic::arm_timer(Conn& conn) {
  // Timers only matter when frames can vanish: injected loss (local knob
  // or an engine-level fault injector) or a bounded (tail-dropping)
  // switch buffer.
  const bool lossy = config_.loss_rate > 0.0 || fabric_->config().max_queue_bytes > 0 ||
                     fault::faults_armed(engine());
  if (conn.timer_armed || !lossy) return;
  conn.timer_armed = true;
  const std::uint64_t gen = conn.timer_gen;
  const int conn_id = conn_index(conn);
  engine().post(engine().now() + config_.rto, /*scope=*/port_,
                [this, conn_id, gen] { on_timeout(conn_id, gen); });
}

int Rnic::conn_index(const Conn& conn) const {
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].get() == &conn) return static_cast<int>(i);
  }
  // HOT-OK(protocol-violation guard; unreachable in a conforming run)
  throw std::logic_error("iwarp: unknown connection");
}

void Rnic::on_timeout(int conn_id, std::uint64_t gen) {
  FABSIM_AUDIT_OWNED(engine(), check::Layer::kIwarp, port_, "Rnic::on_timeout");
  Conn& conn = *conns_[static_cast<std::size_t>(conn_id)];
  if (gen != conn.timer_gen || conn.snd_una >= conn.snd_nxt) return;
  conn.timer_armed = false;
  ++rto_fires_;
  ++conn.retry_count;
  engine().trace(TraceCategory::kProto, node_->id(),
                 "TCP RTO fired: go-back-N from seq=" + std::to_string(conn.snd_una) +
                     " (retry " + std::to_string(conn.retry_count) + "/" +
                     std::to_string(config_.retry_limit) + ")");
  if (conn.retry_count > config_.retry_limit) {
    // TCP gives up: the connection resets instead of retrying forever —
    // a fabric partition must surface as an error, not a hang.
    enter_error(conn);
    return;
  }
  // Go-back-N: resend everything outstanding.
  for (const Segment& segment : conn.inflight) {
    Segment copy = segment;
    copy.ack = conn.rcv_nxt;
    transmit(conn, std::move(copy), /*retransmit=*/true);
  }
  ++conn.timer_gen;
  arm_timer(conn);
}

void Rnic::flush_outmsg(Conn& conn, const OutMsg& msg) {
  if (!msg.signaled || msg.kind == MsgKind::kReadResponse) return;
  verbs::Completion completion{};
  completion.wr_id = msg.wr_id;
  completion.qp_num = conn.qp->qp_num();
  completion.status = verbs::Completion::Status::kRetryExceeded;
  switch (msg.kind) {
    case MsgKind::kUntagged:
      completion.type = verbs::Completion::Type::kSend;
      completion.byte_len = msg.len;
      break;
    case MsgKind::kTaggedWrite:
      completion.type = verbs::Completion::Type::kRdmaWrite;
      completion.byte_len = msg.len;
      break;
    case MsgKind::kReadRequest:
      completion.type = verbs::Completion::Type::kRdmaRead;
      completion.byte_len = msg.read_len;
      break;
    case MsgKind::kReadResponse:
      return;  // responder-generated: the requester's side owns the error
  }
  conn.qp->send_cq_->push(completion);
  ++retry_exceeded_completions_;
}

void Rnic::enter_error(Conn& conn) {
  if (conn.qp->in_error_) return;
  conn.qp->in_error_ = true;
  conn.timer_armed = false;
  ++conn.timer_gen;
  ++conn_errors_;
  engine().trace(TraceCategory::kProto, node_->id(),
                 "TCP retry limit exhausted: QP " + std::to_string(conn.qp->qp_num()) +
                     " connection reset -> error state");
  // Sends and writes complete optimistically at first wire handoff, so
  // only messages whose final segment never left (still in the sendq)
  // owe a completion. Read requests are owned by the pending-read list;
  // drop their sendq duplicates first so they flush exactly once.
  for (const OutMsg& msg : conn.sendq) {
    if (msg.kind == MsgKind::kReadRequest) {
      for (auto it = conn.pending_reads.begin(); it != conn.pending_reads.end(); ++it) {
        if (it->wr_id == msg.wr_id) {
          conn.pending_reads.erase(it);
          break;
        }
      }
    }
    flush_outmsg(conn, msg);
  }
  conn.sendq.clear();
  conn.inflight.clear();
  // Reads whose request is already on the wire (or acked) but whose
  // response will never arrive.
  for (const PendingRead& read : conn.pending_reads) {
    if (!read.signaled) continue;
    verbs::Completion completion{};
    completion.wr_id = read.wr_id;
    completion.byte_len = read.len;
    completion.qp_num = conn.qp->qp_num();
    completion.status = verbs::Completion::Status::kRetryExceeded;
    completion.type = verbs::Completion::Type::kRdmaRead;
    conn.qp->send_cq_->push(completion);
    ++retry_exceeded_completions_;
  }
  conn.pending_reads.clear();
  // A dead connection also flushes posted receives (the RQ drains with
  // flush errors when a QP enters error) — a receiver blocked on its
  // recv CQ surfaces the failure instead of hanging.
  for (const verbs::RecvWr& wr : conn.recv_queue) {
    verbs::Completion completion{};
    completion.wr_id = wr.wr_id;
    completion.qp_num = conn.qp->qp_num();
    completion.status = verbs::Completion::Status::kRetryExceeded;
    completion.type = verbs::Completion::Type::kRecv;
    conn.qp->recv_cq_->push(completion);
    ++retry_exceeded_completions_;
  }
  conn.recv_queue.clear();
  // Out-of-band peer notification: stands in for the RST the peer's TCP
  // would see (or its own retry exhaustion) — both sides observe the
  // teardown, neither hangs.
  if (conn.peer != nullptr) conn.peer->peer_conn_error(conn.peer_conn_id);
}

void Rnic::peer_conn_error(int conn_id) {
  Conn& conn = *conns_.at(static_cast<std::size_t>(conn_id));
  if (conn.qp->in_error_) return;
  engine().trace(TraceCategory::kProto, node_->id(),
                 "TCP peer failure: QP " + std::to_string(conn.qp->qp_num()) +
                     " -> error state (connection reset by peer)");
  enter_error(conn);
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void Rnic::deliver(hw::Frame frame) {
  // Scope trap: delivery mutates this NIC's receive state, so the
  // carrying event must be labelled with this node's scope (or -1).
  FABSIM_AUDIT_OWNED(engine(), check::Layer::kIwarp, port_, "Rnic::deliver");
  if (frame.corrupted) {
    // Failed Ethernet CRC / MPA marker check: the segment is discarded and
    // the TCP go-back-N machinery recovers it like any other loss.
    ++corrupt_discards_;
    return;
  }
  Segment segment = std::any_cast<Segment>(std::move(frame.payload));
  Conn& conn = *conns_.at(static_cast<std::size_t>(segment.dst_conn_id));
  if (conn.qp->in_error_) return;  // dead connection: late arrivals discarded

  handle_ack(conn, segment.ack);
  if (segment.payload_len == 0) {
    // Pure ack: account engine occupancy for throughput fidelity only.
    engine().charge_phase(Phase::kNic, node_->id(), config_.ack_occupancy);
    rx_engine_.book(engine().now(), config_.ack_occupancy, config_.ack_occupancy);
    return;
  }

  if (segment.seq != conn.rcv_nxt) {
    // Out of order (a preceding frame was dropped): go-back-N receiver
    // drops the segment and re-asserts the cumulative ack.
    send_pure_ack(conn);
    return;
  }
  conn.rcv_nxt += segment.payload_len;
  ++conn.segs_since_ack;

  const Time occupancy = config_.rx_occupancy +
                         config_.engine_byte_rate.bytes_time(segment.payload_len) +
                         (segment.first_of_message ? config_.per_message_overhead : 0);
  engine().charge_phase(Phase::kNic, node_->id(), occupancy);
  const Time engine_done = rx_engine_.book(engine().now(), occupancy, config_.rx_latency);

  const bool ack_now = conn.segs_since_ack >= config_.ack_every || segment.last_of_message;
  if (ack_now) {
    send_pure_ack(conn);
  } else if (!conn.delack_armed) {
    // Classic delayed-ACK timer: the withheld ack goes out soon even if
    // no further segment arrives (otherwise a sender whose window closed
    // mid-quota would stall forever).
    conn.delack_armed = true;
    const int conn_id = segment.dst_conn_id;
    engine().post(engine().now() + config_.delayed_ack_timeout, /*scope=*/port_, [this, conn_id] {
      Conn& c = *conns_[static_cast<std::size_t>(conn_id)];
      c.delack_armed = false;
      if (c.segs_since_ack > 0) send_pure_ack(c);
    });
  }

  if (segment.kind == MsgKind::kReadRequest) {
    // Read-after-write ordering: ride through the same placement FIFO
    // (PCI-X then PCIe) that earlier tagged writes use, so the snapshot
    // sees every preceding byte of this stream.
    const Time pcix_done = pcix_.transfer(engine_done, 8);
    const Time ordered = node_->pcie().dma_write(pcix_done, 8);
    const int conn_id = segment.dst_conn_id;
    engine().post(ordered, /*scope=*/port_, [this, conn_id, segment = std::move(segment)] {
      handle_read_request(*conns_[static_cast<std::size_t>(conn_id)], segment);
    });
    return;
  }

  // Direct data placement: engine -> PCI-X -> PCIe write into user memory.
  const Time pcix_done = pcix_.transfer(engine_done, segment.payload_len + 32);
  const Time placed = node_->pcie().dma_write(pcix_done, segment.payload_len + 64);
  const int conn_id = segment.dst_conn_id;
  engine().post(placed, /*scope=*/port_, [this, conn_id, segment = std::move(segment)]() mutable {
    complete_placement(*conns_[static_cast<std::size_t>(conn_id)], segment);
  });
}

void Rnic::handle_read_request(Conn& conn, const Segment& request) {
  if (conn.qp->in_error_) return;
  if (!registry_.covers(request.rkey, request.remote_source_addr(), request.read_len)) {
    // HOT-OK(protocol-violation guard; unreachable in a conforming run)
    throw std::invalid_argument("iwarp: RDMA read source not covered by rkey");
  }
  OutMsg response{};
  response.kind = MsgKind::kReadResponse;
  response.wr_id = request.wr_id;
  response.signaled = true;
  response.len = request.read_len;
  response.remote_addr = request.read_sink_addr;
  response.rkey = request.read_sink_key;
  response.data = snapshot(node_->mem(), request.remote_source_addr(), request.read_len);
  response.msg_id = conn.next_msg_id++;
  // HOT-OK(read-response send queue bounded by outstanding reads)
  conn.sendq.push_back(std::move(response));
  pump(conn);
}

void Rnic::complete_placement(Conn& conn, const Segment& segment) {
  if (conn.qp->in_error_) return;
  RxMsg& rx = conn.rx_msgs[segment.msg_id];

  std::uint64_t addr = 0;
  if (segment.kind == MsgKind::kUntagged) {
    if (segment.msg_offset == 0) {
      if (conn.recv_queue.empty()) {
        // HOT-OK(protocol-violation guard; unreachable in a conforming run)
        throw std::logic_error("iwarp: untagged message with no posted receive");
      }
      const verbs::RecvWr wr = conn.recv_queue.front();
      conn.recv_queue.pop_front();
      if (wr.sge.length < segment.msg_len) {
        // HOT-OK(protocol-violation guard; unreachable in a conforming run)
        throw std::length_error("iwarp: posted receive buffer too small");
      }
      rx.target_addr = wr.sge.addr;
      rx.recv_wr_id = wr.wr_id;
    }
    if (check::InvariantMonitor* monitor = engine().monitor()) {
      // DDP untagged delivery rides the in-order TCP stream, so segments
      // of one message must arrive in offset order.
      check::audit_iwarp_untagged_inorder(segment.msg_offset, rx.placed, segment.msg_id)
          .report(monitor, engine().now(), check::Layer::kIwarp, node_->id());
    }
    addr = rx.target_addr + segment.msg_offset;
  } else {  // tagged: kTaggedWrite or kReadResponse
    if (!registry_.covers(segment.rkey, segment.place_addr, segment.payload_len)) {
      if (check::InvariantMonitor* monitor = engine().monitor()) {
        monitor->report(engine().now(), check::Layer::kIwarp, node_->id(), "tagged_bounds",
                        "tagged placement at 0x" + std::to_string(segment.place_addr) + " +" +
                            std::to_string(segment.payload_len) +
                            "B not covered by rkey " + std::to_string(segment.rkey));
      }
      // HOT-OK(protocol-violation guard; unreachable in a conforming run)
      throw std::invalid_argument("iwarp: tagged placement not covered by rkey");
    }
    addr = segment.place_addr;
    if (segment.msg_offset == 0) rx.target_addr = segment.place_addr;
  }

  if (segment.data != nullptr) {
    node_->mem().write(addr, *segment.data);
  } else if (hw::Buffer* buffer = node_->mem().find(addr);
             buffer == nullptr ||
             addr + segment.payload_len > buffer->addr() + buffer->size()) {
    // HOT-OK(protocol-violation guard; unreachable in a conforming run)
    throw std::out_of_range("iwarp: placement outside any buffer");
  }

  rx.placed += segment.payload_len;
  if (rx.placed < segment.msg_len) return;

  // Message complete.
  if (engine().tracer() != nullptr) {
    engine().trace(TraceCategory::kNic, node_->id(),
                   std::string("DDP placement complete: ") +
                       kind_name(static_cast<int>(segment.kind)) + " " +
                       std::to_string(segment.msg_len) + "B at 0x" +
                       std::to_string(rx.target_addr));
  }
  const std::uint64_t base = rx.target_addr;
  const std::uint64_t recv_wr_id = rx.recv_wr_id;
  conn.rx_msgs.erase(segment.msg_id);
  switch (segment.kind) {
    case MsgKind::kUntagged:
      conn.qp->recv_cq_->push(verbs::Completion{recv_wr_id, verbs::Completion::Type::kRecv,
                                                segment.msg_len, conn.qp->qp_num()});
      break;
    case MsgKind::kReadResponse:
      conn.qp->send_cq_->push(verbs::Completion{segment.wr_id, verbs::Completion::Type::kRdmaRead,
                                                segment.msg_len, conn.qp->qp_num()});
      for (auto it = conn.pending_reads.begin(); it != conn.pending_reads.end(); ++it) {
        if (it->wr_id == segment.wr_id) {
          conn.pending_reads.erase(it);
          break;
        }
      }
      check_watches(base, segment.msg_len);
      break;
    case MsgKind::kTaggedWrite:
      check_watches(base, segment.msg_len);
      break;
    case MsgKind::kReadRequest:
      break;  // handled elsewhere
  }
}

void Rnic::check_watches(std::uint64_t addr, std::uint32_t len) {
  for (auto it = watches_.begin(); it != watches_.end();) {
    if (it->addr >= addr && it->addr + it->len <= addr + len) {
      it->event->trigger();
      it = watches_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace fabsim::iwarp

// NetEffect NE010e-class RNIC parameters.
//
// Values here are defaults; the calibrated set used by the paper
// reproduction lives in core/calibration.hpp. See DESIGN.md §1 for how
// each parameter maps to an observed behaviour.
#pragma once

#include <cstdint>

#include "hw/memory.hpp"
#include "hw/pci.hpp"
#include "sim/time.hpp"

namespace fabsim::iwarp {

struct RnicConfig {
  // --- Protocol engine (TCP/IP + MPA + DDP + RDMAP offload) ---
  // Pipelined: a new DDP segment may enter every `occupancy`; each takes
  // `latency` end-to-end. occupancy << latency is what gives the NetEffect
  // card its multi-connection scalability (paper §5.1).
  Time tx_latency = us(2.6);
  Time tx_occupancy = ns(450);   ///< fixed per segment
  Time rx_latency = us(2.6);
  Time rx_occupancy = ns(450);
  /// Per-byte protocol-engine throughput (TCP checksum/MPA/DMA internal
  /// paths). Together with the fixed part this caps one-way bandwidth.
  Rate engine_byte_rate = Rate::mb_per_sec(1250.0);
  Time per_message_overhead = ns(500);  ///< extra engine occupancy, first segment
  Time ack_occupancy = ns(80);          ///< engine time to process a pure ACK

  // --- Host interface ---
  Time post_send_cpu = ns(400);
  Time post_recv_cpu = ns(300);
  Time poll_cpu = ns(250);
  Time doorbell = ns(200);   ///< PCIe posted write latency
  Time wqe_fetch = ns(500);  ///< descriptor fetch before the first segment
  /// Internal 64-bit/133 MHz PCI-X bus behind the PCIe bridge: half
  /// duplex, shared by send and receive DMA. The bandwidth bottleneck.
  hw::PciConfig pcix{Rate::mb_per_sec(1000.0), ns(120)};

  // --- TCP / MPA ---
  std::uint32_t mss = 1408;          ///< DDP payload per TCP segment
  std::uint32_t seg_overhead = 102;  ///< Ethernet+IP+TCP+MPA+DDP header bytes/segment
  std::uint32_t ack_wire_bytes = 66;
  std::uint32_t window = 256 * 1024;
  int ack_every = 2;  ///< delayed ACK: one pure ACK per this many segments
  /// Delayed-ACK timeout: an ACK owed but withheld by `ack_every` goes
  /// out after this long anyway (prevents stalls when the sender's
  /// window closes before the ack quota is met).
  Time delayed_ack_timeout = us(40);
  double loss_rate = 0.0;
  Time rto = us(500);
  /// Consecutive RTO fires without ack progress before the connection is
  /// torn down (TCP gives up and resets): outstanding work flushes with
  /// kRetryExceeded and the peer is notified out-of-band — the model's
  /// RST analog. Keeps fabric partitions from hanging the stack.
  int retry_limit = 15;
  std::uint64_t rng_seed = 1;

  hw::RegistrationConfig reg{us(1.0), us(4.0), us(0.5), us(0.5), 4096};
};

}  // namespace fabsim::iwarp

// FabricExplore: the recording / replaying SchedulePolicy.
//
// A ControlledPolicy drives the Engine's pluggable tie-break
// (sim/schedule.hpp) through one simulation run. The first
// `prefix.size()` decision points follow the prescribed choice indices;
// every later decision falls through to the tail mode — insertion order
// (index 0, the default schedule) for systematic DFS, or a seeded
// uniform pick for schedule fuzzing. Every decision is recorded with the
// arity and scope labels of its co-enabled set, which is exactly what
// the Explorer needs to expand child prefixes and what a Schedule
// artifact needs to be replayable.
//
// A policy instance is single-run: attach a fresh one per Engine. All
// randomness comes from the constructor seed (std::mt19937_64), so a
// fuzz run is as replayable as a DFS run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "sim/schedule.hpp"

namespace fabsim::explore {

/// One recorded decision point: the co-enabled set the policy saw and
/// the index it picked.
struct Decision {
  std::uint32_t arity = 0;   ///< size of the co-enabled set (>= 2)
  std::uint32_t chosen = 0;  ///< index dispatched
  std::vector<int> scopes;   ///< per-event node confinement labels (-1 = unknown)
};

class ControlledPolicy final : public SchedulePolicy {
 public:
  /// What to do past the end of the prescribed prefix.
  enum class Tail : std::uint8_t {
    kDefault,  ///< insertion order (index 0) — the baseline schedule
    kRandom,   ///< seeded uniform pick — schedule fuzzing
  };

  explicit ControlledPolicy(std::vector<std::uint32_t> prefix = {}, Tail tail = Tail::kDefault,
                            std::uint64_t seed = 0)
      : prefix_(std::move(prefix)), tail_(tail), rng_(seed) {}

  std::size_t choose(const std::vector<ReadyEvent>& ready) override {
    std::uint32_t pick = 0;
    if (cursor_ < prefix_.size()) {
      pick = prefix_[cursor_];
      if (pick >= ready.size()) {
        // The schedule diverged from the run that recorded it (a stale
        // or hand-edited artifact). Fall back to the default choice and
        // remember: the replay is then not a faithful reproduction.
        diverged_ = true;
        pick = 0;
      }
    } else if (tail_ == Tail::kRandom) {
      pick = static_cast<std::uint32_t>(
          std::uniform_int_distribution<std::size_t>(0, ready.size() - 1)(rng_));
    }
    ++cursor_;

    Decision decision;
    decision.arity = static_cast<std::uint32_t>(ready.size());
    decision.chosen = pick;
    decision.scopes.reserve(ready.size());
    for (const ReadyEvent& event : ready) decision.scopes.push_back(event.scope);
    decisions_.push_back(std::move(decision));
    return pick;
  }

  const std::vector<Decision>& decisions() const { return decisions_; }
  /// True when a prefix index exceeded the arity actually observed.
  bool diverged() const { return diverged_; }
  /// The choice indices of every decision taken this run.
  std::vector<std::uint32_t> choices() const {
    std::vector<std::uint32_t> out;
    out.reserve(decisions_.size());
    for (const Decision& d : decisions_) out.push_back(d.chosen);
    return out;
  }

 private:
  std::vector<std::uint32_t> prefix_;
  std::size_t cursor_ = 0;
  Tail tail_;
  std::mt19937_64 rng_;
  bool diverged_ = false;
  std::vector<Decision> decisions_;
};

}  // namespace fabsim::explore

#include "explore/scenarios.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "core/cluster.hpp"
#include "fault/plan.hpp"
#include "verbs/verbs.hpp"

namespace fabsim::explore {

namespace {

void apply_mutation(core::NetworkProfile& profile, Mutation mutation) {
  switch (mutation) {
    case Mutation::kNone:
      break;
    case Mutation::kStrandPendingReads:
      profile.hca.mutation_strand_pending_reads = true;
      break;
    case Mutation::kDropFinalAck:
      profile.hca.mutation_drop_final_ack = true;
      break;
    case Mutation::kLeakCreditOnDrain:
      profile.switch_cfg.mutation_leak_credit_on_drain = true;
      break;
  }
}

/// Shared observation record for the verbs-based scenarios.
struct VerbsOut {
  verbs::Completion send{};
  verbs::Completion recv{};
  bool got_send = false;
  bool got_recv = false;
};

/// Two-node IB Send/Recv of one single-MTU message with the first data
/// frame dropped: RC end-to-end retransmission must recover it.
Scenario ib_send_loss(Mutation mutation) {
  return Scenario{"ib_send_loss", [mutation](RunContext& ctx) {
    core::NetworkProfile profile = core::ib_profile();
    profile.hca.rto = us(20);
    profile.hca.retry_limit = 3;
    apply_mutation(profile, mutation);
    core::Cluster cluster(2, profile);
    ctx.arm(cluster);
    fault::FaultPlan plan;
    plan.nth_frame(1, fault::FaultAction::kDrop);
    cluster.engine().set_fault_injector(&plan);

    const std::uint32_t len = 1024;
    auto& src = cluster.node(0).mem().alloc(len, false);
    auto& dst = cluster.node(1).mem().alloc(len, false);
    VerbsOut out;
    verbs::CompletionQueue scq(cluster.engine());
    verbs::CompletionQueue rcq(cluster.engine());
    std::vector<std::unique_ptr<verbs::QueuePair>> qps;
    cluster.engine().spawn([](core::Cluster& c, verbs::CompletionQueue& send_cq,
                              verbs::CompletionQueue& recv_cq,
                              std::vector<std::unique_ptr<verbs::QueuePair>>& pairs,
                              std::uint64_t s, std::uint64_t d, std::uint32_t n,
                              VerbsOut& result) -> Task<> {
      pairs.push_back(c.device(0).create_qp(send_cq, send_cq));
      pairs.push_back(c.device(1).create_qp(recv_cq, recv_cq));
      c.device(0).establish(*pairs[0], *pairs[1]);
      auto lkey = co_await c.device(0).reg_mr(s, n);
      auto rkey = co_await c.device(1).reg_mr(d, n);
      co_await pairs[1]->post_recv(verbs::RecvWr{.wr_id = 2, .sge = {d, n, rkey}});
      co_await pairs[0]->post_send(
          verbs::SendWr{.wr_id = 1, .opcode = verbs::Opcode::kSend, .sge = {s, n, lkey}});
      result.send = co_await verbs::next_completion(send_cq, c.node(0).cpu(), ns(200));
      result.got_send = true;
      result.recv = co_await verbs::next_completion(recv_cq, c.node(1).cpu(), ns(200));
      result.got_recv = true;
    }(cluster, scq, rcq, qps, src.addr(), dst.addr(), len, out));
    cluster.engine().run();

    ctx.expect(out.got_send && out.send.status == verbs::Completion::Status::kSuccess,
               "dropped data frame must be retransmitted to a successful send completion");
    ctx.expect(out.got_recv && out.recv.status == verbs::Completion::Status::kSuccess &&
                   out.recv.byte_len == len,
               "receiver must complete with the full message");
    ctx.finish(cluster.engine());
  }};
}

/// Two-node IB RDMA Read whose response (and every retransmit of it) is
/// lost: the responder exhausts its retries and the requester's stranded
/// read must still be flushed with kRetryExceeded — the PR-4 regression
/// recipe, now a permanent search target.
Scenario ib_read_response_loss(Mutation mutation) {
  return Scenario{"ib_read_response_loss", [mutation](RunContext& ctx) {
    core::NetworkProfile profile = core::ib_profile();
    profile.hca.rto = us(20);
    profile.hca.retry_limit = 3;
    apply_mutation(profile, mutation);
    core::Cluster cluster(2, profile);
    ctx.arm(cluster);
    // A QP that dies with a read pending legitimately reports this rule.
    ctx.allow_rule("error_pending_completion");
    // Frame order for a 1-packet read: f1 = request (0->1), f2 = ack,
    // f3 = response (1->0). Drop the response and all its retransmits.
    fault::FaultPlan plan;
    for (std::uint64_t n = 3; n <= 12; ++n) plan.nth_frame(n, fault::FaultAction::kDrop);
    cluster.engine().set_fault_injector(&plan);

    const std::uint32_t len = 1024;
    auto& sink = cluster.node(0).mem().alloc(len, false);
    auto& source = cluster.node(1).mem().alloc(len, false);
    VerbsOut out;
    verbs::CompletionQueue scq(cluster.engine());
    verbs::CompletionQueue rcq(cluster.engine());
    std::vector<std::unique_ptr<verbs::QueuePair>> qps;
    cluster.engine().spawn([](core::Cluster& c, verbs::CompletionQueue& send_cq,
                              verbs::CompletionQueue& recv_cq,
                              std::vector<std::unique_ptr<verbs::QueuePair>>& pairs,
                              std::uint64_t s, std::uint64_t d, std::uint32_t n,
                              VerbsOut& result) -> Task<> {
      pairs.push_back(c.device(0).create_qp(send_cq, send_cq));
      pairs.push_back(c.device(1).create_qp(recv_cq, recv_cq));
      c.device(0).establish(*pairs[0], *pairs[1]);
      auto lkey = co_await c.device(0).reg_mr(d, n);
      auto rkey = co_await c.device(1).reg_mr(s, n);
      co_await pairs[0]->post_send(verbs::SendWr{.wr_id = 1,
                                                 .opcode = verbs::Opcode::kRdmaRead,
                                                 .sge = {d, n, lkey},
                                                 .remote_addr = s,
                                                 .rkey = rkey});
      result.send = co_await verbs::next_completion(send_cq, c.node(0).cpu(), ns(200));
      result.got_send = true;
    }(cluster, scq, rcq, qps, source.addr(), sink.addr(), len, out));
    cluster.engine().run();

    ctx.expect(out.got_send, "the stranded read must complete, not hang");
    ctx.expect(out.got_send && out.send.status == verbs::Completion::Status::kRetryExceeded,
               "a read whose response is lost forever must flush with kRetryExceeded");
    ctx.finish(cluster.engine());
  }};
}

/// Three-node IB fan-in: nodes 0 and 1 write to node 2 concurrently,
/// with one early frame dropped. The two writer coroutines are spawned
/// back-to-back at t=0 and do identical work on disjoint source nodes,
/// so their events repeatedly land on the same timestamps: this is the
/// scenario with genuine co-enabled branching (and commuting pairs for
/// the reduction), unlike the strictly serial two-node workloads.
Scenario ib_fanin(Mutation mutation) {
  return Scenario{"ib_fanin", [mutation](RunContext& ctx) {
    core::NetworkProfile profile = core::ib_profile();
    profile.hca.rto = us(20);
    profile.hca.retry_limit = 3;
    apply_mutation(profile, mutation);
    core::Cluster cluster(3, profile);
    ctx.arm(cluster);
    fault::FaultPlan plan;
    plan.nth_frame(1, fault::FaultAction::kDrop);
    cluster.engine().set_fault_injector(&plan);

    const std::uint32_t len = 1024;
    auto& src0 = cluster.node(0).mem().alloc(len, false);
    auto& src1 = cluster.node(1).mem().alloc(len, false);
    auto& dst0 = cluster.node(2).mem().alloc(len, false);
    auto& dst1 = cluster.node(2).mem().alloc(len, false);
    VerbsOut out0, out1;
    verbs::CompletionQueue scq0(cluster.engine());
    verbs::CompletionQueue scq1(cluster.engine());
    verbs::CompletionQueue rcq(cluster.engine());
    std::vector<std::unique_ptr<verbs::QueuePair>> qps;
    // All the setup that must serialize on node 2's CPU happens in one
    // parent coroutine; the two writers it then spawns do identical work
    // on disjoint nodes from the same instant, so their events stay in
    // timestamp lockstep — each lockstep pair is a co-enabled tie for
    // the explorer (and, being NIC-confined on different ports, many of
    // them are commuting pairs the reduction can prune).
    auto writer = [](core::Cluster& c, int src_node, verbs::CompletionQueue& send_cq,
                     verbs::QueuePair& qp, std::uint64_t s, std::uint64_t d, std::uint32_t n,
                     verbs::MrKey lkey, verbs::MrKey rkey, std::uint64_t wr,
                     VerbsOut& result) -> Task<> {
      auto watch = c.device(2).watch_placement(d, n);
      co_await qp.post_send(verbs::SendWr{.wr_id = wr,
                                          .opcode = verbs::Opcode::kRdmaWrite,
                                          .sge = {s, n, lkey},
                                          .remote_addr = d,
                                          .rkey = rkey});
      result.send = co_await verbs::next_completion(send_cq, c.node(src_node).cpu(), ns(200));
      result.got_send = true;
      co_await watch->wait();
      result.got_recv = true;  // placement observed at the target
    };
    qps.reserve(4);
    cluster.engine().spawn([](core::Cluster& c, verbs::CompletionQueue& send_cq0,
                              verbs::CompletionQueue& send_cq1, verbs::CompletionQueue& recv_cq,
                              std::vector<std::unique_ptr<verbs::QueuePair>>& pairs,
                              std::uint64_t s0, std::uint64_t s1, std::uint64_t d0,
                              std::uint64_t d1, std::uint32_t n, VerbsOut& r0, VerbsOut& r1,
                              decltype(writer) write) -> Task<> {
      pairs.push_back(c.device(0).create_qp(send_cq0, send_cq0));  // 0 -> 2
      pairs.push_back(c.device(2).create_qp(recv_cq, recv_cq));
      pairs.push_back(c.device(1).create_qp(send_cq1, send_cq1));  // 1 -> 2
      pairs.push_back(c.device(2).create_qp(recv_cq, recv_cq));
      c.device(0).establish(*pairs[0], *pairs[1]);
      c.device(1).establish(*pairs[2], *pairs[3]);
      auto lkey0 = co_await c.device(0).reg_mr(s0, n);
      auto lkey1 = co_await c.device(1).reg_mr(s1, n);
      auto rkey0 = co_await c.device(2).reg_mr(d0, n);
      auto rkey1 = co_await c.device(2).reg_mr(d1, n);
      c.engine().spawn(write(c, 0, send_cq0, *pairs[0], s0, d0, n, lkey0, rkey0, 10, r0));
      c.engine().spawn(write(c, 1, send_cq1, *pairs[2], s1, d1, n, lkey1, rkey1, 11, r1));
    }(cluster, scq0, scq1, rcq, qps, src0.addr(), src1.addr(), dst0.addr(), dst1.addr(), len,
      out0, out1, writer));
    cluster.engine().run();

    ctx.expect(out0.got_send && out0.send.status == verbs::Completion::Status::kSuccess,
               "writer 0 must complete despite the dropped frame");
    ctx.expect(out1.got_send && out1.send.status == verbs::Completion::Status::kSuccess,
               "writer 1 must complete despite the dropped frame");
    ctx.expect(out0.got_recv, "writer 0's bytes must be placed at node 2");
    ctx.expect(out1.got_recv, "writer 1's bytes must be placed at node 2");
    ctx.finish(cluster.engine());
  }};
}

/// Fan-in across a 2-level Clos fabric (4 endpoints on 2 leaves + 2
/// spines, credit flow control, small port buffers): nodes 0 and 1 —
/// both on the far leaf — write to node 3 concurrently with one early
/// frame dropped, so every data packet crosses leaf -> spine -> leaf
/// under per-hop credits while RC retransmission recovers the loss.
/// The bounded multi-switch search target: co-enabled events now
/// include switch-queue wakeups on distinct switches.
Scenario ib_fanin_clos(Mutation mutation) {
  return Scenario{"ib_fanin_clos", [mutation](RunContext& ctx) {
    core::NetworkProfile profile = core::ib_profile();
    profile.hca.rto = us(20);
    profile.hca.retry_limit = 3;
    profile.fabric = topo::FabricSpec{2, 4, 1.0, hw::FlowControl::kCredit};
    profile.switch_cfg.max_queue_bytes = 4096;  // ~2 MTUs: credits engage
    apply_mutation(profile, mutation);
    core::Cluster cluster(4, profile);
    ctx.arm(cluster);
    fault::FaultPlan plan;
    plan.nth_frame(1, fault::FaultAction::kDrop);
    cluster.engine().set_fault_injector(&plan);

    const std::uint32_t len = 4096;  // 2 MTU packets per write
    auto& src0 = cluster.node(0).mem().alloc(len, false);
    auto& src1 = cluster.node(1).mem().alloc(len, false);
    auto& dst0 = cluster.node(3).mem().alloc(len, false);
    auto& dst1 = cluster.node(3).mem().alloc(len, false);
    VerbsOut out0, out1;
    verbs::CompletionQueue scq0(cluster.engine());
    verbs::CompletionQueue scq1(cluster.engine());
    verbs::CompletionQueue rcq(cluster.engine());
    std::vector<std::unique_ptr<verbs::QueuePair>> qps;
    auto writer = [](core::Cluster& c, int src_node, verbs::CompletionQueue& send_cq,
                     verbs::QueuePair& qp, std::uint64_t s, std::uint64_t d, std::uint32_t n,
                     verbs::MrKey lkey, verbs::MrKey rkey, std::uint64_t wr,
                     VerbsOut& result) -> Task<> {
      auto watch = c.device(3).watch_placement(d, n);
      co_await qp.post_send(verbs::SendWr{.wr_id = wr,
                                          .opcode = verbs::Opcode::kRdmaWrite,
                                          .sge = {s, n, lkey},
                                          .remote_addr = d,
                                          .rkey = rkey});
      result.send = co_await verbs::next_completion(send_cq, c.node(src_node).cpu(), ns(200));
      result.got_send = true;
      co_await watch->wait();
      result.got_recv = true;
    };
    qps.reserve(4);
    cluster.engine().spawn([](core::Cluster& c, verbs::CompletionQueue& send_cq0,
                              verbs::CompletionQueue& send_cq1, verbs::CompletionQueue& recv_cq,
                              std::vector<std::unique_ptr<verbs::QueuePair>>& pairs,
                              std::uint64_t s0, std::uint64_t s1, std::uint64_t d0,
                              std::uint64_t d1, std::uint32_t n, VerbsOut& r0, VerbsOut& r1,
                              decltype(writer) write) -> Task<> {
      pairs.push_back(c.device(0).create_qp(send_cq0, send_cq0));  // 0 -> 3
      pairs.push_back(c.device(3).create_qp(recv_cq, recv_cq));
      pairs.push_back(c.device(1).create_qp(send_cq1, send_cq1));  // 1 -> 3
      pairs.push_back(c.device(3).create_qp(recv_cq, recv_cq));
      c.device(0).establish(*pairs[0], *pairs[1]);
      c.device(1).establish(*pairs[2], *pairs[3]);
      auto lkey0 = co_await c.device(0).reg_mr(s0, n);
      auto lkey1 = co_await c.device(1).reg_mr(s1, n);
      auto rkey0 = co_await c.device(3).reg_mr(d0, n);
      auto rkey1 = co_await c.device(3).reg_mr(d1, n);
      c.engine().spawn(write(c, 0, send_cq0, *pairs[0], s0, d0, n, lkey0, rkey0, 10, r0));
      c.engine().spawn(write(c, 1, send_cq1, *pairs[2], s1, d1, n, lkey1, rkey1, 11, r1));
    }(cluster, scq0, scq1, rcq, qps, src0.addr(), src1.addr(), dst0.addr(), dst1.addr(), len,
      out0, out1, writer));
    cluster.engine().run();

    ctx.expect(out0.got_send && out0.send.status == verbs::Completion::Status::kSuccess,
               "writer 0 must complete across the Clos despite the dropped frame");
    ctx.expect(out1.got_send && out1.send.status == verbs::Completion::Status::kSuccess,
               "writer 1 must complete across the Clos despite the dropped frame");
    ctx.expect(out0.got_recv, "writer 0's bytes must cross leaf->spine->leaf to node 3");
    ctx.expect(out1.got_recv, "writer 1's bytes must cross leaf->spine->leaf to node 3");
    ctx.finish(cluster.engine());
  }};
}

/// FabricFail search target: the ib_fanin_clos workload with a detected
/// link failure landing mid-transfer. Both writers' packets cross
/// leaf0 -> spine1 (dst 3 picks uplink 3 % 2 = 1), and that link goes
/// down while frames sit queued behind it: the topology reroutes every
/// LFT, the stranded queue is requeued onto the surviving spine with
/// every credit commitment returned, and the link later comes back.
/// Unmutated this must explore clean — both writes complete and the
/// fabric passes the quiescent credit-conservation audit under every
/// schedule. With the leak_credit_on_drain seam armed the drain keeps
/// one frame's committed occupancy, which audit_switch_queue_drained
/// catches at quiescence — the explorer must rediscover that reroute
/// bug as a violation finding.
Scenario ib_clos_link_flap(Mutation mutation) {
  return Scenario{"ib_clos_link_flap", [mutation](RunContext& ctx) {
    core::NetworkProfile profile = core::ib_profile();
    profile.hca.rto = us(20);
    profile.hca.retry_limit = 5;
    profile.fabric = topo::FabricSpec{2, 4, 1.0, hw::FlowControl::kCredit};
    profile.switch_cfg.max_queue_bytes = 4096;  // ~2 MTUs: queues build behind the uplink
    apply_mutation(profile, mutation);
    core::Cluster cluster(4, profile);
    ctx.arm(cluster);
    // The failed-and-restored uplink: link 1 = leaf0 port 1 <-> spine1.
    // Both writes route through it (dst 3 % 2 spines = spine1). A fixed
    // fail instant is schedule-fragile — QP setup latency shifts under
    // the explorer's tie-breaks — so instead poll at fixed times and
    // fail the link at the first tick that finds frames queued behind
    // it. That keeps the trigger deterministic per schedule while
    // guaranteeing the drain actually has frames to requeue, which is
    // what the leak_credit_on_drain seam needs to be reachable. The
    // link comes back 25us later, inside the retry budget, so both
    // flows must recover via the reroute.
    topo::Topology& topo = cluster.topology();
    const int epoch_before = topo.lft_epoch();
    const topo::Topology::LinkRec uplink = topo.links()[1];
    topo::Topology* tp = &topo;
    Engine* eng = &cluster.engine();
    auto flapped = std::make_shared<bool>(false);
    for (int tick = 120; tick <= 170; tick += 2) {
      eng->post(us(tick), [tp, eng, flapped, uplink] {
        if (*flapped) return;
        if (tp->sw(uplink.a).output_queue_frames(uplink.port_a) == 0) return;
        *flapped = true;
        tp->fail_link(1);
        eng->post(eng->now() + us(25), [tp] { tp->restore_link(1); });
      });
    }

    const std::uint32_t len = 16 * 1024;  // 8 MTU packets per write
    auto& src0 = cluster.node(0).mem().alloc(len, false);
    auto& src1 = cluster.node(1).mem().alloc(len, false);
    auto& dst0 = cluster.node(3).mem().alloc(len, false);
    auto& dst1 = cluster.node(3).mem().alloc(len, false);
    VerbsOut out0, out1;
    verbs::CompletionQueue scq0(cluster.engine());
    verbs::CompletionQueue scq1(cluster.engine());
    verbs::CompletionQueue rcq(cluster.engine());
    std::vector<std::unique_ptr<verbs::QueuePair>> qps;
    auto writer = [](core::Cluster& c, int src_node, verbs::CompletionQueue& send_cq,
                     verbs::QueuePair& qp, std::uint64_t s, std::uint64_t d, std::uint32_t n,
                     verbs::MrKey lkey, verbs::MrKey rkey, std::uint64_t wr,
                     VerbsOut& result) -> Task<> {
      auto watch = c.device(3).watch_placement(d, n);
      co_await qp.post_send(verbs::SendWr{.wr_id = wr,
                                          .opcode = verbs::Opcode::kRdmaWrite,
                                          .sge = {s, n, lkey},
                                          .remote_addr = d,
                                          .rkey = rkey});
      result.send = co_await verbs::next_completion(send_cq, c.node(src_node).cpu(), ns(200));
      result.got_send = true;
      co_await watch->wait();
      result.got_recv = true;
    };
    qps.reserve(4);
    cluster.engine().spawn([](core::Cluster& c, verbs::CompletionQueue& send_cq0,
                              verbs::CompletionQueue& send_cq1, verbs::CompletionQueue& recv_cq,
                              std::vector<std::unique_ptr<verbs::QueuePair>>& pairs,
                              std::uint64_t s0, std::uint64_t s1, std::uint64_t d0,
                              std::uint64_t d1, std::uint32_t n, VerbsOut& r0, VerbsOut& r1,
                              decltype(writer) write) -> Task<> {
      pairs.push_back(c.device(0).create_qp(send_cq0, send_cq0));  // 0 -> 3
      pairs.push_back(c.device(3).create_qp(recv_cq, recv_cq));
      pairs.push_back(c.device(1).create_qp(send_cq1, send_cq1));  // 1 -> 3
      pairs.push_back(c.device(3).create_qp(recv_cq, recv_cq));
      c.device(0).establish(*pairs[0], *pairs[1]);
      c.device(1).establish(*pairs[2], *pairs[3]);
      auto lkey0 = co_await c.device(0).reg_mr(s0, n);
      auto lkey1 = co_await c.device(1).reg_mr(s1, n);
      auto rkey0 = co_await c.device(3).reg_mr(d0, n);
      auto rkey1 = co_await c.device(3).reg_mr(d1, n);
      c.engine().spawn(write(c, 0, send_cq0, *pairs[0], s0, d0, n, lkey0, rkey0, 10, r0));
      c.engine().spawn(write(c, 1, send_cq1, *pairs[2], s1, d1, n, lkey1, rkey1, 11, r1));
    }(cluster, scq0, scq1, rcq, qps, src0.addr(), src1.addr(), dst0.addr(), dst1.addr(), len,
      out0, out1, writer));
    cluster.engine().run();

    ctx.expect(topo.lft_epoch() >= epoch_before + 2,
               "the down/up window must drive two LFT recomputes");
    ctx.expect(out0.got_send && out0.send.status == verbs::Completion::Status::kSuccess,
               "writer 0 must complete across the link flap");
    ctx.expect(out1.got_send && out1.send.status == verbs::Completion::Status::kSuccess,
               "writer 1 must complete across the link flap");
    ctx.expect(out0.got_recv, "writer 0's bytes must be placed at node 3 despite the reroute");
    ctx.expect(out1.got_recv, "writer 1's bytes must be placed at node 3 despite the reroute");
    ctx.finish(cluster.engine());
  }};
}

/// Two-node iWARP RDMA Write with an early TCP segment dropped: MPA/DDP
/// over the stream, go-back-N must place every byte.
Scenario iwarp_send_loss() {
  return Scenario{"iwarp_send_loss", [](RunContext& ctx) {
    core::NetworkProfile profile = core::iwarp_profile();
    profile.rnic.rto = us(100);
    core::Cluster cluster(2, profile);
    ctx.arm(cluster);
    fault::FaultPlan plan;
    plan.nth_frame(2, fault::FaultAction::kDrop);
    cluster.engine().set_fault_injector(&plan);

    const std::uint32_t len = 16 * 1024;
    auto& src = cluster.node(0).mem().alloc(len, false);
    auto& dst = cluster.node(1).mem().alloc(len, false);
    bool placed = false;
    cluster.engine().spawn([](core::Cluster& c, std::uint64_t s, std::uint64_t d,
                              std::uint32_t n, bool& done) -> Task<> {
      verbs::CompletionQueue cq(c.engine());
      auto qp0 = c.device(0).create_qp(cq, cq);
      auto qp1 = c.device(1).create_qp(cq, cq);
      c.device(0).establish(*qp0, *qp1);
      auto lkey = co_await c.device(0).reg_mr(s, n);
      auto rkey = co_await c.device(1).reg_mr(d, n);
      auto watch = c.device(1).watch_placement(d, n);
      co_await qp0->post_send(verbs::SendWr{.wr_id = 1,
                                            .opcode = verbs::Opcode::kRdmaWrite,
                                            .sge = {s, n, lkey},
                                            .remote_addr = d,
                                            .rkey = rkey});
      co_await watch->wait();
      done = true;
    }(cluster, src.addr(), dst.addr(), len, placed));
    cluster.engine().run();

    ctx.expect(placed, "go-back-N must recover the dropped segment and place every byte");
    ctx.finish(cluster.engine());
  }};
}

/// Two-node MX eager send with the data frame dropped: the firmware
/// resend queue must redeliver it.
Scenario mx_eager_loss() {
  return Scenario{"mx_eager_loss", [](RunContext& ctx) {
    core::NetworkProfile profile = core::mxoe_profile();
    profile.mx.rto = us(50);
    core::Cluster cluster(2, profile);
    ctx.arm(cluster);
    fault::FaultPlan plan;
    plan.nth_frame(1, fault::FaultAction::kDrop);
    cluster.engine().set_fault_injector(&plan);

    const std::uint32_t len = 1024;
    auto& src = cluster.node(0).mem().alloc(len, false);
    auto& dst = cluster.node(1).mem().alloc(len, false);
    bool send_done = false, recv_done = false;
    std::uint32_t recv_len = 0;
    cluster.engine().spawn(
        [](core::Cluster& c, std::uint64_t s, std::uint32_t n, bool& done) -> Task<> {
          auto request = co_await c.endpoint(0).isend(s, n, c.endpoint(1).port(), 7);
          co_await c.endpoint(0).wait(request);
          done = request->done();
        }(cluster, src.addr(), len, send_done));
    cluster.engine().spawn([](core::Cluster& c, std::uint64_t d, std::uint32_t n, bool& done,
                              std::uint32_t& got) -> Task<> {
      auto request = co_await c.endpoint(1).irecv(d, n, 7, ~0ull);
      co_await c.endpoint(1).wait(request);
      done = request->done();
      got = request->length();
    }(cluster, dst.addr(), len, recv_done, recv_len));
    cluster.engine().run();

    ctx.expect(send_done, "sender must complete after the resend");
    ctx.expect(recv_done && recv_len == len, "receiver must get the full eager message");
    ctx.finish(cluster.engine());
  }};
}

/// Two-node MX rendezvous with the RTS frame dropped: the handshake
/// itself must be retried, then the bulk data streamed.
Scenario mx_rndv_loss() {
  return Scenario{"mx_rndv_loss", [](RunContext& ctx) {
    core::NetworkProfile profile = core::mxoe_profile();
    profile.mx.rto = us(50);
    core::Cluster cluster(2, profile);
    ctx.arm(cluster);
    fault::FaultPlan plan;
    plan.nth_frame(1, fault::FaultAction::kDrop);  // the RTS
    cluster.engine().set_fault_injector(&plan);

    const std::uint32_t len = 64 * 1024;  // > eager_max: rendezvous path
    auto& src = cluster.node(0).mem().alloc(len, false);
    auto& dst = cluster.node(1).mem().alloc(len, false);
    bool send_done = false, recv_done = false;
    std::uint32_t recv_len = 0;
    cluster.engine().spawn(
        [](core::Cluster& c, std::uint64_t s, std::uint32_t n, bool& done) -> Task<> {
          auto request = co_await c.endpoint(0).isend(s, n, c.endpoint(1).port(), 9);
          co_await c.endpoint(0).wait(request);
          done = request->done();
        }(cluster, src.addr(), len, send_done));
    cluster.engine().spawn([](core::Cluster& c, std::uint64_t d, std::uint32_t n, bool& done,
                              std::uint32_t& got) -> Task<> {
      auto request = co_await c.endpoint(1).irecv(d, n, 9, ~0ull);
      co_await c.endpoint(1).wait(request);
      done = request->done();
      got = request->length();
    }(cluster, dst.addr(), len, recv_done, recv_len));
    cluster.engine().run();

    ctx.expect(send_done, "rendezvous sender must complete despite the lost RTS");
    ctx.expect(recv_done && recv_len == len, "receiver must get the full rendezvous message");
    ctx.finish(cluster.engine());
  }};
}

/// Two-rank MPI ping-pong over MXoE with one early frame dropped: the
/// full stack (matching queues over the reliable firmware) must finish
/// the round trip.
Scenario mpi_pingpong_loss() {
  return Scenario{"mpi_pingpong_loss", [](RunContext& ctx) {
    core::NetworkProfile profile = core::mxoe_profile();
    profile.mx.rto = us(50);
    core::Cluster cluster(2, profile);
    ctx.arm(cluster);
    fault::FaultPlan plan;
    plan.nth_frame(2, fault::FaultAction::kDrop);
    cluster.engine().set_fault_injector(&plan);

    const std::uint32_t len = 512;
    auto& buf0 = cluster.node(0).mem().alloc(2 * len, false);
    auto& buf1 = cluster.node(1).mem().alloc(2 * len, false);
    bool rank0_done = false, rank1_done = false;
    cluster.engine().spawn(
        [](core::Cluster& c, std::uint64_t base, std::uint32_t n, bool& done) -> Task<> {
          co_await c.setup_mpi();
          mpi::Rank& rank = c.mpi_rank(0);
          auto send = co_await rank.isend(1, 3, base, n);
          co_await rank.wait(send);
          auto recv = co_await rank.irecv(1, 4, base + n, n);
          co_await rank.wait(recv);
          done = true;
        }(cluster, buf0.addr(), len, rank0_done));
    cluster.engine().spawn(
        [](core::Cluster& c, std::uint64_t base, std::uint32_t n, bool& done) -> Task<> {
          co_await c.setup_mpi();
          mpi::Rank& rank = c.mpi_rank(1);
          auto recv = co_await rank.irecv(0, 3, base, n);
          co_await rank.wait(recv);
          auto send = co_await rank.isend(0, 4, base + n, n);
          co_await rank.wait(send);
          done = true;
        }(cluster, buf1.addr(), len, rank1_done));
    cluster.engine().run();

    ctx.expect(rank0_done, "rank 0 must finish the ping-pong");
    ctx.expect(rank1_done, "rank 1 must finish the ping-pong");
    ctx.finish(cluster.engine());
  }};
}

}  // namespace

const char* mutation_name(Mutation mutation) {
  switch (mutation) {
    case Mutation::kNone: return "none";
    case Mutation::kStrandPendingReads: return "strand_pending_reads";
    case Mutation::kDropFinalAck: return "drop_final_ack";
    case Mutation::kLeakCreditOnDrain: return "leak_credit_on_drain";
  }
  return "?";
}

bool mutation_from_name(const std::string& name, Mutation& out) {
  if (name == "none") {
    out = Mutation::kNone;
  } else if (name == "strand_pending_reads") {
    out = Mutation::kStrandPendingReads;
  } else if (name == "drop_final_ack") {
    out = Mutation::kDropFinalAck;
  } else if (name == "leak_credit_on_drain") {
    out = Mutation::kLeakCreditOnDrain;
  } else {
    return false;
  }
  return true;
}

std::vector<Scenario> bounded_scenarios(Mutation mutation) {
  std::vector<Scenario> scenarios;
  scenarios.push_back(ib_send_loss(mutation));
  scenarios.push_back(ib_read_response_loss(mutation));
  scenarios.push_back(ib_fanin(mutation));
  scenarios.push_back(ib_fanin_clos(mutation));
  scenarios.push_back(ib_clos_link_flap(mutation));
  scenarios.push_back(iwarp_send_loss());
  scenarios.push_back(mx_eager_loss());
  scenarios.push_back(mx_rndv_loss());
  scenarios.push_back(mpi_pingpong_loss());
  return scenarios;
}

Scenario find_scenario(const std::string& name, Mutation mutation) {
  for (Scenario& scenario : bounded_scenarios(mutation)) {
    if (scenario.name == name) return std::move(scenario);
  }
  throw std::out_of_range("explore: unknown scenario '" + name + "'");
}

}  // namespace fabsim::explore

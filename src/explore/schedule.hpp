// FabricExplore counterexample artifact: a replayable schedule.
//
// A Schedule pins one interleaving of co-enabled events: the choice
// index taken at every decision point, plus enough metadata (scenario
// name, mutation, finding classification, run digest) to re-run it and
// check the same failure reproduces. Serialized as JSON so artifacts can
// be attached to bug reports and replayed with
// `ext_explore --schedule <file>`; parsed back with sim/json.hpp.
//
// The digest is stored as a hex string, not a JSON number — run digests
// use all 64 bits and would be mangled by double precision.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fabsim::explore {

struct Schedule {
  std::string scenario;          ///< registry name of the scenario to replay
  std::string mutation = "none"; ///< mutation seam armed when recorded
  std::string kind;              ///< finding classification (empty = clean run)
  std::string rule;              ///< violated rule / expectation id
  std::string detail;            ///< human-readable failure specifics
  std::uint64_t digest = 0;      ///< run digest of the recorded run
  std::uint64_t events = 0;      ///< events processed by the recorded run
  std::vector<std::uint32_t> choices;  ///< decision index per decision point
  std::vector<std::uint32_t> arities;  ///< co-enabled set size per decision point

  /// Serialize to a pretty-printed JSON document.
  std::string to_json() const;
  /// Parse a document produced by to_json(); throws std::runtime_error
  /// on malformed input or missing fields.
  static Schedule from_json(const std::string& text);
};

/// 64-bit value to fixed-width hex ("0x" + 16 digits) and back.
std::string to_hex_u64(std::uint64_t value);
std::uint64_t parse_hex_u64(const std::string& text);

}  // namespace fabsim::explore

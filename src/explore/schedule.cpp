#include "explore/schedule.hpp"

#include <cstdio>
#include <stdexcept>

#include "sim/json.hpp"

namespace fabsim::explore {

namespace {

void append_u32_array(std::string& out, const char* key,
                      const std::vector<std::uint32_t>& values) {
  out += "  \"";
  out += key;
  out += "\": [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(values[i]);
  }
  out += "]";
}

std::vector<std::uint32_t> read_u32_array(const minijson::Value& doc, const char* key) {
  std::vector<std::uint32_t> out;
  for (const minijson::Value& v : doc.at(key).as_array()) {
    const double n = v.as_number();
    if (n < 0) throw std::runtime_error(std::string("schedule: negative entry in ") + key);
    out.push_back(static_cast<std::uint32_t>(n));
  }
  return out;
}

}  // namespace

std::string to_hex_u64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(value));
  return buf;
}

std::uint64_t parse_hex_u64(const std::string& text) {
  if (text.size() < 3 || text[0] != '0' || (text[1] != 'x' && text[1] != 'X')) {
    throw std::runtime_error("schedule: digest must be a 0x-prefixed hex string");
  }
  std::uint64_t value = 0;
  for (std::size_t i = 2; i < text.size(); ++i) {
    const char c = text[i];
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') value |= static_cast<std::uint64_t>(c - 'A' + 10);
    else throw std::runtime_error("schedule: bad hex digit in digest");
  }
  return value;
}

std::string Schedule::to_json() const {
  std::string out = "{\n";
  out += "  \"version\": 1,\n";
  out += "  \"scenario\": \"" + minijson::escape(scenario) + "\",\n";
  out += "  \"mutation\": \"" + minijson::escape(mutation) + "\",\n";
  out += "  \"kind\": \"" + minijson::escape(kind) + "\",\n";
  out += "  \"rule\": \"" + minijson::escape(rule) + "\",\n";
  out += "  \"detail\": \"" + minijson::escape(detail) + "\",\n";
  out += "  \"digest\": \"" + to_hex_u64(digest) + "\",\n";
  out += "  \"events\": " + std::to_string(events) + ",\n";
  append_u32_array(out, "choices", choices);
  out += ",\n";
  append_u32_array(out, "arities", arities);
  out += "\n}\n";
  return out;
}

Schedule Schedule::from_json(const std::string& text) {
  const minijson::Value doc = minijson::parse(text);
  Schedule schedule;
  schedule.scenario = doc.at("scenario").as_string();
  if (doc.has("mutation")) schedule.mutation = doc.at("mutation").as_string();
  if (doc.has("kind")) schedule.kind = doc.at("kind").as_string();
  if (doc.has("rule")) schedule.rule = doc.at("rule").as_string();
  if (doc.has("detail")) schedule.detail = doc.at("detail").as_string();
  schedule.digest = parse_hex_u64(doc.at("digest").as_string());
  if (doc.has("events")) {
    schedule.events = static_cast<std::uint64_t>(doc.at("events").as_number());
  }
  schedule.choices = read_u32_array(doc, "choices");
  if (doc.has("arities")) schedule.arities = read_u32_array(doc, "arities");
  return schedule;
}

}  // namespace fabsim::explore

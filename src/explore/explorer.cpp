#include "explore/explorer.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/cluster.hpp"
#include "sim/engine.hpp"

namespace fabsim::explore {

namespace {

/// splitmix64: derive statistically independent per-run fuzz seeds.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// DPOR-style prune: dispatching `scopes[alt]` before the events ahead
/// of it is redundant when it commutes with every one of them (all are
/// node-confined, all on other nodes) — the reordered run reaches the
/// same state, so the default order already covers it.
bool commutes_with_all_earlier(const std::vector<int>& scopes, std::uint32_t alt) {
  const int mine = scopes[alt];
  if (mine < 0) return false;
  for (std::uint32_t j = 0; j < alt; ++j) {
    if (scopes[j] < 0 || scopes[j] == mine) return false;
  }
  return true;
}

}  // namespace

const char* finding_kind_name(FindingKind kind) {
  switch (kind) {
    case FindingKind::kInvariant: return "invariant";
    case FindingKind::kDeadlock: return "deadlock";
    case FindingKind::kDivergence: return "divergence";
    case FindingKind::kExpectation: return "expectation";
  }
  return "?";
}

void RunContext::arm(Engine& engine) {
  engine.set_schedule_policy(&policy_);
  engine.set_monitor(&monitor_);
  armed_ = true;
}

void RunContext::arm(core::Cluster& cluster) {
  cluster.engine().set_schedule_policy(&policy_);
  cluster.attach_monitor(monitor_);
  armed_ = true;
}

void RunContext::finish(Engine& engine) {
  digest_ = engine.run_digest();
  events_ = engine.events_processed();
  stuck_processes_ = engine.live_processes() - engine.live_daemons();
  finished_ = true;
}

RunOutcome Explorer::run_schedule(const std::vector<std::uint32_t>& prefix,
                                  ControlledPolicy::Tail tail, std::uint64_t seed) {
  ControlledPolicy policy(prefix, tail, seed);
  RunContext ctx(policy);
  std::string exception_text;
  try {
    scenario_.body(ctx);
  } catch (const std::exception& e) {
    exception_text = e.what();
  }

  RunOutcome out;
  out.decisions = policy.decisions();
  out.choices = policy.choices();
  out.diverged = policy.diverged();
  out.digest = ctx.digest_;
  out.events = ctx.events_;

  if (!exception_text.empty()) {
    out.failed = true;
    out.kind = FindingKind::kExpectation;
    out.rule = "exception";
    out.detail = exception_text;
    return out;
  }
  if (!ctx.armed_ || !ctx.finished_) {
    throw std::logic_error("explore: scenario '" + scenario_.name +
                           "' must call RunContext::arm() and finish()");
  }

  // Classification precedence: an unexpected invariant violation is the
  // sharpest signal; then a deadlock (the engine's lost_wakeup audit or
  // a direct liveness count); then the scenario's own expectations.
  bool deadlock = ctx.stuck_processes_ > 0;
  std::string deadlock_detail;
  for (const check::InvariantViolation& violation : ctx.monitor_.violations()) {
    if (violation.rule == "lost_wakeup") {
      deadlock = true;
      deadlock_detail = violation.detail;
      continue;
    }
    const bool allowed = std::find(ctx.allowed_rules_.begin(), ctx.allowed_rules_.end(),
                                   violation.rule) != ctx.allowed_rules_.end();
    if (allowed) continue;
    out.failed = true;
    out.kind = FindingKind::kInvariant;
    out.rule = std::string(check::layer_name(violation.layer)) + "." + violation.rule;
    out.detail = violation.detail;
    return out;
  }
  if (deadlock) {
    out.failed = true;
    out.kind = FindingKind::kDeadlock;
    out.rule = "lost_wakeup";
    out.detail = deadlock_detail.empty()
                     ? std::to_string(ctx.stuck_processes_) +
                           " process(es) still suspended at queue drain"
                     : deadlock_detail;
    return out;
  }
  if (!ctx.expectation_failures_.empty()) {
    out.failed = true;
    out.kind = FindingKind::kExpectation;
    out.rule = "scenario_expectation";
    out.detail = ctx.expectation_failures_.front();
    return out;
  }
  return out;
}

RunOutcome Explorer::replay(const Scenario& scenario, const Schedule& schedule) {
  Explorer explorer(scenario, ExploreBudget{});
  return explorer.run_schedule(schedule.choices);
}

std::vector<std::uint32_t> Explorer::minimize(const RunOutcome& failing, ExploreStats& stats) {
  std::uint64_t used = 0;
  auto still_fails = [&](const std::vector<std::uint32_t>& prefix) {
    RunOutcome r = run_schedule(prefix);
    ++stats.runs;
    ++used;
    return r.failed && r.kind == failing.kind && r.rule == failing.rule;
  };

  std::vector<std::uint32_t> best = failing.choices;
  // Trailing default choices are free to drop: the policy's tail makes
  // the same picks.
  while (!best.empty() && best.back() == 0) best.pop_back();
  // Greedy 1-minimality pass: restore each non-default choice to the
  // default and keep the shrink when the same failure survives.
  for (std::size_t i = 0; i < best.size() && used < budget_.minimize_runs; ++i) {
    if (best[i] == 0) continue;
    std::vector<std::uint32_t> trial = best;
    trial[i] = 0;
    if (still_fails(trial)) best = std::move(trial);
  }
  while (!best.empty() && best.back() == 0) best.pop_back();
  return best;
}

Finding Explorer::build_finding(const RunOutcome& failing, ExploreStats& stats) {
  Finding finding;
  finding.kind = failing.kind;
  finding.scenario = scenario_.name;
  finding.rule = failing.rule;
  finding.detail = failing.detail;
  finding.original_choices = failing.choices.size();

  const std::vector<std::uint32_t> minimized = minimize(failing, stats);

  // Replay the minimized schedule twice: the failure must reproduce and
  // the two replays must agree bit-for-bit, or the artifact is not a
  // trustworthy counterexample.
  RunOutcome first = run_schedule(minimized);
  RunOutcome second = run_schedule(minimized);
  stats.runs += 2;
  finding.replay_confirmed = first.failed && first.kind == failing.kind &&
                             first.rule == failing.rule && second.failed &&
                             first.digest == second.digest;

  const RunOutcome& recorded = first.failed ? first : failing;
  finding.schedule.scenario = scenario_.name;
  finding.schedule.kind = finding_kind_name(finding.kind);
  finding.schedule.rule = finding.rule;
  finding.schedule.detail = recorded.detail;
  finding.schedule.digest = recorded.digest;
  finding.schedule.events = recorded.events;
  finding.schedule.choices = minimized;
  finding.schedule.arities.reserve(minimized.size());
  for (std::size_t i = 0; i < minimized.size() && i < recorded.decisions.size(); ++i) {
    finding.schedule.arities.push_back(recorded.decisions[i].arity);
  }
  return finding;
}

ExploreResult Explorer::explore() {
  ExploreResult result;
  ExploreStats& stats = result.stats;

  // Phase 0 — determinism gate: the default schedule must reproduce
  // itself exactly, or prefix steering (and therefore the whole search)
  // is meaningless.
  RunOutcome base = run_schedule({});
  RunOutcome base_again = run_schedule({});
  stats.runs += 2;
  stats.baseline_decisions = base.decisions.size();
  stats.baseline_events = base.events;
  stats.baseline_digest = base.digest;
  if (base.digest != base_again.digest || base.choices != base_again.choices) {
    Finding finding;
    finding.kind = FindingKind::kDivergence;
    finding.scenario = scenario_.name;
    finding.rule = "digest_divergence";
    finding.detail = "default schedule ran twice with digests " + to_hex_u64(base.digest) +
                     " vs " + to_hex_u64(base_again.digest);
    finding.schedule.scenario = scenario_.name;
    finding.schedule.kind = finding_kind_name(finding.kind);
    finding.schedule.rule = finding.rule;
    finding.schedule.detail = finding.detail;
    finding.schedule.digest = base.digest;
    finding.schedule.events = base.events;
    result.findings.push_back(std::move(finding));
    return result;  // unsound to search on a nondeterministic scenario
  }

  std::vector<std::string> seen;
  auto record = [&](const RunOutcome& outcome) {
    const std::string key = std::string(finding_kind_name(outcome.kind)) + "|" + outcome.rule;
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) return;
    seen.push_back(key);
    result.findings.push_back(build_finding(outcome, stats));
  };

  // Phase 1 — DFS over decision prefixes. A child prefix replays a run's
  // choices up to decision d, then forces alternative `alt`; only
  // decisions at index >= the parent prefix length are expanded (earlier
  // ones were expanded when their own parent ran).
  std::vector<std::vector<std::uint32_t>> frontier;
  auto expand = [&](const RunOutcome& outcome, std::size_t from) {
    const std::size_t depth = std::min(outcome.decisions.size(), budget_.max_depth);
    std::vector<std::vector<std::uint32_t>> children;
    for (std::size_t d = from; d < depth; ++d) {
      const Decision& decision = outcome.decisions[d];
      std::uint32_t enqueued_here = 0;
      for (std::uint32_t alt = 1; alt < decision.arity; ++alt) {
        if (alt == decision.chosen) continue;  // this run covers it
        if (enqueued_here + 1 >= budget_.max_branch) break;
        if (budget_.reduction && commutes_with_all_earlier(decision.scopes, alt)) {
          ++stats.pruned;
          continue;
        }
        std::vector<std::uint32_t> child(outcome.choices.begin(),
                                         outcome.choices.begin() + static_cast<long>(d));
        child.push_back(alt);
        children.push_back(std::move(child));
        ++enqueued_here;
      }
    }
    stats.enqueued += children.size();
    // Stack discipline: push in reverse so the earliest decision's first
    // alternative is explored next.
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      frontier.push_back(std::move(*it));
    }
  };

  if (base.failed) {
    record(base);
  } else {
    expand(base, 0);
  }
  while (!frontier.empty() && stats.runs < budget_.max_runs) {
    std::vector<std::uint32_t> prefix = std::move(frontier.back());
    frontier.pop_back();
    const std::size_t prefix_len = prefix.size();
    RunOutcome outcome = run_schedule(prefix);
    ++stats.runs;
    if (outcome.failed) {
      record(outcome);
    } else {
      expand(outcome, prefix_len);
    }
  }
  stats.frontier_exhausted = frontier.empty();

  // Phase 2 — seeded schedule fuzzing: uniform random walks through the
  // same decision space, for depth the bounded DFS cannot reach.
  for (std::uint64_t i = 0; i < budget_.fuzz_runs; ++i) {
    RunOutcome outcome =
        run_schedule({}, ControlledPolicy::Tail::kRandom, mix_seed(budget_.seed, i));
    ++stats.runs;
    if (outcome.failed) record(outcome);
  }
  return result;
}

}  // namespace fabsim::explore

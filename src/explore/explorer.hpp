// FabricExplore: bounded schedule-space model checking for FabricSim.
//
// FabricCheck (src/check/) audits the one schedule a run actually
// executes. FabricExplore asks the complementary question: is there any
// *legal* schedule — any tie-break among co-enabled same-timestamp
// events — under which a bounded scenario breaks? It drives the same
// simulation through the Engine's pluggable SchedulePolicy seam,
// enumerating interleavings with a DFS over decision prefixes
// (stateless model checking: every run restarts the scenario from
// scratch and steers it with a recorded prefix), pruning redundant
// orders of commuting events (DPOR-style, using the scope labels posts
// carry), and classifying each run as clean or as a finding:
//
//   * invariant  — a FabricCheck rule fired that the scenario did not
//                  declare as expected,
//   * deadlock   — the event queue drained with a non-daemon process
//                  still suspended (the engine's lost_wakeup audit),
//   * divergence — the same schedule produced two different run digests
//                  (nondeterminism: the search itself is unsound),
//   * expectation — the scenario's own end-state assertion failed or
//                  the workload threw.
//
// Failing schedules are greedily minimized (each non-default choice is
// restored to the default if the failure survives), replay-verified,
// and serialized as Schedule JSON artifacts (schedule.hpp).
//
// See docs/model_checking.md for the architecture and the soundness
// argument for the reduction.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "explore/policy.hpp"
#include "explore/schedule.hpp"

namespace fabsim {
class Engine;
namespace core {
class Cluster;
}
}  // namespace fabsim

namespace fabsim::explore {

enum class FindingKind : std::uint8_t { kInvariant, kDeadlock, kDivergence, kExpectation };

const char* finding_kind_name(FindingKind kind);

/// Per-run harness handed to a scenario body. The body builds its
/// cluster/engine, calls arm() before spawning the workload, runs the
/// engine, asserts its end state through expect(), and calls finish()
/// so the outcome (digest, violations, liveness) can be classified.
class RunContext {
 public:
  explicit RunContext(ControlledPolicy& policy) : policy_(policy), monitor_(/*fatal=*/false) {}

  /// Attach the schedule policy + a counting invariant monitor to a bare
  /// engine (toy scenarios, unit tests).
  void arm(Engine& engine);
  /// Same, via Cluster::attach_monitor so the cluster-wide quiescent
  /// audits (frame conservation, queue disjointness) are registered too.
  void arm(core::Cluster& cluster);

  /// Declare a rule the scenario expects to fire (e.g. a fault scenario
  /// that legitimately ends in error_pending_completion). Expected rules
  /// are not findings.
  void allow_rule(std::string rule) { allowed_rules_.push_back(std::move(rule)); }

  /// Scenario end-state assertion; a failed expectation is a finding.
  void expect(bool ok, std::string what) {
    if (!ok) expectation_failures_.push_back(std::move(what));
  }

  /// Capture the run outcome; call after the final Engine::run().
  void finish(Engine& engine);

  check::InvariantMonitor& monitor() { return monitor_; }

 private:
  friend class Explorer;

  ControlledPolicy& policy_;
  check::InvariantMonitor monitor_;
  std::vector<std::string> allowed_rules_;
  std::vector<std::string> expectation_failures_;
  bool armed_ = false;
  bool finished_ = false;
  std::uint64_t digest_ = 0;
  std::uint64_t events_ = 0;
  std::size_t stuck_processes_ = 0;
};

/// A bounded, deterministic workload the explorer can re-run at will.
/// The body must be self-contained: fresh cluster, fresh fault plan,
/// same construction every call — all run-to-run variation must come
/// from the schedule policy.
struct Scenario {
  std::string name;
  std::function<void(RunContext&)> body;
};

/// Outcome of one steered run.
struct RunOutcome {
  std::vector<Decision> decisions;      ///< every decision point observed
  std::vector<std::uint32_t> choices;   ///< chosen index per decision point
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  bool diverged = false;                ///< prefix index exceeded observed arity
  bool failed = false;
  FindingKind kind = FindingKind::kExpectation;
  std::string rule;
  std::string detail;
};

/// A failing schedule, minimized and replay-verified.
struct Finding {
  FindingKind kind = FindingKind::kExpectation;
  std::string scenario;
  std::string rule;
  std::string detail;
  Schedule schedule;             ///< minimized, replayable counterexample
  bool replay_confirmed = false; ///< replaying the artifact reproduced it
  std::size_t original_choices = 0;  ///< choice-trace length before minimization
};

struct ExploreBudget {
  std::uint64_t max_runs = 512;     ///< total steered runs (DFS frontier)
  std::size_t max_depth = 32;       ///< decision points eligible for branching
  std::uint32_t max_branch = 4;     ///< children enqueued per decision point
  std::uint64_t fuzz_runs = 0;      ///< extra seeded random-walk runs
  std::uint64_t seed = 1;           ///< fuzz seed
  std::uint64_t minimize_runs = 128;  ///< re-runs the minimizer may spend
  bool reduction = true;            ///< prune commuting alternatives
};

struct ExploreStats {
  std::uint64_t runs = 0;               ///< steered runs executed (all phases)
  std::uint64_t baseline_decisions = 0; ///< decision points on the default schedule
  std::uint64_t baseline_events = 0;    ///< events processed by the default schedule
  std::uint64_t baseline_digest = 0;    ///< run digest of the default schedule
  std::uint64_t enqueued = 0;           ///< DFS children scheduled
  std::uint64_t pruned = 0;             ///< alternatives skipped by commutativity
  bool frontier_exhausted = false;      ///< DFS finished before max_runs
};

struct ExploreResult {
  std::vector<Finding> findings;
  ExploreStats stats;
  bool clean() const { return findings.empty(); }
};

class Explorer {
 public:
  explicit Explorer(Scenario scenario, ExploreBudget budget = {})
      : scenario_(std::move(scenario)), budget_(budget) {}

  /// Baseline determinism check, then DFS over decision prefixes, then
  /// (if budgeted) the seeded schedule fuzzer. Findings are deduplicated
  /// by (kind, rule), minimized, and replay-verified.
  ExploreResult explore();

  /// One steered run of the scenario under a decision prefix.
  RunOutcome run_schedule(const std::vector<std::uint32_t>& prefix,
                          ControlledPolicy::Tail tail = ControlledPolicy::Tail::kDefault,
                          std::uint64_t seed = 0);

  /// Replay a serialized counterexample against a scenario.
  static RunOutcome replay(const Scenario& scenario, const Schedule& schedule);

 private:
  Finding build_finding(const RunOutcome& failing, ExploreStats& stats);
  std::vector<std::uint32_t> minimize(const RunOutcome& failing, ExploreStats& stats);

  Scenario scenario_;
  ExploreBudget budget_;
};

}  // namespace fabsim::explore

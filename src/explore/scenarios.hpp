// FabricExplore bounded scenario registry.
//
// Each scenario is a small, deterministic, self-contained workload
// (2–3 nodes, one or two messages, optionally a one-shot fault plan)
// with an explicit end-state expectation — the search targets the
// explorer enumerates schedules against. The same registry serves three
// callers: the exhaustive CI sweep (all scenarios must explore clean),
// the mutation self-test (the explorer must rediscover deliberately
// re-introduced bugs), and `ext_explore --schedule` replay.
#pragma once

#include <string>
#include <vector>

#include "explore/explorer.hpp"

namespace fabsim::explore {

/// Mutation seams for the explorer's self-test: each arms a test-only
/// config flag that re-introduces a historical (fixed) bug. See
/// ib::HcaConfig and docs/model_checking.md.
enum class Mutation : std::uint8_t {
  kNone,
  kStrandPendingReads,  ///< PR-4 regression: stranded RDMA read hangs the requester
  kDropFinalAck,        ///< responder swallows final-packet acks: spurious retry exhaustion
  kLeakCreditOnDrain,   ///< link-failure drain leaks one frame's committed buffer space
};

const char* mutation_name(Mutation mutation);
/// Parse "none" / "strand_pending_reads" / "drop_final_ack" /
/// "leak_credit_on_drain"; returns false on an unknown name.
bool mutation_from_name(const std::string& name, Mutation& out);

/// All bounded scenarios, with the given mutation seam armed in every
/// profile that supports it (the IB scenarios for the HCA seams, the
/// routed-fabric scenarios for the switch seam).
std::vector<Scenario> bounded_scenarios(Mutation mutation = Mutation::kNone);

/// Look up one scenario by name; throws std::out_of_range if unknown.
Scenario find_scenario(const std::string& name, Mutation mutation = Mutation::kNone);

}  // namespace fabsim::explore

// LRU registration (pin-down) cache.
//
// Keyed by (address, length); bounded both by entry count and by total
// pinned bytes. The byte bound is what makes the paper's buffer-re-use
// experiment (Fig 6) size-dependent: sixteen 64 KB buffers fit and hit,
// sixteen 1 MB buffers thrash. Used by the MX library internally and by
// MiniMPI's ch_verbs rendezvous path.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <vector>

namespace fabsim::hw {

class RegCache {
 public:
  RegCache(std::size_t max_entries, std::uint64_t max_bytes)
      : max_entries_(max_entries), max_bytes_(max_bytes) {}

  struct Evicted {
    std::uint64_t addr = 0;
    std::uint64_t len = 0;
    std::uint64_t user = 0;  ///< caller-supplied value (e.g. an MR key)
  };

  struct LookupResult {
    bool hit = false;
    std::uint64_t user = 0;  ///< user value of the hit entry
    /// Entries evicted to make room (caller pays deregistration).
    std::vector<Evicted> evicted;
  };

  /// Look up (addr, len); on miss, insert it with `user` attached and
  /// evict LRU entries until both bounds hold. The caller charges
  /// registration cost on miss and deregistration cost per eviction.
  LookupResult lookup(std::uint64_t addr, std::uint64_t len, std::uint64_t user = 0) {
    LookupResult result;
    const Key key{addr, len};
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      result.hit = true;
      result.user = it->second->user;
      ++hits_;
      return result;
    }
    ++misses_;
    // HOT-OK(registration-cache LRU node, bounded by the cache capacity)
    lru_.push_front(Entry{key, len, user});
    index_[key] = lru_.begin();
    bytes_ += len;
    while (lru_.size() > max_entries_ || bytes_ > max_bytes_) {
      if (lru_.size() == 1) break;  // never evict the entry just inserted
      const Entry& victim = lru_.back();
      bytes_ -= victim.len;
      // HOT-OK(eviction report bounded by the cache capacity; caller-drained per op)
      result.evicted.push_back(Evicted{victim.key.addr, victim.len, victim.user});
      index_.erase(victim.key);
      lru_.pop_back();
      ++evictions_;
    }
    return result;
  }

  /// Update the user value of the most recently inserted/hit entry.
  void set_front_user(std::uint64_t user) {
    if (!lru_.empty()) lru_.front().user = user;
  }

  /// Drop everything (cache disabled / teardown); returns the entries.
  std::vector<Evicted> flush() {
    std::vector<Evicted> out;
    for (const Entry& entry : lru_) out.push_back(Evicted{entry.key.addr, entry.len, entry.user});
    lru_.clear();
    index_.clear();
    bytes_ = 0;
    return out;
  }

  std::size_t entries() const { return lru_.size(); }
  std::uint64_t bytes() const { return bytes_; }

  // Lifetime traffic counters (flush() leaves them intact).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Key {
    std::uint64_t addr;
    std::uint64_t len;
    bool operator<(const Key& other) const {
      if (addr != other.addr) return addr < other.addr;
      return len < other.len;
    }
  };
  struct Entry {
    Key key;
    std::uint64_t len;
    std::uint64_t user;
  };

  std::size_t max_entries_;
  std::uint64_t max_bytes_;
  std::list<Entry> lru_;
  std::map<Key, std::list<Entry>::iterator> index_;
  std::uint64_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace fabsim::hw

// Host CPU cost model.
//
// Each MPI rank / benchmark process is bound to one CPU (the paper binds
// process affinity, §6). API calls charge their software overheads here;
// the elapsed simulated time inside a call is exactly what the paper's
// `MPI_Wtime`-based measurements see.
//
// Copies carry a cache-warmth model: a small LRU over touched pages
// decides whether a memcpy runs at cache speed or memory speed. This is
// what produces the eager-size buffer-re-use effect in Fig 6 — cycling
// through 16 distinct buffers evicts them from cache, re-using one buffer
// keeps it warm.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/time.hpp"

namespace fabsim::hw {

struct CpuConfig {
  /// Fixed cost of a memcpy call (call + setup).
  Time memcpy_base = ns(60);
  /// Copy bandwidth when source/target are cache-resident.
  Rate memcpy_warm_rate = Rate::mb_per_sec(4000.0);
  /// Copy bandwidth from/to DRAM (DDR2-era Xeon).
  Rate memcpy_cold_rate = Rate::mb_per_sec(1400.0);
  /// Effective cache capacity for the warmth model.
  std::uint64_t cache_bytes = 512 * 1024;
  std::uint64_t cache_page = 4096;
};

/// LRU page-residency model deciding whether a buffer is cache-warm.
class CacheModel {
 public:
  CacheModel(std::uint64_t capacity_bytes, std::uint64_t page)
      : capacity_pages_(capacity_bytes / page), page_(page) {}

  /// Touch [addr, addr+len); returns true if it was fully resident.
  bool touch(std::uint64_t addr, std::uint64_t len) {
    const std::uint64_t first = addr / page_;
    const std::uint64_t last = (addr + (len == 0 ? 0 : len - 1)) / page_;
    bool warm = true;
    for (std::uint64_t p = first; p <= last; ++p) {
      auto it = index_.find(p);
      if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
      } else {
        warm = false;
        lru_.push_front(p);
        index_[p] = lru_.begin();
        if (lru_.size() > capacity_pages_) {
          index_.erase(lru_.back());
          lru_.pop_back();
        }
      }
    }
    return warm;
  }

 private:
  std::uint64_t capacity_pages_;
  std::uint64_t page_;
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> index_;
};

class HostCpu {
 public:
  HostCpu(Engine& engine, CpuConfig config = {}, int node = -1)
      : engine_(&engine), config_(config), cache_(config.cache_bytes, config.cache_page),
        node_(node) {}

  /// Awaitable: consume `duration` of CPU time (serialized with other work
  /// charged to this CPU).
  Engine::SleepAwaiter compute(Time duration) {
    engine_->charge_phase(Phase::kHost, node_, duration);
    return serve(*engine_, core_, duration);
  }

  /// Awaitable: charge a memcpy touching user buffer `addr`.
  Engine::SleepAwaiter copy(std::uint64_t addr, std::uint64_t bytes) {
    return compute(copy_cost(addr, bytes));
  }

  /// Copy cost with cache-warmth lookup (updates the cache model).
  Time copy_cost(std::uint64_t addr, std::uint64_t bytes) {
    const bool warm = cache_.touch(addr, bytes);
    const Rate rate = warm ? config_.memcpy_warm_rate : config_.memcpy_cold_rate;
    return config_.memcpy_base + rate.bytes_time(bytes);
  }

  /// Non-coroutine booking, for NIC-driven work that consumes host CPU
  /// (e.g. page pinning in the kernel). Returns the completion time.
  Time charge(Time now, Time duration) {
    engine_->charge_phase(Phase::kHost, node_, duration);
    return core_.book(now, duration);
  }
  Time charge_copy(Time now, std::uint64_t addr, std::uint64_t bytes) {
    const Time cost = copy_cost(addr, bytes);
    engine_->charge_phase(Phase::kHost, node_, cost);
    return core_.book(now, cost);
  }

  Time busy_time() const { return core_.busy_time(); }
  const CpuConfig& config() const { return config_; }
  int node() const { return node_; }

 private:
  Engine* engine_;
  CpuConfig config_;
  SerialServer core_;
  CacheModel cache_;
  int node_ = -1;
};

}  // namespace fabsim::hw

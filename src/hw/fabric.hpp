// Switch fabric model.
//
// Topology: every NIC connects to one switch port by a full-duplex link.
// The transmit-side serialization is booked by the *NIC* (its tx server),
// so the switch model covers: ingress propagation -> cut-through latency ->
// output-port serialization (contention point) -> egress propagation ->
// delivery to the destination NIC's FrameSink.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/audits.hpp"
#include "fault/injector.hpp"
#include "hw/frame.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/time.hpp"

namespace fabsim::hw {

struct SwitchConfig {
  Rate link_rate;        ///< per-direction link bandwidth
  Time cut_through = 0;  ///< fixed switch traversal latency
  Time propagation = 0;  ///< per-hop cable propagation delay
  /// Per-output-port buffer in bytes; 0 = unbounded. Ethernet switches
  /// tail-drop when the buffer overflows (the iWARP TCP recovers via
  /// go-back-N); IB and Myrinet fabrics are modelled lossless, so their
  /// profiles leave this at 0.
  std::uint64_t max_queue_bytes = 0;
};

class Switch {
 public:
  Switch(Engine& engine, SwitchConfig config) : engine_(&engine), config_(config) {}

  /// Attach a receive sink; returns the port number. The same port number
  /// is used as the node's address on this fabric.
  int attach(FrameSink& sink) {
    ports_.push_back(Port{&sink, SerialServer{}});
    return static_cast<int>(ports_.size()) - 1;
  }

  /// Frame handed over by the source NIC at the moment its last bit left
  /// the NIC (the NIC booked tx serialization already).
  void ingress(Frame frame) {
    const int dst = frame.dst_node;
    Port& out = ports_.at(static_cast<std::size_t>(dst));
    Time at_switch = engine_->now() + config_.propagation + config_.cut_through;
    ++frames_ingressed_;

    if (fault::FaultInjector* injector = engine_->fault_injector()) {
      const fault::FaultDecision decision = injector->on_frame(
          fault::FaultSite{engine_->now(), frame.src_node, frame.dst_node, frame.wire_bytes});
      switch (decision.action) {
        case fault::FaultAction::kDrop:
          ++fault_drops_;
          engine_->trace(TraceCategory::kWire, frame.src_node,
                         "FAULT drop " + std::to_string(frame.src_node) + "->" +
                             std::to_string(frame.dst_node) + " " +
                             std::to_string(frame.wire_bytes) + "B");
          return;
        case fault::FaultAction::kCorrupt:
          ++fault_corruptions_;
          engine_->trace(TraceCategory::kWire, frame.src_node,
                         "FAULT corrupt " + std::to_string(frame.src_node) + "->" +
                             std::to_string(frame.dst_node));
          frame.corrupted = true;
          break;
        case fault::FaultAction::kDelay:
          ++fault_delays_;
          engine_->trace(TraceCategory::kWire, frame.src_node,
                         "FAULT delay " + std::to_string(frame.src_node) + "->" +
                             std::to_string(frame.dst_node) + " +" +
                             std::to_string(to_us(decision.delay)) + "us");
          at_switch += decision.delay;
          break;
        case fault::FaultAction::kDeliver:
          break;
      }
    }

    if (out.tx.busy_until() > at_switch && !config_.link_rate.is_zero()) {
      // Backlog already booked on this output port, in bytes at link rate.
      const double backlog_bytes = static_cast<double>(out.tx.busy_until() - at_switch) /
                                   config_.link_rate.ps_per_byte();
      if (backlog_bytes > out.queue_hwm_bytes) out.queue_hwm_bytes = backlog_bytes;
      if (config_.max_queue_bytes > 0 &&
          backlog_bytes + frame.wire_bytes > static_cast<double>(config_.max_queue_bytes)) {
        ++out.drops;
        if (MetricRegistry* m = engine_->metrics()) {
          m->counter("switch.port" + std::to_string(dst) + ".tail_drops").add();
        }
        return;
      }
    }

    if (check::InvariantMonitor* monitor = engine_->monitor();
        monitor != nullptr && out.tx.busy_until() > at_switch && !config_.link_rate.is_zero()) {
      // Occupancy bound: the frame was admitted, so the backlog it joins
      // must still fit the configured port buffer.
      const double backlog = static_cast<double>(out.tx.busy_until() - at_switch) /
                             config_.link_rate.ps_per_byte();
      check::audit_switch_occupancy(backlog, frame.wire_bytes, config_.max_queue_bytes)
          .report(monitor, engine_->now(), check::Layer::kHw, dst);
    }

    ++frames_forwarded_;
    const Time serialization = config_.link_rate.bytes_time(frame.wire_bytes);
    const Time sent = out.tx.book(at_switch, serialization);
    const Time delivered = sent + config_.propagation;
    // Wire phase: serialization through the congested output port plus
    // the fixed traversal costs, attributed to the sender.
    engine_->charge_phase(Phase::kWire, frame.src_node,
                          serialization + config_.cut_through + 2 * config_.propagation);
    // Scope label: delivery runs entirely inside the destination NIC
    // (sink == the NIC attached to port `dst`), so co-enabled deliveries
    // to different ports commute for schedule exploration.
    engine_->post(delivered, /*scope=*/dst, [sink = out.sink, f = std::move(frame)]() mutable {
      sink->deliver(std::move(f));
    });
  }

  const SwitchConfig& config() const { return config_; }
  std::size_t num_ports() const { return ports_.size(); }

  /// Total bytes-time booked on an output port (for utilization checks).
  Time output_busy_time(int port) const {
    return ports_.at(static_cast<std::size_t>(port)).tx.busy_time();
  }

  /// Frames tail-dropped at an output port (bounded-buffer mode only).
  std::uint64_t output_drops(int port) const {
    return ports_.at(static_cast<std::size_t>(port)).drops;
  }

  /// High-water mark of an output port's queued backlog, in bytes.
  double output_queue_hwm_bytes(int port) const {
    return ports_.at(static_cast<std::size_t>(port)).queue_hwm_bytes;
  }

  // Frames perturbed by the attached fault injector at this switch.
  std::uint64_t fault_drops() const { return fault_drops_; }
  std::uint64_t fault_corruptions() const { return fault_corruptions_; }
  std::uint64_t fault_delays() const { return fault_delays_; }

  // Conservation accounting: every ingressed frame is forwarded,
  // fault-dropped, or tail-dropped.
  std::uint64_t frames_ingressed() const { return frames_ingressed_; }
  std::uint64_t frames_forwarded() const { return frames_forwarded_; }
  std::uint64_t tail_drops_total() const {
    std::uint64_t drops = 0;
    for (const Port& port : ports_) drops += port.drops;
    return drops;
  }

  /// Whole-switch conservation audit (registered as a monitor final
  /// check by core::Cluster; also cross-checked against the FaultPlan's
  /// own drop counter there).
  check::Verdict audit_conservation() const {
    return check::audit_switch_conservation(frames_ingressed_, frames_forwarded_, fault_drops_,
                                            tail_drops_total());
  }

 private:
  struct Port {
    FrameSink* sink;
    SerialServer tx;  // output-port serialization: the contention point
    std::uint64_t drops = 0;
    double queue_hwm_bytes = 0.0;  // backlog high-water mark
  };

  Engine* engine_;
  SwitchConfig config_;
  std::vector<Port> ports_;
  std::uint64_t fault_drops_ = 0;
  std::uint64_t fault_corruptions_ = 0;
  std::uint64_t fault_delays_ = 0;
  std::uint64_t frames_ingressed_ = 0;
  std::uint64_t frames_forwarded_ = 0;
};

}  // namespace fabsim::hw

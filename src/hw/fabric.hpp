// Switch fabric model.
//
// A Switch runs in one of two modes:
//
//  * Direct (the seed model): every NIC connects to one switch port by a
//    full-duplex link and the port number doubles as the node's fabric
//    address. The transmit-side serialization is booked by the *NIC* (its
//    tx server), so the switch covers: ingress propagation -> cut-through
//    latency -> output-port serialization (contention point) -> egress
//    propagation -> delivery to the destination NIC's FrameSink. The
//    output port is a pure booking horizon; a bounded buffer tail-drops.
//
//  * Routed (multi-stage fabrics, built only by topo::Topology): ports
//    face either NICs or other switches, an LFT (linear forwarding
//    table, destination node -> output port) computed at build time picks
//    the egress, and each output port runs an event-driven FIFO queue so
//    backpressure is observable. Per-link flow control comes in two
//    flavours (SwitchConfig::flow): kLossy tail-drops at output-queue
//    admission (Ethernet), kCredit holds the frame *upstream* until the
//    next hop's output queue has room (IB-style credits / PAUSE), so
//    congestion spreads hop by hop instead of dropping.
//
// Routed switches are failure-aware (FabricFail): topo::Topology can
// mark ports (links) or the whole switch down, drain or requeue the
// affected queues per flow-control mode, and recompute LFTs around the
// failed element. Frames that meet a failure are counted (down_drops /
// unroutable_drops) so per-hop conservation still balances, and credit
// commitments are always returned — link failure must never leak
// occupancy (audit_switch_queue_drained proves it at quiescence).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/audits.hpp"
#include "fault/injector.hpp"
#include "hw/frame.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/scope.hpp"
#include "sim/time.hpp"

namespace fabsim::hw {

/// Link-level flow control for routed-mode switches.
enum class FlowControl : std::uint8_t {
  kLossy,   ///< tail-drop at output-queue admission (Ethernet / iWARP)
  kCredit,  ///< hop-by-hop credits: sender stalls until downstream has buffer
};

inline const char* flow_control_name(FlowControl flow) {
  return flow == FlowControl::kCredit ? "credit" : "lossy";
}

struct SwitchConfig {
  Rate link_rate;        ///< per-direction link bandwidth
  Time cut_through = 0;  ///< fixed switch traversal latency
  Time propagation = 0;  ///< per-hop cable propagation delay
  /// Per-output-port buffer in bytes; 0 = unbounded. Ethernet switches
  /// tail-drop when the buffer overflows (the iWARP TCP recovers via
  /// go-back-N); IB and Myrinet fabrics are modelled lossless, so their
  /// profiles leave this at 0.
  std::uint64_t max_queue_bytes = 0;
  /// Routed mode only: flow control on this switch's ingress buffers.
  FlowControl flow = FlowControl::kLossy;
  /// Switch id within a topo::Topology (metric/trace labels); 0 for the
  /// seed's single crossbar.
  int id = 0;

  /// True when congestion alone can lose a frame on this fabric: bounded
  /// buffers under tail-drop flow control. Stacks whose reliability
  /// machinery is armed lazily (MX firmware) consult this in addition to
  /// fault::faults_armed().
  bool can_drop() const { return flow == FlowControl::kLossy && max_queue_bytes != 0; }

  /// Test-only mutation seam (FabricExplore): re-introduce the credit
  /// leak the down-drain path originally shipped with — the first frame
  /// drained off a failed port keeps its committed occupancy, so the
  /// quiescence audit (queue drained, occupancy zero) must catch it.
  bool mutation_leak_credit_on_drain = false;

  /// Test-only mutation seam (FabricScope-Check): label the routed-mode
  /// admission event with the *source node's* scope instead of -1. The
  /// admitted frame mutates shared switch queue state, so the label is a
  /// lie — scope_check.py --mutation must flag the call site statically
  /// and the ScopeAuditor must trap Switch::admit dynamically.
  bool mutation_mislabel_wire_scope = false;
};

class Switch {
 public:
  Switch(Engine& engine, SwitchConfig config) : engine_(&engine), config_(config) {}

  /// Attach a receive sink; returns the node's address on this fabric.
  /// Direct mode: the port number itself. Routed mode: the globally
  /// unique endpoint id the owning Topology reserved for this port (and
  /// the local LFT learns dst -> this port).
  int attach(FrameSink& sink);

  /// Frame handed over by the source NIC at the moment its last bit left
  /// the NIC (the NIC booked tx serialization already).
  void ingress(Frame frame);

  // --- Routed mode (driven by topo::Topology builders only) -------------

  /// Switch participates in a routed fabric of `num_nodes` endpoints;
  /// allocates the LFT (all entries unroutable until set).
  void enable_routing(int num_nodes);
  bool routed() const { return !lft_.empty(); }

  /// LFT entry: frames for `dst_node` leave through `port`.
  void set_route(int dst_node, int port);
  /// Output port for `dst_node` (identity in direct mode); throws when
  /// the LFT has no entry — building-time routing bugs must be loud.
  int route(int dst_node) const;
  /// Degraded-mode lookup: -1 when no path exists (a failure
  /// partitioned the fabric). The data path uses this form and counts
  /// the frame as an unroutable drop instead of throwing, so per-stack
  /// timeout machinery (not an exception) owns recovery.
  int route_lookup(int dst_node) const {
    if (!routed()) return dst_node;
    return lft_.at(static_cast<std::size_t>(dst_node));
  }
  const std::vector<int>& lft() const { return lft_; }

  // --- Failure state (driven by topo::Topology failover only) ---------

  /// Mark one port's link down/up. While down the port neither admits
  /// nor transmits; restoring kicks the transmit pump.
  void set_port_down(int port);
  void set_port_up(int port);
  bool port_down(int port) const { return ports_.at(static_cast<std::size_t>(port)).down; }

  /// Whole-switch failure: every arrival is counted and dropped (with
  /// its credit commitment returned) until the switch is restored.
  void set_switch_down(bool down) { down_ = down; }
  bool switch_down() const { return down_; }

  /// Drain a failed port after the owning Topology recomputed LFTs:
  /// credit flow control requeues each frame onto its rerouted output
  /// port (no path -> counted drop), lossy drops and counts. Committed
  /// occupancy is released either way — link failure never leaks
  /// credits.
  void requeue_down_port(int port);

  /// Dead-switch drain: drop every queued frame on every port (both
  /// flow-control modes — the switch lost its buffers), releasing all
  /// committed occupancy and waking stalled upstreams.
  void drain_all_drop();

  /// Reserve the next NIC-facing attach() for global endpoint `node_id`
  /// (reservations are consumed in FIFO order).
  void expect_endpoint(int node_id);

  /// Add a switch-facing port wired toward `peer`; returns the port.
  /// Call on both switches to form a full-duplex link.
  int connect_to(Switch& peer);

  /// Peer switch behind `port` (nullptr for NIC-facing ports).
  const Switch* port_peer(int port) const {
    return ports_.at(static_cast<std::size_t>(port)).peer;
  }

  // --- Accessors --------------------------------------------------------

  const SwitchConfig& config() const { return config_; }
  std::size_t num_ports() const { return ports_.size(); }

  /// Total bytes-time booked on an output port (for utilization checks).
  Time output_busy_time(int port) const {
    return ports_.at(static_cast<std::size_t>(port)).tx.busy_time();
  }

  /// Frames tail-dropped at an output port (bounded-buffer mode only).
  std::uint64_t output_drops(int port) const {
    return ports_.at(static_cast<std::size_t>(port)).drops;
  }

  /// Fault-injector drops attributed to the output port the frame was
  /// routed to (so drops are port-attributable, not just switch-global).
  std::uint64_t output_fault_drops(int port) const {
    return ports_.at(static_cast<std::size_t>(port)).fault_drops;
  }

  /// High-water mark of an output port's queued backlog, in bytes.
  double output_queue_hwm_bytes(int port) const {
    return ports_.at(static_cast<std::size_t>(port)).queue_hwm_bytes;
  }

  /// Routed mode: high-water mark of whole frames queued at a port.
  std::uint64_t output_queue_hwm_frames(int port) const {
    return ports_.at(static_cast<std::size_t>(port)).queue_hwm_frames;
  }

  /// Routed mode: times the head-of-line frame found the downstream
  /// buffer full and the port had to stall (credit flow control only).
  std::uint64_t output_credit_stalls(int port) const {
    return ports_.at(static_cast<std::size_t>(port)).credit_stalls;
  }

  /// Routed mode: total simulated time this port spent paused waiting
  /// for downstream credits.
  Time output_pause_time(int port) const {
    return ports_.at(static_cast<std::size_t>(port)).pause_time;
  }

  /// Routed mode: current committed occupancy of a port's output buffer
  /// (bytes queued plus credit-reserved in flight toward it).
  std::int64_t output_occupancy_bytes(int port) const {
    return ports_.at(static_cast<std::size_t>(port)).occupancy_bytes;
  }

  std::size_t output_queue_frames(int port) const {
    return ports_.at(static_cast<std::size_t>(port)).queue.size();
  }

  // Frames perturbed by the attached fault injector at this switch.
  std::uint64_t fault_drops() const { return fault_drops_; }
  std::uint64_t fault_corruptions() const { return fault_corruptions_; }
  std::uint64_t fault_delays() const { return fault_delays_; }

  // Frames lost to fabric failures at this switch: met a down
  // link/switch (down_drops) or had no surviving path after a reroute
  // (unroutable_drops).
  std::uint64_t down_drops() const { return down_drops_; }
  std::uint64_t unroutable_drops() const { return unroutable_drops_; }

  // Conservation accounting: every ingressed frame is forwarded,
  // fault-dropped, tail-dropped, lost to a failed element, or
  // unroutable. In routed mode "ingressed" counts frames entering this
  // switch from NICs *and* upstream switches, and "forwarded" counts
  // output-port transmissions (to a NIC or the next switch), so the
  // identity holds per hop.
  std::uint64_t frames_ingressed() const { return frames_ingressed_; }
  std::uint64_t frames_forwarded() const { return frames_forwarded_; }
  std::uint64_t tail_drops_total() const {
    std::uint64_t drops = 0;
    for (const Port& port : ports_) drops += port.drops;
    return drops;
  }

  /// Whole-switch conservation audit (registered as a monitor final
  /// check by core::Cluster; also cross-checked against the FaultPlan's
  /// own drop counter there).
  check::Verdict audit_conservation() const {
    return check::audit_switch_conservation(frames_ingressed_, frames_forwarded_, fault_drops_,
                                            tail_drops_total(), down_drops_, unroutable_drops_);
  }

  /// Routed-mode quiescence audits: once the event queue drains, every
  /// output queue must be empty and every consumed credit returned.
  void audit_quiescence(check::InvariantMonitor& monitor, Time now) const;

 private:
  /// "Not stalled" sentinel for Port::stall_since (Time is unsigned).
  static constexpr Time kNotStalled = ~Time{0};

  struct Port {
    FrameSink* sink = nullptr;  // NIC-facing egress (null for switch links)
    Switch* peer = nullptr;     // switch-facing egress (null for NIC ports)
    SerialServer tx;            // output-port serialization: the contention point
    std::uint64_t drops = 0;
    std::uint64_t fault_drops = 0;
    double queue_hwm_bytes = 0.0;  // backlog high-water mark
    // Routed mode: event-driven output queue + flow-control state.
    std::deque<Frame> queue;
    std::int64_t occupancy_bytes = 0;  // queued + credit-committed in flight
    bool transmitting = false;
    bool waiting = false;  // registered as a waiter on a downstream port
    Time stall_since = kNotStalled;
    Time pause_time = 0;
    std::uint64_t credit_stalls = 0;
    std::uint64_t queue_hwm_frames = 0;
    /// Upstream ports stalled on this queue's space, FIFO (determinism).
    std::vector<std::pair<Switch*, int>> waiters;
    /// Link failure: the port neither admits nor transmits while down.
    bool down = false;
  };

  // Direct (seed) data path: booking model, port index == node address.
  void ingress_direct(Frame frame);

  // Routed data path: LFT + event-driven per-port queues.
  void ingress_routed(Frame frame);
  /// Frame arriving from an upstream switch (cut-through already paid).
  void link_arrival(Frame frame);
  /// Admission into output `port`. `credit_reserved` marks frames whose
  /// buffer space was already committed upstream at credit-grant time.
  void admit(int port, Frame frame, bool credit_reserved);
  void try_transmit(int port);
  /// Wake path for a port stalled on downstream credits: clears the
  /// waiter registration, then retries.
  void retry_transmit(int port);
  /// Decrement a queue's committed occupancy and wake stalled upstreams.
  void release_occupancy(int port, std::uint32_t bytes);

  /// Fault-injection seam shared by both modes; returns false when the
  /// frame was dropped. `out_port` attributes the drop.
  bool apply_faults(Frame& frame, int out_port, Time& at_switch);

  // Scope/ownership annotations (scripts/scope_check.py, src/sim/scope.hpp).
  FABSIM_ENGINE_LOCAL;  // engine plumbing + build-time configuration
  Engine* engine_;
  SwitchConfig config_;
  FABSIM_SHARED;  // fabric state: frames from every node funnel through the
                  // port queues, LFT and conservation counters, so touching
                  // them is only legal from scope -1 events
  std::vector<Port> ports_;
  std::vector<int> lft_;  // routed mode: dst node -> output port (-1 unset)
  std::vector<int> pending_endpoint_ids_;
  std::size_t next_pending_ = 0;
  std::uint64_t fault_drops_ = 0;
  std::uint64_t fault_corruptions_ = 0;
  std::uint64_t fault_delays_ = 0;
  std::uint64_t frames_ingressed_ = 0;
  std::uint64_t frames_forwarded_ = 0;
  std::uint64_t down_drops_ = 0;
  std::uint64_t unroutable_drops_ = 0;
  bool down_ = false;         ///< whole-switch failure
  bool leak_spent_ = false;   ///< mutation seam: one leak, once
};

}  // namespace fabsim::hw

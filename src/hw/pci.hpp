// Host I/O bus models.
//
// PcieBus: full duplex — independent serializers per direction, with a
// per-transaction setup latency and a payload efficiency factor (TLP
// headers). PcixBus: a single half-duplex serializer shared by both
// directions — this is the NetEffect NE010e's internal 64-bit/133 MHz
// PCI-X bus, the bandwidth bottleneck the paper calls out (1064 MB/s raw,
// shared between send and receive DMA).
#pragma once

#include <cstdint>

#include "sim/resource.hpp"
#include "sim/time.hpp"

namespace fabsim::hw {

struct PciConfig {
  Rate rate;                ///< effective payload bandwidth per direction
  Time transaction = 0;     ///< fixed latency per DMA transaction
};

/// Full-duplex host bus (PCI Express).
class PcieBus {
 public:
  explicit PcieBus(PciConfig config) : config_(config) {}

  /// DMA read by the device from host memory (descriptor/data fetch).
  /// Returns completion time of the full transfer.
  Time dma_read(Time now, std::uint64_t bytes) { return dma(to_device_, now, bytes); }

  /// DMA write by the device into host memory (data delivery, completions).
  Time dma_write(Time now, std::uint64_t bytes) { return dma(from_device_, now, bytes); }

  /// CPU-initiated posted write to the device (doorbell). Cheap and does
  /// not occupy the DMA serializers.
  Time doorbell(Time now) const { return now + config_.transaction; }

  const PciConfig& config() const { return config_; }
  Time read_busy_time() const { return to_device_.busy_time(); }
  Time write_busy_time() const { return from_device_.busy_time(); }

 private:
  Time dma(SerialServer& dir, Time now, std::uint64_t bytes) {
    return dir.book(now, config_.transaction + config_.rate.bytes_time(bytes));
  }

  PciConfig config_;
  SerialServer to_device_;
  SerialServer from_device_;
};

/// Half-duplex shared bus (PCI-X): both directions contend for one
/// serializer.
class PcixBus {
 public:
  explicit PcixBus(PciConfig config) : config_(config) {}

  Time transfer(Time now, std::uint64_t bytes) {
    return bus_.book(now, config_.transaction + config_.rate.bytes_time(bytes));
  }

  const PciConfig& config() const { return config_; }
  Time busy_time() const { return bus_.busy_time(); }

 private:
  PciConfig config_;
  SerialServer bus_;
};

}  // namespace fabsim::hw

// Host I/O bus models.
//
// PcieBus: full duplex — independent serializers per direction, with a
// per-transaction setup latency and a payload efficiency factor (TLP
// headers). PcixBus: a single half-duplex serializer shared by both
// directions — this is the NetEffect NE010e's internal 64-bit/133 MHz
// PCI-X bus, the bandwidth bottleneck the paper calls out (1064 MB/s raw,
// shared between send and receive DMA).
#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/time.hpp"

namespace fabsim::hw {

struct PciConfig {
  Rate rate;                ///< effective payload bandwidth per direction
  Time transaction = 0;     ///< fixed latency per DMA transaction
};

/// Full-duplex host bus (PCI Express).
class PcieBus {
 public:
  explicit PcieBus(PciConfig config) : config_(config) {}

  /// Attribute future DMA time to the NIC phase of `node` (FabricScope).
  void set_owner(Engine* engine, int node) {
    engine_ = engine;
    node_ = node;
  }

  /// DMA read by the device from host memory (descriptor/data fetch).
  /// Returns completion time of the full transfer.
  Time dma_read(Time now, std::uint64_t bytes) {
    bytes_read_ += bytes;
    return dma(to_device_, now, bytes);
  }

  /// DMA write by the device into host memory (data delivery, completions).
  Time dma_write(Time now, std::uint64_t bytes) {
    bytes_written_ += bytes;
    return dma(from_device_, now, bytes);
  }

  /// CPU-initiated posted write to the device (doorbell). Cheap and does
  /// not occupy the DMA serializers.
  Time doorbell(Time now) const { return now + config_.transaction; }

  const PciConfig& config() const { return config_; }
  Time read_busy_time() const { return to_device_.busy_time(); }
  Time write_busy_time() const { return from_device_.busy_time(); }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  Time dma(SerialServer& dir, Time now, std::uint64_t bytes) {
    const Time cost = config_.transaction + config_.rate.bytes_time(bytes);
    if (engine_ != nullptr) engine_->charge_phase(Phase::kNic, node_, cost);
    return dir.book(now, cost);
  }

  PciConfig config_;
  SerialServer to_device_;
  SerialServer from_device_;
  Engine* engine_ = nullptr;
  int node_ = -1;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
};

/// Half-duplex shared bus (PCI-X): both directions contend for one
/// serializer.
class PcixBus {
 public:
  explicit PcixBus(PciConfig config) : config_(config) {}

  /// Attribute future transfer time to the NIC phase of `node`.
  void set_owner(Engine* engine, int node) {
    engine_ = engine;
    node_ = node;
  }

  Time transfer(Time now, std::uint64_t bytes) {
    bytes_transferred_ += bytes;
    const Time cost = config_.transaction + config_.rate.bytes_time(bytes);
    if (engine_ != nullptr) engine_->charge_phase(Phase::kNic, node_, cost);
    return bus_.book(now, cost);
  }

  const PciConfig& config() const { return config_; }
  Time busy_time() const { return bus_.busy_time(); }
  std::uint64_t bytes_transferred() const { return bytes_transferred_; }

 private:
  PciConfig config_;
  SerialServer bus_;
  Engine* engine_ = nullptr;
  int node_ = -1;
  std::uint64_t bytes_transferred_ = 0;
};

}  // namespace fabsim::hw

#include "hw/memory.hpp"

#include <algorithm>
#include <cstring>

namespace fabsim::hw {

Buffer& AddressSpace::alloc(std::uint64_t size, bool with_data) {
  const std::uint64_t addr = next_addr_;
  // Page-align the next allocation so distinct buffers never share a page
  // (matters for the registration-cache experiments).
  next_addr_ += ((size + 4095) / 4096 + 1) * 4096;
  auto buffer = std::make_unique<Buffer>(addr, size, with_data);
  Buffer& ref = *buffer;
  buffers_.emplace(addr, std::move(buffer));
  return ref;
}

void AddressSpace::free(const Buffer& buffer) { buffers_.erase(buffer.addr()); }

Buffer* AddressSpace::find(std::uint64_t addr) {
  auto it = buffers_.upper_bound(addr);
  if (it == buffers_.begin()) return nullptr;
  --it;
  Buffer* buffer = it->second.get();
  if (addr >= buffer->addr() + buffer->size()) return nullptr;
  return buffer;
}

void AddressSpace::write(std::uint64_t addr, std::span<const std::byte> data) {
  Buffer* buffer = find(addr);
  if (buffer == nullptr || addr + data.size() > buffer->addr() + buffer->size()) {
    throw std::out_of_range("AddressSpace::write outside any buffer");
  }
  if (buffer->has_data() && !data.empty()) {
    std::memcpy(buffer->bytes().data() + (addr - buffer->addr()), data.data(), data.size());
  }
}

std::span<std::byte> AddressSpace::window(std::uint64_t addr, std::uint64_t len) {
  Buffer* buffer = find(addr);
  if (buffer == nullptr || addr + len > buffer->addr() + buffer->size()) {
    // HOT-OK(misuse guard; unreachable in a conforming run)
    throw std::out_of_range("AddressSpace::window outside any buffer");
  }
  if (!buffer->has_data()) {
    // HOT-OK(misuse guard; unreachable in a conforming run)
    throw std::logic_error("AddressSpace::window on a size-only buffer");
  }
  return buffer->bytes().subspan(addr - buffer->addr(), len);
}

MemoryRegistry::Key MemoryRegistry::register_region(std::uint64_t addr, std::uint64_t len) {
  const Key key = next_key_++;
  regions_.emplace(key, Region{key, addr, len});
  return key;
}

void MemoryRegistry::deregister(Key key) {
  if (regions_.erase(key) == 0) {
    throw std::invalid_argument("MemoryRegistry::deregister: unknown key");
  }
}

const MemoryRegistry::Region* MemoryRegistry::lookup(Key key) const {
  auto it = regions_.find(key);
  return it == regions_.end() ? nullptr : &it->second;
}

bool MemoryRegistry::covers(Key key, std::uint64_t addr, std::uint64_t len) const {
  const Region* region = lookup(key);
  return region != nullptr && addr >= region->addr && addr + len <= region->addr + region->len;
}

}  // namespace fabsim::hw

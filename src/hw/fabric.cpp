#include "hw/fabric.hpp"

#include <stdexcept>

namespace fabsim::hw {

namespace {

/// Metric-name prefix for one output port. The seed's single crossbar
/// keeps its flat names (switch.portN.*) so existing readers stay valid;
/// routed fabrics qualify by switch id (switch.sK.portN.*).
std::string port_prefix(const SwitchConfig& config, bool routed, int port) {
  if (!routed) return "switch.port" + std::to_string(port) + ".";
  return "switch.s" + std::to_string(config.id) + ".port" + std::to_string(port) + ".";
}

}  // namespace

int Switch::attach(FrameSink& sink) {
  Port port;
  port.sink = &sink;
  ports_.push_back(std::move(port));
  const int index = static_cast<int>(ports_.size()) - 1;
  if (!routed()) return index;
  if (next_pending_ >= pending_endpoint_ids_.size()) {
    throw std::logic_error("Switch::attach: no endpoint reservation on this switch (routed "
                           "fabrics assign addresses through topo::Topology)");
  }
  const int node_id = pending_endpoint_ids_[next_pending_++];
  set_route(node_id, index);
  return node_id;
}

void Switch::enable_routing(int num_nodes) {
  lft_.assign(static_cast<std::size_t>(num_nodes), -1);
}

void Switch::set_route(int dst_node, int port) {
  lft_.at(static_cast<std::size_t>(dst_node)) = port;
}

int Switch::route(int dst_node) const {
  if (!routed()) return dst_node;  // direct mode: address == port
  const int port = lft_.at(static_cast<std::size_t>(dst_node));
  if (port < 0) {
    throw std::logic_error("Switch::route: no LFT entry for node " + std::to_string(dst_node) +
                           " at switch " + std::to_string(config_.id));
  }
  return port;
}

void Switch::expect_endpoint(int node_id) { pending_endpoint_ids_.push_back(node_id); }

int Switch::connect_to(Switch& peer) {
  Port port;
  port.peer = &peer;
  ports_.push_back(std::move(port));
  return static_cast<int>(ports_.size()) - 1;
}

void Switch::ingress(Frame frame) {
  // Scope trap: ingress mutates shared fabric state (conservation
  // counters, port queues), so only a scope -1 event may run it.
  FABSIM_AUDIT_SHARED(*engine_, check::Layer::kHw, config_.id, "Switch::ingress");
  if (routed()) {
    ingress_routed(std::move(frame));
  } else {
    ingress_direct(std::move(frame));
  }
}

bool Switch::apply_faults(Frame& frame, int out_port, Time& at_switch) {
  fault::FaultInjector* injector = engine_->fault_injector();
  if (injector == nullptr) return true;
  // Routed fabrics address the hop: (switch id, routed output port)
  // names one directed link, so plans can fail individual cables. The
  // seed's direct crossbar keeps the unaddressed site (-1/-1).
  const fault::FaultDecision decision = injector->on_frame(
      fault::FaultSite{engine_->now(), frame.src_node, frame.dst_node, frame.wire_bytes,
                       routed() ? config_.id : -1, routed() ? out_port : -1});
  switch (decision.action) {
    case fault::FaultAction::kDrop:
      ++fault_drops_;
      ++ports_.at(static_cast<std::size_t>(out_port)).fault_drops;
      engine_->trace(TraceCategory::kWire, frame.src_node,
                     "FAULT drop " + std::to_string(frame.src_node) + "->" +
                         std::to_string(frame.dst_node) + " " +
                         std::to_string(frame.wire_bytes) + "B");
      return false;
    case fault::FaultAction::kCorrupt:
      ++fault_corruptions_;
      engine_->trace(TraceCategory::kWire, frame.src_node,
                     "FAULT corrupt " + std::to_string(frame.src_node) + "->" +
                         std::to_string(frame.dst_node));
      frame.corrupted = true;
      break;
    case fault::FaultAction::kDelay:
      ++fault_delays_;
      engine_->trace(TraceCategory::kWire, frame.src_node,
                     "FAULT delay " + std::to_string(frame.src_node) + "->" +
                         std::to_string(frame.dst_node) + " +" +
                         std::to_string(to_us(decision.delay)) + "us");
      at_switch += decision.delay;
      break;
    case fault::FaultAction::kDeliver:
      break;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Direct (seed) data path: pure booking arithmetic, no queues.
// ---------------------------------------------------------------------------

void Switch::ingress_direct(Frame frame) {
  const int dst = frame.dst_node;
  Port& out = ports_.at(static_cast<std::size_t>(dst));
  Time at_switch = engine_->now() + config_.propagation + config_.cut_through;
  ++frames_ingressed_;

  if (!apply_faults(frame, dst, at_switch)) return;

  if (out.tx.busy_until() > at_switch && !config_.link_rate.is_zero()) {
    // Backlog already booked on this output port, in bytes at link rate.
    const double backlog_bytes = static_cast<double>(out.tx.busy_until() - at_switch) /
                                 config_.link_rate.ps_per_byte();
    if (backlog_bytes > out.queue_hwm_bytes) out.queue_hwm_bytes = backlog_bytes;
    if (config_.max_queue_bytes > 0 &&
        backlog_bytes + frame.wire_bytes > static_cast<double>(config_.max_queue_bytes)) {
      ++out.drops;
      if (MetricRegistry* m = engine_->metrics()) {
        m->counter(port_prefix(config_, false, dst) + "tail_drops").add();
      }
      return;
    }
  }

  if (check::InvariantMonitor* monitor = engine_->monitor();
      monitor != nullptr && out.tx.busy_until() > at_switch && !config_.link_rate.is_zero()) {
    // Occupancy bound: the frame was admitted, so the backlog it joins
    // must still fit the configured port buffer.
    const double backlog = static_cast<double>(out.tx.busy_until() - at_switch) /
                           config_.link_rate.ps_per_byte();
    check::audit_switch_occupancy(backlog, frame.wire_bytes, config_.max_queue_bytes)
        .report(monitor, engine_->now(), check::Layer::kHw, dst);
  }

  ++frames_forwarded_;
  const Time serialization = config_.link_rate.bytes_time(frame.wire_bytes);
  const Time sent = out.tx.book(at_switch, serialization);
  const Time delivered = sent + config_.propagation;
  // Wire phase: serialization through the congested output port plus
  // the fixed traversal costs, attributed to the sender.
  engine_->charge_phase(Phase::kWire, frame.src_node,
                        serialization + config_.cut_through + 2 * config_.propagation);
  // Scope label: delivery runs entirely inside the destination NIC
  // (sink == the NIC attached to port `dst`), so co-enabled deliveries
  // to different ports commute for schedule exploration.
  engine_->post(delivered, /*scope=*/dst,  // SCOPE-OK(sink is the dst NIC's FrameSink — state owned by the labelled node; the frame is lambda-owned)
                [sink = out.sink, f = std::move(frame)]() mutable {
    sink->deliver(std::move(f));
  });
}

// ---------------------------------------------------------------------------
// Routed data path: LFT + event-driven per-port FIFO queues.
// ---------------------------------------------------------------------------

void Switch::ingress_routed(Frame frame) {
  ++frames_ingressed_;
  if (down_) {
    // The NIC fired into a dead edge switch: lost at the first hop. The
    // sender's timeout machinery owns recovery.
    ++down_drops_;
    return;
  }
  const int out = route_lookup(frame.dst_node);
  if (out < 0) {
    // Degraded mode: a failure partitioned the fabric and no path to
    // dst survives. Count and drop — per-stack retry exhaustion (IB
    // kRetryExceeded, iWARP/MX equivalents) surfaces the error.
    ++unroutable_drops_;
    engine_->trace(TraceCategory::kWire, frame.src_node,
                   "UNROUTABLE " + std::to_string(frame.src_node) + "->" +
                       std::to_string(frame.dst_node) + " at switch " +
                       std::to_string(config_.id));
    return;
  }
  Time at_switch = engine_->now() + config_.propagation + config_.cut_through;

  // Fault injection runs at every hop (here and in link_arrival), each
  // consult addressed with (switch, out port) so plans can fail one
  // link. Every drop decision lands on exactly one switch's counters,
  // so the FaultPlan-vs-fabric drop cross-check still balances.
  if (!apply_faults(frame, out, at_switch)) return;

  // First-hop traversal costs; per-hop serialization is charged at each
  // output port's transmit, downstream cut-through at each link arrival.
  engine_->charge_phase(Phase::kWire, frame.src_node, config_.propagation + config_.cut_through);
  frame.credit_port = -1;  // NIC-side ingress commits no credit
  // Admission mutates shared switch queue state, so the honest label is
  // -1. The FabricScope-Check mutation seam swaps in the source node's
  // scope; the mislabel expression is hoisted so nothing reads `frame`
  // alongside the capture's std::move.
  const int mislabeled = frame.src_node;
  engine_->post(at_switch,
                FABSIM_MUTATION_SCOPE(/*scope=*/-1, mislabeled,
                                      config_.mutation_mislabel_wire_scope),
                [this, out, f = std::move(frame)]() mutable {
                  admit(out, std::move(f), /*credit_reserved=*/false);
                });
}

void Switch::link_arrival(Frame frame) {
  FABSIM_AUDIT_SHARED(*engine_, check::Layer::kHw, config_.id, "Switch::link_arrival");
  ++frames_ingressed_;
  engine_->charge_phase(Phase::kWire, frame.src_node, config_.cut_through);
  const bool credit_frame = config_.flow == FlowControl::kCredit && frame.credit_port >= 0;
  if (down_) {
    // Switch died with frames still in flight toward it. Return the
    // committed buffer space so no credit leaks across the failure.
    ++down_drops_;
    if (credit_frame) release_occupancy(frame.credit_port, frame.wire_bytes);
    return;
  }
  const int out = route_lookup(frame.dst_node);
  if (out < 0) {
    ++unroutable_drops_;
    if (credit_frame) release_occupancy(frame.credit_port, frame.wire_bytes);
    engine_->trace(TraceCategory::kWire, frame.src_node,
                   "UNROUTABLE " + std::to_string(frame.src_node) + "->" +
                       std::to_string(frame.dst_node) + " at switch " +
                       std::to_string(config_.id));
    return;
  }
  // Per-hop fault consult, same (switch, out port) addressing as the
  // first hop. A drop here must also return the committed credit.
  Time at_switch = engine_->now();
  if (!apply_faults(frame, out, at_switch)) {
    if (credit_frame) release_occupancy(frame.credit_port, frame.wire_bytes);
    return;
  }
  if (at_switch > engine_->now()) {
    // Fault-injected extra latency: admission waits out the delay.
    engine_->post(at_switch, /*scope=*/-1, [this, out, credit_frame,
                                            f = std::move(frame)]() mutable {
      admit(out, std::move(f), credit_frame);
    });
    return;
  }
  // Credit links committed this frame's buffer space upstream; lossy
  // links admit (and may tail-drop) on arrival.
  admit(out, std::move(frame), credit_frame);
}

FABSIM_HOT void Switch::admit(int port, Frame frame, bool credit_reserved) {
  // Scope trap: the dynamic half of the mislabel mutation self-test —
  // an admission event carrying a confined label lands here.
  FABSIM_AUDIT_SHARED(*engine_, check::Layer::kHw, config_.id, "Switch::admit");
  // Routing-epoch reconciliation: the upstream committed buffer space on
  // the output port the *old* LFT named. If a reroute landed the frame
  // on a different port, move the commitment there so nothing leaks.
  if (credit_reserved && frame.credit_port != port) {
    if (frame.credit_port >= 0) release_occupancy(frame.credit_port, frame.wire_bytes);
    credit_reserved = false;
  }
  Port& out = ports_.at(static_cast<std::size_t>(port));
  if (out.down) {
    // Routed into a link that failed while the frame was crossing the
    // fabric: the frame is lost here, its credit returned.
    if (credit_reserved) release_occupancy(port, frame.wire_bytes);
    ++down_drops_;
    return;
  }
  if (!credit_reserved) {
    if (config_.flow == FlowControl::kLossy && config_.max_queue_bytes > 0 &&
        out.occupancy_bytes + frame.wire_bytes >
            static_cast<std::int64_t>(config_.max_queue_bytes)) {
      ++out.drops;
      if (MetricRegistry* m = engine_->metrics()) {
        m->counter(port_prefix(config_, true, port) + "tail_drops").add();
      }
      return;
    }
    out.occupancy_bytes += frame.wire_bytes;
  }
  // HOT-OK(per-port frame queue bounded by queue_capacity; capacity reused after warm-up)
  out.queue.push_back(std::move(frame));
  if (static_cast<double>(out.occupancy_bytes) > out.queue_hwm_bytes) {
    out.queue_hwm_bytes = static_cast<double>(out.occupancy_bytes);
  }
  if (out.queue.size() > out.queue_hwm_frames) {
    out.queue_hwm_frames = static_cast<std::uint64_t>(out.queue.size());
  }
  try_transmit(port);
}

void Switch::retry_transmit(int port) {
  ports_.at(static_cast<std::size_t>(port)).waiting = false;
  try_transmit(port);
}

void Switch::try_transmit(int port) {
  Port& out = ports_.at(static_cast<std::size_t>(port));
  // `waiting` means a wake from the downstream queue is already pending;
  // transmitting before it would reorder past the credit gate. A down
  // port (or a dead switch) transmits nothing until restored.
  if (down_ || out.down || out.transmitting || out.waiting || out.queue.empty()) return;
  Frame& head = out.queue.front();
  head.credit_port = -1;

  if (out.peer != nullptr && config_.flow == FlowControl::kCredit) {
    // Credit gate: the head frame needs committed space in the
    // downstream output queue it will be routed to. No space -> stall
    // this port (head-of-line blocking: congestion spreads upstream).
    // When the downstream LFT has no path (post-failure degraded mode)
    // there is no buffer to commit; the peer counts the frame
    // unroutable on arrival.
    Switch& down = *out.peer;
    const int droute = down.route_lookup(head.dst_node);
    if (droute >= 0) {
      Port& dq = down.ports_.at(static_cast<std::size_t>(droute));
      if (down.config_.max_queue_bytes > 0 &&
          dq.occupancy_bytes + head.wire_bytes >
              static_cast<std::int64_t>(down.config_.max_queue_bytes)) {
        if (out.stall_since == kNotStalled) {
          out.stall_since = engine_->now();
          ++out.credit_stalls;
        }
        out.waiting = true;
        // HOT-OK(PAUSE waiter list bounded by the port count)
        dq.waiters.emplace_back(this, port);
        return;
      }
      dq.occupancy_bytes += head.wire_bytes;  // credit consumed
      head.credit_port = droute;
    }
  }

  if (out.stall_since != kNotStalled) {
    out.pause_time += engine_->now() - out.stall_since;
    out.stall_since = kNotStalled;
  }

  Frame frame = std::move(out.queue.front());
  out.queue.pop_front();
  release_occupancy(port, frame.wire_bytes);
  out.transmitting = true;

  const Time serialization = config_.link_rate.bytes_time(frame.wire_bytes);
  out.tx.book(engine_->now(), serialization);
  engine_->charge_phase(Phase::kWire, frame.src_node, serialization + config_.propagation);
  const Time sent = engine_->now() + serialization;

  if (out.sink != nullptr) {
    // Last hop: deliver to the NIC after egress propagation. Delivery
    // runs entirely inside the destination NIC, so it is scope-confined.
    engine_->post(sent + config_.propagation, /*scope=*/frame.dst_node,  // SCOPE-OK(sink is the dst NIC's FrameSink — state owned by the labelled node; the frame is lambda-owned)
                  [sink = out.sink, f = std::move(frame)]() mutable {
                    sink->deliver(std::move(f));
                  });
  } else {
    Switch* peer = out.peer;
    engine_->post(sent + config_.propagation + peer->config_.cut_through, /*scope=*/-1,
                  [peer, f = std::move(frame)]() mutable { peer->link_arrival(std::move(f)); });
  }

  engine_->post(sent, /*scope=*/-1, [this, port] {
    Port& p = ports_.at(static_cast<std::size_t>(port));
    p.transmitting = false;
    ++frames_forwarded_;
    try_transmit(port);
  });
}

// ---------------------------------------------------------------------------
// Failure state: driven by topo::Topology failover.
// ---------------------------------------------------------------------------

void Switch::set_port_down(int port) {
  ports_.at(static_cast<std::size_t>(port)).down = true;
}

void Switch::set_port_up(int port) {
  ports_.at(static_cast<std::size_t>(port)).down = false;
  // The port may have accumulated rerouted frames while down (credit
  // requeue can land on a port that fails later); restart the pump.
  try_transmit(port);
}

void Switch::requeue_down_port(int port) {
  Port& out = ports_.at(static_cast<std::size_t>(port));
  std::deque<Frame> stranded;
  stranded.swap(out.queue);
  for (Frame& frame : stranded) {
    if (config_.mutation_leak_credit_on_drain && !leak_spent_) {
      // Mutation seam: the first drained frame keeps its committed
      // occupancy — the credit leak audit_switch_queue_drained exists
      // to catch. One-shot so the leak is exactly one frame's worth.
      leak_spent_ = true;
    } else {
      release_occupancy(port, frame.wire_bytes);
    }
    if (config_.flow == FlowControl::kCredit) {
      // Lossless fabric: the frames were admitted under a credit
      // guarantee, so reroute them onto the post-failure LFT instead of
      // dropping. No surviving path (or the path still runs through
      // this dead link) -> counted loss, stacks recover via timeout.
      const int alt = route_lookup(frame.dst_node);
      if (alt >= 0 && alt != port && !ports_.at(static_cast<std::size_t>(alt)).down) {
        frame.credit_port = -1;
        admit(alt, std::move(frame), /*credit_reserved=*/false);
        continue;
      }
    }
    ++down_drops_;
    engine_->trace(TraceCategory::kWire, frame.src_node,
                   "LINKDOWN drop " + std::to_string(frame.src_node) + "->" +
                       std::to_string(frame.dst_node) + " at switch " +
                       std::to_string(config_.id) + " port " + std::to_string(port));
  }
}

void Switch::drain_all_drop() {
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    Port& out = ports_[p];
    std::deque<Frame> stranded;
    stranded.swap(out.queue);
    for (Frame& frame : stranded) {
      if (config_.mutation_leak_credit_on_drain && !leak_spent_) {
        leak_spent_ = true;
      } else {
        release_occupancy(static_cast<int>(p), frame.wire_bytes);
      }
      ++down_drops_;
    }
  }
}

void Switch::release_occupancy(int port, std::uint32_t bytes) {
  Port& out = ports_.at(static_cast<std::size_t>(port));
  out.occupancy_bytes -= bytes;
  if (check::InvariantMonitor* monitor = engine_->monitor()) {
    check::audit_credit_nonnegative(out.occupancy_bytes)
        .report(monitor, engine_->now(), check::Layer::kHw, config_.id);
  }
  if (out.waiters.empty()) return;
  // The freed space may unblock stalled upstream ports; wake them in
  // FIFO registration order (deterministic). Each retry re-registers if
  // it is still blocked.
  std::vector<std::pair<Switch*, int>> waiters;
  waiters.swap(out.waiters);
  for (const auto& [up_switch, up_port] : waiters) {
    engine_->post(engine_->now(), /*scope=*/-1,
                  [up_switch, up_port] { up_switch->retry_transmit(up_port); });
  }
}

void Switch::audit_quiescence(check::InvariantMonitor& monitor, Time now) const {
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    const Port& port = ports_[p];
    check::audit_switch_queue_drained(static_cast<int>(p), port.queue.size(),
                                      port.occupancy_bytes, port.transmitting)
        .report(&monitor, now, check::Layer::kHw, config_.id);
  }
}

}  // namespace fabsim::hw

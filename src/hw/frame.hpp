// Wire-level frame and delivery interface shared by all fabrics.
#pragma once

#include <any>
#include <cstdint>
#include <utility>

namespace fabsim::hw {

/// A frame in flight. `wire_bytes` is the full on-the-wire size including
/// all headers (it determines serialization time); `payload` is a
/// stack-specific struct (TCP segment, IB packet, MX frame, ...).
struct Frame {
  int src_node = -1;
  int dst_node = -1;
  std::uint32_t wire_bytes = 0;
  std::any payload;
  /// Set by fault injection: the frame is delivered, but its CRC is bad.
  /// Every receiver must discard it before parsing the payload.
  bool corrupted = false;
  /// Credit flow control only: the downstream output port whose buffer
  /// space was committed for this frame at transmit-start. If an LFT
  /// reroute lands the frame on a different port, admission moves the
  /// commitment so no credit leaks across routing epochs.
  int credit_port = -1;
};

/// Anything that can accept a delivered frame (usually a NIC receive path).
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  /// Called at the simulated time the last bit of the frame arrives.
  virtual void deliver(Frame frame) = 0;
};

}  // namespace fabsim::hw

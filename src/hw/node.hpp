// A compute node: CPU + memory + the PCIe slot NICs plug into.
#pragma once

#include <memory>

#include "hw/cpu.hpp"
#include "hw/memory.hpp"
#include "hw/pci.hpp"
#include "sim/engine.hpp"
#include "sim/scope.hpp"

namespace fabsim::hw {

class Node {
 public:
  Node(Engine& engine, int id, PciConfig pcie, CpuConfig cpu = {})
      : engine_(&engine), id_(id), cpu_(engine, cpu, id), pcie_(pcie) {
    pcie_.set_owner(&engine, id);
  }

  int id() const { return id_; }
  Engine& engine() const { return *engine_; }
  HostCpu& cpu() { return cpu_; }
  AddressSpace& mem() { return mem_; }
  PcieBus& pcie() { return pcie_; }

 private:
  // Scope/ownership annotations (scripts/scope_check.py, src/sim/scope.hpp).
  FABSIM_ENGINE_LOCAL;  // engine plumbing + node identity
  Engine* engine_;
  int id_;
  FABSIM_OWNED_BY(id_);  // host resources: booked only by this node's
                         // events (or scope -1 coroutine resumes)
  HostCpu cpu_;
  AddressSpace mem_;
  PcieBus pcie_;
};

}  // namespace fabsim::hw

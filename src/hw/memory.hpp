// Host memory: fake address space with optional real backing bytes, and a
// page-granular registration (pinning) model.
//
// Buffers may carry real bytes (tests verify zero-copy placement end to
// end) or be size-only (benchmarks avoid megabytes of memcpy per
// simulated message). Registration cost — the dominant term of the
// paper's buffer-re-use experiment (Fig 6) — is exposed so callers charge
// it to the host CPU at registration time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace fabsim::hw {

class Buffer {
 public:
  Buffer(std::uint64_t addr, std::uint64_t size, bool with_data)
      : addr_(addr), size_(size), data_(with_data ? size : 0) {}

  std::uint64_t addr() const { return addr_; }
  std::uint64_t size() const { return size_; }
  bool has_data() const { return !data_.empty(); }
  std::span<std::byte> bytes() { return data_; }
  std::span<const std::byte> bytes() const { return data_; }

 private:
  std::uint64_t addr_;
  std::uint64_t size_;
  std::vector<std::byte> data_;
};

/// Per-node virtual address space: a bump allocator over fake addresses
/// with an interval map for placement lookups.
class AddressSpace {
 public:
  /// Allocate a buffer. `with_data` buffers carry real bytes.
  Buffer& alloc(std::uint64_t size, bool with_data = true);
  void free(const Buffer& buffer);

  /// Buffer containing `addr`, or nullptr.
  Buffer* find(std::uint64_t addr);

  /// Copy `data` into the buffer covering [addr, addr+size). Size-only
  /// target buffers accept the write without storing bytes.
  void write(std::uint64_t addr, std::span<const std::byte> data);

  /// View of [addr, addr+len) — requires a data-carrying buffer.
  std::span<std::byte> window(std::uint64_t addr, std::uint64_t len);

 private:
  std::uint64_t next_addr_ = 0x1000;
  std::map<std::uint64_t, std::unique_ptr<Buffer>> buffers_;  // keyed by start address
};

struct RegistrationConfig {
  Time register_base = us(1.0);     ///< syscall + setup
  Time register_per_page = us(1.0); ///< pin + translation entry, per 4 KB page
  Time deregister_base = us(0.5);
  Time deregister_per_page = us(0.2);
  std::uint64_t page_size = 4096;
};

/// Memory region registry of one NIC. Registration is bookkeeping only;
/// the caller charges `register_cost()` to the host CPU.
class MemoryRegistry {
 public:
  using Key = std::uint32_t;

  explicit MemoryRegistry(RegistrationConfig config = {}) : config_(config) {}

  struct Region {
    Key key;
    std::uint64_t addr;
    std::uint64_t len;
  };

  Key register_region(std::uint64_t addr, std::uint64_t len);
  void deregister(Key key);

  const Region* lookup(Key key) const;
  /// True iff [addr, addr+len) lies inside the registered region `key`.
  bool covers(Key key, std::uint64_t addr, std::uint64_t len) const;

  std::uint64_t pages(std::uint64_t len) const {
    return (len + config_.page_size - 1) / config_.page_size;
  }
  Time register_cost(std::uint64_t len) const {
    return config_.register_base + config_.register_per_page * pages(len);
  }
  Time deregister_cost(std::uint64_t len) const {
    return config_.deregister_base + config_.deregister_per_page * pages(len);
  }

  std::size_t active_regions() const { return regions_.size(); }
  const RegistrationConfig& config() const { return config_; }

 private:
  RegistrationConfig config_;
  Key next_key_ = 1;
  std::map<Key, Region> regions_;
};

}  // namespace fabsim::hw

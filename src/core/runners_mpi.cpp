// MPI-level benchmark runners: Figures 3 through 8.
//
// Every runner spawns one process per rank (ranks only progress inside
// MPI calls, like the MPICH derivatives under test) and reports averages
// over `iters` measured iterations after warmup, as the paper does.
#include <vector>

#include "core/cluster.hpp"
#include "core/runners.hpp"

namespace fabsim::core {

namespace {

constexpr int kTagData = 1;
constexpr int kTagSync = 900001;
constexpr int kTagFill = 900002;
constexpr int kTagTraversed = 900003;
constexpr int kWarmup = 4;

/// Two 4 MB data-less buffers, one per node.
struct TwoBuffers {
  explicit TwoBuffers(Cluster& c, std::uint64_t size = 4u << 20)
      : a(&c.node(0).mem().alloc(size, false)), b(&c.node(1).mem().alloc(size, false)) {}
  hw::Buffer* a;
  hw::Buffer* b;
};

/// 1-byte rank0 <-> rank1 synchronization (both directions).
Task<> sync_pair(mpi::Rank& me, int peer, std::uint64_t scratch) {
  if (me.rank() < peer) {
    co_await me.send(peer, kTagSync, scratch, 1);
    co_await me.recv(peer, kTagSync, scratch, 64);
  } else {
    co_await me.recv(peer, kTagSync, scratch, 64);
    co_await me.send(peer, kTagSync, scratch, 1);
  }
}

/// Attach the caller's registry (if any) so push-path emission (phase
/// attribution, counter samples) is live for the whole run.
void attach_metrics(Cluster& cluster, MetricRegistry* metrics) {
  if (metrics != nullptr) cluster.engine().set_metrics(metrics);
}

/// Pull-side snapshot at end of run.
void harvest_metrics(Cluster& cluster, MetricRegistry* metrics) {
  if (metrics != nullptr) cluster.collect_metrics(*metrics);
}

}  // namespace

// ---------------------------------------------------------------------------
// Figure 3: MPI ping-pong latency
// ---------------------------------------------------------------------------

double mpi_pingpong_latency_us(const NetworkProfile& profile, std::uint32_t msg, int iters,
                               Histogram* hist, MetricRegistry* metrics) {
  Cluster cluster(2, profile);
  attach_metrics(cluster, metrics);
  TwoBuffers bufs(cluster);
  Time elapsed = 0;

  cluster.engine().spawn([](Cluster& c, TwoBuffers b, std::uint32_t m, int it, Time* out,
                            Histogram* h) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(0);
    Time start = 0;
    for (int i = 0; i < kWarmup + it; ++i) {
      if (i == kWarmup) start = c.engine().now();
      const Time iter_start = c.engine().now();
      co_await rank.send(1, kTagData, b.a->addr(), m);
      co_await rank.recv(1, kTagData, b.a->addr(), b.a->size());
      if (h != nullptr && i >= kWarmup) h->add(to_us(c.engine().now() - iter_start) / 2.0);
    }
    *out = c.engine().now() - start;
  }(cluster, bufs, msg, iters, &elapsed, hist));
  cluster.engine().spawn([](Cluster& c, TwoBuffers b, std::uint32_t m, int total) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(1);
    for (int i = 0; i < total; ++i) {
      co_await rank.recv(0, kTagData, b.b->addr(), b.b->size());
      co_await rank.send(0, kTagData, b.b->addr(), m);
    }
  }(cluster, bufs, msg, kWarmup + iters));
  cluster.engine().run();
  harvest_metrics(cluster, metrics);
  return to_us(elapsed) / iters / 2.0;
}

PhaseBreakdown mpi_phase_breakdown(const NetworkProfile& profile, std::uint32_t msg,
                                   int iters) {
  // Same algorithm as the fig3 ping-pong, but with a registry attached
  // and the phase accumulators zeroed at the start of the measured
  // window, so every picosecond of host / NIC / wire busy time booked by
  // the hardware models during the timed iterations is captured. The
  // ping-pong is strictly serialized (blocking send/recv on both sides),
  // so totals divided by the 2*iters one-way messages give the measured
  // per-message LogP-style decomposition; any remainder against the
  // half-RTT is genuine pipeline overlap within one message's lifetime.
  Cluster cluster(2, profile);
  MetricRegistry registry;
  cluster.engine().set_metrics(&registry);
  TwoBuffers bufs(cluster);
  Time elapsed = 0;

  cluster.engine().spawn([](Cluster& c, TwoBuffers b, std::uint32_t m, int it,
                            Time* out) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(0);
    Time start = 0;
    for (int i = 0; i < kWarmup + it; ++i) {
      if (i == kWarmup) {
        c.engine().metrics()->reset_phases();
        start = c.engine().now();
      }
      co_await rank.send(1, kTagData, b.a->addr(), m);
      co_await rank.recv(1, kTagData, b.a->addr(), b.a->size());
    }
    *out = c.engine().now() - start;
  }(cluster, bufs, msg, iters, &elapsed));
  cluster.engine().spawn([](Cluster& c, TwoBuffers b, std::uint32_t m, int total) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(1);
    for (int i = 0; i < total; ++i) {
      co_await rank.recv(0, kTagData, b.b->addr(), b.b->size());
      co_await rank.send(0, kTagData, b.b->addr(), m);
    }
  }(cluster, bufs, msg, kWarmup + iters));
  cluster.engine().run();

  const double messages = 2.0 * iters;
  PhaseBreakdown breakdown;
  breakdown.host_us = to_us(registry.phase_time(Phase::kHost)) / messages;
  breakdown.nic_us = to_us(registry.phase_time(Phase::kNic)) / messages;
  breakdown.wire_us = to_us(registry.phase_time(Phase::kWire)) / messages;
  breakdown.total_us = to_us(elapsed) / iters / 2.0;
  return breakdown;
}

// ---------------------------------------------------------------------------
// Figure 4: MPI bandwidth (three modes)
// ---------------------------------------------------------------------------

double mpi_unidir_bw_mbps(const NetworkProfile& profile, std::uint32_t msg, int window,
                          int windows, Histogram* hist, MetricRegistry* metrics) {
  Cluster cluster(2, profile);
  attach_metrics(cluster, metrics);
  TwoBuffers bufs(cluster);
  Time elapsed = 0;

  cluster.engine().spawn([](Cluster& c, TwoBuffers b, std::uint32_t m, int w, int k,
                            Time* out, Histogram* h) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(0);
    // Warmup window.
    for (int i = 0; i < 2; ++i) co_await rank.send(1, kTagData, b.a->addr(), m);
    co_await rank.recv(1, kTagSync, b.a->addr(), 64);
    const Time start = c.engine().now();
    for (int win = 0; win < k; ++win) {
      const Time win_start = c.engine().now();
      std::vector<mpi::RequestPtr> reqs;
      for (int i = 0; i < w; ++i) {
        reqs.push_back(co_await rank.isend(1, kTagData, b.a->addr(), m));
      }
      co_await rank.waitall(std::move(reqs));
      // One sample per window: time to push the window out locally.
      if (h != nullptr) h->add(to_us(c.engine().now() - win_start));
    }
    // Wait for the final acknowledgement.
    co_await rank.recv(1, kTagSync, b.a->addr(), 64);
    *out = c.engine().now() - start;
  }(cluster, bufs, msg, window, windows, &elapsed, hist));
  cluster.engine().spawn([](Cluster& c, TwoBuffers b, int w, int k) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(1);
    for (int i = 0; i < 2; ++i) co_await rank.recv(0, kTagData, b.b->addr(), b.b->size());
    co_await rank.send(0, kTagSync, b.b->addr(), 1);
    for (int win = 0; win < k; ++win) {
      std::vector<mpi::RequestPtr> reqs;
      for (int i = 0; i < w; ++i) {
        reqs.push_back(co_await rank.irecv(0, kTagData, b.b->addr(), b.b->size()));
      }
      co_await rank.waitall(std::move(reqs));
    }
    co_await rank.send(0, kTagSync, b.b->addr(), 1);
  }(cluster, bufs, window, windows));
  cluster.engine().run();
  harvest_metrics(cluster, metrics);
  const double bytes = static_cast<double>(msg) * window * windows;
  return bytes / to_us(elapsed);
}

double mpi_bidir_bw_mbps(const NetworkProfile& profile, std::uint32_t msg, int iters,
                         Histogram* hist, MetricRegistry* metrics) {
  // Blocking ping-pong: 2 messages per round trip.
  const double half_rtt_us = mpi_pingpong_latency_us(profile, msg, iters, hist, metrics);
  return static_cast<double>(msg) / half_rtt_us;
}

double mpi_bothway_bw_mbps(const NetworkProfile& profile, std::uint32_t msg, int window,
                           int windows, Histogram* hist, MetricRegistry* metrics) {
  Cluster cluster(2, profile);
  attach_metrics(cluster, metrics);
  TwoBuffers bufs(cluster);
  std::vector<Time> done(2, 0);
  Time start_common = 0;

  for (int r = 0; r < 2; ++r) {
    cluster.engine().spawn([](Cluster& c, TwoBuffers b, int me, std::uint32_t m, int w, int k,
                              Time* fin, Time* start, Histogram* h) -> Task<> {
      co_await c.setup_mpi();
      auto& rank = c.mpi_rank(me);
      const std::uint64_t addr = me == 0 ? b.a->addr() : b.b->addr();
      const std::uint64_t cap = me == 0 ? b.a->size() : b.b->size();
      const int peer = 1 - me;
      co_await sync_pair(rank, peer, addr);
      if (me == 0) *start = c.engine().now();
      for (int win = 0; win < k; ++win) {
        const Time win_start = c.engine().now();
        // Both sides: a window of sends, then a window of receives.
        std::vector<mpi::RequestPtr> reqs;
        for (int i = 0; i < w; ++i) {
          reqs.push_back(co_await rank.isend(peer, kTagData, addr, m));
        }
        for (int i = 0; i < w; ++i) {
          reqs.push_back(co_await rank.irecv(peer, kTagData, addr, cap));
        }
        co_await rank.waitall(std::move(reqs));
        // One sample per rank-0 window: full send+receive exchange time.
        if (h != nullptr && me == 0) h->add(to_us(c.engine().now() - win_start));
      }
      *fin = c.engine().now();
    }(cluster, bufs, r, msg, window, windows, &done[static_cast<std::size_t>(r)],
      &start_common, hist));
  }
  cluster.engine().run();
  harvest_metrics(cluster, metrics);
  const Time end = std::max(done[0], done[1]);
  const double bytes = 2.0 * static_cast<double>(msg) * window * windows;
  return bytes / to_us(end - start_common);
}

// ---------------------------------------------------------------------------
// Figure 5: LogP parameters (Kielmann's method)
// ---------------------------------------------------------------------------

LogpPoint logp_parameters(const NetworkProfile& profile, std::uint32_t msg, int iters,
                          Histogram* os_hist, Histogram* or_hist, MetricRegistry* metrics) {
  LogpPoint point;

  // g(m): saturation — stream many messages, gap = elapsed / count.
  {
    Cluster cluster(2, profile);
    attach_metrics(cluster, metrics);
    TwoBuffers bufs(cluster);
    Time elapsed = 0;
    const int count = iters * 4;
    cluster.engine().spawn([](Cluster& c, TwoBuffers b, std::uint32_t m, int n,
                              Time* out) -> Task<> {
      co_await c.setup_mpi();
      auto& rank = c.mpi_rank(0);
      co_await sync_pair(rank, 1, b.a->addr());
      const Time start = c.engine().now();
      std::vector<mpi::RequestPtr> reqs;
      for (int i = 0; i < n; ++i) {
        reqs.push_back(co_await rank.isend(1, kTagData, b.a->addr(), m));
      }
      co_await rank.waitall(std::move(reqs));
      // One final round trip so the stream is fully drained end-to-end.
      co_await rank.recv(1, kTagSync, b.a->addr(), 64);
      *out = c.engine().now() - start;
    }(cluster, bufs, msg, count, &elapsed));
    cluster.engine().spawn([](Cluster& c, TwoBuffers b, int n) -> Task<> {
      co_await c.setup_mpi();
      auto& rank = c.mpi_rank(1);
      // Pre-post all receives so the flood measures the send path, not
      // unexpected-queue buildup.
      std::vector<mpi::RequestPtr> reqs;
      for (int i = 0; i < n; ++i) {
        reqs.push_back(co_await rank.irecv(0, kTagData, b.b->addr(), b.b->size()));
      }
      co_await sync_pair(rank, 0, b.b->addr());
      co_await rank.waitall(std::move(reqs));
      co_await rank.send(0, kTagSync, b.b->addr(), 1);
    }(cluster, bufs, count));
    cluster.engine().run();
    harvest_metrics(cluster, metrics);
    point.gap_us = to_us(elapsed) / count;
  }

  // os(m): duration of the isend call itself, receiver consuming.
  {
    Cluster cluster(2, profile);
    TwoBuffers bufs(cluster);
    double total_us = 0;
    cluster.engine().spawn([](Cluster& c, TwoBuffers b, std::uint32_t m, int n, double* out,
                              Histogram* h) -> Task<> {
      co_await c.setup_mpi();
      auto& rank = c.mpi_rank(0);
      for (int i = 0; i < kWarmup + n; ++i) {
        co_await sync_pair(rank, 1, b.a->addr());
        const Time t0 = c.engine().now();
        auto req = co_await rank.isend(1, kTagData, b.a->addr(), m);
        if (i >= kWarmup) {
          const double us_taken = to_us(c.engine().now() - t0);
          *out += us_taken;
          if (h != nullptr) h->add(us_taken);
        }
        co_await rank.wait(std::move(req));
      }
    }(cluster, bufs, msg, iters, &total_us, os_hist));
    cluster.engine().spawn([](Cluster& c, TwoBuffers b, int n) -> Task<> {
      co_await c.setup_mpi();
      auto& rank = c.mpi_rank(1);
      for (int i = 0; i < kWarmup + n; ++i) {
        co_await sync_pair(rank, 0, b.b->addr());
        co_await rank.recv(0, kTagData, b.b->addr(), b.b->size());
      }
    }(cluster, bufs, iters));
    cluster.engine().run();
    point.os_us = total_us / iters;
  }

  // or(m): duration of the recv call issued after the message has had
  // ample time to arrive (sender-side delay covers the transfer).
  {
    Cluster cluster(2, profile);
    TwoBuffers bufs(cluster);
    double total_us = 0;
    // Generous upper bound on one-way time for the delay.
    const Time settle = us(50) + Rate::mb_per_sec(500.0).bytes_time(msg);
    cluster.engine().spawn([](Cluster& c, TwoBuffers b, std::uint32_t m, int n,
                              Time pause) -> Task<> {
      co_await c.setup_mpi();
      auto& rank = c.mpi_rank(0);
      for (int i = 0; i < kWarmup + n; ++i) {
        co_await sync_pair(rank, 1, b.a->addr());
        auto req = co_await rank.isend(1, kTagData, b.a->addr(), m);
        co_await rank.wait(std::move(req));
        // Keep the pair loosely in phase.
        co_await c.engine().sleep(pause);
      }
    }(cluster, bufs, msg, iters, settle));
    cluster.engine().spawn([](Cluster& c, TwoBuffers b, int n, Time pause, double* out,
                              Histogram* h) -> Task<> {
      co_await c.setup_mpi();
      auto& rank = c.mpi_rank(1);
      for (int i = 0; i < kWarmup + n; ++i) {
        // Kielmann's method: post the receive, "compute" long enough for
        // the message to land, then time the completion call. A stack
        // with autonomous progress (MX) finishes the transfer during the
        // compute phase; MPICH-style synchronous progress performs the
        // whole rendezvous inside the timed wait — the paper's Or jump.
        auto rx = co_await rank.irecv(0, kTagData, b.b->addr(), b.b->size());
        co_await sync_pair(rank, 0, b.b->addr());
        co_await c.engine().sleep(pause);
        const Time t0 = c.engine().now();
        co_await rank.wait(std::move(rx));
        if (i >= kWarmup) {
          const double us_taken = to_us(c.engine().now() - t0);
          *out += us_taken;
          if (h != nullptr) h->add(us_taken);
        }
      }
    }(cluster, bufs, iters, settle, &total_us, or_hist));
    cluster.engine().run();
    point.or_us = total_us / iters;
  }

  return point;
}

// ---------------------------------------------------------------------------
// Figure 6: buffer re-use
// ---------------------------------------------------------------------------

double bufreuse_latency_us(const NetworkProfile& profile, std::uint32_t msg, bool reuse,
                           int nbufs, int iters, Histogram* hist, MetricRegistry* metrics) {
  Cluster cluster(2, profile);
  attach_metrics(cluster, metrics);
  // The paper statically allocates 16 separate buffers per message size;
  // send and receive use disjoint sets so both sides of a rendezvous pay
  // (or save) their registration independently.
  struct BufferSets {
    std::vector<hw::Buffer*> send, recv;
  };
  BufferSets sets0, sets1;
  for (int i = 0; i < nbufs; ++i) {
    sets0.send.push_back(&cluster.node(0).mem().alloc(msg, false));
    sets0.recv.push_back(&cluster.node(0).mem().alloc(msg, false));
    sets1.send.push_back(&cluster.node(1).mem().alloc(msg, false));
    sets1.recv.push_back(&cluster.node(1).mem().alloc(msg, false));
  }
  auto& scratch0 = cluster.node(0).mem().alloc(64, false);
  auto& scratch1 = cluster.node(1).mem().alloc(64, false);
  Time elapsed = 0;

  auto body = [](Cluster& c, int me, BufferSets& sets, std::uint64_t scratch, std::uint32_t m,
                 bool re, int it, Time* out, Histogram* h) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(me);
    const int peer = 1 - me;
    co_await sync_pair(rank, peer, scratch);
    const Time start = c.engine().now();
    for (int i = 0; i < it; ++i) {
      const Time iter_start = c.engine().now();
      const std::size_t pick = re ? 0 : static_cast<std::size_t>(i) % sets.send.size();
      if (me == 0) {
        co_await rank.send(peer, kTagData, sets.send[pick]->addr(), m);
        co_await rank.recv(peer, kTagData, sets.recv[pick]->addr(), m);
      } else {
        co_await rank.recv(peer, kTagData, sets.recv[pick]->addr(), m);
        co_await rank.send(peer, kTagData, sets.send[pick]->addr(), m);
      }
      if (h != nullptr && me == 0) h->add(to_us(c.engine().now() - iter_start) / 2.0);
    }
    if (me == 0) *out = c.engine().now() - start;
  };

  cluster.engine().spawn(
      body(cluster, 0, sets0, scratch0.addr(), msg, reuse, iters, &elapsed, hist));
  cluster.engine().spawn(
      body(cluster, 1, sets1, scratch1.addr(), msg, reuse, iters, &elapsed, hist));
  cluster.engine().run();
  harvest_metrics(cluster, metrics);
  return to_us(elapsed) / iters / 2.0;
}

// ---------------------------------------------------------------------------
// Figure 7: unexpected-message queue
// ---------------------------------------------------------------------------

double unexpected_queue_latency_us(const NetworkProfile& profile, std::uint32_t msg, int depth,
                                   int iters, Histogram* hist, MetricRegistry* metrics) {
  Cluster cluster(2, profile);
  attach_metrics(cluster, metrics);
  TwoBuffers bufs(cluster);
  auto& fill0 = cluster.node(0).mem().alloc(64, false);
  auto& fill1 = cluster.node(1).mem().alloc(64, false);
  Time elapsed = 0;

  auto body = [](Cluster& c, int me, std::uint64_t addr, std::uint64_t cap, std::uint64_t fill,
                 std::uint32_t m, int depth_, int it, Time* out, Histogram* h) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(me);
    const int peer = 1 - me;
    // Fill the peer's unexpected queue with small messages nobody
    // receives yet (standard-mode sends; the measured ping-pong below
    // uses synchronous sends, as the paper modified the UB algorithm).
    for (int q = 0; q < depth_; ++q) {
      co_await rank.send(peer, kTagFill, fill, 8);
    }
    // Synchronize: this drains the fillers into the unexpected queue.
    co_await sync_pair(rank, peer, fill);

    Time start = 0;
    for (int i = 0; i < kWarmup + it; ++i) {
      if (i == kWarmup && me == 0) start = c.engine().now();
      const Time iter_start = c.engine().now();
      if (me == 0) {
        co_await rank.ssend(peer, kTagData, addr, m);
        co_await rank.recv(peer, kTagData, addr, cap);
      } else {
        co_await rank.recv(peer, kTagData, addr, cap);
        co_await rank.ssend(peer, kTagData, addr, m);
      }
      if (h != nullptr && me == 0 && i >= kWarmup) {
        h->add(to_us(c.engine().now() - iter_start) / 2.0);
      }
    }
    if (me == 0) *out = c.engine().now() - start;

    // Drain the fillers (untimed cleanup).
    for (int q = 0; q < depth_; ++q) {
      co_await rank.recv(peer, kTagFill, fill, 64);
    }
  };

  cluster.engine().spawn(body(cluster, 0, bufs.a->addr(), bufs.a->size(), fill0.addr(), msg,
                              depth, iters, &elapsed, hist));
  cluster.engine().spawn(body(cluster, 1, bufs.b->addr(), bufs.b->size(), fill1.addr(), msg,
                              depth, iters, &elapsed, hist));
  cluster.engine().run();
  harvest_metrics(cluster, metrics);
  return to_us(elapsed) / iters / 2.0;
}

// ---------------------------------------------------------------------------
// Figure 8: receive (posted) queue
// ---------------------------------------------------------------------------

double recv_queue_latency_us(const NetworkProfile& profile, std::uint32_t msg, int depth,
                             int iters, Histogram* hist, MetricRegistry* metrics) {
  Cluster cluster(2, profile);
  attach_metrics(cluster, metrics);
  TwoBuffers bufs(cluster);
  auto& trav0 = cluster.node(0).mem().alloc(64, false);
  auto& trav1 = cluster.node(1).mem().alloc(64, false);
  Time elapsed = 0;

  auto body = [](Cluster& c, int me, std::uint64_t addr, std::uint64_t cap, std::uint64_t trav,
                 std::uint32_t m, int depth_, int it, Time* out, Histogram* h) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(me);
    const int peer = 1 - me;
    // Pre-post `depth` receives with a tag that is matched only at the
    // very end; they sit at the head of the posted-receive queue and are
    // traversed (but not matched) by every measured message.
    std::vector<mpi::RequestPtr> traversed;
    for (int q = 0; q < depth_; ++q) {
      traversed.push_back(co_await rank.irecv(peer, kTagTraversed, trav, 64));
    }
    co_await sync_pair(rank, peer, trav);

    Time start = 0;
    for (int i = 0; i < kWarmup + it; ++i) {
      if (i == kWarmup && me == 0) start = c.engine().now();
      const Time iter_start = c.engine().now();
      if (me == 0) {
        auto rx = co_await rank.irecv(peer, kTagData, addr, cap);
        co_await rank.send(peer, kTagData, addr, m);
        co_await rank.wait(std::move(rx));
      } else {
        auto rx = co_await rank.irecv(peer, kTagData, addr, cap);
        co_await rank.wait(std::move(rx));
        co_await rank.send(peer, kTagData, addr, m);
      }
      if (h != nullptr && me == 0 && i >= kWarmup) {
        h->add(to_us(c.engine().now() - iter_start) / 2.0);
      }
    }
    if (me == 0) *out = c.engine().now() - start;

    // Fulfil the traversed receives (untimed cleanup).
    for (int q = 0; q < depth_; ++q) {
      co_await rank.send(peer, kTagTraversed, trav, 8);
    }
    co_await rank.waitall(std::move(traversed));
  };

  cluster.engine().spawn(body(cluster, 0, bufs.a->addr(), bufs.a->size(), trav0.addr(), msg,
                              depth, iters, &elapsed, hist));
  cluster.engine().spawn(body(cluster, 1, bufs.b->addr(), bufs.b->size(), trav1.addr(), msg,
                              depth, iters, &elapsed, hist));
  cluster.engine().run();
  harvest_metrics(cluster, metrics);
  return to_us(elapsed) / iters / 2.0;
}

}  // namespace fabsim::core

// User-level (verbs / MX) benchmark runners: Figures 1 and 2.
#include <stdexcept>
#include <vector>

#include "core/cluster.hpp"
#include "core/runners.hpp"

namespace fabsim::core {

namespace {

/// Completion-detection cost of a polling loop iteration that hits.
constexpr Time kPollDetect = ns(100);

/// Attach the caller's registry (if any) to the engine so push-path
/// emission (phase attribution, counter samples) is live for the run.
void attach_metrics(Cluster& cluster, MetricRegistry* metrics) {
  if (metrics != nullptr) cluster.engine().set_metrics(metrics);
}

/// Pull-side snapshot at end of run.
void harvest_metrics(Cluster& cluster, MetricRegistry* metrics) {
  if (metrics != nullptr) cluster.collect_metrics(*metrics);
}

/// Half round-trip time of a verbs RDMA-Write ping-pong, polling the
/// target buffer for completion (the paper's optimistic method, §5).
Task<> verbs_pingpong_initiator(Cluster& c, verbs::QueuePair& qp, verbs::Device& local,
                                std::uint64_t my_buf, std::uint64_t peer_buf, verbs::MrKey lkey,
                                verbs::MrKey rkey, std::uint32_t msg, int iters, int warmup,
                                Time* out, Histogram* hist) {
  Time measured_start = 0;
  for (int i = 0; i < warmup + iters; ++i) {
    if (i == warmup) measured_start = c.engine().now();
    const Time iter_start = c.engine().now();
    auto reply = local.watch_placement(my_buf, msg);
    co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                        .opcode = verbs::Opcode::kRdmaWrite,
                                        .sge = {peer_buf, msg, lkey},
                                        .remote_addr = peer_buf,
                                        .rkey = rkey});
    co_await reply->wait();
    co_await c.node(0).cpu().compute(kPollDetect);
    if (hist != nullptr && i >= warmup) {
      hist->add(to_us(c.engine().now() - iter_start) / 2.0);
    }
  }
  *out = c.engine().now() - measured_start;
}

Task<> verbs_pingpong_responder(Cluster& c, verbs::QueuePair& qp, verbs::Device& local,
                                std::uint64_t my_buf, std::uint64_t peer_buf, verbs::MrKey lkey,
                                verbs::MrKey rkey, std::uint32_t msg, int total_iters) {
  for (int i = 0; i < total_iters; ++i) {
    auto incoming = local.watch_placement(my_buf, msg);
    co_await incoming->wait();
    co_await c.node(1).cpu().compute(kPollDetect);
    co_await qp.post_send(verbs::SendWr{.wr_id = 2,
                                        .opcode = verbs::Opcode::kRdmaWrite,
                                        .sge = {peer_buf, msg, lkey},
                                        .remote_addr = peer_buf,
                                        .rkey = rkey});
  }
}

double verbs_pingpong(const NetworkProfile& profile, std::uint32_t msg, int iters,
                      Histogram* hist, MetricRegistry* metrics) {
  Cluster cluster(2, profile);
  attach_metrics(cluster, metrics);
  auto& e = cluster.engine();
  verbs::CompletionQueue cq0(e), cq1(e);
  auto qp0 = cluster.device(0).create_qp(cq0, cq0);
  auto qp1 = cluster.device(1).create_qp(cq1, cq1);
  cluster.device(0).establish(*qp0, *qp1);

  auto& buf0 = cluster.node(0).mem().alloc(msg, false);
  auto& buf1 = cluster.node(1).mem().alloc(msg, false);
  // Registration done up front (outside timing), as in the paper.
  const auto key0 = cluster.device(0).registry().register_region(buf0.addr(), msg);
  const auto key1 = cluster.device(1).registry().register_region(buf1.addr(), msg);

  const int warmup = 4;
  Time elapsed = 0;
  e.spawn(verbs_pingpong_initiator(cluster, *qp0, cluster.device(0), buf0.addr(), buf1.addr(),
                                   key0, key1, msg, iters, warmup, &elapsed, hist));
  e.spawn(verbs_pingpong_responder(cluster, *qp1, cluster.device(1), buf1.addr(), buf0.addr(),
                                   key1, key0, msg, warmup + iters));
  e.run();
  harvest_metrics(cluster, metrics);
  return to_us(elapsed) / iters / 2.0;
}

/// MX ping-pong using isend/irecv and mx test/wait (paper §5).
double mx_pingpong(const NetworkProfile& profile, std::uint32_t msg, int iters,
                   Histogram* hist, MetricRegistry* metrics) {
  Cluster cluster(2, profile);
  attach_metrics(cluster, metrics);
  auto& e = cluster.engine();
  auto& buf0 = cluster.node(0).mem().alloc(msg, false);
  auto& buf1 = cluster.node(1).mem().alloc(msg, false);

  const int warmup = 4;
  Time elapsed = 0;
  e.spawn([](Cluster& c, std::uint64_t mine, std::uint32_t m, int it, int wu, Time* out,
             Histogram* h) -> Task<> {
    auto& ep = c.endpoint(0);
    const int peer = c.endpoint(1).port();
    Time start = 0;
    for (int i = 0; i < wu + it; ++i) {
      if (i == wu) start = c.engine().now();
      const Time iter_start = c.engine().now();
      auto rx = co_await ep.irecv(mine, m, 1, ~0ull);
      auto tx = co_await ep.isend(mine, m, peer, 1);
      co_await ep.wait(rx);
      co_await ep.wait(tx);
      if (h != nullptr && i >= wu) h->add(to_us(c.engine().now() - iter_start) / 2.0);
    }
    *out = c.engine().now() - start;
  }(cluster, buf0.addr(), msg, iters, warmup, &elapsed, hist));
  e.spawn([](Cluster& c, std::uint64_t mine, std::uint32_t m, int total) -> Task<> {
    auto& ep = c.endpoint(1);
    const int peer = c.endpoint(0).port();
    for (int i = 0; i < total; ++i) {
      auto rx = co_await ep.irecv(mine, m, 1, ~0ull);
      co_await ep.wait(rx);
      auto tx = co_await ep.isend(mine, m, peer, 1);
      co_await ep.wait(tx);
    }
  }(cluster, buf1.addr(), msg, iters + warmup));
  e.run();
  harvest_metrics(cluster, metrics);
  return to_us(elapsed) / iters / 2.0;
}

}  // namespace

double userlevel_pingpong_latency_us(const NetworkProfile& profile, std::uint32_t msg,
                                     int iters, Histogram* hist, MetricRegistry* metrics) {
  if (profile.network == Network::kIwarp || profile.network == Network::kIb) {
    return verbs_pingpong(profile, msg, iters, hist, metrics);
  }
  return mx_pingpong(profile, msg, iters, hist, metrics);
}

double userlevel_bandwidth_mbps(const NetworkProfile& profile, std::uint32_t msg, int iters,
                                Histogram* hist, MetricRegistry* metrics) {
  // The paper computes user-level bandwidth from the latency results.
  const double latency_us = userlevel_pingpong_latency_us(profile, msg, iters, hist, metrics);
  return static_cast<double>(msg) / latency_us;  // bytes/us == MB/s
}

// ---------------------------------------------------------------------------
// Figure 2: multi-connection scalability
// ---------------------------------------------------------------------------

namespace {

struct MultiConnWorld {
  explicit MultiConnWorld(const NetworkProfile& profile, int connections, std::uint32_t msg)
      : cluster(2, profile) {
    auto& e = cluster.engine();
    cq0 = std::make_unique<verbs::CompletionQueue>(e);
    cq1 = std::make_unique<verbs::CompletionQueue>(e);
    for (int c = 0; c < connections; ++c) {
      qps0.push_back(cluster.device(0).create_qp(*cq0, *cq0));
      qps1.push_back(cluster.device(1).create_qp(*cq1, *cq1));
      cluster.device(0).establish(*qps0.back(), *qps1.back());
      bufs0.push_back(&cluster.node(0).mem().alloc(msg, false));
      bufs1.push_back(&cluster.node(1).mem().alloc(msg, false));
      keys0.push_back(cluster.device(0).registry().register_region(bufs0.back()->addr(), msg));
      keys1.push_back(cluster.device(1).registry().register_region(bufs1.back()->addr(), msg));
    }
  }

  Cluster cluster;
  std::unique_ptr<verbs::CompletionQueue> cq0, cq1;
  std::vector<std::unique_ptr<verbs::QueuePair>> qps0, qps1;
  std::vector<hw::Buffer*> bufs0, bufs1;
  std::vector<verbs::MrKey> keys0, keys1;
};

}  // namespace

double multiconn_normalized_latency_us(const NetworkProfile& profile, int connections,
                                       std::uint32_t msg, int rounds, Histogram* hist,
                                       MetricRegistry* metrics) {
  if (profile.network != Network::kIwarp && profile.network != Network::kIb) {
    throw std::invalid_argument("multi-connection test is a verbs-only comparison");
  }
  MultiConnWorld w(profile, connections, msg);
  attach_metrics(w.cluster, metrics);
  auto& e = w.cluster.engine();

  // One responder process per connection on node 1.
  for (int c = 0; c < connections; ++c) {
    e.spawn([](MultiConnWorld& ww, int conn, std::uint32_t m, int r) -> Task<> {
      for (int round = 0; round < r; ++round) {
        auto incoming = ww.cluster.device(1).watch_placement(
            ww.bufs1[static_cast<std::size_t>(conn)]->addr(), m);
        co_await incoming->wait();
        co_await ww.cluster.node(1).cpu().compute(kPollDetect);
        co_await ww.qps1[static_cast<std::size_t>(conn)]->post_send(verbs::SendWr{
            .wr_id = 2,
            .opcode = verbs::Opcode::kRdmaWrite,
            .sge = {ww.bufs0[static_cast<std::size_t>(conn)]->addr(), m,
                    ww.keys1[static_cast<std::size_t>(conn)]},
            .remote_addr = ww.bufs0[static_cast<std::size_t>(conn)]->addr(),
            .rkey = ww.keys0[static_cast<std::size_t>(conn)]});
      }
    }(w, c, msg, rounds));
  }

  Time elapsed = 0;
  e.spawn([](MultiConnWorld& ww, int conns, std::uint32_t m, int r, Time* out,
             Histogram* h) -> Task<> {
    const Time start = ww.cluster.engine().now();
    for (int round = 0; round < r; ++round) {
      const Time round_start = ww.cluster.engine().now();
      std::vector<std::shared_ptr<Event>> replies;
      for (int c = 0; c < conns; ++c) {
        replies.push_back(ww.cluster.device(0).watch_placement(
            ww.bufs0[static_cast<std::size_t>(c)]->addr(), m));
      }
      for (int c = 0; c < conns; ++c) {
        co_await ww.qps0[static_cast<std::size_t>(c)]->post_send(verbs::SendWr{
            .wr_id = 1,
            .opcode = verbs::Opcode::kRdmaWrite,
            .sge = {ww.bufs1[static_cast<std::size_t>(c)]->addr(), m,
                    ww.keys0[static_cast<std::size_t>(c)]},
            .remote_addr = ww.bufs1[static_cast<std::size_t>(c)]->addr(),
            .rkey = ww.keys1[static_cast<std::size_t>(c)]});
      }
      for (auto& reply : replies) {
        co_await reply->wait();
      }
      co_await ww.cluster.node(0).cpu().compute(kPollDetect);
      if (h != nullptr) {
        // Same normalization as the returned mean: per-connection,
        // per-message half-RTT for this round.
        h->add(to_us(ww.cluster.engine().now() - round_start) / 2.0 / conns);
      }
    }
    *out = ww.cluster.engine().now() - start;
  }(w, connections, msg, rounds, &elapsed, hist));
  e.run();
  harvest_metrics(w.cluster, metrics);

  // Cumulative half-RTT divided by (#connections x #messages).
  return to_us(elapsed) / 2.0 / (static_cast<double>(connections) * rounds);
}

double multiconn_throughput_mbps(const NetworkProfile& profile, int connections,
                                 std::uint32_t msg, int rounds, MetricRegistry* metrics) {
  if (profile.network != Network::kIwarp && profile.network != Network::kIb) {
    throw std::invalid_argument("multi-connection test is a verbs-only comparison");
  }
  MultiConnWorld w(profile, connections, msg);
  attach_metrics(w.cluster, metrics);
  auto& e = w.cluster.engine();

  // Both-way: each side streams `rounds` messages round-robin over all
  // connections; completion is observed at the receiver via a watch on
  // the last message of each connection.
  auto streamer = [](MultiConnWorld& ww, bool forward, int conns, std::uint32_t m,
                     int r) -> Task<> {
    auto& qps = forward ? ww.qps0 : ww.qps1;
    auto& dst_bufs = forward ? ww.bufs1 : ww.bufs0;
    auto& lkeys = forward ? ww.keys0 : ww.keys1;
    auto& rkeys = forward ? ww.keys1 : ww.keys0;
    auto& cq = forward ? *ww.cq0 : *ww.cq1;
    auto& cpu = ww.cluster.node(forward ? 0 : 1).cpu();
    int outstanding = 0;
    for (int round = 0; round < r; ++round) {
      for (int c = 0; c < conns; ++c) {
        co_await qps[static_cast<std::size_t>(c)]->post_send(verbs::SendWr{
            .wr_id = 1,
            .opcode = verbs::Opcode::kRdmaWrite,
            .sge = {dst_bufs[static_cast<std::size_t>(c)]->addr(), m,
                    lkeys[static_cast<std::size_t>(c)]},
            .remote_addr = dst_bufs[static_cast<std::size_t>(c)]->addr(),
            .rkey = rkeys[static_cast<std::size_t>(c)]});
        ++outstanding;
        // Bound in-flight work the way a real benchmark's send queue does.
        while (outstanding > 4 * conns) {
          co_await verbs::next_completion(cq, cpu, kPollDetect);
          --outstanding;
        }
      }
    }
    while (outstanding > 0) {
      co_await verbs::next_completion(cq, cpu, kPollDetect);
      --outstanding;
    }
  };

  e.spawn(streamer(w, true, connections, msg, rounds));
  e.spawn(streamer(w, false, connections, msg, rounds));
  e.run();
  harvest_metrics(w.cluster, metrics);

  // All data has been placed when the event queue drains.
  const double total_bytes = 2.0 * static_cast<double>(rounds) * connections * msg;
  return total_bytes / to_us(w.cluster.engine().now());  // bytes/us == MB/s
}

}  // namespace fabsim::core

// Calibrated per-network parameter sets.
//
// One NetworkProfile per column of the paper's comparison: iWARP
// (NetEffect NE010e through a Fujitsu XG700 10GbE switch), InfiniBand
// (Mellanox MHEA28-XT 4X through an MTS2400), and Myri-10G in both MXoM
// (Myrinet switch) and MXoE (Ethernet switch) personalities. Values are
// fitted so the headline numbers of DESIGN.md §1 land on the paper's
// reported values; tests/calibration_test.cpp locks them in. Everything
// downstream (figure shapes, crossovers, scaling behaviour) emerges from
// the mechanisms in the stack models, not from these constants.
#pragma once

#include "hw/cpu.hpp"
#include "hw/fabric.hpp"
#include "hw/pci.hpp"
#include "ib/config.hpp"
#include "iwarp/config.hpp"
#include "mpi/config.hpp"
#include "mx/config.hpp"
#include "topo/spec.hpp"

namespace fabsim::core {

enum class Network { kIwarp, kIb, kMxoe, kMxom };

inline const char* network_name(Network network) {
  switch (network) {
    case Network::kIwarp: return "iWARP";
    case Network::kIb: return "IB";
    case Network::kMxoe: return "MXoE";
    case Network::kMxom: return "MXoM";
  }
  return "?";
}

struct NetworkProfile {
  Network network;
  hw::SwitchConfig switch_cfg;
  /// Fabric shape. Defaults to the seed's single crossbar (levels == 1);
  /// benches override levels/radix/flow to build Clos fabrics. The flow
  /// mode that matches each network's link layer: kCredit for IB (VL
  /// buffer credits), kLossy for iWARP / MXoE Ethernet.
  topo::FabricSpec fabric;
  hw::PciConfig pcie;
  hw::CpuConfig cpu;
  iwarp::RnicConfig rnic;  ///< valid for kIwarp
  ib::HcaConfig hca;       ///< valid for kIb
  mx::MxConfig mx;         ///< valid for kMxoe / kMxom
  mpi::MpiConfig mpi;
};

/// Dual Xeon 2.8 GHz (Dell PowerEdge 2850) CPU model shared by all nodes.
inline hw::CpuConfig xeon_cpu() {
  hw::CpuConfig cpu;
  cpu.memcpy_base = ns(60);
  cpu.memcpy_warm_rate = Rate::mb_per_sec(4200.0);
  cpu.memcpy_cold_rate = Rate::mb_per_sec(1450.0);
  cpu.cache_bytes = 512 * 1024;  // effective cache footprint for copies
  return cpu;
}

inline NetworkProfile iwarp_profile() {
  NetworkProfile p;
  p.network = Network::kIwarp;
  // Fujitsu XG700: store-and-forward class latency on 10GbE.
  p.switch_cfg = hw::SwitchConfig{Rate::gbit_per_sec(10.0), ns(450), ns(100)};
  p.pcie = hw::PciConfig{Rate::mb_per_sec(2000.0), ns(250)};
  p.cpu = xeon_cpu();

  iwarp::RnicConfig& r = p.rnic;
  // One-way bandwidth: engine-bound at ~880 MB/s (0.45 us + 1408 B at
  // 1300 MB/s per segment = 1.533 us -> 918; minus per-message and ack
  // overheads lands at ~880). Internal PCI-X effective ~1050 MB/s caps
  // both-way at ~950 MB/s total.
  r.tx_latency = us(3.5);
  r.tx_occupancy = ns(330);
  r.rx_latency = us(3.47);
  r.rx_occupancy = ns(330);
  r.engine_byte_rate = Rate::mb_per_sec(1100.0);
  r.per_message_overhead = ns(400);
  r.ack_occupancy = ns(80);
  r.post_send_cpu = ns(400);
  r.post_recv_cpu = ns(300);
  r.poll_cpu = ns(250);
  r.doorbell = ns(200);
  r.wqe_fetch = ns(450);
  r.pcix = hw::PciConfig{Rate::mb_per_sec(1050.0), ns(100)};
  r.mss = 1408;
  r.seg_overhead = 102;  // Eth+IP+TCP+MPA markers+DDP/RDMAP headers
  r.window = 256 * 1024;
  r.ack_every = 2;
  // Registration: moderate cost (paper: iWARP cheapest at very large
  // messages, ratio ~2.0 at 256 KB).
  r.reg = hw::RegistrationConfig{us(1.0), us(2.1), us(0.5), us(0.4), 4096};

  mpi::MpiConfig& m = p.mpi;
  m.eager_threshold = 4 * 1024;  // paper: switch between 4 KB and 8 KB
  m.posted_item_cost = ns(95);
  m.unexpected_item_cost = ns(115);
  m.pin_cache_enabled = true;
  m.pin_cache_entries = 1024;
  m.pin_cache_bytes = 2ull << 20;
  return p;
}

inline NetworkProfile ib_profile() {
  NetworkProfile p;
  p.network = Network::kIb;
  // Mellanox MTS2400: cut-through, 4X SDR data rate 1 GB/s.
  p.switch_cfg = hw::SwitchConfig{Rate::mb_per_sec(1000.0), ns(200), ns(100)};
  p.fabric.flow = hw::FlowControl::kCredit;  // IB link layer: VL buffer credits
  p.pcie = hw::PciConfig{Rate::mb_per_sec(2000.0), ns(250)};
  p.cpu = xeon_cpu();

  ib::HcaConfig& h = p.hca;
  h.tx_packet_proc = ns(260);
  h.rx_packet_proc = ns(260);
  h.tx_message_proc = ns(350);
  h.rx_message_proc = ns(250);
  h.engine_latency_pad = ns(1060);
  h.engine_byte_rate = Rate::mb_per_sec(4500.0);
  h.context_cache_entries = 8;
  h.context_miss_penalty = us(1.3);
  h.post_send_cpu = ns(300);
  h.post_recv_cpu = ns(100);
  h.poll_cpu = ns(200);
  h.doorbell = ns(200);
  h.dma_rate = Rate::mb_per_sec(2080.0);
  h.dma_transaction = ns(80);
  h.mtu = 2048;
  h.packet_overhead = 30;
  // Mellanox-era registration is expensive (Fig 6: ratio 4.3 at 128 KB).
  h.reg = hw::RegistrationConfig{us(2.0), us(7.0), us(1.0), us(0.9), 4096};

  mpi::MpiConfig& m = p.mpi;
  m.eager_threshold = 8 * 1024;  //  default class
  m.send_call_cpu = ns(30);
  m.recv_call_cpu = ns(30);
  m.handler_cpu = ns(20);
  m.wait_poll_cpu = ns(40);
  m.posted_item_cost = ns(110);
  m.unexpected_item_cost = ns(130);
  // MVAPICH's RDMA-write eager channel stalls on its own completions —
  // the paper's ~3 us LogP gap for IB despite its lowest latency.
  m.max_outstanding_eager = 1;
  m.pin_cache_enabled = true;
  m.pin_cache_entries = 1024;
  m.pin_cache_bytes = 3ull << 20;
  return p;
}

inline NetworkProfile mx_profile_base() {
  NetworkProfile p;
  p.cpu = xeon_cpu();
  // Forced PCIe x4 (Intel E7520 chipset workaround, paper §4).
  p.pcie = hw::PciConfig{Rate::mb_per_sec(1000.0), ns(220)};

  mx::MxConfig& x = p.mx;
  x.tx_occupancy = ns(260);
  x.tx_latency = us(0.52);
  x.rx_occupancy = ns(260);
  x.rx_latency = us(0.52);
  x.engine_byte_rate = Rate::mb_per_sec(5000.0);
  x.per_message_overhead = ns(180);
  x.match_posted_item = ns(260);
  x.match_unexpected_item = ns(15);
  x.isend_cpu = ns(220);
  x.irecv_cpu = ns(220);
  x.test_cpu = ns(90);
  x.doorbell = ns(180);
  x.dma_rate = Rate::mb_per_sec(2000.0);
  x.dma_transaction = ns(120);
  x.eager_max = 32 * 1024;
  x.mtu = 4096;
  x.reg = hw::RegistrationConfig{us(1.0), us(2.9), us(0.5), us(0.3), 4096};
  x.reg_cache_enabled = true;
  x.reg_cache_entries = 4096;
  x.reg_cache_bytes = 8ull << 20;

  mpi::MpiConfig& m = p.mpi;
  // MPICH-MX is a thin shim: matching lives in MX.
  m.send_call_cpu = ns(380);
  m.recv_call_cpu = ns(380);
  m.wait_poll_cpu = ns(80);
  return p;
}

inline NetworkProfile mxom_profile() {
  NetworkProfile p = mx_profile_base();
  p.network = Network::kMxom;
  // Myri-10G switch: cut-through, very low latency, stop/go flow control.
  p.switch_cfg = hw::SwitchConfig{Rate::gbit_per_sec(10.0), ns(100), ns(100)};
  p.fabric.flow = hw::FlowControl::kCredit;
  p.mx.frame_overhead = 16;
  return p;
}

inline NetworkProfile mxoe_profile() {
  NetworkProfile p = mx_profile_base();
  p.network = Network::kMxoe;
  // Same NIC through the Fujitsu XG700 Ethernet switch.
  p.switch_cfg = hw::SwitchConfig{Rate::gbit_per_sec(10.0), ns(450), ns(100)};
  p.mx.frame_overhead = 60;
  return p;
}

inline NetworkProfile profile(Network network) {
  switch (network) {
    case Network::kIwarp: return iwarp_profile();
    case Network::kIb: return ib_profile();
    case Network::kMxoe: return mxoe_profile();
    case Network::kMxom: return mxom_profile();
  }
  throw std::invalid_argument("unknown network");
}

}  // namespace fabsim::core

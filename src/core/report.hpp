// Fixed-width table / CSV / JSON reporting for benchmark binaries.
//
// Every bench builds one Report, fills it with tables (the figure
// series), latency histograms (exact percentiles), named scalars, and a
// MetricRegistry snapshot, then calls print() for stdout and
// write("results") to persist <name>.txt, <name>.csv and <name>.json
// side by side. The JSON is emitted by hand (no dependency) and round-
// trips through sim/json.hpp's validator in the test suite.
#pragma once

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "sim/histogram.hpp"
#include "sim/json.hpp"
#include "sim/metrics.hpp"

namespace fabsim::core {

/// Column-oriented result table: first column is the x value (message
/// size, #connections, queue depth, ...), one column per series.
class Table {
 public:
  struct Row {
    double x;
    std::vector<double> values;
  };

  Table(std::string title, std::string x_label, std::vector<std::string> series)
      : title_(std::move(title)), x_label_(std::move(x_label)), series_(std::move(series)) {}

  void add_row(double x, std::vector<double> values) {
    rows_.push_back(Row{x, std::move(values)});
  }

  const std::string& title() const { return title_; }
  const std::string& x_label() const { return x_label_; }
  const std::vector<std::string>& series() const { return series_; }
  const std::vector<Row>& rows() const { return rows_; }

  void print(std::FILE* out = stdout) const {
    std::fprintf(out, "\n## %s\n", title_.c_str());
    std::fprintf(out, "%-12s", x_label_.c_str());
    for (const std::string& s : series_) std::fprintf(out, " %14s", s.c_str());
    std::fprintf(out, "\n");
    for (const Row& row : rows_) {
      print_x(out, row.x);
      for (double v : row.values) std::fprintf(out, " %14.3f", v);
      std::fprintf(out, "\n");
    }
  }

  void print_csv(std::FILE* out = stdout) const {
    std::fprintf(out, "# csv: %s\n%s", title_.c_str(), x_label_.c_str());
    for (const std::string& s : series_) std::fprintf(out, ",%s", s.c_str());
    std::fprintf(out, "\n");
    for (const Row& row : rows_) {
      if (row.x != std::floor(row.x)) {
        std::fprintf(out, "%g", row.x);
      } else {
        std::fprintf(out, "%.0f", row.x);
      }
      for (double v : row.values) std::fprintf(out, ",%.4f", v);
      std::fprintf(out, "\n");
    }
  }

 private:
  static void print_x(std::FILE* out, double x) {
    if (x >= 1 << 20 && static_cast<long long>(x) % (1 << 20) == 0) {
      std::fprintf(out, "%-12s", (std::to_string(static_cast<long long>(x) >> 20) + "M").c_str());
    } else if (x >= 1024 && static_cast<long long>(x) % 1024 == 0) {
      std::fprintf(out, "%-12s", (std::to_string(static_cast<long long>(x) >> 10) + "K").c_str());
    } else if (x != std::floor(x)) {
      std::fprintf(out, "%-12g", x);  // fractional x (e.g. loss rates)
    } else {
      std::fprintf(out, "%-12.0f", x);
    }
  }

  std::string title_;
  std::string x_label_;
  std::vector<std::string> series_;
  std::vector<Row> rows_;
};

/// Power-of-two sweep helper.
inline std::vector<std::uint32_t> pow2_sizes(std::uint32_t from, std::uint32_t to) {
  std::vector<std::uint32_t> sizes;
  for (std::uint32_t s = from; s <= to; s *= 2) sizes.push_back(s);
  return sizes;
}

/// End-of-run report: collects everything a bench produced and writes
/// the three uniform artifacts results/<name>.{txt,csv,json}.
class Report {
 public:
  explicit Report(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Free-form context line (profile, iteration counts, caveats).
  void add_note(std::string note) { notes_.push_back(std::move(note)); }

  void add_scalar(const std::string& key, double value, const std::string& unit = "") {
    scalars_.push_back(Scalar{key, value, unit});
  }

  void add_table(Table table) { tables_.push_back(std::move(table)); }

  /// Snapshot the histogram's distribution (exact percentiles + log2
  /// buckets). Empty histograms are skipped so runners can pass their
  /// collector unconditionally.
  void add_histogram(const std::string& key, const Histogram& h) {
    if (h.count() == 0) return;
    HistSummary s;
    s.key = key;
    s.n = h.count();
    s.mean = h.mean();
    s.stddev = h.stddev();
    s.min = h.min();
    s.max = h.max();
    s.p50 = h.p50();
    s.p90 = h.p90();
    s.p99 = h.p99();
    s.p999 = h.p999();
    s.buckets = h.buckets();
    hists_.push_back(std::move(s));
  }

  /// Flatten the registry (counters, gauge high-water marks, phase
  /// totals) into the report's metric section. `prefix` namespaces the
  /// entries when one report merges registries from several runs
  /// (e.g. one probe per network).
  void add_metrics(const MetricRegistry& registry, const std::string& prefix = "") {
    for (const auto& [key, value] : registry.snapshot()) {
      metrics_.push_back({prefix + key, value});
    }
  }

  /// Filtered variant: keep only the entries `keep(key)` approves.
  /// Benches on large fabrics use it to persist aggregate counters
  /// (fabric totals, sim.digest, check.*) without thousands of lines of
  /// per-node/per-port detail; their --full flag switches back to the
  /// unfiltered dump.
  template <typename Keep>
  void add_metrics_if(const MetricRegistry& registry, const std::string& prefix, Keep&& keep) {
    for (const auto& [key, value] : registry.snapshot()) {
      if (keep(key)) metrics_.push_back({prefix + key, value});
    }
  }

  /// The shared aggregate filter for add_metrics_if: drops per-node,
  /// per-port and per-rank instance detail, keeps fabric-wide totals.
  static bool aggregate_key(const std::string& key) {
    return key.find(".node") == std::string::npos && key.find(".port") == std::string::npos &&
           key.find(".rank") == std::string::npos;
  }

  // --- output --------------------------------------------------------

  void print(std::FILE* out = stdout) const {
    std::fprintf(out, "# %s\n", name_.c_str());
    for (const std::string& n : notes_) std::fprintf(out, "# %s\n", n.c_str());
    for (const Table& t : tables_) t.print(out);
    if (!scalars_.empty()) {
      std::fprintf(out, "\n## scalars\n");
      for (const Scalar& s : scalars_) {
        std::fprintf(out, "%-44s %.3f %s\n", s.key.c_str(), s.value, s.unit.c_str());
      }
    }
    if (!hists_.empty()) {
      std::fprintf(out, "\n## latency distribution\n");
      for (const HistSummary& h : hists_) {
        std::fprintf(out,
                     "%-24s n=%llu mean=%.3f p50=%.3f p90=%.3f p99=%.3f p999=%.3f max=%.3f\n",
                     h.key.c_str(), static_cast<unsigned long long>(h.n), h.mean, h.p50, h.p90,
                     h.p99, h.p999, h.max);
      }
    }
    if (!metrics_.empty()) {
      std::fprintf(out, "\n## metrics\n");
      for (const auto& [key, value] : metrics_) {
        std::fprintf(out, "%-44s %.3f\n", key.c_str(), value);
      }
    }
  }

  /// Write <dir>/<name>.txt, .csv and .json. Returns false if any file
  /// could not be opened (bench keeps going; stdout already has it all).
  bool write(const std::string& dir = "results") const {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    bool ok = true;
    ok &= write_with(dir + "/" + name_ + ".txt", [this](std::FILE* f) { print(f); });
    ok &= write_with(dir + "/" + name_ + ".csv", [this](std::FILE* f) { write_csv(f); });
    ok &= write_with(dir + "/" + name_ + ".json", [this](std::FILE* f) {
      const std::string text = json();
      std::fwrite(text.data(), 1, text.size(), f);
    });
    return ok;
  }

  void write_csv(std::FILE* out) const {
    for (const Table& t : tables_) t.print_csv(out);
    for (const Scalar& s : scalars_) {
      std::fprintf(out, "scalar,%s,%.6f,%s\n", s.key.c_str(), s.value, s.unit.c_str());
    }
    for (const HistSummary& h : hists_) {
      std::fprintf(out, "hist,%s,%llu,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n", h.key.c_str(),
                   static_cast<unsigned long long>(h.n), h.mean, h.p50, h.p90, h.p99, h.p999,
                   h.max);
    }
    for (const auto& [key, value] : metrics_) {
      std::fprintf(out, "metric,%s,%.6f\n", key.c_str(), value);
    }
  }

  /// The full report as a JSON document (parsed back by sim/json.hpp in
  /// tests, consumable by plotting scripts).
  std::string json() const {
    std::string out = "{\n  \"benchmark\": \"" + minijson::escape(name_) + "\",\n";
    out += "  \"notes\": [";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
      if (i) out += ", ";
      out += "\"" + minijson::escape(notes_[i]) + "\"";
    }
    out += "],\n  \"scalars\": {";
    for (std::size_t i = 0; i < scalars_.size(); ++i) {
      if (i) out += ", ";
      out += "\"" + minijson::escape(scalars_[i].key) + "\": " + num(scalars_[i].value);
    }
    out += "},\n  \"tables\": [";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      if (i) out += ",";
      out += "\n    " + table_json(tables_[i]);
    }
    out += tables_.empty() ? "],\n" : "\n  ],\n";
    out += "  \"histograms\": {";
    for (std::size_t i = 0; i < hists_.size(); ++i) {
      if (i) out += ",";
      out += "\n    " + hist_json(hists_[i]);
    }
    out += hists_.empty() ? "},\n" : "\n  },\n";
    out += "  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i) out += ",";
      out += "\n    \"" + minijson::escape(metrics_[i].first) + "\": " + num(metrics_[i].second);
    }
    out += metrics_.empty() ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
  }

 private:
  struct Scalar {
    std::string key;
    double value;
    std::string unit;
  };

  struct HistSummary {
    std::string key;
    std::uint64_t n = 0;
    double mean = 0, stddev = 0, min = 0, max = 0;
    double p50 = 0, p90 = 0, p99 = 0, p999 = 0;
    std::vector<Histogram::Bucket> buckets;
  };

  static std::string num(double v) {
    if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  static std::string table_json(const Table& t) {
    std::string out = "{\"title\": \"" + minijson::escape(t.title()) + "\", \"x_label\": \"" +
                      minijson::escape(t.x_label()) + "\", \"series\": [";
    for (std::size_t i = 0; i < t.series().size(); ++i) {
      if (i) out += ", ";
      out += "\"" + minijson::escape(t.series()[i]) + "\"";
    }
    out += "], \"rows\": [";
    for (std::size_t i = 0; i < t.rows().size(); ++i) {
      const Table::Row& row = t.rows()[i];
      out += (i ? ", [" : "[") + num(row.x);
      for (double v : row.values) out += ", " + num(v);
      out += "]";
    }
    out += "]}";
    return out;
  }

  static std::string hist_json(const HistSummary& h) {
    std::string out = "\"" + minijson::escape(h.key) + "\": {\"n\": " +
                      std::to_string(h.n) + ", \"mean\": " + num(h.mean) + ", \"stddev\": " +
                      num(h.stddev) + ", \"min\": " + num(h.min) + ", \"max\": " + num(h.max) +
                      ", \"p50\": " + num(h.p50) + ", \"p90\": " + num(h.p90) + ", \"p99\": " +
                      num(h.p99) + ", \"p999\": " + num(h.p999) + ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      const Histogram::Bucket& b = h.buckets[i];
      out += (i ? ", [" : "[") + num(b.lo) + ", " + num(b.hi) + ", " +
             std::to_string(b.count) + "]";
    }
    out += "]}";
    return out;
  }

  template <typename Fn>
  static bool write_with(const std::string& path, Fn&& fn) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    fn(f);
    std::fclose(f);
    return true;
  }

  std::string name_;
  std::vector<std::string> notes_;
  std::vector<Scalar> scalars_;
  std::vector<Table> tables_;
  std::vector<HistSummary> hists_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace fabsim::core

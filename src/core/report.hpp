// Fixed-width table / CSV reporting for benchmark binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace fabsim::core {

/// Column-oriented result table: first column is the x value (message
/// size, #connections, queue depth, ...), one column per series.
class Table {
 public:
  Table(std::string title, std::string x_label, std::vector<std::string> series)
      : title_(std::move(title)), x_label_(std::move(x_label)), series_(std::move(series)) {}

  void add_row(double x, std::vector<double> values) {
    rows_.push_back(Row{x, std::move(values)});
  }

  void print(std::FILE* out = stdout) const {
    std::fprintf(out, "\n## %s\n", title_.c_str());
    std::fprintf(out, "%-12s", x_label_.c_str());
    for (const std::string& s : series_) std::fprintf(out, " %14s", s.c_str());
    std::fprintf(out, "\n");
    for (const Row& row : rows_) {
      print_x(out, row.x);
      for (double v : row.values) std::fprintf(out, " %14.3f", v);
      std::fprintf(out, "\n");
    }
  }

  void print_csv(std::FILE* out = stdout) const {
    std::fprintf(out, "# csv: %s\n%s", title_.c_str(), x_label_.c_str());
    for (const std::string& s : series_) std::fprintf(out, ",%s", s.c_str());
    std::fprintf(out, "\n");
    for (const Row& row : rows_) {
      std::fprintf(out, "%.0f", row.x);
      for (double v : row.values) std::fprintf(out, ",%.4f", v);
      std::fprintf(out, "\n");
    }
  }

 private:
  struct Row {
    double x;
    std::vector<double> values;
  };

  static void print_x(std::FILE* out, double x) {
    if (x >= 1 << 20 && static_cast<long long>(x) % (1 << 20) == 0) {
      std::fprintf(out, "%-12s", (std::to_string(static_cast<long long>(x) >> 20) + "M").c_str());
    } else if (x >= 1024 && static_cast<long long>(x) % 1024 == 0) {
      std::fprintf(out, "%-12s", (std::to_string(static_cast<long long>(x) >> 10) + "K").c_str());
    } else {
      std::fprintf(out, "%-12.0f", x);
    }
  }

  std::string title_;
  std::string x_label_;
  std::vector<std::string> series_;
  std::vector<Row> rows_;
};

/// Power-of-two sweep helper.
inline std::vector<std::uint32_t> pow2_sizes(std::uint32_t from, std::uint32_t to) {
  std::vector<std::uint32_t> sizes;
  for (std::uint32_t s = from; s <= to; s *= 2) sizes.push_back(s);
  return sizes;
}

}  // namespace fabsim::core

#include "core/cluster.hpp"

#include <map>
#include <stdexcept>

#include "check/audits.hpp"
#include "fault/plan.hpp"

namespace fabsim::core {

Cluster::Cluster(int nodes, NetworkProfile profile)
    : profile_(profile),
      topo_(topo::Topology::build(engine_, profile.fabric, profile.switch_cfg, nodes)) {
  // NICs must be constructed in increasing node order: in routed fabrics
  // each edge switch hands out its pre-reserved global addresses FIFO.
  for (int i = 0; i < nodes; ++i) {
    hw::Switch& edge = topo_.edge_for(i);
    nodes_.push_back(std::make_unique<hw::Node>(engine_, i, profile_.pcie, profile_.cpu));
    switch (profile_.network) {
      case Network::kIwarp: {
        iwarp::RnicConfig config = profile_.rnic;
        config.rng_seed = 1000 + static_cast<std::uint64_t>(i);
        rnics_.push_back(std::make_unique<iwarp::Rnic>(*nodes_.back(), edge, config));
        break;
      }
      case Network::kIb:
        hcas_.push_back(std::make_unique<ib::Hca>(*nodes_.back(), edge, profile_.hca));
        break;
      case Network::kMxoe:
      case Network::kMxom:
        endpoints_.push_back(std::make_unique<mx::Endpoint>(*nodes_.back(), edge, profile_.mx));
        break;
    }
  }
#ifdef FABSIM_CHECK
  enable_checks(/*fatal=*/false);
#endif
}

check::InvariantMonitor& Cluster::enable_checks(bool fatal) {
  if (owned_monitor_ == nullptr) {
    owned_monitor_ = std::make_unique<check::InvariantMonitor>(fatal);
    attach_monitor(*owned_monitor_);
    // Dynamic half of FabricScope-Check: every checked run corroborates
    // the static scope_check.py verdicts. Violations flow through the
    // monitor, so fatal/counting behaviour matches the other audits.
    owned_auditor_ = std::make_unique<scope::ScopeAuditor>(owned_monitor_.get());
    attach_scope_auditor(*owned_auditor_);
    // Dynamic half of FabricHot-Check: corroborate the static
    // hotpath_check.py verdicts — zero tracked allocations per
    // dispatched event (amortized queue growth excused) on live traffic.
    owned_hot_auditor_ = std::make_unique<hot::HotpathAuditor>(owned_monitor_.get());
    attach_hotpath_auditor(*owned_hot_auditor_);
  }
  return *owned_monitor_;
}

void Cluster::attach_monitor(check::InvariantMonitor& monitor) {
  engine_.set_monitor(&monitor);
  // Quiescent-state audits, run when the event queue drains. Channels may
  // not exist yet at attach time (setup_mpi runs inside the simulation),
  // so the lambda walks the live vectors at fire time.
  monitor.add_final_check([this](check::InvariantMonitor& m) {
    const Time now = engine_.now();
    // Per-hop frame conservation on every switch of the fabric, plus the
    // routed-mode queue-drained / credit-conservation audits.
    topo_.audit_final(m, now);
    // Cross-check against the fault plan: the injector is consulted at
    // every hop, but each kDrop decision lands on exactly one switch's
    // counter, so the plan's drop decision count must equal the
    // fabric-wide fault-drop total exactly.
    if (const auto* plan = dynamic_cast<const fault::FaultPlan*>(engine_.fault_injector())) {
      m.expect(plan->frames_dropped() == topo_.fault_drops_total(), now, check::Layer::kHw, -1,
               "fault_drop_mismatch", [&] {
                 return "FaultPlan decided " + std::to_string(plan->frames_dropped()) +
                        " drops but the fabric recorded " +
                        std::to_string(topo_.fault_drops_total());
               });
    }
    for (auto& endpoint : endpoints_) endpoint->audit_consistency(m);
    for (auto& channel : channels_) {
      if (auto* ch = dynamic_cast<mpi::ChVerbs*>(channel.get())) ch->audit_queues(m);
    }
  });
}

verbs::Device& Cluster::device(int i) {
  switch (profile_.network) {
    case Network::kIwarp: return *rnics_.at(static_cast<std::size_t>(i));
    case Network::kIb: return *hcas_.at(static_cast<std::size_t>(i));
    default: throw std::logic_error("device(): not a verbs network");
  }
}

iwarp::Rnic& Cluster::rnic(int i) { return *rnics_.at(static_cast<std::size_t>(i)); }
ib::Hca& Cluster::hca(int i) { return *hcas_.at(static_cast<std::size_t>(i)); }

mx::Endpoint& Cluster::endpoint(int i) {
  if (endpoints_.empty()) throw std::logic_error("endpoint(): not an MX network");
  return *endpoints_.at(static_cast<std::size_t>(i));
}

Task<> Cluster::setup_mpi() {
  if (!mpi_ready_event_) mpi_ready_event_ = std::make_unique<Event>(engine_);
  if (mpi_ready_) {
    // Another process is (or was) doing the setup; wait until it finishes.
    co_await mpi_ready_event_->wait();
    co_return;
  }
  mpi_ready_ = true;
  const int n = num_nodes();
  if (is_verbs()) {
    std::vector<mpi::ChVerbs*> verbs_channels;
    for (int i = 0; i < n; ++i) {
      auto channel = std::make_unique<mpi::ChVerbs>(i, n, device(i), node(i), engine_,
                                                    profile_.mpi);
      verbs_channels.push_back(channel.get());
      channels_.push_back(std::move(channel));
    }
    co_await mpi::ChVerbs::connect_mesh(verbs_channels);
    if (profile_.mpi.async_progress) {
      for (mpi::ChVerbs* channel : verbs_channels) channel->start_async_progress();
    }
  } else {
    std::vector<int> ports;
    for (int i = 0; i < n; ++i) ports.push_back(endpoint(i).port());
    for (int i = 0; i < n; ++i) {
      channels_.push_back(
          std::make_unique<mpi::ChMx>(i, n, endpoint(i), profile_.mpi, ports));
    }
  }
  for (int i = 0; i < n; ++i) {
    mpi_ranks_.push_back(std::make_unique<mpi::Rank>(*channels_[static_cast<std::size_t>(i)]));
  }
  mpi_ready_event_->trigger();
}

void Cluster::collect_metrics(MetricRegistry& registry) {
  const Time elapsed = engine_.now();
  auto nname = [](int i) { return "node" + std::to_string(i); };

  // Determinism fingerprint: two runs of the same configuration must
  // produce identical digests (scripts/check_determinism.sh diffs these).
  registry.counter("sim.events").set(engine_.events_processed());
  registry.counter("sim.digest").set(engine_.run_digest());

  // FabricProf: host-side dispatch/queue/alloc profile, when attached.
  if (const Profiler* profiler = engine_.profiler()) profiler->publish(registry);

  // FabricCheck: violation totals, plus one counter per (layer, rule).
  // Tallied into a local map first so repeated collect_metrics calls
  // overwrite rather than accumulate.
  if (const check::InvariantMonitor* m = engine_.monitor()) {
    registry.counter("check.violations").set(m->violation_count());
    std::map<std::string, std::uint64_t> by_rule;
    for (const check::InvariantViolation& v : m->violations()) {
      ++by_rule[std::string("check.") + check::layer_name(v.layer) + "." + v.rule];
    }
    for (const auto& [name, count] : by_rule) registry.counter(name).set(count);
  }

  // FabricScope-Check: dynamic scope-audit coverage, when attached. A
  // zero scope.checks with the auditor on means the traps never ran —
  // as suspicious as a violation for the parallel-engine gate.
  if (const scope::ScopeAuditor* auditor = engine_.scope_auditor()) {
    registry.counter("scope.checks").set(auditor->checks());
    registry.counter("scope.violations").set(auditor->violations());
  }

  // FabricHot-Check: dynamic allocation-budget coverage, when attached —
  // same zero-checks-is-suspicious logic as the scope auditor.
  if (const hot::HotpathAuditor* auditor = engine_.hotpath_auditor()) {
    registry.counter("hot.checks").set(auditor->checks());
    registry.counter("hot.violations").set(auditor->violations());
  }

  // Fabric: per-switch, per-port serialization busy time -> utilization,
  // tail drops, queue high-water marks, and (routed fabrics) the
  // credit-stall / PAUSE counters. Single crossbars keep the seed's flat
  // switch.portN.* names.
  topo_.collect_metrics(registry, elapsed);

  // Host side: CPU busy time and PCIe DMA byte counts per node.
  for (int i = 0; i < num_nodes(); ++i) {
    const std::string prefix = "hw." + nname(i) + ".";
    registry.counter(prefix + "cpu_busy_us")
        .set(static_cast<std::uint64_t>(to_us(node(i).cpu().busy_time())));
    registry.counter(prefix + "pcie_bytes_read").set(node(i).pcie().bytes_read());
    registry.counter(prefix + "pcie_bytes_written").set(node(i).pcie().bytes_written());
  }

  // Stack counters, per node.
  for (std::size_t i = 0; i < rnics_.size(); ++i) {
    const iwarp::Rnic& r = *rnics_[i];
    const std::string prefix = "iwarp." + nname(static_cast<int>(i)) + ".";
    registry.counter(prefix + "segments_sent").set(r.segments_sent());
    registry.counter(prefix + "acks_sent").set(r.acks_sent());
    registry.counter(prefix + "retransmits").set(r.retransmits());
    registry.counter(prefix + "retransmitted_bytes").set(r.retransmitted_bytes());
    registry.counter(prefix + "rto_fires").set(r.rto_fires());
    registry.counter(prefix + "crc_discards").set(r.corrupt_discards());
    registry.counter(prefix + "pcix_bytes").set(r.pcix_bytes());
    registry.counter(prefix + "retry_exceeded").set(r.retry_exceeded_completions());
    registry.counter(prefix + "conn_errors").set(r.conn_errors());
  }
  for (std::size_t i = 0; i < hcas_.size(); ++i) {
    const ib::Hca& h = *hcas_[i];
    const std::string prefix = "ib." + nname(static_cast<int>(i)) + ".";
    registry.counter(prefix + "packets_sent").set(h.packets_sent());
    registry.counter(prefix + "acks_sent").set(h.acks_sent());
    registry.counter(prefix + "naks_sent").set(h.naks_sent());
    registry.counter(prefix + "retransmits").set(h.retransmits());
    registry.counter(prefix + "retransmitted_bytes").set(h.retransmitted_bytes());
    registry.counter(prefix + "rto_fires").set(h.rto_fires());
    registry.counter(prefix + "crc_discards").set(h.corrupt_discards());
    registry.counter(prefix + "context_hits").set(h.context_hits());
    registry.counter(prefix + "context_misses").set(h.context_misses());
    registry.counter(prefix + "retry_exceeded").set(h.retry_exceeded_completions());
  }
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    const mx::Endpoint& e = *endpoints_[i];
    const std::string prefix = "mx." + nname(static_cast<int>(i)) + ".";
    registry.counter(prefix + "frames_sent").set(e.frames_sent());
    registry.counter(prefix + "acks_sent").set(e.acks_sent());
    registry.counter(prefix + "resends").set(e.resends());
    registry.counter(prefix + "resent_bytes").set(e.resent_bytes());
    registry.counter(prefix + "rto_fires").set(e.rto_fires());
    registry.counter(prefix + "crc_discards").set(e.corrupt_discards());
    registry.counter(prefix + "eager_sends").set(e.eager_sends());
    registry.counter(prefix + "rndv_sends").set(e.rndv_sends());
    registry.counter(prefix + "flow_failures").set(e.flow_failures());
    registry.counter(prefix + "reg_cache_hits").set(e.reg_cache().hits());
    registry.counter(prefix + "reg_cache_misses").set(e.reg_cache().misses());
    registry.counter(prefix + "reg_cache_evictions").set(e.reg_cache().evictions());
    registry.gauge(prefix + "unexpected_depth").set(static_cast<double>(e.unexpected_max_depth()));
    registry.gauge(prefix + "posted_depth").set(static_cast<double>(e.posted_max_depth()));
  }

  // MPI layer (when setup_mpi ran): protocol split, queue depth
  // high-water marks, and the pin-down cache for ch_verbs.
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const std::string prefix = "mpi.rank" + std::to_string(i) + ".";
    if (const auto* ch = dynamic_cast<const mpi::ChVerbs*>(channels_[i].get())) {
      registry.counter(prefix + "eager_sends").set(ch->eager_send_count());
      registry.counter(prefix + "rndv_sends").set(ch->rndv_send_count());
      registry.gauge(prefix + "unexpected_max_depth")
          .set(static_cast<double>(ch->unexpected_max_depth()));
      registry.gauge(prefix + "posted_max_depth").set(static_cast<double>(ch->posted_max_depth()));
      registry.counter(prefix + "pin_hits").set(ch->pin_hits());
      registry.counter(prefix + "pin_misses").set(ch->pin_misses());
      registry.counter(prefix + "pin_cache_evictions").set(ch->pin_cache().evictions());
    } else if (!endpoints_.empty()) {
      // ChMx delegates matching to the NIC: surface the endpoint's
      // NIC-resident queue high-water marks under the MPI taxonomy too.
      const mx::Endpoint& e = *endpoints_[i];
      registry.gauge(prefix + "unexpected_max_depth")
          .set(static_cast<double>(e.unexpected_max_depth()));
      registry.gauge(prefix + "posted_max_depth")
          .set(static_cast<double>(e.posted_max_depth()));
    }
  }
}

}  // namespace fabsim::core

#include "core/cluster.hpp"

#include <stdexcept>

namespace fabsim::core {

Cluster::Cluster(int nodes, NetworkProfile profile) : profile_(profile) {
  fabric_ = std::make_unique<hw::Switch>(engine_, profile_.switch_cfg);
  for (int i = 0; i < nodes; ++i) {
    nodes_.push_back(std::make_unique<hw::Node>(engine_, i, profile_.pcie, profile_.cpu));
    switch (profile_.network) {
      case Network::kIwarp: {
        iwarp::RnicConfig config = profile_.rnic;
        config.rng_seed = 1000 + static_cast<std::uint64_t>(i);
        rnics_.push_back(std::make_unique<iwarp::Rnic>(*nodes_.back(), *fabric_, config));
        break;
      }
      case Network::kIb:
        hcas_.push_back(std::make_unique<ib::Hca>(*nodes_.back(), *fabric_, profile_.hca));
        break;
      case Network::kMxoe:
      case Network::kMxom:
        endpoints_.push_back(std::make_unique<mx::Endpoint>(*nodes_.back(), *fabric_, profile_.mx));
        break;
    }
  }
}

verbs::Device& Cluster::device(int i) {
  switch (profile_.network) {
    case Network::kIwarp: return *rnics_.at(static_cast<std::size_t>(i));
    case Network::kIb: return *hcas_.at(static_cast<std::size_t>(i));
    default: throw std::logic_error("device(): not a verbs network");
  }
}

iwarp::Rnic& Cluster::rnic(int i) { return *rnics_.at(static_cast<std::size_t>(i)); }
ib::Hca& Cluster::hca(int i) { return *hcas_.at(static_cast<std::size_t>(i)); }

mx::Endpoint& Cluster::endpoint(int i) {
  if (endpoints_.empty()) throw std::logic_error("endpoint(): not an MX network");
  return *endpoints_.at(static_cast<std::size_t>(i));
}

Task<> Cluster::setup_mpi() {
  if (!mpi_ready_event_) mpi_ready_event_ = std::make_unique<Event>(engine_);
  if (mpi_ready_) {
    // Another process is (or was) doing the setup; wait until it finishes.
    co_await mpi_ready_event_->wait();
    co_return;
  }
  mpi_ready_ = true;
  const int n = num_nodes();
  if (is_verbs()) {
    std::vector<mpi::ChVerbs*> verbs_channels;
    for (int i = 0; i < n; ++i) {
      auto channel = std::make_unique<mpi::ChVerbs>(i, n, device(i), node(i), engine_,
                                                    profile_.mpi);
      verbs_channels.push_back(channel.get());
      channels_.push_back(std::move(channel));
    }
    co_await mpi::ChVerbs::connect_mesh(verbs_channels);
    if (profile_.mpi.async_progress) {
      for (mpi::ChVerbs* channel : verbs_channels) channel->start_async_progress();
    }
  } else {
    std::vector<int> ports;
    for (int i = 0; i < n; ++i) ports.push_back(endpoint(i).port());
    for (int i = 0; i < n; ++i) {
      channels_.push_back(
          std::make_unique<mpi::ChMx>(i, n, endpoint(i), profile_.mpi, ports));
    }
  }
  for (int i = 0; i < n; ++i) {
    mpi_ranks_.push_back(std::make_unique<mpi::Rank>(*channels_[static_cast<std::size_t>(i)]));
  }
  mpi_ready_event_->trigger();
}

}  // namespace fabsim::core

// Benchmark runners: one function per measurement the paper performs.
//
// Every runner builds a fresh Cluster (clean, deterministic state), runs
// the paper's algorithm inside the simulation, and returns the metric.
// Figure-by-figure mapping lives in DESIGN.md §3; the bench/ binaries
// sweep these runners to print each figure's series.
//
// FabricScope outs: every runner takes two trailing, defaulted observer
// pointers. `hist` receives one latency sample per measured message
// (half-RTT µs for ping-pongs, per-window µs for streaming tests) so
// benches can report exact p50/p99 tails next to the mean the paper
// plots. `metrics` is attached to the cluster's engine for the whole run
// (push-path phase attribution and counter samples) and receives the
// Cluster::collect_metrics() pull snapshot at end of run. Both are
// ignored when null — existing call sites compile unchanged.
#pragma once

#include <cstdint>

#include "core/calibration.hpp"
#include "sim/histogram.hpp"
#include "sim/metrics.hpp"

namespace fabsim::core {

// --- Figure 1: user-level ping-pong (verbs RDMA Write / MX send-recv) ---
double userlevel_pingpong_latency_us(const NetworkProfile& profile, std::uint32_t msg,
                                     int iters = 30, Histogram* hist = nullptr,
                                     MetricRegistry* metrics = nullptr);
double userlevel_bandwidth_mbps(const NetworkProfile& profile, std::uint32_t msg, int iters = 10,
                                Histogram* hist = nullptr, MetricRegistry* metrics = nullptr);

// --- Figure 2: multi-connection scalability (common verbs interface) ---
double multiconn_normalized_latency_us(const NetworkProfile& profile, int connections,
                                       std::uint32_t msg, int rounds = 16,
                                       Histogram* hist = nullptr,
                                       MetricRegistry* metrics = nullptr);
double multiconn_throughput_mbps(const NetworkProfile& profile, int connections,
                                 std::uint32_t msg, int rounds = 24,
                                 MetricRegistry* metrics = nullptr);

// --- Figure 3: MPI ping-pong latency ---
double mpi_pingpong_latency_us(const NetworkProfile& profile, std::uint32_t msg, int iters = 30,
                               Histogram* hist = nullptr, MetricRegistry* metrics = nullptr);

// --- Figure 4: MPI bandwidth, three modes ---
double mpi_unidir_bw_mbps(const NetworkProfile& profile, std::uint32_t msg, int window = 16,
                          int windows = 6, Histogram* hist = nullptr,
                          MetricRegistry* metrics = nullptr);
double mpi_bidir_bw_mbps(const NetworkProfile& profile, std::uint32_t msg, int iters = 20,
                         Histogram* hist = nullptr, MetricRegistry* metrics = nullptr);
double mpi_bothway_bw_mbps(const NetworkProfile& profile, std::uint32_t msg, int window = 16,
                           int windows = 6, Histogram* hist = nullptr,
                           MetricRegistry* metrics = nullptr);

// --- Figure 5: LogP parameters (Kielmann's fast measurement method) ---
struct LogpPoint {
  double gap_us = 0;  ///< g(m): saturation inter-message time
  double os_us = 0;   ///< send overhead
  double or_us = 0;   ///< receive overhead
};
LogpPoint logp_parameters(const NetworkProfile& profile, std::uint32_t msg, int iters = 24,
                          Histogram* os_hist = nullptr, Histogram* or_hist = nullptr,
                          MetricRegistry* metrics = nullptr);

/// Measured LogP-style decomposition of an MPI ping-pong: where one
/// message's half-RTT actually went, from FabricScope's per-phase time
/// attribution (host CPU / NIC+DMA / wire) rather than from the
/// analytical model. Regenerates Fig. 5's overhead story bottom-up.
struct PhaseBreakdown {
  double host_us = 0;   ///< per-message host CPU time
  double nic_us = 0;    ///< per-message DMA + NIC engine occupancy
  double wire_us = 0;   ///< per-message serialization + propagation
  double total_us = 0;  ///< measured half-RTT (== fig3 latency)
};
PhaseBreakdown mpi_phase_breakdown(const NetworkProfile& profile, std::uint32_t msg,
                                   int iters = 30);

// --- Figure 6: buffer re-use effect on ping-pong latency ---
/// `reuse` = true: the same buffer every iteration (100% re-use);
/// false: cycle through `nbufs` distinct buffers (0% re-use).
double bufreuse_latency_us(const NetworkProfile& profile, std::uint32_t msg, bool reuse,
                           int nbufs = 16, int iters = 32, Histogram* hist = nullptr,
                           MetricRegistry* metrics = nullptr);

// --- Figure 7: unexpected-message queue effect (synchronous sends) ---
double unexpected_queue_latency_us(const NetworkProfile& profile, std::uint32_t msg, int depth,
                                   int iters = 16, Histogram* hist = nullptr,
                                   MetricRegistry* metrics = nullptr);

// --- Figure 8: receive (posted) queue effect ---
double recv_queue_latency_us(const NetworkProfile& profile, std::uint32_t msg, int depth,
                             int iters = 16, Histogram* hist = nullptr,
                             MetricRegistry* metrics = nullptr);

}  // namespace fabsim::core

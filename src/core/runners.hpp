// Benchmark runners: one function per measurement the paper performs.
//
// Every runner builds a fresh Cluster (clean, deterministic state), runs
// the paper's algorithm inside the simulation, and returns the metric.
// Figure-by-figure mapping lives in DESIGN.md §3; the bench/ binaries
// sweep these runners to print each figure's series.
#pragma once

#include <cstdint>

#include "core/calibration.hpp"

namespace fabsim::core {

// --- Figure 1: user-level ping-pong (verbs RDMA Write / MX send-recv) ---
double userlevel_pingpong_latency_us(const NetworkProfile& profile, std::uint32_t msg,
                                     int iters = 30);
double userlevel_bandwidth_mbps(const NetworkProfile& profile, std::uint32_t msg,
                                int iters = 10);

// --- Figure 2: multi-connection scalability (common verbs interface) ---
double multiconn_normalized_latency_us(const NetworkProfile& profile, int connections,
                                       std::uint32_t msg, int rounds = 16);
double multiconn_throughput_mbps(const NetworkProfile& profile, int connections,
                                 std::uint32_t msg, int rounds = 24);

// --- Figure 3: MPI ping-pong latency ---
double mpi_pingpong_latency_us(const NetworkProfile& profile, std::uint32_t msg, int iters = 30);

// --- Figure 4: MPI bandwidth, three modes ---
double mpi_unidir_bw_mbps(const NetworkProfile& profile, std::uint32_t msg, int window = 16,
                          int windows = 6);
double mpi_bidir_bw_mbps(const NetworkProfile& profile, std::uint32_t msg, int iters = 20);
double mpi_bothway_bw_mbps(const NetworkProfile& profile, std::uint32_t msg, int window = 16,
                           int windows = 6);

// --- Figure 5: LogP parameters (Kielmann's fast measurement method) ---
struct LogpPoint {
  double gap_us = 0;  ///< g(m): saturation inter-message time
  double os_us = 0;   ///< send overhead
  double or_us = 0;   ///< receive overhead
};
LogpPoint logp_parameters(const NetworkProfile& profile, std::uint32_t msg, int iters = 24);

// --- Figure 6: buffer re-use effect on ping-pong latency ---
/// `reuse` = true: the same buffer every iteration (100% re-use);
/// false: cycle through `nbufs` distinct buffers (0% re-use).
double bufreuse_latency_us(const NetworkProfile& profile, std::uint32_t msg, bool reuse,
                           int nbufs = 16, int iters = 32);

// --- Figure 7: unexpected-message queue effect (synchronous sends) ---
double unexpected_queue_latency_us(const NetworkProfile& profile, std::uint32_t msg, int depth,
                                   int iters = 16);

// --- Figure 8: receive (posted) queue effect ---
double recv_queue_latency_us(const NetworkProfile& profile, std::uint32_t msg, int depth,
                             int iters = 16);

}  // namespace fabsim::core

// Testbed builder: N nodes + switch + NICs + (optionally) a MiniMPI world
// for a chosen network, mirroring the paper's four-node Dell PowerEdge
// 2850 cluster.
#pragma once

#include <memory>
#include <vector>

#include "check/invariant.hpp"
#include "core/calibration.hpp"
#include "hw/fabric.hpp"
#include "hw/node.hpp"
#include "ib/hca.hpp"
#include "iwarp/rnic.hpp"
#include "mpi/ch_mx.hpp"
#include "mpi/ch_verbs.hpp"
#include "mpi/rank.hpp"
#include "mx/endpoint.hpp"
#include "sim/engine.hpp"
#include "topo/topology.hpp"
#include "verbs/verbs.hpp"

namespace fabsim::core {

class Cluster {
 public:
  /// Build `nodes` nodes on the given network using its calibrated
  /// profile (optionally customized by the caller).
  Cluster(int nodes, NetworkProfile profile);
  Cluster(int nodes, Network network) : Cluster(nodes, core::profile(network)) {}

  Engine& engine() { return engine_; }
  const NetworkProfile& profile() const { return profile_; }
  Network network() const { return profile_.network; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  hw::Node& node(int i) { return *nodes_.at(static_cast<std::size_t>(i)); }
  /// The fabric graph (switches, placement, LFTs). profile.fabric picks
  /// the shape; the default (levels == 1) is the seed's single crossbar.
  topo::Topology& topology() { return topo_; }
  const topo::Topology& topology() const { return topo_; }
  /// Seed-compat accessor: the single crossbar (or first switch of a
  /// multi-stage fabric — prefer topology() there).
  hw::Switch& fabric() { return topo_.sw(0); }

  /// Verbs device of node i (iWARP / IB networks only).
  verbs::Device& device(int i);
  iwarp::Rnic& rnic(int i);
  ib::Hca& hca(int i);
  /// MX endpoint of node i (MXoE / MXoM only).
  mx::Endpoint& endpoint(int i);

  bool is_verbs() const {
    return profile_.network == Network::kIwarp || profile_.network == Network::kIb;
  }

  /// Build the MiniMPI world (idempotent); must be awaited inside the
  /// simulation before using mpi_rank().
  Task<> setup_mpi();
  mpi::Rank& mpi_rank(int i) { return *mpi_ranks_.at(static_cast<std::size_t>(i)); }

  /// FabricScope pull-side: snapshot every component's internal counters
  /// into `registry` under hierarchical names (ib.node0.retransmits,
  /// switch.port2.tail_drops, mpi.rank1.unexpected_max_depth, ...).
  /// Call at end of run; safe to call repeatedly (values are overwritten).
  /// Also publishes the determinism digest (sim.digest / sim.events) and,
  /// when a monitor is attached, the check.* violation counters.
  void collect_metrics(MetricRegistry& registry);

  /// FabricProf: attach a caller-owned host-time profiler to the engine.
  /// collect_metrics() then publishes its prof.* taxonomy alongside the
  /// simulated counters. Detached automatically when the engine dies.
  void attach_profiler(Profiler& profiler) { engine_.set_profiler(&profiler); }

  /// FabricCheck: attach a caller-owned protocol-invariant monitor. Wires
  /// it into the engine (hot-path audits in every stack pick it up from
  /// there) and registers the cluster-wide quiescent-state audits — frame
  /// conservation at the switch (cross-checked against the FaultPlan),
  /// MX matching consistency, and MPI posted/unexpected disjointness —
  /// to run when the event queue drains.
  void attach_monitor(check::InvariantMonitor& monitor);

  /// Convenience: build and attach an owned monitor (counting mode by
  /// default so production runs survive a violation; the records and
  /// check.* counters still surface it). Also builds and attaches an
  /// owned ScopeAuditor wired to the monitor, so every FABSIM_CHECK bench
  /// cross-checks the static scope_check.py verdicts on live traffic.
  /// Builds configured with -DFABSIM_CHECK=ON call this from the
  /// constructor.
  check::InvariantMonitor& enable_checks(bool fatal = false);

  /// FabricScope-Check: attach a caller-owned runtime scope auditor. The
  /// engine brackets every dispatched event with its scope label and the
  /// annotated stacks trap mismatched-state access (src/sim/scope.hpp).
  void attach_scope_auditor(scope::ScopeAuditor& auditor) {
    engine_.set_scope_auditor(&auditor);
  }

  /// FabricHot-Check: attach a caller-owned runtime hot-path auditor. The
  /// engine brackets every dispatched event and traps tracked allocation
  /// over the per-event budget (src/sim/hot.hpp).
  void attach_hotpath_auditor(hot::HotpathAuditor& auditor) {
    engine_.set_hotpath_auditor(&auditor);
  }

  check::InvariantMonitor* monitor() { return engine_.monitor(); }
  scope::ScopeAuditor* scope_auditor() { return engine_.scope_auditor(); }
  hot::HotpathAuditor* hotpath_auditor() { return engine_.hotpath_auditor(); }

 private:
  NetworkProfile profile_;
  Engine engine_;
  topo::Topology topo_;
  std::vector<std::unique_ptr<hw::Node>> nodes_;
  std::vector<std::unique_ptr<iwarp::Rnic>> rnics_;
  std::vector<std::unique_ptr<ib::Hca>> hcas_;
  std::vector<std::unique_ptr<mx::Endpoint>> endpoints_;
  std::vector<std::unique_ptr<mpi::Channel>> channels_;
  std::vector<std::unique_ptr<mpi::Rank>> mpi_ranks_;
  bool mpi_ready_ = false;
  std::unique_ptr<Event> mpi_ready_event_;
  std::unique_ptr<check::InvariantMonitor> owned_monitor_;
  std::unique_ptr<scope::ScopeAuditor> owned_auditor_;
  std::unique_ptr<hot::HotpathAuditor> owned_hot_auditor_;
};

}  // namespace fabsim::core

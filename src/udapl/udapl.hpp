// uDAPL — user Direct Access Programming Library (DAT Collaborative).
//
// The paper's future work names uDAPL as the next interface to evaluate
// (Sec. 7; the NetEffect RNIC shipped a uDAPL provider, Sec. 2.3.1).
// This is a working subset of the DAT 1.2 semantics layered over any
// verbs::Device — interface adapters, endpoints, event dispatchers, and
// local/remote memory regions — enough to run the paper's microbenchmark
// style workloads and measure what the extra abstraction costs over raw
// verbs.
//
// DAT-to-verbs mapping implemented here:
//   dat_ia_open            -> InterfaceAdapter over a verbs::Device
//   dat_evd_create         -> EventDispatcher wrapping a CompletionQueue
//   dat_ep_create/connect  -> Endpoint wrapping a QueuePair
//   dat_lmr_create         -> Lmr (registers with the device)
//   dat_rmr_bind           -> Rmr (exposes an rkey-equivalent context)
//   dat_ep_post_send/recv/rdma_write/rdma_read -> post_*
//   dat_evd_wait           -> EventDispatcher::wait
#pragma once

#include <cstdint>
#include <memory>

#include "hw/cpu.hpp"
#include "hw/node.hpp"
#include "verbs/verbs.hpp"

namespace fabsim::udapl {

/// Library-layer overheads on top of the provider (per DAT call).
struct DaplConfig {
  Time post_overhead = ns(180);  ///< argument marshalling + provider dispatch
  Time wait_overhead = ns(150);  ///< evd de-multiplexing per reaped event
  Time reg_overhead = us(0.6);   ///< lmr bookkeeping on top of verbs reg_mr
};

enum class EventType : std::uint8_t {
  kSendCompletion,
  kRecvCompletion,
  kRdmaWriteCompletion,
  kRdmaReadCompletion,
};

struct Event {
  EventType type;
  std::uint64_t cookie = 0;  ///< DAT user context
  std::uint32_t length = 0;
};

/// Event dispatcher: DAT's completion channel.
class EventDispatcher {
 public:
  EventDispatcher(Engine& engine, hw::HostCpu& cpu, DaplConfig config)
      : cq_(engine), cpu_(&cpu), config_(config) {}

  /// Block until an event is available (dat_evd_wait).
  Task<Event> wait();

  verbs::CompletionQueue& cq() { return cq_; }

 private:
  static EventType map_type(verbs::Completion::Type type);

  verbs::CompletionQueue cq_;
  hw::HostCpu* cpu_;
  DaplConfig config_;
};

/// Local memory region (dat_lmr): registered, usable as a send/recv
/// buffer source.
class Lmr {
 public:
  std::uint64_t addr() const { return addr_; }
  std::uint64_t length() const { return length_; }
  verbs::MrKey context() const { return key_; }

 private:
  friend class InterfaceAdapter;
  Lmr(std::uint64_t addr, std::uint64_t length, verbs::MrKey key)
      : addr_(addr), length_(length), key_(key) {}
  std::uint64_t addr_;
  std::uint64_t length_;
  verbs::MrKey key_;
};

/// Remote memory region context (dat_rmr after bind): what a peer needs
/// to address this memory.
struct Rmr {
  std::uint64_t addr = 0;
  std::uint64_t length = 0;
  verbs::MrKey context = 0;
};

/// Endpoint (dat_ep): a connected communication channel.
class Endpoint {
 public:
  /// dat_ep_post_send: two-sided send of [lmr.addr+offset, +len).
  Task<> post_send(const Lmr& lmr, std::uint32_t len, std::uint64_t cookie);
  /// dat_ep_post_recv: receive buffer for inbound sends.
  Task<> post_recv(const Lmr& lmr, std::uint32_t len, std::uint64_t cookie);
  /// dat_ep_post_rdma_write.
  Task<> post_rdma_write(const Lmr& local, std::uint32_t len, const Rmr& remote,
                         std::uint64_t cookie);
  /// dat_ep_post_rdma_read.
  Task<> post_rdma_read(const Lmr& sink, std::uint32_t len, const Rmr& remote,
                        std::uint64_t cookie);

 private:
  friend class InterfaceAdapter;
  Endpoint(std::unique_ptr<verbs::QueuePair> qp, hw::HostCpu& cpu, DaplConfig config)
      : qp_(std::move(qp)), cpu_(&cpu), config_(config) {}

  std::unique_ptr<verbs::QueuePair> qp_;
  hw::HostCpu* cpu_;
  DaplConfig config_;
};

/// Interface adapter (dat_ia): the root object, bound to one RNIC/HCA.
class InterfaceAdapter {
 public:
  InterfaceAdapter(verbs::Device& device, hw::Node& node, DaplConfig config = {})
      : device_(&device), node_(&node), config_(config) {}

  /// dat_evd_create.
  std::unique_ptr<EventDispatcher> create_evd();

  /// dat_ep_create: endpoint whose completions land on `evd`.
  std::unique_ptr<Endpoint> create_endpoint(EventDispatcher& evd);

  /// dat_ep_connect between two adapters' endpoints (out of band).
  static void connect(InterfaceAdapter& ia_a, Endpoint& a, Endpoint& b);

  /// dat_lmr_create: register local memory.
  Task<Lmr> create_lmr(std::uint64_t addr, std::uint64_t length);

  /// dat_rmr_bind: expose an lmr for remote access.
  Rmr bind_rmr(const Lmr& lmr) const { return Rmr{lmr.addr(), lmr.length(), lmr.context()}; }

  verbs::Device& device() { return *device_; }
  hw::Node& node() { return *node_; }

 private:
  verbs::Device* device_;
  hw::Node* node_;
  DaplConfig config_;
};

}  // namespace fabsim::udapl

#include "udapl/udapl.hpp"

#include <stdexcept>

namespace fabsim::udapl {

// ---------------------------------------------------------------------------
// EventDispatcher
// ---------------------------------------------------------------------------

EventType EventDispatcher::map_type(verbs::Completion::Type type) {
  switch (type) {
    case verbs::Completion::Type::kSend: return EventType::kSendCompletion;
    case verbs::Completion::Type::kRecv: return EventType::kRecvCompletion;
    case verbs::Completion::Type::kRdmaWrite: return EventType::kRdmaWriteCompletion;
    case verbs::Completion::Type::kRdmaRead: return EventType::kRdmaReadCompletion;
  }
  throw std::logic_error("udapl: unknown completion type");
}

Task<Event> EventDispatcher::wait() {
  const verbs::Completion completion =
      co_await verbs::next_completion(cq_, *cpu_, config_.wait_overhead);
  co_return Event{map_type(completion.type), completion.wr_id, completion.byte_len};
}

// ---------------------------------------------------------------------------
// Endpoint
// ---------------------------------------------------------------------------

Task<> Endpoint::post_send(const Lmr& lmr, std::uint32_t len, std::uint64_t cookie) {
  co_await cpu_->compute(config_.post_overhead);
  co_await qp_->post_send(verbs::SendWr{.wr_id = cookie,
                                        .opcode = verbs::Opcode::kSend,
                                        .sge = {lmr.addr(), len, lmr.context()}});
}

Task<> Endpoint::post_recv(const Lmr& lmr, std::uint32_t len, std::uint64_t cookie) {
  co_await cpu_->compute(config_.post_overhead);
  co_await qp_->post_recv(verbs::RecvWr{cookie, {lmr.addr(), len, lmr.context()}});
}

Task<> Endpoint::post_rdma_write(const Lmr& local, std::uint32_t len, const Rmr& remote,
                                 std::uint64_t cookie) {
  if (len > remote.length) throw std::length_error("udapl: write exceeds rmr bounds");
  co_await cpu_->compute(config_.post_overhead);
  co_await qp_->post_send(verbs::SendWr{.wr_id = cookie,
                                        .opcode = verbs::Opcode::kRdmaWrite,
                                        .sge = {local.addr(), len, local.context()},
                                        .remote_addr = remote.addr,
                                        .rkey = remote.context});
}

Task<> Endpoint::post_rdma_read(const Lmr& sink, std::uint32_t len, const Rmr& remote,
                                std::uint64_t cookie) {
  if (len > remote.length) throw std::length_error("udapl: read exceeds rmr bounds");
  co_await cpu_->compute(config_.post_overhead);
  co_await qp_->post_send(verbs::SendWr{.wr_id = cookie,
                                        .opcode = verbs::Opcode::kRdmaRead,
                                        .sge = {sink.addr(), len, sink.context()},
                                        .remote_addr = remote.addr,
                                        .rkey = remote.context});
}

// ---------------------------------------------------------------------------
// InterfaceAdapter
// ---------------------------------------------------------------------------

std::unique_ptr<EventDispatcher> InterfaceAdapter::create_evd() {
  return std::make_unique<EventDispatcher>(node_->engine(), node_->cpu(), config_);
}

std::unique_ptr<Endpoint> InterfaceAdapter::create_endpoint(EventDispatcher& evd) {
  return std::unique_ptr<Endpoint>(
      new Endpoint(device_->create_qp(evd.cq(), evd.cq()), node_->cpu(), config_));
}

void InterfaceAdapter::connect(InterfaceAdapter& ia_a, Endpoint& a, Endpoint& b) {
  ia_a.device_->establish(*a.qp_, *b.qp_);
}

Task<Lmr> InterfaceAdapter::create_lmr(std::uint64_t addr, std::uint64_t length) {
  co_await node_->cpu().compute(config_.reg_overhead);
  const verbs::MrKey key = co_await device_->reg_mr(addr, length);
  co_return Lmr{addr, length, key};
}

}  // namespace fabsim::udapl

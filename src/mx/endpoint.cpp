#include "mx/endpoint.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/audits.hpp"

namespace fabsim::mx {

MxConfig mxom_defaults() {
  return MxConfig{};  // Myrinet framing is the baseline
}

MxConfig mxoe_defaults() {
  MxConfig config;
  config.frame_overhead = 60;  // Ethernet preamble+header+CRC+IFG+MX header
  return config;
}

namespace {

std::shared_ptr<std::vector<std::byte>> snapshot(hw::AddressSpace& mem, std::uint64_t addr,
                                                 std::uint32_t len) {
  hw::Buffer* buffer = mem.find(addr);
  if (buffer == nullptr || addr + len > buffer->addr() + buffer->size()) {
    // HOT-OK(protocol-violation guard; unreachable in a conforming run)
    throw std::out_of_range("mx: source outside any buffer");
  }
  if (!buffer->has_data()) return nullptr;
  auto view = mem.window(addr, len);
  // HOT-OK(per-message wire payload snapshot; stack-level state outside the engine's tracked zero-alloc contract)
  return std::make_shared<std::vector<std::byte>>(view.begin(), view.end());
}

}  // namespace

Endpoint::Endpoint(hw::Node& node, hw::Switch& fabric, MxConfig config)
    : node_(&node),
      fabric_(&fabric),
      config_(config),
      unexpected_activity_(node.engine()),
      port_(fabric.attach(*this)),
      reg_cache_(config.reg_cache_entries, config.reg_cache_bytes),
      registry_(config.reg) {}

// ---------------------------------------------------------------------------
// Host API
// ---------------------------------------------------------------------------

Task<RequestPtr> Endpoint::isend(std::uint64_t addr, std::uint32_t len, int dest,
                                 std::uint64_t match_bits) {
  if (len == 0) throw std::invalid_argument("mx: zero-length send");
  co_await node_->cpu().compute(config_.isend_cpu);

  auto request = std::make_shared<Request>(engine());
  SendOp op;
  op.request = request;
  op.dest = dest;
  op.addr = addr;
  op.len = len;
  op.match_bits = match_bits;
  op.eager = len <= config_.eager_max;
  if (op.eager) ++eager_sends_; else ++rndv_sends_;

  if (op.eager) {
    // Copy into the pinned send ring (the single send-side copy of MX's
    // eager protocol); the user buffer is reusable immediately after.
    co_await node_->cpu().copy(addr, len);
    op.data = snapshot(node_->mem(), addr, len);
    engine().post(engine().now() + config_.doorbell, /*scope=*/port_,
                  [this, op = std::move(op)]() mutable { send_eager(std::move(op)); });
  } else {
    // Rendezvous: pin the source through the registration cache (cost
    // shows up in the send overhead on a miss), then advertise with RTS.
    const Time pinned = pin(engine().now(), addr, len);
    co_await engine().sleep_until(pinned);
    engine().post(engine().now() + config_.doorbell, /*scope=*/port_,
                  [this, op = std::move(op)]() mutable { send_rts(std::move(op)); });
  }
  co_return request;
}

Task<RequestPtr> Endpoint::irecv(std::uint64_t addr, std::uint32_t capacity,
                                 std::uint64_t match_bits, std::uint64_t match_mask) {
  co_await node_->cpu().compute(config_.irecv_cpu);

  auto request = std::make_shared<Request>(engine());
  PostedRecv recv{request, addr, capacity, match_bits & match_mask, match_mask};

  // The NIC walks its unexpected queue looking for a match; traversal
  // costs NIC engine time per item inspected. The scan and the dispatch
  // (or posted-queue insertion) happen atomically once the traversal
  // completes — otherwise a message arriving mid-traversal could miss
  // both queues and strand the rendezvous.
  const Time handoff = engine().now() + config_.doorbell;
  const Time traversal = config_.match_unexpected_item * (unexpected_.size() + 1);
  engine().charge_phase(Phase::kNic, node_->id(), traversal);
  const Time matched_at = rx_engine_.book(handoff, traversal, traversal);
  co_await engine().sleep_until(matched_at);

  auto it = unexpected_.begin();
  for (; it != unexpected_.end(); ++it) {
    if (!it->has_match && (it->match_bits & match_mask) == recv.match_bits) break;
  }
  if (it == unexpected_.end()) {
    posted_.push_back(std::move(recv));
    if (posted_.size() > posted_hwm_) posted_hwm_ = posted_.size();
    co_return request;
  }

  if (it->kind == FrameKind::kEager) {
    it->matched = recv;
    it->has_match = true;
    if (it->complete) {
      Unexpected taken = std::move(*it);
      unexpected_.erase(it);
      finish_eager_delivery(taken);
    }
    // else: the matching receive is attached; delivery finishes when the
    // last eager frame lands.
  } else {  // kRts
    Unexpected taken = std::move(*it);
    unexpected_.erase(it);
    start_rendezvous(recv, taken.src_port, taken.msg_id, taken.match_bits, taken.msg_len);
  }
  co_return request;
}

Task<> Endpoint::wait(const RequestPtr& request) {
  if (!request->done()) co_await request->done_event().wait();
}

Task<bool> Endpoint::test(const RequestPtr& request) {
  co_await node_->cpu().compute(config_.test_cpu);
  co_return request->done();
}

Task<bool> Endpoint::cancel(const RequestPtr& request) {
  co_await node_->cpu().compute(config_.test_cpu);
  if (request->done()) co_return false;
  auto it = std::find_if(posted_.begin(), posted_.end(),
                         [&](const PostedRecv& recv) { return recv.request == request; });
  if (it == posted_.end()) co_return false;  // already matched: too late to cancel
  posted_.erase(it);
  request->fail();
  co_return true;
}

Task<Endpoint::ProbeResult> Endpoint::iprobe(std::uint64_t match_bits,
                                             std::uint64_t match_mask) {
  co_await node_->cpu().compute(config_.test_cpu);
  // The NIC walks the unexpected queue, same cost model as a receive.
  const Time traversal = config_.match_unexpected_item * (unexpected_.size() + 1);
  engine().charge_phase(Phase::kNic, node_->id(), traversal);
  const Time done = rx_engine_.book(engine().now() + config_.doorbell, traversal, traversal);
  co_await engine().sleep_until(done);
  for (const Unexpected& u : unexpected_) {
    if (!u.has_match && (u.match_bits & match_mask) == (match_bits & match_mask)) {
      // Eager messages are probe-visible only once fully buffered.
      if (u.kind == FrameKind::kEager && !u.complete) continue;
      co_return ProbeResult{true, u.match_bits, u.msg_len};
    }
  }
  co_return ProbeResult{};
}

// ---------------------------------------------------------------------------
// Transmit paths
// ---------------------------------------------------------------------------

FABSIM_HOT void Endpoint::enqueue_tx(PendingTx tx) {
  // A failed flow transmits nothing: sequencing new frames onto a dead
  // peer would strand them in the resend queue forever. Anything that
  // still carries a completion fails instead of silently vanishing.
  if (tx.frame.kind != FrameKind::kAck && flow_failed(tx.dest)) {
    if (tx.complete != nullptr && !tx.complete->done()) tx.complete->fail();
    return;
  }
  // Firmware reliability: every frame except acks gets a per-flow sequence
  // number and a slot in the resend queue. Resends arrive here with their
  // sequence already stamped and must not be re-recorded.
  if (reliable() && tx.frame.kind != FrameKind::kAck && !tx.frame.has_seq) {
    FlowTx& flow = tx_flows_[tx.dest];
    tx.frame.has_seq = true;
    tx.frame.seq = flow.next_seq++;
    // HOT-OK(unacked window bounded by the flow window; capacity reused after warm-up)
    flow.unacked.push_back(FlowTx::Unacked{tx.frame, tx.carries_data});
    if (check::InvariantMonitor* monitor = engine().monitor()) {
      // Incremental resend-queue contiguity (O(1) per frame; the whole-
      // queue form is check::audit_mx_resend_queue).
      const std::size_t n = flow.unacked.size();
      monitor->expect(
          flow.unacked.back().frame.seq + 1 == flow.next_seq &&
              (n < 2 || flow.unacked[n - 2].frame.seq + 1 == flow.unacked[n - 1].frame.seq),
          engine().now(), check::Layer::kMx, node_->id(), "resend_queue_gap", [&] {
            return "appended seq " + std::to_string(flow.unacked.back().frame.seq) +
                   " breaks resend-queue contiguity (next_seq " +
                   std::to_string(flow.next_seq) + ")";
          });
    }
    arm_flow_timer(tx.dest);
  }
  // HOT-OK(tx queue bounded by posted sends; capacity reused after warm-up)
  txq_.push_back(std::move(tx));
  if (!pump_armed_) {
    pump_armed_ = true;
    pump_tx();
  }
}

// The transmit pump paces frame emission at the rate the DMA engine
// actually frees up: one frame's fetch completes before the next is
// booked. Booking a whole message up front would let a large send
// head-of-line-block receive traffic on the shared DMA engine — real
// NIC firmware interleaves both directions.
void Endpoint::pump_tx() {
  // Scope trap: the tx chain mutates state FABSIM_OWNED_BY(port_).
  FABSIM_AUDIT_OWNED(engine(), check::Layer::kMx, port_, "Endpoint::pump_tx");
  if (txq_.empty()) {
    pump_armed_ = false;
    return;
  }
  PendingTx tx = std::move(txq_.front());
  txq_.pop_front();
  ++frames_sent_;

  Time ready = engine().now();
  if (tx.carries_data) {
    // Fetch from host memory across PCIe (x4 in the paper's testbed),
    // then through the NIC's shared DMA engine. The next frame enters the
    // pipeline as soon as this one's PCIe fetch completes, so the stages
    // overlap across frames while the shared DMA engine still serves
    // receive traffic interleaved at its real arrival rate.
    const Time fetched = node_->pcie().dma_read(ready, tx.frame.payload_len + 64);
    const Time dma_cost =
        config_.dma_transaction + config_.dma_rate.bytes_time(tx.frame.payload_len + 64);
    engine().charge_phase(Phase::kNic, node_->id(), dma_cost);
    ready = dma_.book(fetched, dma_cost);
    engine().post(fetched, /*scope=*/port_, [this] { pump_tx(); });
  } else {
    engine().post(ready, /*scope=*/port_, [this] { pump_tx(); });
  }

  const Time occupancy = config_.tx_occupancy +
                         config_.engine_byte_rate.bytes_time(tx.frame.payload_len) +
                         (tx.frame.first_of_message ? config_.per_message_overhead : 0);
  engine().charge_phase(Phase::kNic, node_->id(), occupancy);
  const Time processed = tx_engine_.book(ready, occupancy, config_.tx_latency);
  const std::uint32_t wire_bytes =
      std::max<std::uint32_t>(tx.frame.payload_len, config_.control_bytes) +
      config_.frame_overhead;
  const Time serialization = fabric_->config().link_rate.bytes_time(wire_bytes);
  engine().charge_phase(Phase::kWire, node_->id(), serialization);
  const Time sent = tx_link_.book(processed, serialization);
  const int src = port_;
  engine().post(sent, [this, tx = std::move(tx), src, wire_bytes]() mutable {
    if (tx.complete != nullptr) {
      tx.complete->complete(tx.complete_len, tx.complete_match);
    }
    if (reliable()) {
      // Piggyback the freshest cumulative ack for this peer on every
      // outgoing frame; reset the standalone-ack countdown.
      FlowRx& rx = rx_flows_[tx.dest];
      tx.frame.has_ack = true;
      tx.frame.ack = rx.exp_seq;
      rx.since_ack = 0;
    }
    fabric_->ingress(hw::Frame{src, tx.dest, wire_bytes, std::move(tx.frame)});
  });
}

// ---------------------------------------------------------------------------
// Firmware reliability (armed only under a fault injector)
// ---------------------------------------------------------------------------

void Endpoint::send_flow_ack(int dest) {
  MxFrame frame;
  frame.kind = FrameKind::kAck;
  frame.src_port = port_;
  frame.payload_len = 0;
  frame.has_ack = true;
  frame.ack = rx_flows_[dest].exp_seq;
  ++acks_sent_;
  enqueue_tx(PendingTx{std::move(frame), dest, /*carries_data=*/false, nullptr, 0, 0});
}

void Endpoint::handle_flow_ack(int src_port, std::uint64_t ack) {
  auto it = tx_flows_.find(src_port);
  if (it == tx_flows_.end()) return;
  FlowTx& flow = it->second;
  if (check::InvariantMonitor* monitor = engine().monitor()) {
    check::audit_mx_ack_window(ack, flow.next_seq)
        .report(monitor, engine().now(), check::Layer::kMx, node_->id());
  }
  bool advanced = false;
  while (!flow.unacked.empty() && flow.unacked.front().frame.seq < ack) {
    flow.unacked.pop_front();
    advanced = true;
  }
  if (!advanced) return;
  flow.retries = 0;
  // The running timer covers a freed head of line: cancel and re-cover.
  flow.timer_armed = false;
  ++flow.timer_gen;
  if (!flow.unacked.empty()) arm_flow_timer(src_port);
}

void Endpoint::resend_flow(int dest) {
  FlowTx& flow = tx_flows_[dest];
  engine().trace(TraceCategory::kProto, node_->id(),
                 "MX resend to port " + std::to_string(dest) + ": " +
                     std::to_string(flow.unacked.size()) + " frames");
  const std::size_t outstanding = flow.unacked.size();
  for (std::size_t i = 0; i < outstanding; ++i) {
    ++resends_;
    const FlowTx::Unacked& u = flow.unacked[i];
    resent_bytes_ += u.frame.payload_len;
    // Resends never carry a completion: the original wire handoff (or the
    // eventual ack) owns request completion.
    enqueue_tx(PendingTx{u.frame, dest, u.carries_data, nullptr, 0, 0});
  }
}

void Endpoint::arm_flow_timer(int dest) {
  FlowTx& flow = tx_flows_[dest];
  if (flow.timer_armed) return;
  flow.timer_armed = true;
  const std::uint64_t gen = ++flow.timer_gen;
  const Time timeout = config_.rto * (1ULL << std::min(flow.retries, 6));
  engine().post(engine().now() + timeout, /*scope=*/port_,
                [this, dest, gen] { on_flow_timeout(dest, gen); });
}

void Endpoint::on_flow_timeout(int dest, std::uint64_t gen) {
  FABSIM_AUDIT_OWNED(engine(), check::Layer::kMx, port_, "Endpoint::on_flow_timeout");
  FlowTx& flow = tx_flows_[dest];
  if (!flow.timer_armed || gen != flow.timer_gen) return;  // superseded
  flow.timer_armed = false;
  if (flow.unacked.empty()) return;
  ++flow.retries;
  ++rto_fires_;
  if (flow.retries > config_.retry_limit) {
    fail_flow(dest);
    return;
  }
  engine().trace(TraceCategory::kProto, node_->id(),
                 "MX flow RTO fired: retry " + std::to_string(flow.retries) + " to port " +
                     std::to_string(dest));
  resend_flow(dest);
  arm_flow_timer(dest);
}

void Endpoint::fail_flow(int dest) {
  FlowTx& flow = tx_flows_[dest];
  if (flow.failed) return;
  flow.failed = true;
  flow.unacked.clear();  // nothing will be resent; quiescence audits see no strands
  flow.timer_armed = false;
  ++flow.timer_gen;
  ++flow_failures_;
  engine().trace(TraceCategory::kProto, node_->id(),
                 "MX flow to port " + std::to_string(dest) + " failed: retry limit " +
                     std::to_string(config_.retry_limit) + " exhausted, peer unreachable");
  // Rendezvous sends still waiting for a CTS that will never arrive.
  for (auto it = pending_sends_.begin(); it != pending_sends_.end();) {
    if (it->second.dest == dest) {
      if (!it->second.request->done()) it->second.request->fail();
      it = pending_sends_.erase(it);
    } else {
      ++it;
    }
  }
  // Rendezvous pulls sourced from the dead peer: remaining data frames
  // will never arrive, so fail the receive now.
  for (auto it = rndv_recvs_.begin(); it != rndv_recvs_.end();) {
    if (it->second.src_port == dest) {
      if (!it->second.recv.request->done()) it->second.recv.request->fail();
      it = rndv_recvs_.erase(it);
    } else {
      ++it;
    }
  }
  // Unexpected-queue entries from the dead peer that can no longer make
  // progress: a half-buffered eager message (its tail is lost) fails any
  // receive already attached to it; an RTS advertisement is withdrawn —
  // the sender-side request already failed with the flow, and matching it
  // later would send a CTS onto this dead flow and strand the receive.
  for (auto it = unexpected_.begin(); it != unexpected_.end();) {
    if (it->src_port == dest && (it->kind == FrameKind::kRts || !it->complete)) {
      if (it->has_match && !it->matched.request->done()) it->matched.request->fail();
      it = unexpected_.erase(it);
    } else {
      ++it;
    }
  }
}

void Endpoint::send_eager(SendOp op) {
  if (flow_failed(op.dest)) {
    op.request->fail();
    return;
  }
  const std::uint64_t msg_id = next_msg_id_++;
  std::uint32_t offset = 0;
  while (offset < op.len) {
    const std::uint32_t chunk = std::min(config_.mtu, op.len - offset);
    MxFrame frame;
    frame.kind = FrameKind::kEager;
    frame.src_port = port_;
    frame.msg_id = msg_id;
    frame.match_bits = op.match_bits;
    frame.msg_len = op.len;
    frame.offset = offset;
    frame.payload_len = chunk;
    frame.first_of_message = (offset == 0);
    if (op.data != nullptr) {
      // HOT-OK(per-frame wire payload buffer; stack-level state outside the engine's tracked zero-alloc contract)
      frame.data = std::make_shared<std::vector<std::byte>>(op.data->begin() + offset,
                                                            op.data->begin() + offset + chunk);
    }
    offset += chunk;
    frame.last_of_message = (offset == op.len);
    PendingTx tx{std::move(frame), op.dest, /*carries_data=*/true, nullptr, 0, 0};
    if (tx.frame.last_of_message) {
      tx.complete = op.request;
      tx.complete_len = op.len;
      tx.complete_match = op.match_bits;
    }
    enqueue_tx(std::move(tx));
  }
}

void Endpoint::send_rts(SendOp op) {
  if (flow_failed(op.dest)) {
    op.request->fail();
    return;
  }
  const std::uint64_t msg_id = next_msg_id_++;
  op.data = snapshot(node_->mem(), op.addr, op.len);
  send_control(FrameKind::kRts, op.dest, msg_id, 0, op.match_bits, op.len);
  // HOT-OK(rendezvous bookkeeping bounded by outstanding sends)
  pending_sends_.emplace(msg_id, std::move(op));
}

void Endpoint::send_control(FrameKind kind, int dest, std::uint64_t msg_id,
                            std::uint64_t peer_msg_id, std::uint64_t match_bits,
                            std::uint32_t msg_len) {
  MxFrame frame;
  frame.kind = kind;
  frame.src_port = port_;
  frame.msg_id = msg_id;
  frame.peer_msg_id = peer_msg_id;
  frame.match_bits = match_bits;
  frame.msg_len = msg_len;
  frame.payload_len = 0;
  frame.first_of_message = true;
  frame.last_of_message = true;
  enqueue_tx(PendingTx{std::move(frame), dest, /*carries_data=*/false, nullptr, 0, 0});
}

void Endpoint::stream_data(std::uint64_t msg_id, std::uint64_t receiver_handle) {
  auto it = pending_sends_.find(msg_id);
  // HOT-OK(protocol-violation guard; unreachable in a conforming run)
  if (it == pending_sends_.end()) throw std::logic_error("mx: CTS for unknown send");
  SendOp op = std::move(it->second);
  pending_sends_.erase(it);

  std::uint32_t offset = 0;
  while (offset < op.len) {
    const std::uint32_t chunk = std::min(config_.mtu, op.len - offset);
    MxFrame frame;
    frame.kind = FrameKind::kData;
    frame.src_port = port_;
    frame.msg_id = msg_id;
    frame.peer_msg_id = receiver_handle;
    frame.match_bits = op.match_bits;
    frame.msg_len = op.len;
    frame.offset = offset;
    frame.payload_len = chunk;
    frame.first_of_message = (offset == 0);
    if (op.data != nullptr) {
      // HOT-OK(per-frame wire payload buffer; stack-level state outside the engine's tracked zero-alloc contract)
      frame.data = std::make_shared<std::vector<std::byte>>(op.data->begin() + offset,
                                                            op.data->begin() + offset + chunk);
    }
    offset += chunk;
    frame.last_of_message = (offset == op.len);
    PendingTx tx{std::move(frame), op.dest, /*carries_data=*/true, nullptr, 0, 0};
    if (tx.frame.last_of_message) {
      tx.complete = op.request;
      tx.complete_len = op.len;
      tx.complete_match = op.match_bits;
    }
    enqueue_tx(std::move(tx));
  }
}

Time Endpoint::pin(Time ready, std::uint64_t addr, std::uint32_t len) {
  if (!config_.reg_cache_enabled) {
    ++reg_misses_;
    const Time cost = registry_.register_cost(len) + registry_.deregister_cost(len);
    return node_->cpu().charge(ready, cost);
  }
  auto result = reg_cache_.lookup(addr, len);
  if (result.hit) {
    ++reg_hits_;
    return ready;
  }
  ++reg_misses_;
  Time cost = registry_.register_cost(len);
  for (const auto& evicted : result.evicted) cost += registry_.deregister_cost(evicted.len);
  return node_->cpu().charge(ready, cost);
}

// ---------------------------------------------------------------------------
// Receive paths
// ---------------------------------------------------------------------------

void Endpoint::deliver(hw::Frame raw) {
  // Scope trap: delivery mutates this endpoint's matching/reliability
  // state, so the carrying event must carry this node's scope (or -1).
  FABSIM_AUDIT_OWNED(engine(), check::Layer::kMx, port_, "Endpoint::deliver");
  if (raw.corrupted) {
    // Failed frame CRC: discarded at the link interface, recovered by the
    // sender's resend timer exactly like a drop.
    ++corrupt_discards_;
    return;
  }
  MxFrame frame = std::any_cast<MxFrame>(std::move(raw.payload));

  if (reliable()) {
    if (frame.has_ack) handle_flow_ack(frame.src_port, frame.ack);
    if (frame.kind == FrameKind::kAck) {
      // Ack-only frame: consumes a sliver of engine time, nothing more.
      engine().charge_phase(Phase::kNic, node_->id(), config_.rx_occupancy / 2);
      rx_engine_.book(engine().now(), config_.rx_occupancy / 2, config_.rx_latency);
      return;
    }
    if (frame.has_seq) {
      FlowRx& rx = rx_flows_[frame.src_port];
      if (frame.seq != rx.exp_seq) {
        if (frame.seq < rx.exp_seq) {
          // Duplicate (our ack was lost or raced a resend): discard and
          // re-assert the cumulative ack so the sender's window advances.
          send_flow_ack(frame.src_port);
        } else if (!rx.gap_signalled) {
          // Sequence gap: in-order delivery is enforced, so the frame is
          // dropped; re-assert once per gap and let the resend timer
          // restart the stream.
          rx.gap_signalled = true;
          send_flow_ack(frame.src_port);
        }
        return;
      }
      rx.exp_seq = frame.seq + 1;
      rx.gap_signalled = false;
      if (++rx.since_ack >= config_.ack_every || frame.last_of_message) {
        send_flow_ack(frame.src_port);
      }
    }
  }

  Time occupancy =
      (frame.kind == FrameKind::kData || frame.kind == FrameKind::kEager ? config_.rx_occupancy
                                                                         : config_.rx_occupancy / 2) +
      config_.engine_byte_rate.bytes_time(frame.payload_len) +
      (frame.first_of_message ? config_.per_message_overhead : 0);

  // NIC-resident matching: the first frame of an eager message or an RTS
  // walks the posted-receive queue; each item inspected costs engine time.
  if ((frame.kind == FrameKind::kEager && frame.first_of_message) ||
      frame.kind == FrameKind::kRts) {
    std::size_t scanned = 0;
    for (const PostedRecv& recv : posted_) {
      ++scanned;
      if (matches(recv, frame.match_bits)) break;
    }
    occupancy += config_.match_posted_item * (scanned == 0 ? 1 : scanned);
  }

  engine().charge_phase(Phase::kNic, node_->id(), occupancy);
  const Time processed = rx_engine_.book(engine().now(), occupancy, config_.rx_latency);

  switch (frame.kind) {
    case FrameKind::kEager: {
      const Time land_cost =
          config_.dma_transaction + config_.dma_rate.bytes_time(frame.payload_len + 64);
      engine().charge_phase(Phase::kNic, node_->id(), land_cost);
      Time landed = dma_.book(processed, land_cost);
      landed = node_->pcie().dma_write(landed, frame.payload_len + 64);
      engine().post(landed, /*scope=*/port_, [this, frame = std::move(frame)]() mutable {
        handle_eager_arrival(std::move(frame));
      });
      break;
    }
    case FrameKind::kRts:
      engine().post(processed, /*scope=*/port_,
                    [this, frame = std::move(frame)]() mutable { handle_rts(frame); });
      break;
    case FrameKind::kCts:
      engine().post(processed, /*scope=*/port_,
                    [this, frame = std::move(frame)]() mutable { handle_cts(frame); });
      break;
    case FrameKind::kData: {
      const Time place_cost =
          config_.dma_transaction + config_.dma_rate.bytes_time(frame.payload_len + 64);
      engine().charge_phase(Phase::kNic, node_->id(), place_cost);
      Time placed = dma_.book(processed, place_cost);
      placed = node_->pcie().dma_write(placed, frame.payload_len + 64);
      engine().post(placed, /*scope=*/port_,
                    [this, frame = std::move(frame)]() mutable { handle_data(frame); });
      break;
    }
    case FrameKind::kAck:
      break;  // handled (and returned) before engine booking
  }
}

void Endpoint::handle_eager_arrival(MxFrame frame) {
  Unexpected* entry = nullptr;
  if (frame.first_of_message) {
    // Try to match a posted receive right away.
    auto it = std::find_if(posted_.begin(), posted_.end(), [&](const PostedRecv& recv) {
      return matches(recv, frame.match_bits);
    });
    Unexpected u;
    u.kind = FrameKind::kEager;
    u.src_port = frame.src_port;
    u.msg_id = frame.msg_id;
    u.match_bits = frame.match_bits;
    u.msg_len = frame.msg_len;
    u.data = frame.msg_len > 0 && frame.data != nullptr
                 // HOT-OK(unexpected-message staging buffer; bounded by unmatched arrivals)
                 ? std::make_shared<std::vector<std::byte>>(frame.msg_len)
                 : nullptr;
    if (it != posted_.end()) {
      u.matched = *it;
      u.has_match = true;
      posted_.erase(it);
    }
    // HOT-OK(unexpected queue bounded by unmatched arrivals)
    unexpected_.push_back(std::move(u));
    if (unexpected_.size() > unexpected_hwm_) unexpected_hwm_ = unexpected_.size();
    entry = &unexpected_.back();
    if (!entry->has_match) unexpected_activity_.notify_all();
  } else {
    auto it = std::find_if(unexpected_.begin(), unexpected_.end(), [&](const Unexpected& u) {
      return u.src_port == frame.src_port && u.msg_id == frame.msg_id;
    });
    if (it == unexpected_.end()) {
      // A failed flow purges half-buffered entries; continuations already
      // in flight from the dead peer land here and are discarded.
      if (flow_failed(frame.src_port)) return;
      // HOT-OK(protocol-violation guard; unreachable in a conforming run)
      throw std::logic_error("mx: eager continuation without head");
    }
    entry = &*it;
  }

  if (entry->data != nullptr && frame.data != nullptr) {
    std::copy(frame.data->begin(), frame.data->end(), entry->data->begin() + frame.offset);
  }
  entry->buffered += frame.payload_len;
  if (entry->buffered < entry->msg_len) return;

  entry->complete = true;
  if (entry->has_match) {
    Unexpected taken = std::move(*entry);
    unexpected_.erase(std::find_if(
        unexpected_.begin(), unexpected_.end(), [&](const Unexpected& u) {
          return u.src_port == taken.src_port && u.msg_id == taken.msg_id;
        }));
    finish_eager_delivery(taken);
  }
  // else: stays buffered in the unexpected queue until a receive matches.
}

void Endpoint::finish_eager_delivery(Unexpected& u) {
  const PostedRecv& recv = u.matched;
  // HOT-OK(application-misuse guard; unreachable in a conforming run)
  if (recv.capacity < u.msg_len) throw std::length_error("mx: receive buffer too small");
  // The single receive-side copy: unexpected/ring buffer -> user buffer,
  // done by the host.
  const Time copied = node_->cpu().charge_copy(engine().now(), recv.addr, u.msg_len);
  if (u.data != nullptr) node_->mem().write(recv.addr, *u.data);
  engine().post(copied, /*scope=*/port_,  // SCOPE-OK(the completion touches only this node's Request; the lambda owns a shared_ptr ref plus two scalar copies)
                [request = recv.request, len = u.msg_len, match = u.match_bits] {
                  request->complete(len, match);
                });
}

void Endpoint::handle_rts(const MxFrame& frame) {
  engine().trace(TraceCategory::kProto, node_->id(),
                 "MX RTS arrived: match=" + std::to_string(frame.match_bits) + " len=" +
                     std::to_string(frame.msg_len));
  auto it = std::find_if(posted_.begin(), posted_.end(), [&](const PostedRecv& recv) {
    return matches(recv, frame.match_bits);
  });
  if (it == posted_.end()) {
    Unexpected u;
    u.kind = FrameKind::kRts;
    u.src_port = frame.src_port;
    u.msg_id = frame.msg_id;
    u.match_bits = frame.match_bits;
    u.msg_len = frame.msg_len;
    u.complete = true;
    // HOT-OK(unexpected queue bounded by unmatched arrivals)
    unexpected_.push_back(std::move(u));
    if (unexpected_.size() > unexpected_hwm_) unexpected_hwm_ = unexpected_.size();
    unexpected_activity_.notify_all();
    return;
  }
  PostedRecv recv = *it;
  posted_.erase(it);
  start_rendezvous(recv, frame.src_port, frame.msg_id, frame.match_bits, frame.msg_len);
}

void Endpoint::start_rendezvous(const PostedRecv& recv, int src_port,
                                std::uint64_t sender_msg_id, std::uint64_t match_bits,
                                std::uint32_t msg_len) {
  // HOT-OK(application-misuse guard; unreachable in a conforming run)
  if (recv.capacity < msg_len) throw std::length_error("mx: receive buffer too small");
  if (flow_failed(src_port)) {
    // The sender died between advertising and this match: the CTS could
    // never be delivered, so fail the receive instead of stranding it.
    if (!recv.request->done()) recv.request->fail();
    return;
  }
  const std::uint64_t handle = next_recv_handle_++;
  // HOT-OK(rendezvous bookkeeping bounded by outstanding receives)
  rndv_recvs_.emplace(handle, RndvRecv{recv, msg_len, 0, src_port});
  // Pin the target buffer (cache hit is free; a miss charges the host),
  // then grant the sender the go-ahead.
  const Time pinned = pin(engine().now(), recv.addr, msg_len);
  engine().post(pinned, /*scope=*/port_, [this, src_port, sender_msg_id, handle, match_bits,
                                          msg_len] {
    send_control(FrameKind::kCts, src_port, sender_msg_id, handle, match_bits, msg_len);
  });
}

void Endpoint::handle_cts(const MxFrame& frame) {
  // A CTS racing the flow-failure declaration: the pending send was
  // already failed and purged, so the grant is moot.
  if (flow_failed(frame.src_port)) return;
  engine().trace(TraceCategory::kProto, node_->id(),
                 "MX CTS arrived: streaming msg " + std::to_string(frame.msg_id));
  stream_data(frame.msg_id, frame.peer_msg_id);
}

void Endpoint::handle_data(const MxFrame& frame) {
  auto it = rndv_recvs_.find(frame.peer_msg_id);
  if (it == rndv_recvs_.end()) {
    // A failed flow purges its rendezvous pulls; data already in flight
    // from the dead peer lands here and is discarded.
    if (flow_failed(frame.src_port)) return;
    // HOT-OK(protocol-violation guard; unreachable in a conforming run)
    throw std::logic_error("mx: data for unknown rendezvous");
  }
  RndvRecv& rr = it->second;
  if (frame.data != nullptr) {
    node_->mem().write(rr.recv.addr + frame.offset, *frame.data);
  }
  rr.placed += frame.payload_len;
  if (rr.placed < rr.msg_len) return;
  rr.recv.request->complete(rr.msg_len, frame.match_bits);
  rndv_recvs_.erase(it);
}

// ---------------------------------------------------------------------------
// FabricCheck audits
// ---------------------------------------------------------------------------

void Endpoint::audit_consistency(check::InvariantMonitor& monitor) {
  // Matching-queue disjointness. Only fully-arrived, still-unmatched
  // unexpected entries count: a message mid-buffering (or one already
  // paired and draining) is legitimately in both worlds at once.
  for (const PostedRecv& recv : posted_) {
    for (const Unexpected& u : unexpected_) {
      if (u.has_match || (u.kind == FrameKind::kEager && !u.complete)) continue;
      if (!matches(recv, u.match_bits)) continue;
      monitor.report(engine().now(), check::Layer::kMx, node_->id(), "queue_overlap",
                     "unexpected " + std::string(u.kind == FrameKind::kRts ? "RTS" : "eager") +
                         " (match 0x" + std::to_string(u.match_bits) +
                         ") matches a posted receive — NIC matching failed to pair them");
    }
  }
  // Resend-queue consistency for every flow (whole-queue form).
  for (const auto& [dest, flow] : tx_flows_) {
    std::deque<std::uint64_t> seqs;
    for (const FlowTx::Unacked& u : flow.unacked) seqs.push_back(u.frame.seq);
    check::audit_mx_resend_queue(seqs, flow.next_seq)
        .report(&monitor, engine().now(), check::Layer::kMx, node_->id());
  }
}

}  // namespace fabsim::mx

// MX-10G endpoint: Myrinet Express message-passing library.
//
// The API mirrors MX's programming model — non-blocking send/receive with
// 64-bit match bits and a mask, completion via test/wait — which is why
// MPICH-MX's MPI shim is so thin (paper §6.1). Matching runs on the NIC:
// posted-receive and unexpected queues live in NIC memory and their
// traversal costs NIC engine time, not host time. Internally the library
// switches from an eager protocol (copy through a pinned ring, messages
// up to `eager_max`) to a rendezvous protocol (RTS/CTS handshake, then
// zero-copy DMA) — the source of the 32 KB dip in the paper's user-level
// bandwidth curves. Rendezvous pinning goes through an internal
// registration cache bounded in bytes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "fault/injector.hpp"
#include "hw/fabric.hpp"
#include "hw/node.hpp"
#include "hw/reg_cache.hpp"
#include "mx/config.hpp"
#include "sim/scope.hpp"
#include "sim/sync.hpp"
#include "verbs/verbs.hpp"

namespace fabsim::check {
class InvariantMonitor;
}

namespace fabsim::mx {

/// Completion handle for a non-blocking operation.
class Request {
 public:
  explicit Request(Engine& engine) : done_event_(engine) {}

  bool done() const { return done_; }
  /// The operation was abandoned (peer unreachable after retry
  /// exhaustion, or cancelled): done, but no data moved.
  bool failed() const { return failed_; }
  /// Matched message length (valid once done; receives may be shorter
  /// than the posted capacity).
  std::uint32_t length() const { return length_; }
  std::uint64_t match_bits() const { return match_bits_; }

  Event& done_event() { return done_event_; }

  void complete(std::uint32_t length, std::uint64_t match) {
    done_ = true;
    length_ = length;
    match_bits_ = match;
    done_event_.trigger();
  }

  void fail() {
    done_ = true;
    failed_ = true;
    done_event_.trigger();
  }

 private:
  bool done_ = false;
  bool failed_ = false;
  std::uint32_t length_ = 0;
  std::uint64_t match_bits_ = 0;
  Event done_event_;
};

using RequestPtr = std::shared_ptr<Request>;

class Endpoint final : public hw::FrameSink {
 public:
  Endpoint(hw::Node& node, hw::Switch& fabric, MxConfig config);

  /// Woken whenever a new unexpected message (or RTS) is queued — lets
  /// probe-style callers block without polling.
  Notifier& unexpected_activity() { return unexpected_activity_; }

  /// Non-blocking send of [addr, addr+len) to `dest` (a fabric port).
  Task<RequestPtr> isend(std::uint64_t addr, std::uint32_t len, int dest,
                         std::uint64_t match_bits);

  /// Non-blocking receive into [addr, addr+capacity); matches an incoming
  /// message whose (bits & match_mask) == match_bits.
  Task<RequestPtr> irecv(std::uint64_t addr, std::uint32_t capacity, std::uint64_t match_bits,
                         std::uint64_t match_mask);

  /// Blocking wait for completion (mx_wait).
  Task<> wait(const RequestPtr& request);

  /// Non-blocking completion probe (mx_test); charges the probe cost.
  Task<bool> test(const RequestPtr& request);

  /// mx_cancel: withdraw a posted receive that has not matched yet. The
  /// request fails (done, failed()) so a blocked wait() returns; returns
  /// false if the operation already matched or completed. This is how an
  /// application unblocks receives stranded by a dead peer.
  Task<bool> cancel(const RequestPtr& request);

  /// mx_iprobe: peek the unexpected queue for a matching message without
  /// consuming it; returns (match_bits, length) if present.
  struct ProbeResult {
    bool found = false;
    std::uint64_t match_bits = 0;
    std::uint32_t length = 0;
  };
  Task<ProbeResult> iprobe(std::uint64_t match_bits, std::uint64_t match_mask);

  // --- hw::FrameSink ---
  void deliver(hw::Frame frame) override;

  int port() const { return port_; }
  hw::Node& node() { return *node_; }
  const MxConfig& config() const { return config_; }

  // Statistics for tests and utilization studies.
  Time dma_busy_time() const { return dma_.busy_time(); }
  Time tx_engine_busy_time() const { return tx_engine_.busy_time(); }
  Time rx_engine_busy_time() const { return rx_engine_.busy_time(); }
  Time tx_link_busy_time() const { return tx_link_.busy_time(); }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t reg_cache_hits() const { return reg_hits_; }
  std::uint64_t reg_cache_misses() const { return reg_misses_; }
  std::size_t unexpected_depth() const { return unexpected_.size(); }
  std::size_t posted_depth() const { return posted_.size(); }
  std::size_t unexpected_max_depth() const { return unexpected_hwm_; }
  std::size_t posted_max_depth() const { return posted_hwm_; }
  std::uint64_t eager_sends() const { return eager_sends_; }
  std::uint64_t rndv_sends() const { return rndv_sends_; }
  std::uint64_t resends() const { return resends_; }
  std::uint64_t rto_fires() const { return rto_fires_; }
  std::uint64_t resent_bytes() const { return resent_bytes_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t corrupt_discards() const { return corrupt_discards_; }
  std::uint64_t flow_failures() const { return flow_failures_; }
  const hw::RegCache& reg_cache() const { return reg_cache_; }

  /// FabricCheck final audit (quiescent state only): the NIC-resident
  /// matching queues must be disjoint — a fully-arrived unexpected
  /// message that matches a posted receive means matching failed to pair
  /// them — and every per-flow resend queue must be seq-contiguous.
  void audit_consistency(check::InvariantMonitor& monitor);

 private:
  enum class FrameKind : std::uint8_t { kEager, kRts, kCts, kData, kAck };

  struct MxFrame {
    FrameKind kind = FrameKind::kEager;
    int src_port = -1;
    std::uint64_t msg_id = 0;  ///< sender-side id
    std::uint64_t match_bits = 0;
    std::uint32_t msg_len = 0;
    std::uint32_t offset = 0;
    std::uint32_t payload_len = 0;
    bool first_of_message = false;
    bool last_of_message = false;
    std::uint64_t peer_msg_id = 0;  ///< CTS: receiver handle echo
    // Reliability header (stamped only while faults are armed).
    bool has_seq = false;   ///< per-flow sequenced (everything but kAck)
    std::uint64_t seq = 0;
    bool has_ack = false;   ///< cumulative piggybacked / standalone ack
    std::uint64_t ack = 0;  ///< all flow seqs below this are acked
    std::shared_ptr<std::vector<std::byte>> data;
  };

  /// Sender-side state of one outgoing message.
  struct SendOp {
    RequestPtr request;
    int dest = -1;
    std::uint64_t addr = 0;
    std::uint32_t len = 0;
    std::uint64_t match_bits = 0;
    bool eager = false;
    std::shared_ptr<std::vector<std::byte>> data;  ///< eager ring snapshot
  };

  /// Receiver-side posted receive.
  struct PostedRecv {
    RequestPtr request;
    std::uint64_t addr = 0;
    std::uint32_t capacity = 0;
    std::uint64_t match_bits = 0;
    std::uint64_t match_mask = 0;
  };

  /// Receiver-side record of a message that arrived before its receive.
  struct Unexpected {
    FrameKind kind;  ///< kEager (data buffered) or kRts
    int src_port = -1;
    std::uint64_t msg_id = 0;
    std::uint64_t match_bits = 0;
    std::uint32_t msg_len = 0;
    std::uint32_t buffered = 0;  ///< eager bytes landed so far
    bool complete = false;       ///< all eager bytes buffered
    std::shared_ptr<std::vector<std::byte>> data;  ///< eager bounce buffer
    PostedRecv matched;          ///< receive waiting for buffering to finish
    bool has_match = false;
  };

  /// Receiver-side state of an in-progress rendezvous pull.
  struct RndvRecv {
    PostedRecv recv;
    std::uint32_t msg_len = 0;
    std::uint32_t placed = 0;
    int src_port = -1;  ///< sender, so a flow failure can strand-sweep
  };

  void send_eager(SendOp op);
  void send_rts(SendOp op);
  void send_control(FrameKind kind, int dest, std::uint64_t msg_id, std::uint64_t peer_msg_id,
                    std::uint64_t match_bits, std::uint32_t msg_len);
  void stream_data(std::uint64_t msg_id, std::uint64_t receiver_handle);
  void handle_eager_arrival(MxFrame frame);
  void handle_rts(const MxFrame& frame);
  void handle_cts(const MxFrame& frame);
  void handle_data(const MxFrame& frame);
  void finish_eager_delivery(Unexpected& u);
  void start_rendezvous(const PostedRecv& recv, int src_port, std::uint64_t sender_msg_id,
                        std::uint64_t match_bits, std::uint32_t msg_len);
  /// Pin [addr, addr+len) through the registration cache; returns the time
  /// the pages are pinned (host CPU is charged on misses).
  Time pin(Time ready, std::uint64_t addr, std::uint32_t len);

  /// A frame waiting its turn through the tx DMA/engine/link chain.
  struct PendingTx {
    MxFrame frame;
    int dest = -1;
    bool carries_data = false;
    RequestPtr complete;  ///< request to complete at wire handoff, if any
    std::uint32_t complete_len = 0;
    std::uint64_t complete_match = 0;
  };
  void enqueue_tx(PendingTx tx);
  void pump_tx();

  /// Sender-side reliability state for one destination port.
  struct FlowTx {
    std::uint64_t next_seq = 0;
    struct Unacked {
      MxFrame frame;
      bool carries_data = false;
    };
    std::deque<Unacked> unacked;  ///< frames held for resend, oldest first
    std::uint64_t timer_gen = 0;
    bool timer_armed = false;
    int retries = 0;     ///< consecutive timeout rounds without progress
    bool failed = false;  ///< retry limit hit: peer declared unreachable
  };

  /// Receiver-side reliability state for one source port.
  struct FlowRx {
    std::uint64_t exp_seq = 0;       ///< next in-order sequence expected
    std::uint32_t since_ack = 0;     ///< frames since the last ack we sent
    bool gap_signalled = false;      ///< one ack re-assert per gap
  };

  /// Firmware reliability is armed only when frames can be perturbed:
  /// under a fault injector, or on a fabric whose bounded tail-drop
  /// buffers can lose frames to congestion alone.
  bool reliable() { return fault::faults_armed(engine()) || fabric_->config().can_drop(); }
  void send_flow_ack(int dest);
  void handle_flow_ack(int src_port, std::uint64_t ack);
  void resend_flow(int dest);
  void arm_flow_timer(int dest);
  void on_flow_timeout(int dest, std::uint64_t gen);
  /// Retry exhaustion: declare `dest` unreachable and fail every request
  /// stuck behind that flow (pending rendezvous sends, mid-buffer eager
  /// arrivals, rendezvous pulls from that peer) so nothing hangs.
  void fail_flow(int dest);
  bool flow_failed(int dest) const {
    auto it = tx_flows_.find(dest);
    return it != tx_flows_.end() && it->second.failed;
  }

  static bool matches(const PostedRecv& recv, std::uint64_t bits) {
    return (bits & recv.match_mask) == recv.match_bits;
  }

  Engine& engine() { return node_->engine(); }

  // Scope/ownership annotations (scripts/scope_check.py, src/sim/scope.hpp).
  FABSIM_ENGINE_LOCAL;  // engine plumbing + run-constant wiring
  hw::Node* node_;
  hw::Switch* fabric_;
  MxConfig config_;
  Notifier unexpected_activity_;
  int port_;
  FABSIM_OWNED_BY(port_);  // mutable firmware state: matching queues, tx
                           // chain and flow reliability are confined to
                           // this node's events (or scope -1 handoffs)
  hw::RegCache reg_cache_;
  hw::MemoryRegistry registry_;  ///< cost model for pinning
  PipelinedServer tx_engine_;
  PipelinedServer rx_engine_;
  SerialServer dma_;
  SerialServer tx_link_;

  std::uint64_t next_msg_id_ = 1;
  std::map<std::uint64_t, SendOp> pending_sends_;  ///< rendezvous awaiting CTS
  std::deque<PostedRecv> posted_;
  std::deque<Unexpected> unexpected_;
  std::map<std::uint64_t, RndvRecv> rndv_recvs_;  ///< by receiver handle id
  std::uint64_t next_recv_handle_ = 1;

  std::deque<PendingTx> txq_;
  bool pump_armed_ = false;
  std::map<int, FlowTx> tx_flows_;  ///< by destination port
  std::map<int, FlowRx> rx_flows_;  ///< by source port
  std::uint64_t frames_sent_ = 0;
  std::uint64_t reg_hits_ = 0;
  std::uint64_t reg_misses_ = 0;
  std::uint64_t eager_sends_ = 0;
  std::uint64_t rndv_sends_ = 0;
  std::uint64_t resends_ = 0;
  std::uint64_t rto_fires_ = 0;
  std::uint64_t resent_bytes_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t corrupt_discards_ = 0;
  std::uint64_t flow_failures_ = 0;
  std::size_t unexpected_hwm_ = 0;
  std::size_t posted_hwm_ = 0;
};

}  // namespace fabsim::mx

// Myricom Myri-10G / MX-10G parameters.
//
// One config drives both personalities: MXoM (Myrinet data link: tiny
// headers, cut-through switch) and MXoE (same NIC speaking Ethernet
// framing through a 10GbE switch). The NIC is forced to PCIe x4 in the
// paper's testbed (Intel E7520 chipset workaround, §4) — that is modelled
// in the cluster builder, not here.
#pragma once

#include <cstdint>

#include "hw/memory.hpp"
#include "sim/time.hpp"

namespace fabsim::mx {

struct MxConfig {
  // --- NIC engine (Lanai-class firmware, pipelined) ---
  Time tx_occupancy = ns(300);
  Time tx_latency = us(0.9);
  Time rx_occupancy = ns(300);
  Time rx_latency = us(0.9);
  Time per_message_overhead = ns(200);
  /// Per-byte engine throughput (Lanai firmware data path).
  Rate engine_byte_rate = Rate::mb_per_sec(5000.0);

  // --- NIC-resident matching (the MX differentiator) ---
  Time match_posted_item = ns(250);      ///< per posted-receive item traversed
  Time match_unexpected_item = ns(40);   ///< per unexpected item traversed

  // --- Host interface ---
  Time isend_cpu = ns(250);
  Time irecv_cpu = ns(250);
  Time test_cpu = ns(100);
  Time doorbell = ns(200);

  // --- NIC DMA engine (shared by both directions) ---
  Rate dma_rate = Rate::mb_per_sec(1400.0);
  Time dma_transaction = ns(150);

  // --- Protocol ---
  std::uint32_t eager_max = 32 * 1024;  ///< MX internal eager/rendezvous switch
  std::uint32_t mtu = 4096;
  std::uint32_t frame_overhead = 16;  ///< MXoM: Myrinet framing; MXoE uses ~60
  std::uint32_t control_bytes = 32;   ///< RTS/CTS/ACK frame size

  // --- Reliable delivery (armed only under a fault injector) ---
  // MX implements its own end-to-end reliability in firmware: per-peer
  // send queues hold frames until acked; recovery is timeout-driven with
  // the timeout backing off as rto << min(retries, 6). Acks piggyback on
  // reverse traffic and fall back to standalone ack frames.
  Time rto = us(200);           ///< per-flow resend timeout
  std::uint32_t ack_every = 8;  ///< standalone ack after this many frames
  /// Consecutive timer fires without ack progress before the firmware
  /// declares the peer dead (mx_errno MX_STATUS_ENDPOINT_UNREACHABLE
  /// analog): the flow fails permanently, every request stuck behind it
  /// fails, and later sends to that peer fail immediately. Keeps fabric
  /// partitions from hanging MPI-style wait loops.
  int retry_limit = 12;

  // --- Registration (rendezvous path), internal cache ---
  hw::RegistrationConfig reg{us(1.0), us(2.9), us(0.5), us(0.3), 4096};
  bool reg_cache_enabled = true;
  std::size_t reg_cache_entries = 1024;
  std::uint64_t reg_cache_bytes = 8ull << 20;
};

/// Personality helpers.
MxConfig mxom_defaults();
MxConfig mxoe_defaults();

}  // namespace fabsim::mx

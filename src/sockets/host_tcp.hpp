// Host-based TCP sockets over plain 10GbE — the baseline iWARP exists to
// beat, and one of the paper's named future-work items ("we intend to
// extend our study to include udapl, sockets, ...").
//
// Unlike the iWARP RNIC (full protocol offload, zero copy), this stack
// charges everything to the host CPU: the send syscall plus a user->
// kernel copy, per-segment protocol processing on both sides (checksum,
// header handling, interrupt + softirq on receive), and a kernel->user
// copy at recv. The NIC is dumb: it only serializes frames onto the
// wire. The fabric is lossless in these experiments, so reliability
// machinery is omitted (the iWARP stack models loss + go-back-N where
// that matters).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "hw/fabric.hpp"
#include "hw/node.hpp"
#include "sim/scope.hpp"
#include "sim/sync.hpp"

namespace fabsim::sockets {

struct TcpConfig {
  std::uint32_t mss = 1448;
  std::uint32_t seg_overhead = 78;  ///< Ethernet + IP + TCP headers, preamble, IFG
  Time syscall = us(1.5);           ///< send()/recv() entry/exit, kernel 2.6 class
  Time tx_segment_cpu = us(1.5);    ///< per-segment transmit-side stack work
  Time rx_segment_cpu = us(2.2);    ///< interrupt + softirq + TCP receive per segment
  /// Interrupt -> scheduler -> process wakeup latency, paid whenever a
  /// blocked recv() is woken (streaming receivers that find data ready
  /// skip it — that is what interrupt coalescing buys).
  Time wakeup = us(14.0);
  /// Socket-buffer copies use the node's memcpy model on top of these.
};

class HostTcp;

/// One endpoint of an established connection.
class Socket {
 public:
  /// Blocking send of [addr, addr+len): returns once the payload has been
  /// copied into the kernel and handed to the NIC (standard semantics).
  Task<> send(std::uint64_t addr, std::uint32_t len);

  /// Blocking receive of up to `capacity` bytes into [addr, ...); returns
  /// the number of bytes delivered (at least 1).
  Task<std::uint32_t> recv(std::uint64_t addr, std::uint32_t capacity);

  /// Bytes currently buffered in the kernel, readable without blocking.
  std::uint32_t available() const;

 private:
  friend class HostTcp;
  Socket(HostTcp& stack, int conn_id) : stack_(&stack), conn_id_(conn_id) {}
  HostTcp* stack_;
  int conn_id_;
};

class HostTcp final : public hw::FrameSink {
 public:
  HostTcp(hw::Node& node, hw::Switch& fabric, TcpConfig config = {});

  /// Out-of-band connection establishment between two stacks.
  static std::pair<std::unique_ptr<Socket>, std::unique_ptr<Socket>> connect(HostTcp& a,
                                                                             HostTcp& b);

  // --- hw::FrameSink ---
  void deliver(hw::Frame frame) override;

  hw::Node& node() { return *node_; }
  int fabric_port() const { return port_; }
  std::uint64_t segments_sent() const { return segments_sent_; }

 private:
  friend class Socket;

  struct Segment {
    int dst_conn_id = -1;
    std::uint64_t seq = 0;
    std::uint32_t payload_len = 0;
    std::shared_ptr<std::vector<std::byte>> data;
  };

  struct Conn {
    HostTcp* peer = nullptr;
    int peer_conn_id = -1;
    // Receive-side kernel socket buffer.
    std::deque<std::byte> rx_buffer;
    std::uint64_t rx_bytes_total = 0;  ///< counts even for size-only payloads
    std::uint64_t rx_consumed = 0;
    std::unique_ptr<Notifier> readable;
  };

  Task<> send_impl(int conn_id, std::uint64_t addr, std::uint32_t len);
  Task<std::uint32_t> recv_impl(int conn_id, std::uint64_t addr, std::uint32_t capacity);

  Engine& engine() { return node_->engine(); }

  // Scope/ownership annotations (scripts/scope_check.py, src/sim/scope.hpp).
  FABSIM_ENGINE_LOCAL;  // engine plumbing + run-constant wiring
  hw::Node* node_;
  hw::Switch* fabric_;
  TcpConfig config_;
  int port_;
  FABSIM_OWNED_BY(port_);  // kernel socket state: confined to this node's
                           // events (or scope -1 wire handoffs)
  SerialServer tx_link_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::uint64_t segments_sent_ = 0;
};

}  // namespace fabsim::sockets

#include "sockets/host_tcp.hpp"

#include <algorithm>
#include <stdexcept>

namespace fabsim::sockets {

Task<> Socket::send(std::uint64_t addr, std::uint32_t len) {
  return stack_->send_impl(conn_id_, addr, len);
}

Task<std::uint32_t> Socket::recv(std::uint64_t addr, std::uint32_t capacity) {
  return stack_->recv_impl(conn_id_, addr, capacity);
}

std::uint32_t Socket::available() const {
  const auto& conn = *stack_->conns_.at(static_cast<std::size_t>(conn_id_));
  return static_cast<std::uint32_t>(conn.rx_bytes_total - conn.rx_consumed);
}

HostTcp::HostTcp(hw::Node& node, hw::Switch& fabric, TcpConfig config)
    : node_(&node), fabric_(&fabric), config_(config), port_(fabric.attach(*this)) {}

std::pair<std::unique_ptr<Socket>, std::unique_ptr<Socket>> HostTcp::connect(HostTcp& a,
                                                                             HostTcp& b) {
  a.conns_.push_back(std::make_unique<Conn>());
  b.conns_.push_back(std::make_unique<Conn>());
  const int ca = static_cast<int>(a.conns_.size()) - 1;
  const int cb = static_cast<int>(b.conns_.size()) - 1;
  a.conns_.back()->peer = &b;
  a.conns_.back()->peer_conn_id = cb;
  a.conns_.back()->readable = std::make_unique<Notifier>(a.engine());
  b.conns_.back()->peer = &a;
  b.conns_.back()->peer_conn_id = ca;
  b.conns_.back()->readable = std::make_unique<Notifier>(b.engine());
  return {std::unique_ptr<Socket>(new Socket(a, ca)), std::unique_ptr<Socket>(new Socket(b, cb))};
}

Task<> HostTcp::send_impl(int conn_id, std::uint64_t addr, std::uint32_t len) {
  if (len == 0) throw std::invalid_argument("sockets: zero-length send");
  Conn& conn = *conns_.at(static_cast<std::size_t>(conn_id));

  // Syscall entry + user->kernel copy.
  co_await node_->cpu().compute(config_.syscall);
  co_await node_->cpu().copy(addr, len);

  // Grab the payload bytes (if the buffer carries data).
  hw::Buffer* src = node_->mem().find(addr);
  if (src == nullptr || addr + len > src->addr() + src->size()) {
    throw std::out_of_range("sockets: send buffer outside any allocation");
  }
  std::shared_ptr<std::vector<std::byte>> data;
  if (src->has_data()) {
    auto view = node_->mem().window(addr, len);
    data = std::make_shared<std::vector<std::byte>>(view.begin(), view.end());
  }

  // Kernel transmit path: per-segment stack work on this CPU, then the
  // NIC serializes each frame onto the wire.
  std::uint32_t offset = 0;
  while (offset < len) {
    const std::uint32_t chunk = std::min(config_.mss, len - offset);
    const Time stack_done = node_->cpu().charge(engine().now(), config_.tx_segment_cpu);
    const Time sent = tx_link_.book(
        stack_done, fabric_->config().link_rate.bytes_time(chunk + config_.seg_overhead));
    Segment segment;
    segment.dst_conn_id = conn.peer_conn_id;
    segment.payload_len = chunk;
    if (data != nullptr) {
      segment.data = std::make_shared<std::vector<std::byte>>(data->begin() + offset,
                                                              data->begin() + offset + chunk);
    }
    ++segments_sent_;
    const std::uint32_t wire = chunk + config_.seg_overhead;
    Conn* c = &conn;
    engine().post(sent, [this, segment = std::move(segment), c, wire]() mutable {
      fabric_->ingress(hw::Frame{port_, c->peer->port_, wire, std::move(segment)});
    });
    offset += chunk;
  }
  // The send call returns once the last segment is handed to the kernel
  // transmit queue (which we have just booked).
  co_await engine().yield();
}

void HostTcp::deliver(hw::Frame frame) {
  // Scope trap: delivery mutates this stack's socket state, so the
  // carrying event must carry this node's scope (or -1).
  FABSIM_AUDIT_OWNED(engine(), check::Layer::kSim, port_, "HostTcp::deliver");
  // Failed checksum: the NIC discards the frame before the host ever sees
  // an interrupt (this simplified stack models no retransmission, so the
  // bytes are simply lost — pair it with a fault-free plan or the iWARP
  // stack when loss recovery matters).
  if (frame.corrupted) return;
  Segment segment = std::any_cast<Segment>(std::move(frame.payload));

  // Interrupt + softirq + TCP processing on the host CPU; the payload is
  // readable only after that completes.
  const Time processed = node_->cpu().charge(engine().now(), config_.rx_segment_cpu);
  const int conn_id = segment.dst_conn_id;
  engine().post(processed, /*scope=*/port_, [this, conn_id, segment = std::move(segment)]() mutable {
    Conn& c = *conns_.at(static_cast<std::size_t>(conn_id));
    if (segment.data != nullptr) {
      // HOT-OK(socket receive ring append, bounded by the receive window)
      c.rx_buffer.insert(c.rx_buffer.end(), segment.data->begin(), segment.data->end());
    }
    c.rx_bytes_total += segment.payload_len;
    c.readable->notify_all();
  });
}

Task<std::uint32_t> HostTcp::recv_impl(int conn_id, std::uint64_t addr,
                                       std::uint32_t capacity) {
  if (capacity == 0) throw std::invalid_argument("sockets: zero-capacity recv");
  Conn& conn = *conns_.at(static_cast<std::size_t>(conn_id));

  co_await node_->cpu().compute(config_.syscall);
  const bool blocked = conn.rx_bytes_total == conn.rx_consumed;
  while (conn.rx_bytes_total == conn.rx_consumed) {
    co_await conn.readable->wait();
  }
  if (blocked) co_await node_->cpu().compute(config_.wakeup);

  const std::uint32_t available =
      static_cast<std::uint32_t>(conn.rx_bytes_total - conn.rx_consumed);
  const std::uint32_t take = std::min(available, capacity);

  // Kernel->user copy.
  co_await node_->cpu().copy(addr, take);
  if (!conn.rx_buffer.empty()) {
    const std::uint32_t data_take =
        std::min<std::uint32_t>(take, static_cast<std::uint32_t>(conn.rx_buffer.size()));
    std::vector<std::byte> out(conn.rx_buffer.begin(), conn.rx_buffer.begin() + data_take);
    conn.rx_buffer.erase(conn.rx_buffer.begin(), conn.rx_buffer.begin() + data_take);
    node_->mem().write(addr, out);
  }
  conn.rx_consumed += take;
  co_return take;
}

}  // namespace fabsim::sockets

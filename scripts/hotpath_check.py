#!/usr/bin/env python3
"""FabricHot-Check: hot-path purity static analyzer for the dispatch path.

ROADMAP item 1 (engine speed campaign) is judged in events/sec, which is
only a trustworthy number if the per-event dispatch path is *pure*: no
heap allocation, no wall-clock/syscall/IO, no throw in steady state.
PR 9 proved scope labels honest with a compiler-free prover; this tool
applies the same playbook to hot-path purity, whole-tree, without
compiling:

Pass A - definitions. Parse every function definition in src/ (both
    `Type Class::method(...) {` out-of-line forms and inline bodies in
    class definitions) and record its FABSIM_HOT / FABSIM_COLD
    annotation (src/sim/hot.hpp), file/line, and body span.

Pass B - roots. The hot set is seeded by `Engine::dispatch` (the loop
    body every event funnels through), every FABSIM_HOT-annotated
    function, and the continuation lambda of every `.post(` / `->post(`
    call site - the bodies the dispatcher will eventually invoke.

Pass C - reachability. From each root, walk the call graph: bare calls
    resolve against the enclosing class then free functions;
    `obj.method(` / `obj->method(` calls resolve the receiver's declared
    type from function locals/parameters or the enclosing class's member
    declarations. FABSIM_COLD stops the walk (error/teardown paths are
    exempt); unresolvable calls are recorded in the report, never
    guessed. The walk is depth-limited (--max-depth, default 4).

Pass D - purity scan. Every reached body is scanned for:
      hot_alloc        `new` (placement new exempt), make_unique/shared
      hot_growth       growing container calls (push_back / emplace* /
                       resize / reserve / insert / append / assign)
      hot_stdfunction  std::function construction (type-erased callables
                       heap-allocate past the SBO; use sim::InplaceFn)
      hot_wallclock    host-clock reads (std::chrono::*_clock, time(),
                       gettimeofday, clock_gettime)
      hot_io           stdio / iostream / filesystem / system calls
      hot_throw        `throw` on the steady-state path
    A finding the analyzer cannot prove harmless fails the site unless
    the line (or the line above) carries an inline `// HOT-OK(rationale)`
    waiver - same policy as NOLINT in conventions_lint: allowed, but
    only with a written rationale (recorded in the report). A
    FABSIM_MUTATION_HOTALLOC seam is ignored when dormant and flagged
    under --mutation, which is how CI proves this gate can actually fail.

Artifacts: results/hotpath_report.json (hot set + findings + summary).
Exit status: 0 clean, 1 violations found (or, with --expect-violations,
0 iff violations were found - the mutation gate's polarity).
"""
import argparse
import json
import os
import re
import sys

DEFAULT_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

POST_CALL = re.compile(r"(?:->|\.)\s*post\s*\(")  # post_resume does not match
CLASS_DEF = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)\b")
HOT_OK = re.compile(r"HOT-OK\(([^)\n]*)\)")
FUNC_HEAD = re.compile(r"(?:\b([A-Za-z_]\w*)\s*::\s*)?(~?[A-Za-z_]\w*)\s*\(")
CALL = re.compile(r"(?:\b([A-Za-z_]\w*)\s*(->|\.)\s*)?\b([A-Za-z_]\w*)\s*\(")

# Not function names / not worth chasing. Resolution failures for names
# outside this set are recorded as unresolved, never treated as hot.
KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "new", "delete", "co_await", "co_return",
    "co_yield", "assert", "defined", "requires", "noexcept", "throw",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "alignas", "operator", "typeid", "this",
}

# std/vocabulary calls that are pure-by-fiat for the walk: chasing them
# is noise (we have no bodies for them) and the purity regexes already
# catch the impure ones by name.
SAFE_CALLS = {
    "move", "forward", "get", "size", "empty", "begin", "end", "min", "max",
    "swap", "data", "front", "back", "count", "find", "at", "c_str",
    "to_string", "abs", "bit_width", "clamp", "exchange", "make_pair",
    "make_tuple", "tie", "top", "pop", "value", "has_value", "reset",
    "resume", "done", "address", "from_address", "push_heap", "pop_heap",
    "first", "second", "length", "substr", "clear", "erase", "contains",
}

FINDING_RULES = [
    # (rule, regex, hard) - hard rules are definite impurities; soft ones
    # are "cannot prove harmless". Both demand a HOT-OK waiver; the split
    # only flavors the message.
    ("hot_alloc",
     re.compile(r"(?<![\w_])new\s+[A-Za-z_:]|\bmake_unique\s*<|\bmake_shared\s*<"),
     True),
    ("hot_growth",
     re.compile(r"(?:\.|->)\s*(?:push_back|emplace_back|emplace_front|emplace"
                r"|push_front|resize|reserve|insert|append|assign)\s*\("),
     False),
    ("hot_stdfunction", re.compile(r"std\s*::\s*function\s*<"), True),
    ("hot_wallclock",
     re.compile(r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
                r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
                r"|(?<![\w_])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     True),
    ("hot_io",
     re.compile(r"std\s*::\s*(?:cout|cerr|clog|ofstream|ifstream|fstream)\b"
                r"|\b(?:printf|fprintf|fputs|fopen|fwrite|fflush|system|getenv)\s*\("),
     True),
    ("hot_throw", re.compile(r"(?<![\w_])throw\b"), False),
]
MUTATION_SEAM = re.compile(r"FABSIM_MUTATION_HOTALLOC\s*\(")

OPEN_OF = {")": "(", "]": "[", "}": "{"}


def mask_comments_and_strings(text):
    """Replace comments and string/char literals with spaces (offsets kept)."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            for k in range(i, min(j + 1, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def matching(masked, start, open_ch, close_ch):
    """Offset of the close matching masked[start] == open_ch, or -1."""
    depth = 0
    for i in range(start, len(masked)):
        c = masked[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


def split_top_level(masked_text):
    """Split on commas at bracket depth zero; returns (start, end) spans."""
    spans, depth, begin = [], 0, 0
    for i, c in enumerate(masked_text):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            spans.append((begin, i))
            begin = i + 1
    spans.append((begin, len(masked_text)))
    return spans


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def source_files(top, exts=(".hpp", ".h", ".cpp")):
    for dirpath, dirnames, names in os.walk(top):
        dirnames.sort()
        # Fixture trees are deliberately dirty; skip them unless they ARE
        # the scan root (the self-tests point --root at one).
        if "lint_fixtures" in os.path.relpath(dirpath, top).split(os.sep):
            continue
        for name in sorted(names):
            if os.path.splitext(name)[1] in exts:
                yield os.path.join(dirpath, name)


class SourceFile:
    def __init__(self, path, root):
        self.path = path
        self.rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            self.raw = f.read()
        self.masked = mask_comments_and_strings(self.raw)
        self.lines = self.raw.splitlines()


class ClassInfo:
    def __init__(self, name, src, start, end):
        self.name = name
        self.src = src
        self.start = start  # offset of the class body's '{'
        self.end = end


class FunctionInfo:
    def __init__(self, cls_name, name, src, head, body_start, body_end, annotation):
        self.cls = cls_name or ""
        self.name = name
        self.src = src
        self.head = head            # offset of the name token
        self.body_start = body_start  # offset of the body's '{'
        self.body_end = body_end
        self.annotation = annotation  # "hot" | "cold" | None

    @property
    def key(self):
        return f"{self.cls}::{self.name}" if self.cls else self.name

    @property
    def line(self):
        return line_of(self.src.raw, self.head)

    def body_masked(self):
        return self.src.masked[self.body_start:self.body_end + 1]


def collect_classes(src):
    classes = []
    for m in CLASS_DEF.finditer(src.masked):
        i = m.end()
        while i < len(src.masked) and src.masked[i] not in "{;":
            if src.masked[i] == "(":
                i = -1
                break
            i += 1
        if i < 0 or i >= len(src.masked) or src.masked[i] != "{":
            continue
        end = matching(src.masked, i, "{", "}")
        if end < 0:
            continue
        classes.append(ClassInfo(m.group(2), src, i, end))
    return classes


def innermost_class(classes, offset):
    best = None
    for c in classes:
        if c.start < offset < c.end:
            if best is None or c.start > best.start:
                best = c
    return best


def annotation_before(src, head_offset):
    """FABSIM_HOT / FABSIM_COLD marker in the statement opening at head."""
    begin = max(src.masked.rfind(ch, 0, head_offset) for ch in ";{}")
    window = src.masked[begin + 1:head_offset]
    if re.search(r"\bFABSIM_COLD\b", window):
        return "cold"
    if re.search(r"\bFABSIM_HOT\b", window):
        return "hot"
    return None


def collect_functions(src, classes):
    """Heuristic function-definition finder (out-of-line and inline)."""
    funcs = []
    masked = src.masked
    for m in FUNC_HEAD.finditer(masked):
        name = m.group(2).lstrip("~")
        if name in KEYWORDS or m.group(2).startswith("~"):
            continue
        open_paren = masked.index("(", m.end() - 1)
        close = matching(masked, open_paren, "(", ")")
        if close < 0:
            continue
        # Walk past trailing specifiers / ctor-init list to '{' or bail
        # at ';' (declaration) or another construct.
        i = close + 1
        body_start = -1
        while i < len(masked):
            c = masked[i]
            if c == "{":
                body_start = i
                break
            if c == ";" or c == "=":
                break
            if c == "(":  # e.g. `foo(...)(...)` call chains
                break
            i += 1
        if body_start < 0:
            continue
        body_end = matching(masked, body_start, "{", "}")
        if body_end < 0:
            continue
        cls_name = m.group(1)
        if cls_name is None:
            cls = innermost_class(classes, m.start())
            cls_name = cls.name if cls else None
            # An unqualified head at class scope whose name differs from a
            # definition is still fine - constructors keep cls == name.
        funcs.append(FunctionInfo(cls_name, name, src, m.start(), body_start,
                                  body_end, annotation_before(src, m.start())))
    return funcs


# Declaration of `name` as a typed local/parameter/member. Loose type
# group; the trailing identifier chain is what receiver typing needs.
def find_decl_type(text, name):
    decl = re.compile(
        r"(?:^|[(,;{]|\bconst\s)\s*"
        r"((?:const\s+)?[A-Za-z_][\w:]*(?:<[^;{}]*?>)?(?:\s*const)?[\s*&]+)"
        rf"{re.escape(name)}\s*(?:=|;|,|\)|\{{|\[)", re.M)
    last = None
    for m in decl.finditer(text):
        type_text = m.group(1)
        if type_text.split()[0] in ("return", "delete", "new", "case", "goto", "else"):
            continue
        last = type_text
    return last


def type_to_class_name(type_text):
    """Last plausible class identifier in a declaration's type text."""
    if type_text is None:
        return None
    # `std::unique_ptr<iwarp::Rnic>` -> Rnic; `EventQueue` -> EventQueue.
    idents = re.findall(r"[A-Za-z_]\w*", type_text)
    skip = {"const", "std", "unique_ptr", "shared_ptr", "vector", "deque",
            "optional", "mutable", "volatile", "struct", "class"}
    for ident in reversed(idents):
        if ident not in skip:
            return ident
    return None


class Analyzer:
    def __init__(self, root, mutation, max_depth):
        self.root = root
        self.mutation = mutation
        self.max_depth = max_depth
        self.problems = []       # (rel, line, rule, detail)
        self.sources = []
        self.classes_by_src = {}
        self.classes_by_name = {}
        self.funcs_by_key = {}   # "Cls::name" or "name" -> [FunctionInfo]
        self.funcs_by_name = {}  # bare name -> [FunctionInfo]
        self.hot_set = {}        # key -> {file, line, via, depth}
        self.unresolved = {}     # callee name -> count
        self.findings = []
        self.scanned_spans = set()

    # --- pass A -----------------------------------------------------------
    def load(self):
        src_root = os.path.join(self.root, "src")
        for path in source_files(src_root):
            rel = os.path.relpath(path, self.root)
            if rel.replace(os.sep, "/") == "src/sim/hot.hpp":
                continue  # the marker definitions themselves
            src = SourceFile(path, self.root)
            self.sources.append(src)
            classes = collect_classes(src)
            self.classes_by_src[src.path] = classes
            for cls in classes:
                self.classes_by_name.setdefault(cls.name, []).append(cls)
            for fn in collect_functions(src, classes):
                self.funcs_by_key.setdefault(fn.key, []).append(fn)
                self.funcs_by_name.setdefault(fn.name, []).append(fn)

    def lookup(self, cls_name, name):
        """Definitions for cls::name, preferring the exact class."""
        if cls_name:
            hits = self.funcs_by_key.get(f"{cls_name}::{name}")
            if hits:
                return hits
        return self.funcs_by_key.get(name, [])

    # --- pass C -----------------------------------------------------------
    def resolve_calls(self, src, body_start, body_end, cls_name, func_text):
        """Called FunctionInfos reachable from one body."""
        body = src.masked[body_start:body_end + 1]
        out = []
        for m in CALL.finditer(body):
            callee = m.group(3)
            if callee in KEYWORDS or callee in SAFE_CALLS:
                continue
            receiver = m.group(1)
            if receiver in ("std", "fabsim"):
                continue
            if receiver is None or receiver == "this":
                hits = self.lookup(cls_name, callee)
                if hits:
                    out.extend(hits)
                elif callee not in SAFE_CALLS and not callee[0].isupper():
                    self.unresolved[callee] = self.unresolved.get(callee, 0) + 1
                continue
            # obj.method( / obj->method( : type the receiver from function
            # locals/params, else from the enclosing class's member
            # declarations (the class may live in the sibling header).
            decl = find_decl_type(func_text, receiver)
            if decl is None and cls_name:
                for cls in self.classes_by_name.get(cls_name, []):
                    decl = find_decl_type(cls.src.raw[cls.start:cls.end], receiver)
                    if decl:
                        break
            recv_cls = type_to_class_name(decl)
            hits = self.funcs_by_key.get(f"{recv_cls}::{callee}") if recv_cls else None
            if hits:
                out.extend(hits)
            else:
                self.unresolved[callee] = self.unresolved.get(callee, 0) + 1
        return out

    # --- pass D -----------------------------------------------------------
    def scan_body(self, src, body_start, body_end, owner_key):
        span = (src.path, body_start)
        if span in self.scanned_spans:
            return
        self.scanned_spans.add(span)
        body_masked = src.masked[body_start:body_end + 1]
        base_line = line_of(src.raw, body_start)
        for idx, mline in enumerate(body_masked.splitlines()):
            lineno = base_line + idx
            raw_line = src.lines[lineno - 1] if lineno - 1 < len(src.lines) else ""
            prev_line = src.lines[lineno - 2] if lineno - 2 >= 0 else ""
            waiver = HOT_OK.search(raw_line) or HOT_OK.search(prev_line)
            rationale = waiver.group(1).strip() if waiver else None
            if waiver and not rationale:
                self.problems.append((src.rel, lineno, "empty_waiver",
                                      "HOT-OK() requires a written rationale"))
            if MUTATION_SEAM.search(mline):
                if self.mutation:
                    self.problems.append((src.rel, lineno, "mutation_hotalloc",
                                          f"{owner_key}: armed FABSIM_MUTATION_HOTALLOC "
                                          "seam allocates on the dispatch path"))
                    self.findings.append({"file": src.rel, "line": lineno,
                                          "function": owner_key,
                                          "rule": "mutation_hotalloc",
                                          "verdict": "violation"})
                continue
            for rule, rx, hard in FINDING_RULES:
                hit = rx.search(mline)
                if not hit:
                    continue
                if rule == "hot_alloc" and re.search(r"(?<![\w_])new\s*\(", mline) \
                        and not re.search(r"\bmake_(?:unique|shared)\s*<", mline):
                    continue  # placement new: constructs, never allocates
                entry = {"file": src.rel, "line": lineno, "function": owner_key,
                         "rule": rule, "excerpt": raw_line.strip()[:100]}
                if rationale:
                    entry["verdict"] = "waived"
                    entry["rationale"] = rationale
                else:
                    entry["verdict"] = "violation"
                    flavor = ("allocates / is impure on" if hard
                              else "cannot be proven allocation-free on")
                    self.problems.append((src.rel, lineno, rule,
                                          f"{owner_key}: `{raw_line.strip()[:80]}` "
                                          f"{flavor} the hot path "
                                          "(fix it or add // HOT-OK(rationale))"))
                self.findings.append(entry)

    # --- traversal --------------------------------------------------------
    def walk(self, fn, via, depth):
        if fn.key in self.hot_set and self.hot_set[fn.key]["depth"] <= depth:
            return
        if fn.annotation == "cold":
            self.hot_set.setdefault(fn.key, {"file": fn.src.rel, "line": fn.line,
                                             "via": via, "depth": depth,
                                             "annotation": "cold"})
            return  # exempt: error/teardown path by declaration
        self.hot_set[fn.key] = {"file": fn.src.rel, "line": fn.line, "via": via,
                                "depth": depth, "annotation": fn.annotation}
        self.scan_body(fn.src, fn.body_start, fn.body_end, fn.key)
        if depth >= self.max_depth:
            return
        func_text = fn.src.raw[fn.head:fn.body_end + 1]
        for callee in self.resolve_calls(fn.src, fn.body_start, fn.body_end,
                                         fn.cls or None, func_text):
            if callee.key != fn.key:
                self.walk(callee, fn.key, depth + 1)

    def post_sites(self):
        """(src, line, lambda body span | None, enclosing class) per site."""
        sites = []
        for src in self.sources:
            for m in POST_CALL.finditer(src.masked):
                open_paren = src.masked.index("(", m.end() - 1)
                close = matching(src.masked, open_paren, "(", ")")
                if close < 0:
                    continue
                arg_text = src.masked[open_paren + 1:close]
                spans = split_top_level(arg_text)
                fn_begin, fn_end = spans[-1]
                fn_masked = arg_text[fn_begin:fn_end]
                line = line_of(src.raw, m.start())
                lb = fn_masked.find("[")
                body = None
                if lb >= 0:
                    rb = matching(fn_masked, lb, "[", "]")
                    brace = fn_masked.find("{", rb) if rb > 0 else -1
                    if brace >= 0:
                        brace_end = matching(fn_masked, brace, "{", "}")
                        if brace_end > 0:
                            body = (open_paren + 1 + fn_begin + brace,
                                    open_paren + 1 + fn_begin + brace_end)
                cls = innermost_class(self.classes_by_src.get(src.path, []), m.start())
                cls_name = cls.name if cls else None
                if cls_name is None:
                    # Out-of-line method body: `Type Class::method(...)`.
                    upto = src.raw[:m.start()]
                    for header_line in reversed(upto.splitlines()):
                        if header_line and header_line[0] not in " \t}#/":
                            hm = re.search(r"([A-Za-z_]\w*)\s*::\s*~?[A-Za-z_]\w*\s*\(",
                                           header_line)
                            if hm:
                                cls_name = hm.group(1)
                            break
                sites.append((src, line, body, cls_name, m.start()))
        return sites

    def run(self):
        self.load()

        # Roots: Engine::dispatch + every FABSIM_HOT function.
        roots = 0
        for fns in self.funcs_by_key.values():
            for fn in fns:
                if fn.key == "Engine::dispatch" or fn.annotation == "hot":
                    self.walk(fn, "<root>", 0)
                    roots += 1

        # Roots: every post() continuation body.
        sites = self.post_sites()
        for src, line, body, cls_name, offset in sites:
            if body is None:
                continue  # opaque callable: dispatch-side audit still applies
            owner = f"{src.rel}:{line}:<post-lambda>"
            self.scan_body(src, body[0], body[1], owner)
            func_text = src.raw[offset:body[1] + 1]
            for callee in self.resolve_calls(src, body[0], body[1], cls_name,
                                             func_text):
                self.walk(callee, owner, 1)
        return roots, sites

    def report(self, roots, sites):
        waived = sum(1 for f in self.findings if f["verdict"] == "waived")
        return {
            "generated_by": "scripts/hotpath_check.py",
            "mode": "mutation" if self.mutation else "clean",
            "max_depth": self.max_depth,
            "summary": {
                "files_scanned": len(self.sources),
                "post_sites": len(sites),
                "post_lambdas": sum(1 for s in sites if s[2] is not None),
                "hot_roots": roots,
                "hot_functions": sum(1 for v in self.hot_set.values()
                                     if v.get("annotation") != "cold"),
                "cold_stops": sum(1 for v in self.hot_set.values()
                                  if v.get("annotation") == "cold"),
                "waived_findings": waived,
                "violations": len(self.problems),
            },
            "hot_set": {k: v for k, v in sorted(self.hot_set.items())},
            "findings": self.findings,
            "unresolved_calls": dict(sorted(self.unresolved.items(),
                                            key=lambda kv: -kv[1])[:40]),
            "violations": [
                {"file": f, "line": l, "rule": r, "detail": d}
                for f, l, r, d in self.problems
            ],
        }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=DEFAULT_ROOT,
                        help="repo root to analyze (default: this repo)")
    parser.add_argument("--mutation", action="store_true",
                        help="flag armed FABSIM_MUTATION_HOTALLOC seams")
    parser.add_argument("--max-depth", type=int, default=4,
                        help="call-graph traversal depth from each root (default 4)")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (default: "
                             "results/hotpath_report.json under --root; '-' to skip)")
    parser.add_argument("--expect-violations", action="store_true",
                        help="invert the exit status: succeed iff violations were "
                             "found (the mutation self-test gate)")
    args = parser.parse_args()

    analyzer = Analyzer(os.path.abspath(args.root), args.mutation, args.max_depth)
    roots, sites = analyzer.run()
    report = analyzer.report(roots, sites)

    out = args.out
    if out is None:
        out = os.path.join(args.root, "results", "hotpath_report.json")
    if out != "-":
        os.makedirs(os.path.dirname(out), exist_ok=True)
        with open(out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=False)
            f.write("\n")

    problems = analyzer.problems
    for rel, line, rule, detail in problems:
        print(f"{rel}:{line}: [{rule}] {detail}", file=sys.stderr)
    s = report["summary"]
    status = (f"hotpath_check[{report['mode']}]: {s['post_sites']} post sites "
              f"({s['post_lambdas']} lambdas), {s['hot_functions']} hot functions "
              f"({s['cold_stops']} cold stops), {s['waived_findings']} waived, "
              f"{len(problems)} violation(s)")
    if args.expect_violations:
        if problems:
            print(status + " - expected, gate can fail")
            return 0
        print(status + " - but violations were EXPECTED (mutation not caught)",
              file=sys.stderr)
        return 1
    if problems:
        print(status, file=sys.stderr)
        return 1
    print(status)
    return 0


if __name__ == "__main__":
    sys.exit(main())

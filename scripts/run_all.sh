#!/usr/bin/env bash
# Build everything, run the full test suite, then regenerate every figure
# into results/. Mirrors what CI would do.
#
# Flags (combinable):
#   --sanitize   additionally build under ASan+UBSan (build-asan/) and run
#                the test suite instrumented before the figure regeneration
#   --check      build with the FabricCheck invariant auditor compiled in
#                (build-check/, -DFABSIM_CHECK=ON) and use it for the
#                figure regeneration; any bench reporting check.violations
#                != 0 fails the run. Also runs the FabricScope-Check and
#                FabricHot-Check static gates: scope_check.py and
#                hotpath_check.py must be clean on the annotated tree
#                AND must each flag their deliberately planted seam
#                under --mutation
#   --trace      after the benches, export a Chrome-trace JSON of one
#                rendezvous message to results/trace_export.json
#   --explore    after the benches, re-run the FabricExplore schedule
#                search with a much larger budget (and the fuzzer) than
#                the quick sweep the bench loop already performs; any
#                finding fails the run and leaves a replayable
#                counterexample in results/counterexamples/
set -euo pipefail
cd "$(dirname "$0")/.."

sanitize=0
trace=0
check=0
explore=0
for arg in "$@"; do
  case "$arg" in
    --sanitize) sanitize=1 ;;
    --trace) trace=1 ;;
    --check) check=1 ;;
    --explore) explore=1 ;;
    *) echo "unknown flag: $arg (expected --sanitize, --check, --trace and/or --explore)" >&2; exit 2 ;;
  esac
done

if [[ "$sanitize" == 1 ]]; then
  cmake -B build-asan -G Ninja -DFABSIM_SANITIZE=ON -DFABSIM_CHECK=ON
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

bench_dir=build/bench
if [[ "$check" == 1 ]]; then
  cmake -B build-check -G Ninja -DFABSIM_CHECK=ON
  cmake --build build-check
  ctest --test-dir build-check --output-on-failure
  bench_dir=build-check/bench

  # FabricScope-Check static gate (mirrors the runtime ScopeAuditor the
  # FABSIM_CHECK build just exercised): the analyzer must run clean on
  # the annotated tree, and must still catch the deliberately mislabeled
  # seam when reading its mutated arm — a gate that cannot fail gates
  # nothing.
  echo "=== scope_check (gating) ==="
  python3 scripts/scope_check.py
  if python3 scripts/scope_check.py --mutation --out - >/dev/null 2>&1; then
    echo "scope_check: mislabeled-scope mutation was NOT caught" >&2
    exit 1
  fi

  # FabricHot-Check static gate (mirrors the runtime HotpathAuditor the
  # FABSIM_CHECK build just exercised): dispatch-path purity must hold
  # on the annotated tree, and the deliberately allocating seam in
  # Engine::dispatch must be caught when read on its armed arm.
  echo "=== hotpath_check (gating) ==="
  python3 scripts/hotpath_check.py
  if python3 scripts/hotpath_check.py --mutation --out - >/dev/null 2>&1; then
    echo "hotpath_check: hot-path allocation mutation was NOT caught" >&2
    exit 1
  fi
fi

mkdir -p results
for b in "$bench_dir"/*; do
  [[ -f "$b" && -x "$b" ]] || continue  # skip CMakeFiles/ and cmake litter
  name="$(basename "$b")"
  echo "=== $name ==="
  # Benches write their own results/<name>.{txt,csv,json} via the Report
  # helper, so tee into a temp file and only install the captured stdout
  # as .txt for binaries (e.g. micro_simcore) that don't self-report —
  # teeing straight onto results/<name>.txt would clobber the report.
  rm -f "results/$name.txt" "results/$name.csv" "results/$name.json"
  tmp="$(mktemp)"
  "$b" | tee "$tmp"
  if [[ -f "results/$name.txt" ]]; then
    rm -f "$tmp"
  else
    mv "$tmp" "results/$name.txt"
  fi
  # Every self-reporting bench must leave a well-formed report with a
  # live workload behind (assert_clean fails on a missing report or zero
  # sim.events, and on FabricCheck violations). micro_simcore is exempt:
  # it is a google-benchmark binary with no Report output.
  if [[ "$name" != "micro_simcore" ]]; then
    python3 scripts/assert_clean.py "results/$name.json"
  fi
done

# Engine perf trajectory: append this commit's events/sec (micro_simcore
# plus the ext_scaling FabricProf probe) to BENCH_engine.json, then gate:
# >25% events/sec regression against the last recorded commit fails the
# run, as do zero-event measurements (assert_perf.py).
echo "=== bench_engine + assert_perf (gating) ==="
if [[ "$check" == 1 ]]; then
  # Perf numbers must come from the uninstrumented default build; the
  # bench loop above produced results/ext_scaling.* from build-check.
  build/bench/ext_scaling > /dev/null
fi
python3 scripts/bench_engine.py build/bench/micro_simcore \
  --preset default --report results/ext_scaling.json
python3 scripts/assert_perf.py BENCH_engine.json

if [[ "$explore" == 1 ]]; then
  echo "=== ext_explore (large budget) ==="
  "$bench_dir"/ext_explore --budget 4096 --depth 48 --fuzz 512 --seed 1
fi

if [[ "$trace" == 1 ]]; then
  echo "=== trace_export ==="
  build/examples/trace_export results/trace_export.json
fi

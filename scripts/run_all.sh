#!/usr/bin/env bash
# Build everything, run the full test suite, then regenerate every figure
# into results/. Mirrors what CI would do.
#
# With --sanitize, additionally build under ASan+UBSan (build-asan/) and
# run the test suite instrumented before the figure regeneration.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--sanitize" ]]; then
  cmake -B build-asan -G Ninja -DFABSIM_SANITIZE=ON
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for b in build/bench/*; do
  [[ -f "$b" && -x "$b" ]] || continue  # skip CMakeFiles/ and cmake litter
  name="$(basename "$b")"
  echo "=== $name ==="
  "$b" | tee "results/$name.txt"
done

#!/usr/bin/env bash
# FabricFail chaos soak: run the seeded chaos gate (bench/ext_chaos)
# across a sweep of seeds. Every seed gets a fresh randomized failure
# schedule (detected link/switch-down windows + silent flaps) over the
# same Clos fabrics and load; the bench exits non-zero if any seed
# produces a FabricCheck violation, a digest divergence between
# identical runs, or a silently-hung flow.
#
# Usage: scripts/chaos_soak.sh [build-dir] [seed ...]
#   build-dir   default: build
#   seeds       default: 1..8 (quick soak); pass explicit seeds to
#               reproduce a failing schedule.
# Env: CHAOS_FULL=1 runs the full-size fabrics (128 endpoints, 3-level
# Clos) instead of quick mode.
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
shift $(( $# > 0 ? 1 : 0 )) || true
seeds=("$@")
if [[ ${#seeds[@]} -eq 0 ]]; then
  seeds=(1 2 3 4 5 6 7 8)
fi

if [[ ! -x "$build/bench/ext_chaos" ]]; then
  cmake -B "$build" -G Ninja
  cmake --build "$build" --target ext_chaos
fi

mode=(quick)
if [[ "${CHAOS_FULL:-0}" == "1" ]]; then
  mode=()
fi

failed=()
for seed in "${seeds[@]}"; do
  echo "== chaos soak: seed $seed =="
  if ! "$build/bench/ext_chaos" "${mode[@]}" --seed "$seed"; then
    failed+=("$seed")
  fi
done

if [[ ${#failed[@]} -gt 0 ]]; then
  echo "chaos soak: FAILED seeds: ${failed[*]}" >&2
  echo "reproduce with: $build/bench/ext_chaos ${mode[*]} --seed <seed>" >&2
  exit 1
fi
echo "chaos soak: OK (${#seeds[@]} seeds clean)"

#!/usr/bin/env python3
"""Append the engine's perf figures to the BENCH_engine.json trajectory.

Runs the google-benchmark binary (bench/micro_simcore) in JSON mode and
scrapes events/sec and items/sec per benchmark. Optionally also scrapes
Report JSON artifacts (--report results/ext_scaling.json): every scalar
named ``<series>.events_per_sec`` becomes a ``<benchmark>.<series>``
trajectory entry, so the big-fabric probes ride in the same record as
the microbenchmarks.

One record per commit is appended to BENCH_engine.json at the repo root:

    [
      {"commit": "<sha>",
       "date": "<ISO-8601 UTC>",
       "config": {"preset": "...", "jobs": N, "cpu_count": N},
       "benchmarks": {
          "BM_EventQueueThroughput": {"events_per_sec": ..., "items_per_sec": ...},
          "ext_scaling.iWARP": {"events_per_sec": ...},
          ...}},
      ...
    ]

Idempotent per commit: re-running on the same HEAD *replaces* that
commit's record instead of appending a duplicate, so the trajectory
stays one point per commit no matter how often run_all.sh re-runs.

scripts/assert_perf.py gates on the resulting trajectory (>25%
events/sec regression against the previous recorded commit fails).

Usage:
  bench_engine.py <micro_simcore-binary> [trajectory-json]
                  [--report <report.json>]... [--preset NAME] [--jobs N]
"""

import argparse
import datetime
import json
import os
import subprocess
import sys
from pathlib import Path


def head_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def scrape_micro(binary: str) -> dict:
    result = subprocess.run(
        [binary, "--benchmark_format=json", "--benchmark_min_time=0.05"],
        capture_output=True, text=True,
    )
    if result.returncode != 0:
        print(f"bench_engine: {binary} failed:\n{result.stderr}", file=sys.stderr)
        return {}
    data = json.loads(result.stdout)

    benchmarks = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        entry = {}
        if "events_per_sec" in bench:
            entry["events_per_sec"] = bench["events_per_sec"]
        if "items_per_second" in bench:
            entry["items_per_sec"] = bench["items_per_second"]
        if entry:
            benchmarks[bench["name"]] = entry
    return benchmarks


def scrape_report(path: str) -> dict:
    """Pull <series>.events_per_sec scalars out of a Report JSON."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_engine: cannot read report {path}: {e}", file=sys.stderr)
        return {}
    name = doc.get("benchmark", Path(path).stem)
    suffix = ".events_per_sec"
    out = {}
    for key, value in doc.get("scalars", {}).items():
        if key.endswith(suffix):
            out[f"{name}.{key[:-len(suffix)]}"] = {"events_per_sec": value}
    if not out:
        print(f"bench_engine: no *.events_per_sec scalars in {path}", file=sys.stderr)
    return out


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("binary", help="bench/micro_simcore google-benchmark binary")
    parser.add_argument("trajectory", nargs="?", default="BENCH_engine.json")
    parser.add_argument("--report", action="append", default=[],
                        help="Report JSON to scrape *.events_per_sec scalars from (repeatable)")
    parser.add_argument("--preset", default="default", help="build preset recorded in the entry")
    parser.add_argument("--jobs", type=int, default=None,
                        help="build parallelism recorded in the entry (default: cpu count)")
    args = parser.parse_args()

    benchmarks = scrape_micro(args.binary)
    if not benchmarks:
        return 1
    for report in args.report:
        benchmarks.update(scrape_report(report))

    commit = head_commit()
    out_path = Path(args.trajectory)
    trajectory = []
    if out_path.exists():
        try:
            trajectory = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            print(f"bench_engine: {out_path} is corrupt, starting fresh", file=sys.stderr)
    # One record per commit: replace, never duplicate.
    trajectory = [r for r in trajectory if r.get("commit") != commit]
    trajectory.append({
        "commit": commit,
        "date": datetime.datetime.now(datetime.timezone.utc)
                .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "config": {
            "preset": args.preset,
            "jobs": args.jobs if args.jobs is not None else os.cpu_count(),
            "cpu_count": os.cpu_count(),
        },
        "benchmarks": benchmarks,
    })
    out_path.write_text(json.dumps(trajectory, indent=2) + "\n")

    for name, entry in sorted(benchmarks.items()):
        rate = entry.get("events_per_sec")
        if rate is not None:
            print(f"bench_engine: {name}: {rate / 1e6:.2f} M events/sec")
    print(f"bench_engine: recorded {commit} in {out_path} ({len(trajectory)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Append the engine's micro-benchmark throughput to the perf trajectory.

Runs the google-benchmark binary (bench/micro_simcore) in JSON mode,
scrapes events/sec and items/sec per benchmark, and appends one record
per commit to BENCH_engine.json at the repo root:

    [
      {"commit": "<sha>", "benchmarks": {
          "BM_EventQueueThroughput": {"events_per_sec": ..., "items_per_sec": ...},
          ...}},
      ...
    ]

One record per commit: re-running on the same HEAD overwrites that
commit's record instead of growing the file, so the trajectory stays one
point per PR. Non-gating by design — run_all.sh invokes it best-effort
and CI never fails on a slow machine.

Usage: bench_engine.py <micro_simcore-binary> [trajectory-json]
"""

import json
import subprocess
import sys
from pathlib import Path


def head_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    binary = sys.argv[1]
    out_path = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("BENCH_engine.json")

    result = subprocess.run(
        [binary, "--benchmark_format=json", "--benchmark_min_time=0.05"],
        capture_output=True, text=True,
    )
    if result.returncode != 0:
        print(f"bench_engine: {binary} failed:\n{result.stderr}", file=sys.stderr)
        return 1
    data = json.loads(result.stdout)

    benchmarks = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        entry = {}
        if "events_per_sec" in bench:
            entry["events_per_sec"] = bench["events_per_sec"]
        if "items_per_second" in bench:
            entry["items_per_sec"] = bench["items_per_second"]
        if entry:
            benchmarks[bench["name"]] = entry

    commit = head_commit()
    trajectory = []
    if out_path.exists():
        try:
            trajectory = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            print(f"bench_engine: {out_path} is corrupt, starting fresh", file=sys.stderr)
    trajectory = [r for r in trajectory if r.get("commit") != commit]
    trajectory.append({"commit": commit, "benchmarks": benchmarks})
    out_path.write_text(json.dumps(trajectory, indent=2) + "\n")

    for name, entry in benchmarks.items():
        rate = entry.get("events_per_sec")
        if rate is not None:
            print(f"bench_engine: {name}: {rate / 1e6:.2f} M events/sec")
    print(f"bench_engine: appended {commit} to {out_path} ({len(trajectory)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

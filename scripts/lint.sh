#!/usr/bin/env bash
# Static-analysis gate. Runs every analyzer available on this machine and
# always runs the dependency-free analyzers (conventions linter and the
# scope/ownership checker).
#
# Tool availability: by default a missing optional tool is skipped with a
# notice (the container used for development ships only the compiler
# toolchain). In CI pass --strict: there the image is expected to carry
# the tools, and a silently-skipped analyzer is a gate that stopped
# gating — strict mode turns "not installed" into a failure.
#
# Failure aggregation: each tool records its own verdict and the script
# exits non-zero if ANY tool failed — a later passing tool never masks
# an earlier failure, and the summary names every failed section.
#
#   clang-tidy    .clang-tidy config (bugprone/performance/readability/
#                 modernize subsets) over src/, using the compile database
#   cppcheck      C++20 static analysis over src/
#   clang-format  check-only formatting pass (--fix to rewrite)
#   conventions   scripts/conventions_lint.py (always runs)
#   scope-check   scripts/scope_check.py (always runs): post() scope
#                 labels vs ownership annotations, plus the mutation
#                 self-test (the deliberately mislabeled seam must be
#                 caught, proving the gate can fail)
#   hotpath-check scripts/hotpath_check.py (always runs): dispatch-path
#                 purity (no alloc/wall-clock/IO/throw reachable from
#                 Engine::dispatch or any post() continuation), plus its
#                 own mutation self-test (the FABSIM_MUTATION_HOTALLOC
#                 seam in Engine::dispatch must be caught)
#
# Usage: scripts/lint.sh [--fix] [--strict]
set -euo pipefail
cd "$(dirname "$0")/.."

fix=0
strict=0
for arg in "$@"; do
  case "$arg" in
    --fix) fix=1 ;;
    --strict) strict=1 ;;
    *) echo "usage: scripts/lint.sh [--fix] [--strict]" >&2; exit 2 ;;
  esac
done

failed=()

# The compile database clang-tidy wants; the default preset writes build/.
if [[ ! -f build/compile_commands.json ]]; then
  cmake -B build -G Ninja -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# missing <tool>: skip notice normally, hard failure under --strict.
missing() {
  if [[ "$strict" == 1 ]]; then
    echo "== $1: NOT INSTALLED (strict mode: this is a failure) =="
    failed+=("$1-missing")
  else
    echo "== $1: not installed, skipping =="
  fi
}

sources=$(find src -name '*.cpp' | sort)

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  # shellcheck disable=SC2086
  clang-tidy -p build --quiet $sources || failed+=("clang-tidy")
else
  missing clang-tidy
fi

if command -v cppcheck >/dev/null 2>&1; then
  echo "== cppcheck =="
  cppcheck --std=c++20 --language=c++ --enable=warning,performance,portability \
    --error-exitcode=1 --inline-suppr --quiet -I src src || failed+=("cppcheck")
else
  missing cppcheck
fi

if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format =="
  files=$(find src tests bench examples -name '*.cpp' -o -name '*.hpp' | sort)
  if [[ "$fix" == 1 ]]; then
    # shellcheck disable=SC2086
    clang-format -i $files
  else
    # shellcheck disable=SC2086
    clang-format --dry-run --Werror $files || failed+=("clang-format")
  fi
else
  missing clang-format
fi

echo "== conventions =="
python3 scripts/conventions_lint.py || failed+=("conventions")

echo "== scope-check =="
python3 scripts/scope_check.py || failed+=("scope-check")
# The gate must be able to fail: the deliberately mislabeled seam
# (FABSIM_MUTATION_SCOPE, src/hw/fabric.cpp) has to be flagged.
python3 scripts/scope_check.py --mutation --expect-violations --out - \
  || failed+=("scope-check-mutation")

echo "== hotpath-check =="
python3 scripts/hotpath_check.py || failed+=("hotpath-check")
# Same teeth requirement: the deliberately allocating dispatch seam
# (FABSIM_MUTATION_HOTALLOC, src/sim/engine.hpp) has to be flagged.
python3 scripts/hotpath_check.py --mutation --expect-violations --out - \
  || failed+=("hotpath-check-mutation")

if [[ "${#failed[@]}" -gt 0 ]]; then
  echo "lint: FAILED sections: ${failed[*]}" >&2
  exit 1
fi
echo "lint: all sections clean"
exit 0

#!/usr/bin/env bash
# Static-analysis gate. Runs every analyzer available on this machine and
# always runs the dependency-free conventions linter; tools that are not
# installed are skipped with a notice (the container used for development
# ships only the compiler toolchain — CI images may carry more).
#
#   clang-tidy    .clang-tidy config (bugprone/performance/readability/
#                 modernize subsets) over src/, using the compile database
#   cppcheck      C++20 static analysis over src/
#   clang-format  check-only formatting pass (--fix to rewrite)
#   conventions   scripts/conventions_lint.py (always runs)
#
# Usage: scripts/lint.sh [--fix]
set -euo pipefail
cd "$(dirname "$0")/.."

fix=0
[[ "${1:-}" == "--fix" ]] && fix=1

status=0

# The compile database clang-tidy wants; the default preset writes build/.
if [[ ! -f build/compile_commands.json ]]; then
  cmake -B build -G Ninja -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

sources=$(find src -name '*.cpp' | sort)

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  # shellcheck disable=SC2086
  clang-tidy -p build --quiet $sources || status=1
else
  echo "== clang-tidy: not installed, skipping =="
fi

if command -v cppcheck >/dev/null 2>&1; then
  echo "== cppcheck =="
  cppcheck --std=c++20 --language=c++ --enable=warning,performance,portability \
    --error-exitcode=1 --inline-suppr --quiet -I src src || status=1
else
  echo "== cppcheck: not installed, skipping =="
fi

if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format =="
  files=$(find src tests bench examples -name '*.cpp' -o -name '*.hpp' | sort)
  if [[ "$fix" == 1 ]]; then
    # shellcheck disable=SC2086
    clang-format -i $files
  else
    # shellcheck disable=SC2086
    clang-format --dry-run --Werror $files || status=1
  fi
else
  echo "== clang-format: not installed, skipping =="
fi

echo "== conventions =="
python3 scripts/conventions_lint.py || status=1

exit "$status"

#!/usr/bin/env python3
"""FabricSim source conventions linter (no external tooling required).

Checks, over src/ (and headers everywhere):

  1. pragma-once: every project header starts its preprocessor life with
     `#pragma once` (include guards are not used in this tree).
  2. include-resolution: every `#include "..."` of a project header
     resolves against src/ or the including file's directory — a rename
     that leaves a dangling include is caught without compiling.
  3. no-wall-clock: simulation code must be deterministic; the host
     clock (std::chrono system/steady/high_resolution clocks, ::time,
     gettimeofday, clock_gettime) is banned in src/. Simulated time comes
     from Engine::now() only.
  4. no-naked-new: allocations go through std::make_unique/make_shared
     or, for private constructors, the `unique_ptr<T>(new T(...))` idiom
     (detected across adjacent lines). Anything else is flagged.
  5. no-rand: std::rand/srand/random_shuffle are banned; randomness must
     flow from explicitly seeded std::mt19937 so runs stay reproducible.
  6. post-ref-capture: lambdas handed to Engine::post are deferred — a
     `[&]` default capture roots them in a stack frame that may be gone
     (or mutated) by dispatch time, and FabricExplore legally reorders
     co-enabled events, so by-reference state sharing between posted
     lambdas is a schedule hazard. Capture explicitly (by value, or a
     named pointer/reference whose lifetime is clear).
  7. unordered-iteration: range-for over a std::unordered_map/set makes
     behaviour depend on hash-table order. In simulation code any such
     iteration can feed the run digest (dispatch order, violation order,
     metric order), silently breaking run-to-run determinism and the
     explorer's replay guarantee. Iterate a deterministic container, or
     NOLINT with a written rationale for why order cannot matter.
  8. switch-construction: hw::Switch is only constructed by the
     topo::Topology builders (src/topo/) — they own switch ids, LFT
     computation and endpoint reservations, and a Switch wired up by
     hand bypasses all three. Everything else takes a Topology (or an
     edge switch reference from one). Tests are exempt by scope; an
     intentional exception takes a NOLINT with a rationale.
  9. switch-failure-seam: the hw::Switch failure controls
     (set_port_down/up, set_switch_down, requeue_down_port,
     drain_all_drop) are only driven by the failover layers — src/topo/
     (Topology::fail_/restore_ own the reroute-then-drain ordering and
     the credit accounting) and src/fault/. Any other caller can strand
     credits or leave LFTs pointing at a dead port; route failures
     through topo::Topology, or NOLINT with a rationale.
 10. wall-clock-exemption: the FabricProf host-time profiler is the
     single sanctioned consumer of the host clock — rule 3's wall-clock
     ban is lifted for src/sim/prof.hpp and src/sim/prof.cpp only
     (host-side dispatch profiling is meaningless in simulated time, and
     the Engine keeps all clock reads behind the Profiler seam). Every
     other file touching steady_clock/rdtsc-style time still fails.
 11. no-global-state: mutable namespace-scope/file-scope variables
     (`static` or global non-const) are banned in src/. Hidden global
     state is exactly what the scope/ownership analysis
     (scripts/scope_check.py) cannot see at a post() call site, and it
     couples otherwise scope-confined events — poison for the parallel
     engine and for FabricExplore's commutation claims. Constants
     (const/constexpr/constinit-const) are fine; a deliberate global
     takes a NOLINT(global-state) with a written rationale.
 12. no-stdfunction: `std::function` parameters/members are banned in
     src/sim/ and src/hw/ headers. Type-erased callables heap-allocate
     once the capture outgrows the SBO — exactly the allocation the
     zero-alloc dispatch contract (scripts/hotpath_check.py) exists to
     keep off the hot path. Use sim::InplaceFn (sim/inplace_fn.hpp),
     a template parameter, or a concrete functor; a deliberate use
     takes a NOLINT with a written rationale.

A line containing NOLINT is exempt from 3-9, 11 and 12. Exit status:
0 clean, 1 violations found.
"""
import argparse
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")

WALL_CLOCK = re.compile(
    r"system_clock|steady_clock|high_resolution_clock|gettimeofday|clock_gettime"
    r"|(?<![\w:])::time\s*\(|std::time\s*\("
)
NAKED_NEW = re.compile(r"(?<![\w_])new\s+[A-Za-z_(]")
RAND = re.compile(r"(?<![\w_])s?rand\s*\(|random_shuffle")
INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
POST_CALL = re.compile(r"(?:->|\.)\s*post\s*\(")  # post_resume etc. do not match
REF_CAPTURE = re.compile(r"\[\s*&\s*[\],]")  # [&] or [&, x] default captures only
UNORDERED_DECL = re.compile(r"std::unordered_(?:map|set)\b[^;{=]*?[\s>](\w+)\s*[;{=]")
RANGE_FOR = re.compile(r"for\s*\([^;)]*:\s*(?:this->)?(\w+)\s*\)")
SWITCH_CONSTRUCT = re.compile(
    r"make_(?:unique|shared)<\s*(?:\w+::)*Switch\s*>"
    r"|(?<![\w_])new\s+(?:\w+::)*Switch\b"
    r"|(?<![\w:])(?:\w+::)*Switch\s+\w+\s*[({]"
)
STD_FUNCTION = re.compile(r"std\s*::\s*function\s*<")
SWITCH_FAILURE_SEAM = re.compile(
    r"(?:\.|->)\s*(?:set_port_down|set_port_up|set_switch_down|requeue_down_port"
    r"|drain_all_drop)\s*\("
)
# Rule 10: the one sanctioned wall-clock consumer (FabricProf).
WALL_CLOCK_EXEMPT = {
    os.path.join("src", "sim", "prof.hpp"),
    os.path.join("src", "sim", "prof.cpp"),
}
# Rule 11: a variable declaration at namespace scope. Function
# declarations are excluded by requiring no '(' after the name; keyword
# statements (using/typedef/forward decls/...) by the lookahead.
NS_VAR_DECL = re.compile(
    r"^\s*(?:inline\s+|static\s+|thread_local\s+)*"
    r"(?!using\b|typedef\b|extern\b|template\b|namespace\b|class\b|struct\b"
    r"|enum\b|union\b|friend\b|static_assert\b|return\b|if\b|for\b|while\b)"
    r"(?:const\s+|constexpr\s+|constinit\s+)*"
    r"[A-Za-z_][\w:]*(?:<[^;]*>)?(?:\s*[*&])*\s+[A-Za-z_]\w*"
    r"(?:\s*\[[^\]]*\])?\s*(?:=[^;]*|\{[^;{}]*\})?;\s*$"
)
CONST_QUALIFIED = re.compile(r"\bconst\b|\bconstexpr\b|\bconstinit\b")
NAMESPACE_HEAD = re.compile(r"\bnamespace\b")


def global_state_pass(path, lines, flag):
    """Rule 11: mutable namespace-scope variables. Tracks brace nesting
    (class members and function bodies are out of scope) and tests whole
    `;`-terminated statements, so multi-line function declarations don't
    confuse it."""
    stack = []   # True = namespace scope, False = anything else
    stmt = ""    # statement text since the last ; { or } — classifies
                 # both '{' openers and ';' declarations
    stmt_nolint = False
    for i, raw in enumerate(lines, 1):
        if "NOLINT" in raw:
            stmt_nolint = True
        for c in strip_comments(raw):
            if c == "{":
                stack.append(bool(NAMESPACE_HEAD.search(stmt)) and "(" not in stmt)
                stmt, stmt_nolint = "", False
            elif c == "}":
                if stack:
                    stack.pop()
                stmt, stmt_nolint = "", False
            elif c == ";":
                if (all(stack) and not stmt_nolint and "(" not in stmt
                        and NS_VAR_DECL.match(stmt + ";")
                        and not CONST_QUALIFIED.search(stmt)):
                    flag(path, i, "no-global-state",
                         "mutable namespace-scope state (invisible to the scope/"
                         "ownership analysis and shared across every event scope); "
                         "make it const, move it behind an owner object, or "
                         "NOLINT(global-state) with a rationale")
                stmt, stmt_nolint = "", False
            else:
                stmt += c
        stmt += " "


def strip_comments(line):
    line = re.sub(r"//.*$", "", line)
    return re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)  # string literals too


def source_files(top, exts):
    for dirpath, dirnames, names in os.walk(top):
        dirnames.sort()
        # Fixture trees are deliberately dirty; skip them unless they ARE
        # the scan root (the self-tests point --root at one).
        if "lint_fixtures" in os.path.relpath(dirpath, top).split(os.sep):
            continue
        for name in sorted(names):
            if os.path.splitext(name)[1] in exts:
                yield os.path.join(dirpath, name)


def lint():
    problems = []

    def flag(path, lineno, rule, text):
        rel = os.path.relpath(path, ROOT)
        problems.append(f"{rel}:{lineno}: [{rule}] {text}")

    # Headers anywhere in the tree: pragma once + resolvable includes.
    header_roots = [SRC, os.path.join(ROOT, "tests"), os.path.join(ROOT, "bench"),
                    os.path.join(ROOT, "examples")]
    for top in header_roots:
        for path in source_files(top, {".hpp", ".h", ".cpp"}):
            with open(path, encoding="utf-8") as f:
                lines = f.readlines()
            if path.endswith((".hpp", ".h")):
                directives = [l.strip() for l in lines if l.strip().startswith("#")]
                if not directives or directives[0] != "#pragma once":
                    flag(path, 1, "pragma-once", "header must start with #pragma once")
            for i, line in enumerate(lines, 1):
                m = INCLUDE.match(line)
                if not m:
                    continue
                target = m.group(1)
                here = os.path.join(os.path.dirname(path), target)
                under_src = os.path.join(SRC, target)
                if not (os.path.exists(here) or os.path.exists(under_src)):
                    flag(path, i, "include-resolution",
                         f'"{target}" resolves against neither src/ nor the including dir')

    # Names declared anywhere in src/ as unordered containers: iteration
    # sites usually live in the .cpp while the member lives in the .hpp,
    # so the name set is collected tree-wide first.
    unordered_names = set()
    for path in source_files(SRC, {".hpp", ".h", ".cpp"}):
        with open(path, encoding="utf-8") as f:
            for raw in f:
                m = UNORDERED_DECL.search(strip_comments(raw))
                if m:
                    unordered_names.add(m.group(1))

    # Behavioural bans: src/ only (tests may legitimately poke the host).
    for path in source_files(SRC, {".hpp", ".h", ".cpp"}):
        with open(path, encoding="utf-8") as f:
            lines = f.readlines()
        global_state_pass(path, lines, flag)
        prev_code = ""
        for i, raw in enumerate(lines, 1):
            if "NOLINT" in raw:
                prev_code = strip_comments(raw)
                continue
            code = strip_comments(raw)
            if (WALL_CLOCK.search(code)
                    and os.path.relpath(path, ROOT) not in WALL_CLOCK_EXEMPT):
                flag(path, i, "no-wall-clock",
                     "host clock call in simulation code (use Engine::now(); "
                     "host-time profiling belongs in src/sim/prof.* — rule 10)")
            if RAND.search(code):
                flag(path, i, "no-rand", "unseeded C randomness (use seeded std::mt19937)")
            m = NAKED_NEW.search(code)
            if m:
                window = prev_code + code[: m.start()]
                if "_ptr<" not in window and "_ptr (" not in window:
                    flag(path, i, "no-naked-new",
                         "raw new outside a smart-pointer constructor")
            m = REF_CAPTURE.search(code)
            if m and POST_CALL.search(prev_code + code[: m.start()]):
                flag(path, i, "post-ref-capture",
                     "[&] default capture in a lambda handed to Engine::post "
                     "(deferred + reorderable: capture explicitly)")
            m = RANGE_FOR.search(code)
            if m and m.group(1) in unordered_names:
                flag(path, i, "unordered-iteration",
                     f"range-for over unordered container '{m.group(1)}' "
                     "(hash order is not deterministic; use an ordered container "
                     "or NOLINT with a rationale)")
            if SWITCH_CONSTRUCT.search(code) and not path.startswith(
                    os.path.join(SRC, "topo") + os.sep):
                flag(path, i, "switch-construction",
                     "hw::Switch is built only by the topo::Topology builders "
                     "(they own ids, LFTs and endpoint reservations); take a "
                     "Topology instead, or NOLINT with a rationale")
            if (STD_FUNCTION.search(code) and path.endswith((".hpp", ".h"))
                    and path.startswith((os.path.join(SRC, "sim") + os.sep,
                                         os.path.join(SRC, "hw") + os.sep))):
                flag(path, i, "no-stdfunction",
                     "std::function in a sim/hw header (heap-allocates past the "
                     "SBO, breaking the zero-alloc dispatch contract); use "
                     "sim::InplaceFn, a template parameter, or a concrete "
                     "functor, or NOLINT with a rationale")
            if SWITCH_FAILURE_SEAM.search(code) and not path.startswith(
                    (os.path.join(SRC, "topo") + os.sep,
                     os.path.join(SRC, "fault") + os.sep)):
                flag(path, i, "switch-failure-seam",
                     "hw::Switch failure controls are driven only by src/topo/ "
                     "and src/fault/ (reroute-then-drain ordering and credit "
                     "accounting live there); go through topo::Topology, or "
                     "NOLINT with a rationale")
            prev_code = code
    return problems


def main():
    global ROOT, SRC
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=ROOT,
                        help="tree to lint (default: this repo; the linter "
                             "self-tests point it at fixture trees)")
    args = parser.parse_args()
    ROOT = os.path.abspath(args.root)
    SRC = os.path.join(ROOT, "src")
    problems = lint()
    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        print(f"conventions_lint: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("conventions_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

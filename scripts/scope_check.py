#!/usr/bin/env python3
"""FabricScope-Check: scope/ownership static analyzer for Engine::post sites.

The parallel-engine plan (ROADMAP item 3) and FabricExplore's DPOR
reduction both trust the `scope` label on `Engine::post(at, scope, fn)`:
`ready_events_commute` (src/sim/schedule.hpp) treats two co-enabled
events with different non-negative scopes as commuting. That is only
sound if a scope-labelled continuation really touches nothing but the
labelled node's state. This tool proves the labels honest, whole-tree,
without compiling:

Pass A - annotations. Parse every class/struct in src/ and collect the
    FABSIM_OWNED_BY(expr) / FABSIM_SHARED / FABSIM_ENGINE_LOCAL section
    markers (src/sim/scope.hpp) from their member declarations, giving
    each annotated class an ownership summary: which node expression
    owns its mutable state, and whether it holds cross-node shared
    state.

Pass B - call sites. Find every `.post(` / `->post(` call in src/ and
    parse its argument list (balanced, multi-line). Two-argument calls
    are implicitly scope -1 (no confinement claim - nothing to prove).
    Three-argument calls yield a scope expression; a
    FABSIM_MUTATION_SCOPE(clean, mutated, armed) seam contributes its
    `clean` arm normally and its `mutated` arm under --mutation, which
    is how CI proves this gate can actually fail.

Pass C - capture classification. For each confinement-claiming site,
    resolve the lambda's explicit capture list (conventions_lint rule 6
    bans [&], so captures are enumerable) and classify every capture:
      this           -> the enclosing class's ownership summary must
                        support the claim: its FABSIM_OWNED_BY expr must
                        match the scope expr, and it must not carry
                        FABSIM_SHARED state
      x = std::move(e) -> lambda-owned value: safe
      x (plain)      -> declared type resolved from the enclosing
                        function (params + locals): value copies are
                        safe; pointers/references claim foreign state
      &x             -> reference capture under a confinement claim:
                        unsupported
    Captures the analyzer cannot prove safe fail the site unless the
    call carries an inline `// SCOPE-OK(rationale)` waiver - same
    policy as NOLINT in conventions_lint: allowed, but only with a
    written rationale (recorded in the report).

Pass D - dynamic corroboration. Every class whose `this` lands in a
    confined-scope lambda must have a FABSIM_AUDIT_OWNED trap in its
    implementation, and every FABSIM_SHARED class captured anywhere
    must have a FABSIM_AUDIT_SHARED trap, so the ScopeAuditor
    cross-checks each static verdict on real traffic under FABSIM_CHECK.

Artifacts: results/scope_report.json (per-site records + summary).
Exit status: 0 clean, 1 violations found (or, with --expect-violations,
0 iff violations were found - the mutation gate's polarity).
"""
import argparse
import json
import os
import re
import sys

DEFAULT_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MARKER = re.compile(
    r"FABSIM_OWNED_BY\s*\(|FABSIM_SHARED\s*;|FABSIM_ENGINE_LOCAL\s*;"
)
POST_CALL = re.compile(r"(?:->|\.)\s*post\s*\(")  # post_resume does not match
CLASS_DEF = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)\b")
SCOPE_OK = re.compile(r"SCOPE-OK\(([^)\n]*)\)")
MOVE_INIT = re.compile(r"^\s*[A-Za-z_]\w*\s*=\s*std::move\s*\(")
METHOD_DEF = re.compile(r"([A-Za-z_]\w*)\s*::\s*~?[A-Za-z_]\w*\s*\($")

OPEN_OF = {")": "(", "]": "[", "}": "{"}


def mask_comments_and_strings(text):
    """Replace comments and string/char literals with spaces (offsets kept)."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            for k in range(i, min(j + 1, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def matching(masked, start, open_ch, close_ch):
    """Offset of the close matching masked[start] == open_ch, or -1."""
    depth = 0
    for i in range(start, len(masked)):
        c = masked[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


def split_top_level(masked_text):
    """Split on commas at bracket depth zero; returns (start, end) spans."""
    spans, depth, begin = [], 0, 0
    for i, c in enumerate(masked_text):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            spans.append((begin, i))
            begin = i + 1
    spans.append((begin, len(masked_text)))
    return spans


def normalize_expr(raw_text):
    """Strip comments and all whitespace from an expression."""
    no_block = re.sub(r"/\*.*?\*/", "", raw_text, flags=re.S)
    no_line = re.sub(r"//[^\n]*", "", no_block)
    return re.sub(r"\s+", "", no_line)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def source_files(top, exts=(".hpp", ".h", ".cpp")):
    for dirpath, dirnames, names in os.walk(top):
        dirnames.sort()
        # Fixture trees are deliberately dirty; skip them unless they ARE
        # the scan root (the self-tests point --root at one).
        if "lint_fixtures" in os.path.relpath(dirpath, top).split(os.sep):
            continue
        for name in sorted(names):
            if os.path.splitext(name)[1] in exts:
                yield os.path.join(dirpath, name)


class SourceFile:
    def __init__(self, path, root):
        self.path = path
        self.rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            self.raw = f.read()
        self.masked = mask_comments_and_strings(self.raw)
        self.lines = self.raw.splitlines()


class ClassInfo:
    def __init__(self, name, src, start, end):
        self.name = name
        self.src = src
        self.start = start  # offset of the class body's '{'
        self.end = end
        self.owners = []        # FABSIM_OWNED_BY expressions, in order
        self.shared = False
        self.engine_local = False

    @property
    def annotated(self):
        return bool(self.owners) or self.shared or self.engine_local


def collect_classes(src):
    """Class/struct definitions with body offsets, innermost-resolvable."""
    classes = []
    for m in CLASS_DEF.finditer(src.masked):
        # Walk to the first of '{' or ';' after the head; ';' means a
        # forward declaration (or data member like `class X* p;`).
        i = m.end()
        while i < len(src.masked) and src.masked[i] not in "{;":
            # A '(' before the brace means this was `struct tm buf(...)`
            # or similar expression context - not a definition.
            if src.masked[i] == "(":
                i = -1
                break
            i += 1
        if i < 0 or i >= len(src.masked) or src.masked[i] != "{":
            continue
        end = matching(src.masked, i, "{", "}")
        if end < 0:
            continue
        classes.append(ClassInfo(m.group(2), src, i, end))
    return classes


def innermost_class(classes, offset):
    best = None
    for c in classes:
        if c.start < offset < c.end:
            if best is None or c.start > best.start:
                best = c
    return best


def collect_markers(src, classes, problems):
    for m in re.finditer(r"FABSIM_OWNED_BY\s*\(", src.masked):
        close = matching(src.masked, m.end() - 1, "(", ")")
        if close < 0:
            continue
        owner = normalize_expr(src.raw[m.end():close])
        cls = innermost_class(classes, m.start())
        if cls is None:
            problems.append((src.rel, line_of(src.raw, m.start()), "marker_outside_class",
                             "FABSIM_OWNED_BY marker outside any class body"))
            continue
        cls.owners.append(owner)
    for pattern, attr in ((r"FABSIM_SHARED\s*;", "shared"),
                          (r"FABSIM_ENGINE_LOCAL\s*;", "engine_local")):
        for m in re.finditer(pattern, src.masked):
            cls = innermost_class(classes, m.start())
            if cls is None:
                problems.append((src.rel, line_of(src.raw, m.start()), "marker_outside_class",
                                 "scope marker outside any class body"))
                continue
            setattr(cls, attr, True)


def enclosing_function(src, offset):
    """(class_name, function_text_up_to_offset) for the def containing offset.

    Function definitions in this tree start at column 0 and name their
    class (`Type Class::method(...)`); the nearest such line above the
    call site opens the enclosing definition.
    """
    upto = src.raw[:offset]
    lines = upto.splitlines()
    for i in range(len(lines) - 1, -1, -1):
        line = lines[i]
        if not line or line[0] in " \t}#/":
            continue
        head = line
        # Allow the parameter list to open on this line or the next.
        m = re.search(r"([A-Za-z_]\w*)\s*::\s*~?[A-Za-z_]\w*\s*\(", head)
        if m and not head.rstrip().endswith(";"):
            return m.group(1), "\n".join(lines[i:])
        if re.match(r"[A-Za-z_][\w:<>,&*\s]*\s[A-Za-z_]\w*\s*\(", head) and \
                not head.rstrip().endswith(";"):
            return None, "\n".join(lines[i:])
    return None, upto


# Declaration of `name` as a typed local/parameter. The type group is
# deliberately loose; only its *s and &s matter for classification.
def find_decl_type(function_text, name):
    decl = re.compile(
        r"(?:^|[(,;{]|\bconst\s)\s*"
        r"((?:const\s+)?[A-Za-z_][\w:]*(?:<[^;{}]*?>)?(?:\s*const)?[\s*&]+)"
        rf"{re.escape(name)}\s*(?:=|;|,|\)|\{{|\[)", re.M)
    last = None
    for m in decl.finditer(function_text):
        type_text = m.group(1)
        if type_text.split()[0] in ("return", "delete", "new", "case", "goto", "else"):
            continue
        last = type_text
    return last


def classify_capture(cap_raw, function_text, class_info):
    """-> (verdict, detail). Verdicts: ok / needs_waiver / violation."""
    cap = cap_raw.strip()
    if not cap:
        return "ok", "empty capture list"
    if cap == "this":
        if class_info is None:
            return "needs_waiver", "`this` captured but the enclosing class is unknown"
        if not class_info.annotated:
            return "needs_waiver", (f"`this` of {class_info.name} captured but the class "
                                    "carries no scope/ownership annotations")
        return "this", ""  # resolved against the class summary by the caller
    if cap.startswith("&"):
        return "needs_waiver", f"by-reference capture `{cap}` under a confinement claim"
    if cap == "*this":
        return "needs_waiver", "`*this` copy capture (copies foreign pointers wholesale)"
    if MOVE_INIT.match(cap):
        return "ok", "lambda-owned (init from std::move)"
    if "=" in cap:
        name, init = cap.split("=", 1)
        init = init.strip()
        # Copy-init from a plain identifier: classify like a plain capture
        # of that identifier; anything deeper is beyond this resolver.
        if re.fullmatch(r"[A-Za-z_]\w*", init):
            cap = init
        else:
            return "needs_waiver", f"init-capture from unresolved expression `{init}`"
    if not re.fullmatch(r"[A-Za-z_]\w*", cap):
        return "needs_waiver", f"unparsable capture `{cap_raw.strip()}`"
    decl = find_decl_type(function_text, cap)
    if decl is None:
        return "needs_waiver", f"no declaration found for captured `{cap}`"
    if "*" in decl or "&" in decl:
        return "needs_waiver", f"`{cap}` declared `{decl.strip()}` - points at foreign state"
    return "ok", f"value copy (`{decl.strip()} {cap}`)"


def classify_this(class_info, scope_norm):
    if class_info.shared:
        return "violation", (
            f"`this` of {class_info.name} captured under scope `{scope_norm}` but the class "
            "holds FABSIM_SHARED state (shared state requires scope -1)")
    if not class_info.owners:
        return "needs_waiver", (
            f"`this` of {class_info.name} captured under scope `{scope_norm}` but the class "
            "declares no FABSIM_OWNED_BY section")
    for owner in class_info.owners:
        if owner == scope_norm:
            return "ok", f"{class_info.name} state is FABSIM_OWNED_BY({owner})"
    return "violation", (
        f"`this` of {class_info.name} captured under scope `{scope_norm}` but its state is "
        f"FABSIM_OWNED_BY({', '.join(class_info.owners)})")


def parse_mutation_scope(scope_norm, mutation):
    """FABSIM_MUTATION_SCOPE(clean, mutated, armed) -> selected arm."""
    inner = scope_norm[len("FABSIM_MUTATION_SCOPE("):-1]
    args, depth, begin = [], 0, 0
    for i, c in enumerate(inner):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            args.append(inner[begin:i])
            begin = i + 1
    args.append(inner[begin:])
    if len(args) != 3:
        return None
    return args[1] if mutation else args[0]


def analyze(root, mutation):
    src_root = os.path.join(root, "src")
    problems = []          # (rel, line, rule, detail)
    classes_by_name = {}   # name -> [ClassInfo]
    sources = []

    for path in source_files(src_root):
        if os.path.join("src", "sim", "scope.hpp") in os.path.relpath(path, root):
            continue  # the marker definitions themselves
        src = SourceFile(path, root)
        sources.append(src)
        file_classes = collect_classes(src)
        collect_markers(src, file_classes, problems)
        for cls in file_classes:
            classes_by_name.setdefault(cls.name, []).append(cls)

    def resolve_class(name, site_dir):
        candidates = classes_by_name.get(name, [])
        same_dir = [c for c in candidates if os.path.dirname(c.src.path) == site_dir]
        pool = same_dir or candidates
        annotated = [c for c in pool if c.annotated]
        pool = annotated or pool
        return pool[0] if pool else None

    sites = []
    post_total = 0
    confined_this = {}   # class name -> ClassInfo (pass D: owned traps)
    shared_captured = {} # class name -> ClassInfo (pass D: shared traps)

    for src in sources:
        for m in POST_CALL.finditer(src.masked):
            open_paren = src.masked.index("(", m.end() - 1)
            close = matching(src.masked, open_paren, "(", ")")
            if close < 0:
                continue
            post_total += 1
            arg_text = src.masked[open_paren + 1:close]
            spans = split_top_level(arg_text)
            line = line_of(src.raw, m.start())
            record = {"file": src.rel, "line": line, "captures": [], "verdict": "ok"}
            if len(spans) < 3:
                record["scope"] = "-1 (implicit)"
                record["verdict"] = "unscoped"
                sites.append(record)
                continue

            s_begin, s_end = spans[1]
            scope_norm = normalize_expr(
                src.raw[open_paren + 1 + s_begin:open_paren + 1 + s_end])
            record["mutation_seam"] = scope_norm.startswith("FABSIM_MUTATION_SCOPE(")
            if record["mutation_seam"]:
                arm = parse_mutation_scope(scope_norm, mutation)
                if arm is None:
                    problems.append((src.rel, line, "bad_mutation_seam",
                                     "FABSIM_MUTATION_SCOPE needs exactly 3 arguments"))
                    record["verdict"] = "violation"
                    sites.append(record)
                    continue
                scope_norm = arm
            record["scope"] = scope_norm
            if re.fullmatch(r"-\d+", scope_norm) or scope_norm == "(-1)":
                record["verdict"] = "unscoped"
                sites.append(record)
                continue

            # The confinement-claiming site: find the lambda's captures.
            fn_begin, fn_end = spans[-1]
            fn_masked = arg_text[fn_begin:fn_end]
            lb = fn_masked.find("[")
            waiver = SCOPE_OK.search(
                src.raw[m.start():open_paren + 1 + fn_begin +
                        (fn_masked.find("]", lb) + 1 if lb >= 0 else 0)])
            rationale = waiver.group(1).strip() if waiver else None
            if waiver and not rationale:
                problems.append((src.rel, line, "empty_waiver",
                                 "SCOPE-OK() requires a written rationale"))
            class_name, function_text = enclosing_function(src, m.start())
            class_info = resolve_class(class_name, os.path.dirname(src.path)) \
                if class_name else None

            if lb < 0:
                verdicts = [("needs_waiver", "callable is not an inline lambda; "
                             "captures cannot be enumerated")]
                cap_texts = [normalize_expr(fn_masked)[:40]]
            else:
                rb = matching(fn_masked, lb, "[", "]")
                cap_list = fn_masked[lb + 1:rb]
                cap_spans = split_top_level(cap_list) if cap_list.strip() else []
                cap_texts, verdicts = [], []
                for c_begin, c_end in cap_spans:
                    cap_raw = src.raw[open_paren + 1 + fn_begin + lb + 1 + c_begin:
                                      open_paren + 1 + fn_begin + lb + 1 + c_end]
                    cap_texts.append(cap_raw.strip())
                    v = classify_capture(cap_raw, function_text, class_info)
                    if v[0] == "this":
                        v = classify_this(class_info, scope_norm)
                        if class_info is not None:
                            if class_info.shared:
                                shared_captured[class_info.name] = class_info
                            else:
                                confined_this[class_info.name] = class_info
                    verdicts.append(v)

            for cap, (verdict, detail) in zip(cap_texts, verdicts):
                entry = {"capture": cap, "verdict": verdict, "detail": detail}
                if verdict == "needs_waiver":
                    if rationale:
                        entry["verdict"] = "waived"
                        entry["rationale"] = rationale
                    else:
                        entry["verdict"] = "violation"
                        problems.append((src.rel, line, "unprovable_capture",
                                         f"scope `{scope_norm}`: {detail} "
                                         "(prove it or add // SCOPE-OK(rationale))"))
                elif verdict == "violation":
                    problems.append((src.rel, line, "scope_mismatch", detail))
                record["captures"].append(entry)
            if any(c["verdict"] == "violation" for c in record["captures"]):
                record["verdict"] = "violation"
            elif any(c["verdict"] == "waived" for c in record["captures"]):
                record["verdict"] = "waived"
            sites.append(record)

    # Pass D: every statically-trusted class must carry its dynamic trap.
    def has_trap(cls, macro):
        for src in sources:
            if f"{cls.name}::" in src.masked and macro in src.masked:
                return True
        return False

    for name, cls in sorted(confined_this.items()):
        if not has_trap(cls, "FABSIM_AUDIT_OWNED"):
            problems.append((cls.src.rel, line_of(cls.src.raw, cls.start),
                             "missing_dynamic_trap",
                             f"{name} is captured into confined-scope events but has no "
                             "FABSIM_AUDIT_OWNED trap for the ScopeAuditor to corroborate"))
    for name, cls in sorted(shared_captured.items()):
        if not has_trap(cls, "FABSIM_AUDIT_SHARED"):
            problems.append((cls.src.rel, line_of(cls.src.raw, cls.start),
                             "missing_dynamic_trap",
                             f"{name} holds FABSIM_SHARED state but has no "
                             "FABSIM_AUDIT_SHARED trap for the ScopeAuditor to corroborate"))

    all_classes = [c for lst in classes_by_name.values() for c in lst]
    report = {
        "generated_by": "scripts/scope_check.py",
        "mode": "mutation" if mutation else "clean",
        "summary": {
            "files_scanned": len(sources),
            "post_sites": post_total,
            "scoped_sites": sum(1 for s in sites if s["verdict"] != "unscoped"),
            "waived_sites": sum(1 for s in sites if s["verdict"] == "waived"),
            "classes_seen": len(all_classes),
            "classes_annotated": sum(1 for c in all_classes if c.annotated),
            "violations": len(problems),
        },
        "classes": {
            f"{c.src.rel}:{c.name}": {
                "owned_by": c.owners,
                "shared": c.shared,
                "engine_local": c.engine_local,
            }
            for c in sorted(all_classes, key=lambda c: (c.src.rel, c.start))
            if c.annotated
        },
        "sites": sites,
        "violations": [
            {"file": f, "line": l, "rule": r, "detail": d} for f, l, r, d in problems
        ],
    }
    return report, problems


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=DEFAULT_ROOT,
                        help="repo root to analyze (default: this repo)")
    parser.add_argument("--mutation", action="store_true",
                        help="read the mutated arm of FABSIM_MUTATION_SCOPE seams")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (default: results/scope_report.json "
                             "under --root; '-' to skip)")
    parser.add_argument("--expect-violations", action="store_true",
                        help="invert the exit status: succeed iff violations were found "
                             "(the mutation self-test gate)")
    args = parser.parse_args()

    report, problems = analyze(os.path.abspath(args.root), args.mutation)

    out = args.out
    if out is None:
        out = os.path.join(args.root, "results", "scope_report.json")
    if out != "-":
        os.makedirs(os.path.dirname(out), exist_ok=True)
        with open(out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=False)
            f.write("\n")

    for rel, line, rule, detail in problems:
        print(f"{rel}:{line}: [{rule}] {detail}", file=sys.stderr)
    s = report["summary"]
    status = (f"scope_check[{report['mode']}]: {s['post_sites']} post sites "
              f"({s['scoped_sites']} scoped, {s['waived_sites']} waived), "
              f"{s['classes_annotated']} annotated classes, {len(problems)} violation(s)")
    if args.expect_violations:
        if problems:
            print(status + " - expected, gate can fail")
            return 0
        print(status + " - but violations were EXPECTED (mutation not caught)",
              file=sys.stderr)
        return 1
    if problems:
        print(status, file=sys.stderr)
        return 1
    print(status)
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_engine.json trajectory.

Usage: assert_perf.py [trajectory-json] [--threshold 0.25] [--warn-only]

Companion to assert_clean.py: where that gate fails on broken reports,
this one fails on a *slower* engine. It compares the newest trajectory
record (appended by scripts/bench_engine.py) against the previous
recorded commit:

  * Any benchmark whose events_per_sec dropped by more than
    ``--threshold`` (default 25%) is a regression. With ``--warn-only``
    regressions are printed but do not fail the gate — shared CI runners
    are too noisy for a hard wall-clock gate, while a developer running
    run_all.sh locally gets the hard failure.

Hard failures that ``--warn-only`` does NOT soften (these mean the
instrument itself is broken, not that the machine is slow):

  * the trajectory file is missing, corrupt, or empty;
  * any record is schema-incomplete — every record must carry commit,
    date and config, or trajectory comparisons silently lose their
    provenance (which machine, which preset, when);
  * the newest record carries no benchmarks at all;
  * any recorded events_per_sec is zero or negative — a workload that
    dispatched nothing produced no measurement.

A single-record trajectory (fresh baseline) passes: there is nothing to
compare against yet.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trajectory", nargs="?", default="BENCH_engine.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional events/sec drop that counts as a regression")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions without failing (noisy shared runners)")
    args = parser.parse_args()

    try:
        with open(args.trajectory, encoding="utf-8") as f:
            trajectory = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"assert_perf: cannot read {args.trajectory}: {e}", file=sys.stderr)
        return 1
    if not isinstance(trajectory, list) or not trajectory:
        print(f"assert_perf: {args.trajectory} holds no records", file=sys.stderr)
        return 1

    schema_bad = 0
    for idx, record in enumerate(trajectory):
        for field, kind in (("commit", str), ("date", str), ("config", dict)):
            if not isinstance(record.get(field), kind):
                print(f"assert_perf: record {idx} ({record.get('commit')}) is "
                      f"schema-incomplete: missing/invalid '{field}'", file=sys.stderr)
                schema_bad += 1
    if schema_bad:
        return 1

    newest = trajectory[-1]
    benches = newest.get("benchmarks", {})
    if not benches:
        print(f"assert_perf: newest record ({newest.get('commit')}) has no benchmarks",
              file=sys.stderr)
        return 1

    hard_bad = 0
    for name, entry in sorted(benches.items()):
        rate = entry.get("events_per_sec")
        if rate is None:
            continue
        if rate <= 0:
            print(f"assert_perf: {name}: events_per_sec = {rate} — no measurement",
                  file=sys.stderr)
            hard_bad += 1
    if not any("events_per_sec" in e for e in benches.values()):
        print("assert_perf: newest record has no events_per_sec figures", file=sys.stderr)
        hard_bad += 1
    if hard_bad:
        return 1

    if len(trajectory) < 2:
        print(f"assert_perf: single record ({newest.get('commit')}) — baseline, nothing to "
              "compare against")
        return 0

    previous = trajectory[-2]
    prev_benches = previous.get("benchmarks", {})
    regressions = []
    for name, entry in sorted(benches.items()):
        new_rate = entry.get("events_per_sec")
        old_rate = prev_benches.get(name, {}).get("events_per_sec")
        if new_rate is None or old_rate is None or old_rate <= 0:
            continue
        change = new_rate / old_rate - 1.0
        marker = ""
        if change < -args.threshold:
            regressions.append(name)
            marker = "  <-- REGRESSION"
        print(f"assert_perf: {name}: {old_rate / 1e6:.2f} -> {new_rate / 1e6:.2f} M events/sec "
              f"({change:+.1%}){marker}")

    if regressions:
        verdict = (f"assert_perf: {len(regressions)} benchmark(s) regressed more than "
                   f"{args.threshold:.0%} vs {previous.get('commit')}")
        if args.warn_only:
            print(f"{verdict} (warn-only)", file=sys.stderr)
            return 0
        print(verdict, file=sys.stderr)
        return 1
    print(f"assert_perf: clean vs {previous.get('commit')} "
          f"(threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Determinism verifier. Runs representative benches twice — a lossless
# MPI latency sweep, the fault-injection suite (fixed seed, so the
# drop schedule is part of the contract), and the multi-switch incast
# sweep (64 endpoints over a 2-level Clos, so LFT routing and per-port
# queues are part of the fingerprint) — and requires the two runs to
# be byte-identical: same report JSON, and in particular the same
# sim.digest (the engine's FNV-1a fold over every (time, seq) event it
# dispatched) for every cluster the benches fingerprinted.
#
# Usage: scripts/check_determinism.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
if [[ ! -d "$build/bench" ]]; then
  cmake -B "$build" -G Ninja
  cmake --build "$build"
fi

# ext_chaos additionally self-checks: one invocation runs its probe
# scenario three times from the same seed and exits non-zero unless all
# three sim.digests are identical, so chaos failover (LFT reroute,
# drain/requeue, retry exhaustion) is part of the determinism contract.
benches=(fig3_mpi_latency ext_faults ext_incast ext_chaos)
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

for round in 1 2; do
  mkdir -p "$scratch/run$round/results"
  for bench in "${benches[@]}"; do
    echo "== round $round: $bench =="
    (cd "$scratch/run$round" && "$OLDPWD/$build/bench/$bench" quick >/dev/null)
  done
done

# Benches may name their quick-mode report "<bench>_quick" to keep it
# distinct from the full sweep's artifacts.
report_of() {
  if [[ -f "$scratch/run1/results/$1.json" ]]; then echo "$1"; else echo "$1_quick"; fi
}

status=0
for bench in "${benches[@]}"; do
  report="$(report_of "$bench")"
  for ext in json csv; do
    a="$scratch/run1/results/$report.$ext"
    b="$scratch/run2/results/$report.$ext"
    if ! diff -q "$a" "$b" >/dev/null; then
      echo "NON-DETERMINISTIC: $bench.$ext differs between identical runs" >&2
      diff "$a" "$b" | head -20 >&2 || true
      status=1
    fi
  done
  digests=$(python3 - "$scratch/run1/results/$report.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
print(sum(1 for k in doc.get("metrics", {}) if k.endswith("sim.digest")))
EOF
)
  if [[ "$digests" -lt 1 ]]; then
    echo "MISSING: $bench.json carries no sim.digest metric" >&2
    status=1
  else
    echo "$bench: $digests digest(s) identical across runs"
  fi
done

if [[ "$status" == 0 ]]; then
  echo "determinism: OK"
fi
exit "$status"

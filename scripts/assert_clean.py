#!/usr/bin/env python3
"""Fail if a bench report recorded any FabricCheck violations.

Usage: assert_clean.py results/<bench>.json [...]

Scans the report's metrics section for every counter named
``check.violations`` (benches that run several clusters publish one per
collected registry) and exits non-zero when any is > 0, printing the
per-rule ``check.<layer>.<rule>`` counters so the failure is actionable.
Reports without check metrics (builds without FABSIM_CHECK, benches that
don't collect metrics) pass vacuously.
"""
import json
import sys


def main(paths):
    bad = 0
    for path in paths:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        metrics = doc.get("metrics", {})
        violations = {k: v for k, v in metrics.items() if k == "check.violations" and v}
        if violations:
            bad += 1
            print(f"{path}: FabricCheck violations detected", file=sys.stderr)
            for key, value in sorted(metrics.items()):
                if key.startswith("check.") and key != "check.violations" and value:
                    print(f"  {key} = {value:g}", file=sys.stderr)
    return 1 if bad else 0


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    sys.exit(main(sys.argv[1:]))

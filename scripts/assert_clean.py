#!/usr/bin/env python3
"""Fail if a bench report is missing, empty, or recorded FabricCheck
violations.

Usage: assert_clean.py results/<bench>.json [...]

Three checks per report, all of which must hold:

  1. The file exists and parses as JSON — a bench that crashed before
     writing its report must not pass the gate by absence.
  2. At least one ``sim.events`` metric is present and non-zero — a
     report whose clusters processed zero events means the workload
     never ran (a silently-broken bench is indistinguishable from a
     clean one without this).
  3. Every counter named ``check.violations`` (bare or registry-prefixed,
     e.g. ``iWARP.check.violations``) is zero; the per-rule
     ``check.<layer>.<rule>`` counters are printed so the failure is
     actionable.

Reports without any metrics section still fail check 2: every bench in
this tree collects metrics, so an empty section is a regression, not a
configuration choice.
"""
import json
import os
import sys


def main(paths):
    bad = 0
    for path in paths:
        if not os.path.exists(path):
            print(f"{path}: missing — the bench did not write its report", file=sys.stderr)
            bad += 1
            continue
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: unreadable report ({e})", file=sys.stderr)
            bad += 1
            continue
        metrics = doc.get("metrics", {})

        events = {k: v for k, v in metrics.items() if k.endswith("sim.events")}
        if not events or all(v == 0 for v in events.values()):
            print(f"{path}: no non-zero sim.events metric — the workload never ran",
                  file=sys.stderr)
            bad += 1

        violations = {k: v for k, v in metrics.items()
                      if k.endswith("check.violations") and v}
        if violations:
            bad += 1
            print(f"{path}: FabricCheck violations detected", file=sys.stderr)
            for key, value in sorted(metrics.items()):
                if ".check." in f".{key}" and not key.endswith("check.violations") and value:
                    print(f"  {key} = {value:g}", file=sys.stderr)
    return 1 if bad else 0


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    sys.exit(main(sys.argv[1:]))

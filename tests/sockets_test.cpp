// Tests of the host-based TCP sockets stack (the paper's future-work
// baseline): stream semantics, integrity, latency class, and the gap
// to the offloaded iWARP path on the very same wire.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/calibration.hpp"
#include "core/runners.hpp"
#include "hw/fabric.hpp"
#include "hw/node.hpp"
#include "sockets/host_tcp.hpp"

namespace fabsim::sockets {
namespace {

struct World {
  World()
      : fabric(engine, core::iwarp_profile().switch_cfg),
        node0(engine, 0, core::iwarp_profile().pcie, core::xeon_cpu()),
        node1(engine, 1, core::iwarp_profile().pcie, core::xeon_cpu()),
        tcp0(node0, fabric),
        tcp1(node1, fabric) {
    auto pair = HostTcp::connect(tcp0, tcp1);
    sock0 = std::move(pair.first);
    sock1 = std::move(pair.second);
  }

  Engine engine;
  hw::Switch fabric;
  hw::Node node0, node1;
  HostTcp tcp0, tcp1;
  std::unique_ptr<Socket> sock0, sock1;
};

std::vector<std::byte> pattern(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>((i * 59 + 3) & 0xff);
  return v;
}

TEST(Sockets, StreamIntegrityAcrossSegments) {
  World w;
  const std::uint32_t len = 100'000;  // crosses many MSS boundaries
  auto& src = w.node0.mem().alloc(len);
  auto& dst = w.node1.mem().alloc(len);
  const auto payload = pattern(len);
  std::memcpy(w.node0.mem().window(src.addr(), len).data(), payload.data(), len);

  w.engine.spawn([](World& world, std::uint64_t s, std::uint32_t n) -> Task<> {
    co_await world.sock0->send(s, n);
  }(w, src.addr(), len));
  w.engine.spawn([](World& world, std::uint64_t d, std::uint32_t n) -> Task<> {
    std::uint32_t got = 0;
    while (got < n) got += co_await world.sock1->recv(d + got, n - got);
    EXPECT_EQ(got, n);
  }(w, dst.addr(), len));
  w.engine.run();
  EXPECT_EQ(w.engine.live_processes(), 0u);

  auto view = w.node1.mem().window(dst.addr(), len);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), len), 0);
}

TEST(Sockets, RecvReturnsPartialData) {
  World w;
  auto& src = w.node0.mem().alloc(1024);
  auto& dst = w.node1.mem().alloc(1024);
  w.engine.spawn([](World& world, std::uint64_t s, std::uint64_t d) -> Task<> {
    auto send = [](World& ww, std::uint64_t addr) -> Task<> {
      co_await ww.sock0->send(addr, 100);
    };
    world.engine.spawn(send(world, s));
    // A 300-byte recv must return with the 100 bytes that exist.
    const std::uint32_t got = co_await world.sock1->recv(d, 300);
    EXPECT_EQ(got, 100u);
  }(w, src.addr(), dst.addr()));
  w.engine.run();
  EXPECT_EQ(w.engine.live_processes(), 0u);
}

TEST(Sockets, PingPongLatencyClass) {
  World w;
  auto& b0 = w.node0.mem().alloc(64, false);
  auto& b1 = w.node1.mem().alloc(64, false);
  Time elapsed = 0;
  const int iters = 30;

  w.engine.spawn([](World& world, std::uint64_t addr, int n, Time* out) -> Task<> {
    const Time start = world.engine.now();
    for (int i = 0; i < n; ++i) {
      co_await world.sock0->send(addr, 8);
      std::uint32_t got = 0;
      while (got < 8) got += co_await world.sock0->recv(addr, 64);
    }
    *out = world.engine.now() - start;
  }(w, b0.addr(), iters, &elapsed));
  w.engine.spawn([](World& world, std::uint64_t addr, int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      std::uint32_t got = 0;
      while (got < 8) got += co_await world.sock1->recv(addr, 64);
      co_await world.sock1->send(addr, 8);
    }
  }(w, b1.addr(), iters));
  w.engine.run();

  const double half_rtt = to_us(elapsed) / iters / 2.0;
  // Host-based 10GbE sockets of that era: tens of microseconds.
  EXPECT_GT(half_rtt, 15.0);
  EXPECT_LT(half_rtt, 50.0);
  // The headline claim of the whole paper: offloaded iWARP beats
  // host TCP on the same wire by a wide margin.
  const double iwarp = core::userlevel_pingpong_latency_us(core::iwarp_profile(), 8);
  EXPECT_GT(half_rtt, 2.0 * iwarp);
}

TEST(Sockets, BandwidthIsHostBound) {
  World w;
  const std::uint32_t len = 4 << 20;
  auto& src = w.node0.mem().alloc(len, false);
  auto& dst = w.node1.mem().alloc(len, false);
  Time elapsed = 0;

  w.engine.spawn([](World& world, std::uint64_t s, std::uint32_t n) -> Task<> {
    co_await world.sock0->send(s, n);
  }(w, src.addr(), len));
  w.engine.spawn([](World& world, std::uint64_t d, std::uint32_t n, Time* out) -> Task<> {
    const Time start = world.engine.now();
    std::uint32_t got = 0;
    while (got < n) got += co_await world.sock1->recv(d, n);
    *out = world.engine.now() - start;
  }(w, dst.addr(), len, &elapsed));
  w.engine.run();

  const double mbps = static_cast<double>(len) / to_us(elapsed);
  // Receiver-side per-segment CPU work caps throughput well below the
  // 10G line rate and below every offloaded stack.
  EXPECT_GT(mbps, 300.0);
  EXPECT_LT(mbps, 900.0);
}

TEST(Sockets, BidirectionalStreamsShareTheHost) {
  World w;
  const std::uint32_t len = 1 << 20;
  auto& a0 = w.node0.mem().alloc(len, false);
  auto& a1 = w.node1.mem().alloc(len, false);

  for (int dir = 0; dir < 2; ++dir) {
    w.engine.spawn([](World& world, int d, std::uint64_t addr, std::uint32_t n) -> Task<> {
      Socket& tx = d == 0 ? *world.sock0 : *world.sock1;
      Socket& rx = d == 0 ? *world.sock0 : *world.sock1;
      auto sender = [](Socket& s, std::uint64_t a, std::uint32_t m) -> Task<> {
        co_await s.send(a, m);
      };
      world.engine.spawn(sender(tx, addr, n));
      std::uint32_t got = 0;
      while (got < n) got += co_await rx.recv(addr, n);
    }(w, dir, dir == 0 ? a0.addr() : a1.addr(), len));
  }
  w.engine.run();
  EXPECT_EQ(w.engine.live_processes(), 0u);
}

}  // namespace
}  // namespace fabsim::sockets

// Edge-case tests for the simulation core: task lifetimes, exception
// paths, same-time ordering, resource fairness, engine re-entry.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"

namespace fabsim {
namespace {

TEST(EngineEdge, ExceptionBeforeFirstSuspensionSurfacesAtSpawn) {
  Engine engine;
  EXPECT_THROW(engine.spawn([]() -> Task<> {
                 throw std::runtime_error("early");
                 co_return;  // unreachable; makes this a coroutine
               }()),
               std::runtime_error);
  EXPECT_EQ(engine.live_processes(), 0u);
  engine.run();  // must be reusable afterwards
}

TEST(EngineEdge, NestedTaskExceptionPropagatesThroughAwaitChain) {
  Engine engine;
  bool caught = false;
  auto inner = [](Engine& e) -> Task<int> {
    co_await e.sleep(us(1));
    throw std::logic_error("deep");
  };
  auto middle = [inner](Engine& e) -> Task<int> {
    const int v = co_await inner(e);
    co_return v + 1;
  };
  engine.spawn([](Engine& e, auto mid, bool& flag) -> Task<> {
    try {
      (void)co_await mid(e);
    } catch (const std::logic_error&) {
      flag = true;
    }
  }(engine, middle, caught));
  engine.run();
  EXPECT_TRUE(caught);
}

TEST(EngineEdge, DestroyEngineWithSuspendedProcesses) {
  // RAII inside suspended frames must still run when the engine dies.
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  bool destroyed = false;
  {
    Engine engine;
    engine.spawn([](Engine& e, bool* flag) -> Task<> {
      Sentinel sentinel{flag};
      co_await e.sleep(sec(100));  // never resumed
      ADD_FAILURE() << "must not resume";
    }(engine, &destroyed));
    engine.run_until(us(1));
    EXPECT_EQ(engine.live_processes(), 1u);
  }
  EXPECT_TRUE(destroyed) << "suspended frame was not destroyed with the engine";
}

TEST(EngineEdge, JoinAfterCompletionIsImmediate) {
  Engine engine;
  Process p = engine.spawn([](Engine& e) -> Task<> { co_await e.sleep(us(1)); }(engine));
  engine.run();
  ASSERT_TRUE(p.done());
  Time at = 1;
  engine.spawn([](Engine& e, Process proc, Time& t) -> Task<> {
    co_await proc.join();
    t = e.now();
  }(engine, p, at));
  engine.run();
  EXPECT_EQ(at, us(1));  // no extra delay
}

TEST(EngineEdge, YieldPreservesFifoAmongPeers) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    engine.spawn([](Engine& e, std::vector<int>& out, int id) -> Task<> {
      for (int round = 0; round < 3; ++round) {
        out.push_back(id);
        co_await e.yield();
      }
    }(engine, order, i));
  }
  engine.run();
  // Every round interleaves all four in spawn order.
  ASSERT_EQ(order.size(), 12u);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(order[static_cast<std::size_t>(round * 4 + i)], i)
          << "round " << round << " position " << i;
    }
  }
}

TEST(EngineEdge, RunUntilIsResumable) {
  Engine engine;
  std::vector<Time> fired;
  for (int i = 1; i <= 5; ++i) {
    engine.post(us(i), [&fired, &engine] { fired.push_back(engine.now()); });
  }
  engine.run_until(us(2));
  EXPECT_EQ(fired.size(), 2u);
  engine.run_until(us(2));  // idempotent
  EXPECT_EQ(fired.size(), 2u);
  engine.run_until(us(10));
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_EQ(engine.now(), us(10));
}

TEST(SemaphoreEdge, FifoFairnessUnderContention) {
  Engine engine;
  Semaphore sem(engine, 2);
  std::vector<int> completion_order;
  for (int i = 0; i < 6; ++i) {
    engine.spawn([](Engine& e, Semaphore& s, std::vector<int>& out, int id) -> Task<> {
      // Stagger arrival so the queue order is well defined.
      co_await e.sleep(ns(id));
      co_await s.acquire();
      co_await e.sleep(us(5));
      out.push_back(id);
      s.release();
    }(engine, sem, completion_order, i));
  }
  engine.run();
  EXPECT_EQ(completion_order, (std::vector<int>{0, 1, 2, 3, 4, 5}))
      << "semaphore must serve waiters in arrival order";
}

TEST(MailboxEdge, MultipleBlockedReceiversServedInOrder) {
  Engine engine;
  Mailbox<int> box(engine);
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  for (int i = 0; i < 3; ++i) {
    engine.spawn([](Engine& e, Mailbox<int>& b, std::vector<std::pair<int, int>>& out,
                    int id) -> Task<> {
      co_await e.sleep(ns(id));  // deterministic wait order
      const int value = co_await b.recv();
      out.emplace_back(id, value);
    }(engine, box, got, i));
  }
  engine.spawn([](Engine& e, Mailbox<int>& b) -> Task<> {
    co_await e.sleep(us(1));
    b.send(100);
    b.send(200);
    b.send(300);
  }(engine, box));
  engine.run();
  EXPECT_EQ(got, (std::vector<std::pair<int, int>>{{0, 100}, {1, 200}, {2, 300}}));
}

TEST(PipelinedServerEdge, IdlePeriodsResetTheInterval) {
  PipelinedServer server;
  EXPECT_EQ(server.book(0, us(1), us(5)), us(5));
  // Arrive long after the pipeline drained: full latency again, no credit
  // from the idle gap.
  EXPECT_EQ(server.book(us(100), us(1), us(5)), us(105));
  EXPECT_EQ(server.book(us(100), us(1), us(5)), us(106));
}

TEST(SerialServerEdge, ZeroDurationJobsPreserveOrderAccounting) {
  SerialServer server;
  EXPECT_EQ(server.book(us(3), 0), us(3));
  EXPECT_EQ(server.book(us(1), us(2)), us(5));  // still behind the horizon
  EXPECT_EQ(server.jobs(), 2u);
}

TEST(TaskEdge, MoveSemantics) {
  Engine engine;
  auto make = [](Engine& e, int& out) -> Task<> {
    co_await e.sleep(us(1));
    out = 42;
  };
  int result = 0;
  Task<> task = make(engine, result);
  Task<> moved = std::move(task);
  EXPECT_FALSE(task.valid());  // NOLINT(bugprone-use-after-move): explicitly testing
  EXPECT_TRUE(moved.valid());
  engine.spawn(std::move(moved));
  engine.run();
  EXPECT_EQ(result, 42);
}

TEST(TaskEdge, UnstartedTaskDestroysCleanly) {
  bool touched = false;
  {
    Engine engine;
    auto task = [](Engine& e, bool& flag) -> Task<> {
      flag = true;  // must never run: the task is lazy
      co_await e.sleep(us(1));
    }(engine, touched);
    // falls out of scope without being awaited or spawned
  }
  EXPECT_FALSE(touched);
}

}  // namespace
}  // namespace fabsim

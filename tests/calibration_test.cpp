// Calibration lock-in: every headline number the paper quotes, plus the
// qualitative shapes of each figure. These tests are the contract between
// the simulator's mechanisms and the paper's findings — if a refactor
// breaks one, the reproduction has drifted.
#include <gtest/gtest.h>

#include "core/runners.hpp"

namespace fabsim::core {
namespace {

void expect_near_pct(double measured, double target, double pct, const char* what) {
  EXPECT_NEAR(measured, target, target * pct / 100.0) << what;
}

// ---------------------------------------------------------------------------
// Headline user-level numbers (paper Sec. 5 / abstract)
// ---------------------------------------------------------------------------

TEST(Calibration, UserLevelShortMessageLatency) {
  expect_near_pct(userlevel_pingpong_latency_us(iwarp_profile(), 4), 9.78, 4, "iWARP");
  expect_near_pct(userlevel_pingpong_latency_us(ib_profile(), 4), 4.53, 4, "IB");
  expect_near_pct(userlevel_pingpong_latency_us(mxoe_profile(), 4), 3.45, 4, "MXoE");
  expect_near_pct(userlevel_pingpong_latency_us(mxom_profile(), 4), 3.05, 4, "MXoM");
}

TEST(Calibration, UserLevelLatencyOrdering) {
  const double iw = userlevel_pingpong_latency_us(iwarp_profile(), 4);
  const double ib = userlevel_pingpong_latency_us(ib_profile(), 4);
  const double moe = userlevel_pingpong_latency_us(mxoe_profile(), 4);
  const double mom = userlevel_pingpong_latency_us(mxom_profile(), 4);
  // Myrinet wins latency; iWARP trails (paper conclusions).
  EXPECT_LT(mom, moe);
  EXPECT_LT(moe, ib);
  EXPECT_LT(ib, iw);
}

TEST(Calibration, UserLevelBandwidth) {
  const double iw = userlevel_bandwidth_mbps(iwarp_profile(), 4 << 20, 4);
  const double ib = userlevel_bandwidth_mbps(ib_profile(), 4 << 20, 4);
  const double mom = userlevel_bandwidth_mbps(mxom_profile(), 4 << 20, 4);
  expect_near_pct(iw, 880, 5, "iWARP ~83% of internal PCI-X");
  expect_near_pct(ib, 970, 3, "IB ~97% of 4X SDR");
  expect_near_pct(mom, 930, 5, "Myri-10G on forced PCIe x4");
  // InfiniBand is the bandwidth winner; iWARP is PCI-X-capped below MX.
  EXPECT_GT(ib, mom);
  EXPECT_GT(mom, iw);
  // Nothing beats its own physical ceiling.
  EXPECT_LT(iw, 1064.0);
  EXPECT_LT(ib, 1000.0);
  EXPECT_LT(mom, 1250.0);
}

// ---------------------------------------------------------------------------
// Headline MPI numbers (paper Sec. 6)
// ---------------------------------------------------------------------------

TEST(Calibration, MpiShortMessageLatency) {
  expect_near_pct(mpi_pingpong_latency_us(iwarp_profile(), 4), 10.7, 5, "iWARP MPI");
  expect_near_pct(mpi_pingpong_latency_us(ib_profile(), 4), 4.8, 6, "MVAPICH/IB");
  expect_near_pct(mpi_pingpong_latency_us(mxoe_profile(), 4), 3.6, 5, "MPICH-MX/E");
  expect_near_pct(mpi_pingpong_latency_us(mxom_profile(), 4), 3.3, 5, "MPICH-MX/M");
}

TEST(Calibration, MpiPeakBandwidths) {
  expect_near_pct(mpi_bidir_bw_mbps(iwarp_profile(), 1 << 20, 8), 856, 4, "iWARP bidi");
  expect_near_pct(mpi_bothway_bw_mbps(iwarp_profile(), 1 << 20, 12, 3), 950, 4,
                  "iWARP both-way: 89% of internal PCI-X");
  expect_near_pct(mpi_bothway_bw_mbps(ib_profile(), 1 << 20, 12, 3), 1780, 5,
                  "IB both-way: ~89% of 2 GB/s");
  const double mx_both = mpi_bothway_bw_mbps(mxom_profile(), 1 << 20, 12, 3);
  EXPECT_GT(mx_both, 1250.0) << "Myri both-way well above its one-way rate";
  EXPECT_LT(mx_both, 1550.0) << "~70% of 2 GB/s class";
}

TEST(Calibration, EagerRendezvousSwitchArtifacts) {
  // The protocol switch must be visible in the bandwidth curves at each
  // MPI's threshold (paper Sec. 6.2). iWARP shows the classic dip
  // between 4 and 8 KB; InfiniBand shows the "steeper slope at the
  // switching point"; MX switches inside the library at 32 KB (our eager
  // model charges the full copy up front, so the switch appears as an
  // upward step rather than a dip — see EXPERIMENTS.md).
  auto uni = [](const NetworkProfile& p, std::uint32_t m) {
    return mpi_unidir_bw_mbps(p, m, 16, 4);
  };
  EXPECT_LT(uni(iwarp_profile(), 8192), uni(iwarp_profile(), 4096))
      << "iWARP dips crossing its 4 KB threshold";

  const double ib_slope = uni(ib_profile(), 16384) / uni(ib_profile(), 8192);
  const double iw_slope = uni(iwarp_profile(), 16384) / uni(iwarp_profile(), 8192);
  const double mx_slope = uni(mxom_profile(), 16384) / uni(mxom_profile(), 8192);
  EXPECT_GT(ib_slope, iw_slope) << "IB: steeper slope at the switching point";
  EXPECT_GT(ib_slope, mx_slope);

  const double mx_step =
      userlevel_bandwidth_mbps(mxom_profile(), 65536, 8) /
      userlevel_bandwidth_mbps(mxom_profile(), 32768, 8);
  EXPECT_GT(mx_step, 1.2) << "MX 32 KB internal switch visible at user level";
}

// ---------------------------------------------------------------------------
// Figure 2: multi-connection shapes
// ---------------------------------------------------------------------------

TEST(Calibration, MultiConnIwarpKeepsScaling) {
  const auto p = iwarp_profile();
  const double c1 = multiconn_normalized_latency_us(p, 1, 1024);
  const double c8 = multiconn_normalized_latency_us(p, 8, 1024);
  const double c64 = multiconn_normalized_latency_us(p, 64, 1024);
  EXPECT_LT(c8, c1 / 2.0) << "pipelined RNIC parallelizes connections";
  EXPECT_LT(c64, c8) << "still improving at 64 connections";
}

TEST(Calibration, MultiConnIbSerializesPastContextCache) {
  const auto p = ib_profile();
  const double c1 = multiconn_normalized_latency_us(p, 1, 1024);
  const double c8 = multiconn_normalized_latency_us(p, 8, 1024);
  const double c16 = multiconn_normalized_latency_us(p, 16, 1024);
  const double c64 = multiconn_normalized_latency_us(p, 64, 1024);
  EXPECT_LT(c8, c1) << "IB improves up to the 8-entry context cache";
  EXPECT_GT(c16, c8 * 1.1) << "knee: context misses past 8 connections";
  EXPECT_NEAR(c64, c16, c16 * 0.25) << "then stays relatively constant";
}

TEST(Calibration, MultiConnThroughputShapes) {
  const double ib8 = multiconn_throughput_mbps(ib_profile(), 8, 1024);
  const double ib32 = multiconn_throughput_mbps(ib_profile(), 32, 1024);
  EXPECT_LT(ib32, ib8 * 0.85) << "IB small-message throughput drops past 8 conns";
  const double iw8 = multiconn_throughput_mbps(iwarp_profile(), 8, 1024);
  const double iw32 = multiconn_throughput_mbps(iwarp_profile(), 32, 1024);
  EXPECT_GE(iw32, iw8 * 0.98) << "iWARP sustains throughput at any connection count";
  // Beyond 4 KB the two behave the same way (both near their ceilings).
  const double ib_large_8 = multiconn_throughput_mbps(ib_profile(), 8, 16384);
  const double ib_large_64 = multiconn_throughput_mbps(ib_profile(), 64, 16384);
  EXPECT_NEAR(ib_large_64, ib_large_8, ib_large_8 * 0.05);
}

// ---------------------------------------------------------------------------
// Figure 5: LogP shapes
// ---------------------------------------------------------------------------

TEST(Calibration, LogpGapOrdering) {
  const double iw = logp_parameters(iwarp_profile(), 1, 12).gap_us;
  const double ib = logp_parameters(ib_profile(), 1, 12).gap_us;
  const double mom = logp_parameters(mxom_profile(), 1, 12).gap_us;
  // Paper: ~1 us for iWARP and Myrinet, ~3 us for IB.
  EXPECT_NEAR(iw, 1.1, 0.5);
  EXPECT_NEAR(mom, 0.9, 0.5);
  EXPECT_GT(ib, 2.0);
  EXPECT_LT(ib, 3.5);
}

TEST(Calibration, LogpReceiverOverheadJumpsAtRendezvousExceptMx) {
  // Receiver overhead explodes at the eager/rendezvous switch for the
  // host-progressed MPIs, but not for MX (autonomous progression).
  const auto iw_small = logp_parameters(iwarp_profile(), 1024, 8);
  const auto iw_rndv = logp_parameters(iwarp_profile(), 16 * 1024, 8);
  EXPECT_GT(iw_rndv.or_us, iw_small.or_us * 10) << "iWARP Or jump";

  const auto ib_small = logp_parameters(ib_profile(), 1024, 8);
  const auto ib_rndv = logp_parameters(ib_profile(), 32 * 1024, 8);
  EXPECT_GT(ib_rndv.or_us, ib_small.or_us * 10) << "IB Or jump";

  const auto mx_rndv = logp_parameters(mxom_profile(), 64 * 1024, 8);
  EXPECT_LT(mx_rndv.or_us, 5.0) << "MX progresses the rendezvous during compute";
}

// ---------------------------------------------------------------------------
// Figure 6: buffer re-use
// ---------------------------------------------------------------------------

TEST(Calibration, BufferReuseRatios) {
  auto ratio = [](const NetworkProfile& p, std::uint32_t m) {
    return bufreuse_latency_us(p, m, false, 16, 24) / bufreuse_latency_us(p, m, true, 16, 24);
  };
  // Small messages: < 10% impact (paper).
  EXPECT_LT(ratio(iwarp_profile(), 256), 1.10);
  EXPECT_LT(ratio(ib_profile(), 256), 1.10);
  // Rendezvous peaks: 4.3 (IB, 128 KB) > 2.4 (Myri, 1 MB) > 2.0 (iWARP, 256 KB).
  const double ib = ratio(ib_profile(), 128 << 10);
  const double mom = ratio(mxom_profile(), 1 << 20);
  const double iw = ratio(iwarp_profile(), 256 << 10);
  expect_near_pct(ib, 4.3, 15, "IB peak");
  expect_near_pct(mom, 2.4, 15, "Myri peak");
  expect_near_pct(iw, 2.0, 15, "iWARP peak");
  EXPECT_GT(ib, mom);
  EXPECT_GT(mom, iw);
  // iWARP performs best for very large messages (paper Sec. 6.4).
  EXPECT_LT(ratio(iwarp_profile(), 1 << 20), ratio(ib_profile(), 1 << 20));
}

// ---------------------------------------------------------------------------
// Figures 7 & 8: queue usage
// ---------------------------------------------------------------------------

TEST(Calibration, UnexpectedQueueMxBestLargeMessagesUnaffected) {
  auto ratio = [](const NetworkProfile& p, std::uint32_t m, int depth) {
    return unexpected_queue_latency_us(p, m, depth, 10) /
           unexpected_queue_latency_us(p, m, 0, 10);
  };
  const double iw = ratio(iwarp_profile(), 16, 256);
  const double ib = ratio(ib_profile(), 16, 256);
  const double moe = ratio(mxoe_profile(), 16, 256);
  const double mom = ratio(mxom_profile(), 16, 256);
  EXPECT_GT(iw, 1.5) << "small messages considerably affected";
  EXPECT_LT(mom, iw) << "MPICH-MX best (NIC-offloaded unexpected handling)";
  EXPECT_LT(moe, iw);
  EXPECT_GT(ib, iw) << "MVAPICH worst in queue usage (paper conclusions)";
  EXPECT_LT(ratio(iwarp_profile(), 65536, 256), 1.2)
      << "large messages insignificant, especially iWARP";
}

TEST(Calibration, ReceiveQueueMyrinetWorstIwarpBest) {
  auto ratio = [](const NetworkProfile& p, std::uint32_t m, int depth) {
    return recv_queue_latency_us(p, m, depth, 10) / recv_queue_latency_us(p, m, 0, 10);
  };
  const double iw = ratio(iwarp_profile(), 16, 256);
  const double ib = ratio(ib_profile(), 16, 256);
  const double mom = ratio(mxom_profile(), 16, 256);
  EXPECT_LT(iw, ib) << "iWARP best in receive-queue usage";
  EXPECT_GT(mom, ib) << "Myrinet worst: NIC-resident posted-queue traversal";
  EXPECT_GT(mom, 2.0) << "receive-queue impact is large for small messages";
}

}  // namespace
}  // namespace fabsim::core

// Tests of the MX-10G library: matching semantics, eager vs rendezvous,
// unexpected messages, registration cache, and the MXoE/MXoM split.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "hw/fabric.hpp"
#include "hw/node.hpp"
#include "hw/reg_cache.hpp"
#include "mx/endpoint.hpp"

namespace fabsim::mx {
namespace {

hw::SwitchConfig myrinet_switch() {
  return hw::SwitchConfig{Rate::gbit_per_sec(10.0), ns(100), ns(100)};
}

hw::PciConfig pcie_x4() { return hw::PciConfig{Rate::mb_per_sec(1000.0), ns(250)}; }

struct World {
  explicit World(MxConfig config = mxom_defaults())
      : fabric(engine, myrinet_switch()),
        node0(engine, 0, pcie_x4()),
        node1(engine, 1, pcie_x4()),
        ep0(node0, fabric, config),
        ep1(node1, fabric, config) {}

  Engine engine;
  hw::Switch fabric;
  hw::Node node0, node1;
  Endpoint ep0, ep1;
};

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 11) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>((i * 73 + seed) & 0xff);
  return v;
}

void fill(World& w, hw::AddressSpace& mem, std::uint64_t addr,
          const std::vector<std::byte>& bytes) {
  std::memcpy(mem.window(addr, bytes.size()).data(), bytes.data(), bytes.size());
  (void)w;
}

TEST(MxEager, SendRecvSmallMessage) {
  World w;
  auto& src = w.node0.mem().alloc(4096);
  auto& dst = w.node1.mem().alloc(4096);
  const auto payload = pattern(1000);
  fill(w, w.node0.mem(), src.addr(), payload);

  Time latency = 0;
  w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d, Time& lat) -> Task<> {
    auto recv = co_await world.ep1.irecv(d.addr(), 4096, 42, ~0ull);
    const Time start = world.engine.now();
    auto send = co_await world.ep0.isend(s.addr(), 1000, world.ep1.port(), 42);
    co_await world.ep1.wait(recv);
    lat = world.engine.now() - start;
    co_await world.ep0.wait(send);
    EXPECT_EQ(recv->length(), 1000u);
    EXPECT_EQ(recv->match_bits(), 42u);
  }(w, src, dst, latency));
  w.engine.run();

  EXPECT_GT(latency, us(1));
  EXPECT_LT(latency, us(15));
  auto view = w.node1.mem().window(dst.addr(), 1000);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), 1000), 0);
}

TEST(MxMatching, MaskAndFifoOrder) {
  World w;
  auto& src = w.node0.mem().alloc(4096);
  auto& dst = w.node1.mem().alloc(16384);
  const auto payload = pattern(64);
  fill(w, w.node0.mem(), src.addr(), payload);

  std::vector<std::uint64_t> completed_matches;
  w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d,
                    std::vector<std::uint64_t>& out) -> Task<> {
    // Receive matching only the high byte (mask), two receives.
    auto r1 = co_await world.ep1.irecv(d.addr(), 4096, 0x0100, 0xff00);
    auto r2 = co_await world.ep1.irecv(d.addr() + 4096, 4096, 0x0200, 0xff00);
    // Send in the reverse match order: 0x02xx first, then 0x01xx.
    auto s1 = co_await world.ep0.isend(s.addr(), 64, world.ep1.port(), 0x0207);
    auto s2 = co_await world.ep0.isend(s.addr(), 64, world.ep1.port(), 0x0103);
    co_await world.ep1.wait(r1);
    co_await world.ep1.wait(r2);
    co_await world.ep0.wait(s1);
    co_await world.ep0.wait(s2);
    out.push_back(r1->match_bits());
    out.push_back(r2->match_bits());
  }(w, src, dst, completed_matches));
  w.engine.run();

  EXPECT_EQ(completed_matches, (std::vector<std::uint64_t>{0x0103, 0x0207}));
}

TEST(MxUnexpected, EagerBuffersThenMatches) {
  World w;
  auto& src = w.node0.mem().alloc(8192);
  auto& dst = w.node1.mem().alloc(8192);
  const auto payload = pattern(5000, 3);
  fill(w, w.node0.mem(), src.addr(), payload);

  w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d) -> Task<> {
    // Send with no receive posted: message must be buffered as unexpected.
    auto send = co_await world.ep0.isend(s.addr(), 5000, world.ep1.port(), 9);
    co_await world.ep0.wait(send);
    co_await world.engine.sleep(us(50));
    EXPECT_EQ(world.ep1.unexpected_depth(), 1u);
    auto recv = co_await world.ep1.irecv(d.addr(), 8192, 9, ~0ull);
    co_await world.ep1.wait(recv);
    EXPECT_EQ(recv->length(), 5000u);
    EXPECT_EQ(world.ep1.unexpected_depth(), 0u);
  }(w, src, dst));
  w.engine.run();

  auto view = w.node1.mem().window(dst.addr(), 5000);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), 5000), 0);
}

TEST(MxRendezvous, LargeMessageZeroCopy) {
  World w;
  const std::uint32_t len = 256 * 1024;
  auto& src = w.node0.mem().alloc(len);
  auto& dst = w.node1.mem().alloc(len);
  const auto payload = pattern(len, 17);
  fill(w, w.node0.mem(), src.addr(), payload);

  w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d, std::uint32_t n) -> Task<> {
    auto recv = co_await world.ep1.irecv(d.addr(), n, 5, ~0ull);
    auto send = co_await world.ep0.isend(s.addr(), n, world.ep1.port(), 5);
    co_await world.ep1.wait(recv);
    co_await world.ep0.wait(send);
  }(w, src, dst, len));
  w.engine.run();

  auto view = w.node1.mem().window(dst.addr(), len);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), len), 0);
  // Rendezvous pins both sides: 1 miss each on first use.
  EXPECT_EQ(w.ep0.reg_cache_misses(), 1u);
  EXPECT_EQ(w.ep1.reg_cache_misses(), 1u);
}

TEST(MxRendezvous, UnexpectedRtsWaitsForReceive) {
  World w;
  const std::uint32_t len = 128 * 1024;
  auto& src = w.node0.mem().alloc(len);
  auto& dst = w.node1.mem().alloc(len);
  const auto payload = pattern(len, 23);
  fill(w, w.node0.mem(), src.addr(), payload);

  w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d, std::uint32_t n) -> Task<> {
    auto send = co_await world.ep0.isend(s.addr(), n, world.ep1.port(), 77);
    co_await world.engine.sleep(us(100));
    EXPECT_FALSE(send->done()) << "rendezvous send must stall until the receive arrives";
    auto recv = co_await world.ep1.irecv(d.addr(), n, 77, ~0ull);
    co_await world.ep1.wait(recv);
    co_await world.ep0.wait(send);
  }(w, src, dst, len));
  w.engine.run();

  auto view = w.node1.mem().window(dst.addr(), len);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), len), 0);
}

TEST(MxRegCache, HitsOnReuseThrashesOnByteOverflow) {
  MxConfig config = mxom_defaults();
  config.reg_cache_bytes = 1 << 20;  // 1 MB of pinnable bytes
  World w(config);
  const std::uint32_t len = 256 * 1024;
  std::vector<hw::Buffer*> srcs;
  for (int i = 0; i < 8; ++i) srcs.push_back(&w.node0.mem().alloc(len, false));
  auto& dst = w.node1.mem().alloc(len, false);

  w.engine.spawn([](World& world, std::vector<hw::Buffer*>& bufs, hw::Buffer& d,
                    std::uint32_t n) -> Task<> {
    // Full re-use: same buffer 6 times -> 1 miss, 5 hits.
    for (int i = 0; i < 6; ++i) {
      auto recv = co_await world.ep1.irecv(d.addr(), n, 1, ~0ull);
      auto send = co_await world.ep0.isend(bufs[0]->addr(), n, world.ep1.port(), 1);
      co_await world.ep1.wait(recv);
      co_await world.ep0.wait(send);
    }
    EXPECT_EQ(world.ep0.reg_cache_misses(), 1u);
    EXPECT_EQ(world.ep0.reg_cache_hits(), 5u);
    // No re-use: cycle 8 distinct 256 KB buffers through a 1 MB cache ->
    // everything except the still-cached bufs[0] misses.
    for (int i = 0; i < 8; ++i) {
      auto recv = co_await world.ep1.irecv(d.addr(), n, 1, ~0ull);
      auto send = co_await world.ep0.isend(bufs[static_cast<std::size_t>(i)]->addr(), n,
                                           world.ep1.port(), 1);
      co_await world.ep1.wait(recv);
      co_await world.ep0.wait(send);
    }
    EXPECT_EQ(world.ep0.reg_cache_misses(), 8u);
    // A second no-re-use sweep misses on every buffer: the cache only
    // holds the last 4 of the previous sweep and LRU order defeats it.
    for (int i = 0; i < 8; ++i) {
      auto recv = co_await world.ep1.irecv(d.addr(), n, 1, ~0ull);
      auto send = co_await world.ep0.isend(bufs[static_cast<std::size_t>(i)]->addr(), n,
                                           world.ep1.port(), 1);
      co_await world.ep1.wait(recv);
      co_await world.ep0.wait(send);
    }
    EXPECT_EQ(world.ep0.reg_cache_misses(), 16u);
  }(w, srcs, dst, len));
  w.engine.run();
}

TEST(MxPersonalities, MxoeHasHigherLatencyThanMxom) {
  auto measure = [](MxConfig config, hw::SwitchConfig sw) {
    Engine engine;
    hw::Switch fabric(engine, sw);
    hw::Node n0(engine, 0, pcie_x4()), n1(engine, 1, pcie_x4());
    Endpoint e0(n0, fabric, config), e1(n1, fabric, config);
    auto& src = n0.mem().alloc(64, false);
    auto& dst = n1.mem().alloc(64, false);
    Time latency = 0;
    engine.spawn([](Engine& eng, Endpoint& a, Endpoint& b, hw::Buffer& s, hw::Buffer& d,
                    Time& lat) -> Task<> {
      auto recv = co_await b.irecv(d.addr(), 64, 1, ~0ull);
      const Time start = eng.now();
      auto send = co_await a.isend(s.addr(), 8, b.port(), 1);
      co_await b.wait(recv);
      lat = eng.now() - start;
      co_await a.wait(send);
    }(engine, e0, e1, src, dst, latency));
    engine.run();
    return latency;
  };

  const Time mxom = measure(mxom_defaults(), myrinet_switch());
  const Time mxoe =
      measure(mxoe_defaults(), hw::SwitchConfig{Rate::gbit_per_sec(10.0), ns(450), ns(100)});
  EXPECT_GT(mxoe, mxom) << "Ethernet framing + switch must cost more than Myrinet";
}

TEST(MxTruncation, TooSmallReceiveThrows) {
  World w;
  auto& src = w.node0.mem().alloc(4096, false);
  auto& dst = w.node1.mem().alloc(4096, false);
  w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d) -> Task<> {
    auto recv = co_await world.ep1.irecv(d.addr(), 16, 4, ~0ull);
    auto send = co_await world.ep0.isend(s.addr(), 4000, world.ep1.port(), 4);
    co_await world.ep1.wait(recv);
    co_await world.ep0.wait(send);
  }(w, src, dst));
  EXPECT_THROW(w.engine.run(), std::length_error);
}

TEST(RegCacheUnit, EntryAndByteBounds) {
  hw::RegCache cache(3, 10'000);
  EXPECT_FALSE(cache.lookup(0x1000, 4000).hit);
  EXPECT_FALSE(cache.lookup(0x2000, 4000).hit);
  EXPECT_TRUE(cache.lookup(0x1000, 4000).hit);
  // Third insert busts the byte bound: LRU (0x2000) evicted.
  auto r = cache.lookup(0x3000, 4000);
  EXPECT_FALSE(r.hit);
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_EQ(r.evicted[0].len, 4000u);
  EXPECT_FALSE(cache.lookup(0x2000, 4000).hit);
  // Entry bound.
  hw::RegCache small(2, 1 << 30);
  small.lookup(1, 10);
  small.lookup(2, 10);
  auto r2 = small.lookup(3, 10);
  EXPECT_EQ(r2.evicted.size(), 1u);
  EXPECT_EQ(small.entries(), 2u);
}

TEST(MxDeterminism, RepeatedRunsMatch) {
  auto run_once = [] {
    World w;
    auto& src = w.node0.mem().alloc(1 << 20, false);
    auto& dst = w.node1.mem().alloc(1 << 20, false);
    Time done = 0;
    w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d, Time& fin) -> Task<> {
      for (int i = 0; i < 3; ++i) {
        auto recv = co_await world.ep1.irecv(d.addr(), 1 << 20, 1, ~0ull);
        auto send = co_await world.ep0.isend(s.addr(), 1 << 20, world.ep1.port(), 1);
        co_await world.ep1.wait(recv);
        co_await world.ep0.wait(send);
      }
      fin = world.engine.now();
    }(w, src, dst, done));
    w.engine.run();
    return std::pair{done, w.engine.events_processed()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace fabsim::mx

// Unit tests for the common verbs layer and the calibration profiles'
// internal consistency.
#include <gtest/gtest.h>

#include "core/calibration.hpp"
#include "mpi/rank.hpp"
#include "hw/cpu.hpp"
#include "sim/engine.hpp"
#include "verbs/verbs.hpp"

namespace fabsim::verbs {
namespace {

TEST(CompletionQueue, PollFifoOrder) {
  Engine engine;
  CompletionQueue cq(engine);
  EXPECT_FALSE(cq.poll().has_value());
  cq.push(Completion{1, Completion::Type::kSend, 10, 0});
  cq.push(Completion{2, Completion::Type::kRecv, 20, 1});
  EXPECT_EQ(cq.depth(), 2u);
  EXPECT_EQ(cq.poll()->wr_id, 1u);
  EXPECT_EQ(cq.poll()->wr_id, 2u);
  EXPECT_FALSE(cq.poll().has_value());
}

TEST(CompletionQueue, NextCompletionBlocksUntilPush) {
  Engine engine;
  CompletionQueue cq(engine);
  hw::HostCpu cpu(engine);
  Time got_at = 0;
  std::uint64_t got_id = 0;
  engine.spawn([](Engine& e, CompletionQueue& q, hw::HostCpu& c, Time& at,
                  std::uint64_t& id) -> Task<> {
    const Completion completion = co_await next_completion(q, c, ns(100));
    at = e.now();
    id = completion.wr_id;
  }(engine, cq, cpu, got_at, got_id));
  engine.post(us(5), [&cq] { cq.push(Completion{42, Completion::Type::kSend, 0, 0}); });
  engine.run();
  EXPECT_EQ(got_id, 42u);
  EXPECT_EQ(got_at, us(5) + ns(100));  // wake at push, pay one poll cost
}

TEST(CompletionQueue, NextCompletionReturnsImmediatelyWhenReady) {
  Engine engine;
  CompletionQueue cq(engine);
  hw::HostCpu cpu(engine);
  cq.push(Completion{7, Completion::Type::kRdmaWrite, 64, 3});
  Time got_at = 1;
  engine.spawn([](Engine& e, CompletionQueue& q, hw::HostCpu& c, Time& at) -> Task<> {
    const Completion completion = co_await next_completion(q, c, ns(100));
    EXPECT_EQ(completion.qp_num, 3);
    at = e.now();
  }(engine, cq, cpu, got_at));
  engine.run();
  EXPECT_EQ(got_at, ns(100));
}

}  // namespace
}  // namespace fabsim::verbs

namespace fabsim::core {
namespace {

class ProfileSanity : public ::testing::TestWithParam<Network> {};

INSTANTIATE_TEST_SUITE_P(Networks, ProfileSanity,
                         ::testing::Values(Network::kIwarp, Network::kIb, Network::kMxoe,
                                           Network::kMxom),
                         [](const auto& sweep) { return network_name(sweep.param); });

TEST_P(ProfileSanity, RatesAndCostsArePhysical) {
  const NetworkProfile p = profile(GetParam());
  EXPECT_GT(p.switch_cfg.link_rate.mb_per_sec_value(), 900.0);
  EXPECT_LE(p.switch_cfg.link_rate.mb_per_sec_value(), 1250.0 + 1e-6);
  EXPECT_GT(p.pcie.rate.mb_per_sec_value(), 500.0);
  EXPECT_GT(p.cpu.memcpy_warm_rate.mb_per_sec_value(),
            p.cpu.memcpy_cold_rate.mb_per_sec_value())
      << "cache must be faster than DRAM";
  EXPECT_GT(p.mpi.eager_buffers, p.mpi.control_slots);
  EXPECT_GT(p.mpi.pin_cache_bytes, 0u);
}

TEST_P(ProfileSanity, MpiTagSpaceAccommodatesCollectives) {
  EXPECT_LT(mpi::Rank::kCollectiveTagBase + 1024, mpi::Rank::kContextStride);
}

TEST(ProfileSanity, EngineArchitecturesDiffer) {
  const auto iw = iwarp_profile();
  // iWARP: pipelined (occupancy well below latency).
  EXPECT_LT(iw.rnic.tx_occupancy * 4, iw.rnic.tx_latency);
  // IB: processor-based engine expressed as occupancy == service (no
  // separate latency knob to compare), but its context cache must be
  // small enough to produce the Figure-2 knee inside the tested range.
  const auto ib = ib_profile();
  EXPECT_GE(ib.hca.context_cache_entries, 2);
  EXPECT_LE(ib.hca.context_cache_entries, 16);
  EXPECT_GT(ib.hca.context_miss_penalty, us(0.5));
}

TEST(ProfileSanity, RegistrationCostOrdering) {
  // Fig 6 depends on: IB registration most expensive per page, iWARP
  // cheapest of the verbs stacks at large sizes.
  const auto iw = iwarp_profile();
  const auto ib = ib_profile();
  const auto mx = mxom_profile();
  EXPECT_GT(ib.hca.reg.register_per_page, mx.mx.reg.register_per_page);
  EXPECT_GT(mx.mx.reg.register_per_page, iw.rnic.reg.register_per_page);
}

}  // namespace
}  // namespace fabsim::core

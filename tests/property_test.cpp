// Property suites swept over (network x message size) matrices:
// payload integrity end to end, conservation, determinism, and
// monotonicity of transfer time. These are the invariants every stack
// must hold regardless of calibration.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "core/cluster.hpp"

namespace fabsim::core {
namespace {

std::vector<std::byte> pattern(std::size_t n, unsigned seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 167 + seed * 31 + (i >> 11)) & 0xff);
  }
  return v;
}

// ---------------------------------------------------------------------------
// MPI payload integrity: every byte, every boundary, every network.
// ---------------------------------------------------------------------------

class MpiIntegrity : public ::testing::TestWithParam<std::tuple<Network, std::uint32_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpiIntegrity,
    ::testing::Combine(::testing::Values(Network::kIwarp, Network::kIb, Network::kMxoe,
                                         Network::kMxom),
                       // Sizes straddling every protocol boundary: eager
                       // thresholds (4K iWARP, 8K IB, 32K MX), segment
                       // sizes (1408 TCP MSS, 2048 IB MTU, 4096 MX MTU).
                       ::testing::Values(1u, 7u, 1024u, 1407u, 1408u, 1409u, 2048u, 4096u,
                                         4097u, 8192u, 8193u, 32768u, 32769u, 262144u)),
    [](const auto& sweep) {
      return std::string(network_name(std::get<0>(sweep.param))) + "_" +
             std::to_string(std::get<1>(sweep.param)) + "B";
    });

TEST_P(MpiIntegrity, PayloadSurvivesTheStack) {
  const auto [network, len] = GetParam();
  Cluster cluster(2, network);
  auto& src = cluster.node(0).mem().alloc(len);
  auto& dst = cluster.node(1).mem().alloc(len + 64);
  const auto payload = pattern(len, static_cast<unsigned>(len));
  std::memcpy(cluster.node(0).mem().window(src.addr(), len).data(), payload.data(), len);

  cluster.engine().spawn([](Cluster& c, std::uint64_t s, std::uint32_t n) -> Task<> {
    co_await c.setup_mpi();
    co_await c.mpi_rank(0).send(1, 5, s, n);
  }(cluster, src.addr(), len));
  cluster.engine().spawn([](Cluster& c, std::uint64_t d, std::uint64_t cap,
                            std::uint32_t n) -> Task<> {
    co_await c.setup_mpi();
    const auto status = co_await c.mpi_rank(1).recv(0, 5, d, static_cast<std::uint32_t>(cap));
    EXPECT_EQ(status.length, n);
    EXPECT_EQ(status.source, 0);
  }(cluster, dst.addr(), dst.size(), len));
  cluster.engine().run();

  ASSERT_EQ(cluster.engine().live_processes(), 0u) << "transfer did not complete";
  auto view = cluster.node(1).mem().window(dst.addr(), len);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), len), 0);
}

TEST_P(MpiIntegrity, DeterministicTimeline) {
  const auto [network, len] = GetParam();
  auto run_once = [network = network, len = len] {
    Cluster cluster(2, network);
    auto& src = cluster.node(0).mem().alloc(len, false);
    auto& dst = cluster.node(1).mem().alloc(len + 64, false);
    cluster.engine().spawn([](Cluster& c, std::uint64_t s, std::uint32_t n) -> Task<> {
      co_await c.setup_mpi();
      co_await c.mpi_rank(0).send(1, 5, s, n);
    }(cluster, src.addr(), len));
    cluster.engine().spawn([](Cluster& c, std::uint64_t d, std::uint64_t cap) -> Task<> {
      co_await c.setup_mpi();
      co_await c.mpi_rank(1).recv(0, 5, d, static_cast<std::uint32_t>(cap));
    }(cluster, dst.addr(), dst.size()));
    cluster.engine().run();
    return std::pair{cluster.engine().now(), cluster.engine().events_processed()};
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// Verbs-level integrity for the RDMA-capable stacks.
// ---------------------------------------------------------------------------

class VerbsIntegrity : public ::testing::TestWithParam<std::tuple<Network, std::uint32_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, VerbsIntegrity,
    ::testing::Combine(::testing::Values(Network::kIwarp, Network::kIb),
                       ::testing::Values(1u, 1408u, 1409u, 2048u, 2049u, 65536u, 1u << 20)),
    [](const auto& sweep) {
      return std::string(network_name(std::get<0>(sweep.param))) + "_" +
             std::to_string(std::get<1>(sweep.param)) + "B";
    });

TEST_P(VerbsIntegrity, RdmaWritePlacesEveryByte) {
  const auto [network, len] = GetParam();
  Cluster cluster(2, network);
  verbs::CompletionQueue cq0(cluster.engine()), cq1(cluster.engine());
  auto qp0 = cluster.device(0).create_qp(cq0, cq0);
  auto qp1 = cluster.device(1).create_qp(cq1, cq1);
  cluster.device(0).establish(*qp0, *qp1);
  auto& src = cluster.node(0).mem().alloc(len);
  auto& dst = cluster.node(1).mem().alloc(len);
  const auto payload = pattern(len, 99);
  std::memcpy(cluster.node(0).mem().window(src.addr(), len).data(), payload.data(), len);

  cluster.engine().spawn([](Cluster& c, verbs::QueuePair& qp, std::uint64_t s, std::uint64_t d,
                            std::uint32_t n) -> Task<> {
    auto lkey = co_await c.device(0).reg_mr(s, n);
    auto rkey = co_await c.device(1).reg_mr(d, n);
    auto watch = c.device(1).watch_placement(d, n);
    co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                        .opcode = verbs::Opcode::kRdmaWrite,
                                        .sge = {s, n, lkey},
                                        .remote_addr = d,
                                        .rkey = rkey});
    co_await watch->wait();
  }(cluster, *qp0, src.addr(), dst.addr(), len));
  cluster.engine().run();

  auto view = cluster.node(1).mem().window(dst.addr(), len);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), len), 0);
}

TEST_P(VerbsIntegrity, RdmaReadFetchesEveryByte) {
  const auto [network, len] = GetParam();
  Cluster cluster(2, network);
  verbs::CompletionQueue cq0(cluster.engine()), cq1(cluster.engine());
  auto qp0 = cluster.device(0).create_qp(cq0, cq0);
  auto qp1 = cluster.device(1).create_qp(cq1, cq1);
  cluster.device(0).establish(*qp0, *qp1);
  auto& remote = cluster.node(1).mem().alloc(len);
  auto& sink = cluster.node(0).mem().alloc(len);
  const auto payload = pattern(len, 123);
  std::memcpy(cluster.node(1).mem().window(remote.addr(), len).data(), payload.data(), len);

  cluster.engine().spawn([](Cluster& c, verbs::QueuePair& qp, verbs::CompletionQueue& cq,
                            std::uint64_t snk, std::uint64_t rem, std::uint32_t n) -> Task<> {
    auto sink_key = co_await c.device(0).reg_mr(snk, n);
    auto rkey = co_await c.device(1).reg_mr(rem, n);
    co_await qp.post_send(verbs::SendWr{.wr_id = 2,
                                        .opcode = verbs::Opcode::kRdmaRead,
                                        .sge = {snk, n, sink_key},
                                        .remote_addr = rem,
                                        .rkey = rkey});
    const auto completion = co_await verbs::next_completion(cq, c.node(0).cpu(), ns(200));
    EXPECT_EQ(completion.type, verbs::Completion::Type::kRdmaRead);
    EXPECT_EQ(completion.byte_len, n);
  }(cluster, *qp0, cq0, sink.addr(), remote.addr(), len));
  cluster.engine().run();

  auto view = cluster.node(0).mem().window(sink.addr(), len);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), len), 0);
}

// ---------------------------------------------------------------------------
// Transfer-time monotonicity: more bytes never arrive sooner.
// ---------------------------------------------------------------------------

class Monotonicity : public ::testing::TestWithParam<Network> {};

INSTANTIATE_TEST_SUITE_P(Networks, Monotonicity,
                         ::testing::Values(Network::kIwarp, Network::kIb, Network::kMxoe,
                                           Network::kMxom),
                         [](const auto& sweep) { return network_name(sweep.param); });

TEST_P(Monotonicity, MpiLatencyNonDecreasingWithinProtocolRegion) {
  // Within one protocol region (all-eager or all-rendezvous), half-RTT
  // must be non-decreasing in message size.
  auto latency = [&](std::uint32_t len) {
    Cluster cluster(2, GetParam());
    auto& b0 = cluster.node(0).mem().alloc(len, false);
    auto& b1 = cluster.node(1).mem().alloc(len, false);
    Time elapsed = 0;
    cluster.engine().spawn([](Cluster& c, std::uint64_t a, std::uint32_t n,
                              Time* out) -> Task<> {
      co_await c.setup_mpi();
      for (int i = 0; i < 3; ++i) {  // warmup
        co_await c.mpi_rank(0).send(1, 1, a, n);
        co_await c.mpi_rank(0).recv(1, 1, a, n);
      }
      const Time t0 = c.engine().now();
      for (int i = 0; i < 6; ++i) {
        co_await c.mpi_rank(0).send(1, 1, a, n);
        co_await c.mpi_rank(0).recv(1, 1, a, n);
      }
      *out = c.engine().now() - t0;
    }(cluster, b0.addr(), len, &elapsed));
    cluster.engine().spawn([](Cluster& c, std::uint64_t a, std::uint32_t n) -> Task<> {
      co_await c.setup_mpi();
      for (int i = 0; i < 9; ++i) {
        co_await c.mpi_rank(1).recv(0, 1, a, n);
        co_await c.mpi_rank(1).send(0, 1, a, n);
      }
    }(cluster, b1.addr(), len));
    cluster.engine().run();
    return elapsed;
  };
  // Eager region (all four networks are eager at these sizes).
  EXPECT_LE(latency(64), latency(512));
  EXPECT_LE(latency(512), latency(2048));
  // Rendezvous region.
  EXPECT_LE(latency(65536), latency(262144));
  EXPECT_LE(latency(262144), latency(1 << 20));
}

// ---------------------------------------------------------------------------
// Hotspot conservation: a contended port can never beat its link rate.
// ---------------------------------------------------------------------------

TEST(Contention, AggregateGoodputBoundedByServerLink) {
  for (Network network : {Network::kIwarp, Network::kIb}) {
    Cluster cluster(4, network);
    verbs::CompletionQueue server_cq(cluster.engine());
    std::vector<std::unique_ptr<verbs::CompletionQueue>> cqs;
    std::vector<std::unique_ptr<verbs::QueuePair>> sqps, cqps;
    std::vector<hw::Buffer*> sbufs, cbufs;
    std::vector<verbs::MrKey> skeys, ckeys;
    constexpr std::uint32_t kChunk = 128 * 1024;
    constexpr int kChunks = 6;
    for (int c = 0; c < 3; ++c) {
      cqs.push_back(std::make_unique<verbs::CompletionQueue>(cluster.engine()));
      sqps.push_back(cluster.device(0).create_qp(server_cq, server_cq));
      cqps.push_back(cluster.device(c + 1).create_qp(*cqs.back(), *cqs.back()));
      cluster.device(0).establish(*sqps.back(), *cqps.back());
      sbufs.push_back(&cluster.node(0).mem().alloc(kChunk, false));
      cbufs.push_back(&cluster.node(c + 1).mem().alloc(kChunk, false));
      skeys.push_back(
          cluster.device(0).registry().register_region(sbufs.back()->addr(), kChunk));
      ckeys.push_back(
          cluster.device(c + 1).registry().register_region(cbufs.back()->addr(), kChunk));
    }
    Time last_placed = 0;
    for (int c = 0; c < 3; ++c) {
      cluster.engine().spawn([](Cluster& cl, verbs::QueuePair& qp, std::uint64_t src,
                                verbs::MrKey lk, std::uint64_t dst, verbs::MrKey rk,
                                Time* end) -> Task<> {
        for (int i = 0; i < kChunks; ++i) {
          auto placed = cl.device(0).watch_placement(dst, kChunk);
          co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                              .opcode = verbs::Opcode::kRdmaWrite,
                                              .sge = {src, kChunk, lk},
                                              .remote_addr = dst,
                                              .rkey = rk});
          co_await placed->wait();
          *end = std::max(*end, cl.engine().now());
        }
      }(cluster, *cqps[static_cast<std::size_t>(c)], cbufs[static_cast<std::size_t>(c)]->addr(),
        ckeys[static_cast<std::size_t>(c)], sbufs[static_cast<std::size_t>(c)]->addr(),
        skeys[static_cast<std::size_t>(c)], &last_placed));
    }
    cluster.engine().run();
    const double total_bytes = 3.0 * kChunks * kChunk;
    const double aggregate = total_bytes / to_us(last_placed);
    const double link = cluster.profile().switch_cfg.link_rate.mb_per_sec_value();
    EXPECT_LT(aggregate, link * 1.0001)
        << network_name(network) << ": goodput through one port exceeded the link rate";
    EXPECT_GT(aggregate, link * 0.5) << network_name(network) << ": contention collapsed";
  }
}

}  // namespace
}  // namespace fabsim::core

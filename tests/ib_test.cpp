// End-to-end tests of the InfiniBand stack: RC transport, RDMA
// write/read, send/recv, and the MemFree QP-context cache.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "hw/fabric.hpp"
#include "hw/node.hpp"
#include "ib/hca.hpp"
#include "verbs/verbs.hpp"

namespace fabsim::ib {
namespace {

hw::SwitchConfig ib_switch() {
  // 4X SDR: 1 GB/s data rate per direction after 8b/10b.
  return hw::SwitchConfig{Rate::mb_per_sec(1000.0), ns(200), ns(100)};
}

hw::PciConfig pcie_x8() { return hw::PciConfig{Rate::mb_per_sec(2000.0), ns(250)}; }

struct World {
  explicit World(HcaConfig config = {})
      : fabric(engine, ib_switch()),
        node0(engine, 0, pcie_x8()),
        node1(engine, 1, pcie_x8()),
        nic0(node0, fabric, config),
        nic1(node1, fabric, config),
        send_cq0(engine),
        recv_cq0(engine),
        send_cq1(engine),
        recv_cq1(engine) {
    qp0 = nic0.create_qp(send_cq0, recv_cq0);
    qp1 = nic1.create_qp(send_cq1, recv_cq1);
    Hca::connect(*qp0, *qp1);
  }

  Engine engine;
  hw::Switch fabric;
  hw::Node node0, node1;
  Hca nic0, nic1;
  verbs::CompletionQueue send_cq0, recv_cq0, send_cq1, recv_cq1;
  std::unique_ptr<verbs::QueuePair> qp0, qp1;
};

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 5) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>((i * 37 + seed) & 0xff);
  return v;
}

TEST(IbRdmaWrite, PlacesDataWithLowLatency) {
  World w;
  auto& src = w.node0.mem().alloc(4096);
  auto& dst = w.node1.mem().alloc(4096);
  const auto payload = pattern(512);
  std::memcpy(w.node0.mem().window(src.addr(), 512).data(), payload.data(), 512);

  Time issued = 0, placed_at = 0;
  w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d, Time& t0, Time& t1) -> Task<> {
    auto lkey = co_await world.nic0.reg_mr(s.addr(), s.size());
    auto rkey = co_await world.nic1.reg_mr(d.addr(), d.size());
    auto watch = world.nic1.watch_placement(d.addr(), 512);
    t0 = world.engine.now();
    co_await world.qp0->post_send(verbs::SendWr{
        .wr_id = 3, .opcode = verbs::Opcode::kRdmaWrite,
        .sge = {s.addr(), 512, lkey}, .remote_addr = d.addr(), .rkey = rkey});
    co_await watch->wait();
    t1 = world.engine.now();
  }(w, src, dst, issued, placed_at));
  w.engine.run();

  // One-way latency class for IB verbs: single-digit microseconds.
  EXPECT_LT(placed_at - issued, us(12));
  EXPECT_GT(placed_at - issued, us(1));
  auto view = w.node1.mem().window(dst.addr(), 512);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), 512), 0);
}

TEST(IbSendRecv, DeliversAndCompletesInOrder) {
  World w;
  auto& src = w.node0.mem().alloc(16384);
  auto& dst = w.node1.mem().alloc(16384);
  const auto payload = pattern(10000);
  std::memcpy(w.node0.mem().window(src.addr(), 10000).data(), payload.data(), 10000);

  w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d) -> Task<> {
    auto lkey = co_await world.nic0.reg_mr(s.addr(), s.size());
    auto rkey = co_await world.nic1.reg_mr(d.addr(), d.size());
    co_await world.qp1->post_recv(verbs::RecvWr{55, {d.addr(), 16384, rkey}});
    co_await world.qp0->post_send(verbs::SendWr{
        .wr_id = 9, .opcode = verbs::Opcode::kSend, .sge = {s.addr(), 10000, lkey}});
    auto rc = co_await verbs::next_completion(world.recv_cq1, world.node1.cpu(), ns(200));
    EXPECT_EQ(rc.wr_id, 55u);
    EXPECT_EQ(rc.byte_len, 10000u);
    auto sc = co_await verbs::next_completion(world.send_cq0, world.node0.cpu(), ns(200));
    EXPECT_EQ(sc.wr_id, 9u);
  }(w, src, dst));
  w.engine.run();

  auto view = w.node1.mem().window(dst.addr(), 10000);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), 10000), 0);
}

TEST(IbRdmaRead, FetchesRemoteData) {
  World w;
  auto& remote = w.node1.mem().alloc(65536);
  auto& sink = w.node0.mem().alloc(65536);
  const auto payload = pattern(40000, 2);
  std::memcpy(w.node1.mem().window(remote.addr(), 40000).data(), payload.data(), 40000);

  w.engine.spawn([](World& world, hw::Buffer& rem, hw::Buffer& snk) -> Task<> {
    auto sink_key = co_await world.nic0.reg_mr(snk.addr(), snk.size());
    auto rkey = co_await world.nic1.reg_mr(rem.addr(), rem.size());
    co_await world.qp0->post_send(verbs::SendWr{
        .wr_id = 4, .opcode = verbs::Opcode::kRdmaRead,
        .sge = {snk.addr(), 40000, sink_key}, .remote_addr = rem.addr(), .rkey = rkey});
    auto completion = co_await verbs::next_completion(world.send_cq0, world.node0.cpu(), ns(200));
    EXPECT_EQ(completion.type, verbs::Completion::Type::kRdmaRead);
  }(w, remote, sink));
  w.engine.run();

  auto view = w.node0.mem().window(sink.addr(), 40000);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), 40000), 0);
}

TEST(IbThroughput, OneWayApproachesLinkRate) {
  World w;
  const std::uint32_t len = 8 << 20;
  auto& src = w.node0.mem().alloc(len, false);
  auto& dst = w.node1.mem().alloc(len, false);
  Time elapsed = 0;
  w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d, std::uint32_t n,
                    Time& dt) -> Task<> {
    auto lkey = co_await world.nic0.reg_mr(s.addr(), s.size());
    auto rkey = co_await world.nic1.reg_mr(d.addr(), d.size());
    auto watch = world.nic1.watch_placement(d.addr(), n);
    const Time start = world.engine.now();
    co_await world.qp0->post_send(verbs::SendWr{
        .wr_id = 1, .opcode = verbs::Opcode::kRdmaWrite,
        .sge = {s.addr(), n, lkey}, .remote_addr = d.addr(), .rkey = rkey});
    co_await watch->wait();
    dt = world.engine.now() - start;
  }(w, src, dst, len, elapsed));
  w.engine.run();

  const double mbps = static_cast<double>(len) / to_sec(elapsed) / 1e6;
  EXPECT_GT(mbps, 850.0);
  EXPECT_LT(mbps, 1000.0);  // cannot beat the 1 GB/s data rate
}

TEST(IbContextCache, HitsWithinCapacityMissesBeyond) {
  // Round-robin messages over N QPs; with N <= cache entries everything
  // hits after warmup, with N > entries every access misses (LRU worst
  // case) — the paper's Figure 2 serialization knee.
  auto run = [](int num_qps, int rounds) {
    World w;
    std::vector<std::unique_ptr<verbs::QueuePair>> qps0, qps1;
    for (int i = 0; i < num_qps; ++i) {
      qps0.push_back(w.nic0.create_qp(w.send_cq0, w.recv_cq0));
      qps1.push_back(w.nic1.create_qp(w.send_cq1, w.recv_cq1));
      Hca::connect(*qps0.back(), *qps1.back());
    }
    auto& src = w.node0.mem().alloc(4096, false);
    auto& dst = w.node1.mem().alloc(4096, false);
    w.engine.spawn([](World& world, std::vector<std::unique_ptr<verbs::QueuePair>>& qps,
                      hw::Buffer& s, hw::Buffer& d, int r) -> Task<> {
      auto lkey = co_await world.nic0.reg_mr(s.addr(), s.size());
      auto rkey = co_await world.nic1.reg_mr(d.addr(), d.size());
      for (int round = 0; round < r; ++round) {
        for (auto& qp : qps) {
          co_await qp->post_send(verbs::SendWr{
              .wr_id = 1, .opcode = verbs::Opcode::kRdmaWrite,
              .sge = {s.addr(), 64, lkey}, .remote_addr = d.addr(), .rkey = rkey});
        }
      }
      // Drain completions.
      for (int i = 0; i < r * static_cast<int>(qps.size()); ++i) {
        co_await verbs::next_completion(world.send_cq0, world.node0.cpu(), ns(200));
      }
    }(w, qps0, src, dst, rounds));
    w.engine.run();
    return std::pair{w.nic0.context_hits(), w.nic0.context_misses()};
  };

  // World{} itself creates one extra (unused) QP pair, so cache pressure
  // comes only from the QPs we drive.
  auto [hits_small, misses_small] = run(4, 10);
  EXPECT_EQ(misses_small, 4u) << "only compulsory misses within capacity";
  EXPECT_EQ(hits_small, 36u);

  auto [hits_large, misses_large] = run(12, 10);
  EXPECT_EQ(hits_large, 0u) << "LRU round-robin beyond capacity always misses";
  EXPECT_EQ(misses_large, 120u);
}

TEST(IbContextCache, MissPenaltySlowsSmallMessages) {
  // Measured per-message gap with 12 active QPs must exceed the gap with
  // 4 QPs by roughly the context-miss penalty.
  auto run = [](int num_qps) {
    World w;
    std::vector<std::unique_ptr<verbs::QueuePair>> qps0, qps1;
    for (int i = 0; i < num_qps; ++i) {
      qps0.push_back(w.nic0.create_qp(w.send_cq0, w.recv_cq0));
      qps1.push_back(w.nic1.create_qp(w.send_cq1, w.recv_cq1));
      Hca::connect(*qps0.back(), *qps1.back());
    }
    auto& src = w.node0.mem().alloc(4096, false);
    auto& dst = w.node1.mem().alloc(4096, false);
    Time elapsed = 0;
    const int rounds = 20;
    w.engine.spawn([](World& world, std::vector<std::unique_ptr<verbs::QueuePair>>& qps,
                      hw::Buffer& s, hw::Buffer& d, int r, Time& dt) -> Task<> {
      auto lkey = co_await world.nic0.reg_mr(s.addr(), s.size());
      auto rkey = co_await world.nic1.reg_mr(d.addr(), d.size());
      const Time start = world.engine.now();
      for (int round = 0; round < r; ++round) {
        for (auto& qp : qps) {
          co_await qp->post_send(verbs::SendWr{
              .wr_id = 1, .opcode = verbs::Opcode::kRdmaWrite,
              .sge = {s.addr(), 64, lkey}, .remote_addr = d.addr(), .rkey = rkey});
        }
      }
      for (int i = 0; i < r * static_cast<int>(qps.size()); ++i) {
        co_await verbs::next_completion(world.send_cq0, world.node0.cpu(), ns(200));
      }
      dt = world.engine.now() - start;
    }(w, qps0, src, dst, rounds, elapsed));
    w.engine.run();
    return to_us(elapsed) / (20.0 * num_qps);  // per message
  };

  const double per_msg_4 = run(4);
  const double per_msg_12 = run(12);
  EXPECT_GT(per_msg_12, per_msg_4 + 0.5)
      << "context misses must add visible per-message cost";
}

TEST(IbProtection, ChecksMirrorIwarp) {
  World w;
  auto& src = w.node0.mem().alloc(4096);
  EXPECT_THROW(
      {
        w.engine.spawn([](World& world, hw::Buffer& s) -> Task<> {
          co_await world.qp0->post_send(verbs::SendWr{
              .wr_id = 1, .opcode = verbs::Opcode::kSend, .sge = {s.addr(), 64, 12345}});
        }(w, src));
        w.engine.run();
      },
      std::invalid_argument);
}

TEST(IbDeterminism, RepeatedRunsMatch) {
  auto run_once = [] {
    World w;
    auto& src = w.node0.mem().alloc(1 << 20, false);
    auto& dst = w.node1.mem().alloc(1 << 20, false);
    Time done = 0;
    w.engine.spawn([](World& world, hw::Buffer& s, hw::Buffer& d, Time& fin) -> Task<> {
      auto lkey = co_await world.nic0.reg_mr(s.addr(), s.size());
      auto rkey = co_await world.nic1.reg_mr(d.addr(), d.size());
      auto watch = world.nic1.watch_placement(d.addr(), 1 << 20);
      co_await world.qp0->post_send(verbs::SendWr{
          .wr_id = 1, .opcode = verbs::Opcode::kRdmaWrite,
          .sge = {s.addr(), 1 << 20, lkey}, .remote_addr = d.addr(), .rkey = rkey});
      co_await watch->wait();
      fin = world.engine.now();
    }(w, src, dst, done));
    w.engine.run();
    return std::pair{done, w.engine.events_processed()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace fabsim::ib

// FabricScope-Check, dynamic half (src/sim/scope.hpp): ScopeAuditor
// semantics, the detached/attached digest-transparency pin, and the
// mutation self-test — the deliberately mislabeled post() seam
// (SwitchConfig::mutation_mislabel_wire_scope) must be caught by the
// auditor on live traffic, proving the runtime gate can actually fail.
// scripts/scope_check.py --mutation proves the same for the static half.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/invariant.hpp"
#include "core/calibration.hpp"
#include "core/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/scope.hpp"
#include "topo/spec.hpp"
#include "verbs/verbs.hpp"

namespace fabsim {
namespace {

// --- ScopeAuditor unit semantics -------------------------------------

TEST(ScopeAuditor, ConfinedEventMayOnlyTouchItsOwnNode) {
  check::InvariantMonitor monitor(/*fatal=*/false);
  scope::ScopeAuditor auditor(&monitor);

  auditor.begin_event(us(1), /*event_scope=*/2);
  auditor.owned_access(check::Layer::kHw, /*owner_node=*/2, "own node");
  EXPECT_EQ(auditor.violations(), 0u);
  auditor.owned_access(check::Layer::kHw, /*owner_node=*/3, "foreign node");
  EXPECT_EQ(auditor.violations(), 1u);
  auditor.end_event();

  EXPECT_EQ(monitor.violation_count(), 1u);
  EXPECT_GE(auditor.checks(), 2u);
}

TEST(ScopeAuditor, SharedStateRequiresUnconfinedScope) {
  check::InvariantMonitor monitor(/*fatal=*/false);
  scope::ScopeAuditor auditor(&monitor);

  // Scope -1 ("touches anything") events may touch shared state...
  auditor.begin_event(us(1), /*event_scope=*/-1);
  auditor.shared_access(check::Layer::kHw, /*node=*/0, "fabric graph");
  auditor.owned_access(check::Layer::kHw, /*owner_node=*/5, "any node");
  EXPECT_EQ(auditor.violations(), 0u);
  auditor.end_event();

  // ...confined events may not.
  auditor.begin_event(us(2), /*event_scope=*/4);
  auditor.shared_access(check::Layer::kHw, /*node=*/4, "fabric graph");
  EXPECT_EQ(auditor.violations(), 1u);
  auditor.end_event();
}

TEST(ScopeAuditor, InactiveOutsideDispatchAndThrowsWithoutMonitor) {
  scope::ScopeAuditor auditor;  // no monitor: violations are fatal

  // Accesses outside any dispatched event (setup code) are not audited.
  auditor.owned_access(check::Layer::kHw, /*owner_node=*/9, "setup");
  EXPECT_EQ(auditor.checks(), 0u);
  EXPECT_EQ(auditor.violations(), 0u);

  auditor.begin_event(us(1), /*event_scope=*/1);
  EXPECT_THROW(auditor.owned_access(check::Layer::kHw, /*owner_node=*/2, "foreign"),
               check::InvariantViolationError);
  auditor.end_event();
}

// --- Whole-stack runs -------------------------------------------------

struct WriteRun {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
};

// Three concurrent RDMA Writes into the highest node, the
// tests/topo_test.cpp traffic shape; works on any fabric the profile
// names. With `attach_auditor` the caller-owned ScopeAuditor (counting
// monitor) rides along on every dispatched event.
WriteRun run_writes(const core::NetworkProfile& profile, int nodes, bool attach_auditor) {
  core::Cluster cluster(nodes, profile);
  check::InvariantMonitor monitor(/*fatal=*/false);
  scope::ScopeAuditor auditor(&monitor);
  if (attach_auditor) cluster.attach_scope_auditor(auditor);

  const int dst_node = nodes - 1;
  const std::uint32_t len = 8 * 1024;
  std::vector<std::unique_ptr<verbs::CompletionQueue>> cqs;
  std::vector<std::unique_ptr<verbs::QueuePair>> qps;
  for (int s = 0; s < 3 && s < dst_node; ++s) {
    auto& src = cluster.node(s).mem().alloc(len, false);
    auto& dst = cluster.node(dst_node).mem().alloc(len, false);
    cqs.push_back(std::make_unique<verbs::CompletionQueue>(cluster.engine()));
    auto dst_qp = cluster.device(dst_node).create_qp(*cqs.back(), *cqs.back());
    auto src_qp = cluster.device(s).create_qp(*cqs.back(), *cqs.back());
    cluster.device(dst_node).establish(*dst_qp, *src_qp);
    cluster.engine().spawn([](core::Cluster& c, verbs::QueuePair& qp, int sender, int sink,
                              std::uint64_t sa, std::uint64_t da, std::uint32_t n) -> Task<> {
      auto lkey = co_await c.device(sender).reg_mr(sa, n);
      auto rkey = co_await c.device(sink).reg_mr(da, n);
      auto watch = c.device(sink).watch_placement(da, n);
      co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                          .opcode = verbs::Opcode::kRdmaWrite,
                                          .sge = {sa, n, lkey},
                                          .remote_addr = da,
                                          .rkey = rkey});
      co_await watch->wait();
    }(cluster, *src_qp, s, dst_node, src.addr(), dst.addr(), len));
    qps.push_back(std::move(dst_qp));
    qps.push_back(std::move(src_qp));
  }
  cluster.engine().run();

  return WriteRun{cluster.engine().run_digest(), cluster.engine().events_processed(),
                  auditor.checks(), auditor.violations()};
}

// The auditor is an observer: attaching it must not perturb the
// schedule. Same workload with and without it -> byte-identical digest.
TEST(ScopeAuditor, AttachedAuditorLeavesRunDigestIdentical) {
  const core::NetworkProfile profile = core::iwarp_profile();
  const WriteRun plain = run_writes(profile, 4, /*attach_auditor=*/false);
  const WriteRun audited = run_writes(profile, 4, /*attach_auditor=*/true);
  EXPECT_EQ(plain.digest, audited.digest);
  EXPECT_EQ(plain.events, audited.events);
  EXPECT_GT(audited.checks, 0u);       // the traps actually fired
  EXPECT_EQ(audited.violations, 0u);   // and the labels were honest
}

// A routed (multi-switch) run exercises the Switch shared-state traps
// too; an honestly-labelled tree stays clean under audit.
TEST(ScopeAuditor, CleanClosRunAuditsCleanly) {
  core::NetworkProfile profile = core::iwarp_profile();
  profile.fabric = topo::FabricSpec{2, 8, 1.0, hw::FlowControl::kLossy};
  const WriteRun r = run_writes(profile, 8, /*attach_auditor=*/true);
  EXPECT_GT(r.checks, 0u);
  EXPECT_EQ(r.violations, 0u);
}

// The mutation self-test: arm the deliberately mislabeled wire-hop post
// (src/hw/fabric.cpp labels the switch-internal admit event with the
// frame's source node instead of scope -1). The Switch's shared-state
// trap must catch the lie on every routed frame.
TEST(ScopeAuditor, CatchesMislabeledWireScopeMutation) {
  core::NetworkProfile profile = core::iwarp_profile();
  profile.fabric = topo::FabricSpec{2, 8, 1.0, hw::FlowControl::kLossy};
  profile.switch_cfg.mutation_mislabel_wire_scope = true;
  const WriteRun r = run_writes(profile, 8, /*attach_auditor=*/true);
  EXPECT_GT(r.violations, 0u);
}

}  // namespace
}  // namespace fabsim

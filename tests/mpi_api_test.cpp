// Tests for the wider MiniMPI API surface: probe, sendrecv, and the
// rooted collectives (reduce, gather, scatter) across all networks.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/cluster.hpp"

namespace fabsim::core {
namespace {

class MpiApi : public ::testing::TestWithParam<Network> {};

INSTANTIATE_TEST_SUITE_P(Networks, MpiApi,
                         ::testing::Values(Network::kIwarp, Network::kIb, Network::kMxoe,
                                           Network::kMxom),
                         [](const auto& sweep) { return network_name(sweep.param); });

TEST_P(MpiApi, ProbeSeesEnvelopeWithoutConsuming) {
  Cluster cluster(2, GetParam());
  auto& src = cluster.node(0).mem().alloc(4096, false);
  auto& dst = cluster.node(1).mem().alloc(4096, false);

  cluster.engine().spawn([](Cluster& c, std::uint64_t s) -> Task<> {
    co_await c.setup_mpi();
    co_await c.mpi_rank(0).send(1, 77, s, 1234);
  }(cluster, src.addr()));
  cluster.engine().spawn([](Cluster& c, std::uint64_t d) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(1);
    const auto envelope = co_await rank.probe(0, 77);
    EXPECT_EQ(envelope.source, 0);
    EXPECT_EQ(envelope.tag, 77);
    EXPECT_EQ(envelope.length, 1234u);
    // The message must still be receivable afterwards.
    const auto status = co_await rank.recv(0, 77, d, 4096);
    EXPECT_EQ(status.length, 1234u);
  }(cluster, dst.addr()));
  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST_P(MpiApi, ProbeWithWildcardsReportsTrueEnvelope) {
  Cluster cluster(2, GetParam());
  auto& src = cluster.node(0).mem().alloc(256, false);
  auto& dst = cluster.node(1).mem().alloc(256, false);

  cluster.engine().spawn([](Cluster& c, std::uint64_t s) -> Task<> {
    co_await c.setup_mpi();
    co_await c.mpi_rank(0).send(1, 4242, s, 99);
  }(cluster, src.addr()));
  cluster.engine().spawn([](Cluster& c, std::uint64_t d) -> Task<> {
    co_await c.setup_mpi();
    const auto envelope = co_await c.mpi_rank(1).probe(mpi::kAnySource, mpi::kAnyTag);
    EXPECT_EQ(envelope.source, 0);
    EXPECT_EQ(envelope.tag, 4242);
    EXPECT_EQ(envelope.length, 99u);
    co_await c.mpi_rank(1).recv(envelope.source, envelope.tag, d, 256);
  }(cluster, dst.addr()));
  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST_P(MpiApi, SendrecvShiftsRing) {
  constexpr int kRanks = 4;
  NetworkProfile p = profile(GetParam());
  p.mpi.eager_buffers = 128;
  Cluster cluster(kRanks, p);
  std::vector<hw::Buffer*> bufs;
  for (int r = 0; r < kRanks; ++r) bufs.push_back(&cluster.node(r).mem().alloc(256));

  int checked = 0;
  for (int r = 0; r < kRanks; ++r) {
    cluster.engine().spawn([](Cluster& c, int me, std::vector<hw::Buffer*>& b,
                              int& ok) -> Task<> {
      co_await c.setup_mpi();
      auto& rank = c.mpi_rank(me);
      const auto idx = static_cast<std::size_t>(me);
      auto w = c.node(me).mem().window(b[idx]->addr(), 8);
      const std::uint64_t token = 0xc0ffee00u + static_cast<std::uint64_t>(me);
      std::memcpy(w.data(), &token, 8);
      // Shift right around the ring: send to me+1, receive from me-1.
      const auto status = co_await rank.sendrecv(
          (me + 1) % kRanks, 9, b[idx]->addr(), 8, (me - 1 + kRanks) % kRanks, 9,
          b[idx]->addr() + 64, 64);
      EXPECT_EQ(status.source, (me - 1 + kRanks) % kRanks);
      std::uint64_t got = 0;
      std::memcpy(&got, c.node(me).mem().window(b[idx]->addr() + 64, 8).data(), 8);
      EXPECT_EQ(got, 0xc0ffee00u + static_cast<std::uint64_t>((me - 1 + kRanks) % kRanks));
      ++ok;
    }(cluster, r, bufs, checked));
  }
  cluster.engine().run();
  EXPECT_EQ(checked, kRanks);
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST_P(MpiApi, ReduceGatherScatterRoundTrip) {
  constexpr int kRanks = 4;
  constexpr int kRoot = 2;
  NetworkProfile p = profile(GetParam());
  p.mpi.eager_buffers = 128;
  Cluster cluster(kRanks, p);
  constexpr std::uint32_t kBlock = 512;
  std::vector<hw::Buffer*> data, scratch, big;
  for (int r = 0; r < kRanks; ++r) {
    data.push_back(&cluster.node(r).mem().alloc(kBlock));
    scratch.push_back(&cluster.node(r).mem().alloc(kBlock));
    big.push_back(&cluster.node(r).mem().alloc(kBlock * kRanks));
  }

  int checked = 0;
  for (int r = 0; r < kRanks; ++r) {
    cluster.engine().spawn([](Cluster& c, int me, std::vector<hw::Buffer*>& d,
                              std::vector<hw::Buffer*>& s, std::vector<hw::Buffer*>& g,
                              int& ok) -> Task<> {
      co_await c.setup_mpi();
      auto& rank = c.mpi_rank(me);
      const auto idx = static_cast<std::size_t>(me);

      // reduce_sum to root: contribute (me+1) in each of 8 doubles.
      {
        auto w = c.node(me).mem().window(d[idx]->addr(), 8 * sizeof(double));
        for (int i = 0; i < 8; ++i) {
          const double v = me + 1;
          std::memcpy(w.data() + i * sizeof(double), &v, sizeof(double));
        }
        co_await rank.reduce_sum(kRoot, d[idx]->addr(), s[idx]->addr(), 8);
        if (me == kRoot) {
          double got = 0;
          std::memcpy(&got, w.data(), sizeof(double));
          EXPECT_DOUBLE_EQ(got, 1 + 2 + 3 + 4);
        }
      }

      // gather to root, then scatter back, stamped per rank.
      {
        auto w = c.node(me).mem().window(d[idx]->addr(), kBlock);
        std::memset(w.data(), 0x20 + me, kBlock);
        co_await rank.gather(kRoot, d[idx]->addr(), kBlock, g[idx]->addr());
        if (me == kRoot) {
          for (int src = 0; src < kRanks; ++src) {
            auto block = c.node(me).mem().window(
                g[idx]->addr() + static_cast<std::uint64_t>(src) * kBlock, kBlock);
            EXPECT_EQ(std::to_integer<int>(block[0]), 0x20 + src) << "gather block " << src;
          }
        }
        co_await rank.scatter(kRoot, g[idx]->addr(), kBlock, s[idx]->addr());
        auto back = c.node(me).mem().window(s[idx]->addr(), kBlock);
        EXPECT_EQ(std::to_integer<int>(back[0]), 0x20 + me) << "scatter returned wrong block";
      }
      ++ok;
    }(cluster, r, data, scratch, big, checked));
  }
  cluster.engine().run();
  EXPECT_EQ(checked, kRanks);
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST_P(MpiApi, AlltoallTransposesBlocks) {
  constexpr int kRanks = 4;
  NetworkProfile p = profile(GetParam());
  p.mpi.eager_buffers = 128;
  Cluster cluster(kRanks, p);
  constexpr std::uint32_t kBlock = 256;
  std::vector<hw::Buffer*> send, recv;
  for (int r = 0; r < kRanks; ++r) {
    send.push_back(&cluster.node(r).mem().alloc(kBlock * kRanks));
    recv.push_back(&cluster.node(r).mem().alloc(kBlock * kRanks));
  }
  int checked = 0;
  for (int r = 0; r < kRanks; ++r) {
    cluster.engine().spawn([](Cluster& c, int me, std::vector<hw::Buffer*>& s_,
                              std::vector<hw::Buffer*>& r_, int& ok) -> Task<> {
      co_await c.setup_mpi();
      const auto idx = static_cast<std::size_t>(me);
      // Block d carries the byte (0x80 | me << 3 | d).
      for (int d = 0; d < kRanks; ++d) {
        auto w = c.node(me).mem().window(
            s_[idx]->addr() + static_cast<std::uint64_t>(d) * kBlock, kBlock);
        std::memset(w.data(), 0x80 | (me << 3) | d, kBlock);
      }
      co_await c.mpi_rank(me).alltoall(s_[idx]->addr(), kBlock, r_[idx]->addr());
      for (int from = 0; from < kRanks; ++from) {
        auto w = c.node(me).mem().window(
            r_[idx]->addr() + static_cast<std::uint64_t>(from) * kBlock, kBlock);
        EXPECT_EQ(std::to_integer<int>(w[0]), 0x80 | (from << 3) | me)
            << "rank " << me << " block from " << from;
        EXPECT_EQ(std::to_integer<int>(w[kBlock - 1]), 0x80 | (from << 3) | me);
      }
      ++ok;
    }(cluster, r, send, recv, checked));
  }
  cluster.engine().run();
  EXPECT_EQ(checked, kRanks);
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST_P(MpiApi, WaitanyReturnsACompletedRequest) {
  Cluster cluster(2, GetParam());
  auto& src = cluster.node(0).mem().alloc(4096, false);
  auto& dst = cluster.node(1).mem().alloc(3 * 4096, false);

  cluster.engine().spawn([](Cluster& c, std::uint64_t s) -> Task<> {
    co_await c.setup_mpi();
    // Tag 1 first; the tag-0 requests stay pending until much later.
    co_await c.engine().sleep(us(200));
    co_await c.mpi_rank(0).send(1, 1, s, 128);
    co_await c.engine().sleep(us(400));
    co_await c.mpi_rank(0).send(1, 0, s, 8);
    co_await c.mpi_rank(0).send(1, 0, s, 8);
  }(cluster, src.addr()));
  cluster.engine().spawn([](Cluster& c, std::uint64_t d) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(1);
    std::vector<mpi::RequestPtr> reqs;
    reqs.push_back(co_await rank.irecv(0, 0, d, 4096));
    reqs.push_back(co_await rank.irecv(0, 1, d + 4096, 4096));
    reqs.push_back(co_await rank.irecv(0, 0, d + 8192, 4096));
    EXPECT_FALSE(co_await rank.testall(reqs));
    const std::size_t which = co_await rank.waitany(reqs);
    EXPECT_EQ(which, 1u) << "only the tag-1 receive can complete first";
    EXPECT_TRUE(reqs[1]->done());
    co_await rank.wait(reqs[0]);
    co_await rank.wait(reqs[2]);
    EXPECT_TRUE(co_await rank.testall(reqs));
  }(cluster, dst.addr()));
  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

}  // namespace
}  // namespace fabsim::core

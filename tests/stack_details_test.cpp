// Protocol-detail tests: TCP window enforcement and wire accounting on
// the iWARP stack, MTU boundaries and context-LRU behaviour on IB, match
// masks and iprobe on MX, and registration arithmetic everywhere.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/cluster.hpp"
#include "mx/endpoint.hpp"

namespace fabsim::core {
namespace {

// ---------------------------------------------------------------------------
// iWARP details
// ---------------------------------------------------------------------------

TEST(IwarpDetails, SegmentCountMatchesMssExactly) {
  for (std::uint32_t len : {1u, 1407u, 1408u, 1409u, 2816u, 1000000u}) {
    Cluster cluster(2, Network::kIwarp);
    verbs::CompletionQueue cq(cluster.engine());
    auto qp0 = cluster.device(0).create_qp(cq, cq);
    auto qp1 = cluster.device(1).create_qp(cq, cq);
    cluster.device(0).establish(*qp0, *qp1);
    auto& src = cluster.node(0).mem().alloc(len, false);
    auto& dst = cluster.node(1).mem().alloc(len, false);
    cluster.engine().spawn([](Cluster& c, verbs::QueuePair& qp, std::uint64_t s,
                              std::uint64_t d, std::uint32_t n) -> Task<> {
      auto lkey = co_await c.device(0).reg_mr(s, n);
      auto rkey = co_await c.device(1).reg_mr(d, n);
      auto watch = c.device(1).watch_placement(d, n);
      co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                          .opcode = verbs::Opcode::kRdmaWrite,
                                          .sge = {s, n, lkey},
                                          .remote_addr = d,
                                          .rkey = rkey});
      co_await watch->wait();
    }(cluster, *qp0, src.addr(), dst.addr(), len));
    cluster.engine().run();
    const std::uint32_t mss = cluster.rnic(0).config().mss;
    EXPECT_EQ(cluster.rnic(0).segments_sent(), (len + mss - 1) / mss) << "len=" << len;
  }
}

TEST(IwarpDetails, WindowBoundsInFlightBytes) {
  // With a tiny TCP window the transfer must still complete, but the
  // total time stretches to ~ceil(len/window) RTT-ish rounds.
  auto duration_with_window = [](std::uint32_t window) {
    NetworkProfile p = iwarp_profile();
    p.rnic.window = window;
    Cluster cluster(2, p);
    verbs::CompletionQueue cq(cluster.engine());
    auto qp0 = cluster.device(0).create_qp(cq, cq);
    auto qp1 = cluster.device(1).create_qp(cq, cq);
    cluster.device(0).establish(*qp0, *qp1);
    const std::uint32_t len = 256 * 1024;
    auto& src = cluster.node(0).mem().alloc(len, false);
    auto& dst = cluster.node(1).mem().alloc(len, false);
    Time done = 0;
    cluster.engine().spawn([](Cluster& c, verbs::QueuePair& qp, std::uint64_t s,
                              std::uint64_t d, std::uint32_t n, Time* out) -> Task<> {
      auto lkey = co_await c.device(0).reg_mr(s, n);
      auto rkey = co_await c.device(1).reg_mr(d, n);
      auto watch = c.device(1).watch_placement(d, n);
      const Time start = c.engine().now();
      co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                          .opcode = verbs::Opcode::kRdmaWrite,
                                          .sge = {s, n, lkey},
                                          .remote_addr = d,
                                          .rkey = rkey});
      co_await watch->wait();
      *out = c.engine().now() - start;
    }(cluster, *qp0, src.addr(), dst.addr(), len, &done));
    cluster.engine().run();
    return done;
  };
  const Time wide = duration_with_window(256 * 1024);
  const Time mid = duration_with_window(8 * 1024);
  const Time narrow = duration_with_window(2 * 1024);
  // Delayed-ack clocking keeps even small windows moving, but each
  // shrink must cost wall-clock time, and 2 KB caps throughput hard.
  EXPECT_GT(mid, wide * 11 / 10);
  EXPECT_GT(narrow, mid * 2);
}

TEST(IwarpDetails, AckTrafficIsDelayedAcked) {
  Cluster cluster(2, Network::kIwarp);
  verbs::CompletionQueue cq(cluster.engine());
  auto qp0 = cluster.device(0).create_qp(cq, cq);
  auto qp1 = cluster.device(1).create_qp(cq, cq);
  cluster.device(0).establish(*qp0, *qp1);
  const std::uint32_t len = 1 << 20;
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);
  cluster.engine().spawn([](Cluster& c, verbs::QueuePair& qp, std::uint64_t s, std::uint64_t d,
                            std::uint32_t n) -> Task<> {
    auto lkey = co_await c.device(0).reg_mr(s, n);
    auto rkey = co_await c.device(1).reg_mr(d, n);
    auto watch = c.device(1).watch_placement(d, n);
    co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                        .opcode = verbs::Opcode::kRdmaWrite,
                                        .sge = {s, n, lkey},
                                        .remote_addr = d,
                                        .rkey = rkey});
    co_await watch->wait();
  }(cluster, *qp0, src.addr(), dst.addr(), len));
  cluster.engine().run();
  const auto data_segments = cluster.rnic(0).segments_sent();
  const auto acks = cluster.rnic(1).acks_sent();
  // One ack per two segments, plus a small allowance for delayed-ack
  // timers firing during lulls.
  EXPECT_LE(acks, data_segments / 2 + data_segments / 20 + 2);
  EXPECT_GE(acks, data_segments / 3) << "acks must actually flow";
}

// ---------------------------------------------------------------------------
// InfiniBand details
// ---------------------------------------------------------------------------

TEST(IbDetails, PacketCountMatchesMtu) {
  for (std::uint32_t len : {1u, 2048u, 2049u, 100000u}) {
    Cluster cluster(2, Network::kIb);
    verbs::CompletionQueue cq(cluster.engine());
    auto qp0 = cluster.device(0).create_qp(cq, cq);
    auto qp1 = cluster.device(1).create_qp(cq, cq);
    cluster.device(0).establish(*qp0, *qp1);
    auto& src = cluster.node(0).mem().alloc(len, false);
    auto& dst = cluster.node(1).mem().alloc(len, false);
    cluster.engine().spawn([](Cluster& c, verbs::QueuePair& qp, std::uint64_t s,
                              std::uint64_t d, std::uint32_t n) -> Task<> {
      auto lkey = co_await c.device(0).reg_mr(s, n);
      auto rkey = co_await c.device(1).reg_mr(d, n);
      auto watch = c.device(1).watch_placement(d, n);
      co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                          .opcode = verbs::Opcode::kRdmaWrite,
                                          .sge = {s, n, lkey},
                                          .remote_addr = d,
                                          .rkey = rkey});
      co_await watch->wait();
    }(cluster, *qp0, src.addr(), dst.addr(), len));
    cluster.engine().run();
    const std::uint32_t mtu = cluster.hca(0).config().mtu;
    EXPECT_EQ(cluster.hca(0).packets_sent(), (len + mtu - 1) / mtu) << "len=" << len;
  }
}

TEST(IbDetails, ContextCacheLruEvictionOrder) {
  // Touch QPs 0..9, then re-touch 0: with an 8-entry cache, 0 was evicted
  // (a miss), which in turn evicts 2 — so 1 misses too, but 9 still hits.
  Cluster cluster(2, Network::kIb);
  verbs::CompletionQueue cq0(cluster.engine()), cq1(cluster.engine());
  std::vector<std::unique_ptr<verbs::QueuePair>> qps0, qps1;
  for (int i = 0; i < 10; ++i) {
    qps0.push_back(cluster.device(0).create_qp(cq0, cq0));
    qps1.push_back(cluster.device(1).create_qp(cq1, cq1));
    cluster.device(0).establish(*qps0.back(), *qps1.back());
  }
  auto& src = cluster.node(0).mem().alloc(64, false);
  auto& dst = cluster.node(1).mem().alloc(64, false);

  cluster.engine().spawn([](Cluster& c, std::vector<std::unique_ptr<verbs::QueuePair>>& qps,
                            verbs::CompletionQueue& cq, std::uint64_t s,
                            std::uint64_t d) -> Task<> {
    auto lkey = co_await c.device(0).reg_mr(s, 64);
    auto rkey = co_await c.device(1).reg_mr(d, 64);
    auto send_on = [&](int i) -> Task<> {
      co_await qps[static_cast<std::size_t>(i)]->post_send(
          verbs::SendWr{.wr_id = 1,
                        .opcode = verbs::Opcode::kRdmaWrite,
                        .sge = {s, 8, lkey},
                        .remote_addr = d,
                        .rkey = rkey});
      co_await verbs::next_completion(cq, c.node(0).cpu(), ns(200));
    };
    for (int i = 0; i < 10; ++i) co_await send_on(i);  // 10 compulsory misses
    const auto misses_before = c.hca(0).context_misses();
    co_await send_on(9);  // most recent: hit
    EXPECT_EQ(c.hca(0).context_misses(), misses_before);
    co_await send_on(0);  // evicted long ago: miss
    EXPECT_EQ(c.hca(0).context_misses(), misses_before + 1);
  }(cluster, qps0, cq0, src.addr(), dst.addr()));
  cluster.engine().run();
}

// ---------------------------------------------------------------------------
// MX details
// ---------------------------------------------------------------------------

class MxMaskSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t, bool>> {};

INSTANTIATE_TEST_SUITE_P(
    Masks, MxMaskSweep,
    ::testing::Values(
        // (send bits, recv mask, should match) with recv bits = 0x1200 & mask
        std::make_tuple(0x1200ull, ~0ull, true),
        std::make_tuple(0x1201ull, ~0ull, false),
        std::make_tuple(0x1201ull, 0xff00ull, true),   // low byte ignored
        std::make_tuple(0x5200ull, 0x0f00ull, true),   // only nibble checked
        std::make_tuple(0x1300ull, 0xff00ull, false),
        std::make_tuple(0xffffffffffffffffull, 0ull, true)));  // mask 0 = match all

TEST_P(MxMaskSweep, MatchSemantics) {
  const auto [send_bits, mask, should_match] = GetParam();
  Cluster cluster(2, Network::kMxom);
  auto& src = cluster.node(0).mem().alloc(64, false);
  auto& dst = cluster.node(1).mem().alloc(64, false);
  bool matched = false;

  cluster.engine().spawn([](Cluster& c, std::uint64_t s, std::uint64_t d, std::uint64_t bits,
                            std::uint64_t m, bool* out) -> Task<> {
    auto& ep0 = c.endpoint(0);
    auto& ep1 = c.endpoint(1);
    auto rx = co_await ep1.irecv(d, 64, 0x1200ull & m, m);
    auto tx = co_await ep0.isend(s, 8, ep1.port(), bits);
    co_await ep0.wait(tx);
    co_await c.engine().sleep(us(100));
    *out = rx->done();
  }(cluster, src.addr(), dst.addr(), send_bits, mask, &matched));
  cluster.engine().run();
  EXPECT_EQ(matched, should_match);
}

TEST(MxDetails, IprobePeeksWithoutConsuming) {
  Cluster cluster(2, Network::kMxom);
  auto& src = cluster.node(0).mem().alloc(4096, false);
  auto& dst = cluster.node(1).mem().alloc(4096, false);

  cluster.engine().spawn([](Cluster& c, std::uint64_t s, std::uint64_t d) -> Task<> {
    auto& ep0 = c.endpoint(0);
    auto& ep1 = c.endpoint(1);
    auto tx = co_await ep0.isend(s, 777, ep1.port(), 0xabc);
    co_await ep0.wait(tx);
    co_await c.engine().sleep(us(50));

    auto miss = co_await ep1.iprobe(0xdef, ~0ull);
    EXPECT_FALSE(miss.found);
    auto hit = co_await ep1.iprobe(0xabc, ~0ull);
    EXPECT_TRUE(hit.found);
    if (!hit.found) co_return;
    EXPECT_EQ(hit.length, 777u);
    EXPECT_EQ(ep1.unexpected_depth(), 1u) << "probe must not consume";

    auto rx = co_await ep1.irecv(d, 4096, 0xabc, ~0ull);
    co_await ep1.wait(rx);
    EXPECT_EQ(rx->length(), 777u);
  }(cluster, src.addr(), dst.addr()));
  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST(MxDetails, RendezvousTruncationThrows) {
  Cluster cluster(2, Network::kMxom);
  auto& src = cluster.node(0).mem().alloc(128 * 1024, false);
  auto& dst = cluster.node(1).mem().alloc(128 * 1024, false);
  EXPECT_THROW(
      {
        cluster.engine().spawn([](Cluster& c, std::uint64_t s, std::uint64_t d) -> Task<> {
          auto& ep0 = c.endpoint(0);
          auto& ep1 = c.endpoint(1);
          auto rx = co_await ep1.irecv(d, 1024, 5, ~0ull);  // too small for rndv
          auto tx = co_await ep0.isend(s, 128 * 1024, ep1.port(), 5);
          co_await ep1.wait(rx);
          co_await ep0.wait(tx);
        }(cluster, src.addr(), dst.addr()));
        cluster.engine().run();
      },
      std::length_error);
}


// ---------------------------------------------------------------------------
// Latency decomposition (DESIGN.md section 6): for a single-segment
// message, the measured one-way time must equal the sum of the modeled
// stages within a small tolerance.
// ---------------------------------------------------------------------------

TEST(IwarpDetails, OneWayLatencyMatchesStageSum) {
  Cluster cluster(2, Network::kIwarp);
  verbs::CompletionQueue cq(cluster.engine());
  auto qp0 = cluster.device(0).create_qp(cq, cq);
  auto qp1 = cluster.device(1).create_qp(cq, cq);
  cluster.device(0).establish(*qp0, *qp1);
  constexpr std::uint32_t kMsg = 64;
  auto& src = cluster.node(0).mem().alloc(kMsg, false);
  auto& dst = cluster.node(1).mem().alloc(kMsg, false);
  const auto k0 = cluster.device(0).registry().register_region(src.addr(), kMsg);
  const auto k1 = cluster.device(1).registry().register_region(dst.addr(), kMsg);

  Time measured = 0;
  cluster.engine().spawn([](Cluster& c, verbs::QueuePair& qp, std::uint64_t s, std::uint64_t d,
                            verbs::MrKey lk, verbs::MrKey rk, Time* out) -> Task<> {
    auto watch = c.device(1).watch_placement(d, kMsg);
    const Time start = c.engine().now();
    co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                        .opcode = verbs::Opcode::kRdmaWrite,
                                        .sge = {s, kMsg, lk},
                                        .remote_addr = d,
                                        .rkey = rk});
    co_await watch->wait();
    *out = c.engine().now() - start;
  }(cluster, *qp0, src.addr(), dst.addr(), k0, k1, measured ? &measured : &measured));
  cluster.engine().run();

  const auto& r = cluster.rnic(0).config();
  const auto& sw = cluster.profile().switch_cfg;
  const auto& pcie = cluster.profile().pcie;
  const std::uint32_t wire = kMsg + r.seg_overhead;
  const Time expected =
      r.post_send_cpu + r.doorbell + r.wqe_fetch +
      (pcie.transaction + pcie.rate.bytes_time(kMsg + 64)) +           // host fetch
      (r.pcix.transaction + r.pcix.rate.bytes_time(kMsg + 32)) +       // internal bus
      r.tx_latency + r.engine_byte_rate.bytes_time(kMsg) +             // tx engine
      sw.link_rate.bytes_time(wire) +                                  // NIC -> switch
      sw.propagation + sw.cut_through +
      sw.link_rate.bytes_time(wire) +                                  // switch -> NIC
      sw.propagation +
      r.rx_latency + r.engine_byte_rate.bytes_time(kMsg) +             // rx engine
      (r.pcix.transaction + r.pcix.rate.bytes_time(kMsg + 32)) +       // placement
      (pcie.transaction + pcie.rate.bytes_time(kMsg + 64));
  // Pipelined-engine occupancy and per-message overheads make the exact
  // sum slightly richer; require agreement within 15%.
  EXPECT_NEAR(static_cast<double>(measured), static_cast<double>(expected),
              static_cast<double>(expected) * 0.15)
      << "measured " << to_us(measured) << "us vs stage sum " << to_us(expected) << "us";
}

}  // namespace
}  // namespace fabsim::core

// Randomized protocol exercisers: both sides derive the same traffic
// schedule from a shared seed, then verify every transfer's status and
// payload. Mixes eager and rendezvous sizes, tags, and posting orders —
// the kind of interleaving hand-written tests miss.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "core/cluster.hpp"
#include "sim/random.hpp"

namespace fabsim::core {
namespace {

struct Op {
  std::uint32_t size;
  int tag;
};

std::vector<Op> make_schedule(std::uint64_t seed, int count, std::uint32_t max_size) {
  Xoshiro256 rng(seed);
  std::vector<Op> ops;
  for (int i = 0; i < count; ++i) {
    // Log-uniform sizes: exercise both protocols about equally.
    const std::uint32_t magnitude = 1u << rng.uniform_below(18);  // up to 128 KB
    const std::uint32_t size =
        1 + static_cast<std::uint32_t>(rng.uniform_below(std::min(magnitude, max_size)));
    ops.push_back(Op{size, static_cast<int>(rng.uniform_below(3))});
  }
  return ops;
}

std::byte stamp(int i, std::uint32_t pos) {
  return static_cast<std::byte>((i * 37 + pos * 11 + 5) & 0xff);
}

class RandomTraffic : public ::testing::TestWithParam<std::tuple<Network, std::uint64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomTraffic,
    ::testing::Combine(::testing::Values(Network::kIwarp, Network::kIb, Network::kMxoe,
                                         Network::kMxom),
                       ::testing::Values(11u, 77u, 424242u)),
    [](const auto& sweep) {
      return std::string(network_name(std::get<0>(sweep.param))) + "_seed" +
             std::to_string(std::get<1>(sweep.param));
    });

TEST_P(RandomTraffic, InOrderPerTagStreamsVerify) {
  const auto [network, seed] = GetParam();
  constexpr int kOps = 40;
  constexpr std::uint32_t kMax = 128 * 1024;
  const auto schedule = make_schedule(seed, kOps, kMax);

  Cluster cluster(2, network);
  auto& src = cluster.node(0).mem().alloc(kMax);
  auto& dst = cluster.node(1).mem().alloc(kMax);

  // Sender: stamp each message with its index, send in schedule order.
  cluster.engine().spawn([](Cluster& c, const std::vector<Op>& ops, std::uint64_t s) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(0);
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
      const Op& op = ops[static_cast<std::size_t>(i)];
      auto w = c.node(0).mem().window(s, op.size);
      w[0] = stamp(i, 0);
      w[op.size - 1] = stamp(i, op.size - 1);
      co_await rank.send(1, op.tag, s, op.size);
    }
  }(cluster, schedule, src.addr()));

  // Receiver: same schedule; per-tag order must hold even though the
  // receives for different tags are posted in schedule order.
  cluster.engine().spawn([](Cluster& c, const std::vector<Op>& ops, std::uint64_t d) -> Task<> {
    co_await c.setup_mpi();
    auto& rank = c.mpi_rank(1);
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
      const Op& op = ops[static_cast<std::size_t>(i)];
      const auto status = co_await rank.recv(0, op.tag, d, 1 << 20);
      EXPECT_EQ(status.length, op.size) << "op " << i;
      auto w = c.node(1).mem().window(d, op.size);
      EXPECT_EQ(w[0], stamp(i, 0)) << "op " << i << " head stamp";
      EXPECT_EQ(w[op.size - 1], stamp(i, op.size - 1)) << "op " << i << " tail stamp";
    }
  }(cluster, schedule, dst.addr()));

  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u) << "random traffic wedged";
}

TEST_P(RandomTraffic, WildcardDrainMatchesEverything) {
  const auto [network, seed] = GetParam();
  constexpr int kOps = 30;
  constexpr std::uint32_t kMax = 32 * 1024;
  const auto schedule = make_schedule(seed ^ 0x5a5a, kOps, kMax);

  Cluster cluster(2, network);
  auto& src = cluster.node(0).mem().alloc(kMax, false);
  auto& dst = cluster.node(1).mem().alloc(kMax, false);

  cluster.engine().spawn([](Cluster& c, const std::vector<Op>& ops, std::uint64_t s) -> Task<> {
    co_await c.setup_mpi();
    for (const Op& op : ops) {
      co_await c.mpi_rank(0).send(1, op.tag, s, op.size);
    }
  }(cluster, schedule, src.addr()));

  std::uint64_t received_bytes = 0;
  cluster.engine().spawn([](Cluster& c, int count, std::uint64_t d,
                            std::uint64_t* total) -> Task<> {
    co_await c.setup_mpi();
    for (int i = 0; i < count; ++i) {
      const auto status =
          co_await c.mpi_rank(1).recv(mpi::kAnySource, mpi::kAnyTag, d, 1 << 20);
      *total += status.length;
      EXPECT_EQ(status.source, 0);
    }
  }(cluster, kOps, dst.addr(), &received_bytes));

  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u);

  std::uint64_t sent_bytes = 0;
  for (const Op& op : schedule) sent_bytes += op.size;
  EXPECT_EQ(received_bytes, sent_bytes) << "conservation of bytes";
}

TEST_P(RandomTraffic, FourRankAllToAllPairs) {
  const auto [network, seed] = GetParam();
  NetworkProfile p = profile(network);
  p.mpi.eager_buffers = 128;
  Cluster cluster(4, p);
  constexpr std::uint32_t kMsg = 2048;
  std::vector<hw::Buffer*> bufs;
  for (int r = 0; r < 4; ++r) bufs.push_back(&cluster.node(r).mem().alloc(kMsg * 4, false));

  int completed = 0;
  for (int r = 0; r < 4; ++r) {
    cluster.engine().spawn([](Cluster& c, int me, std::uint64_t addr, std::uint64_t sd,
                              int& done) -> Task<> {
      co_await c.setup_mpi();
      auto& rank = c.mpi_rank(me);
      Xoshiro256 rng(sd + static_cast<std::uint64_t>(me));
      // Every rank sends one message to every other rank in a random
      // order and receives one from each, any order.
      std::vector<int> peers;
      for (int q = 0; q < 4; ++q) {
        if (q != me) peers.push_back(q);
      }
      for (std::size_t i = peers.size(); i > 1; --i) {
        std::swap(peers[i - 1], peers[rng.uniform_below(i)]);
      }
      std::vector<mpi::RequestPtr> reqs;
      for (std::size_t i = 0; i < 3; ++i) {
        reqs.push_back(co_await rank.irecv(mpi::kAnySource, 2, addr + i * kMsg, kMsg));
      }
      for (int peer : peers) {
        co_await rank.send(peer, 2, addr + 3 * kMsg, 1 + rng.uniform_below(kMsg - 1));
      }
      co_await rank.waitall(std::move(reqs));
      ++done;
    }(cluster, r, bufs[static_cast<std::size_t>(r)]->addr(), seed, completed));
  }
  cluster.engine().run();
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(cluster.engine().live_processes(), 0u) << "all-to-all wedged";
}

}  // namespace
}  // namespace fabsim::core

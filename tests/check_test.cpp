// FabricCheck tests.
//
// Every per-layer checker gets a *negative* test: feed it a deliberately
// corrupted state and prove it fires with the right rule id. The audit
// predicates are free functions, so corruption means "call with bad
// inputs" — no corruption seams inside the NICs. The monitor-level
// behaviours (fatal vs counting, engine hooks, daemon exclusion) and the
// two meta-properties the whole subsystem rests on — zero timeline
// overhead and run-digest determinism — are pinned at the end.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/audits.hpp"
#include "check/invariant.hpp"
#include "core/cluster.hpp"
#include "mpi/request.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "verbs/verbs.hpp"

namespace fabsim {
namespace {

using check::InvariantMonitor;
using check::InvariantViolationError;
using check::Layer;
using check::Verdict;

bool fired(const Verdict& v, const char* rule) {
  return !v.ok && std::string(v.rule) == rule;
}

// ---------------------------------------------------------------------------
// Monitor plumbing
// ---------------------------------------------------------------------------

TEST(Monitor, FatalModeThrowsTypedErrorWithContext) {
  InvariantMonitor monitor(/*fatal=*/true);
  try {
    monitor.report(us(42), Layer::kIb, 3, "psn_gap_in_inflight", "gap after 7");
    FAIL() << "fatal monitor must throw";
  } catch (const InvariantViolationError& e) {
    EXPECT_EQ(e.violation().layer, Layer::kIb);
    EXPECT_EQ(e.violation().node, 3);
    EXPECT_EQ(e.violation().rule, "psn_gap_in_inflight");
    EXPECT_NE(std::string(e.what()).find("ib.psn_gap_in_inflight"), std::string::npos);
  }
}

TEST(Monitor, CountingModeAccumulatesAndPublishesMetrics) {
  InvariantMonitor monitor(/*fatal=*/false);
  MetricRegistry registry;
  monitor.set_metrics(&registry);
  monitor.report(us(1), Layer::kHw, 0, "queue_overflow", "a");
  monitor.report(us(2), Layer::kHw, 1, "queue_overflow", "b");
  monitor.report(us(3), Layer::kMx, 0, "resend_queue_gap", "c");
  EXPECT_EQ(monitor.violation_count(), 3u);
  EXPECT_FALSE(monitor.clean());
  EXPECT_EQ(registry.counter_value("check.violations"), 3u);
  EXPECT_EQ(registry.counter_value("check.hw.queue_overflow"), 2u);
  EXPECT_EQ(registry.counter_value("check.mx.resend_queue_gap"), 1u);
}

TEST(Monitor, ExpectEvaluatesDetailLazily) {
  InvariantMonitor monitor(/*fatal=*/false);
  bool built = false;
  monitor.expect(true, us(1), Layer::kSim, 0, "never", [&] {
    built = true;
    return std::string("unused");
  });
  EXPECT_FALSE(built) << "passing expectations must not build detail strings";
  monitor.expect(false, us(1), Layer::kSim, 0, "fires", [&] {
    built = true;
    return std::string("used");
  });
  EXPECT_TRUE(built);
  EXPECT_EQ(monitor.violation_count(), 1u);
}

// ---------------------------------------------------------------------------
// sim: engine-level invariants
// ---------------------------------------------------------------------------

TEST(SimCheck, PostIntoThePastIsReported) {
  Engine engine;
  InvariantMonitor monitor(/*fatal=*/false);
  engine.set_monitor(&monitor);
  engine.post(us(10), [&] {
    engine.post(us(5), [] {});  // scheduled before "now": corrupt
  });
  engine.run();
  // Both the insertion check and the dequeue backstop see the corruption.
  ASSERT_GE(monitor.violation_count(), 1u);
  for (const auto& v : monitor.violations()) {
    EXPECT_EQ(v.rule, "time_monotone");
    EXPECT_EQ(v.layer, Layer::kSim);
  }
}

TEST(SimCheck, StuckCoroutineAtDrainIsALostWakeup) {
  Engine engine;
  InvariantMonitor monitor(/*fatal=*/false);
  engine.set_monitor(&monitor);
  auto forever = std::make_unique<Event>(engine);
  engine.spawn([](Event& e) -> Task<> { co_await e.wait(); }(*forever));
  engine.post(us(1), [] {});  // some real work, then the queue drains
  engine.run();
  ASSERT_EQ(monitor.violation_count(), 1u);
  EXPECT_EQ(monitor.violations()[0].rule, "lost_wakeup");
}

TEST(SimCheck, DaemonsAreExemptFromLostWakeupAudit) {
  // Infinite service loops (e.g. the ChVerbs async-progress thread) park
  // on events forever by design; spawn_daemon excludes them.
  Engine engine;
  InvariantMonitor monitor(/*fatal=*/false);
  engine.set_monitor(&monitor);
  auto forever = std::make_unique<Event>(engine);
  engine.spawn_daemon([](Event& e) -> Task<> { co_await e.wait(); }(*forever));
  engine.post(us(1), [] {});
  engine.run();
  EXPECT_EQ(monitor.violation_count(), 0u);
  EXPECT_EQ(engine.live_daemons(), 1u);
}

// ---------------------------------------------------------------------------
// hw: switch invariants
// ---------------------------------------------------------------------------

TEST(HwCheck, OverFullOutputQueueFires) {
  EXPECT_TRUE(fired(check::audit_switch_occupancy(/*backlog=*/9000.0, /*frame=*/1500,
                                                  /*max=*/8192),
                    "queue_overflow"));
  EXPECT_TRUE(check::audit_switch_occupancy(4000.0, 1500, 8192).ok);
  EXPECT_TRUE(check::audit_switch_occupancy(1.0, 1500, 0).ok) << "0 means unbounded";
}

TEST(HwCheck, FrameLeakBreaksConservation) {
  // 10 in, 7 out, 1 fault drop, 1 tail drop: one frame vanished.
  EXPECT_TRUE(fired(check::audit_switch_conservation(10, 7, 1, 1), "frame_conservation"));
  // Duplication is just as illegal as a leak.
  EXPECT_TRUE(fired(check::audit_switch_conservation(10, 9, 1, 1), "frame_conservation"));
  EXPECT_TRUE(check::audit_switch_conservation(10, 8, 1, 1).ok);
}

// ---------------------------------------------------------------------------
// ib: RC transport invariants
// ---------------------------------------------------------------------------

TEST(IbCheck, PsnGapInInflightQueueFires) {
  EXPECT_TRUE(fired(check::audit_ib_inflight_psns({4, 5, 7}, 8), "psn_gap_in_inflight"));
  EXPECT_TRUE(fired(check::audit_ib_inflight_psns({4, 5, 6}, 9), "psn_tail_mismatch"));
  EXPECT_TRUE(check::audit_ib_inflight_psns({4, 5, 6}, 7).ok);
  EXPECT_TRUE(check::audit_ib_inflight_psns({}, 7).ok);
}

TEST(IbCheck, AckBeyondWindowFires) {
  EXPECT_TRUE(fired(check::audit_ib_ack_window(/*ack=*/12, /*snd_psn=*/10), "ack_beyond_window"));
  EXPECT_TRUE(check::audit_ib_ack_window(10, 10).ok);
  EXPECT_TRUE(check::audit_ib_ack_window(3, 10).ok);
}

TEST(IbCheck, PrematureErrorEntryFires) {
  EXPECT_TRUE(fired(check::audit_ib_retry_exhausted(/*count=*/2, /*limit=*/3),
                    "premature_error"));
  EXPECT_TRUE(check::audit_ib_retry_exhausted(4, 3).ok);
}

// ---------------------------------------------------------------------------
// iwarp: MPA/DDP/TCP invariants
// ---------------------------------------------------------------------------

TEST(IwarpCheck, WindowOverrunFires) {
  // 3000 unacked + 2000 new > 4096 window.
  EXPECT_TRUE(fired(check::audit_iwarp_window(/*snd_nxt=*/3000, /*snd_una=*/0, /*chunk=*/2000,
                                              /*window=*/4096),
                    "window_overrun"));
  EXPECT_TRUE(check::audit_iwarp_window(3000, 0, 1000, 4096).ok);
}

TEST(IwarpCheck, AckOutsideByteStreamFires) {
  EXPECT_TRUE(fired(check::audit_iwarp_ack_window(/*ack=*/5000, /*snd_una=*/0, /*snd_nxt=*/4000),
                    "ack_beyond_window"));
  EXPECT_TRUE(check::audit_iwarp_ack_window(4000, 0, 4000).ok);
}

TEST(IwarpCheck, ReorderedUntaggedSegmentFires) {
  // Second segment of a message placed before the first: offset 1460
  // arrives while 0 bytes are placed.
  EXPECT_TRUE(fired(check::audit_iwarp_untagged_inorder(/*msg_offset=*/1460, /*placed=*/0,
                                                        /*msg_id=*/9),
                    "untagged_out_of_order"));
  EXPECT_TRUE(check::audit_iwarp_untagged_inorder(1460, 1460, 9).ok);
}

// ---------------------------------------------------------------------------
// mx: firmware reliability invariants
// ---------------------------------------------------------------------------

TEST(MxCheck, ResendQueueGapFires) {
  EXPECT_TRUE(fired(check::audit_mx_resend_queue({1, 2, 4}, 5), "resend_queue_gap"));
  EXPECT_TRUE(fired(check::audit_mx_resend_queue({1, 2, 3}, 5), "resend_tail_mismatch"));
  EXPECT_TRUE(check::audit_mx_resend_queue({1, 2, 3}, 4).ok);
}

TEST(MxCheck, FlowAckBeyondWindowFires) {
  EXPECT_TRUE(fired(check::audit_mx_ack_window(/*ack=*/9, /*next_seq=*/6), "ack_beyond_window"));
  EXPECT_TRUE(check::audit_mx_ack_window(6, 6).ok);
}

// ---------------------------------------------------------------------------
// mpi: matching-queue and request-lifecycle invariants
// ---------------------------------------------------------------------------

TEST(MpiCheck, MatchingPostedAndUnexpectedEntriesFire) {
  using check::audit_mpi_queue_disjoint;
  EXPECT_TRUE(fired(audit_mpi_queue_disjoint(/*posted_src=*/1, /*posted_tag=*/7,
                                             /*msg_src=*/1, /*msg_tag=*/7),
                    "queue_overlap"));
  // Wildcards match anything — still an overlap.
  EXPECT_TRUE(fired(audit_mpi_queue_disjoint(mpi::kAnySource, mpi::kAnyTag, 2, 3),
                    "queue_overlap"));
  EXPECT_TRUE(audit_mpi_queue_disjoint(1, 7, 1, 8).ok);
  EXPECT_TRUE(audit_mpi_queue_disjoint(1, 7, 2, 7).ok);
}

TEST(MpiCheck, DoubleCompletedRequestIsReported) {
  Engine engine;
  InvariantMonitor monitor(/*fatal=*/false);
  engine.set_monitor(&monitor);
  mpi::Request request(engine);
  request.complete(mpi::Status{.source = 0, .tag = 5, .length = 64});
  EXPECT_EQ(monitor.violation_count(), 0u);
  request.complete(mpi::Status{.source = 1, .tag = 5, .length = 64});  // corrupt: twice
  ASSERT_EQ(monitor.violation_count(), 1u);
  EXPECT_EQ(monitor.violations()[0].rule, "double_complete");
  EXPECT_EQ(monitor.violations()[0].layer, Layer::kMpi);
  // First completion's status survives; the duplicate is dropped.
  EXPECT_EQ(request.status().source, 0);
}

// ---------------------------------------------------------------------------
// Meta-properties: zero overhead and digest determinism
// ---------------------------------------------------------------------------

/// One small IB Send/Recv through the full stack; returns (now, digest,
/// events) so runs can be compared bit-for-bit.
struct RunFingerprint {
  Time finished;
  std::uint64_t digest;
  std::uint64_t events;
};

RunFingerprint run_ib_workload(bool with_monitor) {
  core::Cluster cluster(2, core::ib_profile());
  if (with_monitor) cluster.enable_checks(/*fatal=*/true);
  const std::uint32_t len = 16 * 1024;
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);
  verbs::CompletionQueue scq(cluster.engine());
  verbs::CompletionQueue rcq(cluster.engine());
  std::vector<std::unique_ptr<verbs::QueuePair>> qps;
  cluster.engine().spawn([](core::Cluster& c, verbs::CompletionQueue& send_cq,
                            verbs::CompletionQueue& recv_cq,
                            std::vector<std::unique_ptr<verbs::QueuePair>>& pairs, std::uint64_t s,
                            std::uint64_t d, std::uint32_t n) -> Task<> {
    pairs.push_back(c.device(0).create_qp(send_cq, send_cq));
    pairs.push_back(c.device(1).create_qp(recv_cq, recv_cq));
    c.device(0).establish(*pairs[0], *pairs[1]);
    auto lkey = co_await c.device(0).reg_mr(s, n);
    auto rkey = co_await c.device(1).reg_mr(d, n);
    co_await pairs[1]->post_recv(verbs::RecvWr{.wr_id = 2, .sge = {d, n, rkey}});
    co_await pairs[0]->post_send(
        verbs::SendWr{.wr_id = 1, .opcode = verbs::Opcode::kSend, .sge = {s, n, lkey}});
    co_await verbs::next_completion(recv_cq, c.node(1).cpu(), ns(200));
  }(cluster, scq, rcq, qps, src.addr(), dst.addr(), len));
  cluster.engine().run();
  return {cluster.engine().now(), cluster.engine().run_digest(),
          cluster.engine().events_processed()};
}

TEST(CheckMeta, MonitorLeavesTimelineByteIdentical) {
  const RunFingerprint bare = run_ib_workload(/*with_monitor=*/false);
  const RunFingerprint audited = run_ib_workload(/*with_monitor=*/true);
  EXPECT_EQ(bare.finished, audited.finished);
  EXPECT_EQ(bare.events, audited.events);
  EXPECT_EQ(bare.digest, audited.digest)
      << "an attached monitor must observe, never perturb";
}

TEST(CheckMeta, RunDigestIsDeterministicAndDiscriminating) {
  const RunFingerprint a = run_ib_workload(false);
  const RunFingerprint b = run_ib_workload(false);
  EXPECT_EQ(a.digest, b.digest) << "same configuration, same digest";
  EXPECT_GT(a.events, 0u);

  // A different workload must fingerprint differently.
  Engine small;
  small.post(us(1), [] {});
  small.run();
  EXPECT_NE(a.digest, small.run_digest());
}

}  // namespace
}  // namespace fabsim

// Second batch of detail tests: rendezvous-size synchronous sends, eager
// slot exhaustion under ssend floods, cache-model partial touches, rate
// conversions, MX probe liveness, and sockets available().
#include <gtest/gtest.h>

#include <cstring>

#include "core/cluster.hpp"
#include "hw/cpu.hpp"
#include "sockets/host_tcp.hpp"

namespace fabsim::core {
namespace {

class Details2 : public ::testing::TestWithParam<Network> {};

INSTANTIATE_TEST_SUITE_P(Networks, Details2,
                         ::testing::Values(Network::kIwarp, Network::kIb, Network::kMxoe,
                                           Network::kMxom),
                         [](const auto& sweep) { return network_name(sweep.param); });

TEST_P(Details2, RendezvousSsendIsInherentlySynchronous) {
  Cluster cluster(2, GetParam());
  const std::uint32_t len = 256 * 1024;  // rendezvous everywhere
  auto& src = cluster.node(0).mem().alloc(len, false);
  auto& dst = cluster.node(1).mem().alloc(len, false);

  Time recv_posted_at = 0;
  cluster.engine().spawn([](Cluster& c, std::uint64_t s, std::uint32_t n,
                            Time* posted_at) -> Task<> {
    co_await c.setup_mpi();
    co_await c.mpi_rank(0).ssend(1, 2, s, n);
    EXPECT_GT(c.engine().now(), *posted_at)
        << "rendezvous ssend completed before the receive was posted";
  }(cluster, src.addr(), len, &recv_posted_at));
  cluster.engine().spawn([](Cluster& c, std::uint64_t d, std::uint32_t n,
                            Time* posted_at) -> Task<> {
    co_await c.setup_mpi();
    co_await c.engine().sleep(us(400));
    *posted_at = c.engine().now();
    co_await c.mpi_rank(1).recv(0, 2, d, n);
  }(cluster, dst.addr(), len, &recv_posted_at));
  cluster.engine().run();
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST_P(Details2, SsendFloodWithLateReceiverDoesNotDeadlock) {
  // Many synchronous sends queued as unexpected; each needs an ack that
  // only flows when the receiver finally posts. Control-slot headroom
  // and credit accounting must survive the pile-up.
  NetworkProfile p = profile(GetParam());
  Cluster cluster(2, p);
  auto& src = cluster.node(0).mem().alloc(4096, false);
  auto& dst = cluster.node(1).mem().alloc(4096, false);
  constexpr int kFlood = 24;

  int acked = 0;
  cluster.engine().spawn([](Cluster& c, std::uint64_t s, int n, int* done) -> Task<> {
    co_await c.setup_mpi();
    std::vector<mpi::RequestPtr> reqs;
    for (int i = 0; i < n; ++i) {
      reqs.push_back(co_await c.mpi_rank(0).issend(1, 3, s, 64));
    }
    co_await c.mpi_rank(0).waitall(std::move(reqs));
    *done = n;
  }(cluster, src.addr(), kFlood, &acked));
  cluster.engine().spawn([](Cluster& c, std::uint64_t d, int n) -> Task<> {
    co_await c.setup_mpi();
    co_await c.engine().sleep(us(500));
    for (int i = 0; i < n; ++i) {
      co_await c.mpi_rank(1).recv(0, 3, d, 4096);
    }
  }(cluster, dst.addr(), kFlood));
  cluster.engine().run();
  EXPECT_EQ(acked, kFlood);
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

TEST(Details2Mx, ProbeWithNoTrafficLetsTheEngineDrain) {
  // A blocked MPI_Probe must not keep the event queue alive by polling.
  Cluster cluster(2, Network::kMxom);
  cluster.engine().spawn([](Cluster& c) -> Task<> {
    co_await c.setup_mpi();
    (void)co_await c.mpi_rank(1).probe(0, 9);  // never satisfied
    ADD_FAILURE() << "probe must not return";
  }(cluster));
  cluster.engine().spawn([](Cluster& c) -> Task<> { co_await c.setup_mpi(); }(cluster));
  cluster.engine().run();  // must return (queue drained), probe suspended
  EXPECT_EQ(cluster.engine().live_processes(), 1u);
}

TEST(Details2Hw, CacheModelPartialResidency) {
  hw::CacheModel cache(4 * 4096, 4096);
  // Touch 3 pages; a 2-page window inside them is warm, a window
  // extending past them is not.
  EXPECT_FALSE(cache.touch(0x10000, 3 * 4096));
  EXPECT_TRUE(cache.touch(0x10000, 2 * 4096));
  EXPECT_FALSE(cache.touch(0x10000, 5 * 4096));
}

TEST(Details2Hw, RateConversions) {
  EXPECT_NEAR(Rate::gbit_per_sec(8.0).mb_per_sec_value(), 1000.0, 1e-9);
  EXPECT_EQ(Rate::bytes_per_sec(1e9).bytes_time(1000), us(1));
  EXPECT_TRUE(Rate().is_zero());
  EXPECT_EQ(Rate().bytes_time(123456), 0u);
}

TEST(Details2Sockets, AvailableTracksBufferedBytes) {
  Engine engine;
  hw::Switch fabric(engine, iwarp_profile().switch_cfg);
  hw::Node n0(engine, 0, iwarp_profile().pcie), n1(engine, 1, iwarp_profile().pcie);
  sockets::HostTcp t0(n0, fabric), t1(n1, fabric);
  auto [s0, s1] = sockets::HostTcp::connect(t0, t1);
  auto& buf = n0.mem().alloc(10000, false);
  auto& sink = n1.mem().alloc(10000, false);

  engine.spawn([](sockets::Socket& s, std::uint64_t a) -> Task<> {
    co_await s.send(a, 10000);
  }(*s0, buf.addr()));
  engine.run();
  EXPECT_EQ(s1->available(), 10000u);

  std::uint32_t got = 0;
  engine.spawn([](sockets::Socket& s, std::uint64_t a, std::uint32_t* out) -> Task<> {
    *out = co_await s.recv(a, 4000);
  }(*s1, sink.addr(), &got));
  engine.run();
  EXPECT_EQ(got, 4000u);
  EXPECT_EQ(s1->available(), 6000u);
}

TEST(Details2Mpi, CollectiveTagsNeverColldeWithUserTags) {
  // A user ping-pong on a high tag must survive interleaved barriers.
  Cluster cluster(2, Network::kIb);
  auto& b0 = cluster.node(0).mem().alloc(256, false);
  auto& b1 = cluster.node(1).mem().alloc(256, false);
  int rounds_done = 0;
  for (int r = 0; r < 2; ++r) {
    cluster.engine().spawn([](Cluster& c, int me, std::uint64_t addr, int* done) -> Task<> {
      co_await c.setup_mpi();
      auto& rank = c.mpi_rank(me);
      for (int i = 0; i < 3; ++i) {
        co_await rank.barrier();
        if (me == 0) {
          co_await rank.send(1, mpi::Rank::kCollectiveTagBase - 1, addr, 32);
        } else {
          co_await rank.recv(0, mpi::Rank::kCollectiveTagBase - 1, addr, 256);
        }
        co_await rank.barrier();
      }
      if (me == 0) *done = 3;
    }(cluster, r, (r == 0 ? b0 : b1).addr(), &rounds_done));
  }
  cluster.engine().run();
  EXPECT_EQ(rounds_done, 3);
  EXPECT_EQ(cluster.engine().live_processes(), 0u);
}

}  // namespace
}  // namespace fabsim::core

// FabricTopo tests: Clos builder shapes, LFT determinism and digest
// stability, routed-fabric traffic on all flow-control modes, and the
// FabricCheck audits that guard them.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/audits.hpp"
#include "core/cluster.hpp"
#include "hw/fabric.hpp"
#include "sim/engine.hpp"
#include "topo/topology.hpp"

namespace fabsim {
namespace {

hw::SwitchConfig clos_switch_config() {
  return hw::SwitchConfig{
      .link_rate = Rate::gbit_per_sec(10.0),
      .cut_through = ns(400),
      .propagation = ns(100),
  };
}

// --- Shapes ---------------------------------------------------------------

TEST(Topology, SingleCrossbarMatchesSeedModel) {
  Engine engine;
  auto topo = topo::Topology::single(engine, clos_switch_config(), 4);
  EXPECT_EQ(topo.num_switches(), 1u);
  EXPECT_TRUE(topo.single_crossbar());
  EXPECT_FALSE(topo.sw(0).routed());
  for (int n = 0; n < 4; ++n) EXPECT_EQ(topo.edge_index_of(n), 0);
}

TEST(Topology, TwoLevelClosShape) {
  Engine engine;
  // radix 16, non-blocking: 8 host ports per leaf -> 8 leaves + 8 spines.
  auto topo =
      topo::Topology::clos(engine, clos_switch_config(), topo::FabricSpec{2, 16, 1.0}, 64);
  EXPECT_EQ(topo.num_switches(), 16u);
  EXPECT_FALSE(topo.single_crossbar());
  EXPECT_EQ(topo.edge_index_of(0), 0);
  EXPECT_EQ(topo.edge_index_of(7), 0);
  EXPECT_EQ(topo.edge_index_of(8), 1);
  EXPECT_EQ(topo.edge_index_of(63), 7);
  // Every leaf has one uplink to each spine: 8 host + 8 uplink = radix.
  EXPECT_EQ(topo.sw(0).num_ports(), 8u);  // NICs not attached yet: uplinks only
}

TEST(Topology, ThreeLevelClosShape) {
  Engine engine;
  // radix 4 -> 2 host ports/edge, 2 edges/pod, 4 hosts/pod, 4 pods for
  // 16 endpoints, 2 aggs/pod, 4 cores: 8 + 8 + 4 = 20 switches.
  auto topo =
      topo::Topology::clos(engine, clos_switch_config(), topo::FabricSpec{3, 4, 1.0}, 16);
  EXPECT_EQ(topo.num_switches(), 20u);
  EXPECT_EQ(topo.edge_index_of(0), 0);
  EXPECT_EQ(topo.edge_index_of(3), 1);   // second edge of pod 0
  EXPECT_EQ(topo.edge_index_of(4), 2);   // pod 1
  EXPECT_EQ(topo.edge_index_of(15), 7);  // last edge of pod 3
}

TEST(Topology, OversubscriptionShiftsThePortSplit) {
  Engine engine;
  // radix 8 at 3:1 -> 6 host ports, 2 uplinks, so 12 endpoints fit on 2
  // leaves and only 2 spines exist: 4 switches.
  auto topo =
      topo::Topology::clos(engine, clos_switch_config(), topo::FabricSpec{2, 8, 3.0}, 12);
  EXPECT_EQ(topo.num_switches(), 4u);
}

TEST(Topology, RejectsImpossibleShapes) {
  Engine engine;
  // 64 endpoints on radix-8 2-level: 16 leaves > 8 spine ports.
  EXPECT_THROW(
      topo::Topology::clos(engine, clos_switch_config(), topo::FabricSpec{2, 8, 1.0}, 64),
      std::invalid_argument);
  EXPECT_THROW(
      topo::Topology::clos(engine, clos_switch_config(), topo::FabricSpec{4, 8, 1.0}, 8),
      std::invalid_argument);
  EXPECT_THROW(
      topo::Topology::clos(engine, clos_switch_config(), topo::FabricSpec{2, 8, -1.0}, 8),
      std::invalid_argument);
}

// --- LFT determinism ------------------------------------------------------

TEST(Topology, IdenticalConfigsProduceIdenticalLfts) {
  for (const topo::FabricSpec spec :
       {topo::FabricSpec{2, 16, 1.0}, topo::FabricSpec{3, 4, 1.0}}) {
    Engine e1, e2;
    auto t1 = topo::Topology::clos(e1, clos_switch_config(), spec, 16);
    auto t2 = topo::Topology::clos(e2, clos_switch_config(), spec, 16);
    EXPECT_EQ(t1.lft_digest(), t2.lft_digest());
    ASSERT_EQ(t1.num_switches(), t2.num_switches());
    for (std::size_t s = 0; s < t1.num_switches(); ++s) {
      EXPECT_EQ(t1.sw(static_cast<int>(s)).lft(), t2.sw(static_cast<int>(s)).lft());
    }
  }
}

TEST(Topology, DifferentShapesProduceDifferentDigests) {
  Engine e1, e2;
  auto t1 = topo::Topology::clos(e1, clos_switch_config(), topo::FabricSpec{2, 16, 1.0}, 16);
  auto t2 = topo::Topology::clos(e2, clos_switch_config(), topo::FabricSpec{3, 4, 1.0}, 16);
  EXPECT_NE(t1.lft_digest(), t2.lft_digest());
}

TEST(Topology, PathHopsMatchTheTiers) {
  Engine engine;
  core::NetworkProfile p = core::ib_profile();
  p.fabric = topo::FabricSpec{3, 4, 1.0};
  core::Cluster cluster(16, p);  // NICs attached: host routes installed
  auto& topo = cluster.topology();
  EXPECT_EQ(topo.path_hops(0, 1), 1);   // same edge switch
  EXPECT_EQ(topo.path_hops(0, 2), 3);   // same pod, different edge
  EXPECT_EQ(topo.path_hops(0, 15), 5);  // cross-pod: edge-agg-core-agg-edge
}

// --- Failure awareness: fail/restore, epochs, up*/down* routing -----------

TEST(Topology, FailRestoreRoundTripsLftDigestAndEpoch) {
  Engine engine;
  auto topo = topo::Topology::clos(engine, clos_switch_config(), topo::FabricSpec{2, 8, 1.0}, 16);
  const std::uint64_t healthy = topo.lft_digest();
  EXPECT_EQ(topo.lft_epoch(), 0);

  topo.fail_link(0);  // leaf0's first uplink
  EXPECT_EQ(topo.lft_epoch(), 1);
  EXPECT_FALSE(topo.links()[0].up);
  EXPECT_NE(topo.lft_digest(), healthy) << "routes must actually move off the dead link";

  topo.restore_link(0);
  EXPECT_EQ(topo.lft_epoch(), 2);
  EXPECT_TRUE(topo.links()[0].up);
  EXPECT_EQ(topo.lft_digest(), healthy)
      << "restoring the link must reproduce the build-time routes exactly";

  // fail/restore are idempotent: re-restoring an up link changes nothing.
  topo.restore_link(0);
  EXPECT_EQ(topo.lft_epoch(), 2);
}

TEST(Topology, FailedSwitchTakesAllItsLinksDownAndBack) {
  Engine engine;
  auto topo = topo::Topology::clos(engine, clos_switch_config(), topo::FabricSpec{2, 8, 1.0}, 16);
  const std::uint64_t healthy = topo.lft_digest();

  // Leaves are built first, so the first spine follows the last edge.
  const int spine = topo.edge_index_of(15) + 1;
  ASSERT_TRUE(topo.switch_up(spine));
  topo.fail_switch(spine);
  EXPECT_FALSE(topo.switch_up(spine));
  // Link records track *independent* link failures only; a dead switch
  // takes its ports down without co-opting them, so a later
  // restore_switch knows which links to bring back.
  for (const auto& link : topo.links()) EXPECT_TRUE(link.up);
  EXPECT_NE(topo.lft_digest(), healthy);

  topo.restore_switch(spine);
  EXPECT_TRUE(topo.switch_up(spine));
  EXPECT_EQ(topo.lft_digest(), healthy);
}

TEST(Topology, RecomputeOnHealthyFabricIsAFixpoint) {
  // The up*/down* (down-preferred) recompute must agree with the
  // build-time routes on an intact Clos — otherwise every first failure
  // would also perturb the *unaffected* paths.
  Engine engine;
  for (const topo::FabricSpec spec :
       {topo::FabricSpec{2, 8, 1.0}, topo::FabricSpec{3, 4, 1.0}}) {
    auto topo = topo::Topology::clos(engine, clos_switch_config(), spec, 16);
    const std::uint64_t healthy = topo.lft_digest();
    topo.recompute_lfts();
    EXPECT_EQ(topo.lft_digest(), healthy);
  }
}

TEST(Topology, RerouteKeepsAllPairsReachableOnThreeLevelClos) {
  // Losing one core switch must not strand any host pair: up*/down*
  // still finds a (possibly longer) path, and no LFT walk may loop.
  Engine engine;
  core::NetworkProfile p = core::ib_profile();
  p.fabric = topo::FabricSpec{3, 4, 1.0};
  core::Cluster cluster(16, p);
  auto& topo = cluster.topology();

  const int core = static_cast<int>(topo.num_switches()) - 1;
  topo.fail_switch(core);
  for (int src = 0; src < 16; ++src) {
    for (int dst = 0; dst < 16; ++dst) {
      if (src == dst) continue;
      EXPECT_GE(topo.path_hops(src, dst), 1) << src << "->" << dst;
    }
  }
}

// --- Routed traffic: determinism + flow-control divergence ----------------

/// One verbs RDMA write between the two most distant endpoints; returns
/// (sim.digest, tail drops, credit stalls).
struct RunResult {
  std::uint64_t digest = 0;
  std::uint64_t tail_drops = 0;
  std::uint64_t credit_stalls = 0;
  std::uint64_t violations = 0;
};

RunResult run_fanin(const topo::FabricSpec& spec, int endpoints, std::uint64_t buffer_bytes,
                    int senders) {
  core::NetworkProfile p = core::ib_profile();
  p.fabric = spec;
  p.switch_cfg.max_queue_bytes = buffer_bytes;
  core::Cluster cluster(endpoints, p);
  check::InvariantMonitor& monitor = cluster.enable_checks(/*fatal=*/false);

  // Fan in on the *last* endpoint so every flow crosses leaf -> spine ->
  // leaf (senders live on the first edge switch, the sink on the last).
  const int dst_node = endpoints - 1;
  const std::uint32_t len = 16 * 1024;
  std::vector<std::unique_ptr<verbs::CompletionQueue>> cqs;
  std::vector<std::unique_ptr<verbs::QueuePair>> qps;
  for (int s = 0; s < senders; ++s) {
    auto& src = cluster.node(s).mem().alloc(len, false);
    auto& dst = cluster.node(dst_node).mem().alloc(len, false);
    cqs.push_back(std::make_unique<verbs::CompletionQueue>(cluster.engine()));
    auto dst_qp = cluster.device(dst_node).create_qp(*cqs.back(), *cqs.back());
    auto src_qp = cluster.device(s).create_qp(*cqs.back(), *cqs.back());
    cluster.device(dst_node).establish(*dst_qp, *src_qp);
    cluster.engine().spawn([](core::Cluster& c, verbs::QueuePair& qp, int sender, int sink,
                              std::uint64_t sa, std::uint64_t da, std::uint32_t n) -> Task<> {
      auto lkey = co_await c.device(sender).reg_mr(sa, n);
      auto rkey = co_await c.device(sink).reg_mr(da, n);
      auto watch = c.device(sink).watch_placement(da, n);
      co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                          .opcode = verbs::Opcode::kRdmaWrite,
                                          .sge = {sa, n, lkey},
                                          .remote_addr = da,
                                          .rkey = rkey});
      co_await watch->wait();
    }(cluster, *src_qp, s, dst_node, src.addr(), dst.addr(), len));
    qps.push_back(std::move(dst_qp));
    qps.push_back(std::move(src_qp));
  }
  cluster.engine().run();

  MetricRegistry registry;
  cluster.collect_metrics(registry);
  RunResult r;
  r.digest = registry.counter_value("sim.digest");
  r.tail_drops = registry.counter_value("switch.tail_drops");
  r.credit_stalls = registry.counter_value("switch.credit_stalls");
  r.violations = monitor.violation_count();
  return r;
}

TEST(Topology, MultiSwitchRunsAreDigestStable) {
  const topo::FabricSpec spec{2, 8, 1.0, hw::FlowControl::kCredit};
  const RunResult a = run_fanin(spec, 8, 8192, 3);
  const RunResult b = run_fanin(spec, 8, 8192, 3);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.violations, 0u);
  EXPECT_EQ(b.violations, 0u);
}

TEST(Topology, CreditFabricBackpressuresWithoutLoss) {
  const RunResult r =
      run_fanin(topo::FabricSpec{2, 8, 1.0, hw::FlowControl::kCredit}, 8, 4096, 3);
  EXPECT_EQ(r.tail_drops, 0u);
  EXPECT_GT(r.credit_stalls, 0u);
  // Counting-mode monitor saw no violation: frames conserved per hop,
  // queues drained, credits all returned at quiescence.
  EXPECT_EQ(r.violations, 0u);
}

TEST(Topology, LossyFabricTailDropsUnderTheSameLoad) {
  core::NetworkProfile base = core::iwarp_profile();
  base.fabric = topo::FabricSpec{2, 8, 1.0, hw::FlowControl::kLossy};
  base.switch_cfg.max_queue_bytes = 4096;
  base.rnic.rto = us(200);
  core::Cluster cluster(8, base);
  check::InvariantMonitor& monitor = cluster.enable_checks(/*fatal=*/false);

  const int dst_node = 7;  // far leaf: drops happen on the routed path
  const std::uint32_t len = 32 * 1024;
  std::vector<std::unique_ptr<verbs::CompletionQueue>> cqs;
  std::vector<std::unique_ptr<verbs::QueuePair>> qps;
  for (int s = 0; s < 3; ++s) {
    auto& src = cluster.node(s).mem().alloc(len, false);
    auto& dst = cluster.node(dst_node).mem().alloc(len, false);
    cqs.push_back(std::make_unique<verbs::CompletionQueue>(cluster.engine()));
    auto dst_qp = cluster.device(dst_node).create_qp(*cqs.back(), *cqs.back());
    auto src_qp = cluster.device(s).create_qp(*cqs.back(), *cqs.back());
    cluster.device(dst_node).establish(*dst_qp, *src_qp);
    cluster.engine().spawn([](core::Cluster& c, verbs::QueuePair& qp, int sender, int sink,
                              std::uint64_t sa, std::uint64_t da, std::uint32_t n) -> Task<> {
      auto lkey = co_await c.device(sender).reg_mr(sa, n);
      auto rkey = co_await c.device(sink).reg_mr(da, n);
      auto watch = c.device(sink).watch_placement(da, n);
      co_await qp.post_send(verbs::SendWr{.wr_id = 1,
                                          .opcode = verbs::Opcode::kRdmaWrite,
                                          .sge = {sa, n, lkey},
                                          .remote_addr = da,
                                          .rkey = rkey});
      co_await watch->wait();
    }(cluster, *src_qp, s, dst_node, src.addr(), dst.addr(), len));
    qps.push_back(std::move(dst_qp));
    qps.push_back(std::move(src_qp));
  }
  cluster.engine().run();

  MetricRegistry registry;
  cluster.collect_metrics(registry);
  // Drops happened, every byte still placed (go-back-N), and the per-hop
  // conservation identity absorbs the tail drops without violations.
  EXPECT_GT(registry.counter_value("switch.tail_drops"), 0u);
  EXPECT_EQ(registry.counter_value("switch.credit_stalls"), 0u);
  EXPECT_EQ(monitor.violation_count(), 0u);
}

// --- Builder / attach contracts -------------------------------------------

TEST(Topology, AttachConsumesReservationsInNodeOrder) {
  Engine engine;
  topo::Topology::Builder builder(engine, 4);
  const int s0 = builder.add_switch(clos_switch_config());
  const int s1 = builder.add_switch(clos_switch_config());
  builder.link(s0, s1);
  builder.place(0, s0);
  builder.place(1, s0);
  builder.place(2, s1);
  builder.place(3, s1);
  auto topo = builder.build();

  struct NullSink : hw::FrameSink {
    void deliver(hw::Frame) override {}
  };
  NullSink sinks[4];
  EXPECT_EQ(topo.edge_for(0).attach(sinks[0]), 0);
  EXPECT_EQ(topo.edge_for(1).attach(sinks[1]), 1);
  EXPECT_EQ(topo.edge_for(2).attach(sinks[2]), 2);
  EXPECT_EQ(topo.edge_for(3).attach(sinks[3]), 3);
  // No more reservations on this edge switch.
  EXPECT_THROW(topo.edge_for(0).attach(sinks[0]), std::logic_error);
}

TEST(Topology, BuilderRejectsOutOfOrderPlacement) {
  Engine engine;
  topo::Topology::Builder builder(engine, 2);
  const int s0 = builder.add_switch(clos_switch_config());
  EXPECT_THROW(builder.place(1, s0), std::logic_error);
}

TEST(Topology, BuildRejectsUnplacedEndpoints) {
  Engine engine;
  topo::Topology::Builder builder(engine, 2);
  const int s0 = builder.add_switch(clos_switch_config());
  builder.place(0, s0);
  EXPECT_THROW(builder.build(), std::logic_error);
}

// --- Audit predicates (negative paths) ------------------------------------

TEST(TopoAudits, CreditNonNegative) {
  EXPECT_TRUE(check::audit_credit_nonnegative(0).ok);
  EXPECT_TRUE(check::audit_credit_nonnegative(4096).ok);
  const check::Verdict v = check::audit_credit_nonnegative(-1408);
  EXPECT_FALSE(v.ok);
  EXPECT_STREQ(v.rule, "credit_negative");
}

TEST(TopoAudits, QueueDrainedAtQuiescence) {
  EXPECT_TRUE(check::audit_switch_queue_drained(0, 0, 0, false).ok);
  EXPECT_FALSE(check::audit_switch_queue_drained(0, 1, 1408, false).ok);
  EXPECT_FALSE(check::audit_switch_queue_drained(0, 0, 64, false).ok);
  const check::Verdict v = check::audit_switch_queue_drained(2, 0, 0, true);
  EXPECT_FALSE(v.ok);
  EXPECT_STREQ(v.rule, "queue_not_drained");
}

}  // namespace
}  // namespace fabsim

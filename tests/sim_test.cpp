// Unit tests for the discrete-event engine, coroutine tasks, sync
// primitives, and timed resources.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace fabsim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(ns(1), 1000u);
  EXPECT_EQ(us(1), 1'000'000u);
  EXPECT_EQ(us(9.78), 9'780'000u);
  EXPECT_DOUBLE_EQ(to_us(us(12.5)), 12.5);
}

TEST(Rate, BandwidthMath) {
  const Rate r = Rate::mb_per_sec(1000.0);  // 1 GB/s => 1 ns/byte
  EXPECT_EQ(r.bytes_time(1), ns(1));
  EXPECT_EQ(r.bytes_time(1'000'000), ms(1));
  const Rate ten_gig = Rate::gbit_per_sec(10.0);  // 1250 MB/s => 0.8 ns/byte
  EXPECT_EQ(ten_gig.bytes_time(1000), ns(800));
  EXPECT_NEAR(ten_gig.mb_per_sec_value(), 1250.0, 1e-9);
}

TEST(Engine, SleepAdvancesTime) {
  Engine engine;
  Time woke = 0;
  engine.spawn([](Engine& e, Time& w) -> Task<> {
    co_await e.sleep(us(5));
    w = e.now();
  }(engine, woke));
  engine.run();
  EXPECT_EQ(woke, us(5));
  EXPECT_EQ(engine.live_processes(), 0u);
}

TEST(Engine, SameTimeEventsRunInPostOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.post(us(1), [i, &order] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NestedTasksPropagateValues) {
  Engine engine;
  int result = 0;
  auto inner = [](Engine& e) -> Task<int> {
    co_await e.sleep(ns(10));
    co_return 42;
  };
  engine.spawn([](Engine& e, auto make_inner, int& r) -> Task<> {
    r = co_await make_inner(e);
  }(engine, inner, result));
  engine.run();
  EXPECT_EQ(result, 42);
}

TEST(Engine, ExceptionsSurfaceFromRun) {
  Engine engine;
  engine.spawn([](Engine& e) -> Task<> {
    co_await e.sleep(us(1));
    throw std::runtime_error("boom");
  }(engine));
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Engine, JoinWaitsForProcess) {
  Engine engine;
  Time joined_at = 0;
  Process worker = engine.spawn([](Engine& e) -> Task<> { co_await e.sleep(us(7)); }(engine));
  engine.spawn([](Engine& e, Process p, Time& t) -> Task<> {
    co_await p.join();
    t = e.now();
  }(engine, worker, joined_at));
  engine.run();
  EXPECT_EQ(joined_at, us(7));
  EXPECT_TRUE(worker.done());
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine engine;
  int fired = 0;
  engine.post(us(1), [&] { ++fired; });
  engine.post(us(10), [&] { ++fired; });
  engine.run_until(us(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), us(5));
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine;
    std::vector<Time> stamps;
    for (int p = 0; p < 3; ++p) {
      engine.spawn([](Engine& e, std::vector<Time>& s, int id) -> Task<> {
        for (int i = 0; i < 4; ++i) {
          co_await e.sleep(us(1 + id));
          s.push_back(e.now() * 10 + static_cast<Time>(id));
        }
      }(engine, stamps, p));
    }
    engine.run();
    return stamps;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Event, WakesAllWaiters) {
  Engine engine;
  Event event(engine);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    engine.spawn([](Event& ev, int& w) -> Task<> {
      co_await ev.wait();
      ++w;
    }(event, woken));
  }
  engine.spawn([](Engine& e, Event& ev) -> Task<> {
    co_await e.sleep(us(2));
    ev.trigger();
  }(engine, event));
  engine.run();
  EXPECT_EQ(woken, 3);
  EXPECT_TRUE(event.triggered());
}

TEST(Event, WaitAfterTriggerIsImmediate) {
  Engine engine;
  Event event(engine);
  event.trigger();
  Time woke = 1;
  engine.spawn([](Engine& e, Event& ev, Time& w) -> Task<> {
    co_await ev.wait();
    w = e.now();
  }(engine, event, woke));
  engine.run();
  EXPECT_EQ(woke, 0u);
}

TEST(Semaphore, EnforcesMutualExclusion) {
  Engine engine;
  Semaphore sem(engine, 1);
  std::vector<std::pair<Time, Time>> spans;  // (enter, exit)
  for (int i = 0; i < 3; ++i) {
    engine.spawn([](Engine& e, Semaphore& s, std::vector<std::pair<Time, Time>>& sp) -> Task<> {
      co_await s.acquire();
      const Time enter = e.now();
      co_await e.sleep(us(3));
      sp.emplace_back(enter, e.now());
      s.release();
    }(engine, sem, spans));
  }
  engine.run();
  ASSERT_EQ(spans.size(), 3u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].first, spans[i - 1].second) << "critical sections overlap";
  }
}

TEST(Mailbox, FifoDelivery) {
  Engine engine;
  Mailbox<int> box(engine);
  std::vector<int> got;
  engine.spawn([](Mailbox<int>& b, std::vector<int>& g) -> Task<> {
    for (int i = 0; i < 3; ++i) g.push_back(co_await b.recv());
  }(box, got));
  engine.spawn([](Engine& e, Mailbox<int>& b) -> Task<> {
    b.send(1);
    co_await e.sleep(us(1));
    b.send(2);
    b.send(3);
  }(engine, box));
  engine.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Mailbox, TryRecvNonBlocking) {
  Engine engine;
  Mailbox<std::string> box(engine);
  EXPECT_FALSE(box.try_recv().has_value());
  box.send("hi");
  auto value = box.try_recv();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "hi");
}

TEST(SerialServer, BackToBackBooking) {
  SerialServer server;
  EXPECT_EQ(server.book(us(0), us(2)), us(2));
  EXPECT_EQ(server.book(us(1), us(2)), us(4));  // queued behind first
  EXPECT_EQ(server.book(us(10), us(1)), us(11));
  EXPECT_EQ(server.busy_time(), us(5));
  EXPECT_EQ(server.jobs(), 3u);
}

TEST(PipelinedServer, OverlapsJobs) {
  PipelinedServer engine_model;
  // occupancy 1us, latency 5us: jobs complete 5, 6, 7us — pipelined.
  EXPECT_EQ(engine_model.book(0, us(1), us(5)), us(5));
  EXPECT_EQ(engine_model.book(0, us(1), us(5)), us(6));
  EXPECT_EQ(engine_model.book(0, us(1), us(5)), us(7));
}

TEST(PipelinedServer, SerialWhenOccupancyEqualsLatency) {
  PipelinedServer engine_model;
  EXPECT_EQ(engine_model.book(0, us(5), us(5)), us(5));
  EXPECT_EQ(engine_model.book(0, us(5), us(5)), us(10));
}

TEST(Resource, ServeAwaitable) {
  Engine engine;
  SerialServer bus;
  std::vector<Time> done;
  for (int i = 0; i < 3; ++i) {
    engine.spawn([](Engine& e, SerialServer& b, std::vector<Time>& d) -> Task<> {
      co_await serve(e, b, us(2));
      d.push_back(e.now());
    }(engine, bus, done));
  }
  engine.run();
  EXPECT_EQ(done, (std::vector<Time>{us(2), us(4), us(6)}));
}

TEST(Random, DeterministicAndUniform) {
  Xoshiro256 a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Xoshiro256 rng(99);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 0.02);
  EXPECT_GE(acc.min(), 0.0);
  EXPECT_LT(acc.max(), 1.0);
}

TEST(Stats, WelfordMatchesClosedForm) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 1e-3);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
}

}  // namespace
}  // namespace fabsim

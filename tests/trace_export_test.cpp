// Chrome-trace export validated end to end: a small fig3-style MPI
// ping-pong run on iWARP with tracer + metrics attached, exported with
// chrome_trace_json(), then parsed back through sim/json.hpp and checked
// against the Trace Event Format contract (what chrome://tracing and
// Perfetto actually require).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>

#include "core/cluster.hpp"
#include "sim/json.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "sim/trace_export.hpp"

namespace fabsim {
namespace {

// One ping-pong iteration at fig3's probe size, observability attached.
void run_fig3_style(Tracer& tracer, MetricRegistry& metrics) {
  core::Cluster cluster(2, core::Network::kIwarp);
  cluster.engine().set_tracer(&tracer);
  cluster.engine().set_metrics(&metrics);
  const std::uint32_t len = 1024;
  auto& b0 = cluster.node(0).mem().alloc(len, false);
  auto& b1 = cluster.node(1).mem().alloc(len, false);
  cluster.engine().spawn([](core::Cluster& c, std::uint64_t b, std::uint32_t n) -> Task<> {
    co_await c.setup_mpi();
    co_await c.mpi_rank(0).send(1, 1, b, n);
    co_await c.mpi_rank(0).recv(1, 2, b, n);
  }(cluster, b0.addr(), len));
  cluster.engine().spawn([](core::Cluster& c, std::uint64_t b, std::uint32_t n) -> Task<> {
    co_await c.setup_mpi();
    co_await c.mpi_rank(1).recv(0, 1, b, n);
    co_await c.mpi_rank(1).send(0, 2, b, n);
  }(cluster, b1.addr(), len));
  cluster.engine().run();
}

TEST(TraceExport, Fig3RunProducesValidChromeTrace) {
  Tracer tracer;
  MetricRegistry metrics;
  run_fig3_style(tracer, metrics);
  ASSERT_GT(tracer.entries().size(), 0u) << "the run must have emitted events";

  const std::string text = chrome_trace_json(tracer, &metrics);
  minijson::Value doc = minijson::parse(text);  // throws on malformed JSON

  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.has("traceEvents"));
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_GT(events.size(), tracer.entries().size()) << "events + metadata";

  std::set<double> named_pids;
  std::size_t instants = 0;
  const std::set<std::string> known_cats = {"host", "nic", "wire", "proto"};
  double last_ts = -1.0;
  for (const minijson::Value& e : events) {
    ASSERT_TRUE(e.is_object());
    const std::string ph = e.at("ph").as_string();
    if (ph == "M") {
      EXPECT_EQ(e.at("name").as_string(), "process_name");
      named_pids.insert(e.at("pid").as_number());
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(e.at("s").as_string(), "t") << "thread-scoped instant";
      EXPECT_GE(e.at("ts").as_number(), 0.0);
      EXPECT_GE(e.at("ts").as_number(), last_ts) << "instants must be time-ordered";
      last_ts = e.at("ts").as_number();
      EXPECT_TRUE(known_cats.count(e.at("cat").as_string()))
          << "unknown category " << e.at("cat").as_string();
      EXPECT_TRUE(e.has("pid"));
      EXPECT_TRUE(e.has("tid"));
      EXPECT_FALSE(e.at("name").as_string().empty());
    } else {
      EXPECT_EQ(ph, "C") << "only metadata, instant and counter events are emitted";
    }
  }
  EXPECT_EQ(instants, tracer.entries().size()) << "every trace entry exports";
  // Both simulated nodes appear as named processes.
  EXPECT_TRUE(named_pids.count(0.0));
  EXPECT_TRUE(named_pids.count(1.0));
}

TEST(TraceExport, CounterSamplesBecomeCounterEvents) {
  Tracer tracer;
  tracer.emit(us(1), TraceCategory::kHost, 0, "tick");
  MetricRegistry metrics;
  metrics.sample(us(2), "queue_depth", 3.0);
  metrics.sample(us(5), "queue_depth", 7.0);

  minijson::Value doc = minijson::parse(chrome_trace_json(tracer, &metrics));
  std::size_t counters = 0;
  for (const minijson::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "C") continue;
    ++counters;
    EXPECT_EQ(e.at("name").as_string(), "queue_depth");
    EXPECT_TRUE(e.has("args"));
  }
  EXPECT_EQ(counters, 2u);

  // Without a registry the counter events simply don't appear.
  minijson::Value bare = minijson::parse(chrome_trace_json(tracer));
  for (const minijson::Value& e : bare.at("traceEvents").as_array()) {
    EXPECT_NE(e.at("ph").as_string(), "C");
  }
}

TEST(TraceExport, LabelsAreEscaped) {
  Tracer tracer;
  tracer.emit(us(1), TraceCategory::kProto, 0, "weird \"label\"\twith\nescapes\\");
  // parse() throwing would mean broken escaping.
  minijson::Value doc = minijson::parse(chrome_trace_json(tracer));
  bool found = false;
  for (const minijson::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "i") continue;
    EXPECT_EQ(e.at("name").as_string(), "weird \"label\"\twith\nescapes\\");
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TraceExport, WriteChromeTraceCreatesParseableFile) {
  Tracer tracer;
  MetricRegistry metrics;
  run_fig3_style(tracer, metrics);

  const std::string path =
      (std::filesystem::temp_directory_path() / "fabsim_trace_export_test.json").string();
  ASSERT_TRUE(write_chrome_trace(path, tracer, &metrics));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::filesystem::remove(path);

  minijson::Value doc = minijson::parse(text);
  EXPECT_GT(doc.at("traceEvents").as_array().size(), 0u);
}

}  // namespace
}  // namespace fabsim

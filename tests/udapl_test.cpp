// uDAPL layer tests: DAT-style objects over both verbs providers, full
// round trips for all four transfer types, bounds checking, and the
// abstraction cost relative to raw verbs.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/cluster.hpp"
#include "core/runners.hpp"
#include "udapl/udapl.hpp"

namespace fabsim::udapl {
namespace {

using core::Cluster;
using core::Network;
using core::network_name;

class UdaplOnVerbs : public ::testing::TestWithParam<Network> {};

INSTANTIATE_TEST_SUITE_P(Providers, UdaplOnVerbs,
                         ::testing::Values(Network::kIwarp, Network::kIb),
                         [](const auto& sweep) { return network_name(sweep.param); });

struct DatWorld {
  explicit DatWorld(Network network) : cluster(2, network) {
    ia0 = std::make_unique<InterfaceAdapter>(cluster.device(0), cluster.node(0));
    ia1 = std::make_unique<InterfaceAdapter>(cluster.device(1), cluster.node(1));
    evd0 = ia0->create_evd();
    evd1 = ia1->create_evd();
    ep0 = ia0->create_endpoint(*evd0);
    ep1 = ia1->create_endpoint(*evd1);
    InterfaceAdapter::connect(*ia0, *ep0, *ep1);
  }
  Engine& engine() { return cluster.engine(); }

  Cluster cluster;
  std::unique_ptr<InterfaceAdapter> ia0, ia1;
  std::unique_ptr<EventDispatcher> evd0, evd1;
  std::unique_ptr<Endpoint> ep0, ep1;
};

std::vector<std::byte> pattern(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>((i * 71 + 9) & 0xff);
  return v;
}

TEST_P(UdaplOnVerbs, SendRecvRoundTrip) {
  DatWorld w(GetParam());
  auto& src = w.cluster.node(0).mem().alloc(8192);
  auto& dst = w.cluster.node(1).mem().alloc(8192);
  const auto payload = pattern(6000);
  std::memcpy(w.cluster.node(0).mem().window(src.addr(), 6000).data(), payload.data(), 6000);

  w.engine().spawn([](DatWorld& world, std::uint64_t s, std::uint64_t d) -> Task<> {
    const Lmr src_lmr = co_await world.ia0->create_lmr(s, 8192);
    const Lmr dst_lmr = co_await world.ia1->create_lmr(d, 8192);
    co_await world.ep1->post_recv(dst_lmr, 8192, /*cookie=*/71);
    co_await world.ep0->post_send(src_lmr, 6000, /*cookie=*/17);

    const Event recv_event = co_await world.evd1->wait();
    EXPECT_EQ(recv_event.type, EventType::kRecvCompletion);
    EXPECT_EQ(recv_event.cookie, 71u);
    EXPECT_EQ(recv_event.length, 6000u);
    const Event send_event = co_await world.evd0->wait();
    EXPECT_EQ(send_event.type, EventType::kSendCompletion);
    EXPECT_EQ(send_event.cookie, 17u);
  }(w, src.addr(), dst.addr()));
  w.engine().run();

  auto view = w.cluster.node(1).mem().window(dst.addr(), 6000);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), 6000), 0);
}

TEST_P(UdaplOnVerbs, RdmaWriteAndReadRoundTrip) {
  DatWorld w(GetParam());
  auto& local = w.cluster.node(0).mem().alloc(65536);
  auto& remote = w.cluster.node(1).mem().alloc(65536);
  const auto payload = pattern(40000);
  std::memcpy(w.cluster.node(0).mem().window(local.addr(), 40000).data(), payload.data(),
              40000);

  w.engine().spawn([](DatWorld& world, std::uint64_t l, std::uint64_t r) -> Task<> {
    const Lmr local_lmr = co_await world.ia0->create_lmr(l, 65536);
    const Lmr remote_lmr = co_await world.ia1->create_lmr(r, 65536);
    const Rmr rmr = world.ia1->bind_rmr(remote_lmr);

    co_await world.ep0->post_rdma_write(local_lmr, 40000, rmr, 1);
    Event event = co_await world.evd0->wait();
    EXPECT_EQ(event.type, EventType::kRdmaWriteCompletion);

    // Scribble locally, then read the remote copy back.
    auto w0 = world.cluster.node(0).mem().window(l, 40000);
    std::memset(w0.data(), 0, 40000);
    co_await world.ep0->post_rdma_read(local_lmr, 40000, rmr, 2);
    event = co_await world.evd0->wait();
    EXPECT_EQ(event.type, EventType::kRdmaReadCompletion);
    EXPECT_EQ(event.cookie, 2u);
  }(w, local.addr(), remote.addr()));
  w.engine().run();

  auto view = w.cluster.node(0).mem().window(local.addr(), 40000);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), 40000), 0)
      << "RDMA read must restore the scribbled local buffer";
}

TEST_P(UdaplOnVerbs, RmrBoundsAreEnforced) {
  DatWorld w(GetParam());
  auto& local = w.cluster.node(0).mem().alloc(4096);
  auto& remote = w.cluster.node(1).mem().alloc(4096);
  EXPECT_THROW(
      {
        w.engine().spawn([](DatWorld& world, std::uint64_t l, std::uint64_t r) -> Task<> {
          const Lmr local_lmr = co_await world.ia0->create_lmr(l, 4096);
          const Lmr remote_lmr = co_await world.ia1->create_lmr(r, 64);
          const Rmr rmr = world.ia1->bind_rmr(remote_lmr);
          co_await world.ep0->post_rdma_write(local_lmr, 4096, rmr, 1);  // too big
        }(w, local.addr(), remote.addr()));
        w.engine().run();
      },
      std::length_error);
}

TEST_P(UdaplOnVerbs, AbstractionCostIsSmallButNonzero) {
  // A uDAPL RDMA-write ping-pong must cost slightly more than raw verbs
  // (library dispatch overheads) but stay within ~1.5 us of it.
  const double raw = core::userlevel_pingpong_latency_us(core::profile(GetParam()), 64);

  DatWorld w(GetParam());
  auto& b0 = w.cluster.node(0).mem().alloc(64, false);
  auto& b1 = w.cluster.node(1).mem().alloc(64, false);
  Time elapsed = 0;
  const int iters = 20;

  w.engine().spawn([](DatWorld& world, std::uint64_t a0, std::uint64_t a1, int n,
                      Time* out) -> Task<> {
    const Lmr lmr0 = co_await world.ia0->create_lmr(a0, 64);
    const Lmr lmr1 = co_await world.ia1->create_lmr(a1, 64);
    const Rmr rmr1 = world.ia1->bind_rmr(lmr1);
    const Rmr rmr0 = world.ia0->bind_rmr(lmr0);

    // Responder process.
    world.engine().spawn([](DatWorld& ww, Lmr l1, Rmr r0, int count) -> Task<> {
      for (int i = 0; i < count; ++i) {
        auto incoming = ww.cluster.device(1).watch_placement(l1.addr(), 64);
        co_await incoming->wait();
        co_await ww.ep1->post_rdma_write(l1, 64, r0, 2);
      }
    }(world, lmr1, rmr0, n));

    const Time start = world.engine().now();
    for (int i = 0; i < n; ++i) {
      auto reply = world.cluster.device(0).watch_placement(lmr0.addr(), 64);
      co_await world.ep0->post_rdma_write(lmr0, 64, rmr1, 1);
      co_await reply->wait();
    }
    *out = world.engine().now() - start;
  }(w, b0.addr(), b1.addr(), iters, &elapsed));
  w.engine().run();

  const double dapl = to_us(elapsed) / iters / 2.0;
  EXPECT_GT(dapl, raw) << "the extra layer cannot be free";
  EXPECT_LT(dapl, raw + 1.5) << "but it should stay thin";
}

}  // namespace
}  // namespace fabsim::udapl
